(* §4.3 crash-safe data plane: the seeded chaos soak over the real-domain
   stack (5 crash kinds x 3 fixed seeds), plus the crash-recovery units it
   rests on — pagepool owner reclamation, the liveness reaper, bounded
   parks, the flight watchdog's heartbeat-stall dump, the Interleave crash
   model, and the simulator's ECONNRESET/EPIPE errno surface.

   Determinism: every schedule is a [Sds_fault.plan] of a fixed seed, so a
   failing seed replays the same crash at the same site visit. *)

module F = Sds_fault
module Rt_dom = Sds_rt.Rt_dom
module Rt_token = Sds_rt.Rt_token
module Rt_sock = Sds_rt.Rt_sock
module Rt_monitor = Sds_rt.Rt_monitor
module Pp = Sds_vm.Pagepool
module Waiter = Sds_notify.Waiter
module Obs = Sds_obs.Obs
module Flight = Sds_obs.Flight
module L = Socksdirect.Libsd
open Helpers

(* The CI chaos seeds: fixed, so every run replays the same schedules. *)
let seeds = [ 1; 2; 3 ]

let counter = Obs.Metrics.counter_value

(* A crashed domain re-raises [F.Crash] out of [Domain.join]; the soak
   joins survivors and victims alike. *)
let join_quiet d = try Domain.join d with _ -> ()

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let fired_kind kind =
  List.exists (fun (site, k) -> k = kind && site = F.site_of_kind kind) (F.fired_sites ())

(* ---- chaos soak: one scenario per crash kind --------------------------- *)

(* Crash_before_grant: two domains churn one token; whichever incarnation
   reaches the armed grant site dies mid-handoff.  The survivor must keep
   operating (seizing the dead-held token), and the token must end live-
   or-free. *)
let soak_before_grant ~seed () =
  let seized0 = counter "token.seized_dead" in
  F.arm (F.plan ~seed [ F.Crash_before_grant ]);
  Fun.protect ~finally:F.disarm (fun () ->
      let tok = Rt_token.create ~name:"chaos-grant" ~holder:(-1) () in
      let survivors = Atomic.make 0 in
      let churn () =
        let dom = Rt_dom.self () in
        (* Operate until the planned crash has happened somewhere: grants
           flow continuously between two churning domains, so the armed
           site's countdown drains fast.  If the crash fires *here*, the
           exception escapes and the spawn wrapper declares us dead. *)
        while F.fired_sites () = [] do
          Rt_token.with_held tok ~dom (fun () -> ())
        done;
        (* Survivor: a few more ops across the now-dead holder. *)
        for _ = 1 to 100 do
          Rt_token.with_held tok ~dom (fun () -> ())
        done;
        Rt_token.release tok ~dom;
        Atomic.incr survivors
      in
      let a = Rt_dom.spawn churn in
      let b = Rt_dom.spawn churn in
      join_quiet a;
      join_quiet b;
      Alcotest.(check bool) "the planned crash fired" true (fired_kind F.Crash_before_grant);
      Alcotest.(check int) "exactly one domain survived" 1 (Atomic.get survivors);
      Alcotest.(check bool) "token ends live-or-free" false (Rt_token.holder_dead tok);
      Alcotest.(check bool) "dead holder's token was seized" true
        (counter "token.seized_dead" > seized0))

(* Crash_mid_publish: the sender dies between the records of one multi-
   record inline stream send.  The receiver must observe [Peer_dead]
   (ECONNRESET semantics), not a hang and not a silently truncated
   stream treated as EOF. *)
let soak_mid_publish ~seed () =
  F.arm (F.plan ~seed [ F.Crash_mid_publish ]);
  Fun.protect ~finally:F.disarm (fun () ->
      let a, b = Rt_sock.pair ~a_owner:(-1) ~b_owner:(-1) () in
      let payload = Rt_sock.max_inline + 1024 (* two records, < zc_threshold *) in
      let sender =
        Rt_dom.spawn (fun () ->
            let dom = Rt_dom.self () in
            let src = Bytes.make payload 'm' in
            for _ = 1 to 64 do
              Rt_sock.send a ~dom src ~off:0 ~len:payload
            done;
            Rt_sock.close a ~dom)
      in
      let dom = Rt_dom.self () in
      let dst = Bytes.create (Rt_sock.max_desc_per_record * Pp.page_size) in
      let saw_reset = ref false in
      (try
         while Rt_sock.recv b ~dom dst ~off:0 ~len:(Bytes.length dst) > 0 do
           ()
         done
       with Rt_sock.Peer_dead -> saw_reset := true);
      join_quiet sender;
      Alcotest.(check bool) "the planned crash fired" true (fired_kind F.Crash_mid_publish);
      Alcotest.(check bool) "receiver unblocked with Peer_dead" true !saw_reset;
      Alcotest.(check bool) "pair is poisoned" true (Rt_sock.poisoned b);
      Rt_sock.release_tokens b ~dom)

(* Crash_holding_pages: the sender dies with staged pool pages that were
   never published.  The death hook must reclaim them (pool occupancy back
   to baseline) and the receiver must get [Peer_dead]. *)
let soak_holding_pages ~seed () =
  let reclaimed0 = counter "pool.reclaimed_pages" in
  F.arm (F.plan ~seed [ F.Crash_holding_pages ]);
  Fun.protect ~finally:F.disarm (fun () ->
      let a, b = Rt_sock.pair ~a_owner:(-1) ~b_owner:(-1) () in
      let payload = Rt_sock.zc_threshold (* descriptor path: staged pages *) in
      let sender =
        Rt_dom.spawn (fun () ->
            let dom = Rt_dom.self () in
            let src = Bytes.make payload 'p' in
            for _ = 1 to 32 do
              Rt_sock.send a ~dom src ~off:0 ~len:payload
            done;
            Rt_sock.close a ~dom)
      in
      let dom = Rt_dom.self () in
      let dst = Bytes.create (Rt_sock.max_desc_per_record * Pp.page_size) in
      let saw_reset = ref false in
      (try
         while Rt_sock.recv b ~dom dst ~off:0 ~len:(Bytes.length dst) > 0 do
           ()
         done
       with Rt_sock.Peer_dead -> saw_reset := true);
      join_quiet sender;
      Alcotest.(check bool) "the planned crash fired" true (fired_kind F.Crash_holding_pages);
      Alcotest.(check bool) "receiver unblocked with Peer_dead" true !saw_reset;
      Alcotest.(check bool) "dead sender's staged pages were reclaimed" true
        (counter "pool.reclaimed_pages" > reclaimed0);
      Rt_sock.release_tokens b ~dom)

(* Monitor_restart: a worker dies inside accept, holding a just-popped
   connection.  A replacement re-registering the same index must inherit
   the undrained backlog and serve everything except the one connection
   that died with the worker (which must be poisoned, not stranded). *)
let soak_monitor_restart ~seed () =
  F.arm (F.plan ~seed [ F.Monitor_restart ]);
  Fun.protect ~finally:F.disarm (fun () ->
      let mon = Rt_monitor.create ~workers:1 () in
      let served = Atomic.make 0 in
      let worker_body () =
        ignore (Rt_monitor.register mon ~index:0);
        let d = Rt_dom.self () in
        let buf = Bytes.create Rt_sock.max_inline in
        let rec serve () =
          match Rt_monitor.accept mon ~index:0 with
          | None -> ()
          | Some s ->
            (try
               while Rt_sock.recv s ~dom:d buf ~off:0 ~len:(Bytes.length buf) > 0 do
                 ()
               done;
               Atomic.incr served
             with Rt_sock.Peer_dead -> ());
            Rt_sock.release_tokens s ~dom:d;
            serve ()
        in
        serve ()
      in
      let w1 = Rt_dom.spawn worker_body in
      while Rt_monitor.registered mon < 1 do
        Domain.cpu_relax ()
      done;
      let dom = Rt_dom.self () in
      let conns = 8 in
      let clients =
        Array.init conns (fun _ ->
            let s = Rt_monitor.connect mon ~dom in
            (* The worker may crash while holding this very connection —
               the client's send then correctly raises Peer_dead (EPIPE). *)
            (try Rt_sock.send s ~dom (Bytes.make 64 'c') ~off:0 ~len:64
             with Rt_sock.Peer_dead -> ());
            Rt_sock.close s ~dom;
            s)
      in
      (* 8 accepts against a max_skip-4 schedule: the crash always fires. *)
      while F.fired_sites () = [] do
        Unix.sleepf 0.001
      done;
      join_quiet w1;
      (* The restart path: same index, dead predecessor. *)
      let w2 = Rt_dom.spawn worker_body in
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Atomic.get served < conns - 1 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.001
      done;
      Rt_monitor.close_listener mon;
      join_quiet w2;
      Alcotest.(check bool) "the planned crash fired" true (fired_kind F.Monitor_restart);
      Alcotest.(check int) "replacement served every other connection" (conns - 1)
        (Atomic.get served);
      let poisoned = Array.fold_left (fun n c -> if Rt_sock.poisoned c then n + 1 else n) 0 clients in
      Alcotest.(check bool) "the connection that died with the worker is poisoned" true
        (poisoned >= 1))

(* Fork_storm: a client dies mid-connect, after the pair exists but before
   any worker can ever see it.  The orphaned connection must be poisoned
   by recovery (not leak), and the worker must keep serving everyone
   else. *)
let soak_fork_storm ~seed () =
  let poisoned0 = counter "rt.poisoned" in
  F.arm (F.plan ~seed [ F.Fork_storm ]);
  Fun.protect ~finally:F.disarm (fun () ->
      let mon = Rt_monitor.create ~workers:1 () in
      let served = Atomic.make 0 in
      let worker =
        Rt_dom.spawn (fun () ->
            ignore (Rt_monitor.register mon ~index:0);
            let d = Rt_dom.self () in
            let buf = Bytes.create Rt_sock.max_inline in
            let rec serve () =
              match Rt_monitor.accept mon ~index:0 with
              | None -> ()
              | Some s ->
                (try
                   while Rt_sock.recv s ~dom:d buf ~off:0 ~len:(Bytes.length buf) > 0 do
                     ()
                   done;
                   Atomic.incr served
                 with Rt_sock.Peer_dead -> ());
                Rt_sock.release_tokens s ~dom:d;
                serve ()
            in
            serve ())
      in
      while Rt_monitor.registered mon < 1 do
        Domain.cpu_relax ()
      done;
      let conns = 6 in
      let clients =
        Array.init conns (fun _ ->
            Rt_dom.spawn (fun () ->
                let d = Rt_dom.self () in
                let s = Rt_monitor.connect mon ~dom:d in
                Rt_sock.send s ~dom:d (Bytes.make 64 'f') ~off:0 ~len:64;
                Rt_sock.close s ~dom:d))
      in
      Array.iter join_quiet clients;
      (* One client died before its connection was dispatched; the worker
         can only ever see the other conns - 1. *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Atomic.get served < conns - 1 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.001
      done;
      Rt_monitor.close_listener mon;
      join_quiet worker;
      Alcotest.(check bool) "the planned crash fired" true (fired_kind F.Fork_storm);
      Alcotest.(check int) "worker served every dispatched connection" (conns - 1)
        (Atomic.get served);
      Alcotest.(check bool) "the orphaned connection was poisoned" true
        (counter "rt.poisoned" > poisoned0))

let soak ~seed () =
  soak_before_grant ~seed ();
  soak_mid_publish ~seed ();
  soak_holding_pages ~seed ();
  soak_monitor_restart ~seed ();
  soak_fork_storm ~seed ()

(* ---- pagepool owner reclamation ---------------------------------------- *)

let test_pool_reclaim_owner () =
  let pool = Pp.create ~pages:16 () in
  let h = Pp.handle pool in
  Pp.set_owner h 7;
  let free0 = Pp.free_pages pool in
  let pages = List.init 5 (fun _ -> Pp.alloc h) in
  List.iter
    (fun p ->
      Alcotest.(check bool) "alloc succeeded" true (p <> Pp.no_page);
      Alcotest.(check int) "page stamped with its owner" 7 (Pp.owner pool p))
    pages;
  Alcotest.(check int) "owned_pages finds the in-flight set" 5
    (List.length (Pp.owned_pages pool ~owner:7));
  Alcotest.(check int) "reclaim frees the dead owner's pages" 5
    (Pp.reclaim_owner pool ~owner:7);
  Alcotest.(check int) "occupancy back to baseline" free0 (Pp.free_pages pool);
  List.iter
    (fun p -> Alcotest.(check int) "owner stamp cleared" Pp.no_owner (Pp.owner pool p))
    pages;
  Alcotest.(check int) "double reclaim is a no-op" 0 (Pp.reclaim_owner pool ~owner:7);
  Alcotest.(check int) "occupancy unchanged by the no-op" free0 (Pp.free_pages pool)

let test_pool_adopt () =
  let pool = Pp.create ~pages:8 () in
  let h = Pp.handle pool in
  Pp.set_owner h 3;
  let page = Pp.alloc h in
  Alcotest.(check bool) "survivor adopts an in-flight page" true
    (Pp.try_adopt pool ~page ~owner:4);
  Alcotest.(check int) "ownership moved" 4 (Pp.owner pool page);
  Alcotest.(check bool) "re-adopting is idempotent" true (Pp.try_adopt pool ~page ~owner:4);
  Alcotest.(check int) "the old owner's reclaim finds nothing" 0
    (Pp.reclaim_owner pool ~owner:3);
  Alcotest.(check int) "page survives the dead sender's reclaim" 1 (Pp.refcount pool page);
  Alcotest.(check int) "adopter's reclaim frees it" 1 (Pp.reclaim_owner pool ~owner:4);
  Alcotest.(check bool) "a free page cannot be adopted" false (Pp.try_adopt pool ~page ~owner:5)

(* ---- bounded parks ------------------------------------------------------ *)

let test_wait_until_timeout () =
  let w = Waiter.create () in
  let t0 = counter "notify.wait_timeouts" in
  let now = Sds_obs.Span.monotonic_ns () in
  let r = Waiter.wait_until w ~deadline_ns:(now + 5_000_000) ~ready:(fun () -> false) in
  Alcotest.(check bool) "a dead peer cannot wedge the caller" false r;
  Alcotest.(check bool) "timeout counted in notify.wait_timeouts" true
    (counter "notify.wait_timeouts" > t0);
  let r =
    Waiter.wait_until w
      ~deadline_ns:(Sds_obs.Span.monotonic_ns () + 1_000_000_000)
      ~ready:(fun () -> true)
  in
  Alcotest.(check bool) "ready short-circuits the deadline" true r

(* ---- liveness reaper ---------------------------------------------------- *)

let test_reaper () =
  let reaped0 = counter "fault.reaped" in
  let stop = Atomic.make false in
  let release = Atomic.make false in
  let stalled_slot = Atomic.make (-1) in
  let parked_slot = Atomic.make (-1) in
  (* An enrolled, runnable, silent domain: must be declared dead. *)
  let stalled =
    Rt_dom.spawn (fun () ->
        let s = Rt_dom.enroll () in
        Rt_dom.beat s;
        Atomic.set stalled_slot s;
        while not (Atomic.get stop) do
          Domain.cpu_relax ()
        done)
  in
  (* An enrolled but *parked* domain: legitimate silence, must survive. *)
  let parked =
    Rt_dom.spawn (fun () ->
        let s = Rt_dom.enroll () in
        Rt_dom.beat s;
        Atomic.set parked_slot s;
        Waiter.wait (Rt_dom.waiter s) ~ready:(fun () -> Atomic.get release))
  in
  while Atomic.get stalled_slot < 0 || Atomic.get parked_slot < 0 do
    Domain.cpu_relax ()
  done;
  let s = Atomic.get stalled_slot in
  let p = Atomic.get parked_slot in
  Rt_monitor.start_reaper ~interval_s:0.002 ~stalls:4 ();
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Rt_dom.slot_live s && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Rt_monitor.stop_reaper ();
  Alcotest.(check bool) "stalled enrolled slot declared dead" false (Rt_dom.slot_live s);
  Alcotest.(check bool) "reap counted in fault.reaped" true (counter "fault.reaped" > reaped0);
  Alcotest.(check bool) "parked slot was exempt" true (Rt_dom.slot_live p);
  Atomic.set stop true;
  Atomic.set release true;
  Waiter.notify (Rt_dom.waiter p);
  join_quiet stalled;
  join_quiet parked

(* ---- flight watchdog: heartbeat stall ----------------------------------- *)

let test_watchdog_heartbeat_stall () =
  let stop = Atomic.make false in
  let slot = Atomic.make (-1) in
  let d =
    Rt_dom.spawn (fun () ->
        let s = Rt_dom.enroll () in
        Rt_dom.beat s;
        Atomic.set slot s;
        while not (Atomic.get stop) do
          Domain.cpu_relax ()
        done)
  in
  while Atomic.get slot < 0 do
    Domain.cpu_relax ()
  done;
  let path = Filename.temp_file "sds-fault-wd" ".dump" in
  let p = ref 0 in
  let wd =
    Flight.watchdog ~path ~interval_s:0.003 ~stalls:3
      ~progress:(fun () ->
        incr p;
        !p)
      ()
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Option.is_none (Flight.watchdog_fired wd) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.003
  done;
  Flight.watchdog_stop wd;
  Atomic.set stop true;
  join_quiet d;
  match Flight.watchdog_fired wd with
  | None -> Alcotest.fail "watchdog never fired on a stalled heartbeat"
  | Some dump_path ->
    let ic = open_in_bin dump_path in
    let dump = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove dump_path;
    Alcotest.(check bool) "dump names the stalled heartbeat" true
      (contains dump "heartbeat-stall");
    Alcotest.(check bool) "dump carries the slot-epoch table" true (contains dump "rt_dom")

(* ---- the §4.3 Interleave crash model ------------------------------------ *)

let test_crash_takeover_model () =
  let module I = Sds_check.Interleave in
  let module M = Sds_check.Models in
  let rec find_root d =
    if Sys.file_exists (Filename.concat d "dune-project") then Some d
    else
      let parent = Filename.dirname d in
      if parent = d then None else find_root parent
  in
  match find_root (Sys.getcwd ()) with
  | None -> () (* sandboxed run without sources: extraction has nothing to read *)
  | Some root ->
    let o = I.check (List.assoc "token-crash-recovery" (M.all ~root)) in
    if not (I.ok o) then Alcotest.failf "crash-takeover model not clean: %a" I.pp_outcome o;
    let o = I.check (List.assoc "token-crash-unfenced-seize" (M.mutations ~root)) in
    Alcotest.(check bool) "unfenced seize is caught" false (I.ok o)

(* ---- simulator errno surface (§4.5.4) ----------------------------------- *)

let test_sim_abort_reset () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false and aborted = ref false and rebound = ref false in
  let got_reset = ref false and got_epipe = ref false in
  ignore
    (spawn w "abort-victim" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:181;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         (* Drain the greeting so the connection is established both ways,
            then die abnormally: no FIN, no draining, just RST + Died. *)
         let b = Bytes.create 5 in
         let got = ref 0 in
         while !got < 5 do
           got := !got + L.recv th fd b ~off:!got ~len:(5 - !got)
         done;
         L.simulate_abort ctx;
         aborted := true));
  ignore
    (spawn w "rebinder" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:2 () in
         wait_for aborted;
         Sds_sim.Proc.sleep_ns 2_000_000;
         (* The monitor's Died cleanup released the dead pid's port. *)
         let lfd = L.socket th in
         L.bind th lfd ~port:181;
         rebound := true));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:181;
      ignore (L.send th fd (Bytes.of_string "hello") ~off:0 ~len:5);
      wait_for aborted;
      Sds_sim.Proc.sleep_ns 1_000_000;
      (try ignore (L.recv th fd (Bytes.create 8) ~off:0 ~len:8)
       with L.Connection_reset -> got_reset := true);
      (try ignore (L.send th fd (Bytes.make 4 'x') ~off:0 ~len:4)
       with L.Broken_pipe -> got_epipe := true);
      wait_for rebound);
  Alcotest.(check bool) "recv after abnormal peer death raises ECONNRESET" true !got_reset;
  Alcotest.(check bool) "send after abnormal peer death raises EPIPE" true !got_epipe;
  Alcotest.(check bool) "dead pid's bound port was released" true !rebound

(* ---- plan determinism --------------------------------------------------- *)

let test_plan_determinism () =
  (* Same seed, same site, same firing visit: replay a schedule twice
     against a plain counting loop and require identical fire points. *)
  let fire_point seed =
    F.arm (F.plan ~seed [ F.Crash_before_grant ]);
    Fun.protect ~finally:F.disarm (fun () ->
        let site = F.site_of_kind F.Crash_before_grant in
        let n = ref 0 in
        (try
           for _ = 1 to 100 do
             incr n;
             if F.armed () then F.inject site
           done
         with F.Crash _ -> ());
        !n)
  in
  List.iter
    (fun seed ->
      let a = fire_point seed in
      let b = fire_point seed in
      Alcotest.(check int) (Printf.sprintf "seed %d replays identically" seed) a b;
      Alcotest.(check bool) "fires within max_skip visits" true (a <= 4))
    seeds

let suite =
  [
    Alcotest.test_case "plan: seeded schedules replay" `Quick test_plan_determinism;
    Alcotest.test_case "pool: reclaim_owner frees a dead owner's pages" `Quick
      test_pool_reclaim_owner;
    Alcotest.test_case "pool: adopt-vs-reclaim arbitration" `Quick test_pool_adopt;
    Alcotest.test_case "notify: wait_until bounds every park" `Quick test_wait_until_timeout;
    Alcotest.test_case "reaper: stalled slot dies, parked slot survives" `Quick test_reaper;
    Alcotest.test_case "flight: watchdog dumps on heartbeat stall" `Quick
      test_watchdog_heartbeat_stall;
    Alcotest.test_case "check: crash-takeover model + seize-fence mutation" `Quick
      test_crash_takeover_model;
    Alcotest.test_case "sim: abort gives ECONNRESET/EPIPE and frees the port" `Quick
      test_sim_abort_reset;
    Alcotest.test_case "chaos: 5 kinds x seed 1" `Slow (soak ~seed:1);
    Alcotest.test_case "chaos: 5 kinds x seed 2" `Slow (soak ~seed:2);
    Alcotest.test_case "chaos: 5 kinds x seed 3" `Slow (soak ~seed:3);
  ]
