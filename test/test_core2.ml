(* Second core suite: duplex traffic, odd sizes through the zero-copy
   boundary, ephemeral ports, error paths, and a property test pushing
   random traffic shapes through the full SocksDirect stack. *)

module L = Socksdirect.Libsd
module Sock = Socksdirect.Sock
open Helpers

let recv_exact th fd n =
  let b = Bytes.create n in
  let rec fill off =
    if off = n then b
    else
      let got = L.recv th fd b ~off ~len:(n - off) in
      if got = 0 then failwith "unexpected EOF" else fill (off + got)
  in
  fill 0

let send_all th fd b = ignore (L.send th fd b ~off:0 ~len:(Bytes.length b))

let test_full_duplex () =
  (* Both directions stream simultaneously; contents must not cross. *)
  let w = make_world () in
  let h = add_host w in
  let rounds = 50 in
  let ready = ref false in
  let server_ok = ref false in
  ignore
    (spawn w "fd-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:120;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         (* Writer proc for the server->client direction. *)
         ignore
           (spawn w "fd-server-writer" (fun () ->
                let th2 = L.create_thread ctx ~core:2 () in
                for i = 1 to rounds do
                  send_all th2 fd (Bytes.of_string (Printf.sprintf "S%07d" i))
                done));
         let ok = ref true in
         for i = 1 to rounds do
           let m = recv_exact th fd 8 in
           if Bytes.to_string m <> Printf.sprintf "C%07d" i then ok := false
         done;
         server_ok := !ok));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:120;
      (* Client writer runs concurrently with the client reader below. *)
      ignore
        (spawn w "fd-client-writer" (fun () ->
             let th2 = L.create_thread ctx ~core:3 () in
             for i = 1 to rounds do
               send_all th2 fd (Bytes.of_string (Printf.sprintf "C%07d" i))
             done));
      for i = 1 to rounds do
        let m = recv_exact th fd 8 in
        check_bytes "server stream ordered" (Bytes.of_string (Printf.sprintf "S%07d" i)) m
      done;
      Sds_sim.Proc.sleep_ns 1_000_000);
  Alcotest.(check bool) "client stream ordered at server" true !server_ok

let odd_size_roundtrip ~intra size () =
  (* Sizes straddling the zero-copy threshold and page boundaries. *)
  let w = make_world () in
  let h1 = add_host w in
  let h2 = if intra then h1 else add_host w in
  let payload = Bytes.init size (fun i -> Char.chr ((i * 131) land 0xff)) in
  let ready = ref false in
  ignore
    (spawn w "odd-server" (fun () ->
         let ctx = L.init h2 in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:121;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let m = recv_exact th fd size in
         send_all th fd m));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h1 in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h2 ~port:121;
      send_all th fd payload;
      check_bytes "odd-size payload intact" payload (recv_exact th fd size))

let test_ephemeral_bind () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let a = L.socket th in
      L.bind th a ~port:0;
      let b = L.socket th in
      L.bind th b ~port:0;
      match (L.lookup th a, L.lookup th b) with
      | L.U sa, L.U sb ->
        Alcotest.(check bool) "ephemeral ports assigned" true
          (sa.Sock.local_port >= 32768 && sb.Sock.local_port >= 32768);
        Alcotest.(check bool) "distinct" true (sa.Sock.local_port <> sb.Sock.local_port)
      | _ -> Alcotest.fail "expected sockets")

let test_send_before_connect () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      Alcotest.check_raises "ENOTCONN" (Invalid_argument "libsd.send: not connected") (fun () ->
          ignore (L.send th fd (Bytes.of_string "x") ~off:0 ~len:1)))

let test_bad_fd () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      Alcotest.check_raises "EBADF" (L.Bad_fd 99) (fun () ->
          ignore (L.recv th 99 (Bytes.create 1) ~off:0 ~len:1)))

let test_zero_length_send_recv () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  ignore
    (spawn w "z-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:122;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let m = recv_exact th fd 2 in
         send_all th fd m));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:122;
      Alcotest.(check int) "send of 0 bytes" 0 (L.send th fd Bytes.empty ~off:0 ~len:0);
      send_all th fd (Bytes.of_string "ok");
      check_bytes "still works" (Bytes.of_string "ok") (recv_exact th fd 2))

let test_many_connections_one_thread () =
  (* One client thread multiplexing 20 concurrent connections. *)
  let w = make_world () in
  let h = add_host w in
  let n = 20 in
  let ready = ref false in
  ignore
    (spawn w "many-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:123;
         L.listen th lfd;
         ready := true;
         for _ = 1 to n do
           let fd = L.accept th lfd in
           ignore
             (spawn w "many-worker" (fun () ->
                  let th2 = L.create_thread ctx ~core:2 () in
                  let m = recv_exact th2 fd 4 in
                  send_all th2 fd m))
         done));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fds = Array.init n (fun _ -> L.socket th) in
      Array.iter (fun fd -> L.connect th fd ~dst:h ~port:123) fds;
      Array.iteri
        (fun i fd -> send_all th fd (Bytes.of_string (Printf.sprintf "%04d" i)))
        fds;
      Array.iteri
        (fun i fd ->
          check_bytes "per-connection isolation" (Bytes.of_string (Printf.sprintf "%04d" i))
            (recv_exact th fd 4))
        fds)

(* Property: any sequence of message sizes streams through SocksDirect
   byte-exactly (inline, chunked, and zero-copy paths mixed). *)
let prop_stream_integrity =
  QCheck.Test.make ~name:"random traffic streams byte-exactly through SocksDirect" ~count:20
    QCheck.(list_of_size (Gen.int_range 1 8) (int_range 1 40_000))
    (fun sizes ->
      let total = List.fold_left ( + ) 0 sizes in
      let w = make_world () in
      let h = add_host w in
      let sent_digest = ref "" and received_digest = ref "" in
      let ready = ref false in
      ignore
        (spawn w "prop-server" (fun () ->
             let ctx = L.init h in
             let th = L.create_thread ctx ~core:1 () in
             let lfd = L.socket th in
             L.bind th lfd ~port:124;
             L.listen th lfd;
             ready := true;
             let fd = L.accept th lfd in
             let buf = Bytes.create total in
             let got = ref 0 in
             while !got < total do
               let n = L.recv th fd buf ~off:!got ~len:(total - !got) in
               if n = 0 then failwith "eof";
               got := !got + n
             done;
             received_digest := Digest.to_hex (Digest.bytes buf)));
      run w (fun () ->
          wait_for ready;
          let ctx = L.init h in
          let th = L.create_thread ctx ~core:0 () in
          let fd = L.socket th in
          L.connect th fd ~dst:h ~port:124;
          let all = Buffer.create total in
          let rng = Sds_sim.Rng.create ~seed:(total + List.length sizes) in
          List.iter
            (fun size ->
              let payload = Sds_sim.Rng.bytes rng size in
              Buffer.add_bytes all payload;
              send_all th fd payload)
            sizes;
          sent_digest := Digest.to_hex (Digest.string (Buffer.contents all));
          Sds_sim.Proc.sleep_ns 10_000_000);
      !sent_digest = !received_digest)

(* ---- RDMA ring flow control (§4.2) ---- *)

let test_rdma_ring_backpressure () =
  (* A sender whose inter-host peer stops consuming must block on ring
     credits after ~one ring (64 KiB) of data — not buffer unboundedly. *)
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let ready = ref false in
  let consumed = ref false in
  ignore
    (spawn w "bp-server" (fun () ->
         let ctx = L.init h2 in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:140;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         (* Sleep long before consuming anything. *)
         Sds_sim.Proc.sleep_ns 5_000_000;
         consumed := true;
         let buf = Bytes.create 65536 in
         let total = ref 0 in
         while !total < 200 * 1024 do
           let n = L.recv th fd buf ~off:0 ~len:65536 in
           total := !total + n
         done));
  let sent_before_block = ref 0 in
  let finished = ref false in
  ignore
    (spawn w "bp-client" (fun () ->
         wait_for ready;
         let ctx = L.init h1 in
         let th = L.create_thread ctx ~core:0 () in
         let fd = L.socket th in
         L.connect th fd ~dst:h2 ~port:140;
         let chunk = Bytes.make 4096 'b' in
         for _ = 1 to 50 do
           ignore (L.send th fd chunk ~off:0 ~len:4096);
           if not !consumed then incr sent_before_block
         done;
         finished := true));
  run w (fun () -> Sds_sim.Proc.sleep_ns 50_000_000);
  Alcotest.(check bool) "sender eventually completed" true !finished;
  (* 50 x 4 KiB = 200 KiB >> 64 KiB ring: the sender cannot have pushed it
     all before the receiver started consuming. *)
  Alcotest.(check bool) "blocked near ring capacity" true (!sent_before_block < 20)

let test_interrupt_wakeup_inter_host () =
  (* The §4.4 interrupt-mode sleep/wake works across hosts too: the wakeup
     rides the RDMA channel's interrupt hook through the receiver's
     monitor. *)
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let ready = ref false in
  let waited = ref 0 in
  let got = ref false in
  ignore
    (spawn w "iw-server" (fun () ->
         let ctx = L.init h2 in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:141;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let b = Bytes.create 4 in
         let t0 = Sds_sim.Engine.now w.engine in
         (* Nothing arrives for far longer than the polling budget: the
            server must sleep and be woken by the late sender. *)
         let n = L.recv th fd b ~off:0 ~len:4 in
         waited := Sds_sim.Engine.now w.engine - t0;
         got := n = 4));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h1 in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h2 ~port:141;
      Sds_sim.Proc.sleep_ns 5_000_000;
      send_all th fd (Bytes.of_string "wake");
      Sds_sim.Proc.sleep_ns 1_000_000);
  Alcotest.(check bool) "woken and received" true !got;
  Alcotest.(check bool) "really slept first" true (!waited >= 5_000_000)

(* ---- isolation (§3) ---- *)

let test_fd_namespace_isolation () =
  (* Process B cannot address process A's socket: FD remapping tables are
     per process, so A's descriptor number means nothing in B. *)
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx_a = L.init h in
      let th_a = L.create_thread ctx_a ~core:0 () in
      let fd_a = L.socket th_a in
      let ctx_b = L.init h in
      let th_b = L.create_thread ctx_b ~core:1 () in
      Alcotest.check_raises "foreign fd is EBADF" (L.Bad_fd fd_a) (fun () ->
          ignore (L.recv th_b fd_a (Bytes.create 1) ~off:0 ~len:1)))

let test_fork_secret_rejects_impostor () =
  (* A process that did not receive the pairing secret cannot register as
     someone's child with the monitor (§4.1.2). *)
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let _ctx = L.init h in
      let monitor = Socksdirect.Monitor.for_host h in
      let paired =
        Socksdirect.Monitor.rpc monitor (fun reply ->
            Socksdirect.Monitor.Fork_pair { fp_secret = 123456789; fp_reply = reply })
      in
      Alcotest.(check bool) "impostor rejected" false paired)

(* ---- §4.6 + Libra: selective copying over the real shared page pool ---- *)

module Obs = Sds_obs.Obs
module Copy_policy = Socksdirect.Copy_policy

(* Intra-host roundtrip of [size] bytes under [config]; returns the deltas
   of (zerocopy sends, pool fallbacks) across the exchange. *)
let pool_roundtrip ~config ~size () =
  let w = make_world () in
  let h = add_host w in
  let payload = Bytes.init size (fun i -> Char.chr ((i * 197) land 0xff)) in
  let ready = ref false in
  let zc0 = Obs.Metrics.counter_value "libsd.zerocopy_sends" in
  let fb0 = Obs.Metrics.counter_value "libsd.pool_fallbacks" in
  ignore
    (spawn w "pool-server" (fun () ->
         let ctx = L.init ~config h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:131;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let m = recv_exact th fd size in
         send_all th fd m));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init ~config h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:131;
      send_all th fd payload;
      check_bytes "payload intact through the pool path" payload (recv_exact th fd size));
  ( Obs.Metrics.counter_value "libsd.zerocopy_sends" - zc0,
    Obs.Metrics.counter_value "libsd.pool_fallbacks" - fb0 )

let test_copy_policy_never_copy () =
  let config = { L.default_config with copy_policy = Copy_policy.Never_copy } in
  let zc, _ = pool_roundtrip ~config ~size:(64 * 1024) () in
  Alcotest.(check bool) "descriptor handoff used on both legs" true (zc >= 2)

let test_copy_policy_always_copy () =
  let config = { L.default_config with copy_policy = Copy_policy.Always_copy } in
  let zc, _ = pool_roundtrip ~config ~size:(64 * 1024) () in
  Alcotest.(check int) "no zero-copy sends under Always_copy" 0 zc

let test_copy_policy_adaptive_large () =
  (* 64 KiB is over every adaptive threshold bound: must go zero-copy. *)
  let config = { L.default_config with copy_policy = Copy_policy.Adaptive } in
  let zc, _ = pool_roundtrip ~config ~size:(64 * 1024) () in
  Alcotest.(check bool) "adaptive picks the descriptor path at 64 KiB" true (zc >= 2)

let test_copy_policy_forced_off () =
  (* zerocopy=false forces Always_copy whatever the knob says. *)
  let config =
    { L.default_config with zerocopy = false; copy_policy = Copy_policy.Never_copy }
  in
  let zc, _ = pool_roundtrip ~config ~size:(64 * 1024) () in
  Alcotest.(check int) "zerocopy=false disables the pool path" 0 zc

let test_pool_exhaustion_falls_back_to_copy () =
  (* Hoard every page of the process-wide pool: descriptor sends must fail
     allocation, count a fallback, and deliver intact via the copy path. *)
  let module Pp = Sds_vm.Pagepool in
  let pool = Pp.shared () in
  (* The sim runs every proc on this domain, so [domain_handle] is the very
     handle libsd allocates from — draining it empties its private cache
     too, not just the global stack. *)
  let hoard_h = Pp.domain_handle pool in
  let hoard = ref [] in
  let rec drain () =
    let p = Pp.alloc hoard_h in
    if p <> Pp.no_page then begin
      hoard := p :: !hoard;
      drain ()
    end
  in
  drain ();
  Fun.protect
    ~finally:(fun () -> List.iter (Pp.release hoard_h) !hoard)
    (fun () ->
      let config = { L.default_config with copy_policy = Copy_policy.Never_copy } in
      let zc, fb = pool_roundtrip ~config ~size:(64 * 1024) () in
      Alcotest.(check int) "no zero-copy send went through" 0 zc;
      Alcotest.(check bool) "fallbacks counted" true (fb >= 2))

let test_queue_tokens_distinct () =
  (* Every SHM queue carries a distinct secret token (§3). *)
  let w = make_world () in
  ignore (add_host w);
  let c1 = Sds_transport.Shm_chan.create w.engine ~cost:w.cost () in
  let c2 = Sds_transport.Shm_chan.create w.engine ~cost:w.cost () in
  Alcotest.(check bool) "tokens differ" true
    (Sds_transport.Shm_chan.token c1 <> Sds_transport.Shm_chan.token c2)

let suite =
  [
    Alcotest.test_case "full duplex streams" `Quick test_full_duplex;
    Alcotest.test_case "odd size 16383 intra" `Quick (odd_size_roundtrip ~intra:true 16383);
    Alcotest.test_case "odd size 16384 intra (zc threshold)" `Quick (odd_size_roundtrip ~intra:true 16384);
    Alcotest.test_case "odd size 16385 inter" `Quick (odd_size_roundtrip ~intra:false 16385);
    Alcotest.test_case "odd size 100000 inter (non-aligned zc)" `Quick
      (odd_size_roundtrip ~intra:false 100_000);
    Alcotest.test_case "ephemeral bind" `Quick test_ephemeral_bind;
    Alcotest.test_case "send before connect" `Quick test_send_before_connect;
    Alcotest.test_case "bad fd" `Quick test_bad_fd;
    Alcotest.test_case "zero-length send" `Quick test_zero_length_send_recv;
    Alcotest.test_case "20 connections, one thread" `Quick test_many_connections_one_thread;
    QCheck_alcotest.to_alcotest prop_stream_integrity;
    Alcotest.test_case "rdma ring backpressure" `Quick test_rdma_ring_backpressure;
    Alcotest.test_case "interrupt wakeup inter-host" `Quick test_interrupt_wakeup_inter_host;
    Alcotest.test_case "fd namespace isolation" `Quick test_fd_namespace_isolation;
    Alcotest.test_case "fork secret rejects impostor" `Quick test_fork_secret_rejects_impostor;
    Alcotest.test_case "queue tokens distinct" `Quick test_queue_tokens_distinct;
    Alcotest.test_case "copy policy: never-copy goes zero-copy" `Quick test_copy_policy_never_copy;
    Alcotest.test_case "copy policy: always-copy stays inline" `Quick test_copy_policy_always_copy;
    Alcotest.test_case "copy policy: adaptive remaps 64 KiB" `Quick test_copy_policy_adaptive_large;
    Alcotest.test_case "copy policy: zerocopy=false forces copy" `Quick test_copy_policy_forced_off;
    Alcotest.test_case "pool exhaustion falls back to copy" `Quick
      test_pool_exhaustion_falls_back_to_copy;
  ]
