(* Tests for the simulated virtual-memory subsystem: pages, copy-on-write,
   pools and the page-return protocol, buffer spaces. *)

open Sds_vm

let test_page_write_read () =
  let p = Page.create ~owner:1 in
  let src = Bytes.of_string "hello-page" in
  let p', copied = Page.write p ~off:100 ~src ~src_off:0 ~len:10 in
  Alcotest.(check bool) "no COW on private page" false copied;
  Alcotest.(check bool) "same page" true (p == p');
  let dst = Bytes.create 10 in
  Page.read p ~off:100 ~dst ~dst_off:0 ~len:10;
  Alcotest.(check string) "content" "hello-page" (Bytes.to_string dst)

let test_page_cow () =
  let p = Page.create ~owner:1 in
  let original = Bytes.of_string "original" in
  ignore (Page.write p ~off:0 ~src:original ~src_off:0 ~len:8);
  (* Share it (sender marks COW before handing to the receiver). *)
  Page.share p;
  Alcotest.(check int) "refcount 2" 2 p.Page.refcount;
  (* Writing now must copy, leaving the shared original intact. *)
  let fresh, copied = Page.write p ~off:0 ~src:(Bytes.of_string "modified") ~src_off:0 ~len:8 in
  Alcotest.(check bool) "COW triggered" true copied;
  Alcotest.(check bool) "new page" true (fresh != p);
  let dst = Bytes.create 8 in
  Page.read p ~off:0 ~dst ~dst_off:0 ~len:8;
  Alcotest.(check string) "original preserved" "original" (Bytes.to_string dst);
  Page.read fresh ~off:0 ~dst ~dst_off:0 ~len:8;
  Alcotest.(check string) "copy modified" "modified" (Bytes.to_string dst);
  Alcotest.(check int) "old page deref'd" 1 p.Page.refcount

let test_page_write_after_last_unref () =
  let p = Page.create ~owner:1 in
  Page.share p;
  Page.unref p;
  (* Back to exclusive: write in place, no copy. *)
  let p', copied = Page.write p ~off:0 ~src:(Bytes.of_string "x") ~src_off:0 ~len:1 in
  Alcotest.(check bool) "no copy when exclusive again" false copied;
  Alcotest.(check bool) "same page" true (p == p')

let test_pool_alloc_free () =
  let pool = Pool.create ~owner:7 ~capacity:4 in
  Alcotest.(check int) "initial" 4 (Pool.available pool);
  let p = Pool.alloc pool in
  Alcotest.(check int) "allocated" 3 (Pool.available pool);
  (match Pool.free pool p with
  | Pool.Local -> ()
  | Pool.Foreign _ -> Alcotest.fail "own page reported foreign");
  Alcotest.(check int) "returned" 4 (Pool.available pool)

let test_pool_refill_on_empty () =
  let pool = Pool.create ~owner:7 ~capacity:1 in
  let _ = Pool.alloc pool in
  let _ = Pool.alloc pool in
  Alcotest.(check int) "refilled from kernel" 1 (Pool.refills pool)

let test_pool_foreign_return () =
  let pool_a = Pool.create ~owner:1 ~capacity:2 in
  let pool_b = Pool.create ~owner:2 ~capacity:2 in
  let page = Pool.alloc pool_a in
  (* B frees A's page: must be routed back to owner 1, not pooled by B. *)
  (match Pool.free pool_b page with
  | Pool.Foreign owner -> Alcotest.(check int) "owner id" 1 owner
  | Pool.Local -> Alcotest.fail "foreign page pooled locally");
  Alcotest.(check int) "B's pool untouched" 2 (Pool.available pool_b);
  Pool.take_back pool_a page;
  Alcotest.(check int) "A recovered its page" 2 (Pool.available pool_a)

let test_pool_take_back_rejects_foreign () =
  let pool_a = Pool.create ~owner:1 ~capacity:1 in
  let pool_b = Pool.create ~owner:2 ~capacity:1 in
  let page_b = Pool.alloc pool_b in
  Alcotest.check_raises "wrong owner" (Invalid_argument "Pool.take_back: not our page")
    (fun () -> Pool.take_back pool_a page_b)

let test_pool_shared_page_not_freed_early () =
  let pool = Pool.create ~owner:1 ~capacity:2 in
  let p = Pool.alloc pool in
  Page.share p;
  (match Pool.free pool p with
  | Pool.Local -> ()
  | Pool.Foreign _ -> Alcotest.fail "unexpected foreign");
  (* Still one reference out: the page must NOT be back in the free list. *)
  Alcotest.(check int) "not pooled while shared" 1 (Pool.available pool);
  (match Pool.free pool p with Pool.Local -> () | Pool.Foreign _ -> Alcotest.fail "foreign");
  Alcotest.(check int) "pooled after last unref" 2 (Pool.available pool)

let test_space_roundtrip () =
  let sp = Space.create ~pid:11 ~pool_capacity:64 in
  let payload = Bytes.init 10_000 (fun i -> Char.chr (i mod 256)) in
  let buf = Space.buffer_of_bytes sp payload ~off:0 ~len:10_000 in
  Alcotest.(check int) "page count" 3 (Array.length buf.Space.pages);
  let back = Space.to_bytes buf in
  Alcotest.(check string) "content intact" (Bytes.to_string payload) (Bytes.to_string back)

let test_space_cow_on_write () =
  let sp = Space.create ~pid:12 ~pool_capacity:64 in
  let payload = Bytes.make 8192 'a' in
  let buf = Space.buffer_of_bytes sp payload ~off:0 ~len:8192 in
  Space.share_for_send buf;
  (* Overwrite crossing a page boundary: both touched pages must COW. *)
  let copies = Space.write sp buf ~at:4000 ~src:(Bytes.make 200 'b') ~src_off:0 ~len:200 in
  Alcotest.(check int) "two pages copied" 2 copies;
  Alcotest.(check int) "space counted them" 2 (Space.cow_copies sp);
  let back = Space.to_bytes buf in
  Alcotest.(check char) "before region" 'a' (Bytes.get back 3999);
  Alcotest.(check char) "in region" 'b' (Bytes.get back 4100);
  Alcotest.(check char) "after region" 'a' (Bytes.get back 4200)

let test_space_unmap_returns_foreign () =
  let sender = Space.create ~pid:21 ~pool_capacity:16 in
  let receiver = Space.create ~pid:22 ~pool_capacity:16 in
  let payload = Bytes.make 4096 'q' in
  let buf = Space.buffer_of_bytes sender payload ~off:0 ~len:4096 in
  (* Receiver maps the sender's page, then unmaps it: the page must be
     reported for return to pid 21. *)
  let rbuf = Space.map_received receiver buf.Space.pages ~len:4096 in
  let foreign = Space.unmap receiver rbuf in
  Alcotest.(check int) "one page to return" 1 (List.length foreign);
  (match foreign with
  | [ (owner, _) ] -> Alcotest.(check int) "owner is the sender" 21 owner
  | _ -> Alcotest.fail "expected one foreign page")

let prop_space_roundtrip =
  QCheck.Test.make ~name:"space buffer_of_bytes/to_bytes roundtrip" ~count:100
    QCheck.(string_of_size (Gen.int_range 1 20000))
    (fun s ->
      let sp = Space.create ~pid:31 ~pool_capacity:64 in
      let buf = Space.buffer_of_bytes sp (Bytes.of_string s) ~off:0 ~len:(String.length s) in
      Bytes.to_string (Space.to_bytes buf) = s)

let prop_cow_preserves_sharers =
  QCheck.Test.make ~name:"COW writes never alter the shared original" ~count:100
    QCheck.(pair (int_range 0 4000) (int_range 1 96))
    (fun (at, len) ->
      let sp = Space.create ~pid:32 ~pool_capacity:64 in
      let original = Bytes.make 4096 'o' in
      let buf = Space.buffer_of_bytes sp original ~off:0 ~len:4096 in
      (* Keep a handle on the original pages, as a receiver would. *)
      let shared_pages = Array.copy buf.Space.pages in
      Space.share_for_send buf;
      ignore (Space.write sp buf ~at ~src:(Bytes.make len 'w') ~src_off:0 ~len);
      (* The shared originals must still read all-'o'. *)
      Array.for_all
        (fun p ->
          let d = Bytes.create 4096 in
          Page.read p ~off:0 ~dst:d ~dst_off:0 ~len:4096;
          Bytes.for_all (fun c -> c = 'o') d)
        shared_pages)

(* ---- the real shared page pool (§4.6 descriptor path) ---- *)

let test_pagepool_roundtrip () =
  let t = Pagepool.create ~pages:8 () in
  let h = Pagepool.handle t in
  let p = Pagepool.alloc h in
  Alcotest.(check bool) "allocated a real page" true (p <> Pagepool.no_page);
  Alcotest.(check int) "refcount 1" 1 (Pagepool.refcount t p);
  let payload = Bytes.of_string "zero-copy payload" in
  Pagepool.blit_from_bytes t ~src:payload ~src_off:0 ~page:p ~off:64 ~len:17;
  let back = Bytes.create 17 in
  Pagepool.blit_to_bytes t ~page:p ~off:64 ~dst:back ~dst_off:0 ~len:17;
  Alcotest.(check string) "content intact" "zero-copy payload" (Bytes.to_string back);
  let view = Pagepool.slice t ~page:p ~off:64 ~len:17 in
  Alcotest.(check char) "slice is a live view" 'z' (Bigarray.Array1.get view 0);
  Pagepool.release h p;
  Alcotest.(check int) "all pages free again" 8 (Pagepool.free_pages t)

let test_pagepool_double_release () =
  let t = Pagepool.create ~pages:4 () in
  let h = Pagepool.handle t in
  let p = Pagepool.alloc h in
  Pagepool.release h p;
  Alcotest.check_raises "double release" (Invalid_argument "Pagepool.release: double release")
    (fun () -> Pagepool.release h p)

let test_pagepool_use_after_release () =
  let t = Pagepool.create ~pages:4 () in
  let h = Pagepool.handle t in
  let p = Pagepool.alloc h in
  Pagepool.release h p;
  Alcotest.check_raises "slice of a freed page"
    (Invalid_argument "Pagepool.slice: use after release") (fun () ->
      ignore (Pagepool.slice t ~page:p ~off:0 ~len:8));
  Alcotest.check_raises "incref of a freed page"
    (Invalid_argument "Pagepool.incref: page is free") (fun () -> Pagepool.incref t p)

let test_pagepool_incref_sharing () =
  let t = Pagepool.create ~pages:4 () in
  let h = Pagepool.handle t in
  let p = Pagepool.alloc h in
  Pagepool.incref t p;
  Alcotest.(check int) "two references" 2 (Pagepool.refcount t p);
  Pagepool.release h p;
  (* One reference still out: the page must not be recycled yet. *)
  Alcotest.(check bool) "still live" true (Pagepool.refcount t p = 1);
  ignore (Pagepool.slice t ~page:p ~off:0 ~len:1);
  Pagepool.release_global t p;
  Alcotest.(check int) "recycled after last release" 4 (Pagepool.free_pages t)

let test_pagepool_exhaustion () =
  let t = Pagepool.create ~pages:3 () in
  let h = Pagepool.handle t in
  let got = List.init 3 (fun _ -> Pagepool.alloc h) in
  Alcotest.(check bool) "all real" true (List.for_all (fun p -> p <> Pagepool.no_page) got);
  Alcotest.(check int) "exhausted returns no_page" Pagepool.no_page (Pagepool.alloc h);
  Alcotest.(check (float 0.001)) "occupancy full" 1.0 (Pagepool.occupancy t);
  List.iter (Pagepool.release h) got;
  Alcotest.(check bool) "alloc works again" true (Pagepool.alloc h <> Pagepool.no_page)

let test_pagepool_spill_refill () =
  (* Drain through one handle, release through another: pages must migrate
     between caches via the global stack without loss or duplication. *)
  let pages = 4 * Pagepool.batch in
  let t = Pagepool.create ~pages () in
  let ha = Pagepool.handle t in
  let hb = Pagepool.handle t in
  let all = Array.init pages (fun _ -> Pagepool.alloc ha) in
  Array.iter (fun p -> Alcotest.(check bool) "real page" true (p <> Pagepool.no_page)) all;
  Alcotest.(check int) "drained" Pagepool.no_page (Pagepool.alloc hb);
  Array.iter (Pagepool.release hb) all;
  Alcotest.(check int) "nothing lost" pages (Pagepool.free_pages t);
  (* The releasing handle (cache + spilled global stock) can re-allocate
     every page back, and not one more. *)
  let again = Array.init pages (fun _ -> Pagepool.alloc hb) in
  Alcotest.(check bool) "no duplication: all real, then empty" true
    (Array.for_all (fun p -> p <> Pagepool.no_page) again
    && Pagepool.alloc hb = Pagepool.no_page);
  Array.iter (Pagepool.release hb) again

let test_pagepool_int_le_roundtrip () =
  let t = Pagepool.create ~pages:2 () in
  let h = Pagepool.handle t in
  let p = Pagepool.alloc h in
  let base = Pagepool.page_base p in
  List.iter
    (fun v ->
      Pagepool.set_int_le t base v;
      Alcotest.(check int) "int round trip" (v land max_int) (Pagepool.get_int_le t base))
    [ 0; 1; 0xDEAD_BEEF; max_int; min_int + 1 ];
  Pagepool.release h p

let suite =
  [
    Alcotest.test_case "page write/read" `Quick test_page_write_read;
    Alcotest.test_case "page copy-on-write" `Quick test_page_cow;
    Alcotest.test_case "page write after last unref" `Quick test_page_write_after_last_unref;
    Alcotest.test_case "pool alloc/free" `Quick test_pool_alloc_free;
    Alcotest.test_case "pool kernel refill" `Quick test_pool_refill_on_empty;
    Alcotest.test_case "pool foreign return" `Quick test_pool_foreign_return;
    Alcotest.test_case "pool take_back owner check" `Quick test_pool_take_back_rejects_foreign;
    Alcotest.test_case "pool holds shared pages" `Quick test_pool_shared_page_not_freed_early;
    Alcotest.test_case "space roundtrip" `Quick test_space_roundtrip;
    Alcotest.test_case "space COW on write" `Quick test_space_cow_on_write;
    Alcotest.test_case "space unmap returns foreign pages" `Quick test_space_unmap_returns_foreign;
    QCheck_alcotest.to_alcotest prop_space_roundtrip;
    QCheck_alcotest.to_alcotest prop_cow_preserves_sharers;
    Alcotest.test_case "pagepool alloc/blit/slice roundtrip" `Quick test_pagepool_roundtrip;
    Alcotest.test_case "pagepool double release raises" `Quick test_pagepool_double_release;
    Alcotest.test_case "pagepool use after release raises" `Quick test_pagepool_use_after_release;
    Alcotest.test_case "pagepool incref sharing" `Quick test_pagepool_incref_sharing;
    Alcotest.test_case "pagepool exhaustion returns no_page" `Quick test_pagepool_exhaustion;
    Alcotest.test_case "pagepool cross-handle spill/refill" `Quick test_pagepool_spill_refill;
    Alcotest.test_case "pagepool little-endian int roundtrip" `Quick test_pagepool_int_le_roundtrip;
  ]
