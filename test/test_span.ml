(* Sds_span: percentile interpolation fidelity, sim-path stage
   reconciliation against span.e2e, ring-path span correlation under an
   interleaved (inline / batched / descriptor) two-domain soak, the
   copy-policy visibility metrics, and the flight-recorder deadlock dump
   (watchdog fires, dump parses, state sections present). *)

module Obs = Sds_obs.Obs
module Span = Sds_obs.Span
module Flight = Sds_obs.Flight
module R = Sds_ring.Spsc_ring
module Cp = Socksdirect.Copy_policy
module Common = Sds_experiments.Common

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- summarize_hist: log-linear interpolation within a bucket ---- *)

let test_percentile_interpolation () =
  Obs.Metrics.reset ();
  (* 1024 uniform values across one log2 bucket [1024, 2048): the old
     clamp-to-upper-edge read every percentile as 2047-ish; log-linear
     interpolation spreads them geometrically through the bucket. *)
  let h = Obs.Metrics.histogram "spantest.interp" in
  for v = 1024 to 2047 do
    Obs.Metrics.observe h v
  done;
  let s = Obs.Metrics.summarize_hist h in
  Alcotest.(check bool) "p50 sits inside the bucket (~1024*2^0.5), not at the edge" true
    (s.Obs.Metrics.hs_p50 > 1300 && s.Obs.Metrics.hs_p50 < 1600);
  Alcotest.(check bool) "p99 interpolates near (not past) the top" true
    (s.Obs.Metrics.hs_p99 > 1900 && s.Obs.Metrics.hs_p99 <= s.Obs.Metrics.hs_max);
  Alcotest.(check bool) "percentiles are ordered" true
    (s.Obs.Metrics.hs_p50 <= s.Obs.Metrics.hs_p99
    && s.Obs.Metrics.hs_p99 <= s.Obs.Metrics.hs_p999);
  (* Exact min/max clamping is kept: a single observation reads back as
     itself at every percentile. *)
  let h1 = Obs.Metrics.histogram "spantest.single" in
  Obs.Metrics.observe h1 1500;
  let s1 = Obs.Metrics.summarize_hist h1 in
  Alcotest.(check int) "single observation: p50 = the value" 1500 s1.Obs.Metrics.hs_p50;
  Alcotest.(check int) "single observation: p999 = the value" 1500 s1.Obs.Metrics.hs_p999;
  (* Low clamp: values below the bucket's interpolated point clamp to min. *)
  let h2 = Obs.Metrics.histogram "spantest.zero" in
  Obs.Metrics.observe h2 0;
  let s2 = Obs.Metrics.summarize_hist h2 in
  Alcotest.(check int) "bucket 0 reads as 0" 0 s2.Obs.Metrics.hs_p50

(* ---- sim path: stage sums reconcile with span.e2e ---- *)

let test_sim_reconciliation () =
  Obs.Metrics.reset ();
  Flight.clear ();
  let run ~hosts ~size ~rounds ~warmup =
    let w = Common.make_world () in
    Sds_sim.Engine.install_trace_clock w.Common.engine;
    Sds_sim.Engine.install_span_clock w.Common.engine;
    let a = Common.add_host w in
    let b = if hosts = 1 then a else Common.add_host w in
    ignore
      (Common.pingpong
         (module Sds_apps.Sock_api.Sds)
         w ~client_host:a ~server_host:b ~size ~rounds ~warmup)
  in
  (* Small intra-host messages (inline copy path) and large inter-host
     ones (§4.6 remap path), so every stage histogram gets traffic. *)
  run ~hosts:1 ~size:64 ~rounds:256 ~warmup:16;
  run ~hosts:2 ~size:32768 ~rounds:64 ~warmup:8;
  Span.reset_clock ();
  let s h = Obs.Metrics.summarize_hist h in
  let app = s Span.h_app
  and queue = s Span.h_queue
  and wake = s Span.h_wake
  and parse = s Span.h_parse
  and copy = s Span.h_copy
  and remap = s Span.h_remap
  and e2e = s Span.h_e2e in
  Alcotest.(check bool) "spans were observed" true (e2e.Obs.Metrics.hs_count > 0);
  Alcotest.(check bool) "both payload-landing paths ran" true
    (copy.Obs.Metrics.hs_count > 0 && remap.Obs.Metrics.hs_count > 0);
  (* Every consumed sim message observes each stage exactly once, so the
     per-message stage counts agree and copy+remap partition the total. *)
  Alcotest.(check int) "wake and parse count the same messages"
    wake.Obs.Metrics.hs_count parse.Obs.Metrics.hs_count;
  Alcotest.(check int) "copy+remap partition the consumed messages"
    wake.Obs.Metrics.hs_count
    (copy.Obs.Metrics.hs_count + remap.Obs.Metrics.hs_count);
  Alcotest.(check int) "queue and e2e count the same messages"
    queue.Obs.Metrics.hs_count e2e.Obs.Metrics.hs_count;
  (* The acceptance bar: stage sums reconcile with end-to-end within 5%.
     (By construction they are exact; the slack absorbs histogramming.) *)
  let stage_sum =
    float_of_int
      (app.Obs.Metrics.hs_sum + queue.Obs.Metrics.hs_sum + wake.Obs.Metrics.hs_sum
      + parse.Obs.Metrics.hs_sum + copy.Obs.Metrics.hs_sum + remap.Obs.Metrics.hs_sum)
  in
  let e2e_sum = float_of_int e2e.Obs.Metrics.hs_sum in
  Alcotest.(check bool)
    (Printf.sprintf "stage sums (%.0f) reconcile with e2e (%.0f) within 5%%" stage_sum e2e_sum)
    true
    (e2e_sum > 0. && Float.abs (stage_sum -. e2e_sum) <= 0.05 *. e2e_sum)

(* ---- ring path: correlation under an interleaved two-domain soak ----

   Inline singles, vectored batches and descriptor messages interleave
   through one ring; at sample shift 0 every consumed message must resolve
   to exactly one flight-recorded span with monotone stamps.  The ring is
   kept small so the in-flight window stays inside the track's 256 slots
   (a deeper ring would recycle slots before the consumer resolves them —
   the tag check would drop those, which is the documented behaviour, but
   this test pins the exactly-once regime). *)

let test_ring_soak_correlation () =
  let saved_shift = Span.sample_shift () in
  Span.set_sample_shift 0;
  Obs.Metrics.reset ();
  Flight.clear ();
  Flight.set_capacity 8192;
  let msgs = 3000 in
  let r = R.create ~size:4096 () in
  let consumer =
    Domain.spawn (fun () ->
        let dst = Bytes.create 4096 in
        let entries = Array.make 4 0 in
        let got = ref 0 in
        while !got < msgs do
          let p = R.peek_packed r in
          if p = R.no_msg then R.wait_rx r
          else begin
            if R.is_desc_packed p then ignore (R.try_dequeue_descs r ~entries)
            else ignore (R.try_dequeue_packed r ~dst ~dst_off:0);
            incr got;
            let c = R.take_credit_return r in
            if c > 0 then R.return_credits r c
          end
        done)
  in
  let buf = Bytes.make 64 'a' in
  let srcs = Array.init 4 (fun _ -> (buf, 0, 64)) in
  let descs =
    [| R.desc_entry ~page:1 ~off:0 ~len:512; R.desc_entry ~page:2 ~off:0 ~len:512 |]
  in
  let sent = ref 0 in
  while !sent < msgs do
    match !sent mod 3 with
    | 0 ->
      R.stamp_send r;
      if R.try_enqueue r buf ~off:0 ~len:64 then incr sent else R.wait_tx r ~len:64
    | 1 ->
      let want = min 4 (msgs - !sent) in
      let n = R.enqueue_batch r (if want = 4 then srcs else Array.sub srcs 0 want) in
      if n = 0 then R.wait_tx r ~len:64 else sent := !sent + n
    | _ ->
      if R.try_enqueue_descs r descs ~n:2 then incr sent else R.wait_tx r ~len:16
  done;
  Domain.join consumer;
  let spans =
    List.filter (fun rc -> rc.Flight.kind = Flight.kind_span) (Flight.records ())
  in
  let seqs = List.map (fun rc -> rc.Flight.a) spans in
  let sorted = List.sort Int.compare seqs in
  Alcotest.(check int) "every consumed message resolved to exactly one span" msgs
    (List.length spans);
  Alcotest.(check (list int)) "sequence numbers are exactly 0..msgs-1"
    (List.init msgs Fun.id) sorted;
  List.iter
    (fun rc ->
      let send = rc.Flight.b and pub = rc.Flight.c and deq = rc.Flight.d in
      Alcotest.(check bool) "app stage non-negative (send <= pub)" true (send <= pub);
      Alcotest.(check bool) "queue stage non-negative (pub <= deq)" true (pub <= deq);
      Alcotest.(check bool) "app + queue = e2e" true
        (pub - send + (deq - pub) = deq - send))
    spans;
  Flight.set_capacity 512;
  Span.set_sample_shift saved_shift

(* ---- copy-policy visibility: threshold gauge, switch counter, trace ---- *)

let test_copy_policy_visibility () =
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  let p = Cp.create ~mode:Cp.Adaptive () in
  let gauge name =
    match List.assoc_opt name (Obs.Metrics.snapshot ()).Obs.Metrics.gauges with
    | Some v -> v
    | None -> -1
  in
  Alcotest.(check int) "gauge seeded with the base threshold" (Cp.threshold p)
    (gauge "copy_policy.threshold");
  (* 256 observations of threshold-sized payloads: the periodic adapt sees
     all recent bytes at >= threshold/2 and halves the crossover. *)
  for _ = 1 to 256 do
    ignore (Cp.decide p ~pool:None ~len:16384)
  done;
  Alcotest.(check int) "adapt halved the threshold" 8192 (Cp.threshold p);
  Alcotest.(check int) "gauge tracks the move" 8192 (gauge "copy_policy.threshold");
  Alcotest.(check int) "one threshold switch counted" 1
    (Obs.Metrics.counter_value "copy_policy.switches");
  let moves =
    List.filter (fun e -> e.Obs.Trace.tag = Obs.Trace.Policy_adapt) (Obs.Trace.drain ())
  in
  Alcotest.(check int) "one PolicyAdapt trace event" 1 (List.length moves);
  Alcotest.(check int) "trace event carries the new threshold" 8192
    (List.hd moves).Obs.Trace.arg

(* ---- flight recorder: deliberate deadlock -> watchdog dump -> parse ---- *)

let test_watchdog_dump () =
  let saved_shift = Span.sample_shift () in
  Span.set_sample_shift 0;
  Obs.Metrics.reset ();
  Flight.clear ();
  (* Some resolved traffic so the dump carries spans. *)
  let r = R.create ~size:4096 () in
  let dst = Bytes.create 64 in
  let payload = Bytes.make 64 'x' in
  for _ = 1 to 100 do
    R.stamp_send r;
    ignore (R.try_enqueue r payload ~off:0 ~len:64);
    ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0)
  done;
  (* A pool, so the pagepool state section has a live entry. *)
  let pool = Sds_vm.Pagepool.create ~pages:16 () in
  ignore (Sds_vm.Pagepool.occupancy pool);
  (* The deliberate deadlock: a consumer parked on an empty ring, and a
     progress probe that never advances. *)
  let r2 = R.create ~size:4096 () in
  let consumer =
    Domain.spawn (fun () ->
        let d = Bytes.create 64 in
        ignore (R.dequeue_packed_blocking r2 ~dst:d ~dst_off:0))
  in
  let path = Filename.temp_file "sds-flight-test" ".dump" in
  let wd =
    Flight.watchdog ~path ~reason:"deadlock" ~interval_s:0.05 ~stalls:3
      ~progress:(fun () -> 0)
      ()
  in
  let deadline = Unix.gettimeofday () +. 20. in
  let rec await () =
    match Flight.watchdog_fired wd with
    | Some p -> p
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "watchdog never fired";
      Unix.sleepf 0.02;
      await ()
  in
  let fired = await () in
  let text = In_channel.with_open_text fired In_channel.input_all in
  (* Release the parked domain before asserting, so a failure cannot hang
     the whole suite. *)
  ignore (R.try_enqueue r2 payload ~off:0 ~len:8);
  Domain.join consumer;
  Flight.watchdog_stop wd;
  let d = Flight.parse_dump text in
  Alcotest.(check string) "dump reason" "deadlock" d.Flight.d_reason;
  Alcotest.(check bool) "dump carries recent spans" true (List.length d.Flight.d_spans > 0);
  Alcotest.(check bool) "ring state section present" true
    (List.mem_assoc "ring" d.Flight.d_states);
  Alcotest.(check bool) "pagepool state section present" true
    (List.mem_assoc "pagepool" d.Flight.d_states);
  Alcotest.(check bool) "ring state shows the parked consumer" true
    (contains (List.assoc "ring" d.Flight.d_states) "rx_parked=true");
  Alcotest.(check bool) "pool state shows the live pool" true
    (contains (List.assoc "pagepool" d.Flight.d_states) "pages=16");
  Alcotest.(check bool) "metrics snapshot embedded" true
    (String.length d.Flight.d_metrics > 0);
  Sys.remove fired;
  Span.set_sample_shift saved_shift

let suite =
  [
    Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "sim stage reconciliation" `Quick test_sim_reconciliation;
    Alcotest.test_case "ring soak correlation" `Quick test_ring_soak_correlation;
    Alcotest.test_case "copy-policy visibility" `Quick test_copy_policy_visibility;
    Alcotest.test_case "flight recorder deadlock dump" `Quick test_watchdog_dump;
  ]
