(* The real-domain backend: shared protocol cores (Token_proto, Batch_ctl,
   Dispatch_core), the §4.2 token handoff on actual OCaml domains, the
   ring+pagepool socket layer, and the §4.5.2 prefork monitor — including
   the sim-vs-rt equivalence check that both backends drive the SAME
   dispatch policy code. *)

module P = Sds_proto.Token_proto
module B = Sds_proto.Batch_ctl
module D = Sds_proto.Dispatch_core
module Rt_dom = Sds_rt.Rt_dom
module Rt_token = Sds_rt.Rt_token
module Rt_sock = Sds_rt.Rt_sock
module Rt_monitor = Sds_rt.Rt_monitor
module Rt_prefork = Sds_rt.Rt_prefork
module Obs = Sds_obs.Obs

(* ---- shared protocol cores ---- *)

let test_token_proto () =
  let s = P.held ~holder:3 in
  Alcotest.(check bool) "held" true (P.is_held_by s ~id:3);
  Alcotest.(check bool) "not held by other" false (P.is_held_by s ~id:4);
  Alcotest.(check bool) "no request yet" false (P.has_request s);
  (* Same-holder acquire is the fast path. *)
  (match P.acquire s ~id:3 with
  | P.Fast -> ()
  | _ -> Alcotest.fail "holder re-acquire must be Fast");
  (* A free token is taken directly. *)
  (match P.acquire P.free ~id:7 with
  | P.Take s' -> Alcotest.(check bool) "taken" true (P.is_held_by s' ~id:7)
  | _ -> Alcotest.fail "free token must be Take");
  (* A held token gets a posted request; the slot then makes others Wait. *)
  let s' =
    match P.acquire s ~id:5 with
    | P.Post s' ->
      Alcotest.(check int) "requester recorded" 5 (P.requester s');
      Alcotest.(check bool) "still held" true (P.is_held_by s' ~id:3);
      s'
    | _ -> Alcotest.fail "first contender must Post"
  in
  (match P.acquire s' ~id:6 with
  | P.Wait -> ()
  | _ -> Alcotest.fail "second contender must Wait");
  (* The release fence: grant moves holdership to the requester. *)
  Alcotest.(check bool) "should_release" true (P.should_release s' ~id:3);
  let g = P.grant s' in
  Alcotest.(check bool) "granted" true (P.is_held_by g ~id:5);
  Alcotest.(check bool) "request slot cleared" false (P.has_request g);
  (* Release without a pending request frees the token. *)
  Alcotest.(check bool) "release frees" true (P.is_free (P.release s ~id:3));
  (* Release with a pending request grants instead. *)
  Alcotest.(check bool) "release grants" true (P.is_held_by (P.release s' ~id:3) ~id:5);
  (* Fork-time seize forces holdership, preserving a stranger's request. *)
  Alcotest.(check bool) "seize" true (P.is_held_by (P.seize s' ~id:9) ~id:9);
  Alcotest.(check int) "seize keeps request" 5 (P.requester (P.seize s' ~id:9))

let test_batch_ctl () =
  let c = B.create ~min_b:4 ~initial:32 ~max_b:256 () in
  Alcotest.(check int) "starts at initial" 32 (B.budget c);
  (* Full acceptance with no backlog: rest at the initial budget. *)
  B.observe c ~sent:32 ~attempted:32 ~pressure:false;
  Alcotest.(check int) "full acceptance rests at initial" 32 (B.budget c);
  (* Partial acceptance: no change. *)
  B.observe c ~sent:10 ~attempted:32 ~pressure:false;
  Alcotest.(check int) "partial acceptance keeps budget" 32 (B.budget c);
  (* Only an observed ring-full (zero progress) halves. *)
  B.observe c ~sent:0 ~attempted:32 ~pressure:false;
  Alcotest.(check int) "ring-full halves" 16 (B.budget c);
  B.observe c ~sent:0 ~attempted:16 ~pressure:false;
  B.observe c ~sent:0 ~attempted:8 ~pressure:false;
  B.observe c ~sent:0 ~attempted:4 ~pressure:false;
  Alcotest.(check int) "floor at min" 4 (B.budget c);
  (* Recovery climbs back toward initial on full acceptance... *)
  B.observe c ~sent:4 ~attempted:4 ~pressure:false;
  Alcotest.(check int) "recovers toward initial" 8 (B.budget c);
  B.observe c ~sent:8 ~attempted:8 ~pressure:false;
  B.observe c ~sent:16 ~attempted:16 ~pressure:false;
  B.observe c ~sent:32 ~attempted:32 ~pressure:false;
  Alcotest.(check int) "rests at initial again" 32 (B.budget c);
  (* ...and grows past it only under caller backlog pressure. *)
  B.observe c ~sent:32 ~attempted:32 ~pressure:true;
  Alcotest.(check int) "pressure grows past initial" 64 (B.budget c);
  B.observe c ~sent:64 ~attempted:64 ~pressure:true;
  B.observe c ~sent:128 ~attempted:128 ~pressure:true;
  Alcotest.(check int) "capped at max" 256 (B.budget c);
  B.observe c ~sent:256 ~attempted:256 ~pressure:false;
  Alcotest.(check int) "no pressure rests back at initial" 32 (B.budget c);
  B.reset c;
  Alcotest.(check int) "reset" 32 (B.budget c)

let test_dispatch_core () =
  (* Round-robin over equal backlogs is a deterministic cycle. *)
  let lens = [| 0; 0; 0; 0 |] in
  let rr = ref 0 in
  let picks =
    List.init 8 (fun _ ->
        match D.pick ~n:4 ~rr:!rr ~length:(fun i -> lens.(i)) ~capacity:(fun _ -> 8) with
        | Some i ->
          rr := (i + 1) mod 4;
          i
        | None -> Alcotest.fail "pick must succeed with room")
  in
  Alcotest.(check (list int)) "round-robin cycle" [ 0; 1; 2; 3; 0; 1; 2; 3 ] picks;
  (* Full backlogs are skipped. *)
  let lens = [| 8; 0; 8; 1 |] in
  (match D.pick ~n:4 ~rr:0 ~length:(fun i -> lens.(i)) ~capacity:(fun _ -> 8) with
  | Some 1 -> ()
  | _ -> Alcotest.fail "must skip full worker 0");
  (* All full: None. *)
  (match D.pick ~n:2 ~rr:0 ~length:(fun _ -> 8) ~capacity:(fun _ -> 8) with
  | None -> ()
  | Some _ -> Alcotest.fail "all-full pick must be None");
  (* Steal from the strictly longest sibling; ties break to earlier index. *)
  let lens = [| 0; 3; 5; 5 |] in
  (match D.steal_victim ~n:4 ~self:0 ~length:(fun i -> lens.(i)) with
  | Some 2 -> ()
  | _ -> Alcotest.fail "must steal from earliest longest backlog");
  (match D.steal_victim ~n:4 ~self:2 ~length:(fun i -> lens.(i)) with
  | Some 3 -> ()
  | _ -> Alcotest.fail "must exclude self");
  match D.steal_victim ~n:3 ~self:1 ~length:(fun _ -> 0) with
  | None -> ()
  | Some _ -> Alcotest.fail "empty siblings must be None"

(* ---- Rt_token on real domains ---- *)

let test_token_fast_path () =
  let dom = Rt_dom.self () in
  let tok = Rt_token.create ~name:"fast" ~holder:dom () in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    Rt_token.with_held tok ~dom (fun () -> incr hits)
  done;
  Alcotest.(check int) "every op ran" 10_000 !hits;
  Alcotest.(check int) "same-domain ops never hand off" 0 (Rt_token.handoffs tok);
  Alcotest.(check int) "still held" dom (Rt_token.holder tok)

let test_token_free_start () =
  let tok = Rt_token.create ~name:"free" ~holder:(-1) () in
  Alcotest.(check int) "starts free" (-1) (Rt_token.holder tok);
  let dom = Rt_dom.self () in
  Rt_token.with_held tok ~dom (fun () -> ());
  Alcotest.(check int) "first operator took it" dom (Rt_token.holder tok)

(* Two domains churn one token; the plainly-shared counter is correct only
   if with_held provides mutual exclusion across the takeovers (the grant
   is the release fence that publishes the counter writes). *)
let test_token_two_domain_handoff () =
  let tok = Rt_token.create ~name:"pair" ~holder:(-1) () in
  let counter = ref 0 in
  let expected = Atomic.make 0 in
  let ops = 20_000 in
  let churn () =
    let dom = Rt_dom.self () in
    let mine = ref 0 in
    for _ = 1 to ops do
      Rt_token.with_held tok ~dom (fun () -> incr counter);
      incr mine
    done;
    (* On a single-core box one domain can run its whole churn before the
       other is ever scheduled — the latecomer then takes a *free* token
       and no handoff happens.  Keep operating until a takeover has been
       served: while we hold, the peer's acquire must go through a grant,
       and if the peer holds, our own with_held forces one. *)
    while Rt_token.handoffs tok = 0 do
      Rt_token.with_held tok ~dom (fun () -> incr counter);
      incr mine
    done;
    (* Cooperative-hold contract: done with the token, hand it back. *)
    Rt_token.release tok ~dom;
    ignore (Atomic.fetch_and_add expected !mine)
  in
  let a = Rt_dom.spawn churn in
  let b = Rt_dom.spawn churn in
  Domain.join a;
  Domain.join b;
  Alcotest.(check int) "no lost updates across takeovers" (Atomic.get expected) !counter;
  Alcotest.(check bool) "takeovers actually happened" true (Rt_token.handoffs tok > 0)

(* A holder that stops operating must release; the release serves a
   pending requester without the holder ever running another op. *)
let test_token_release_grants () =
  let dom = Rt_dom.self () in
  let tok = Rt_token.create ~name:"coop" ~holder:dom () in
  let resumed = Atomic.make false in
  let requester =
    Rt_dom.spawn (fun () ->
        let d = Rt_dom.self () in
        Rt_token.acquire tok ~dom:d;
        Atomic.set resumed true)
  in
  (* Give the requester time to post its takeover and park; the main
     domain runs no further ops, so only release can serve it. *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "requester is blocked on an idle holder" false (Atomic.get resumed);
  Rt_token.release tok ~dom;
  Domain.join requester;
  Alcotest.(check bool) "release served the pending requester" true (Atomic.get resumed)

(* The §4.2 soak the issue asks for: 4 domains, 500k token-guarded ops.
   Every boundary with a pending request grants, so contending domains
   ping-pong holdership; how often they actually contend is up to the OS
   scheduler (a single-core box serializes domains in long slices), so the
   handoff assertion is existence, made deterministic the same way as the
   two-domain test: late finishers keep operating until a takeover has
   been served. *)
let test_token_soak_4dom () =
  let tok = Rt_token.create ~name:"soak" ~holder:(-1) () in
  let counter = ref 0 in
  let expected = Atomic.make 0 in
  let domains = 4 in
  let ops = 125_000 in
  let churn () =
    let dom = Rt_dom.self () in
    let mine = ref 0 in
    for _ = 1 to ops do
      Rt_token.with_held tok ~dom (fun () -> incr counter);
      incr mine
    done;
    while Rt_token.handoffs tok = 0 do
      Rt_token.with_held tok ~dom (fun () -> incr counter);
      incr mine
    done;
    Rt_token.release tok ~dom;
    ignore (Atomic.fetch_and_add expected !mine)
  in
  let ds = Array.init domains (fun _ -> Rt_dom.spawn churn) in
  Array.iter Domain.join ds;
  Alcotest.(check bool) "at least 500k ops ran" true (Atomic.get expected >= domains * ops);
  Alcotest.(check int) "zero lost updates" (Atomic.get expected) !counter;
  Alcotest.(check bool) "takeovers happened" true (Rt_token.handoffs tok > 0)

(* ---- Rt_sock ---- *)

let test_sock_inline_loopback () =
  let dom = Rt_dom.self () in
  let a, b = Rt_sock.pair ~a_owner:dom ~b_owner:dom () in
  let msg = Bytes.of_string "hello, real domains" in
  let n_msgs = 100 in
  for _ = 1 to n_msgs do
    Rt_sock.send a ~dom msg ~off:0 ~len:(Bytes.length msg)
  done;
  Rt_sock.close a ~dom;
  let dst = Bytes.create Rt_sock.max_inline in
  let got = ref 0 in
  let rec drain () =
    let n = Rt_sock.recv b ~dom dst ~off:0 ~len:(Bytes.length dst) in
    if n > 0 then begin
      Alcotest.(check string) "payload intact" (Bytes.to_string msg)
        (Bytes.sub_string dst 0 n);
      got := !got + n;
      drain ()
    end
  in
  drain ();
  Alcotest.(check int) "every byte arrived" (n_msgs * Bytes.length msg) !got;
  Alcotest.(check bool) "EOF latched" true (Rt_sock.at_eof b);
  Alcotest.(check int) "recv after EOF stays 0" 0
    (Rt_sock.recv b ~dom dst ~off:0 ~len:(Bytes.length dst));
  Alcotest.(check int) "bytes_sent" (n_msgs * Bytes.length msg) (Rt_sock.bytes_sent a);
  Alcotest.(check int) "bytes_received" (n_msgs * Bytes.length msg) (Rt_sock.bytes_received b)

(* Payloads above the crossover go through pagepool descriptor records;
   the stream must reassemble exactly, across a real domain boundary. *)
let test_sock_desc_path () =
  let dom = Rt_dom.self () in
  let payload = Rt_sock.zc_threshold + 4097 in
  let msgs = 50 in
  let a, b = Rt_sock.pair ~a_owner:dom ~b_owner:(-1) () in
  let receiver =
    Rt_dom.spawn (fun () ->
        let d = Rt_dom.self () in
        let dst = Bytes.create (Rt_sock.max_desc_per_record * 4096) in
        let total = ref 0 in
        let sum = ref 0 in
        let rec go () =
          let n = Rt_sock.recv b ~dom:d dst ~off:0 ~len:(Bytes.length dst) in
          if n > 0 then begin
            for i = 0 to n - 1 do
              sum := !sum + Char.code (Bytes.get dst i)
            done;
            total := !total + n;
            go ()
          end
        in
        go ();
        (!total, !sum))
  in
  let src = Bytes.create payload in
  for i = 0 to payload - 1 do
    Bytes.set src i (Char.chr (i land 0x7F))
  done;
  let expected_one = ref 0 in
  for i = 0 to payload - 1 do
    expected_one := !expected_one + (i land 0x7F)
  done;
  for _ = 1 to msgs do
    Rt_sock.send a ~dom src ~off:0 ~len:payload
  done;
  Rt_sock.close a ~dom;
  let total, sum = Domain.join receiver in
  Alcotest.(check int) "every byte crossed the descriptor path" (msgs * payload) total;
  Alcotest.(check int) "payload bytes intact" (msgs * !expected_one) sum

let test_sock_send_burst () =
  let dom = Rt_dom.self () in
  let a, b = Rt_sock.pair ~a_owner:dom ~b_owner:dom () in
  let payload = 64 in
  let buf = Bytes.make payload 'z' in
  let n = 1000 in
  let entries = Array.make 100 (buf, 0, payload) in
  let sent = ref 0 in
  while !sent < n do
    let k = min 100 (n - !sent) in
    Rt_sock.send_burst a ~dom entries ~n:k;
    sent := !sent + k;
    (* Interleave draining so the burst never wedges on ring credits. *)
    let dst = Bytes.create Rt_sock.max_inline in
    let continue = ref true in
    while !continue do
      if Rt_sock.bytes_received b >= !sent * payload then continue := false
      else if Rt_sock.recv b ~dom dst ~off:0 ~len:(Bytes.length dst) = 0 then continue := false
    done
  done;
  Alcotest.(check int) "burst bytes all received" (n * payload) (Rt_sock.bytes_received b)

(* ---- Rt_monitor / Rt_prefork ---- *)

let test_prefork_echo () =
  let workers = 2 and conns = 4 and msgs = 50 and payload = 256 in
  let s = Rt_prefork.run ~workers ~conns ~msgs_per_conn:msgs ~payload ~echo:true () in
  Alcotest.(check int) "every connection served once" conns (Rt_prefork.total_served s);
  Alcotest.(check int) "every byte arrived exactly once" (conns * msgs * payload)
    s.Rt_prefork.total_bytes

let test_prefork_invariants () =
  let workers = 4 and conns = 24 and msgs = 200 and payload = 64 in
  let s = Rt_prefork.run ~workers ~conns ~msgs_per_conn:msgs ~payload () in
  Alcotest.(check int) "conns served" conns (Rt_prefork.total_served s);
  Alcotest.(check int) "bytes exact" (conns * msgs * payload) s.Rt_prefork.total_bytes;
  Alcotest.(check int) "per-worker served sums" conns (Array.fold_left ( + ) 0 s.Rt_prefork.served);
  Array.iter
    (fun b -> Alcotest.(check bool) "no negative byte counts" true (b >= 0))
    s.Rt_prefork.bytes

(* Descriptor-path traffic through the full prefork stack. *)
let test_prefork_zero_copy () =
  let workers = 2 and conns = 2 and msgs = 40 in
  let payload = Rt_sock.zc_threshold in
  let s = Rt_prefork.run ~workers ~conns ~msgs_per_conn:msgs ~payload () in
  Alcotest.(check int) "16KiB payloads all arrive" (conns * msgs * payload)
    s.Rt_prefork.total_bytes

(* An idle worker must steal from a busy sibling's backlog (§4.5.2): park
   worker 1 without accepting and let worker 0 drain everything. *)
let test_monitor_steal () =
  let mon = Rt_monitor.create ~workers:2 () in
  let release_w1 = Atomic.make false in
  let w1 =
    Rt_dom.spawn (fun () ->
        ignore (Rt_monitor.register mon ~index:1);
        while not (Atomic.get release_w1) do
          Unix.sleepf 0.001
        done)
  in
  let conns = 6 in
  let served = Atomic.make 0 in
  let stolen = Atomic.make 0 in
  let w0 =
    Rt_dom.spawn (fun () ->
        let w = Rt_monitor.register mon ~index:0 in
        let d = Rt_dom.self () in
        let buf = Bytes.create Rt_sock.max_inline in
        let rec serve () =
          match Rt_monitor.accept mon ~index:0 with
          | None -> ()
          | Some sock ->
            while Rt_sock.recv sock ~dom:d buf ~off:0 ~len:(Bytes.length buf) > 0 do
              ()
            done;
            Rt_sock.release_tokens sock ~dom:d;
            Atomic.incr served;
            serve ()
        in
        serve ();
        Atomic.set stolen (Rt_monitor.stolen w))
  in
  while Rt_monitor.registered mon < 2 do
    Domain.cpu_relax ()
  done;
  let dom = Rt_dom.self () in
  for _ = 1 to conns do
    let sock = Rt_monitor.connect mon ~dom in
    Rt_sock.close sock ~dom
  done;
  (* Round-robin put half the backlog on the parked worker 1; worker 0
     can only reach [conns] by stealing those. *)
  while Atomic.get served < conns do
    Unix.sleepf 0.001
  done;
  Rt_monitor.close_listener mon;
  Domain.join w0;
  Atomic.set release_w1 true;
  Domain.join w1;
  Alcotest.(check int) "every connection served by worker 0" conns (Atomic.get served);
  Alcotest.(check bool) "some of them were stolen from worker 1" true (Atomic.get stolen > 0)

(* ---- flight-recorder state providers ---- *)

let test_flight_providers () =
  let dom = Rt_dom.self () in
  let tok = Rt_token.create ~name:"flighttok" ~holder:dom () in
  Rt_token.with_held tok ~dom (fun () -> ());
  let a, _b = Rt_sock.pair ~a_owner:dom ~b_owner:dom () in
  Rt_sock.send a ~dom (Bytes.make 8 'f') ~off:0 ~len:8;
  let dump = Sds_obs.Flight.render ~reason:"test" () in
  let has sub =
    let n = String.length dump and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dump i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rt_token section present" true (has "rt_token");
  Alcotest.(check bool) "token line shows holder" true (has "flighttok#");
  Alcotest.(check bool) "rt_conn section present" true (has "rt_conn");
  Alcotest.(check bool) "rt_monitor section present" true (has "rt_monitor");
  (* The registries hold tokens/socks weakly; keep them live past the
     render or the GC erases their lines from the dump. *)
  Alcotest.(check int) "token still held" dom (Rt_token.holder tok);
  Rt_sock.close a ~dom

(* ---- sim-vs-rt equivalence (the tentpole acceptance check) ----

   The same prefork workload shape — W workers, C connections, one 8-byte
   echo per connection — through the simulator backend and the real-domain
   backend.  Both must satisfy identical §4.5.2 invariants, and both must
   have gone through the one shared [Dispatch_core] policy, observed here
   by the shared monitor.dispatch.rr counter advancing by exactly C on
   each side. *)

let test_sim_rt_equivalence () =
  let module L = Socksdirect.Libsd in
  let module Prefork = Sds_apps.Prefork_server in
  let workers = 4 and conns_per_worker = 3 in
  let conns = workers * conns_per_worker in
  let payload = 8 in
  (* -- simulator backend -- *)
  let rr0 = Obs.Metrics.counter_value "monitor.dispatch.rr" in
  let w = Helpers.make_world () in
  let h = Helpers.add_host w in
  let server = Prefork.create h ~port:9300 ~workers in
  let ready = ref false in
  Prefork.start server ~engine:w.Helpers.engine ~conns_per_worker
    ~handler:Prefork.echo_handler ~on_ready:(fun () -> ready := true);
  let sim_client_bytes = ref 0 in
  Helpers.run w (fun () ->
      Helpers.wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:30 () in
      let buf = Bytes.create payload in
      for _ = 1 to conns do
        let fd = L.socket th in
        L.connect th fd ~dst:h ~port:9300;
        ignore (L.send th fd (Bytes.make payload 'e') ~off:0 ~len:payload);
        let got = ref 0 in
        while !got < payload do
          let n = L.recv th fd buf ~off:!got ~len:(payload - !got) in
          if n = 0 then failwith "eq-client: eof";
          got := !got + n
        done;
        sim_client_bytes := !sim_client_bytes + !got;
        L.close th fd
      done;
      Sds_sim.Proc.sleep_ns 1_000_000);
  let sim_served = Prefork.served server in
  let rr1 = Obs.Metrics.counter_value "monitor.dispatch.rr" in
  (* -- real-domain backend, identical workload shape -- *)
  let rt =
    Rt_prefork.run ~workers ~conns ~msgs_per_conn:1 ~payload ~echo:true ()
  in
  let rr2 = Obs.Metrics.counter_value "monitor.dispatch.rr" in
  (* Identical §4.5.2 invariants on both backends. *)
  Alcotest.(check int) "sim served every connection" conns
    (Array.fold_left ( + ) 0 sim_served);
  Alcotest.(check int) "rt served every connection" conns (Rt_prefork.total_served rt);
  Alcotest.(check int) "sim echoed every byte" (conns * payload) !sim_client_bytes;
  Alcotest.(check int) "rt received every byte" (conns * payload) rt.Rt_prefork.total_bytes;
  (* Both backends drove the SAME shared dispatch policy: the one
     monitor.dispatch.rr series advanced by exactly [conns] each time. *)
  Alcotest.(check int) "sim dispatched through Dispatch_core" conns (rr1 - rr0);
  Alcotest.(check int) "rt dispatched through Dispatch_core" conns (rr2 - rr1)

let suite =
  [
    Alcotest.test_case "proto: token transitions" `Quick test_token_proto;
    Alcotest.test_case "proto: batch controller" `Quick test_batch_ctl;
    Alcotest.test_case "proto: dispatch policy" `Quick test_dispatch_core;
    Alcotest.test_case "token: same-domain fast path" `Quick test_token_fast_path;
    Alcotest.test_case "token: free-start direct take" `Quick test_token_free_start;
    Alcotest.test_case "token: two-domain handoff" `Quick test_token_two_domain_handoff;
    Alcotest.test_case "token: release grants pending requester" `Quick test_token_release_grants;
    Alcotest.test_case "token: 4-domain 500k-op takeover soak" `Slow test_token_soak_4dom;
    Alcotest.test_case "sock: inline loopback + EOF" `Quick test_sock_inline_loopback;
    Alcotest.test_case "sock: descriptor path cross-domain" `Quick test_sock_desc_path;
    Alcotest.test_case "sock: vectored burst send" `Quick test_sock_send_burst;
    Alcotest.test_case "prefork: echo smoke" `Quick test_prefork_echo;
    Alcotest.test_case "prefork: dispatch invariants" `Quick test_prefork_invariants;
    Alcotest.test_case "prefork: zero-copy payloads" `Quick test_prefork_zero_copy;
    Alcotest.test_case "monitor: idle worker steals" `Quick test_monitor_steal;
    Alcotest.test_case "flight: rt state providers" `Quick test_flight_providers;
    Alcotest.test_case "equivalence: sim and rt share the protocol core" `Quick
      test_sim_rt_equivalence;
  ]
