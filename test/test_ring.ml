(* Tests for the ring-buffer library: the §4.2 SPSC ring plus the locked and
   buffer-allocating baselines.  Includes qcheck properties on FIFO order,
   credit conservation and the no-overwrite guarantee. *)

module R = Sds_ring.Spsc_ring

let enq r s = R.try_enqueue r (Bytes.of_string s) ~off:0 ~len:(String.length s)

let deq r =
  match R.try_dequeue ~auto_credit:true r with
  | Some { R.data; _ } -> Some (Bytes.to_string data)
  | None -> None

let test_fifo () =
  let r = R.create ~size:1024 () in
  Alcotest.(check bool) "enq a" true (enq r "alpha");
  Alcotest.(check bool) "enq b" true (enq r "bravo!");
  Alcotest.(check bool) "enq c" true (enq r "");
  Alcotest.(check (option string)) "deq a" (Some "alpha") (deq r);
  Alcotest.(check (option string)) "deq b" (Some "bravo!") (deq r);
  Alcotest.(check (option string)) "deq empty msg" (Some "") (deq r);
  Alcotest.(check (option string)) "drained" None (deq r)

let test_backpressure_no_overwrite () =
  let r = R.create ~size:256 () in
  (* Fill the ring; the enqueue that does not fit must be refused. *)
  let msg = String.make 56 'z' in
  let accepted = ref 0 in
  while enq r msg do
    incr accepted
  done;
  Alcotest.(check bool) "some accepted" true (!accepted > 0);
  (* Every accepted message is intact. *)
  for _ = 1 to !accepted do
    Alcotest.(check (option string)) "intact" (Some msg) (deq r)
  done;
  Alcotest.(check (option string)) "exactly as many out as in" None (deq r)

let test_wraparound () =
  let r = R.create ~size:128 () in
  (* Cycle enough to wrap many times. *)
  for i = 1 to 500 do
    let s = Printf.sprintf "m%04d" i in
    Alcotest.(check bool) "enq" true (enq r s);
    Alcotest.(check (option string)) "deq" (Some s) (deq r)
  done

let test_credit_return_batched () =
  let r = R.create ~size:1024 () in
  (* Without auto-credit, credits deplete until the consumer crosses half
     the ring, then return in one batch (§4.2). *)
  let sent = ref 0 in
  while R.try_enqueue r (Bytes.make 56 'x') ~off:0 ~len:56 do
    incr sent
  done;
  Alcotest.(check int) "ring filled" (1024 / 64) !sent;
  (* Drain without credit return: producer still blocked. *)
  let drained = ref 0 in
  let returned = ref 0 in
  let rec drain () =
    match R.try_dequeue r with
    | Some _ ->
      incr drained;
      let c = R.take_credit_return r in
      if c > 0 then returned := !returned + c;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all drained" !sent !drained;
  Alcotest.(check bool) "credit came back in >= half-ring batches" true (!returned >= 512);
  R.return_credits r !returned;
  Alcotest.(check int) "credits restored" 1024 (R.credits r)

let test_message_too_large () =
  let r = R.create ~size:256 () in
  Alcotest.check_raises "over half ring rejected"
    (Invalid_argument "Spsc_ring.try_enqueue: message larger than half ring") (fun () ->
      ignore (R.try_enqueue r (Bytes.create 200) ~off:0 ~len:200))

let test_flags_roundtrip () =
  let r = R.create ~size:1024 () in
  ignore (R.try_enqueue ~flags:0x2A r (Bytes.of_string "x") ~off:0 ~len:1);
  match R.try_dequeue ~auto_credit:true r with
  | Some { R.flags; _ } -> Alcotest.(check int) "flags" 0x2A flags
  | None -> Alcotest.fail "expected message"

let test_peek_len () =
  let r = R.create ~size:1024 () in
  Alcotest.(check (option int)) "empty peek" None (R.peek_len r);
  ignore (enq r "hello");
  Alcotest.(check (option int)) "peek len" (Some 5) (R.peek_len r);
  ignore (deq r)

(* ---- zero-allocation / batched APIs ---- *)

let test_dequeue_into () =
  let r = R.create ~size:1024 () in
  ignore (enq r "hello");
  ignore (R.try_enqueue ~flags:7 r (Bytes.of_string "world!") ~off:0 ~len:6);
  let dst = Bytes.make 16 '.' in
  (match R.try_dequeue_into ~auto_credit:true r ~dst ~dst_off:2 with
  | Some (len, flags) ->
    Alcotest.(check int) "len" 5 len;
    Alcotest.(check int) "flags" 0 flags;
    Alcotest.(check string) "copied at offset" "..hello" (Bytes.sub_string dst 0 7)
  | None -> Alcotest.fail "expected message");
  (match R.try_dequeue_into ~auto_credit:true r ~dst ~dst_off:0 with
  | Some (len, flags) ->
    Alcotest.(check int) "len 2" 6 len;
    Alcotest.(check int) "flags 2" 7 flags;
    Alcotest.(check string) "content 2" "world!" (Bytes.sub_string dst 0 6)
  | None -> Alcotest.fail "expected second message");
  Alcotest.(check bool) "drained" true (R.try_dequeue_into r ~dst ~dst_off:0 = None)

let test_dequeue_into_too_small () =
  let r = R.create ~size:1024 () in
  ignore (enq r "a long-ish message");
  let dst = Bytes.create 4 in
  Alcotest.check_raises "small buffer rejected"
    (Invalid_argument "Spsc_ring.try_dequeue_into: buffer too small") (fun () ->
      ignore (R.try_dequeue_into r ~dst ~dst_off:0));
  (* The message is still there, undamaged. *)
  Alcotest.(check (option string)) "intact after reject" (Some "a long-ish message") (deq r)

let test_enqueue_batch_prefix () =
  let r = R.create ~size:256 () in
  (* Each 56B message occupies 64 ring bytes; only 4 fit in a 256B ring. *)
  let m = Bytes.make 56 'q' in
  let srcs = Array.make 6 (m, 0, 56) in
  Alcotest.(check int) "prefix enqueued" 4 (R.enqueue_batch r srcs);
  Alcotest.(check int) "no credits left" 0 (R.credits r);
  Alcotest.(check int) "batch counted" 4 (R.enqueued r);
  let out = R.dequeue_batch ~auto_credit:true r ~max:10 in
  Alcotest.(check int) "all out" 4 (List.length out);
  List.iter (fun { R.data; _ } -> Alcotest.(check bytes) "content" m data) out

let test_dequeue_batch_max () =
  let r = R.create ~size:1024 () in
  List.iter (fun s -> ignore (enq r s)) [ "a"; "bb"; "ccc"; "dddd" ];
  let first = R.dequeue_batch ~auto_credit:true r ~max:3 in
  Alcotest.(check (list string)) "first three"
    [ "a"; "bb"; "ccc" ]
    (List.map (fun { R.data; _ } -> Bytes.to_string data) first);
  let rest = R.dequeue_batch ~auto_credit:true r ~max:3 in
  Alcotest.(check (list string)) "remainder" [ "dddd" ]
    (List.map (fun { R.data; _ } -> Bytes.to_string data) rest)

(* ---- page-descriptor records (§4.6 zero-copy handoff) ---- *)

let test_desc_entry_roundtrip () =
  let e = R.desc_entry ~page:123_456 ~off:712 ~len:4096 in
  Alcotest.(check int) "len" 4096 (R.desc_len e);
  Alcotest.(check int) "off" 712 (R.desc_off e);
  Alcotest.(check int) "page" 123_456 (R.desc_page e);
  Alcotest.check_raises "oversized len"
    (Invalid_argument "Spsc_ring.desc_entry: bad length") (fun () ->
      ignore (R.desc_entry ~page:0 ~off:0 ~len:4097));
  Alcotest.check_raises "bad offset"
    (Invalid_argument "Spsc_ring.desc_entry: bad offset") (fun () ->
      ignore (R.desc_entry ~page:0 ~off:4096 ~len:1))

let test_desc_enqueue_dequeue () =
  let r = R.create ~size:1024 () in
  let entries = [| R.desc_entry ~page:7 ~off:0 ~len:4096; R.desc_entry ~page:9 ~off:128 ~len:1000 |] in
  Alcotest.(check bool) "enqueued" true (R.try_enqueue_descs ~flags:0x3 r entries ~n:2);
  (* Interleave with an inline message: kinds must not mix up. *)
  ignore (enq r "inline");
  let peeked = R.peek_packed r in
  Alcotest.(check bool) "peek flags descriptor kind" true (R.is_desc_packed peeked);
  let out = Array.make 8 0 in
  let p = R.try_dequeue_descs ~auto_credit:true r ~entries:out in
  Alcotest.(check bool) "got a record" true (p <> R.no_msg);
  Alcotest.(check int) "entry count" 2 (R.desc_count_packed p);
  Alcotest.(check int) "flags preserved alongside flag_desc" 0x3
    (R.packed_flags p land lnot R.flag_desc);
  Alcotest.(check int) "first page" 7 (R.desc_page out.(0));
  Alcotest.(check int) "second off" 128 (R.desc_off out.(1));
  Alcotest.(check int) "second len" 1000 (R.desc_len out.(1));
  (* The inline message follows, un-corrupted, through the normal path. *)
  Alcotest.(check bool) "next is not a descriptor" false (R.is_desc_packed (R.peek_packed r));
  Alcotest.(check (option string)) "inline intact" (Some "inline") (deq r);
  Alcotest.(check (option string)) "drained" None (deq r)

let test_desc_wrong_kind_raises () =
  let r = R.create ~size:1024 () in
  ignore (enq r "not-a-descriptor");
  let out = Array.make 4 0 in
  Alcotest.check_raises "inline record via desc dequeue"
    (Invalid_argument "Spsc_ring.try_dequeue_descs: next record is not a descriptor (peek first)")
    (fun () -> ignore (R.try_dequeue_descs r ~entries:out));
  (* And the record survives the rejection. *)
  Alcotest.(check (option string)) "intact" (Some "not-a-descriptor") (deq r);
  ignore (R.try_enqueue_descs r [| R.desc_entry ~page:1 ~off:0 ~len:8 |] ~n:1);
  Alcotest.check_raises "entries buffer too small"
    (Invalid_argument "Spsc_ring.try_dequeue_descs: entries buffer too small") (fun () ->
      ignore (R.try_dequeue_descs r ~entries:[||]))

let test_desc_wraparound () =
  (* Drive descriptor records around the ring many times, mixed with inline
     records, so the 8-byte body stores cross the wrap point. *)
  let r = R.create ~size:256 () in
  let out = Array.make 4 0 in
  for i = 0 to 499 do
    let e0 = R.desc_entry ~page:(i * 2) ~off:(i mod 4096) ~len:(1 + (i mod 4096)) in
    let e1 = R.desc_entry ~page:((i * 2) + 1) ~off:0 ~len:4096 in
    Alcotest.(check bool) "enq descs" true (R.try_enqueue_descs r [| e0; e1 |] ~n:2);
    let s = Printf.sprintf "i%04d" i in
    Alcotest.(check bool) "enq inline" true (enq r s);
    let p = R.try_dequeue_descs ~auto_credit:true r ~entries:out in
    Alcotest.(check bool) "deq descs" true (p <> R.no_msg && R.desc_count_packed p = 2);
    if R.desc_page out.(0) <> i * 2 || R.desc_off out.(0) <> i mod 4096
       || R.desc_len out.(0) <> 1 + (i mod 4096)
       || R.desc_page out.(1) <> (i * 2) + 1
    then Alcotest.failf "iteration %d: descriptor corrupted across wrap" i;
    Alcotest.(check (option string)) "deq inline" (Some s) (deq r)
  done

(* ---- header checksum hardening ---- *)

let test_checksum_mixes_high_bits () =
  (* Lengths differing only in bits 16..31 must checksum differently: a torn
     or scribbled high half can not alias a valid header. *)
  for bit = 16 to 30 do
    let len = 5 lor (1 lsl bit) in
    Alcotest.(check bool)
      (Printf.sprintf "bit %d folds into checksum" bit)
      false
      (R.header_checksum len 0 = R.header_checksum 5 0)
  done

let test_zero_header_invalid () =
  (* An all-zero header (zeroed shared memory) must not validate. *)
  Alcotest.(check bool) "zero header rejected" false (R.header_checksum 0 0 = 0)

let test_corrupt_header_not_decoded () =
  (* Flip each byte of a live header in place: the message must become
     invisible (checksum failure), never decode as garbage. *)
  for i = 0 to R.header_bytes - 1 do
    let r = R.create ~size:1024 () in
    ignore (R.try_enqueue ~flags:3 r (Bytes.of_string "payload") ~off:0 ~len:7);
    let buf = R.For_testing.buf r in
    let off = R.For_testing.head_offset r + i in
    Bytes.set buf off (Char.chr (Char.code (Bytes.get buf off) lxor 0xFF));
    Alcotest.(check bool)
      (Printf.sprintf "corrupt byte %d hides message" i)
      true
      (R.try_dequeue ~auto_credit:true r = None)
  done

(* ---- randomized model-based test with the credit invariant ---- *)

(* Drive the ring with a random enqueue / dequeue / credit-return schedule,
   mirror it against a reference [Queue], and assert the documented
   invariant [credits + pending_return + in_flight + used = capacity] after
   every single step (credit returns taken by the consumer ride "in flight"
   until the scheduled delivery). *)
let test_model_invariant () =
  let rng = Random.State.make [| 0xC0FFEE |] in
  let r = R.create ~size:256 () in
  let model : string Queue.t = Queue.create () in
  let in_flight = ref 0 in
  let dst = Bytes.create 256 in
  let check_invariant step =
    let sum = R.credits r + R.pending_return r + !in_flight + R.used r in
    if sum <> R.capacity r then
      Alcotest.failf "step %d: credits %d + pending %d + in-flight %d + used %d <> capacity %d" step
        (R.credits r) (R.pending_return r) !in_flight (R.used r) (R.capacity r)
  in
  for step = 1 to 20_000 do
    (match Random.State.int rng 100 with
    | n when n < 45 ->
      (* Enqueue a random-length message (may be refused on no credits). *)
      let len = Random.State.int rng 90 in
      let s = String.init len (fun i -> Char.chr ((step + i) land 0xFF)) in
      if R.try_enqueue r (Bytes.of_string s) ~off:0 ~len then Queue.push s model
    | n when n < 90 ->
      (* Dequeue, alternating between the allocating and the into-buffer
         flavours; contents must match the model exactly. *)
      if Random.State.bool rng then (
        match (R.try_dequeue r, Queue.take_opt model) with
        | Some { R.data; _ }, Some expected ->
          Alcotest.(check string) "dequeue matches model" expected (Bytes.to_string data)
        | None, None -> ()
        | Some _, None -> Alcotest.fail "ring had message, model empty"
        | None, Some _ -> Alcotest.fail "model had message, ring empty")
      else (
        match (R.try_dequeue_into r ~dst ~dst_off:0, Queue.take_opt model) with
        | Some (len, _), Some expected ->
          Alcotest.(check string) "dequeue_into matches model" expected (Bytes.sub_string dst 0 len)
        | None, None -> ()
        | Some _, None -> Alcotest.fail "ring had message, model empty"
        | None, Some _ -> Alcotest.fail "model had message, ring empty")
    | _ ->
      (* Transport tick: pick up a batched credit return and/or deliver. *)
      let c = R.take_credit_return r in
      in_flight := !in_flight + c;
      if Random.State.bool rng && !in_flight > 0 then begin
        R.return_credits r !in_flight;
        in_flight := 0
      end);
    check_invariant step
  done;
  (* Drain everything and deliver all credits: the ring must end whole. *)
  let rec drain () =
    match R.try_dequeue r with
    | Some { R.data; _ } ->
      (match Queue.take_opt model with
      | Some expected -> Alcotest.(check string) "tail drain matches" expected (Bytes.to_string data)
      | None -> Alcotest.fail "extra message at drain");
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "model drained too" 0 (Queue.length model);
  let tail_credit = R.take_credit_return r in
  R.return_credits r (!in_flight + tail_credit);
  Alcotest.(check bool) "empty" true (R.is_empty r);
  (* Whatever is still pending below the half-ring threshold accounts for
     the remainder: credits + pending = capacity. *)
  Alcotest.(check int) "ring whole" (R.capacity r) (R.credits r + R.pending_return r)

(* Property: any sequence of enqueues (that the ring accepts) dequeues in
   FIFO order with intact contents. *)
let prop_fifo_intact =
  QCheck.Test.make ~name:"spsc ring preserves order and content" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 64) (string_of_size (Gen.int_range 0 100)))
    (fun msgs ->
      let r = R.create ~size:4096 () in
      let accepted =
        List.filter (fun m -> R.try_enqueue r (Bytes.of_string m) ~off:0 ~len:(String.length m)) msgs
      in
      let out = ref [] in
      let rec drain () =
        match R.try_dequeue ~auto_credit:true r with
        | Some { R.data; _ } ->
          out := Bytes.to_string data :: !out;
          drain ()
        | None -> ()
      in
      drain ();
      List.rev !out = accepted)

(* Property: interleaved produce/consume conserves the credit invariant
   credits + used + pending-return = capacity. *)
let prop_credit_conservation =
  QCheck.Test.make ~name:"credit conservation invariant" ~count:200
    QCheck.(list (pair bool (int_range 0 80)))
    (fun ops ->
      let r = R.create ~size:1024 () in
      let pending = ref 0 in
      List.iter
        (fun (is_enq, len) ->
          if is_enq then ignore (R.try_enqueue r (Bytes.create len) ~off:0 ~len)
          else begin
            ignore (R.try_dequeue r);
            let c = R.take_credit_return r in
            pending := !pending + c
          end)
        ops;
      (* Deliver outstanding credit returns. *)
      R.return_credits r !pending;
      let leftover = ref 0 in
      let rec drain () =
        match R.try_dequeue r with
        | Some _ ->
          leftover := !leftover + R.take_credit_return r;
          drain ()
        | None -> leftover := !leftover + R.take_credit_return r
      in
      drain ();
      (* After full drain and final credit return the ring must be whole
         minus only the not-yet-returned remainder below half ring. *)
      R.credits r + !leftover + (R.capacity r - R.credits r - !leftover) = R.capacity r
      && R.credits r + !leftover <= R.capacity r && R.is_empty r)

(* Property: the ring never accepts a message when it lacks credits (no
   silent overwrite), cross-checked against a model queue. *)
let prop_model_check =
  QCheck.Test.make ~name:"spsc ring vs model queue" ~count:150
    QCheck.(list (pair bool (string_of_size (Gen.int_range 0 60))))
    (fun ops ->
      let r = R.create ~size:512 () in
      let model = Queue.create () in
      let ok = ref true in
      List.iter
        (fun (is_enq, s) ->
          if is_enq then begin
            if R.try_enqueue r (Bytes.of_string s) ~off:0 ~len:(String.length s) then
              Queue.push s model
          end
          else
            match (R.try_dequeue ~auto_credit:true r, Queue.take_opt model) with
            | Some { R.data; _ }, Some expected -> if Bytes.to_string data <> expected then ok := false
            | None, None -> ()
            | Some _, None | None, Some _ -> ok := false)
        ops;
      !ok)

(* ---- locked queue baseline ---- *)

let test_locked_queue () =
  let q = Sds_ring.Locked_queue.create ~capacity_bytes:100 () in
  Alcotest.(check bool) "enq" true (Sds_ring.Locked_queue.try_enqueue q (Bytes.of_string "abc") ~off:0 ~len:3);
  Alcotest.(check bool) "cap respected" false
    (Sds_ring.Locked_queue.try_enqueue q (Bytes.create 200) ~off:0 ~len:200);
  (match Sds_ring.Locked_queue.try_dequeue q with
  | Some b -> Alcotest.(check string) "content" "abc" (Bytes.to_string b)
  | None -> Alcotest.fail "expected message");
  Alcotest.(check int) "empty" 0 (Sds_ring.Locked_queue.length q)

(* ---- alloc queue baseline ---- *)

let test_alloc_queue_fragmentation () =
  let q = Sds_ring.Alloc_queue.create ~slots:8 ~buffer_size:4096 () in
  Alcotest.(check bool) "enq small" true (Sds_ring.Alloc_queue.try_enqueue q (Bytes.of_string "tiny") ~off:0 ~len:4);
  (* Internal fragmentation: an MTU buffer was allocated for 4 bytes. *)
  Alcotest.(check int) "wasted bytes" (4096 - 4) (Sds_ring.Alloc_queue.bytes_wasted q);
  (match Sds_ring.Alloc_queue.try_dequeue q with
  | Some b -> Alcotest.(check string) "content back" "tiny" (Bytes.to_string b)
  | None -> Alcotest.fail "expected message")

let test_alloc_queue_slots () =
  let q = Sds_ring.Alloc_queue.create ~slots:2 ~buffer_size:64 () in
  let b = Bytes.create 8 in
  Alcotest.(check bool) "slot 1" true (Sds_ring.Alloc_queue.try_enqueue q b ~off:0 ~len:8);
  Alcotest.(check bool) "slot 2" true (Sds_ring.Alloc_queue.try_enqueue q b ~off:0 ~len:8);
  Alcotest.(check bool) "full" false (Sds_ring.Alloc_queue.try_enqueue q b ~off:0 ~len:8);
  ignore (Sds_ring.Alloc_queue.try_dequeue q);
  Alcotest.(check bool) "slot freed" true (Sds_ring.Alloc_queue.try_enqueue q b ~off:0 ~len:8)

let suite =
  [
    Alcotest.test_case "spsc fifo" `Quick test_fifo;
    Alcotest.test_case "spsc backpressure, no overwrite" `Quick test_backpressure_no_overwrite;
    Alcotest.test_case "spsc wraparound" `Quick test_wraparound;
    Alcotest.test_case "spsc batched credit return" `Quick test_credit_return_batched;
    Alcotest.test_case "spsc message too large" `Quick test_message_too_large;
    Alcotest.test_case "spsc header flags roundtrip" `Quick test_flags_roundtrip;
    Alcotest.test_case "spsc peek_len" `Quick test_peek_len;
    Alcotest.test_case "spsc dequeue_into" `Quick test_dequeue_into;
    Alcotest.test_case "spsc dequeue_into too-small buffer" `Quick test_dequeue_into_too_small;
    Alcotest.test_case "spsc enqueue_batch prefix" `Quick test_enqueue_batch_prefix;
    Alcotest.test_case "spsc dequeue_batch max" `Quick test_dequeue_batch_max;
    Alcotest.test_case "spsc descriptor entry packing" `Quick test_desc_entry_roundtrip;
    Alcotest.test_case "spsc descriptor enqueue/dequeue" `Quick test_desc_enqueue_dequeue;
    Alcotest.test_case "spsc descriptor kind mismatches raise" `Quick test_desc_wrong_kind_raises;
    Alcotest.test_case "spsc descriptor wraparound" `Quick test_desc_wraparound;
    Alcotest.test_case "spsc checksum mixes high bits" `Quick test_checksum_mixes_high_bits;
    Alcotest.test_case "spsc zero header invalid" `Quick test_zero_header_invalid;
    Alcotest.test_case "spsc corrupt header not decoded" `Quick test_corrupt_header_not_decoded;
    Alcotest.test_case "spsc randomized model + credit invariant" `Quick test_model_invariant;
    QCheck_alcotest.to_alcotest prop_fifo_intact;
    QCheck_alcotest.to_alcotest prop_credit_conservation;
    QCheck_alcotest.to_alcotest prop_model_check;
    Alcotest.test_case "locked queue baseline" `Quick test_locked_queue;
    Alcotest.test_case "alloc queue fragmentation" `Quick test_alloc_queue_fragmentation;
    Alcotest.test_case "alloc queue slot limit" `Quick test_alloc_queue_slots;
  ]
