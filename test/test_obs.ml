(* Observability substrate tests: sharded metric aggregation, histogram
   bucket boundaries, trace-ring wraparound, Chrome-trace round-trip, and
   the Stats percentile edge cases fixed alongside. *)

module Obs = Sds_obs.Obs
module Metrics = Obs.Metrics
module Trace = Obs.Trace

let test_counter_monotone () =
  let c = Metrics.counter "test.mono" in
  let v0 = Metrics.value c in
  Metrics.incr c;
  Alcotest.(check int) "incr" (v0 + 1) (Metrics.value c);
  Metrics.add c 41;
  Alcotest.(check int) "add" (v0 + 42) (Metrics.value c);
  (* Registration is idempotent: same name, same cells. *)
  let c' = Metrics.counter "test.mono" in
  Metrics.incr c';
  Alcotest.(check int) "same cells" (v0 + 43) (Metrics.value c)

let test_shard_aggregation () =
  let c = Metrics.counter "test.shards" in
  let g = Metrics.gauge "test.shards_gauge" in
  let v0 = Metrics.value c in
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to 1000 do
          Metrics.incr c
        done;
        Metrics.gauge_add g 5)
  in
  for _ = 1 to 1000 do
    Metrics.add c 2
  done;
  Metrics.gauge_add g 7;
  Domain.join d;
  (* Two domains wrote distinct shards; the read aggregates both. *)
  Alcotest.(check int) "counter over 2 domains" (v0 + 3000) (Metrics.value c);
  Alcotest.(check int) "gauge over 2 domains" 12 (Metrics.gauge_value g)

let test_bucket_boundaries () =
  Alcotest.(check int) "v=0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "v<0" 0 (Metrics.bucket_of (-5));
  Alcotest.(check int) "v=1" 1 (Metrics.bucket_of 1);
  (* Bucket b >= 1 covers [2^(b-1), 2^b): each power of two opens a new
     bucket and (2^k - 1) still sits in the previous one. *)
  for k = 1 to 40 do
    let p = 1 lsl k in
    Alcotest.(check int) (Printf.sprintf "v=2^%d" k) (k + 1) (Metrics.bucket_of p);
    Alcotest.(check int) (Printf.sprintf "v=2^%d-1" k) k (Metrics.bucket_of (p - 1))
  done

let test_histogram_summary () =
  let h = Metrics.histogram "test.hist" in
  for _ = 1 to 100 do
    Metrics.observe h 10
  done;
  Metrics.observe h 1_000_000;
  let s = Metrics.summarize_hist h in
  Alcotest.(check int) "count" 101 s.Metrics.hs_count;
  Alcotest.(check int) "sum" ((100 * 10) + 1_000_000) s.Metrics.hs_sum;
  Alcotest.(check int) "min exact" 10 s.Metrics.hs_min;
  Alcotest.(check int) "max exact" 1_000_000 s.Metrics.hs_max;
  (* p50 resolves to the upper edge of 10's bucket [8,16), clamped to at
     least the exact min. *)
  Alcotest.(check bool) "p50 in bucket" true (s.Metrics.hs_p50 >= 10 && s.Metrics.hs_p50 <= 16);
  Alcotest.(check bool) "p order" true
    (s.Metrics.hs_p50 <= s.Metrics.hs_p99
    && s.Metrics.hs_p99 <= s.Metrics.hs_p999
    && s.Metrics.hs_p999 <= s.Metrics.hs_max)

let test_probe_and_reset () =
  let cell = ref 5 in
  Metrics.probe "test.probe" (fun () -> !cell);
  Alcotest.(check int) "probe value" 5 (Metrics.counter_value "test.probe");
  Metrics.reset ();
  Alcotest.(check int) "probe re-based" 0 (Metrics.counter_value "test.probe");
  cell := 8;
  Alcotest.(check int) "probe delta after reset" 3 (Metrics.counter_value "test.probe")

let test_trace_wraparound () =
  Trace.set_capacity 64;
  Trace.clear ();
  for i = 1 to 200 do
    Trace.emit_n Trace.Batch i
  done;
  Alcotest.(check int) "dropped oldest" 136 (Trace.dropped ());
  let events = Trace.drain () in
  Alcotest.(check int) "retained = capacity" 64 (List.length events);
  (* The newest 64 survive, oldest first. *)
  let args = List.map (fun e -> e.Trace.arg) events in
  Alcotest.(check (list int)) "newest retained" (List.init 64 (fun i -> 137 + i)) args;
  Alcotest.(check int) "drain clears" 0 (List.length (Trace.drain ()));
  Trace.set_capacity 4096

let test_chrome_roundtrip () =
  Trace.clear ();
  Trace.emit Trace.Send;
  Trace.emit_n Trace.Recv 64;
  Trace.emit_n Trace.Batch 32;
  Trace.emit Trace.Token_takeover;
  Trace.emit_n Trace.Zerocopy_remap 32768;
  Trace.emit Trace.Ring_full;
  Trace.emit Trace.Fallback;
  let events = Trace.drain () in
  let js = Trace.to_chrome_json events in
  let back = Trace.parse_chrome_json js in
  Alcotest.(check int) "length" (List.length events) (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "ts" a.Trace.ts b.Trace.ts;
      Alcotest.(check int) "domain" a.Trace.domain b.Trace.domain;
      Alcotest.(check string) "tag" (Trace.tag_name a.Trace.tag) (Trace.tag_name b.Trace.tag);
      Alcotest.(check int) "arg" a.Trace.arg b.Trace.arg)
    events back

let test_trace_csv () =
  Trace.clear ();
  Trace.emit_n Trace.Send 1;
  Trace.emit_n Trace.Recv 2;
  let events = Trace.drain () in
  let csv = Trace.to_csv events in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + rows" 3 (List.length lines);
  Alcotest.(check string) "header" "ts_ns,domain,event,arg" (List.hd lines)

let test_stats_percentile_edges () =
  let module Stats = Sds_sim.Stats in
  let t = Stats.create () in
  for i = 1 to 1000 do
    Stats.add t (float_of_int i)
  done;
  Alcotest.(check (float 0.)) "p0 is exact min" 1.0 (Stats.percentile t 0.);
  Alcotest.(check (float 0.)) "min_v exact" 1.0 (Stats.min_v t);
  Alcotest.(check (float 0.)) "p999" 999.0 (Stats.percentile t 99.9);
  let s = Stats.summarize t in
  Alcotest.(check (float 0.)) "summary p999" 999.0 s.Stats.p999;
  (* p = 0 defined on a single sample too. *)
  let one = Stats.create () in
  Stats.add one 42.;
  Alcotest.(check (float 0.)) "p0 single" 42.0 (Stats.percentile one 0.)

let test_json_snapshot () =
  let c = Metrics.counter "test.json_counter" in
  Metrics.add c 7;
  let js = Metrics.to_json () in
  let has needle =
    let n = String.length needle and l = String.length js in
    let rec go i = i + n <= l && (String.sub js i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tag" true (has "socksdirect-obs/1");
  Alcotest.(check bool) "counter present" true (has "\"test.json_counter\": 7")

let suite =
  [
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotone;
    Alcotest.test_case "shard aggregation over 2 domains" `Quick test_shard_aggregation;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "histogram summary + percentiles" `Quick test_histogram_summary;
    Alcotest.test_case "probe and reset re-basing" `Quick test_probe_and_reset;
    Alcotest.test_case "trace wraparound drops oldest" `Quick test_trace_wraparound;
    Alcotest.test_case "chrome trace JSON round-trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "trace CSV shape" `Quick test_trace_csv;
    Alcotest.test_case "stats percentile p0/p999" `Quick test_stats_percentile_edges;
    Alcotest.test_case "metrics JSON snapshot" `Quick test_json_snapshot;
  ]
