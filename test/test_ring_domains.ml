(* Cross-domain stress tests for the §4.2 SPSC ring: a real producer Domain
   and a real consumer Domain hammering one ring, guarding the atomic
   payload-then-header-then-tail publication.

   Contents are position-dependent (seeded from the sequence number), and
   the consumer folds every byte into a running FNV-1a hash that must equal
   the producer-side hash computed independently — a torn read, reordered
   publication, or credit-accounting bug shows up as a hash mismatch or a
   stuck test. *)

module R = Sds_ring.Spsc_ring

(* Spin briefly, then sleep: on a single-core box a bare spin burns the
   whole timeslice before the peer can run; yielding the CPU keeps the
   stress test fast everywhere. *)
let backoff spins =
  if !spins < 200 then begin
    Domain.cpu_relax ();
    incr spins
  end
  else begin
    spins := 0;
    Unix.sleepf 1e-6
  end

let fnv1a h b =
  let h = h lxor b in
  h * 0x100000001B3 land max_int

(* Deterministic message for sequence [seq]: variable length, every byte a
   function of (seq, position). *)
let fill buf seq =
  let len = 1 + ((seq * 7919) mod 120) in
  for i = 0 to len - 1 do
    Bytes.unsafe_set buf i (Char.unsafe_chr ((seq + (i * 131)) land 0xFF))
  done;
  len

let hash_payload h buf len =
  let acc = ref h in
  for i = 0 to len - 1 do
    acc := fnv1a !acc (Char.code (Bytes.unsafe_get buf i))
  done;
  !acc

let stress ~msgs ~ring_size () =
  let r = R.create ~size:ring_size () in
  let consumer_hash = ref 0 in
  let consumer_msgs = ref 0 in
  let consumer =
    Domain.spawn (fun () ->
        let dst = Bytes.create 128 in
        let spins = ref 0 in
        while !consumer_msgs < msgs do
          let p = R.try_dequeue_packed r ~dst ~dst_off:0 in
          if p <> R.no_msg then begin
            consumer_hash := hash_payload !consumer_hash dst (R.packed_len p);
            incr consumer_msgs;
            let c = R.take_credit_return r in
            if c > 0 then R.return_credits r c
          end
          else backoff spins
        done)
  in
  let src = Bytes.create 128 in
  let producer_hash = ref 0 in
  let spins = ref 0 in
  for seq = 0 to msgs - 1 do
    let len = fill src seq in
    producer_hash := hash_payload !producer_hash src len;
    while not (R.try_enqueue r src ~off:0 ~len) do
      backoff spins
    done
  done;
  Domain.join consumer;
  (r, !producer_hash, !consumer_hash)

let test_two_domain_stress () =
  let msgs = 1_000_000 in
  let r, ph, ch = stress ~msgs ~ring_size:(1 lsl 16) () in
  Alcotest.(check int) "all messages crossed" msgs (R.dequeued r);
  Alcotest.(check bool) "checksums match (no torn reads)" true (ph = ch);
  Alcotest.(check bool) "ring drained" true (R.is_empty r);
  (* After the final sub-half-ring credit return is accounted, the ring is
     whole again: credits + pending = capacity. *)
  let tail = R.take_credit_return r in
  if tail > 0 then R.return_credits r tail;
  Alcotest.(check int) "credit invariant" (R.capacity r) (R.credits r + R.pending_return r)

(* Same stress through the vectored (batched) producer path. *)
let test_two_domain_batched () =
  let msgs = 200_000 in
  let batch = 16 in
  let r = R.create ~size:(1 lsl 16) () in
  let consumer_hash = ref 0 in
  let consumer_msgs = ref 0 in
  let consumer =
    Domain.spawn (fun () ->
        let dst = Bytes.create 128 in
        let spins = ref 0 in
        while !consumer_msgs < msgs do
          let p = R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0 in
          if p <> R.no_msg then begin
            consumer_hash := hash_payload !consumer_hash dst (R.packed_len p);
            incr consumer_msgs
          end
          else backoff spins
        done)
  in
  let bufs = Array.init batch (fun _ -> Bytes.create 128) in
  let producer_hash = ref 0 in
  let sent = ref 0 in
  while !sent < msgs do
    let n = min batch (msgs - !sent) in
    let srcs =
      Array.init n (fun i ->
          let len = fill bufs.(i) (!sent + i) in
          producer_hash := hash_payload !producer_hash bufs.(i) len;
          (bufs.(i), 0, len))
    in
    let off = ref 0 in
    let spins = ref 0 in
    while !off < n do
      let sub = if !off = 0 then srcs else Array.sub srcs !off (n - !off) in
      let accepted = R.enqueue_batch r sub in
      if accepted = 0 then backoff spins else off := !off + accepted
    done;
    sent := !sent + n
  done;
  Domain.join consumer;
  Alcotest.(check bool) "batched checksums match" true (!producer_hash = !consumer_hash);
  Alcotest.(check bool) "ring drained" true (R.is_empty r)

(* ---- §4.6 descriptor handoff soak: refcount transfer across domains ----

   Producer domain: allocate a page from its pool handle, stamp it with a
   seed-derived integer, publish a one-entry descriptor record (the
   ownership transfer).  Consumer domain: dequeue the descriptor, dawdle a
   pseudo-random while (so releases land at unpredictable points relative
   to the producer's allocations), verify the stamp, release the page via
   its own handle.  Recycled pages flow back to the producer through the
   pool's spill/refill machinery; at the end every page must be free and
   every stamp must have matched. *)
let test_two_domain_desc_handoff () =
  let module Pp = Sds_vm.Pagepool in
  let msgs = 200_000 in
  let npages = 512 in
  let pool = Pp.create ~pages:npages () in
  let r = R.create ~size:(1 lsl 14) () in
  let bad_stamps = ref 0 in
  let consumer_msgs = ref 0 in
  let consumer =
    Domain.spawn (fun () ->
        let h = Pp.handle pool in
        let entries = Array.make 4 0 in
        let spins = ref 0 in
        let delay = ref 0x9E3779B9 in
        while !consumer_msgs < msgs do
          if R.is_empty r then backoff spins
          else begin
            let p = R.try_dequeue_descs ~auto_credit:true r ~entries in
            if p <> R.no_msg then begin
              (* Randomized consume delay: a xorshift-driven pause between
                 taking ownership and releasing. *)
              delay := !delay lxor (!delay lsl 13);
              delay := !delay lxor (!delay lsr 7);
              for _ = 1 to !delay land 0x3F do
                Domain.cpu_relax ()
              done;
              let page = R.desc_page entries.(0) in
              let stamp = Pp.get_int_le pool (Pp.page_base page + R.desc_off entries.(0)) in
              if stamp <> (!consumer_msgs * 2654435761) land 0xFFFF_FFFF then incr bad_stamps;
              Pp.release h page;
              incr consumer_msgs
            end
            else backoff spins
          end
        done)
  in
  let h = Pp.handle pool in
  let spins = ref 0 in
  for seq = 0 to msgs - 1 do
    let page = ref (Pp.alloc h) in
    while !page = Pp.no_page do
      (* Consumer hasn't recycled yet; wait for pages to flow back. *)
      backoff spins;
      page := Pp.alloc h
    done;
    let off = (seq * 8) land 0xFF8 in
    Pp.set_int_le pool (Pp.page_base !page + off) ((seq * 2654435761) land 0xFFFF_FFFF);
    let e = R.desc_entry ~page:!page ~off ~len:8 in
    while not (R.try_enqueue_descs r [| e |] ~n:1) do
      backoff spins
    done
  done;
  Domain.join consumer;
  Alcotest.(check int) "every stamp matched" 0 !bad_stamps;
  Alcotest.(check bool) "ring drained" true (R.is_empty r);
  Alcotest.(check int) "every page back home (no leak, no double free)" npages
    (Pp.free_pages pool)

let suite =
  [
    Alcotest.test_case "two-domain stress 1M msgs" `Quick test_two_domain_stress;
    Alcotest.test_case "two-domain batched stress" `Quick test_two_domain_batched;
    Alcotest.test_case "two-domain descriptor handoff soak" `Quick test_two_domain_desc_handoff;
  ]
