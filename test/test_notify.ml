(* Tests for the §4.4 event-notification subsystem (Sds_notify): the
   eventcount waiter protocol, the adaptive polling↔interrupt policy,
   multi-domain stress through the ring's blocking operations, wait_any
   fairness, and allocation-freedom of the hot-path primitives. *)

module W = Sds_notify.Waiter
module P = Sds_notify.Policy
module R = Sds_ring.Spsc_ring

(* ---- policy state machine ---- *)

let test_policy_fixed () =
  (* Non-adaptive with no backoff: exactly [budget] polls of 1 unit, then
     park — the simulator's historical yield_rounds behaviour. *)
  let p = P.create ~adaptive:false ~backoff_rounds:0 ~budget:5 () in
  P.begin_wait p;
  for _ = 1 to 5 do
    Alcotest.(check int) "spin unit" 1 (P.poll p)
  done;
  Alcotest.(check int) "exhausted" 0 (P.poll p);
  Alcotest.(check bool) "interrupt mode" true (P.mode p = P.Interrupt);
  P.on_park p;
  Alcotest.(check int) "budget unchanged (non-adaptive)" 5 (P.budget p);
  P.on_wake p;
  Alcotest.(check bool) "polling again" true (P.mode p = P.Polling)

let test_policy_adaptive () =
  let p = P.create ~min_spin:4 ~max_spin:64 ~backoff_rounds:2 ~budget:32 () in
  (* Parks halve the budget down to min_spin. *)
  P.on_park p;
  Alcotest.(check int) "halved" 16 (P.budget p);
  P.on_park p;
  P.on_park p;
  P.on_park p;
  Alcotest.(check int) "floored at min_spin" 4 (P.budget p);
  (* Successes double it back up to max_spin. *)
  P.on_success p;
  Alcotest.(check int) "doubled" 8 (P.budget p);
  for _ = 1 to 10 do
    P.on_success p
  done;
  Alcotest.(check int) "capped at max_spin" 64 (P.budget p);
  (* The backoff phase bursts grow exponentially after the spin budget. *)
  P.begin_wait p;
  for _ = 1 to 64 do
    ignore (P.poll p)
  done;
  Alcotest.(check int) "backoff burst 1" 1 (P.poll p);
  Alcotest.(check int) "backoff burst 2" 2 (P.poll p);
  Alcotest.(check int) "then park" 0 (P.poll p)

(* ---- eventcount protocol basics (single domain) ---- *)

let test_prepare_cancel_parked_flag () =
  let w = W.create () in
  Alcotest.(check bool) "idle" false (W.parked w);
  let t = W.prepare_wait w in
  Alcotest.(check bool) "parked flag visible" true (W.parked w);
  W.cancel w;
  Alcotest.(check bool) "cancelled" false (W.parked w);
  (* A notify delivered between prepare and commit makes commit a no-op
     rather than a lost wakeup: commit must return immediately. *)
  let t2 = W.prepare_wait w in
  Alcotest.(check bool) "fresh ticket context" true (t2 >= t);
  W.notify w;
  W.commit_wait w t2;
  Alcotest.(check bool) "returned, unparked" false (W.parked w)

let test_notify_unparked_is_noop () =
  let w = W.create () in
  for _ = 1 to 1000 do
    W.notify w
  done;
  Alcotest.(check bool) "still idle" false (W.parked w)

(* ---- the lost-wakeup soak (the race the old bench parking layer had) ----

   The seed's bench/ring_bench.ml parking layer read [p.waiting] in
   [unpark] *before* the waiter had set it inside the lock: a wake issued
   while the peer was committing to sleep could be skipped, deadlocking any
   schedule where the condition is consumed-and-reset (turn-based
   handoff).  Two domains hand a turn token back and forth with randomized
   delays injected at the most hostile points — between the readiness
   check and the commit, and before the notify — so wakes keep landing
   inside the prepare/commit window.  Spin is disabled (spin:0) to force
   every wait through the park path.  Under the old protocol this schedule
   deadlocks within a few thousand rounds; the eventcount's
   prepare/commit ticket makes the window benign, so the soak completes. *)

let test_lost_wakeup_soak () =
  let rounds = 20_000 in
  let turn = Atomic.make 0 in
  let wa = W.create ~spin:0 ~backoff_rounds:0 () in
  let wb = W.create ~spin:0 ~backoff_rounds:0 () in
  let jitter seed =
    (* Deterministic pseudo-random busy delay, distinct per side. *)
    let s = ref seed in
    fun () ->
      s := (!s * 1103515245) + 12345;
      let n = (!s lsr 16) land 0x7F in
      for _ = 1 to n do
        Domain.cpu_relax ()
      done
  in
  let side me peer my_w peer_w delay =
    for _ = 1 to rounds do
      (* Raw protocol, hostile schedule: re-check, delay, then commit. *)
      while Atomic.get turn <> me do
        let ticket = W.prepare_wait my_w in
        delay ();
        if Atomic.get turn = me then W.cancel my_w else W.commit_wait my_w ticket
      done;
      delay ();
      Atomic.set turn peer;
      W.notify peer_w
    done
  in
  let b = Domain.spawn (fun () -> side 1 0 wb wa (jitter 99)) in
  side 0 1 wa wb (jitter 7);
  Domain.join b;
  Alcotest.(check int) "token home" 0 (Atomic.get turn)

(* ---- multi-domain stress through the ring's blocking operations ---- *)

(* One producer domain, one consumer domain, a deliberately small ring so
   both sides park constantly; every payload byte checksummed. *)
let stress_pair ~msgs ~ring_size ~payload () =
  let r = R.create ~size:ring_size () in
  let sum = ref 0 in
  let consumer =
    Domain.spawn (fun () ->
        let dst = Bytes.create 256 in
        for _ = 1 to msgs do
          let p = R.dequeue_packed_blocking ~auto_credit:true r ~dst ~dst_off:0 in
          sum := !sum + Bytes.get_uint8 dst (R.packed_len p - 1)
        done;
        !sum)
  in
  let src = Bytes.create 256 in
  for seq = 1 to msgs do
    Bytes.fill src 0 payload 'x';
    Bytes.set_uint8 src (payload - 1) (seq land 0xFF);
    R.enqueue_blocking r src ~off:0 ~len:payload
  done;
  let got = Domain.join consumer in
  let expect = ref 0 in
  for seq = 1 to msgs do
    expect := !expect + (seq land 0xFF)
  done;
  Alcotest.(check int) "checksum" !expect got;
  Alcotest.(check bool) "drained" true (R.is_empty r)

let test_stress_2_domains () = stress_pair ~msgs:1_000_000 ~ring_size:4096 ~payload:32 ()

let test_stress_4_domains () =
  (* Two independent producer/consumer pairs running concurrently: four
     domains' worth of park/notify traffic interleaving on the scheduler. *)
  let pair msgs =
    Domain.spawn (fun () -> stress_pair ~msgs ~ring_size:2048 ~payload:24 ())
  in
  let a = pair 250_000 and b = pair 250_000 in
  Domain.join a;
  Domain.join b

(* ---- wait_any ---- *)

let test_wait_any_rotation_fairness () =
  (* Deterministic fairness: with N sources continuously ready, successive
     wait_any calls must service every source before revisiting one (the
     scan starts past the last winner). *)
  let n = 4 in
  let w = W.create () in
  let rings = Array.init n (fun _ -> R.create ~size:1024 ()) in
  Array.iter (fun r -> R.set_rx_waiter r w) rings;
  let payload = Bytes.make 8 'p' in
  Array.iter (fun r -> ignore (R.try_enqueue r payload ~off:0 ~len:8)) rings;
  let ready i = not (R.is_empty rings.(i)) in
  let seen = Array.make n 0 in
  for _ = 1 to n do
    let i = W.wait_any w ~n ~ready in
    seen.(i) <- seen.(i) + 1
  done;
  (* All four rings still ready the whole time — rotation must have visited
     each exactly once. *)
  Array.iteri (fun i c -> Alcotest.(check int) (Printf.sprintf "ring %d serviced once" i) 1 c) seen

let test_wait_any_cross_domain () =
  (* One consumer waiter over N rings fed by a producer domain round-robin;
     every ring must be serviced (no starvation) and every message arrive. *)
  let n = 4 in
  let per_ring = 5_000 in
  let w = W.create ~spin:64 () in
  let rings = Array.init n (fun _ -> R.create ~size:1024 ()) in
  Array.iter (fun r -> R.set_rx_waiter r w) rings;
  let producer =
    Domain.spawn (fun () ->
        let src = Bytes.make 8 'q' in
        for seq = 0 to (n * per_ring) - 1 do
          R.enqueue_blocking rings.(seq mod n) src ~off:0 ~len:8
        done)
  in
  let ready i = not (R.is_empty rings.(i)) in
  let dst = Bytes.create 64 in
  let got = Array.make n 0 in
  for _ = 1 to n * per_ring do
    let i = W.wait_any w ~n ~ready in
    let p = R.try_dequeue_packed ~auto_credit:true rings.(i) ~dst ~dst_off:0 in
    Alcotest.(check bool) "ready ring non-empty" true (p <> R.no_msg);
    got.(i) <- got.(i) + 1
  done;
  Domain.join producer;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "ring %d complete" i) per_ring c)
    got

(* ---- allocation-freedom of the hot-path primitives ---- *)

let minor_words_per_op iters f =
  (* Warm up, then measure. *)
  for _ = 1 to 100 do
    f ()
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int iters

let test_notify_allocation_free () =
  Sds_obs.Obs.Metrics.set_enabled true;
  Sds_obs.Obs.Trace.set_enabled true;
  let w = W.create () in
  let words = minor_words_per_op 100_000 (fun () -> W.notify w) in
  Alcotest.(check bool) "notify allocates nothing" true (words < 0.01);
  let words =
    minor_words_per_op 100_000 (fun () ->
        ignore (W.prepare_wait w);
        W.cancel w)
  in
  Alcotest.(check bool) "prepare_wait/cancel allocate nothing" true (words < 0.01)

let test_instrumented_ring_ops_allocation_free () =
  (* The enqueue/dequeue fast paths with notification wired in (the parked
     flag load on enqueue, the tx-waiter notify on auto-credit return). *)
  Sds_obs.Obs.Metrics.set_enabled true;
  Sds_obs.Obs.Trace.set_enabled true;
  let r = R.create ~size:(1 lsl 16) () in
  let payload = Bytes.make 64 'x' in
  let dst = Bytes.create 256 in
  let words =
    minor_words_per_op 100_000 (fun () ->
        ignore (R.try_enqueue r payload ~off:0 ~len:64);
        ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0))
  in
  Alcotest.(check bool) "enqueue+dequeue with notify allocate nothing" true (words < 0.01)

let suite =
  [
    Alcotest.test_case "policy: fixed budget = sim yield_rounds" `Quick test_policy_fixed;
    Alcotest.test_case "policy: adaptive resize + backoff" `Quick test_policy_adaptive;
    Alcotest.test_case "waiter: prepare/cancel parked flag" `Quick test_prepare_cancel_parked_flag;
    Alcotest.test_case "waiter: notify with no waiter is no-op" `Quick test_notify_unparked_is_noop;
    Alcotest.test_case "lost-wakeup soak (randomized delays)" `Slow test_lost_wakeup_soak;
    Alcotest.test_case "2-domain stress, 1M blocking msgs" `Slow test_stress_2_domains;
    Alcotest.test_case "4-domain stress, 2x250k blocking msgs" `Slow test_stress_4_domains;
    Alcotest.test_case "wait_any: deterministic rotation fairness" `Quick
      test_wait_any_rotation_fairness;
    Alcotest.test_case "wait_any: cross-domain, no starvation" `Slow test_wait_any_cross_domain;
    Alcotest.test_case "notify + prepare_wait allocation-free" `Quick test_notify_allocation_free;
    Alcotest.test_case "instrumented ring ops allocation-free" `Quick
      test_instrumented_ring_ops_allocation_free;
  ]
