let () =
  Alcotest.run "socksdirect"
    [
      ("sim", Test_sim.suite);
      ("ring", Test_ring.suite);
      ("ring-domains", Test_ring_domains.suite);
      ("notify", Test_notify.suite);
      ("vm", Test_vm.suite);
      ("transport", Test_transport.suite);
      ("verbs", Test_verbs.suite);
      ("kernel", Test_kernel.suite);
      ("core", Test_core.suite);
      ("core2", Test_core2.suite);
      ("shim", Test_shim.suite);
      ("baselines", Test_baselines.suite);
      ("apps", Test_apps.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("span", Test_span.suite);
      ("check", Test_check.suite);
      ("rt", Test_rt.suite);
      ("fault", Test_fault.suite);
    ]
