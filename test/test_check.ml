(* Sds_check: trigger/non-trigger fixtures for every lint rule, tree-level
   (.mli parity) checks over a synthesized tree, the interleaving checker on
   the shipped protocol models (must be clean) and on seeded-bug mutations
   (must be caught), and the shared het-map the obj-unsafe rule blesses. *)

module Lint = Sds_check.Lint
module Interleave = Sds_check.Interleave
module Models = Sds_check.Models
module Hmap = Sds_het.Hmap

let cfg = Lint.default

(* Locate the repo root (walking up to dune-project) — tests run from
   _build/default/test, and the build context carries the full source
   tree, so model extraction and tree lint both work against it.  [None]
   only in a sandboxed run without sources: skip those tests. *)
let repo_root () =
  let rec find_root d =
    if Sys.file_exists (Filename.concat d "dune-project") then Some d
    else
      let parent = Filename.dirname d in
      if parent = d then None else find_root parent
  in
  find_root (Sys.getcwd ())

let with_root f = match repo_root () with None -> () | Some root -> f root

let rules_of ~path source =
  List.map (fun v -> v.Lint.rule) (Lint.lint_source ~config:cfg ~path ~source)

let check_rules msg ~path source expected =
  Alcotest.(check (list string)) msg expected (rules_of ~path source)

(* ---- atomic-confined ---- *)

let test_atomic_rule () =
  check_rules "Atomic use outside the allowlist is flagged" ~path:"lib/transport/x.ml"
    "let x = Atomic.make 0" [ "atomic-confined" ];
  check_rules "Stdlib-prefixed Atomic is still caught" ~path:"lib/core/x.ml"
    "let x = Stdlib.Atomic.make 0" [ "atomic-confined" ];
  check_rules "open Atomic is an escape hatch, flagged" ~path:"lib/core/x.ml"
    "open Atomic\nlet x = make 0" [ "atomic-confined" ];
  check_rules "aliasing Atomic is an escape hatch, flagged" ~path:"lib/core/x.ml"
    "module A = Atomic\nlet x = A.make 0" [ "atomic-confined" ];
  check_rules "the ring is allowlisted" ~path:"lib/ring/spsc_ring.ml"
    "let x = Atomic.make 0" [];
  check_rules "the waiter is allowlisted" ~path:"lib/notify/waiter.ml"
    "let x = Atomic.make 0" [];
  check_rules "tests may use Atomic (cross-domain harnesses)" ~path:"test/t.ml"
    "let x = Atomic.make 0" [];
  check_rules "suppression covers the subtree" ~path:"lib/core/x.ml"
    "let x = (Atomic.make 0 [@sds.allow \"atomic-confined\"])" []

(* ---- poly-compare ---- *)

let test_compare_rule () =
  check_rules "bare polymorphic compare under lib/ is flagged" ~path:"lib/sim/x.ml"
    "let f a b = compare a b" [ "poly-compare" ];
  check_rules "Stdlib.compare is the same thing" ~path:"lib/sim/x.ml"
    "let f a b = Stdlib.compare a b" [ "poly-compare" ];
  check_rules "monomorphic comparators pass" ~path:"lib/sim/x.ml"
    "let f a b = Int.compare a b && Float.compare a b && String.compare a b" [];
  check_rules "structural = in a data-path library is flagged" ~path:"lib/ring/x.ml"
    "let f a = a = (1, 2)" [ "poly-compare" ];
  check_rules "structural <> on a constructor application too" ~path:"lib/notify/x.ml"
    "let f a = a <> Some 3" [ "poly-compare" ];
  check_rules "string-literal = in a data-path library is flagged" ~path:"lib/core/x.ml"
    "let f a = a = \"hot\"" [ "poly-compare" ];
  check_rules "scalar = is fine even in the data path" ~path:"lib/ring/x.ml"
    "let f (a : int) b = a = b" [];
  check_rules "structural = outside the data path is tolerated" ~path:"lib/sim/x.ml"
    "let f a = a = (1, 2)" []

(* ---- obj-unsafe ---- *)

let test_obj_rule () =
  check_rules "Obj outside the safe module is flagged" ~path:"lib/sim/x.ml"
    "let f x = Obj.repr x" [ "obj-unsafe" ];
  check_rules "Obj.magic is flagged in tests too" ~path:"test/t.ml"
    "let f x = Obj.magic x" [ "obj-unsafe" ];
  check_rules "the het-map module is the one sanctioned user" ~path:"lib/het/hmap.ml"
    "let f x = Obj.repr x" []

(* ---- hot-alloc ---- *)

let test_hot_rule () =
  check_rules "closure inside [@sds.hot] is flagged" ~path:"lib/ring/x.ml"
    "let[@sds.hot] f x = let g y = y + x in g 3" [ "hot-alloc" ];
  check_rules "List combinators inside [@sds.hot] are flagged" ~path:"lib/sim/x.ml"
    "let[@sds.hot] f xs = List.map succ xs" [ "hot-alloc" ];
  check_rules "Printf inside [@sds.hot] is flagged" ~path:"lib/sim/x.ml"
    "let[@sds.hot] f x = Printf.printf \"%d\" x" [ "hot-alloc" ];
  check_rules "string concatenation inside [@sds.hot] is flagged" ~path:"lib/sim/x.ml"
    "let[@sds.hot] f a b = a ^ b" [ "hot-alloc" ];
  check_rules "lazy inside [@sds.hot] is flagged" ~path:"lib/sim/x.ml"
    "let[@sds.hot] f x = lazy (x + 1)" [ "hot-alloc" ];
  check_rules "the curried parameter chain is the function, not a closure"
    ~path:"lib/sim/x.ml" "let[@sds.hot] f a b ~c ?(d = 0) () = a + b + c + d" [];
  check_rules "[@sds.cold] exempts the rare slow path" ~path:"lib/sim/x.ml"
    "let[@sds.hot] f x = if x > 0 then x else ((List.length [ x ]) [@sds.cold])" [];
  check_rules "unannotated functions may allocate freely" ~path:"lib/sim/x.ml"
    "let f xs = List.map succ xs" []

(* ---- bigarray-unsafe ---- *)

let test_bigarray_rule () =
  check_rules "unsafe Bigarray access outside the allowlist is flagged" ~path:"lib/transport/x.ml"
    "let[@sds.hot] f b i = Bigarray.Array1.unsafe_get b i" [ "bigarray-unsafe" ];
  check_rules "even hot functions do not excuse a non-allowlisted file" ~path:"lib/core/x.ml"
    "let[@sds.hot] f b i v = Bigarray.Array1.unsafe_set b i v" [ "bigarray-unsafe" ];
  check_rules "allowlisted file but cold context is flagged" ~path:"lib/vm/pagepool.ml"
    "let f b i = Bigarray.Array1.unsafe_get b i" [ "bigarray-unsafe" ];
  check_rules "allowlisted file + [@sds.hot] passes" ~path:"lib/vm/pagepool.ml"
    "let[@sds.hot] f b i = Bigarray.Array1.unsafe_get b i" [];
  check_rules "the ring is allowlisted too" ~path:"lib/ring/spsc_ring.ml"
    "let[@sds.hot] f b i = Bigarray.Array1.unsafe_get b i" [];
  check_rules "[@sds.cold] subtrees inside hot functions are not exempt" ~path:"lib/vm/pagepool.ml"
    "let[@sds.hot] f b i = if i > 0 then 'x' else ((Bigarray.Array1.unsafe_get b i) [@sds.cold])"
    [ "bigarray-unsafe" ];
  check_rules "checked Bigarray accessors pass anywhere" ~path:"lib/transport/x.ml"
    "let f b i = Bigarray.Array1.get b i" [];
  check_rules "tests may use unsafe Bigarray (harness code)" ~path:"test/t.ml"
    "let f b i = Bigarray.Array1.unsafe_get b i" []

(* ---- metric-registration ---- *)

let test_metric_rule () =
  check_rules "registration at module top level passes" ~path:"lib/transport/x.ml"
    "let c = Obs.Metrics.counter \"shm.sends\"" [];
  check_rules "registration inside a function is flagged" ~path:"lib/transport/x.ml"
    "let f () = Obs.Metrics.counter \"shm.sends\"" [ "metric-registration" ];
  check_rules "registration inside an [@sds.hot] function is flagged" ~path:"lib/ring/x.ml"
    "let[@sds.hot] f () = ignore (Obs.Metrics.histogram \"ring.lat\")"
    [ "metric-registration" ];
  check_rules "any Metrics module prefix is recognized" ~path:"lib/core/x.ml"
    "let f () = Sds_obs.Obs.Metrics.gauge \"pool.pages\"" [ "metric-registration" ];
  check_rules "a top-level let () = block is top level" ~path:"lib/ring/x.ml"
    "let () = ignore (Obs.Metrics.probe \"ring.created\" reader)" [];
  check_rules "single-segment names break the layer.noun convention" ~path:"lib/core/x.ml"
    "let c = Obs.Metrics.counter \"sends\"" [ "metric-registration" ];
  check_rules "uppercase names break the layer.noun convention" ~path:"lib/core/x.ml"
    "let c = Obs.Metrics.counter \"Libsd.Sends\"" [ "metric-registration" ];
  check_rules "empty segments break the layer.noun convention" ~path:"lib/core/x.ml"
    "let c = Obs.Metrics.counter \"libsd..sends\"" [ "metric-registration" ];
  check_rules "underscores and digits are fine" ~path:"lib/notify/x.ml"
    "let h = Obs.Metrics.histogram \"notify.wake_latency_ns2\"" [];
  check_rules "incr/observe/gauge_set are not registrations" ~path:"lib/core/x.ml"
    "let f c = Obs.Metrics.incr c; Obs.Metrics.gauge_set g 3" [];
  check_rules "the registry implementation itself is exempt" ~path:"lib/obs/obs.ml"
    "let f () = Metrics.counter \"x\"" [];
  check_rules "tests may register ad hoc" ~path:"test/t.ml"
    "let f () = Obs.Metrics.counter \"x\"" [];
  check_rules "suppression works here too" ~path:"lib/core/x.ml"
    "let f () = (Obs.Metrics.counter \"x\" [@sds.allow \"metric-registration\"])" []

(* ---- fault-confined ---- *)

let test_fault_rule () =
  Alcotest.(check bool)
    "fault-confined is a registered rule" true
    (List.mem "fault-confined" Lint.all_rules);
  check_rules "inject outside the crash-recovery allowlist is flagged"
    ~path:"lib/transport/x.ml" "let f () = Sds_fault.inject \"shm.site\""
    [ "fault-confined" ];
  check_rules "aliasing Sds_fault outside the allowlist is an escape hatch, flagged"
    ~path:"lib/core/x.ml" "module F = Sds_fault\nlet f () = F.inject \"x.y\""
    [ "fault-confined" ];
  check_rules "allowlisted file, cold context: bare inject passes"
    ~path:"lib/rt/rt_token.ml" "let f () = Sds_fault.inject \"rt_token.grant\"" [];
  check_rules "allowlisted file, hot function, armed-gated inject passes"
    ~path:"lib/rt/rt_sock.ml"
    "let[@sds.hot] f () = if Sds_fault.armed () then Sds_fault.inject \"rt_sock.mid_publish\""
    [];
  check_rules "the gate condition may be compound" ~path:"lib/rt/rt_sock.ml"
    "let[@sds.hot] f n = if n > 0 && Sds_fault.armed () then Sds_fault.inject \"rt_sock.s\""
    [];
  check_rules "ungated inject inside [@sds.hot] is flagged even when allowlisted"
    ~path:"lib/rt/rt_sock.ml"
    "let[@sds.hot] f () = Sds_fault.inject \"rt_sock.mid_publish\"" [ "fault-confined" ];
  check_rules "an unrelated if does not count as the gate" ~path:"lib/rt/rt_sock.ml"
    "let[@sds.hot] f n = if n > 0 then Sds_fault.inject \"rt_sock.s\"" [ "fault-confined" ];
  check_rules "armed/disarm/fired_sites are not injection points"
    ~path:"lib/transport/x.ml" "let f () = Sds_fault.armed ()" [];
  check_rules "tests may inject ad hoc" ~path:"test/t.ml"
    "let f () = Sds_fault.inject \"anything\"" [];
  check_rules "suppression works here too" ~path:"lib/core/x.ml"
    "let f () = (Sds_fault.inject \"x.y\" [@sds.allow \"fault-confined\"])" []

(* ---- fence-discipline ---- *)

let test_fence_rule () =
  check_rules "plain write to the published tail is flagged" ~path:"lib/ring/x.ml"
    "let f t = t.tail <- t.tail + 1" [ "fence-discipline" ];
  check_rules "plain write to the waiter state word is flagged" ~path:"lib/notify/x.ml"
    "let f t = t.state <- 2" [ "fence-discipline" ];
  check_rules "the field name is owned however deep the record path"
    ~path:"lib/rt/x.ml" "let f t = t.inner.seq <- 0" [ "fence-discipline" ];
  check_rules "non-synchronizing fields may stay plain" ~path:"lib/ring/x.ml"
    "let f t = t.head <- t.head + 1" [];
  check_rules "outside the protocol libraries the names are free"
    ~path:"lib/sim/x.ml" "let f t = t.tail <- 3" [];
  check_rules "the single-domain allocator is allowlisted"
    ~path:"lib/ring/alloc_queue.ml" "let f t = t.tail <- t.tail + 1" [];
  check_rules "reads of the fields are not writes" ~path:"lib/ring/x.ml"
    "let f t = t.tail + 1" [];
  check_rules "suppression covers the subtree" ~path:"lib/ring/x.ml"
    "let f t = ((t.tail <- 3) [@sds.allow \"fence-discipline\"])" []

(* ---- github annotation format ---- *)

let test_github_format () =
  let v =
    {
      Lint.rule = "fence-discipline";
      file = "lib/ring/x.ml";
      line = 7;
      col = 3;
      message = "plain write,\nwith: specials and 100%";
    }
  in
  Alcotest.(check string)
    "workflow command with escaped properties and message"
    "::error file=lib/ring/x.ml,line=7,col=3,title=fence-discipline::plain write,%0Awith: \
     specials and 100%25"
    (Lint.to_github v);
  Alcotest.(check bool) "fence-discipline is a registered rule" true
    (List.mem "fence-discipline" Lint.all_rules);
  Alcotest.(check bool) "parse-error is a registered rule (so --rule accepts it)" true
    (List.mem "parse-error" Lint.all_rules)

(* ---- parse errors surface, not crash ---- *)

let test_parse_error () =
  check_rules "syntax errors are reported as violations" ~path:"lib/sim/x.ml" "let = "
    [ "parse-error" ]

(* ---- tree-level: ml_files walk + .mli parity ---- *)

let make_tree () =
  let root = Filename.temp_dir "sds_check" "tree" in
  let mkdir p = Sys.mkdir p 0o755 in
  mkdir (Filename.concat root "lib");
  mkdir (Filename.concat root "lib/sub");
  mkdir (Filename.concat root "bin");
  let write rel s =
    let oc = open_out (Filename.concat root rel) in
    output_string oc s;
    close_out oc
  in
  write "lib/sub/a.ml" "let a = 1";
  write "lib/sub/b.ml" "let b = 2";
  write "lib/sub/b.mli" "val b : int";
  write "bin/c.ml" "let c = 3";
  root

let test_mli_parity () =
  let root = make_tree () in
  Alcotest.(check (list string))
    "walk finds every .ml under the scan roots"
    [ "bin/c.ml"; "lib/sub/a.ml"; "lib/sub/b.ml" ]
    (Lint.ml_files ~config:cfg ~root);
  let missing = Lint.check_mli_parity ~config:cfg ~root in
  Alcotest.(check (list string))
    "exactly the interface-less lib module is flagged" [ "lib/sub/a.ml" ]
    (List.map (fun v -> v.Lint.file) missing);
  List.iter (fun v -> Alcotest.(check string) "rule slug" "mli-parity" v.Lint.rule) missing;
  let all = Lint.lint_tree ~config:cfg ~root in
  Alcotest.(check int) "lint_tree = per-file + parity" 1 (List.length all)

(* The repo itself must be clean: the satellite fixes (monomorphic
   comparators, the het-map, the added interfaces) are exactly what makes
   this hold.  Locate the repo root by walking up to dune-project. *)
let test_repo_clean () =
  with_root (fun root ->
      let viols = Lint.lint_tree ~config:cfg ~root in
      List.iter (fun v -> Printf.printf "unexpected: %s\n" (Lint.to_string v)) viols;
      Alcotest.(check int) "sdlint is clean on the repository" 0 (List.length viols))

(* ---- interleaving checker: the DSL itself ---- *)

let test_interleave_basics () =
  let open Interleave in
  (* Two unsynchronized plain writers: the canonical data race. *)
  let racy =
    {
      globals = [ ("x", 0) ];
      threads =
        [
          { name = "a"; body = [ Plain_store ("x", Int 1) ] };
          { name = "b"; body = [ Plain_store ("x", Int 2) ] };
        ];
    }
  in
  let o = check racy in
  Alcotest.(check bool) "plain/plain write race is reported" true (o.races <> []);
  (* Same program through atomics: clean. *)
  let sync =
    {
      globals = [ ("x", 0) ];
      threads =
        [
          { name = "a"; body = [ Store ("x", Int 1) ] };
          { name = "b"; body = [ Store ("x", Int 2) ] };
        ];
    }
  in
  Alcotest.(check bool) "atomic/atomic is not a race" true (ok (check sync));
  (* A thread parked with no peer to wake it: a lost wakeup. *)
  let stuck =
    {
      globals = [ ("x", 0) ];
      threads = [ { name = "w"; body = [ Block_until (Rel (Eq, Var "x", Int 1)) ] } ];
    }
  in
  let o = check stuck in
  Alcotest.(check bool) "terminal parked thread counts as a lost wakeup" true
    (o.lost_wakeups > 0);
  Alcotest.(check (list string)) "and names the parked thread" [ "w" ] o.blocked_threads;
  (* CAS: exactly one of two contending threads wins. *)
  let cas_race =
    {
      globals = [ ("x", 0); ("wins", 0) ];
      threads =
        [
          {
            name = "a";
            body =
              [
                Cas ("x", Int 0, Int 1, "ok");
                If (Rel (Eq, Reg "ok", Int 1), [ Load ("wins", "w"); Store ("wins", Add (Reg "w", Int 1)) ], []);
              ];
          };
          {
            name = "b";
            body =
              [
                Cas ("x", Int 0, Int 2, "ok");
                If (Rel (Eq, Reg "ok", Int 1), [ Load ("wins", "w"); Store ("wins", Add (Reg "w", Int 1)) ], []);
              ];
          };
        ];
    }
  in
  Alcotest.(check bool) "contending CAS elects exactly one winner" true (ok (check cas_race));
  Alcotest.(check bool) "exploration actually ran" true ((check cas_race).executions > 0)

let test_models_clean () =
  with_root (fun root ->
      List.iter
        (fun (name, p) ->
          let o = Interleave.check p in
          if not (Interleave.ok o) then
            Alcotest.failf "model %s not clean: %a" name Interleave.pp_outcome o)
        (Models.all ~root))

(* Mutation tests: each seeded bug class must be caught by the right
   detector.  These are the regression tests for the checker itself — if a
   refactor of [Interleave] (or of the extraction the models are now
   derived through) stops catching one of these, the checker has lost its
   reason to exist. *)

let mutation ~root name = List.assoc name (Models.mutations ~root)

let test_mutation_unfenced () =
  with_root (fun root ->
      let o = Interleave.check (mutation ~root "ring-publication-unfenced") in
      Alcotest.(check bool) "dropping the atomic tail publication races" true (o.races <> []))

let test_mutation_header_late () =
  with_root (fun root ->
      let o = Interleave.check (mutation ~root "ring-publication-header-late") in
      Alcotest.(check bool) "publishing before the header write trips the assert" true
        (o.assert_failures <> []))

let test_mutation_no_recheck () =
  with_root (fun root ->
      let o = Interleave.check (mutation ~root "park-notify-no-recheck") in
      Alcotest.(check bool) "dropping the parked-flag re-check loses a wakeup" true
        (o.lost_wakeups > 0))

let test_mutation_release_early () =
  with_root (fun root ->
      let o = Interleave.check (mutation ~root "desc-handoff-release-early") in
      Alcotest.(check bool) "releasing the page before the payload read is caught" true
        (o.races <> [] || o.assert_failures <> []))

let test_mutation_token_unfenced () =
  with_root (fun root ->
      let o = Interleave.check (mutation ~root "token-handoff-unfenced") in
      Alcotest.(check bool) "losing the grant's atomicity races on socket state" true
        (o.races <> []))

let test_mutation_token_early_grant () =
  with_root (fun root ->
      let o = Interleave.check (mutation ~root "token-handoff-early-grant") in
      Alcotest.(check bool) "granting before the drain is caught" true
        (o.races <> [] || o.assert_failures <> []))

let test_mutations_all_caught () =
  with_root (fun root ->
      List.iter
        (fun (name, p) ->
          let o = Interleave.check p in
          if Interleave.ok o then Alcotest.failf "mutation %s escaped every detector" name)
        (Models.mutations ~root))

(* ---- DPOR: reduction correctness and power ----

   The sleep-set reduction must (a) prune commuting interleavings, (b) keep
   exploring conflicting ones, and (c) never change a verdict.  (a)/(b) are
   pinned on minimal programs where the expected counts are obvious; (c) is
   pinned across every shipped model and every seeded mutation. *)

let two name_a a name_b b =
  let open Interleave in
  {
    globals = [ ("x", 0); ("y", 0) ];
    threads = [ { name = name_a; body = a }; { name = name_b; body = b } ];
  }

let test_dpor_commutes () =
  let open Interleave in
  (* Disjoint variables commute: one interleaving suffices. *)
  let disjoint = two "a" [ Store ("x", Int 1) ] "b" [ Store ("y", Int 1) ] in
  Alcotest.(check int) "disjoint stores: naive explores both orders" 2
    (check ~dpor:false disjoint).executions;
  Alcotest.(check int) "disjoint stores: DPOR explores one" 1
    (check ~dpor:true disjoint).executions;
  (* Two reads of the same variable commute too. *)
  let reads = two "a" [ Load ("x", "r") ] "b" [ Load ("x", "r") ] in
  Alcotest.(check int) "read/read: naive explores both orders" 2
    (check ~dpor:false reads).executions;
  Alcotest.(check int) "read/read: DPOR explores one" 1
    (check ~dpor:true reads).executions

let test_dpor_conflicts () =
  let open Interleave in
  (* Write/write on one variable conflicts: both orders are distinct
     terminal states and DPOR must visit both. *)
  let ww = two "a" [ Store ("x", Int 1) ] "b" [ Store ("x", Int 2) ] in
  Alcotest.(check int) "conflicting stores: DPOR keeps both orders" 2
    (check ~dpor:true ww).executions;
  (* A read/write conflict whose outcome depends on the order: DPOR must
     still reach the failing order. *)
  let rw =
    two "a"
      [ Load ("x", "r"); Assert (Rel (Eq, Reg "r", Int 0), "saw the write") ]
      "b" [ Store ("x", Int 1) ]
  in
  Alcotest.(check bool) "read/write conflict: DPOR reaches the failing order" true
    ((check ~dpor:true rw).assert_failures <> []);
  (* And a plain/plain conflict is still reported as a race under DPOR. *)
  let racy = two "a" [ Plain_store ("x", Int 1) ] "b" [ Plain_store ("x", Int 2) ] in
  Alcotest.(check bool) "plain/plain race survives the reduction" true
    ((check ~dpor:true racy).races <> [])

(* Per-model regression bounds: if the reduction degrades, these counts
   blow up long before wall-clock does.  Current values (with plenty of
   headroom): ring 2, park-notify 6, token-handoff 6, token-crash 1. *)
let test_dpor_execution_bounds () =
  with_root (fun root ->
      let bounds =
        [
          ("ring-publication", 8);
          ("park-notify", 16);
          ("desc-handoff", 8);
          ("token-handoff", 16);
          ("token-crash-recovery", 8);
        ]
      in
      List.iter
        (fun (name, p) ->
          let cap = List.assoc name bounds in
          let n = (Interleave.check ~dpor:true p).executions in
          if n > cap then
            Alcotest.failf "model %s: DPOR explored %d executions (cap %d)" name n cap)
        (Models.all ~root))

(* The headline acceptance bar: on the token-handoff model, at the same
   preemption bound, the reduced checker explores >= 10x fewer executions
   than the unreduced one — and both agree the model is clean. *)
let test_dpor_reduction_ratio () =
  with_root (fun root ->
      let p = List.assoc "token-handoff" (Models.all ~root) in
      let reduced = Interleave.check ~dpor:true p in
      let naive = Interleave.check ~dpor:false p in
      Alcotest.(check bool) "reduced verdict clean" true (Interleave.ok reduced);
      Alcotest.(check bool) "naive verdict clean" true (Interleave.ok naive);
      if naive.executions < 10 * reduced.executions then
        Alcotest.failf "DPOR reduction below 10x: %d reduced vs %d naive"
          reduced.executions naive.executions)

(* Verdict equality: for every shipped model and every seeded mutation, the
   reduced and unreduced explorations agree on cleanliness and on which
   detector fired. *)
let test_dpor_verdicts_equal () =
  with_root (fun root ->
      List.iter
        (fun (name, p) ->
          let r = Interleave.check ~dpor:true p in
          let u = Interleave.check ~dpor:false p in
          let agree label a b =
            if a <> b then
              Alcotest.failf "%s: reduced/unreduced disagree on %s" name label
          in
          agree "cleanliness" (Interleave.ok r) (Interleave.ok u);
          agree "races" (r.races <> []) (u.races <> []);
          agree "assertion failures" (r.assert_failures <> []) (u.assert_failures <> []);
          agree "lost wakeups" (r.lost_wakeups > 0) (u.lost_wakeups > 0))
        (Models.all ~root @ Models.mutations ~root))

(* ---- extraction: annotations, goldens, drift ---- *)

let ring_files = [ "lib/ring/spsc_ring.ml" ]

let test_extract_regions () =
  with_root (fun root ->
      Alcotest.(check (list string))
        "the ring announces its annotated regions"
        [ "ring-publication/producer" ]
        (Sds_check.Extract.region_names ~root ~files:ring_files);
      let waiter = Sds_check.Extract.region_names ~root ~files:[ "lib/notify/waiter.ml" ] in
      List.iter
        (fun n ->
          if not (List.mem n waiter) then Alcotest.failf "waiter region %s missing" n)
        [ "park-notify/notifier"; "park-notify/waiter"; "waiter/prepare"; "waiter/commit" ];
      let token = Sds_check.Extract.region_names ~root ~files:[ "lib/rt/rt_token.ml" ] in
      List.iter
        (fun n ->
          if not (List.mem n token) then Alcotest.failf "token region %s missing" n)
        [ "token-handoff/grant"; "token-crash/seize" ])

(* In-process mirror of `sdmodel check`: every extracted program renders to
   exactly its committed golden. *)
let test_extract_goldens () =
  with_root (fun root ->
      List.iter
        (fun (name, p) ->
          let path = Filename.concat root ("test/golden/" ^ name ^ ".golden") in
          if not (Sys.file_exists path) then Alcotest.failf "no golden for %s" name;
          let ic = open_in_bin path in
          let golden = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Alcotest.(check string)
            (Printf.sprintf "extraction of %s matches its golden" name)
            golden
            (Interleave.render_program p))
        (Models.extracted ~root))

(* Fixture: mutate a *copy of the real source* and assert the drift gate
   trips — the end-to-end guarantee that editing an annotated hot path
   cannot silently diverge from the checked model. *)
let copy_tree_fixture root tmp =
  List.iter
    (fun rel ->
      let rec mkdir_p d =
        if not (Sys.file_exists d) then begin
          mkdir_p (Filename.dirname d);
          Sys.mkdir d 0o755
        end
      in
      let dst = Filename.concat tmp rel in
      mkdir_p (Filename.dirname dst);
      let ic = open_in_bin (Filename.concat root rel) in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin dst in
      output_string oc s;
      close_out oc)
    [ "lib/ring/spsc_ring.ml"; "lib/notify/waiter.ml"; "lib/rt/rt_token.ml" ]

let replace_in_file path ~pat ~by =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Buffer.create (String.length s) in
  let plen = String.length pat in
  let i = ref 0 in
  let hits = ref 0 in
  while !i < String.length s do
    if !i + plen <= String.length s && String.sub s !i plen = pat then begin
      Buffer.add_string b by;
      incr hits;
      i := !i + plen
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  if !hits = 0 then Alcotest.failf "fixture pattern %S not found in %s" pat path;
  let oc = open_out_bin path in
  Buffer.output_buffer oc b;
  close_out oc

(* The built CLI sits next to this test binary's build context
   (_build/default/{test,bin}); resolve it relative to the executable so
   the test works under both `dune runtest` and `dune exec`. *)
let sdmodel_exe root =
  let beside =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/sdmodel.exe"
  in
  if Sys.file_exists beside then beside else Filename.concat root "bin/sdmodel.exe"

let run_sdmodel exe args =
  Sys.command (Filename.quote_command exe args ^ " > /dev/null 2>&1")

let test_sdmodel_drift_fixture () =
  with_root (fun root ->
      let exe = sdmodel_exe root in
      if not (Sys.file_exists exe) then Alcotest.failf "sdmodel.exe not built at %s" exe;
      let golden = Filename.concat root "test/golden" in
      let tmp = Filename.temp_dir "sds_model" "fixture" in
      copy_tree_fixture root tmp;
      (* Unmutated copy: the gate passes. *)
      Alcotest.(check int) "clean fixture passes the drift gate" 0
        (run_sdmodel exe [ "--root"; tmp; "--golden-dir"; golden; "check" ]);
      (* Mutate the publication: the tail advances by two slots.  Still
         compiles, still extracts — but the model differs, and the gate
         must fail. *)
      replace_in_file
        (Filename.concat tmp "lib/ring/spsc_ring.ml")
        ~pat:"Atomic.set t.tail (tail + need)"
        ~by:"Atomic.set t.tail (tail + need + need)";
      let dump = Filename.concat tmp "dump" in
      Alcotest.(check int) "mutated fixture fails the drift gate" 1
        (run_sdmodel exe
           [ "--root"; tmp; "--golden-dir"; golden; "--dump-dir"; dump; "check" ]);
      Alcotest.(check bool) "the drifted render is dumped for the CI artifact" true
        (Sys.file_exists (Filename.concat dump "ring-publication.extracted"));
      (* A mutation the spec cannot classify is an extraction error, not
         silent drift: exit 2. *)
      replace_in_file
        (Filename.concat tmp "lib/ring/spsc_ring.ml")
        ~pat:"Atomic.set t.tail (tail + need + need)"
        ~by:"t.unknown_field <- tail + need";
      Alcotest.(check int) "unclassifiable source is an extraction error" 2
        (run_sdmodel exe [ "--root"; tmp; "--golden-dir"; golden; "check" ]))

(* ---- the shared het-map ---- *)

let test_hmap () =
  let k_int : int Hmap.key = Hmap.create_key ~name:"int" () in
  let k_str : string Hmap.key = Hmap.create_key ~name:"str" () in
  let k_int2 : int Hmap.key = Hmap.create_key ~name:"int2" () in
  let m = Hmap.create () in
  Alcotest.(check (option int)) "empty" None (Hmap.find m k_int);
  Hmap.set m k_int 42;
  Hmap.set m k_str "hello";
  Alcotest.(check (option int)) "int roundtrip" (Some 42) (Hmap.find m k_int);
  Alcotest.(check (option string)) "string roundtrip" (Some "hello") (Hmap.find m k_str);
  Alcotest.(check (option int)) "same-type keys do not collide" None (Hmap.find m k_int2);
  let calls = ref 0 in
  let v =
    Hmap.find_or m k_int2 ~create:(fun () ->
        incr calls;
        7)
  in
  Alcotest.(check int) "find_or installs" 7 v;
  Alcotest.(check int) "find_or is memoized" 7 (Hmap.find_or m k_int2 ~create:(fun () -> 99));
  Alcotest.(check int) "create ran once" 1 !calls;
  Alcotest.(check int) "length" 3 (Hmap.length m);
  Hmap.remove m k_int;
  Alcotest.(check bool) "remove" false (Hmap.mem m k_int);
  Alcotest.(check string) "key_name" "str" (Hmap.key_name k_str)

let suite =
  [
    Alcotest.test_case "lint: atomic-confined" `Quick test_atomic_rule;
    Alcotest.test_case "lint: poly-compare" `Quick test_compare_rule;
    Alcotest.test_case "lint: obj-unsafe" `Quick test_obj_rule;
    Alcotest.test_case "lint: hot-alloc" `Quick test_hot_rule;
    Alcotest.test_case "lint: bigarray-unsafe" `Quick test_bigarray_rule;
    Alcotest.test_case "lint: metric-registration" `Quick test_metric_rule;
    Alcotest.test_case "lint: fault-confined" `Quick test_fault_rule;
    Alcotest.test_case "lint: fence-discipline" `Quick test_fence_rule;
    Alcotest.test_case "lint: github annotation format" `Quick test_github_format;
    Alcotest.test_case "lint: parse errors" `Quick test_parse_error;
    Alcotest.test_case "lint: mli parity over a tree" `Quick test_mli_parity;
    Alcotest.test_case "lint: repository is clean" `Quick test_repo_clean;
    Alcotest.test_case "interleave: DSL basics" `Quick test_interleave_basics;
    Alcotest.test_case "interleave: shipped protocols are clean" `Quick test_models_clean;
    Alcotest.test_case "mutation: unfenced publication races" `Quick test_mutation_unfenced;
    Alcotest.test_case "mutation: late header trips assert" `Quick test_mutation_header_late;
    Alcotest.test_case "mutation: no-recheck loses wakeup" `Quick test_mutation_no_recheck;
    Alcotest.test_case "mutation: early release is use-after-free" `Quick test_mutation_release_early;
    Alcotest.test_case "mutation: unfenced token grant races" `Quick test_mutation_token_unfenced;
    Alcotest.test_case "mutation: token grant before drain" `Quick test_mutation_token_early_grant;
    Alcotest.test_case "mutation: all variants caught" `Quick test_mutations_all_caught;
    Alcotest.test_case "dpor: commuting ops collapse" `Quick test_dpor_commutes;
    Alcotest.test_case "dpor: conflicting ops explored" `Quick test_dpor_conflicts;
    Alcotest.test_case "dpor: execution-count regression bounds" `Quick test_dpor_execution_bounds;
    Alcotest.test_case "dpor: >=10x reduction on token-handoff" `Quick test_dpor_reduction_ratio;
    Alcotest.test_case "dpor: verdicts equal reduced vs unreduced" `Quick test_dpor_verdicts_equal;
    Alcotest.test_case "extract: annotated regions discovered" `Quick test_extract_regions;
    Alcotest.test_case "extract: renders match committed goldens" `Quick test_extract_goldens;
    Alcotest.test_case "sdmodel: drift fixture trips the gate" `Quick test_sdmodel_drift_fixture;
    Alcotest.test_case "het-map" `Quick test_hmap;
  ]
