(* Standalone allocation probe: counts minor words per ring op directly via
   [Gc.minor_words], independent of Bechamel's OLS fit.

   Also proves the observability hooks are allocation-free: the instrumented
   [try_dequeue_packed] path must read 0 minor words/op with metrics and
   tracing enabled, and the raw Obs primitives (counter add, histogram
   observe, trace emit) must each read 0 as well.

   The ring rows now include the §4.4 notification hooks inline — every
   [try_enqueue] loads the rx waiter's parked flag and every auto-credit
   return loads the tx waiter's — so the 0 here also covers [notify] on an
   unparked waiter.  The dedicated notify rows pin the spin-phase waiter
   primitives themselves at 0. *)

let measure name iters f =
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  let w1 = Gc.minor_words () in
  Printf.printf "%-44s %8.4f minor words/op\n" name ((w1 -. w0) /. float_of_int iters)

let () =
  let module R = Sds_ring.Spsc_ring in
  let module Obs = Sds_obs.Obs in
  let r = R.create ~size:(1 lsl 16) () in
  let payload = Bytes.make 64 'x' in
  let dst = Bytes.create 8192 in
  let iters = 100_000 in
  Obs.Metrics.set_enabled true;
  Obs.Trace.set_enabled true;
  measure "enq + try_dequeue_packed (obs on)" iters (fun () ->
      ignore (R.try_enqueue r payload ~off:0 ~len:64);
      ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0));
  Obs.Metrics.set_enabled false;
  Obs.Trace.set_enabled false;
  measure "enq + try_dequeue_packed (obs off)" iters (fun () ->
      ignore (R.try_enqueue r payload ~off:0 ~len:64);
      ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0));
  Obs.Metrics.set_enabled true;
  Obs.Trace.set_enabled true;
  (* Span stamping on send/recv must be allocation-free even with every
     message sampled (shift 0): API-entry stamp, publish stamp, and the
     dequeue-side resolve (3 histogram observes + a flight record). *)
  let module Span = Sds_obs.Span in
  let saved_shift = Span.sample_shift () in
  Span.set_sample_shift 0;
  measure "enq + deq + span stamps (shift 0)" iters (fun () ->
      R.stamp_send r;
      ignore (R.try_enqueue r payload ~off:0 ~len:64);
      ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0));
  Span.set_sample_shift saved_shift;
  measure "enq + deq + span stamps (sampled)" iters (fun () ->
      R.stamp_send r;
      ignore (R.try_enqueue r payload ~off:0 ~len:64);
      ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0));
  measure "enq + try_dequeue (alloc)" iters (fun () ->
      ignore (R.try_enqueue r payload ~off:0 ~len:64);
      ignore (R.try_dequeue ~auto_credit:true r));
  let c = Obs.Metrics.counter "probe.counter" in
  measure "Obs.Metrics.add" iters (fun () -> Obs.Metrics.add c 3);
  let h = Obs.Metrics.histogram "probe.hist" in
  measure "Obs.Metrics.observe" iters (fun () -> Obs.Metrics.observe h 1234);
  measure "Obs.Trace.emit_n" iters (fun () -> Obs.Trace.emit_n Obs.Trace.Batch 7);
  let module W = Sds_notify.Waiter in
  let w = W.create () in
  measure "Waiter.notify (unparked)" iters (fun () -> W.notify w);
  measure "Waiter.prepare_wait + cancel" iters (fun () ->
      ignore (W.prepare_wait w);
      W.cancel w);
  (* §4.6 zero-copy path: pool page churn and the full descriptor handoff
     (alloc, stamp, publish, dequeue, release) must also run at 0 minor
     words/op — the payload never materializes as Bytes. *)
  let module Pp = Sds_vm.Pagepool in
  let pool = Pp.create ~pages:256 () in
  let ph = Pp.handle pool in
  measure "Pagepool.alloc + release" iters (fun () ->
      let p = Pp.alloc ph in
      Pp.release ph p);
  let send_entries = Array.make 1 0 in
  let entries = Array.make 1 0 in
  measure "desc enq + deq + handoff (obs on)" iters (fun () ->
      let p = Pp.alloc ph in
      Pp.set_int_le pool (Pp.page_base p) 0xBEEF;
      send_entries.(0) <- R.desc_entry ~page:p ~off:0 ~len:4096;
      ignore (R.try_enqueue_descs r send_entries ~n:1);
      ignore (R.try_dequeue_descs ~auto_credit:true r ~entries);
      ignore (Pp.get_int_le pool (Pp.page_base (R.desc_page entries.(0))));
      Pp.release ph (R.desc_page entries.(0)));
  (* §4.2 token same-domain fast path: one plain-field compare, no atomics,
     no closure — 0 minor words/op with obs enabled is what makes the
     uncontended real-domain data path free. *)
  let module Rt_dom = Sds_rt.Rt_dom in
  let module Rt_token = Sds_rt.Rt_token in
  let dom = Rt_dom.self () in
  let tok = Rt_token.create ~name:"probe" ~holder:dom () in
  let noop = fun () -> () in
  measure "Rt_token.with_held (fast path, obs on)" iters (fun () ->
      Rt_token.with_held tok ~dom noop);
  measure "Rt_token.acquire (held by me)" iters (fun () -> Rt_token.acquire tok ~dom)
