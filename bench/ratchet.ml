(* ratchet: the benchmark regression gate.

   Usage: ratchet.exe BASELINE.json FRESH.json [--tolerance 0.15]

   Both files are BENCH_ring.json snapshots (schema
   socksdirect-ring-bench/2, one row object per line — the shape
   [Ring_bench.write_json] emits; the parser here relies on it and needs
   no JSON library).  The gate fails (exit 1) when:

   - a watched ring row is missing from the fresh run;
   - a watched ring row's ns_per_msg regressed by more than the tolerance
     (default 15%) against the committed baseline;
   - any fresh ring row reports ok=false (torn read / checksum mismatch);
   - the §4.6 invariant breaks: the zero-copy stream at 64 KiB must carry
     at least 2x the MB/s of the forced-copy stream of the same traffic.

   Rows present in only one file (renames, new rows) other than the
   watched set are reported but don't fail the gate, so adding a bench row
   doesn't require regenerating the baseline in the same commit. *)

type row = { name : string; payload : int; ns_per_msg : float; mb_per_sec : float; ok : bool }

(* The named rows the ratchet protects: the §4.6 stream points (16/64 KiB
   zero-copy, 64 KiB forced copy), the 8 KiB inline row that must not
   regress when the pool path is in play, the §4.5 adaptive-batch row, and
   the plain single-core loopback as a stable canary.  The third field is
   a per-row tolerance multiplier: the wake_p99 stage-breakdown row is a
   tail percentile of the park→wake edge, far noisier than a throughput
   mean, so it gets a wide band (and is skipped entirely when the baseline
   recorded 0 — nothing parked in that run). *)
let watched =
  [
    ("ring2core stream", 8192, 1.0);
    ("ring2core stream", 16384, 1.0);
    ("ring2core stream", 65536, 1.0);
    ("ring2core stream copy", 65536, 1.0);
    ("ring2core pingpong wake_p99", 64, 10.0);
    ("ring1core enq+deq", 64, 1.0);
    ("ring1core batch=adaptive", 64, 1.0);
    (* Real-domain prefork aggregate rows (§4.5.2): end-to-end throughput
       across worker counts.  They cross domain scheduling, token handoff
       and the monitor, so they are noisier than the single-ring rows —
       hence the wider band.  The takeover row is a p99 of a park→wake
       handoff edge, as noisy as wake_p99. *)
    ("ringNcore stream x1", 64, 2.0);
    ("ringNcore stream x2", 64, 2.0);
    ("ringNcore stream x4", 64, 2.0);
    ("token takeover p99", 0, 10.0);
  ]

(* Absolute bars, checked against the fresh run only: per-message stamp
   overheads are paired-difference medians near zero, where a ratio
   against the baseline is meaningless (a 0.3 → 0.9 ns move is a 200%
   "regression" of nothing).  The row must be present and under the bar.
   The span row predates the §4.3 work; the heartbeat row guards the
   liveness tax [Rt_dom.beat] puts on every fast-path operation. *)
let absolute_bars =
  [ ("ring1core span overhead", 64, 2.0); ("ring1core heartbeat overhead", 64, 2.0) ]

(* ---- line-oriented field extraction ---- *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let str_field line key =
  match find_sub line (Printf.sprintf "%S: \"" key) with
  | None -> None
  | Some i ->
    let start = i + String.length key + 5 in
    String.index_from_opt line start '"'
    |> Option.map (fun stop -> String.sub line start (stop - start))

let num_field line key =
  match find_sub line (Printf.sprintf "%S: " key) with
  | None -> None
  | Some i ->
    let start = i + String.length key + 4 in
    let stop = ref start in
    let n = String.length line in
    while
      !stop < n
      && (match line.[!stop] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.sub line start (!stop - start))

let bool_field line key =
  match find_sub line (Printf.sprintf "%S: " key) with
  | None -> None
  | Some i -> (
    let start = i + String.length key + 4 in
    match find_sub (String.sub line start (min 5 (String.length line - start))) "true" with
    | Some 0 -> Some true
    | _ -> Some false)

(* Pull the ring rows out of a snapshot: rows live between the `"ring": [`
   line and its closing bracket, one object per line. *)
let parse_ring path =
  let ic = open_in path in
  let rows = ref [] in
  let in_ring = ref false in
  (try
     while true do
       let line = input_line ic in
       if not !in_ring then begin
         if find_sub line "\"ring\": [" <> None then in_ring := true
       end
       else if find_sub line "]" <> None && find_sub line "\"name\"" = None then raise Exit
       else
         match
           (str_field line "name", num_field line "payload_bytes", num_field line "ns_per_msg",
            num_field line "mb_per_sec", bool_field line "ok")
         with
         | Some name, Some payload, Some ns_per_msg, Some mb_per_sec, Some ok ->
           rows := { name; payload = int_of_float payload; ns_per_msg; mb_per_sec; ok } :: !rows
         | _ -> ()
     done
   with End_of_file | Exit -> ());
  close_in ic;
  List.rev !rows

let lookup rows name payload =
  List.find_opt (fun r -> r.name = name && r.payload = payload) rows

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split tol files = function
    | "--tolerance" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t -> split t files rest
      | None ->
        Fmt.epr "--tolerance requires a float@.";
        exit 2)
    | a :: rest -> split tol (a :: files) rest
    | [] -> (tol, List.rev files)
  in
  let tolerance, files = split 0.15 [] args in
  let baseline_path, fresh_path =
    match files with
    | [ b; f ] -> (b, f)
    | _ ->
      Fmt.epr "usage: ratchet.exe BASELINE.json FRESH.json [--tolerance 0.15]@.";
      exit 2
  in
  let baseline = parse_ring baseline_path in
  let fresh = parse_ring fresh_path in
  if baseline = [] then begin
    Fmt.epr "no ring rows parsed from baseline %s@." baseline_path;
    exit 2
  end;
  if fresh = [] then begin
    Fmt.epr "no ring rows parsed from fresh run %s@." fresh_path;
    exit 2
  end;
  let failures = ref 0 in
  let fail fmt = Fmt.kstr (fun s -> incr failures; Fmt.pr "FAIL %s@." s) fmt in
  (* 1. checksum integrity of the fresh run *)
  List.iter
    (fun r -> if not r.ok then fail "%s %dB: fresh run reports ok=false" r.name r.payload)
    fresh;
  (* 2. watched rows: present, and within tolerance of the baseline *)
  List.iter
    (fun (name, payload, tol_mult) ->
      match (lookup baseline name payload, lookup fresh name payload) with
      | _, None -> fail "%s %dB: missing from fresh run" name payload
      | None, Some _ -> Fmt.pr "note %s %dB: not in baseline, skipping comparison@." name payload
      | Some b, Some f ->
        if b.ns_per_msg <= 0. then
          (* A 0 baseline (e.g. wake_p99 when nothing parked) carries no
             regression information; ratios against it are meaningless. *)
          Fmt.pr "note %s %dB: baseline is 0, skipping comparison@." name payload
        else begin
          let tol = tolerance *. tol_mult in
          let ratio = f.ns_per_msg /. b.ns_per_msg in
          if ratio > 1.0 +. tol then
            fail "%s %dB: ns_per_msg %.1f vs baseline %.1f (%.0f%% regression > %.0f%%)" name
              payload f.ns_per_msg b.ns_per_msg ((ratio -. 1.0) *. 100.) (tol *. 100.)
          else
            Fmt.pr "ok   %-26s %6dB  %9.1f ns/msg (baseline %9.1f, %+.0f%%)@." name payload
              f.ns_per_msg b.ns_per_msg ((ratio -. 1.0) *. 100.)
        end)
    watched;
  (* 3. absolute bars: stamp overheads stay under their ns/msg ceilings *)
  List.iter
    (fun (name, payload, bar) ->
      match lookup fresh name payload with
      | None -> fail "%s %dB: missing from fresh run" name payload
      | Some f ->
        if f.ns_per_msg > bar then
          fail "%s %dB: %.2f ns/msg over the %.1f ns absolute bar" name payload f.ns_per_msg bar
        else Fmt.pr "ok   %-26s %6dB  %9.2f ns/msg (absolute bar %.1f)@." name payload f.ns_per_msg bar)
    absolute_bars;
  (* 4. §4.6 invariant: zero-copy stream >= 2x forced-copy MB/s at 64 KiB *)
  (match (lookup fresh "ring2core stream" 65536, lookup fresh "ring2core stream copy" 65536) with
  | Some zc, Some cp ->
    if zc.mb_per_sec < 2.0 *. cp.mb_per_sec then
      fail "zero-copy stream 65536B only %.1f MB/s vs copy %.1f MB/s (< 2x)" zc.mb_per_sec
        cp.mb_per_sec
    else
      Fmt.pr "ok   zero-copy 65536B %.1f MB/s >= 2x copy %.1f MB/s@." zc.mb_per_sec cp.mb_per_sec
  | _ -> fail "65536B stream rows missing; cannot check the zero-copy invariant");
  if !failures > 0 then begin
    Fmt.pr "ratchet: %d failure(s)@." !failures;
    exit 1
  end;
  Fmt.pr "ratchet: all %d watched rows within %.0f%%, %d absolute bars held@."
    (List.length watched) (tolerance *. 100.) (List.length absolute_bars)
