(* Two-domain benchmarks of the §4.2 SPSC ring: one producer Domain, one
   consumer Domain, real Atomics, real payload bytes.

   Waiting on the ring-full / ring-empty edges goes through the ring's own
   §4.4 event-notification endpoints ([Spsc_ring.wait_rx]/[wait_tx] over
   [Sds_notify.Waiter]): adaptive spin (the paper's polling mode), then an
   eventcount park woken by the peer's enqueue or credit return (the
   interrupt-mode analogue).  On a multi-core box the spin phase wins and
   the mutex is never touched; on a single time-shared core the adaptive
   budget collapses within a few waits and each side parks almost
   immediately, handing the timeslice over instead of burning it — which is
   what took the ping-pong row from ~32 µs/msg (fixed 512-spin + racy
   flag/condvar layer) to context-switch-bound low µs.

   Payload bytes are stamped with the message sequence number so the
   consumer can fold a checksum and detect torn reads; the expected value
   is recomputed arithmetically at the end. *)

module R = Sds_ring.Spsc_ring
module Rt_dom = Sds_rt.Rt_dom
module Rt_token = Sds_rt.Rt_token
module Rt_prefork = Sds_rt.Rt_prefork

type result = {
  name : string;
  payload : int;  (** bytes per message *)
  msgs : int;
  ns_per_msg : float;
  msgs_per_sec : float;
  mb_per_sec : float;
  ok : bool;  (** checksums matched, nothing torn *)
}

let pp_result r =
  Fmt.pr "%-24s %6dB %9d msgs %9.1f ns/msg %10.2f Mmsg/s %9.1f MB/s %s@." r.name r.payload
    r.msgs r.ns_per_msg (r.msgs_per_sec /. 1e6) r.mb_per_sec
    (if r.ok then "ok" else "CHECKSUM MISMATCH")

(* ---- checksum folding ----

   Fold the sequence stamp back out of the first 8 payload bytes (or fewer
   for tiny payloads); any torn or reordered read breaks the running sum. *)

let stamp buf seq payload =
  if payload >= 8 then Bytes.set_int64_le buf 0 (Int64.of_int seq)
  else if payload >= 4 then Bytes.set_int32_le buf 0 (Int32.of_int seq)
  else if payload >= 1 then Bytes.set_uint8 buf 0 (seq land 0xFF)

let unstamp buf off payload =
  if payload >= 8 then Int64.to_int (Bytes.get_int64_le buf off)
  else if payload >= 4 then Int32.to_int (Bytes.get_int32_le buf off) land 0xFFFFFFFF
  else if payload >= 1 then Bytes.get_uint8 buf off
  else 0

let expected_sum msgs payload =
  let b = Bytes.create (max payload 1) in
  let acc = ref 0 in
  for seq = 0 to msgs - 1 do
    stamp b seq payload;
    acc := !acc + unstamp b 0 payload
  done;
  !acc

(* ---- cross-domain throughput ---- *)

(* Producer streams [msgs] messages of [payload] bytes through the ring to
   a consumer on another domain.  The producer uses the vectored enqueue —
   one tail publication and one credit spend per [batch] messages, the
   paper's adaptive batching — and the consumer returns credits in
   half-ring batches, as the transport does. *)
let cross_domain_throughput ?(ring_size = 1 lsl 20) ?(batch = 64) ~payload ~msgs () =
  let r = R.create ~size:ring_size () in
  let consumer_sum = ref 0 in
  let consumer_ok = ref true in
  let t0 = Unix.gettimeofday () in
  let consumer =
    Domain.spawn (fun () ->
        let dst = Bytes.create (max payload 1) in
        let got = ref 0 in
        while !got < msgs do
          let p = R.try_dequeue_packed r ~dst ~dst_off:0 in
          if p <> R.no_msg then begin
            if R.packed_len p <> payload then consumer_ok := false;
            consumer_sum := !consumer_sum + unstamp dst 0 payload;
            incr got;
            let c = R.take_credit_return r in
            (* [return_credits] notifies the ring's tx waiter itself. *)
            if c > 0 then R.return_credits r c
          end
          else R.wait_rx r
        done)
  in
  let bufs = Array.init batch (fun _ -> Bytes.create (max payload 1)) in
  let full_srcs = Array.init batch (fun i -> (bufs.(i), 0, payload)) in
  let sent = ref 0 in
  while !sent < msgs do
    let n = min batch (msgs - !sent) in
    for i = 0 to n - 1 do
      stamp bufs.(i) (!sent + i) payload
    done;
    let off = ref 0 in
    while !off < n do
      let srcs =
        if !off = 0 && n = batch then full_srcs
        else Array.init (n - !off) (fun i -> (bufs.(!off + i), 0, payload))
      in
      (* The batched enqueue notifies the rx waiter on publication. *)
      let accepted = R.enqueue_batch r srcs in
      if accepted = 0 then R.wait_tx r ~len:payload else off := !off + accepted
    done;
    sent := !sent + n
  done;
  Domain.join consumer;
  let dt = Unix.gettimeofday () -. t0 in
  let ok = !consumer_ok && !consumer_sum = expected_sum msgs payload && R.is_empty r in
  {
    name = "ring2core stream";
    payload;
    msgs;
    ns_per_msg = dt *. 1e9 /. float_of_int msgs;
    msgs_per_sec = float_of_int msgs /. dt;
    mb_per_sec = float_of_int msgs *. float_of_int payload /. dt /. 1e6;
    ok;
  }

(* ---- §4.6 zero-copy stream: page-descriptor handoff vs inline copy ----

   Producer and consumer domains share a page pool next to the ring.  Per
   message the producer either stamps freshly allocated pool pages and
   publishes one page-descriptor record (ownership handoff; the consumer
   reads the stamp in place and releases the pages), or stamps a staging
   buffer and copies it inline through the ring — per the [Copy_policy]
   decision, which is what the bench's --copy-policy knob selects.  Pool
   exhaustion falls back to the inline copy (Libra's safety rule), so the
   stream never wedges on a slow consumer.  The producer additionally paces
   itself on pool occupancy below the policy's high-water mark so the
   adaptive mode is measured in its remap regime, not its pressure-backoff
   regime. *)

module Pp = Sds_vm.Pagepool
module Cp = Socksdirect.Copy_policy

(* Producer pacing hysteresis: back off when pool occupancy crosses the
   high mark, resume only once the consumer has drained it below the low
   mark.  A single threshold would leave occupancy hovering on the
   boundary and turn the stream into a one-message-per-timeslice lockstep.
   The backoff must be a real sleep, not [Thread.yield]: on a single
   shared core the scheduler keeps running a yielding spinner, starving
   the consumer it is waiting for (measured 6x on the 64 KiB row). *)
let pace_high = 0.60
let pace_low = 0.30
let pace_sleep = 20e-6

let cross_domain_stream_pool ?(ring_size = 1 lsl 18) ?(pool_pages = 8192)
    ?(mode = Cp.Adaptive) ~name ~payload ~msgs () =
  let r = R.create ~size:ring_size () in
  let pool = Pp.create ~pages:pool_pages () in
  let policy = Cp.create ~mode () in
  let npages = (payload + Pp.page_size - 1) / Pp.page_size in
  let consumer_sum = ref 0 in
  let consumer_ok = ref true in
  let t0 = Unix.gettimeofday () in
  let consumer =
    Domain.spawn (fun () ->
        let h = Pp.handle pool in
        let entries = Array.make npages 0 in
        let dst = Bytes.create payload in
        let got = ref 0 in
        while !got < msgs do
          let p = R.peek_packed r in
          if p = R.no_msg then R.wait_rx r
          else begin
            if R.is_desc_packed p then begin
              let q = R.try_dequeue_descs r ~entries in
              let n = R.desc_count_packed q in
              let e0 = entries.(0) in
              consumer_sum :=
                !consumer_sum
                + Pp.get_int_le pool (Pp.page_base (R.desc_page e0) + R.desc_off e0);
              let len = ref 0 in
              for i = 0 to n - 1 do
                len := !len + R.desc_len entries.(i);
                Pp.release h (R.desc_page entries.(i))
              done;
              if !len <> payload then consumer_ok := false
            end
            else begin
              let q = R.try_dequeue_packed r ~dst ~dst_off:0 in
              if R.packed_len q <> payload then consumer_ok := false;
              consumer_sum := !consumer_sum + unstamp dst 0 payload
            end;
            incr got;
            let c = R.take_credit_return r in
            if c > 0 then R.return_credits r c
          end
        done)
  in
  let h = Pp.handle pool in
  let entries = Array.make npages 0 in
  let staging = Bytes.create payload in
  for seq = 0 to msgs - 1 do
    (* Flow-control against the pool as well as the ring: a burst that
       drove occupancy past [Copy_policy.high_water] would flip the
       adaptive policy into pressure backoff mid-measurement. *)
    if Pp.occupancy pool > pace_high then
      while Pp.occupancy pool > pace_low do
        Unix.sleepf pace_sleep
      done;
    let zero_copy =
      Cp.decide policy ~pool:(Some pool) ~len:payload
      && begin
           (* Allocate the descriptor vector; any failure releases the
              partial run and falls back to the copy path. *)
           let ok = ref true in
           let i = ref 0 in
           while !ok && !i < npages do
             let pg = Pp.alloc h in
             if pg = Pp.no_page then begin
               for j = 0 to !i - 1 do
                 Pp.release h (R.desc_page entries.(j))
               done;
               ok := false
             end
             else begin
               let off = !i * Pp.page_size in
               entries.(!i) <-
                 R.desc_entry ~page:pg ~off:0 ~len:(min Pp.page_size (payload - off));
               incr i
             end
           done;
           !ok
         end
    in
    if zero_copy then begin
      Pp.set_int_le pool (Pp.page_base (R.desc_page entries.(0))) seq;
      while not (R.try_enqueue_descs r entries ~n:npages) do
        R.wait_tx r ~len:(npages * 8)
      done
    end
    else begin
      stamp staging seq payload;
      while not (R.try_enqueue r staging ~off:0 ~len:payload) do
        R.wait_tx r ~len:payload
      done
    end
  done;
  Domain.join consumer;
  let dt = Unix.gettimeofday () -. t0 in
  let ok =
    !consumer_ok
    && !consumer_sum = expected_sum msgs payload
    && R.is_empty r
    && Pp.free_pages pool = pool_pages
  in
  {
    name;
    payload;
    msgs;
    ns_per_msg = dt *. 1e9 /. float_of_int msgs;
    msgs_per_sec = float_of_int msgs /. dt;
    mb_per_sec = float_of_int msgs *. float_of_int payload /. dt /. 1e6;
    ok;
  }

(* ---- cross-domain ping-pong ----

   One message bounces between two rings; measures the full cross-domain
   round trip (on a single-core box this is dominated by the context
   switch, which is itself worth recording). *)
let cross_domain_pingpong ?(ring_size = 1 lsl 16) ~payload ~rounds () =
  let a2b = R.create ~size:ring_size () in
  let b2a = R.create ~size:ring_size () in
  let buf_b = Bytes.create (max payload 1) in
  let responder =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          ignore (R.dequeue_packed_blocking ~auto_credit:true a2b ~dst:buf_b ~dst_off:0);
          ignore (R.try_enqueue b2a buf_b ~off:0 ~len:payload)
        done)
  in
  let buf_a = Bytes.create (max payload 1) in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    (* API-entry span stamp (the Libsd.send stamp point): feeds span.app on
       the sampled messages, next to the publish stamp try_enqueue takes. *)
    R.stamp_send a2b;
    ignore (R.try_enqueue a2b buf_a ~off:0 ~len:payload);
    ignore (R.dequeue_packed_blocking ~auto_credit:true b2a ~dst:buf_a ~dst_off:0)
  done;
  Domain.join responder;
  let dt = Unix.gettimeofday () -. t0 in
  {
    name = "ring2core pingpong";
    payload;
    msgs = rounds;
    ns_per_msg = dt *. 1e9 /. float_of_int rounds;
    msgs_per_sec = float_of_int rounds /. dt;
    mb_per_sec = float_of_int rounds *. float_of_int payload /. dt /. 1e6;
    ok = true;
  }

(* Stage-breakdown row derived from the ping-pong: the p99 of the §4.4
   park→wake edge ([span.wake], stamped with raw monotonic ns by the
   waiter) during the run above.  0 when the adaptive spin phase won every
   wait and nothing parked — the ratchet skips the comparison then. *)
let wake_p99_row ~payload ~rounds =
  let hs = Sds_obs.Obs.Metrics.summarize_hist Sds_obs.Span.h_wake in
  {
    name = "ring2core pingpong wake_p99";
    payload;
    msgs = hs.Sds_obs.Obs.Metrics.hs_count;
    ns_per_msg = float_of_int hs.Sds_obs.Obs.Metrics.hs_p99;
    msgs_per_sec = (if rounds > 0 then float_of_int hs.Sds_obs.Obs.Metrics.hs_count /. float_of_int rounds else 0.);
    mb_per_sec = 0.;
    ok = true;
  }

(* ---- span-stamping overhead ----

   Single-domain 64B enq+deq with all three stamp points exercised
   (send, publish, dequeue-resolve), timed with spans enabled vs disabled.
   Each rep times the two modes back to back and records the difference;
   the estimate is the *median* of the paired differences, which is robust
   to the timeslice noise of a shared box (alternate-and-take-min is not:
   one quiet slice on either side skews it by several ns).  ns_per_msg is
   the overhead; the acceptance bar is <= 2 ns/msg at the default 1-in-64
   sampling. *)
let span_overhead ?(ring_size = 1 lsl 20) ?(payload = 64) ?(msgs = 200_000) ?(reps = 25) () =
  let r = R.create ~size:ring_size () in
  let src = Bytes.create payload in
  let dst = Bytes.create payload in
  let run () =
    let t0 = Unix.gettimeofday () in
    for seq = 0 to msgs - 1 do
      stamp src seq payload;
      R.stamp_send r;
      ignore (R.try_enqueue r src ~off:0 ~len:payload);
      ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0)
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int msgs
  in
  let was = Sds_obs.Span.enabled () in
  (* Alternate the order within each pair so slow linear drift (frequency
     scaling, a neighbour tenant ramping up) biases half the pairs one way
     and half the other, leaving the median centred. *)
  let diffs =
    Array.init reps (fun i ->
        let first_on = i land 1 = 1 in
        Sds_obs.Span.set_enabled first_on;
        let a = run () in
        Sds_obs.Span.set_enabled (not first_on);
        let b = run () in
        if first_on then a -. b else b -. a)
  in
  Sds_obs.Span.set_enabled was;
  Array.sort compare diffs;
  let overhead = diffs.(reps / 2) in
  {
    name = "ring1core span overhead";
    payload;
    msgs = reps * msgs;
    ns_per_msg = overhead;
    msgs_per_sec = 0.;
    mb_per_sec = 0.;
    ok = overhead <= 2.0;
  }

(* ---- heartbeat-stamp overhead ----

   The §4.3 liveness machinery taxes every fast-path operation with one
   [Rt_dom.beat] — a plain store into the slot's padded heartbeat cell.
   Same paired-median protocol as [span_overhead]: each rep times the 64B
   enq+deq loop with and without the beat, alternating order, and the
   estimate is the median paired difference.  The acceptance bar is
   <= 2 ns/msg — being watchable by the reaper must stay in store-buffer
   noise. *)
let heartbeat_overhead ?(ring_size = 1 lsl 20) ?(payload = 64) ?(msgs = 200_000) ?(reps = 25) () =
  let r = R.create ~size:ring_size () in
  let src = Bytes.create payload in
  let dst = Bytes.create payload in
  let slot = Rt_dom.self () in
  let run ~beat =
    let t0 = Unix.gettimeofday () in
    if beat then
      for seq = 0 to msgs - 1 do
        stamp src seq payload;
        Rt_dom.beat slot;
        ignore (R.try_enqueue r src ~off:0 ~len:payload);
        ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0)
      done
    else
      for seq = 0 to msgs - 1 do
        stamp src seq payload;
        ignore (R.try_enqueue r src ~off:0 ~len:payload);
        ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0)
      done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int msgs
  in
  let diffs =
    Array.init reps (fun i ->
        let first_on = i land 1 = 1 in
        let a = run ~beat:first_on in
        let b = run ~beat:(not first_on) in
        if first_on then a -. b else b -. a)
  in
  Array.sort compare diffs;
  let overhead = diffs.(reps / 2) in
  {
    name = "ring1core heartbeat overhead";
    payload;
    msgs = reps * msgs;
    ns_per_msg = overhead;
    msgs_per_sec = 0.;
    mb_per_sec = 0.;
    ok = overhead <= 2.0;
  }

(* ---- single-domain loopback (enq+deq on one core) ---- *)

let single_domain_throughput ?(ring_size = 1 lsl 20) ~payload ~msgs () =
  let r = R.create ~size:ring_size () in
  let src = Bytes.create (max payload 1) in
  let dst = Bytes.create (max payload 1) in
  let t0 = Unix.gettimeofday () in
  for seq = 0 to msgs - 1 do
    stamp src seq payload;
    ignore (R.try_enqueue r src ~off:0 ~len:payload);
    ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  {
    name = "ring1core enq+deq";
    payload;
    msgs;
    ns_per_msg = dt *. 1e9 /. float_of_int msgs;
    msgs_per_sec = float_of_int msgs /. dt;
    mb_per_sec = float_of_int msgs *. float_of_int payload /. dt /. 1e6;
    ok = R.is_empty r;
  }

(* Batched flavour: vectored enqueue of [batch] messages, then a batched
   drain — the shape of the paper's adaptive batching fast path. *)
let single_domain_batched ?(ring_size = 1 lsl 20) ~payload ~msgs ~batch () =
  let r = R.create ~size:ring_size () in
  let srcs = Array.init batch (fun _ -> (Bytes.create (max payload 1), 0, payload)) in
  let dst = Bytes.create (max payload 1) in
  let iters = msgs / batch in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    let n = R.enqueue_batch r srcs in
    for _ = 1 to n do
      ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0)
    done
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let total = iters * batch in
  {
    name = Printf.sprintf "ring1core batch=%d" batch;
    payload;
    msgs = total;
    ns_per_msg = dt *. 1e9 /. float_of_int total;
    msgs_per_sec = float_of_int total /. dt;
    mb_per_sec = float_of_int total *. float_of_int payload /. dt /. 1e6;
    ok = R.is_empty r;
  }

(* §4.5 adaptive batch sizing measured at ring level: the socket layer's
   controller ([Sds_proto.Batch_ctl], shared with the real-domain path)
   driving the vectored enqueue.  The controller rests at the initial
   budget and halves only on an observed ring-full (zero acceptance), so
   on an uncontended fully-drained ring the budget stays at 32 and this
   row must read within noise of the fixed batch=32 row next to it — the
   old always-double controller climbed to 256 and paid an L1-locality
   penalty for it. *)
let single_domain_adaptive ?(ring_size = 1 lsl 20) ~payload ~msgs () =
  let module Sock = Socksdirect.Sock in
  let module B = Sds_proto.Batch_ctl in
  let r = R.create ~size:ring_size () in
  let srcs =
    Array.init Sock.max_batch (fun _ -> (Bytes.create (max payload 1), 0, payload))
  in
  let dst = Bytes.create (max payload 1) in
  let ctl = B.create ~min_b:Sock.min_batch ~initial:Sock.initial_batch ~max_b:Sock.max_batch () in
  let sent = ref 0 in
  let t0 = Unix.gettimeofday () in
  while !sent < msgs do
    let want = min (B.budget ctl) (msgs - !sent) in
    let attempt = if want = Sock.max_batch then srcs else Array.sub srcs 0 want in
    let n = R.enqueue_batch r attempt in
    B.observe ctl ~sent:n ~attempted:want ~pressure:false;
    for _ = 1 to n do
      ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0)
    done;
    sent := !sent + n
  done;
  let dt = Unix.gettimeofday () -. t0 in
  {
    name = "ring1core batch=adaptive";
    payload;
    msgs;
    ns_per_msg = dt *. 1e9 /. float_of_int msgs;
    msgs_per_sec = float_of_int msgs /. dt;
    mb_per_sec = float_of_int msgs *. float_of_int payload /. dt /. 1e6;
    ok = R.is_empty r;
  }

(* ---- real-domain prefork data plane (§4.2 + §4.5.2 end to end) ----

   [Rt_prefork.run] spawns N worker domains behind the real monitor
   dispatcher plus N client domains streaming through the full socket
   stack: token-held batched sends, ring + pagepool transport, round-robin
   accept dispatch with idle-worker stealing.  The x1/x2/x4 rows at 64 B
   read aggregate message throughput; the 16 KiB rows exercise the
   descriptor (zero-copy) path through the same stack.

   Scaling acceptance is computed against the parallelism actually
   available — see [scaling_target]. *)

let prefork_row ~workers ~payload ~msgs_per_conn =
  let s = Rt_prefork.run ~workers ~conns:workers ~payload ~msgs_per_conn () in
  let total_msgs = workers * msgs_per_conn in
  let expected_bytes = total_msgs * payload in
  let dt = float_of_int s.Rt_prefork.elapsed_ns /. 1e9 in
  {
    name = Printf.sprintf "ringNcore stream x%d" workers;
    payload;
    msgs = total_msgs;
    ns_per_msg = float_of_int s.Rt_prefork.elapsed_ns /. float_of_int total_msgs;
    msgs_per_sec = float_of_int total_msgs /. dt;
    mb_per_sec = float_of_int expected_bytes /. dt /. 1e6;
    (* Every byte exactly once, every connection served exactly once. *)
    ok = s.Rt_prefork.total_bytes = expected_bytes && Rt_prefork.total_served s = workers;
  }

(* With [c = min workers cores] truly parallel lanes, x[N] must carry
   >= 0.7 * c times the x1 throughput — on a >= 4-core box this is the
   issue's 0.7*N aggregate scaling at 4 domains.  When the box is
   oversubscribed (c < workers) every token handoff and park/unpark rides
   a scheduler round-trip whose cost grows with the number of runnable
   domains, so the ideal is discounted by a further c/workers: the bar
   becomes 0.7 * c^2/workers, i.e. "per-slice efficiency >= 0.7" on one
   core rather than a parallel-speedup claim this box cannot test. *)
let scaling_target workers =
  let c = min workers (Rt_dom.available_cores ()) in
  0.7 *. float_of_int (c * c) /. float_of_int workers

let run_prefork () =
  let worker_counts = [ 1; 2; 4 ] in
  (* Equal total message count per configuration so rows are comparable. *)
  let rows64 =
    List.map (fun w -> prefork_row ~workers:w ~payload:64 ~msgs_per_conn:(240_000 / w))
      worker_counts
  in
  let rows16k =
    List.map (fun w -> prefork_row ~workers:w ~payload:16384 ~msgs_per_conn:(6_000 / w))
      worker_counts
  in
  (* Fold the scaling acceptance into the x2/x4 64 B rows' ok flags. *)
  let x1 = List.hd rows64 in
  let rows64 =
    List.map2
      (fun w r ->
        if w = 1 then r
        else { r with ok = r.ok && r.msgs_per_sec >= scaling_target w *. x1.msgs_per_sec })
      worker_counts rows64
  in
  rows64 @ rows16k

(* ---- §4.2 token-takeover latency ----

   Two domains alternately operate under one [Rt_token]: each takeover is
   request → drain → release-fence → resume, timed by [Rt_token] itself
   into the token.takeover_ns histogram.  The row reports the p99.

   The 5 µs bar presumes a core per domain (the resume is one notify away
   from a spinning waiter).  On a single time-shared core every resume
   rides a scheduler wakeup — the same edge the wake_p99 row measures at
   ~8 µs — so the bar there is scheduler-bound and set accordingly. *)

let takeover_rounds = 20_000

(* Same name Rt_token registers under; the registry dedupes, so this is
   the one shared series. *)
let h_takeover_ns = Sds_obs.Obs.Metrics.histogram "token.takeover_ns"

let takeover_churn tok rounds =
  let dom = Rt_dom.self () in
  for _ = 1 to rounds do
    Rt_token.with_held tok ~dom (fun () -> ())
  done;
  (* Cooperative-hold contract: done with the token, hand it back so the
     peer's posted request is served even though we stop operating. *)
  Rt_token.release tok ~dom

let takeover_row () =
  let tok = Rt_token.create ~name:"bench" ~holder:(-1) () in
  let a = Rt_dom.spawn (fun () -> takeover_churn tok takeover_rounds) in
  let b = Rt_dom.spawn (fun () -> takeover_churn tok takeover_rounds) in
  Domain.join a;
  Domain.join b;
  let hs = Sds_obs.Obs.Metrics.summarize_hist h_takeover_ns in
  let p99 = float_of_int hs.Sds_obs.Obs.Metrics.hs_p99 in
  let bar = if Rt_dom.available_cores () >= 2 then 5_000. else 60_000. in
  {
    name = "token takeover p99";
    payload = 0;
    msgs = hs.Sds_obs.Obs.Metrics.hs_count;
    ns_per_msg = p99;
    msgs_per_sec = 0.;
    mb_per_sec = 0.;
    ok = hs.Sds_obs.Obs.Metrics.hs_count > 0 && p99 <= bar;
  }

(* ---- suites ---- *)

let payload_sizes = [ 8; 64; 512; 4096; 8192 ]

(* Scale the message count down as payloads grow so each point runs for a
   comparable wall-clock slice. *)
let msgs_for payload = max 100_000 (8_000_000 / max 1 (payload / 8))

let run_cross_domain () =
  List.map (fun payload -> cross_domain_throughput ~payload ~msgs:(msgs_for payload) ()) payload_sizes

let run_single_domain () =
  List.map (fun payload -> single_domain_throughput ~payload ~msgs:(msgs_for payload) ()) payload_sizes

(* Large-payload stream points: policy-driven descriptor handoff next to
   the forced inline copy of the same traffic, the Libra comparison the
   BENCH file tracks (zero-copy at 64 KiB must stay >= 2x the copy path). *)
let pool_points = [ (16384, 20_000); (65536, 8_000) ]

let run_stream_pool ~copy_mode () =
  List.concat_map
    (fun (payload, msgs) ->
      [
        cross_domain_stream_pool ~mode:copy_mode ~name:"ring2core stream" ~payload ~msgs ();
        cross_domain_stream_pool ~mode:Cp.Always_copy ~name:"ring2core stream copy"
          ~payload ~msgs ();
      ])
    pool_points

let run_all ?(copy_mode = Cp.Adaptive) () =
  Fmt.pr "@.== ring2core: two-domain SPSC ring data path (real Atomics, real copies) ==@.";
  let cross = run_cross_domain () in
  List.iter pp_result cross;
  Fmt.pr "-- §4.6 zero-copy stream: descriptor handoff vs inline copy (policy=%s) --@."
    (Cp.mode_to_string copy_mode);
  let pool_rows = run_stream_pool ~copy_mode () in
  List.iter pp_result pool_rows;
  (* Reset so the wake_p99 stage row reads only this ping-pong's parks. *)
  Sds_obs.Obs.Metrics.reset ();
  let pp = cross_domain_pingpong ~payload:64 ~rounds:100_000 () in
  pp_result pp;
  let wake = wake_p99_row ~payload:64 ~rounds:100_000 in
  pp_result wake;
  Fmt.pr "-- single-domain loopback for comparison --@.";
  let single = run_single_domain () in
  List.iter pp_result single;
  let batched = single_domain_batched ~payload:64 ~msgs:4_000_000 ~batch:32 () in
  pp_result batched;
  let adaptive = single_domain_adaptive ~payload:64 ~msgs:4_000_000 () in
  pp_result adaptive;
  let span_oh = span_overhead () in
  pp_result span_oh;
  let hb_oh = heartbeat_overhead () in
  pp_result hb_oh;
  Fmt.pr "-- ringNcore: real-domain prefork data plane (%d core(s) available) --@."
    (Rt_dom.available_cores ());
  let prefork = run_prefork () in
  List.iter pp_result prefork;
  let takeover = takeover_row () in
  pp_result takeover;
  let all =
    cross @ pool_rows @ [ pp; wake ] @ single
    @ [ batched; adaptive; span_oh; hb_oh ]
    @ prefork @ [ takeover ]
  in
  if List.for_all (fun r -> r.ok) all then Fmt.pr "all checksums ok@."
  else Fmt.pr "CHECKSUM FAILURES PRESENT@.";
  all

(* ---- JSON emission (BENCH_ring.json) ---- *)

let json_of_result r =
  Printf.sprintf
    {|    {"name": %S, "payload_bytes": %d, "msgs": %d, "ns_per_msg": %.2f, "msgs_per_sec": %.0f, "mb_per_sec": %.2f, "ok": %b}|}
    r.name r.payload r.msgs r.ns_per_msg r.msgs_per_sec r.mb_per_sec r.ok

(* Reference points carried in the file so the perf trajectory reads
   PR-over-PR without digging through git history: the seed's wait/notify
   path cost ~32.3 µs per ping-pong message (fixed 512-spin + racy
   flag/condvar parking); the event-notification subsystem is measured
   against it. *)
let baseline = [ ("ring2core pingpong ns_per_msg (seed)", 32263.44) ]

let write_json ~path ~micro results =
  let oc = open_out path in
  let micro_json =
    List.map
      (fun (name, ns, words) ->
        Printf.sprintf {|    {"name": %S, "ns_per_op": %.2f, "minor_words_per_op": %.3f}|} name ns
          words)
      micro
  in
  let baseline_json =
    List.map (fun (name, v) -> Printf.sprintf {|    %S: %.2f|} name v) baseline
  in
  Printf.fprintf oc
    "{\n  \"schema\": \"socksdirect-ring-bench/2\",\n  \"unix_time\": %.0f,\n  \"baseline\": {\n%s\n  },\n  \"micro\": [\n%s\n  ],\n  \"ring\": [\n%s\n  ]\n}\n"
    (Unix.time ())
    (String.concat ",\n" baseline_json)
    (String.concat ",\n" micro_json)
    (String.concat ",\n" (List.map json_of_result results));
  close_out oc;
  Fmt.pr "wrote %s@." path
