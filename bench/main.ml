(* The benchmark harness: one runner per paper table and figure (simulated
   experiments calibrated from Table 2/4), plus a Bechamel suite measuring
   the REAL wall-clock cost of the data structures this repo implements
   (the §4.2 ring vs the locked / buffer-allocating baselines, FD tables,
   protocol codecs).

   Usage: main.exe [--json] [--metrics-out FILE] [--copy-policy MODE]
   [experiment ...] with experiments from: table1 table2 table3 table4 fig7
   fig8 fig9 fig10 fig11 fig12 redis rpc connscale ablation micro
   ring2core.  No arguments = all.  With [--json], the micro and ring2core
   results are also written to BENCH_ring.json for the perf trajectory.
   With [--metrics-out FILE], the process-wide Obs metrics snapshot is
   written there as JSON after the runs, next to BENCH_*.json.
   [--copy-policy always|never|adaptive] selects the Libra selective-copy
   mode for the ring2core large-payload stream rows (default adaptive);
   the forced-copy comparison rows always run with [always]. *)

open Sds_experiments

(* ---- Bechamel micro-benchmarks on the real data structures ----

   Each test carries the number of per-message operations one staged run
   performs, so every row reports ns (and minor words) per *message* —
   batched rows included — and rows stay comparable. *)

let bechamel_tests () =
  let open Bechamel in
  let payload = Bytes.make 64 'x' in
  let big = Bytes.make 4096 'y' in
  (* §4.2 per-socket ring: no allocation, no lock.  The dequeue side uses
     [try_dequeue_packed] — the zero-allocation hot path the transport layer
     runs — so minor words/op on this row should read ~0. *)
  let ring = Sds_ring.Spsc_ring.create ~size:(1 lsl 16) () in
  let dst = Bytes.create 8192 in
  let t_ring =
    Test.make ~name:"spsc_ring enq+deq 64B"
      (Staged.stage (fun () ->
           ignore (Sds_ring.Spsc_ring.try_enqueue ring payload ~off:0 ~len:64);
           ignore (Sds_ring.Spsc_ring.try_dequeue_packed ~auto_credit:true ring ~dst ~dst_off:0)))
  in
  let ring4k = Sds_ring.Spsc_ring.create ~size:(1 lsl 16) () in
  let t_ring4k =
    Test.make ~name:"spsc_ring enq+deq 4KiB"
      (Staged.stage (fun () ->
           ignore (Sds_ring.Spsc_ring.try_enqueue ring4k big ~off:0 ~len:4096);
           ignore (Sds_ring.Spsc_ring.try_dequeue_packed ~auto_credit:true ring4k ~dst ~dst_off:0)))
  in
  (* The old allocating dequeue, kept as its own row so the allocation win
     stays visible in the output. *)
  let ring_alloc = Sds_ring.Spsc_ring.create ~size:(1 lsl 16) () in
  let t_ring_alloc =
    Test.make ~name:"spsc_ring enq+deq 64B alloc"
      (Staged.stage (fun () ->
           ignore (Sds_ring.Spsc_ring.try_enqueue ring_alloc payload ~off:0 ~len:64);
           ignore (Sds_ring.Spsc_ring.try_dequeue ~auto_credit:true ring_alloc)))
  in
  (* Vectored enqueue: 32 messages per tail publication (§4.2 batching). *)
  let ring_batch = Sds_ring.Spsc_ring.create ~size:(1 lsl 16) () in
  let batch_srcs = Array.make 32 (payload, 0, 64) in
  let t_ring_batch =
    Test.make ~name:"spsc_ring batch32 64B/msg"
      (Staged.stage (fun () ->
           ignore (Sds_ring.Spsc_ring.enqueue_batch ring_batch batch_srcs);
           for _ = 1 to 32 do
             ignore (Sds_ring.Spsc_ring.try_dequeue_packed ~auto_credit:true ring_batch ~dst ~dst_off:0)
           done))
  in
  (* Baseline: per-FD mutex on every operation (§2.1.1). *)
  let locked = Sds_ring.Locked_queue.create ~capacity_bytes:(1 lsl 16) () in
  let t_locked =
    Test.make ~name:"locked_queue enq+deq 64B"
      (Staged.stage (fun () ->
           ignore (Sds_ring.Locked_queue.try_enqueue locked payload ~off:0 ~len:64);
           ignore (Sds_ring.Locked_queue.try_dequeue locked)))
  in
  (* Baseline: MTU buffer allocated and freed per packet (§2.1.2). *)
  let alloc = Sds_ring.Alloc_queue.create ~slots:1024 ~buffer_size:4096 () in
  let t_alloc =
    Test.make ~name:"alloc_queue enq+deq 64B"
      (Staged.stage (fun () ->
           ignore (Sds_ring.Alloc_queue.try_enqueue alloc payload ~off:0 ~len:64);
           ignore (Sds_ring.Alloc_queue.try_dequeue alloc)))
  in
  (* Lowest-FD allocation table (§4.5.1). *)
  let fds = Sds_kernel.Fd_table.create () in
  let t_fd =
    Test.make ~name:"fd_table alloc+close"
      (Staged.stage (fun () ->
           let fd = Sds_kernel.Fd_table.alloc fds () in
           ignore (Sds_kernel.Fd_table.close fds fd)))
  in
  (* Event-queue heap (simulator substrate). *)
  let heap = Sds_sim.Heap.create ~less:(fun a b -> a < b) ~dummy:0 () in
  let cnt = ref 0 in
  let t_heap =
    Test.make ~name:"heap push+pop"
      (Staged.stage (fun () ->
           incr cnt;
           Sds_sim.Heap.push heap (!cnt * 7919 mod 65536);
           ignore (Sds_sim.Heap.pop heap)))
  in
  (* Protocol codecs used by the application benchmarks. *)
  let req = "GET /bytes/4096 HTTP/1.1" in
  let t_http =
    Test.make ~name:"http request-line parse"
      (Staged.stage (fun () ->
           match String.split_on_char ' ' req with
           | [ m; p; v ] -> ignore (m, p, v)
           | _ -> assert false))
  in
  (* Allocation-free RPC codec: frame into a reused buffer, parse through
     the in-place field accessors (no method string, no payload copy). *)
  let rpc_payload = Bytes.make 1024 'r' in
  let rpc_buf = Bytes.create 2048 in
  let rpc_sink = ref 0 in
  let t_rpc =
    Test.make ~name:"rpc frame+parse 1KiB"
      (Staged.stage (fun () ->
           let total =
             Sds_apps.Rpc.frame_into ~buf:rpc_buf ~call_id:42 ~meth:"echo" ~payload:rpc_payload
           in
           rpc_sink :=
             !rpc_sink + total + Sds_apps.Rpc.frame_call_id rpc_buf
             + Sds_apps.Rpc.frame_payload_len rpc_buf))
  in
  (* §4.4 notification primitives: the hot-path sender cost (notify with no
     one parked) and the waiter's spin-phase arm/disarm. *)
  let w = Sds_notify.Waiter.create () in
  let t_notify =
    Test.make ~name:"notify unparked"
      (Staged.stage (fun () -> Sds_notify.Waiter.notify w))
  in
  let t_prepare =
    Test.make ~name:"waiter prepare+cancel"
      (Staged.stage (fun () ->
           ignore (Sds_notify.Waiter.prepare_wait w);
           Sds_notify.Waiter.cancel w))
  in
  [
    (t_ring, 1); (t_ring4k, 1); (t_ring_alloc, 1); (t_ring_batch, 32); (t_locked, 1);
    (t_alloc, 1); (t_fd, 1); (t_heap, 1); (t_http, 1); (t_rpc, 1); (t_notify, 1); (t_prepare, 1);
  ]

(* Runs the Bechamel suite measuring both wall clock and minor-heap words
   per op; returns [(name, ns_per_op, minor_words_per_op)] rows. *)
let run_bechamel () =
  let open Bechamel in
  Fmt.pr "@.== Bechamel: real wall-clock cost of the implemented data structures ==@.";
  Fmt.pr "%-30s %12s %16s@." "benchmark" "ns/op" "minor words/op";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let clock = Toolkit.Instance.monotonic_clock in
  let minor = Toolkit.Instance.minor_allocated in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  (* Each grouped run holds exactly one test; grab its single estimate
     whatever key Analyze filed it under. *)
  let estimate results _name =
    Hashtbl.fold
      (fun _ v acc ->
        match acc with
        | Some _ -> acc
        | None -> ( match Analyze.OLS.estimates v with Some [ est ] -> Some est | _ -> None))
      results None
  in
  List.filter_map
    (fun (test, units) ->
      let name = Test.name test in
      let raw = Benchmark.all cfg [ clock; minor ] (Test.make_grouped ~name:"g" [ test ]) in
      let ns = estimate (Analyze.all ols clock raw) name in
      let words = estimate (Analyze.all ols minor raw) name in
      match (ns, words) with
      | Some ns, Some words ->
        (* Per-message normalization: a staged run of a batched test covers
           [units] messages. *)
        let ns = ns /. float_of_int units and words = words /. float_of_int units in
        Fmt.pr "%-30s %12.1f %16.3f@." name ns words;
        Some (name, ns, words)
      | _ ->
        Fmt.pr "%-30s %12s %16s@." name "n/a" "n/a";
        None)
    (bechamel_tests ())

(* ---- experiment registry ---- *)

(* JSON sink: "micro" and "ring2core" deposit their rows here; when --json
   was given, main writes them to BENCH_ring.json at exit. *)
let json_micro : (string * float * float) list ref = ref []
let json_ring : Ring_bench.result list ref = ref []

(* --copy-policy knob for the ring2core stream rows (Libra selective
   copying); set from argv before the experiments run. *)
let copy_mode = ref Socksdirect.Copy_policy.Adaptive

let experiments : (string * (unit -> unit)) list =
  [
    (* micro runs first: Bechamel's wall-clock measurements are cleanest
       before the simulation experiments grow the heap. *)
    ("micro", fun () -> json_micro := run_bechamel ());
    ("ring2core", fun () -> json_ring := Ring_bench.run_all ~copy_mode:!copy_mode ());
    ("table1", fun () -> Tables.run_table1 ());
    ("table2", fun () -> Tables.run_table2 ());
    ("table3", fun () -> Tables.run_table3 ());
    ("table4", fun () -> Tables.run_table4 ());
    ("fig7", fun () -> ignore (Fig78.run_fig7 ()));
    ("fig8", fun () -> ignore (Fig78.run_fig8 ()));
    ("fig9", fun () -> ignore (Fig9.run ()));
    ("fig10", fun () -> ignore (Fig10.run ()));
    ("fig11", fun () -> ignore (Fig11.run ()));
    ("fig12", fun () -> ignore (Fig12.run ()));
    ("redis", fun () -> ignore (Apps_exp.run_redis ()));
    ("rpc", fun () -> ignore (Apps_exp.run_rpc ()));
    ("connscale", fun () -> ignore (Connscale.run ()));
    ("qpscale", fun () -> ignore (Qpscale.run ()));
    ("loss", fun () -> ignore (Loss.run ()));
    ("mix", fun () -> ignore (Mix.run_mix ()));
    ("loadlat", fun () -> ignore (Mix.run_loadlat ()));
    ("acceptscale", fun () -> ignore (Accept_scale.run ()));
    ("qos", fun () -> ignore (Qos.run ()));
    ("ablation", fun () -> ignore (Ablation.run ()));
  ]

let () =
  (* Crash/SIGQUIT flight-recorder dump: a wedged bench run leaves a
     postmortem with the last spans and ring/pool state. *)
  Sds_obs.Flight.install ();
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  (* --metrics-out FILE: consume the flag and its argument. *)
  let rec extract_metrics_out acc = function
    | "--metrics-out" :: path :: rest -> (Some path, List.rev_append acc rest)
    | "--metrics-out" :: [] ->
      Fmt.epr "--metrics-out requires a file argument@.";
      exit 1
    | a :: rest -> extract_metrics_out (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let metrics_out, args = extract_metrics_out [] args in
  (* --copy-policy MODE: consume the flag and its argument. *)
  let rec extract_copy_policy acc = function
    | "--copy-policy" :: m :: rest -> (
      match Socksdirect.Copy_policy.mode_of_string m with
      | Some mode ->
        copy_mode := mode;
        List.rev_append acc rest
      | None ->
        Fmt.epr "--copy-policy must be one of: always never adaptive@.";
        exit 1)
    | "--copy-policy" :: [] ->
      Fmt.epr "--copy-policy requires a mode argument@.";
      exit 1
    | a :: rest -> extract_copy_policy (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_copy_policy [] args in
  let requested =
    match List.filter (fun a -> a <> "--json") args with
    | _ :: _ as names -> names
    | [] -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
        let t0 = Unix.gettimeofday () in
        run ();
        Fmt.pr "(%s finished in %.1fs wall clock)@." name (Unix.gettimeofday () -. t0)
      | None ->
        Fmt.epr "unknown experiment %S; available: %s@." name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested;
  if json then begin
    (* micro --json implies the ring2core rows too: the file is the ring
       perf trajectory, so always carry the cross-domain numbers. *)
    if !json_ring = [] && List.mem "micro" requested then
      json_ring := Ring_bench.run_all ~copy_mode:!copy_mode ();
    Ring_bench.write_json ~path:"BENCH_ring.json" ~micro:!json_micro !json_ring
  end;
  match metrics_out with
  | Some path ->
    Out_channel.with_open_text path (fun oc -> output_string oc (Sds_obs.Obs.Metrics.to_json ()));
    Fmt.pr "metrics snapshot written to %s@." path
  | None -> ()
