(** Minimal HTTP/1.1 plus an Nginx-style reverse proxy (§5.3.1, Figure 11):
    request generator -> proxy -> upstream responder, all speaking real
    request-line/header/Content-Length framing over any {!Sock_api.S}. *)

val app_work_ns : int
(** Per-request application processing charged outside the socket stack. *)

type request = { meth : string; path : string; headers : (string * string) list }
type response = { status : int; resp_headers : (string * string) list; body : Bytes.t }

val content_length : (string * string) list -> int
val parse_header_line : string -> (string * string) option
val format_request : request -> string
val format_response_head : response -> string

module Make (Api : Sock_api.S) : sig
  module Io : module type of Sock_api.Io (Api)

  val read_request : Io.t -> request option
  val read_response : Io.t -> response option
  val write_request : Io.t -> request -> unit
  val write_response : Io.t -> response -> unit

  val run_responder : Api.endpoint -> Api.listener -> requests:int -> unit
  (** Upstream: answers every GET with a body sized by the path
      ("/bytes/<n>"). *)

  val run_proxy :
    Api.endpoint ->
    listener:Api.listener ->
    upstream:Sds_transport.Host.t ->
    upstream_port:int ->
    requests:int ->
    unit

  val run_generator :
    Api.endpoint ->
    proxy:Sds_transport.Host.t ->
    port:int ->
    requests:int ->
    size:int ->
    on_latency:(int -> unit) ->
    unit
end
