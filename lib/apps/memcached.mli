(** A Memcached-like server speaking the binary protocol (§2, §2.2), over
    any {!Sock_api.S}. *)

type opcode = Get | Set | Delete

val opcode_byte : opcode -> int
val opcode_of_byte : int -> opcode option
val req_magic : int
val res_magic : int
val header_bytes : int

type packet = {
  magic : int;
  op : opcode;
  status : int;  (** 0 ok, 1 not found; requests carry 0 *)
  opaque : int;
  key : string;
  value : Bytes.t;
}

val encode : packet -> Bytes.t

val decode_header : Bytes.t -> int * opcode option * int * int * int * int
(** [(magic, opcode, key_len, status, total_body, opaque)]. *)

module Make (Api : Sock_api.S) : sig
  module Io : module type of Sock_api.Io (Api)

  val read_packet : Io.t -> packet option
  val write_packet : Io.t -> packet -> unit

  val run_server : Api.endpoint -> Api.listener -> requests:int -> unit

  type client

  val connect : Api.endpoint -> dst:Sds_transport.Host.t -> port:int -> client
  val request : client -> op:opcode -> key:string -> value:Bytes.t -> int * Bytes.t
  val set : client -> key:string -> value:Bytes.t -> int
  val get : client -> key:string -> Bytes.t option
  val delete : client -> key:string -> int
  val close : client -> unit
end
