(** Pre-fork master/worker server over libsd — the Apache / PHP-FPM process
    model (§2.2): the master binds and listens, forks N workers, and every
    worker accepts from the same listening socket; the monitor dispatches
    round-robin and idle workers steal (§4.5.2). *)

type t

val create : Sds_transport.Host.t -> port:int -> workers:int -> t

val start :
  t ->
  engine:Sds_sim.Engine.t ->
  conns_per_worker:int ->
  handler:(Socksdirect.Libsd.thread -> int -> unit) ->
  on_ready:(unit -> unit) ->
  unit
(** Spawns the master proc; [on_ready] fires once every worker accepts.
    [handler th fd] serves one accepted connection fd and returns. *)

val served : t -> int array
(** Per-worker request counts (a copy). *)

val total_served : t -> int

val echo_handler : Socksdirect.Libsd.thread -> int -> unit
(** Ready-made handler: one request in, one reply out. *)
