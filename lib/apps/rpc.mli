(** A small binary RPC library in the style of RPClib (§5.3.3).

    Frame: 4-byte LE total length, 4-byte call id, 2-byte method-name
    length, method name, payload; the response echoes the call id. *)

val frame_into : buf:Bytes.t -> call_id:int -> meth:string -> payload:Bytes.t -> int
(** Allocation-free framing into a caller-owned buffer; returns the frame's
    total length.  Raises [Invalid_argument] when [buf] is too small. *)

val frame : call_id:int -> meth:string -> payload:Bytes.t -> Bytes.t

(** Zero-allocation field accessors over a framed buffer. *)

val frame_total : Bytes.t -> int
val frame_call_id : Bytes.t -> int
val frame_meth_len : Bytes.t -> int
val frame_payload_off : Bytes.t -> int
val frame_payload_len : Bytes.t -> int

val parse : Bytes.t -> int * string * Bytes.t
(** [(call_id, method, payload)] — the allocating convenience parser. *)

val marshal_overhead_ns : int

module Make (Api : Sock_api.S) : sig
  module Io : module type of Sock_api.Io (Api)

  type server

  val create_server : unit -> server
  val register : server -> string -> (Bytes.t -> Bytes.t) -> unit
  val read_frame : Io.t -> Bytes.t option
  val serve : Api.endpoint -> Api.listener -> server -> calls:int -> unit

  type client

  val connect : Api.endpoint -> dst:Sds_transport.Host.t -> port:int -> client
  val call : client -> meth:string -> payload:Bytes.t -> Bytes.t
  val close : client -> unit
end
