(** Network-function pipeline (§5.3.4, Figure 12): pcap-framed packets flow
    source -> NF1 -> ... -> NFk -> sink over pluggable channels
    (SocksDirect, kernel TCP, kernel pipes), plus a NetBricks-style
    single-process reference composition. *)

val pcap_header_bytes : int
val packet_payload : int
val packet_bytes : int

val make_packet : seq:int -> Bytes.t

val nf_work : int array -> Bytes.t -> unit
(** Parse the header and bump [counters] — the per-packet NF work itself. *)

module type Channel = sig
  type rd
  type wr

  val read_packet : rd -> Bytes.t option
  val write_packet : wr -> Bytes.t -> unit
  val close_wr : wr -> unit
end

module Run (C : Channel) : sig
  val nf_stage : input:C.rd -> output:C.wr -> int
  (** One NF process: input -> work -> output; returns packets processed. *)

  val source : output:C.wr -> packets:int -> unit
  val sink : input:C.rd -> int
end

module Sock_channel (Api : Sock_api.S) : sig
  module Io : module type of Sock_api.Io (Api)

  type rd = Io.t
  type wr = Io.t

  val read_packet : rd -> Bytes.t option
  val write_packet : wr -> Bytes.t -> unit
  val close_wr : wr -> unit
end

module Pipe_channel : sig
  type rd = Sds_kernel.Kernel.process * int
  type wr = Sds_kernel.Kernel.process * int

  val read_packet : rd -> Bytes.t option
  val write_packet : wr -> Bytes.t -> unit
  val close_wr : wr -> unit
end

val netbricks_pipeline : stages:int -> packets:int -> int
