(** A Redis-like key-value store speaking a RESP-style protocol (§5.3.2):
    single-threaded server over one keep-alive connection, and a
    redis-benchmark-style closed-loop GET client. *)

val app_work_ns : int
(** Per-command application time charged outside the socket stack. *)

module Make (Api : Sock_api.S) : sig
  module Io : module type of Sock_api.Io (Api)

  val write_bulk : Io.t -> string -> unit
  val write_command : Io.t -> string list -> unit

  val read_bulk : Io.t -> string option option
  (** [Some None] is a RESP miss ("$-1"); [None] is EOF/garbage. *)

  val read_command : Io.t -> string list option

  val run_server : Api.endpoint -> Api.listener -> requests:int -> unit
  (** Serves SET/GET/DEL on one accepted connection. *)

  val run_client :
    Api.endpoint ->
    server:Sds_transport.Host.t ->
    port:int ->
    gets:int ->
    value_size:int ->
    on_latency:(int -> unit) ->
    unit
end
