(* A small binary RPC library in the style of RPClib (§5.3.3).

   Frame: 4-byte little-endian total length, 4-byte call id, 2-byte method
   name length, method name, payload.  The response echoes the call id.
   Like RPClib (and unlike eRPC), the library itself adds serialization
   overhead on top of the socket — the paper's point is that the stack
   improvement still cuts RPC latency roughly in half. *)

(* Frame into a caller-owned buffer — the allocation-free flavour, used on
   the library's own send paths with a per-connection scratch (the same
   reuse discipline as the ring codec).  Returns the frame's total length. *)
let frame_into ~buf ~call_id ~meth ~payload =
  let mlen = String.length meth in
  let total = 4 + 4 + 2 + mlen + Bytes.length payload in
  if Bytes.length buf < total then invalid_arg "Rpc.frame_into: buffer too small";
  Bytes.set_int32_le buf 0 (Int32.of_int total);
  Bytes.set_int32_le buf 4 (Int32.of_int call_id);
  Bytes.set_uint16_le buf 8 mlen;
  Bytes.blit_string meth 0 buf 10 mlen;
  Bytes.blit payload 0 buf (10 + mlen) (Bytes.length payload);
  total

let frame ~call_id ~meth ~payload =
  let b = Bytes.create (4 + 4 + 2 + String.length meth + Bytes.length payload) in
  ignore (frame_into ~buf:b ~call_id ~meth ~payload);
  b

(* Zero-allocation field accessors over a framed buffer: parse without
   materializing the method string or copying the payload. *)
let frame_total b = Int32.to_int (Bytes.get_int32_le b 0)
let frame_call_id b = Int32.to_int (Bytes.get_int32_le b 4)
let frame_meth_len b = Bytes.get_uint16_le b 8
let frame_payload_off b = 10 + frame_meth_len b
let frame_payload_len b = frame_total b - frame_payload_off b

let parse b =
  let call_id = Int32.to_int (Bytes.get_int32_le b 4) in
  let mlen = Bytes.get_uint16_le b 8 in
  let meth = Bytes.sub_string b 10 mlen in
  let payload = Bytes.sub b (10 + mlen) (Bytes.length b - 10 - mlen) in
  (call_id, meth, payload)

(* Simulated per-call marshalling overhead: RPClib's dynamic dispatch and
   msgpack encoding dominate its profile (the paper measures 45 us intra-host
   RTT over an 11 us socket, and notes eRPC-class libraries are far leaner). *)
let marshal_overhead_ns = 5_000

module Make (Api : Sock_api.S) = struct
  module Io = Sock_api.Io (Api)

  type server = {
    handlers : (string, Bytes.t -> Bytes.t) Hashtbl.t;
    mutable scratch : Bytes.t;  (** reused response frame buffer *)
  }

  let create_server () = { handlers = Hashtbl.create 8; scratch = Bytes.create 256 }

  (* Scratch buffers only grow, to the largest frame seen on the endpoint. *)
  let grown b need = if Bytes.length b < need then Bytes.create (max need (2 * Bytes.length b)) else b
  let register srv name fn = Hashtbl.replace srv.handlers name fn

  let read_frame io =
    match Io.read_exact io 4 with
    | None -> None
    | Some hdr ->
      let total = Int32.to_int (Bytes.get_int32_le hdr 0) in
      (match Io.read_exact io (total - 4) with
      | None -> None
      | Some rest ->
        let b = Bytes.create total in
        Bytes.blit hdr 0 b 0 4;
        Bytes.blit rest 0 b 4 (total - 4);
        Some b)

  let serve ep listener srv ~calls =
    let conn = Api.accept ep listener in
    let io = Io.make ep conn in
    let rec go n =
      if n > 0 then
        match read_frame io with
        | None -> ()
        | Some b ->
          let call_id, meth, payload = parse b in
          Sds_sim.Proc.sleep_ns marshal_overhead_ns;
          let result =
            match Hashtbl.find_opt srv.handlers meth with
            | Some fn -> fn payload
            | None -> Bytes.of_string "ERR:no-such-method"
          in
          srv.scratch <- grown srv.scratch (10 + Bytes.length result);
          let total = frame_into ~buf:srv.scratch ~call_id ~meth:"" ~payload:result in
          (* RPClib writes the length prefix and the body separately — an
             extra socket operation per message, cheap on SocksDirect,
             another wakeup on the kernel path. *)
          Io.write_all io srv.scratch ~off:0 ~len:4;
          Io.write_all io srv.scratch ~off:4 ~len:(total - 4);
          go (n - 1)
    in
    go calls;
    Io.close io

  type client = { io : Io.t; mutable next_id : int; mutable scratch : Bytes.t }

  let connect ep ~dst ~port =
    let conn = Api.connect ep ~dst ~port in
    { io = Io.make ep conn; next_id = 1; scratch = Bytes.create 256 }

  let call client ~meth ~payload =
    let id = client.next_id in
    client.next_id <- id + 1;
    Sds_sim.Proc.sleep_ns marshal_overhead_ns;
    client.scratch <- grown client.scratch (10 + String.length meth + Bytes.length payload);
    let total = frame_into ~buf:client.scratch ~call_id:id ~meth ~payload in
    Io.write_all client.io client.scratch ~off:0 ~len:4;
    Io.write_all client.io client.scratch ~off:4 ~len:(total - 4);
    match read_frame client.io with
    | None -> failwith "rpc: connection closed"
    | Some reply ->
      let rid, _, result = parse reply in
      if rid <> id then failwith "rpc: call id mismatch";
      Sds_sim.Proc.sleep_ns marshal_overhead_ns;
      result

  let close client = Io.close client.io
end
