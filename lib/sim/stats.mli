(** Sample collection and summary statistics for experiments. *)

type t

val create : unit -> t
val clear : t -> unit
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** Nearest-rank percentile; argument in [\[0, 100\]].  [percentile t 0.] is
    defined on non-empty series and returns the exact minimum. *)

val min_v : t -> float
val max_v : t -> float
val stddev : t -> float

type summary = {
  n : int;
  mean_v : float;
  p1 : float;
  p50 : float;
  p99 : float;
  p999 : float;
  min_s : float;
  max_s : float;
}

val summarize : t -> summary
val pp_summary : Format.formatter -> summary -> unit
