(* Discrete-event simulation engine.

   Time is an integer count of nanoseconds.  Events with equal timestamps run
   in schedule order (FIFO via a monotone sequence number), which makes every
   run deterministic. *)

type event = { time : int; seq : int; fn : unit -> unit }

type t = {
  mutable now : int;
  mutable seq : int;
  events : event Heap.t;
  mutable running : bool;
  mutable error : exn option;
  mutable executed : int;
}

exception Stopped

module Obs = Sds_obs.Obs

(* Event-loop occupancy: total events executed, plus a queue-depth histogram
   sampled every 256 events so a long run costs ~nothing. *)
let m_events = Obs.Metrics.counter "engine.events"
let h_queue_depth = Obs.Metrics.histogram "engine.queue_depth"

let dummy_event = { time = max_int; seq = max_int; fn = ignore }

let event_less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let create () =
  {
    now = 0;
    seq = 0;
    events = Heap.create ~capacity:1024 ~less:event_less ~dummy:dummy_event ();
    running = false;
    error = None;
    executed = 0;
  }

let now t = t.now
let pending t = Heap.length t.events
let executed t = t.executed

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let e = { time = t.now + delay; seq = t.seq; fn } in
  t.seq <- t.seq + 1;
  Heap.push t.events e

let schedule_at t ~time fn =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  schedule t ~delay:(time - t.now) fn

let record_error t exn = if t.error = None then t.error <- Some exn

(* Runs until the event queue drains, [until] is passed, or [max_events]
   events have executed.  The first exception escaping an event aborts the
   run and is re-raised: simulated-process bugs must not be silent. *)
let run ?until ?max_events t =
  t.running <- true;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue_ = ref true in
  while !continue_ && t.running && t.error = None do
    match Heap.peek t.events with
    | None -> continue_ := false
    | Some e ->
      (match until with
      | Some horizon when e.time > horizon ->
        t.now <- horizon;
        continue_ := false
      | _ ->
        if !budget <= 0 then continue_ := false
        else begin
          decr budget;
          ignore (Heap.pop t.events);
          t.now <- e.time;
          t.executed <- t.executed + 1;
          Obs.Metrics.incr m_events;
          if t.executed land 255 = 0 then Obs.Metrics.observe h_queue_depth (Heap.length t.events);
          (try e.fn () with
          | Stopped -> ()
          | exn -> record_error t exn)
        end)
  done;
  t.running <- false;
  match t.error with
  | Some exn ->
    t.error <- None;
    raise exn
  | None -> ()

let stop t = t.running <- false

(* Timestamp trace events with this engine's simulated clock. *)
let install_trace_clock t = Obs.Trace.set_clock (fun () -> t.now)

(* Stamp spans with simulated nanoseconds too: every stamp point then reads
   the same clock, so per-stage durations are exact sim time and their sums
   reconcile with span.e2e by construction. *)
let install_span_clock t = Sds_obs.Span.set_clock (fun () -> t.now)

let clear t =
  Heap.clear t.events;
  t.error <- None
