(** Discrete-event simulation engine with integer-nanosecond time.

    Events with equal timestamps execute in schedule order, so runs are
    deterministic. *)

type t

exception Stopped
(** Raise from within an event to abandon that event silently. *)

val create : unit -> t

val now : t -> int
(** Current simulated time in nanoseconds. *)

val pending : t -> int
(** Number of events still queued. *)

val executed : t -> int
(** Total number of events executed so far. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay fn] runs [fn] at [now t + delay].  Raises
    [Invalid_argument] on negative delay. *)

val schedule_at : t -> time:int -> (unit -> unit) -> unit

val record_error : t -> exn -> unit
(** Abort the current [run] with [exn] once the current event returns. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Execute queued events in timestamp order.  Stops when the queue drains,
    simulated time would exceed [until] (clock is then advanced to [until]),
    or [max_events] events have run.  Re-raises the first exception recorded
    by an event. *)

val stop : t -> unit
(** Stop a run in progress after the current event completes. *)

val install_trace_clock : t -> unit
(** Make [Obs.Trace] timestamp events with this engine's simulated clock
    (nanoseconds) instead of the default tick counter. *)

val install_span_clock : t -> unit
(** Make [Sds_obs.Span] stamps read this engine's simulated clock, so span
    stage durations are exact simulated nanoseconds. *)

val clear : t -> unit
(** Drop all pending events and any recorded error. *)
