(* Sample collection and summary statistics for experiments.

   Latency series report mean and the 1%/99% percentiles exactly as the
   paper's error bars do. *)

type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 64 0.; len = 0; sorted = true }

let clear t =
  t.len <- 0;
  t.sorted <- true

let add t v =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- v;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort Float.compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let mean t =
  if t.len = 0 then nan
  else begin
    let sum = ref 0. in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.samples.(i)
    done;
    !sum /. float_of_int t.len
  end

(* Nearest-rank percentile, [p] in [0, 100].  The rank is clamped to at
   least 1 so [p = 0.] is defined and exact: it returns the minimum.  When
   [p/100 * n] is an integer up to float rounding noise (e.g. 99.9% of 1000
   samples), that integer is the rank — a bare [ceil] would overshoot. *)
let percentile t p =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    let r = p /. 100. *. float_of_int t.len in
    let nearest = Float.round r in
    let rank =
      if Float.abs (r -. nearest) < 1e-9 *. float_of_int t.len then int_of_float nearest
      else int_of_float (ceil r)
    in
    let idx = min (t.len - 1) (max 1 rank - 1) in
    t.samples.(idx)
  end

let min_v t = if t.len = 0 then nan else (ensure_sorted t; t.samples.(0))
let max_v t = if t.len = 0 then nan else (ensure_sorted t; t.samples.(t.len - 1))

let stddev t =
  if t.len < 2 then 0.
  else begin
    let m = mean t in
    let acc = ref 0. in
    for i = 0 to t.len - 1 do
      let d = t.samples.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int (t.len - 1))
  end

type summary = {
  n : int;
  mean_v : float;
  p1 : float;
  p50 : float;
  p99 : float;
  p999 : float;
  min_s : float;
  max_s : float;
}

let summarize t =
  {
    n = t.len;
    mean_v = mean t;
    p1 = percentile t 1.;
    p50 = percentile t 50.;
    p99 = percentile t 99.;
    p999 = percentile t 99.9;
    min_s = min_v t;
    max_s = max_v t;
  }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.2f p1=%.2f p50=%.2f p99=%.2f p999=%.2f" s.n s.mean_v s.p1 s.p50 s.p99
    s.p999
