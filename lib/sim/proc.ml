(* Simulated processes / threads as effect-handler coroutines.

   A proc is a cooperative fiber driven by the discrete-event engine: effects
   performed inside the fiber (sleep, suspend, yield) capture the one-shot
   continuation and hand it to the engine, so blocking socket calls read
   naturally in direct style while time only advances in the simulator. *)

type state = Running | Blocked | Dead

type t = {
  id : int;
  name : string;
  engine : Engine.t;
  mutable state : state;
  mutable on_exit : (unit -> unit) list;
  (* Arbitrary per-proc slots used by upper layers (current cpu, libsd
     context, ...).  Keys are allocated by [new_key]. *)
  slots : Sds_het.Hmap.t;
}

type _ Effect.t +=
  | Sleep_ns : int -> unit Effect.t
  | Suspend : (t -> (unit -> unit) -> unit) -> unit Effect.t
  | Self : t Effect.t

exception Killed

let next_id = ref 0

let sleep_ns n =
  if n < 0 then invalid_arg "Proc.sleep_ns: negative duration";
  Effect.perform (Sleep_ns n)

let suspend f = Effect.perform (Suspend f)
let self () = Effect.perform Self

(* Yield to any other event scheduled at the current instant. *)
let pause () = sleep_ns 0

let finish p =
  p.state <- Dead;
  let callbacks = p.on_exit in
  p.on_exit <- [];
  List.iter (fun f -> f ()) callbacks

let spawn engine ?(name = "proc") body =
  incr next_id;
  let p =
    { id = !next_id; name; engine; state = Running; on_exit = []; slots = Sds_het.Hmap.create () }
  in
  let handler =
    {
      Effect.Deep.retc = (fun () -> finish p);
      exnc =
        (fun exn ->
          finish p;
          match exn with
          | Killed -> ()
          | exn -> Engine.record_error engine exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep_ns n ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Engine.schedule engine ~delay:n (fun () ->
                    if p.state <> Dead then Effect.Deep.continue k ()
                    else Effect.Deep.discontinue k Killed))
          | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                p.state <- Blocked;
                let fired = ref false in
                let wake () =
                  if not !fired then begin
                    fired := true;
                    Engine.schedule engine ~delay:0 (fun () ->
                        if p.state <> Dead then begin
                          p.state <- Running;
                          Effect.Deep.continue k ()
                        end
                        else Effect.Deep.discontinue k Killed)
                  end
                in
                register p wake)
          | Self -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> Effect.Deep.continue k p)
          | _ -> None);
    }
  in
  Engine.schedule engine ~delay:0 (fun () -> Effect.Deep.match_with body () handler);
  p

let on_exit p f = if p.state = Dead then f () else p.on_exit <- f :: p.on_exit

(* Mark the proc dead; its continuation is discontinued with [Killed] the
   next time it would resume. *)
let kill p = if p.state <> Dead then p.state <- Dead

let is_alive p = p.state <> Dead
let name p = p.name
let id p = p.id
let engine p = p.engine

(* Typed per-proc slots, backed by the shared het-map (no [Obj]). *)
type 'a key = 'a Sds_het.Hmap.key

let new_key () = Sds_het.Hmap.create_key ~name:"proc-slot" ()
let set_slot p key v = Sds_het.Hmap.set p.slots key v
let get_slot p key = Sds_het.Hmap.find p.slots key
