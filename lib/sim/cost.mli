(** Calibrated cost model: every constant is in nanoseconds, from the
    paper's Table 2 (micro-operation round trips) and Table 4 (per-op /
    per-packet / per-kbyte / per-connection breakdown).  Changing a field
    reshapes every experiment consistently. *)

type t = {
  (* ---- Table 2 micro-ops ---- *)
  cache_migration : int;  (** inter-core cache-line migration, 30 *)
  poll_empty_32 : int;  (** polling 32 empty queues, 40 *)
  syscall_pre_kpti : int;  (** system call before KPTI, 50 *)
  syscall_post_kpti : int;  (** system call after KPTI, 200 *)
  kpti : bool;  (** kernel page-table isolation enabled (paper testbed: yes) *)
  spinlock : int;  (** uncontended spinlock acquire+release, 100 *)
  spinlock_contended : int;  (** contended spinlock, 200 *)
  buffer_alloc_free : int;  (** allocate + free one packet buffer, 130 *)
  copy_page_4k : int;  (** copy one 4 KiB page, 400 *)
  yield_switch : int;  (** cooperative context switch (sched_yield), 520 *)
  map_page_4k : int;  (** remap one 4 KiB page, 780 *)
  nic_hairpin : int;  (** CPU->NIC->CPU hairpin within a host, 950 *)
  map_32_pages : int;  (** remap 32 pages (128 KiB) in one call, 1200 *)
  open_socket_fd : int;  (** kernel socket FD + inode allocation, 1600 *)
  rdma_write_rtt : int;  (** one-sided RDMA write round trip, 1600 *)
  rdma_send_recv_rtt : int;  (** two-sided RDMA send/recv round trip, 1600 *)
  process_wakeup : int;  (** wake a sleeping process, 2800-5500 -> 4000 *)
  (* ---- Table 4 components ---- *)
  c_shim : int;  (** C library shim / API dispatch, 10-15 *)
  sd_per_op : int;  (** SocksDirect total per socket op, 53 *)
  fd_lock_vma : int;  (** LibVMA per-op FD locking, 121 *)
  fd_lock_rsocket : int;  (** RSocket per-op FD locking, 138 *)
  fd_lock_linux : int;  (** Linux per-op FD locking, 160 *)
  linux_per_op : int;  (** Linux total per socket op, 413 *)
  sd_buffer_mgmt : int;  (** SD ring-buffer bookkeeping per message, 50 *)
  vma_buffer_mgmt : int;  (** LibVMA buffer mgmt per packet, 320 *)
  rsocket_buffer_mgmt : int;  (** RSocket buffer mgmt per packet, 370 *)
  linux_buffer_mgmt : int;  (** Linux buffer mgmt per packet, 430 *)
  vma_transport : int;  (** LibVMA user-space TCP/IP per packet, 260 *)
  linux_transport : int;  (** Linux TCP/IP per packet, 360 *)
  vma_packet_proc : int;  (** LibVMA packet processing, 200 *)
  linux_packet_proc : int;  (** Linux packet processing, 500 *)
  doorbell_dma_sd : int;  (** NIC doorbell+DMA with one-sided write, 600 *)
  doorbell_dma_2sided : int;  (** doorbell+DMA with two-sided verbs, 900 *)
  doorbell_dma_linux : int;  (** Linux NIC doorbell+DMA, 2100 *)
  nic_wire : int;  (** NIC processing + wire propagation one way, 200 *)
  linux_interrupt : int;  (** NIC interrupt handling per packet, 4000 *)
  wire_per_kb : int;  (** wire serialization per KiB at 100 Gbps, 80 *)
  copy_per_kb : int;  (** memory copy per KiB, 100 (= copy_page_4k / 4) *)
  sd_remap_per_kb : int;  (** zero-copy page remap per KiB, 13 *)
  (* ---- connection setup (Table 4 per-connection) ---- *)
  tcp_handshake : int;  (** initial TCP handshake over the wire, 16000 *)
  tcp_handshake_rsocket : int;  (** RSocket's slower handshake path, 47000 *)
  monitor_processing : int;  (** monitor per-connection control work, 180 *)
  rdma_qp_create : int;  (** RDMA QP creation via libibverbs, 30000 *)
  linux_conn_setup : int;  (** Linux intra-host connection setup, 14700 *)
  vma_conn_setup_intra : int;  (** LibVMA intra-host connection setup, 3800 *)
  rsocket_conn_setup_intra : int;  (** RSocket intra-host connection setup, 33000 *)
  (* ---- SocksDirect mechanism costs (§4, §5.2) ---- *)
  takeover : int;  (** token take-over through the monitor, 600 *)
  shm_msg_overhead : int;  (** per-message SHM ring cost incl. metadata, 45 *)
  batch_flush_gap : int;  (** in-flight counter check before RDMA flush, 20 *)
  (* ---- NIC model ---- *)
  nic_qp_cache_entries : int;  (** QPs whose state fits on-NIC, 1024 *)
  nic_qp_cache_miss : int;  (** penalty per DMA when QP state misses, 600 *)
  nic_max_inflight : int;  (** send-queue depth before batching kicks in, 64 *)
  mtu : int;  (** wire MTU in bytes, 4096 (RoCEv2 testbed) *)
}

val default : t

val syscall : t -> int
(** The effective syscall cost under the configured KPTI setting. *)

val copy_cost : t -> int -> int
(** Cost of copying [bytes] through one CPU. *)

val remap_cost : t -> int -> int
(** Cost of remapping [bytes] worth of pages, amortized over batch remaps. *)

val wire_cost : t -> int -> int
(** Wire serialization delay for [bytes]. *)
