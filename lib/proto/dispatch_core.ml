(* Monitor accept-dispatch policy (§4.5.2), shared between backends.

   New connections go to per-listener-thread backlogs round-robin, skipping
   full ones; an idle listener steals from the sibling with the longest
   backlog.  Both the simulated monitor and the real-domain dispatcher call
   these two decisions; the backlog containers stay backend-private and are
   observed through the [length]/[capacity] callbacks. *)

(* First worker at or after [rr] (mod [n]) whose backlog has room.  The
   caller advances its cursor to [picked + 1]. *)
let pick ~n ~rr ~length ~capacity =
  if n <= 0 then None
  else begin
    let found = ref (-1) in
    let k = ref 0 in
    while !found < 0 && !k < n do
      let i = (rr + !k) mod n in
      if length i < capacity i then found := i else incr k
    done;
    if !found < 0 then None else Some !found
  end

(* Steal victim for [self]: the sibling with the strictly longest non-empty
   backlog; earlier index wins ties. *)
let steal_victim ~n ~self ~length =
  let best = ref (-1) in
  let best_len = ref 0 in
  for i = 0 to n - 1 do
    if i <> self then begin
      let l = length i in
      if l > !best_len then begin
        best := i;
        best_len := l
      end
    end
  done;
  if !best < 0 then None else Some !best
