(** Monitor accept-dispatch policy (§4.5.2), shared between the sim and
    real-domain backends: round-robin delivery into per-worker backlogs
    (skipping full ones) plus longest-backlog steal-victim selection. *)

val pick : n:int -> rr:int -> length:(int -> int) -> capacity:(int -> int) -> int option
(** First worker at or after [rr] (mod [n]) with [length i < capacity i];
    [None] when every backlog is full (or [n = 0]).  The caller advances
    its round-robin cursor to [picked + 1]. *)

val steal_victim : n:int -> self:int -> length:(int -> int) -> int option
(** The sibling of [self] with the strictly longest non-empty backlog;
    earlier index wins ties; [None] when all are empty. *)
