(** Shared token-handoff state machine (§4.1, §4.2).

    The takeover protocol (request → drain → release-fence → resume) as
    pure transitions over a packed-int state: holder id, plus at most one
    pending requester id.  The simulator commits transitions with plain
    stores under its cooperative scheduler; the real-domain backend keeps
    the state in one [Atomic.t] and commits with CAS.  Both call these
    functions — the protocol is written down exactly once. *)

val id_bits : int

val nobody : int
(** Sentinel id: empty holder/requester slot. *)

val max_id : int
(** Largest valid participant id. *)

val pack : holder:int -> requester:int -> int
val holder : int -> int
val requester : int -> int

val free : int
(** No holder, no pending request. *)

val held : holder:int -> int
(** Held by [holder], no pending request. *)

val is_free : int -> bool
val is_held_by : int -> id:int -> bool
val has_request : int -> bool

type step =
  | Fast  (** caller already holds the token: nothing to write *)
  | Take of int  (** token is free: next state with the caller as holder *)
  | Post of int
      (** held by someone else, request slot empty: next state with the
          caller registered as the pending requester; wait for the grant *)
  | Wait  (** request slot occupied (possibly by us): wait and re-observe *)

val acquire : int -> id:int -> step
(** One acquire attempt from [id] over the observed state; the caller
    commits the returned state (CAS or plain store) and re-observes on a
    lost race. *)

val should_release : int -> id:int -> bool
(** Does holder [id] owe a handoff?  The only check on the data-path fast
    path: one load, one compare. *)

val grant : int -> int
(** The release fence: hand the token to the pending requester. *)

val release : int -> id:int -> int
(** Relinquish without a successor (close/fork/exit): grants when a request
    is pending, otherwise frees the token.  No-op if [id] is not holder. *)

val seize : int -> id:int -> int
(** Monitor-mediated reassignment (sim idle-holder grant, fork
    inheritance): force [id] as holder, preserving another thread's pending
    request. *)
