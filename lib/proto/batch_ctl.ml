(* §4.5 adaptive batch sizing, shared between backends.

   The budget bounds how many messages one vectored enqueue may carry.  The
   controller rests at [initial] (32 — one cache-resident burst, the sweet
   spot the fixed-32 row measures): it only shrinks when the ring actually
   rejects a whole attempt (credit exhaustion, i.e. observed ring-full) and
   only grows past [initial] under caller-declared pressure (the
   application handed us more than one budget's worth of messages, so
   larger batches amortize tail publications).  A partial acceptance means
   the ring absorbed what it had credits for — that is flow control working,
   not a reason to shrink future batches. *)

type t = { mutable budget : int; min_b : int; initial : int; max_b : int }

let create ?(min_b = 4) ?(initial = 32) ?(max_b = 256) () =
  if min_b < 1 || initial < min_b || max_b < initial then invalid_arg "Batch_ctl.create";
  { budget = initial; min_b; initial; max_b }

let budget t = t.budget
let reset t = t.budget <- t.initial

(* Outcome of one vectored-enqueue attempt: [sent] of [attempted] messages
   accepted; [pressure] when the caller still has a backlog beyond this
   batch. *)
let observe t ~sent ~attempted ~pressure =
  if attempted > 0 then begin
    if sent = 0 then begin
      (* Observed ring-full with zero progress: the receiver is behind;
         smaller batches shorten the stall when credits trickle back. *)
      if t.budget > t.min_b then t.budget <- t.budget / 2
    end
    else if sent = attempted then begin
      if t.budget < t.initial then
        (* Recover toward the resting point after a ring-full episode. *)
        t.budget <- min t.initial (2 * t.budget)
      else if pressure then begin
        if t.budget < t.max_b then t.budget <- 2 * t.budget
      end
      else
        (* Backlog gone: rest back at the sweet spot.  Growth past
           [initial] is a loan against declared pressure, not a new
           steady state. *)
        t.budget <- t.initial
    end
    (* Partial acceptance: keep the budget. *)
  end
