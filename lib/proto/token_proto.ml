(* Shared token-handoff state machine (§4.1, §4.2).

   One token per socket-queue direction; only the holder touches the queue.
   The whole protocol state fits one immediate int so the real-domain
   backend can keep it in a single [Atomic.t] and every transition is one
   CAS, while the simulator applies the same transitions to a plain field
   under its cooperative scheduler.  This module is the single place the
   takeover protocol is written down: both backends call these transitions,
   neither re-implements them.

   Layout: bits 0..id_bits-1 hold the holder id, the next id_bits hold the
   id of the (single) pending takeover requester; [nobody] marks an empty
   slot.  One pending requester is enough: the paper's monitor serializes
   takeover requests, and any further contender simply retries — matching
   the FIFO waiting list of §4.1 one head at a time. *)

let id_bits = 20
let id_mask = (1 lsl id_bits) - 1

(* All-ones id: "no holder" / "no requester". *)
let nobody = id_mask
let max_id = nobody - 1

let pack ~holder ~requester = (requester lsl id_bits) lor holder
let holder s = s land id_mask
let requester s = (s lsr id_bits) land id_mask

let free = pack ~holder:nobody ~requester:nobody
let held ~holder = pack ~holder ~requester:nobody

let is_free s = holder s = nobody
let is_held_by s ~id = holder s = id
let has_request s = requester s <> nobody

(* One acquire attempt from [id], as a pure decision over the observed
   state.  The caller commits the returned state with whatever write its
   backend uses (CAS on a domain, plain store in the sim) and retries from
   a fresh observation when the commit loses a race. *)
type step =
  | Fast  (** caller already holds the token: nothing to write *)
  | Take of int  (** token is free: next state with the caller as holder *)
  | Post of int
      (** held by someone else, request slot empty: next state with the
          caller registered as the pending requester; wait for the grant *)
  | Wait  (** request slot occupied (possibly by us): wait and re-observe *)

let acquire s ~id =
  if holder s = id then Fast
  else if is_free s then
    (* Clear our own stale request if we posted one earlier. *)
    Take (pack ~holder:id ~requester:(if requester s = id then nobody else requester s))
  else if not (has_request s) then Post (pack ~holder:(holder s) ~requester:id)
  else Wait

(* Does the holder owe a handoff?  Checked at every operation boundary —
   this is the only test on the data-path fast path. *)
let should_release s ~id = holder s = id && has_request s

(* The release fence: the holder, done draining its in-flight batch, hands
   the token to the pending requester in one write. *)
let grant s = pack ~holder:(requester s) ~requester:nobody

(* Relinquish without a specific successor (close, fork, exit): grant when
   a request is pending, otherwise leave the token free. *)
let release s ~id =
  if holder s <> id then s else if has_request s then grant s else free

(* Monitor-mediated reassignment (sim idle-holder grant, fork inheritance):
   force [id] to be the holder, preserving any other thread's pending
   request so it is still served at the next release. *)
let seize s ~id =
  pack ~holder:id ~requester:(if requester s = id then nobody else requester s)
