(** §4.5 adaptive batch sizing, shared between the sim and real-domain
    backends.

    The budget rests at [initial]; it halves only on an observed ring-full
    (a whole attempt rejected), recovers back toward [initial] on full
    acceptance, and grows past [initial] only while the caller declares
    pressure (a backlog beyond one batch).  Partial acceptance leaves it
    unchanged. *)

type t

val create : ?min_b:int -> ?initial:int -> ?max_b:int -> unit -> t
(** Defaults 4 / 32 / 256.  Raises [Invalid_argument] unless
    [1 <= min_b <= initial <= max_b]. *)

val budget : t -> int
val reset : t -> unit

val observe : t -> sent:int -> attempted:int -> pressure:bool -> unit
(** Report one vectored-enqueue attempt: [sent] of [attempted] accepted;
    [pressure] when a backlog remains beyond this batch. *)
