(** Bounded-interleaving checker for the tree's lock-free protocols.

    Model a protocol as a few threads over a tiny shared-memory op DSL;
    {!check} explores every interleaving of their shared-memory operations
    up to a preemption bound under a sequentially-consistent interpreter,
    reporting vector-clock data races, assertion failures, and lost
    wakeups (terminal states with a thread still parked on
    {!stmt.Block_until}).  Exploration is sleep-set DPOR-reduced by
    default; see [docs/static-analysis.md]. *)

type exp =
  | Int of int
  | Reg of string  (** thread-local register; reads as 0 before first write *)
  | Var of string  (** shared variable — only legal inside [Block_until] *)
  | Add of exp * exp

type rel = Eq | Ne | Lt | Ge
type cond = True | Rel of rel * exp * exp | And of cond * cond | Not of cond

type stmt =
  | Load of string * string  (** atomic load [var] into [reg] *)
  | Store of string * exp  (** atomic store *)
  | Plain_load of string * string
  | Plain_store of string * exp
  | Cas of string * exp * exp * string
      (** [Cas (var, expect, set, ok)]: [ok] gets 1 on success, 0 otherwise *)
  | Faa of string * exp * string
      (** [Faa (var, delta, old)]: atomic fetch-and-add; [old] gets the
          pre-increment value *)
  | Fence
  | Set of string * exp  (** local register assignment *)
  | If of cond * stmt list * stmt list  (** local; cond over registers *)
  | While of cond * stmt list  (** local; cond over registers *)
  | Block_until of cond
      (** condvar sleep: unschedulable until the condition (over [Var]s)
          holds; waking acquires the sync clocks of the variables read *)
  | Assert of cond * string  (** local; cond over registers *)

type thread = { name : string; body : stmt list }
type program = { globals : (string * int) list; threads : thread list }
type race = { race_var : string; thread_a : string; thread_b : string }

type outcome = {
  executions : int;
  races : race list;
  assert_failures : string list;
  lost_wakeups : int;
  blocked_threads : string list;
  truncated : bool;
}

exception Model_error of string
(** Ill-formed model: undeclared variable, [Var] outside [Block_until], or
    a thread-local loop that never reaches a shared op. *)

val check : ?bound:int -> ?max_executions:int -> ?dpor:bool -> program -> outcome
(** Exhaustive exploration up to [bound] preemptions (default 4; switching
    away from a thread that could have continued costs one).  Voluntary
    switches — the running thread blocked or finished — are free, so every
    schedule terminates.

    [dpor] (default [true]) enables sleep-set dynamic partial-order
    reduction plus digest-keyed state memoization: interleavings that only
    commute independent operations are pruned, and states already expanded
    with the same preemption budget and sleep set are not re-explored.
    Verdicts (races, assertion failures, lost wakeups) are unchanged —
    happens-before is an invariant of the Mazurkiewicz trace — only
    [executions] shrinks.  [~dpor:false] runs the naïve enumeration; the
    test suite uses it to pin verdict equivalence and the ≥10× reduction
    ratio. *)

val ok : outcome -> bool
(** No races, no assertion failures, no lost wakeups, not truncated. *)

val pp_outcome : Format.formatter -> outcome -> unit

val render_program : program -> string
(** Canonical plain-text form of a program — stable across runs; the golden
    format [sdmodel] diffs extracted models against. *)

val pp_program : Format.formatter -> program -> unit
