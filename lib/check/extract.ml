(* Sds_check.Extract — compile [@sds.model]-annotated regions of the *real*
   sources into Interleave programs.

   The point: the models `dune runtest` and CI explore are derived from the
   code they claim to describe, not maintained as a parallel copy.  A
   region is marked in place:

     let[@sds.model "park-notify/notifier"] notify t = ...       (binding)
     (begin ... end [@sds.model "ring-publication/producer"])    (expression)

   and [extract] parses the file with compiler-libs (the same
   no-build-context approach as [Lint]) and translates the region's
   shared-memory skeleton into {!Interleave.stmt}s under a per-model
   {!spec}:

   - [Atomic.get/set/compare_and_set/fetch_and_add/incr] on a record field
     listed in [spec.atomics] become the DSL's atomic ops on the mapped
     model variable; fields in [spec.atomic_elide] vanish (their op's
     arguments are still translated, for their effects).
   - plain field reads/writes must be classified: [spec.plains] maps them
     to model variables ([Plain_load]/[Plain_store]), [spec.plain_elide]
     drops them (metrics counters, caches whose races are out of model).
   - calls are resolved by the function name's last component:
     [spec.calls] rules first ({!Ignore}, {!Const}, {!Arg}, or a {!Custom}
     closure that may emit statements — how `ready ()` becomes a model
     load, or how a pure guard helper becomes a condition); otherwise a
     call to another [@sds.model]-annotated binding in the same file set
     is inlined with its arguments substituted (how the waiter's
     prepare/re-check/commit protocol steps compose into one thread body).
   - a [while] loop whose body translates to nothing (a condvar wait, a
     bounded spin) becomes [Block_until (¬cond)], with atomic loads in the
     condition read as model [Var]s — the DSL's parked-sleep form.
   - free identifiers resolve through [spec.ints] to small constants (the
     unit-step abstraction: one message, one credit); anything else is
     opaque, an error only if the model would need its value.

   The abstraction preserves exactly what {!Interleave.check} verifies —
   which locations are touched, in which order, with which atomicity — and
   abstracts data values to unit steps.  Everything unclassified is a hard
   {!Error}: an unmapped call, atomic field, or mutable-field access in an
   annotated region means the code changed out from under the model, and
   the failure is the drift tripwire (surfaced in CI by `sdmodel check`
   before the goldens are even compared). *)

module I = Interleave

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---- translated values ---- *)

type value =
  | Vexp of I.exp  (** a model expression *)
  | Vcond of I.cond  (** a boolean *)
  | Vopaque of string  (** unmodeled; the payload names it for errors *)

type ops = { emit : I.stmt -> unit; fresh : string -> string }

type rule =
  | Ignore  (** effect outside the model (metrics, locks, retry recursion) *)
  | Const of int  (** pure call abstracted to a constant *)
  | Arg of int  (** identity on the nth argument (unpack/pack helpers) *)
  | Custom of (ops -> value list -> value)
      (** full control: may emit statements, sees translated arguments *)

type spec = {
  atomics : (string * string) list;
  atomic_elide : string list;
  plains : (string * string) list;
  plain_elide : string list;
  ints : (string * int) list;
  calls : (string * rule) list;
}

(* ---- region scanning ---- *)

type region = {
  r_name : string;
  r_params : string list;
  r_fn : string option;  (** binding name when annotated on a [let] *)
  r_expr : Parsetree.expression;
  r_file : string;
}

let attr_model (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "sds.model" then None
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
          Some s
        | _ -> fail "[@sds.model] payload must be a string literal")
    attrs

let pat_name (p : Parsetree.pattern) =
  match p.ppat_desc with Ppat_var v -> v.txt | _ -> "_"

(* Strip the parameter spine of a binding's expression. *)
let rec strip_params acc (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) -> strip_params (pat_name pat :: acc) body
  | Pexp_newtype (_, body) -> strip_params acc body
  | Pexp_constraint (body, _) -> strip_params acc body
  | _ -> (List.rev acc, e)

let scan_source ~path ~source =
  let regions = ref [] in
  let default_it = Ast_iterator.default_iterator in
  let value_binding it (vb : Parsetree.value_binding) =
    (match attr_model vb.pvb_attributes with
    | Some name ->
      let params, body = strip_params [] vb.pvb_expr in
      regions :=
        { r_name = name; r_params = params; r_fn = Some (pat_name vb.pvb_pat);
          r_expr = body; r_file = path }
        :: !regions
    | None -> ());
    default_it.value_binding it vb
  in
  let expr it (e : Parsetree.expression) =
    (match attr_model e.pexp_attributes with
    | Some name ->
      regions :=
        { r_name = name; r_params = []; r_fn = None; r_expr = e; r_file = path }
        :: !regions
    | None -> ());
    default_it.expr it e
  in
  let it = { default_it with value_binding; expr } in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  (match Parse.implementation lexbuf with
  | str -> it.structure it str
  | exception _ -> fail "%s does not parse" path);
  List.rev !regions

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan ~root ~files =
  List.concat_map
    (fun path -> scan_source ~path ~source:(read_file (Filename.concat root path)))
    files

(* ---- translation ---- *)

type ctx = {
  spec : spec;
  regions : region list;
  mutable used : string list;  (* taken register names *)
  mutable active : string list;  (* inlining stack, for recursion *)
  mutable hint : string option;  (* pending let-binding name for the next register *)
}

let fresh ctx hint =
  let hint =
    match ctx.hint with
    | Some h ->
      ctx.hint <- None;
      h
    | None -> hint
  in
  let hint = if hint = "" || hint = "_" then "r" else hint in
  let rec pick i =
    let c = if i = 0 then hint else hint ^ string_of_int i in
    if List.mem c ctx.used then pick (i + 1) else c
  in
  let c = pick 0 in
  ctx.used <- c :: ctx.used;
  c

let last_of (lid : Longident.t) = Longident.last lid

let head_module (lid : Longident.t) =
  match Longident.flatten lid with
  | [ _ ] -> None
  | "Stdlib" :: m :: _ :: _ -> Some m
  | m :: _ :: _ -> Some m
  | [] -> None

let loc_of (e : Parsetree.expression) =
  let p = e.pexp_loc.loc_start in
  Printf.sprintf "line %d" p.Lexing.pos_lnum

(* Relational negation, kept shallow so goldens stay readable. *)
let neg = function
  | I.Not c -> c
  | I.Rel (Eq, a, b) -> I.Rel (Ne, a, b)
  | I.Rel (Ne, a, b) -> I.Rel (Eq, a, b)
  | I.Rel (Lt, a, b) -> I.Rel (Ge, a, b)
  | I.Rel (Ge, a, b) -> I.Rel (Lt, a, b)
  | c -> I.Not c

(* Constant-fold a condition ([Sds_fault.armed () = false] must kill its
   whole branch, or every region with a fault hook would model the hook). *)
let fold_cond = function
  | I.Rel (rel, Int x, Int y) ->
    let b = match rel with I.Eq -> x = y | Ne -> x <> y | Lt -> x < y | Ge -> x >= y in
    if b then I.True else I.Not I.True
  | c -> c

let as_exp ~at = function
  | Vexp e -> e
  | Vcond _ -> fail "%s: boolean used where the model needs a value" at
  | Vopaque what -> fail "%s: %s is outside the model but its value is needed" at what

let as_cond ~at = function
  | Vcond c -> fold_cond c
  | Vexp e -> fold_cond (I.Rel (Ne, e, Int 0))
  | Vopaque what -> fail "%s: %s is outside the model but used as a condition" at what

module SM = Map.Make (String)

(* The record field of [e] when [e] is [base.field], for atomic-op targets. *)
let field_of (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_field (_, lid) -> Some (last_of lid.txt)
  | _ -> None

let atomic_var ctx ~at target =
  match field_of target with
  | None -> fail "%s: atomic op on something that is not a record field" at
  | Some f -> (
    match List.assoc_opt f ctx.spec.atomics with
    | Some v -> Some v
    | None ->
      if List.mem f ctx.spec.atomic_elide then None
      else fail "%s: atomic field %s is not in the extraction map" at f)

let rec tr ctx env ~emit ~blocking (e : Parsetree.expression) : value =
  let at = loc_of e in
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> Vexp (Int (int_of_string s))
  | Pexp_constant _ -> Vopaque "a non-integer constant"
  | Pexp_construct ({ txt = Lident "true"; _ }, None) -> Vexp (Int 1)
  | Pexp_construct ({ txt = Lident "false"; _ }, None) -> Vexp (Int 0)
  | Pexp_construct _ -> Vopaque "a constructor"
  | Pexp_ident { txt = Lident x; _ } -> (
    match SM.find_opt x env with
    | Some v -> v
    | None -> (
      match List.assoc_opt x ctx.spec.ints with
      | Some n -> Vexp (Int n)
      | None -> Vopaque x))
  | Pexp_ident lid -> Vopaque (String.concat "." (Longident.flatten lid.txt))
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> tr ctx env ~emit ~blocking e
  | Pexp_sequence (a, b) ->
    ignore (tr ctx env ~emit ~blocking a);
    tr ctx env ~emit ~blocking b
  | Pexp_let (Nonrecursive, [ vb ], body) ->
    let bound = pat_name vb.pvb_pat in
    if bound <> "_" then ctx.hint <- Some bound;
    let v = tr ctx env ~emit ~blocking vb.pvb_expr in
    ctx.hint <- None;
    tr ctx (SM.add bound v env) ~emit ~blocking body
  | Pexp_let _ -> fail "%s: only simple non-recursive let is modeled" at
  | Pexp_field (_, lid) -> (
    let f = last_of lid.txt in
    match List.assoc_opt f ctx.spec.plains with
    | Some v ->
      let r = fresh ctx f in
      emit (I.Plain_load (v, r));
      Vexp (Reg r)
    | None ->
      if List.mem f ctx.spec.plain_elide then Vopaque ("field " ^ f)
      else fail "%s: field %s is not in the extraction map" at f)
  | Pexp_setfield (_, lid, rhs) -> (
    let f = last_of lid.txt in
    let v = tr ctx env ~emit ~blocking rhs in
    match List.assoc_opt f ctx.spec.plains with
    | Some var ->
      emit (I.Plain_store (var, as_exp ~at v));
      Vopaque "unit"
    | None ->
      if List.mem f ctx.spec.plain_elide then Vopaque "unit"
      else fail "%s: plain store to field %s is not in the extraction map" at f)
  | Pexp_ifthenelse (c, thn, els) ->
    tr_if ctx env ~emit ~blocking ~at c thn els;
    Vopaque "an if result"
  | Pexp_while (c, body) ->
    (* A loop whose body contributes no model operations is a wait:
       [while C do (condvar wait / spin) done] = [Block_until ¬C], with
       atomic loads in C read directly as model variables. *)
    let leaked = ref [] in
    ignore
      (tr ctx env ~emit:(fun s -> leaked := s :: !leaked) ~blocking body);
    if !leaked <> [] then
      fail "%s: while body has model effects — only wait loops are modeled" at;
    let cond = as_cond ~at (tr ctx env ~emit ~blocking:true c) in
    emit (I.Block_until (neg cond));
    Vopaque "unit"
  | Pexp_apply (f, args) -> tr_apply ctx env ~emit ~blocking ~at f args
  | _ -> fail "%s: unmodeled syntax in an [@sds.model] region" at

and tr_args ctx env ~emit ~blocking args =
  List.map (fun (_, a) -> tr ctx env ~emit ~blocking a) args

and tr_apply ctx env ~emit ~blocking ~at f args =
  let name =
    match f.Parsetree.pexp_desc with
    | Pexp_ident lid -> Some (head_module lid.txt, last_of lid.txt)
    | _ -> None
  in
  match (name, args) with
  (* -- Atomic.* special forms (resolved by module head, not the spec) -- *)
  | (Some (Some "Atomic", "get"), [ (_, target) ]) -> (
    match atomic_var ctx ~at target with
    | None -> Vopaque "an elided atomic"
    | Some v ->
      if blocking then Vexp (I.Var v)
      else begin
        let r = fresh ctx v in
        emit (I.Load (v, r));
        Vexp (Reg r)
      end)
  | (Some (Some "Atomic", "set"), [ (_, target); (_, x) ]) -> (
    let xv = tr ctx env ~emit ~blocking x in
    match atomic_var ctx ~at target with
    | None -> Vopaque "unit"
    | Some v ->
      emit (I.Store (v, as_exp ~at xv));
      Vopaque "unit")
  | (Some (Some "Atomic", "compare_and_set"), [ (_, target); (_, a); (_, b) ]) -> (
    let av = tr ctx env ~emit ~blocking a in
    let bv = tr ctx env ~emit ~blocking b in
    match atomic_var ctx ~at target with
    | None -> Vopaque "an elided atomic"
    | Some v ->
      let r = fresh ctx "ok" in
      emit (I.Cas (v, as_exp ~at av, as_exp ~at bv, r));
      Vexp (Reg r))
  | (Some (Some "Atomic", "fetch_and_add"), [ (_, target); (_, d) ]) -> (
    let dv = tr ctx env ~emit ~blocking d in
    match atomic_var ctx ~at target with
    | None -> Vopaque "an elided atomic"
    | Some v ->
      let r = fresh ctx "old" in
      emit (I.Faa (v, as_exp ~at dv, r));
      Vexp (Reg r))
  | (Some (Some "Atomic", ("incr" | "decr" as op)), [ (_, target) ]) -> (
    match atomic_var ctx ~at target with
    | None -> Vopaque "an elided atomic"
    | Some v ->
      let r = fresh ctx "old" in
      emit (I.Faa (v, Int (if op = "incr" then 1 else -1), r));
      Vexp (Reg r))
  | (Some (Some "Atomic", op), _) -> fail "%s: Atomic.%s is not modeled" at op
  (* -- pervasive operators -- *)
  | (Some (None, "ignore"), [ (_, a) ]) ->
    ignore (tr ctx env ~emit ~blocking a);
    Vopaque "unit"
  | (Some (None, "not"), [ (_, a) ]) ->
    Vcond (neg (as_cond ~at (tr ctx env ~emit ~blocking a)))
  | (Some (None, ("=" | "<>" | "<" | ">" | "<=" | ">=" as op)), [ (_, a); (_, b) ]) ->
    let av = tr ctx env ~emit ~blocking a in
    let bv = tr ctx env ~emit ~blocking b in
    let x = as_exp ~at av and y = as_exp ~at bv in
    Vcond
      (fold_cond
         (match op with
         | "=" -> I.Rel (Eq, x, y)
         | "<>" -> I.Rel (Ne, x, y)
         | "<" -> I.Rel (Lt, x, y)
         | ">=" -> I.Rel (Ge, x, y)
         | ">" -> I.Rel (Lt, y, x)
         | _ -> I.Rel (Ge, y, x)))
  | (Some (None, "&&"), [ (_, a); (_, b) ]) ->
    (* Only the effect-free form is a plain conjunction; short-circuit with
       effects is handled by [tr_if]. *)
    let av = as_cond ~at (tr ctx env ~emit ~blocking a) in
    let bv = as_cond ~at (tr ctx env ~emit ~blocking b) in
    Vcond (And (av, bv))
  | (Some (None, "+"), [ (_, a); (_, b) ]) -> (
    let av = tr ctx env ~emit ~blocking a in
    let bv = tr ctx env ~emit ~blocking b in
    match (av, bv) with
    | (Vexp (Int x), Vexp (Int y)) -> Vexp (Int (x + y))
    | (Vexp x, Vexp y) -> Vexp (Add (x, y))
    | (Vopaque w, _) | (_, Vopaque w) -> Vopaque w
    | _ -> fail "%s: boolean operand of +" at)
  | (Some (None, "-"), [ (_, a); (_, b) ]) -> (
    let av = tr ctx env ~emit ~blocking a in
    let bv = tr ctx env ~emit ~blocking b in
    match (av, bv) with
    | (Vexp (Int x), Vexp (Int y)) -> Vexp (Int (x - y))
    | (Vexp x, Vexp (Int y)) -> Vexp (Add (x, Int (-y)))
    | (Vopaque w, _) | (_, Vopaque w) -> Vopaque w
    | _ -> fail "%s: unmodeled subtraction" at)
  | (Some (None, "~-"), [ (_, a) ]) -> (
    match tr ctx env ~emit ~blocking a with
    | Vexp (Int x) -> Vexp (Int (-x))
    | Vopaque w -> Vopaque w
    | _ -> fail "%s: unmodeled negation" at)
  | (Some (_, fn), _) -> (
    (* -- spec rules, then fragment inlining -- *)
    match List.assoc_opt fn ctx.spec.calls with
    | Some Ignore ->
      ignore (tr_args ctx env ~emit ~blocking args);
      Vopaque ("a call to " ^ fn)
    | Some (Const n) ->
      ignore (tr_args ctx env ~emit ~blocking args);
      Vexp (Int n)
    | Some (Arg i) ->
      let vs = tr_args ctx env ~emit ~blocking args in
      if i < List.length vs then List.nth vs i
      else fail "%s: rule Arg %d but %s has %d arguments" at i fn (List.length vs)
    | Some (Custom k) ->
      k { emit; fresh = fresh ctx } (tr_args ctx env ~emit ~blocking args)
    | None -> (
      match List.find_opt (fun r -> r.r_fn = Some fn) ctx.regions with
      | Some callee ->
        if List.mem fn ctx.active then
          fail "%s: recursive call to %s — add a calls rule (Ignore for retry loops)" at fn;
        let vs = tr_args ctx env ~emit ~blocking args in
        let cenv =
          List.fold_left2
            (fun m p v -> SM.add p v m)
            SM.empty callee.r_params
            (if List.length vs = List.length callee.r_params then vs
             else fail "%s: %s inlined with %d arguments, expected %d" at fn
                    (List.length vs) (List.length callee.r_params))
        in
        ctx.active <- fn :: ctx.active;
        let v = tr ctx cenv ~emit ~blocking callee.r_expr in
        ctx.active <- List.tl ctx.active;
        v
      | None -> fail "%s: call to %s is not in the extraction map" at fn))
  | (None, _) -> fail "%s: unmodeled application form" at

and tr_block ctx env ~blocking (e : Parsetree.expression) =
  let buf = ref [] in
  ignore (tr ctx env ~emit:(fun s -> buf := s :: !buf) ~blocking e);
  List.rev !buf

and tr_if ctx env ~emit ~blocking ~at c thn els =
  match c.Parsetree.pexp_desc with
  (* Effectful short-circuit: [if a && b then T] nests, so b's model ops
     (a CAS election, say) stay guarded by a. *)
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Lident "&&"; _ }; _ }, [ (_, a); (_, b) ])
    when els = None ->
    let ca = as_cond ~at (tr ctx env ~emit ~blocking a) in
    let inner = ref [] in
    tr_if ctx env
      ~emit:(fun s -> inner := s :: !inner)
      ~blocking ~at b thn None;
    emit_if ~emit ca (List.rev !inner) []
  | _ -> (
    let cv = as_cond ~at (tr ctx env ~emit ~blocking c) in
    let branch eo = match eo with None -> [] | Some e -> tr_block ctx env ~blocking e in
    match cv with
    | I.True -> List.iter emit (branch (Some thn))
    | I.Not I.True -> List.iter emit (branch els)
    | I.Not cv -> emit_if ~emit cv (branch els) (branch (Some thn))
    | cv -> emit_if ~emit cv (branch (Some thn)) (branch els))

and emit_if ~emit c thn els =
  if thn <> [] || els <> [] then emit (I.If (c, thn, els))

(* ---- entry points ---- *)

let region_names ~root ~files =
  List.map (fun r -> r.r_name) (scan ~root ~files)

let extract ~root ~files ~spec name =
  let regions = scan ~root ~files in
  match List.find_opt (fun r -> r.r_name = name) regions with
  | None ->
    fail "no [@sds.model %S] region in [%s]" name (String.concat "; " files)
  | Some r ->
    let ctx = { spec; regions; used = []; active = []; hint = None } in
    let env =
      List.fold_left (fun m p -> SM.add p (Vopaque ("parameter " ^ p)) m) SM.empty r.r_params
    in
    (match r.r_fn with
    | Some fn -> ctx.active <- [ fn ]
    | None -> ());
    tr_block ctx env ~blocking:false r.r_expr
