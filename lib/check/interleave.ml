(* Sds_check.Interleave — bounded-interleaving checker for the tree's
   lock-free protocols.

   A model program is a handful of threads written in a tiny shared-memory
   op DSL (atomic/plain load and store, CAS, fetch-and-add, fence, a
   [Block_until] that stands for a condvar sleep).  The checker runs every
   interleaving of the threads' shared-memory operations, exhaustively up to
   a preemption bound, under a sequentially-consistent interpreter, and
   reports three kinds of defect:

   - data races, found with vector clocks: two accesses to the same
     variable from different threads, at least one a write, at least one
     plain (non-atomic), with neither ordered happens-before the other.
     Atomic ops build the happens-before edges (each atomic access joins
     with and releases into the variable's synchronization clock — sound
     for OCaml's SC atomics); plain accesses build none.  This is the
     standard DRF argument in executable form: the interpreter itself is
     sequentially consistent, so any behaviour that a weakly-ordered
     machine could add shows up here as a reported race rather than as a
     wrong value.

   - assertion failures: [Assert] statements over thread-local registers,
     for protocol post-conditions ("if I observed the published tail, the
     header and payload reads must be complete").

   - lost wakeups: a terminal state (no thread can take a step) in which
     some thread is still parked on a [Block_until].  This is exactly the
     lost-wakeup bug class of park/notify protocols — the sleeper missed
     the only notify that was ever coming.

   Scheduling points are shared-memory operations only; thread-local
   control flow ([Set]/[If]/[While]/[Assert] over registers) runs greedily
   between them, which keeps the schedule space small without hiding any
   behaviour (local ops commute with everything).  The preemption bound
   counts involuntary switches — scheduling away from a thread that could
   have continued — following the observation (CHESS) that real concurrency
   bugs almost always need only a few preemptions.

   Exploration runs with dynamic partial-order reduction by default
   ([~dpor:true]): sleep sets prune interleavings that only commute
   independent operations (one representative per Mazurkiewicz trace is
   enough — the happens-before relation, and with it every race, assertion
   value and parked-thread verdict, is an invariant of the trace), and a
   digest-keyed visited table prunes re-exploration of states already
   expanded with the same remaining preemption budget and sleep set.  The
   models this tree extracts from its real sources (see [Extract]) are an
   order of magnitude bigger than hand skeletons; the reduction is what
   keeps exhausting them tractable.  [~dpor:false] keeps the PR 4 naïve
   enumeration, used by the regression tests that pin the reduction's
   verdict-equivalence. *)

(* ---- the DSL ---- *)

type exp =
  | Int of int
  | Reg of string  (** thread-local register; reads as 0 before first write *)
  | Var of string  (** shared variable — only legal inside [Block_until] *)
  | Add of exp * exp

type rel = Eq | Ne | Lt | Ge

type cond =
  | True
  | Rel of rel * exp * exp
  | And of cond * cond
  | Not of cond

type stmt =
  | Load of string * string  (** atomic load [var] into [reg] *)
  | Store of string * exp  (** atomic store *)
  | Plain_load of string * string
  | Plain_store of string * exp
  | Cas of string * exp * exp * string
      (** [Cas (var, expect, set, ok)]: atomically set [var] to [set] if it
          equals [expect]; [ok] gets 1 on success, 0 otherwise *)
  | Faa of string * exp * string
      (** [Faa (var, delta, old)]: atomic fetch-and-add; [old] gets the
          pre-increment value ([Atomic.fetch_and_add] / [Atomic.incr]) *)
  | Fence  (** full memory fence (joins a global fence clock) *)
  | Set of string * exp  (** local: [reg := exp] *)
  | If of cond * stmt list * stmt list  (** local; cond over registers *)
  | While of cond * stmt list  (** local; cond over registers *)
  | Block_until of cond
      (** models a condvar sleep: the thread is not schedulable until the
          condition (over shared [Var]s) holds; waking acquires the
          synchronization clocks of the variables read *)
  | Assert of cond * string  (** local; cond over registers *)

type thread = { name : string; body : stmt list }
type program = { globals : (string * int) list; threads : thread list }

type race = { race_var : string; thread_a : string; thread_b : string }

type outcome = {
  executions : int;  (** distinct complete interleavings explored *)
  races : race list;
  assert_failures : string list;
  lost_wakeups : int;  (** terminal states with a thread still parked *)
  blocked_threads : string list;  (** names seen parked in such states *)
  truncated : bool;  (** hit the execution cap before exhausting *)
}

let ok o =
  o.races = [] && o.assert_failures = [] && o.lost_wakeups = 0 && not o.truncated

(* ---- vector clocks ---- *)

let vc_join a b = Array.mapi (fun i x -> max x b.(i)) a

let vc_tick vc tid =
  let v = Array.copy vc in
  v.(tid) <- v.(tid) + 1;
  v

(* [a] (an access snapshot by [a_tid]) happens-before a thread whose clock
   is [vc] iff the thread has seen [a_tid]'s tick. *)
let hb_before a_vc a_tid vc = a_vc.(a_tid) <= vc.(a_tid)

(* ---- machine state (persistent; branches share substructure) ---- *)

module SM = Map.Make (String)

type access = { a_tid : int; a_vc : int array; a_write : bool; a_plain : bool }
type varst = { value : int; sync : int array; log : access list }
type tstate = { frames : stmt list list; regs : int SM.t; vc : int array }

type state = {
  vars : varst SM.t;
  threads : tstate array;
  fence : int array;
  last : int;
  preemptions : int;
}

exception Model_error of string

let reg_get regs r = match SM.find_opt r regs with Some v -> v | None -> 0

let rec eval_exp ~regs ~var e =
  match e with
  | Int n -> n
  | Reg r -> reg_get regs r
  | Add (a, b) -> eval_exp ~regs ~var a + eval_exp ~regs ~var b
  | Var v -> var v

let rec eval_cond ~regs ~var c =
  match c with
  | True -> true
  | Rel (rel, a, b) ->
    let x = eval_exp ~regs ~var a and y = eval_exp ~regs ~var b in
    (match rel with Eq -> x = y | Ne -> x <> y | Lt -> x < y | Ge -> x >= y)
  | And (a, b) -> eval_cond ~regs ~var a && eval_cond ~regs ~var b
  | Not a -> not (eval_cond ~regs ~var a)

let no_var v = raise (Model_error ("Var " ^ v ^ " used outside Block_until"))

let rec cond_vars acc c =
  match c with
  | True -> acc
  | Rel (_, a, b) -> exp_vars (exp_vars acc a) b
  | And (a, b) -> cond_vars (cond_vars acc a) b
  | Not a -> cond_vars acc a

and exp_vars acc e =
  match e with
  | Int _ | Reg _ -> acc
  | Var v -> if List.mem v acc then acc else v :: acc
  | Add (a, b) -> exp_vars (exp_vars acc a) b

(* ---- thread stepping ---- *)

(* Pop empty blocks so the head of [frames] is the next statement. *)
let rec settle frames =
  match frames with
  | [] :: rest -> settle rest
  | _ -> frames

let finished t = settle t.frames = []

let head t = match settle t.frames with (s :: _) :: _ -> Some s | _ -> None

let is_shared = function
  | Load _ | Store _ | Plain_load _ | Plain_store _ | Cas _ | Faa _ | Fence
  | Block_until _ ->
    true
  | Set _ | If _ | While _ | Assert _ -> false

(* Run thread-local statements greedily until the thread rests at a shared
   op or finishes.  [on_assert] receives failed assertion messages. *)
let normalize ~on_assert t =
  let fuel = ref 100_000 in
  let rec go t =
    decr fuel;
    if !fuel <= 0 then raise (Model_error "local statement loop does not terminate");
    match settle t.frames with
    | [] -> { t with frames = [] }
    | (s :: rest) :: outer when not (is_shared s) ->
      let t = { t with frames = rest :: outer } in
      (match s with
      | Set (r, e) ->
        go { t with regs = SM.add r (eval_exp ~regs:t.regs ~var:no_var e) t.regs }
      | If (c, a, b) ->
        let branch = if eval_cond ~regs:t.regs ~var:no_var c then a else b in
        go { t with frames = branch :: rest :: outer }
      | While (c, body) ->
        if eval_cond ~regs:t.regs ~var:no_var c then
          go { t with frames = body :: (s :: rest) :: outer }
        else go t
      | Assert (c, msg) ->
        if not (eval_cond ~regs:t.regs ~var:no_var c) then on_assert msg;
        go t
      | _ -> assert false)
    | frames -> { t with frames }
  in
  go t

let var_value st v =
  match SM.find_opt v st.vars with
  | Some x -> x.value
  | None -> raise (Model_error ("undeclared variable " ^ v))

let enabled st tid =
  let t = st.threads.(tid) in
  (not (finished t))
  &&
  match head t with
  | Some (Block_until c) -> eval_cond ~regs:t.regs ~var:(var_value st) c
  | _ -> true

(* Execute the shared op at [tid]'s head; returns the new state.
   [on_race] is called for every unordered conflicting access pair. *)
let exec_shared ~on_race ~on_assert st tid =
  let t = st.threads.(tid) in
  let s, rest, outer =
    match settle t.frames with
    | (s :: rest) :: outer -> (s, rest, outer)
    | _ -> assert false
  in
  let vget v =
    match SM.find_opt v st.vars with
    | Some x -> x
    | None -> raise (Model_error ("undeclared variable " ^ v))
  in
  (* Race check of this access against the variable's log, then record it.
     [vc] is the access's own clock (acquire-joined and ticked), so a prior
     access is ordered before this one iff this thread has seen its tick.

     The log is FastTrack-compressed: at most one entry per
     (thread, write?, plain?).  Keeping only the most recent access of each
     kind is sound because a thread's ticks are totally ordered — any
     observer that has seen the latest tick has seen every earlier one, so
     an older access can only be unordered w.r.t. a future conflicting
     access if the retained newer one is too.  Compression is also what
     bounds the state for the DPOR visited-table digest. *)
  let record v (vs : varst) ~vc ~write ~plain =
    List.iter
      (fun a ->
        if
          a.a_tid <> tid
          && (a.a_write || write)
          && (a.a_plain || plain)
          && not (hb_before a.a_vc a.a_tid vc)
        then on_race v a.a_tid tid)
      vs.log;
    let keep a = a.a_tid <> tid || a.a_write <> write || a.a_plain <> plain in
    { vs with
      log =
        { a_tid = tid; a_vc = vc; a_write = write; a_plain = plain }
        :: List.filter keep vs.log
    }
  in
  let finish ?value ?sync ?regs v vs vc =
    let vs = { vs with value = Option.value value ~default:vs.value } in
    let vs = match sync with Some s -> { vs with sync = s } | None -> vs in
    let threads = Array.copy st.threads in
    threads.(tid) <-
      { frames = rest :: outer; regs = Option.value regs ~default:t.regs; vc };
    { st with vars = SM.add v vs st.vars; threads; last = tid }
  in
  match s with
  | Load (v, r) ->
    let vs = vget v in
    let vc = vc_tick (vc_join t.vc vs.sync) tid in
    let vs = record v vs ~vc ~write:false ~plain:false in
    finish ~sync:(vc_join vs.sync vc) ~regs:(SM.add r vs.value t.regs) v vs vc
  | Store (v, e) ->
    let x = eval_exp ~regs:t.regs ~var:no_var e in
    let vs = vget v in
    let vc = vc_tick (vc_join t.vc vs.sync) tid in
    let vs = record v vs ~vc ~write:true ~plain:false in
    finish ~value:x ~sync:(vc_join vs.sync vc) v vs vc
  | Cas (v, expect, set, r) ->
    let vs = vget v in
    let vc = vc_tick (vc_join t.vc vs.sync) tid in
    let hit = vs.value = eval_exp ~regs:t.regs ~var:no_var expect in
    let vs = record v vs ~vc ~write:hit ~plain:false in
    let value = if hit then eval_exp ~regs:t.regs ~var:no_var set else vs.value in
    finish ~value ~sync:(vc_join vs.sync vc)
      ~regs:(SM.add r (if hit then 1 else 0) t.regs)
      v vs vc
  | Faa (v, delta, r) ->
    let vs = vget v in
    let vc = vc_tick (vc_join t.vc vs.sync) tid in
    let vs = record v vs ~vc ~write:true ~plain:false in
    let old = vs.value in
    finish
      ~value:(old + eval_exp ~regs:t.regs ~var:no_var delta)
      ~sync:(vc_join vs.sync vc)
      ~regs:(SM.add r old t.regs) v vs vc
  | Plain_load (v, r) ->
    let vs = vget v in
    let vc = vc_tick t.vc tid in
    let vs = record v vs ~vc ~write:false ~plain:true in
    finish ~regs:(SM.add r vs.value t.regs) v vs vc
  | Plain_store (v, e) ->
    let x = eval_exp ~regs:t.regs ~var:no_var e in
    let vs = vget v in
    let vc = vc_tick t.vc tid in
    let vs = record v vs ~vc ~write:true ~plain:true in
    finish ~value:x v vs vc
  | Fence ->
    let vc = vc_tick (vc_join t.vc st.fence) tid in
    let threads = Array.copy st.threads in
    threads.(tid) <- { t with frames = rest :: outer; vc };
    { st with fence = vc_join st.fence vc; threads; last = tid }
  | Block_until c ->
    (* Enabledness was already checked; waking acquires the sync clocks of
       the variables the condition read (the condvar/mutex edge). *)
    let vc =
      List.fold_left (fun vc v -> vc_join vc (vget v).sync) t.vc (cond_vars [] c)
    in
    let threads = Array.copy st.threads in
    threads.(tid) <- { t with frames = rest :: outer; vc = vc_tick vc tid };
    { st with threads; last = tid }
  | Set _ | If _ | While _ | Assert _ ->
    ignore on_assert;
    assert false

(* ---- dynamic partial-order reduction ----

   Operation signatures drive the independence relation: two operations
   commute (executing them in either order reaches the same state, and
   their happens-before effects on every future detection are identical)
   unless they touch a common variable with at least one write, or are both
   fences (fences meet in the global fence clock).  [Block_until] reads the
   variables of its condition — a write to any of them can enable or
   re-order the sleeper, so it conflicts like a read. *)

type opsig = { o_fence : bool; o_vars : string list; o_write : bool }

let opsig_of st tid =
  match head st.threads.(tid) with
  | Some (Load (v, _)) | Some (Plain_load (v, _)) ->
    { o_fence = false; o_vars = [ v ]; o_write = false }
  | Some (Store (v, _)) | Some (Plain_store (v, _)) | Some (Cas (v, _, _, _))
  | Some (Faa (v, _, _)) ->
    { o_fence = false; o_vars = [ v ]; o_write = true }
  | Some (Block_until c) -> { o_fence = false; o_vars = cond_vars [] c; o_write = false }
  | Some Fence -> { o_fence = true; o_vars = []; o_write = false }
  | _ ->
    (* Finished or local-op head (impossible after normalize): never
       consulted, but be conservative. *)
    { o_fence = true; o_vars = []; o_write = true }

let independent a b =
  (not (a.o_fence && b.o_fence))
  && ((not (a.o_write || b.o_write))
     || not (List.exists (fun v -> List.mem v b.o_vars) a.o_vars))

(* Visited-table key: a digest of everything that can influence the rest of
   the exploration from this state.  Access clocks are projected to the
   owner component — [hb_before] reads nothing else — so two histories that
   differ only in how much of *other* threads' clocks an access absorbed
   hash alike.  The remaining preemption budget and the sleep set are part
   of the key: a state is only pruned when it was already expanded with the
   same budget and the same pruning commitments. *)
let state_key st sleep =
  let cmp (t1, k1, w1, p1) (t2, k2, w2, p2) =
    let c = Int.compare t1 t2 in
    if c <> 0 then c
    else
      let c = Int.compare k1 k2 in
      if c <> 0 then c
      else
        let c = Bool.compare w1 w2 in
        if c <> 0 then c else Bool.compare p1 p2
  in
  let vars =
    SM.fold
      (fun v vs acc ->
        let log =
          List.sort cmp
            (List.map (fun a -> (a.a_tid, a.a_vc.(a.a_tid), a.a_write, a.a_plain)) vs.log)
        in
        (v, vs.value, vs.sync, log) :: acc)
      st.vars []
  in
  let threads =
    Array.map (fun t -> (t.frames, SM.bindings t.regs, t.vc)) st.threads
  in
  Digest.string
    (Marshal.to_string (vars, threads, st.fence, st.last, st.preemptions, sleep) [])

(* ---- exhaustive preemption-bounded exploration ---- *)

let check ?(bound = 4) ?(max_executions = 500_000) ?(dpor = true) (p : program) =
  let n = List.length p.threads in
  if n = 0 then invalid_arg "Interleave.check: no threads";
  if n > 16 then invalid_arg "Interleave.check: too many threads";
  let zero () = Array.make n 0 in
  let executions = ref 0 in
  let truncated = ref false in
  let races : race list ref = ref [] in
  let asserts : string list ref = ref [] in
  let lost = ref 0 in
  let blocked : string list ref = ref [] in
  let names = Array.of_list (List.map (fun t -> t.name) p.threads) in
  let add_once xs x = if not (List.mem x !xs) then xs := x :: !xs in
  let on_race v a b =
    let a, b = (min a b, max a b) in
    add_once races { race_var = v; thread_a = names.(a); thread_b = names.(b) }
  in
  let on_assert msg = add_once asserts msg in
  let init_vars =
    List.fold_left
      (fun m (v, x) -> SM.add v { value = x; sync = zero (); log = [] } m)
      SM.empty p.globals
  in
  let init_threads =
    Array.of_list
      (List.map
         (fun t -> normalize ~on_assert { frames = [ t.body ]; regs = SM.empty; vc = zero () })
         p.threads)
  in
  let init =
    { vars = init_vars; threads = init_threads; fence = zero (); last = -1; preemptions = 0 }
  in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let terminal st =
    incr executions;
    let parked = ref false in
    Array.iteri
      (fun tid t ->
        if not (finished t) then begin
          parked := true;
          add_once blocked names.(tid)
        end)
      st.threads;
    if !parked then incr lost
  in
  let rec explore st sleep =
    if !executions >= max_executions then truncated := true
    else begin
      let en = ref [] in
      for tid = n - 1 downto 0 do
        if enabled st tid then en := tid :: !en
      done;
      match !en with
      | [] -> terminal st
      | en ->
        let cands = List.filter (fun tid -> sleep land (1 lsl tid) = 0) en in
        (* Every enabled thread asleep: every continuation from here only
           commutes operations already explored from an earlier sibling —
           this whole branch is redundant, not a terminal state. *)
        if cands = [] then ()
        else begin
          let skip =
            dpor
            &&
            let key = state_key st sleep in
            if Hashtbl.mem visited key then true
            else begin
              Hashtbl.add visited key ();
              false
            end
          in
          if not skip then begin
            (* Continuing the running thread is free; preempting away from a
               runnable, non-sleeping one costs a unit of the bound.  A
               sleeping [last] was continued from a sibling branch — forcing
               its alternatives to pay a preemption here would hide
               schedules the unreduced search covers for free. *)
            let free_switch =
              st.last < 0
              || (not (List.mem st.last en))
              || sleep land (1 lsl st.last) <> 0
            in
            let order =
              if (not free_switch) && List.mem st.last cands then
                st.last :: List.filter (fun t -> t <> st.last) cands
              else cands
            in
            let slept = ref sleep in
            List.iter
              (fun tid ->
                let cost = if free_switch || tid = st.last then 0 else 1 in
                if cost = 0 || st.preemptions < bound then begin
                  let child_sleep =
                    if not dpor then 0
                    else begin
                      let o = opsig_of st tid in
                      let keep = ref 0 in
                      for t = 0 to n - 1 do
                        if !slept land (1 lsl t) <> 0 && independent (opsig_of st t) o
                        then keep := !keep lor (1 lsl t)
                      done;
                      !keep
                    end
                  in
                  let st' = exec_shared ~on_race ~on_assert st tid in
                  let threads = Array.copy st'.threads in
                  threads.(tid) <- normalize ~on_assert threads.(tid);
                  explore
                    { st' with threads; preemptions = st.preemptions + cost }
                    child_sleep;
                  if dpor then slept := !slept lor (1 lsl tid)
                end)
              order
          end
        end
    end
  in
  explore init 0;
  {
    executions = !executions;
    races = List.rev !races;
    assert_failures = List.rev !asserts;
    lost_wakeups = !lost;
    blocked_threads = List.rev !blocked;
    truncated = !truncated;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>executions: %d%s@," o.executions (if o.truncated then " (truncated)" else "");
  List.iter
    (fun r -> Format.fprintf ppf "race on %s between %s and %s@," r.race_var r.thread_a r.thread_b)
    o.races;
  List.iter (fun m -> Format.fprintf ppf "assertion failed: %s@," m) o.assert_failures;
  if o.lost_wakeups > 0 then
    Format.fprintf ppf "lost wakeup: %d terminal states leave [%s] parked@," o.lost_wakeups
      (String.concat "; " o.blocked_threads);
  Format.fprintf ppf "@]"

(* ---- canonical rendering (the golden form [sdmodel] diffs against) ---- *)

let rec render_exp e =
  match e with
  | Int n -> string_of_int n
  | Reg r -> r
  | Var v -> "@" ^ v
  | Add (a, b) -> "(" ^ render_exp a ^ " + " ^ render_exp b ^ ")"

let rec render_cond c =
  match c with
  | True -> "true"
  | Rel (rel, a, b) ->
    let op = match rel with Eq -> "=" | Ne -> "!=" | Lt -> "<" | Ge -> ">=" in
    render_exp a ^ " " ^ op ^ " " ^ render_exp b
  | And (a, b) -> "(" ^ render_cond a ^ " && " ^ render_cond b ^ ")"
  | Not a -> "!(" ^ render_cond a ^ ")"

let render_stmts buf stmts =
  let pad k = String.make (2 * k) ' ' in
  let rec go depth stmts =
    List.iter
      (fun s ->
        Buffer.add_string buf (pad depth);
        match s with
        | Load (v, r) -> Buffer.add_string buf ("load " ^ v ^ " -> " ^ r ^ "\n")
        | Store (v, e) -> Buffer.add_string buf ("store " ^ v ^ " <- " ^ render_exp e ^ "\n")
        | Plain_load (v, r) ->
          Buffer.add_string buf ("load.plain " ^ v ^ " -> " ^ r ^ "\n")
        | Plain_store (v, e) ->
          Buffer.add_string buf ("store.plain " ^ v ^ " <- " ^ render_exp e ^ "\n")
        | Cas (v, a, b, r) ->
          Buffer.add_string buf
            ("cas " ^ v ^ " " ^ render_exp a ^ " -> " ^ render_exp b ^ " ? " ^ r ^ "\n")
        | Faa (v, d, r) ->
          Buffer.add_string buf ("faa " ^ v ^ " += " ^ render_exp d ^ " -> " ^ r ^ "\n")
        | Fence -> Buffer.add_string buf "fence\n"
        | Set (r, e) -> Buffer.add_string buf ("set " ^ r ^ " <- " ^ render_exp e ^ "\n")
        | If (c, a, []) ->
          Buffer.add_string buf ("if " ^ render_cond c ^ " {\n");
          go (depth + 1) a;
          Buffer.add_string buf (pad depth ^ "}\n")
        | If (c, a, b) ->
          Buffer.add_string buf ("if " ^ render_cond c ^ " {\n");
          go (depth + 1) a;
          Buffer.add_string buf (pad depth ^ "} else {\n");
          go (depth + 1) b;
          Buffer.add_string buf (pad depth ^ "}\n")
        | While (c, body) ->
          Buffer.add_string buf ("while " ^ render_cond c ^ " {\n");
          go (depth + 1) body;
          Buffer.add_string buf (pad depth ^ "}\n")
        | Block_until c -> Buffer.add_string buf ("block_until " ^ render_cond c ^ "\n")
        | Assert (c, msg) ->
          Buffer.add_string buf ("assert " ^ render_cond c ^ " " ^ Printf.sprintf "%S" msg ^ "\n"))
      stmts
  in
  go 1 stmts

let render_program (p : program) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "globals:";
  List.iter (fun (v, x) -> Buffer.add_string buf (Printf.sprintf " %s=%d" v x)) p.globals;
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      Buffer.add_string buf ("thread " ^ t.name ^ ":\n");
      render_stmts buf t.body)
    p.threads;
  Buffer.contents buf

let pp_program ppf p = Format.pp_print_string ppf (render_program p)
