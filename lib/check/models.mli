(** The tree's lock-free protocols as {!Interleave} model programs.

    The protocol threads are {!Extract}ed from the [@sds.model]-annotated
    real sources under [root] (the repository root); only init states,
    observer/assertion glue, the cross-layer desc-handoff model, and the
    seeded-mutation transforms live here.  Defaults must check clean; each
    mutation must be caught — both pinned by tests.  The extracted
    programs are additionally pinned to goldens under [test/golden/] by
    [sdmodel check]. *)

val all : root:string -> (string * Interleave.program) list
(** Correct protocols, by name — each must satisfy [Interleave.ok].
    Raises {!Extract.Error} if an annotated region has drifted out of the
    extraction maps. *)

val extracted : root:string -> (string * Interleave.program) list
(** The golden-gated subset of {!all}: programs whose protocol threads are
    extracted from annotated sources (everything but [desc-handoff]). *)

val mutations : root:string -> (string * Interleave.program) list
(** Seeded-bug variants, by name — each must be caught:

    - ["ring-publication-unfenced"]: the tail published with a plain store
      (expect races on [hdr]/[data]).
    - ["ring-publication-header-late"]: header written after the tail
      publication (expect the unwritten-header assertion).
    - ["park-notify-no-recheck"]: the post-prepare re-check deleted
      (expect a lost wakeup).
    - ["desc-handoff-release-early"]: reference dropped before the payload
      read (expect a race on the page).
    - ["token-handoff-unfenced"]: the token word turned non-atomic in the
      grant region (expect a race on the token-guarded state).
    - ["token-handoff-early-grant"]: grant before the in-flight operation
      drained (expect the stale-read assertion).
    - ["token-crash-unfenced-seize"]: the seize committed without the CAS
      fence (expect a race with the dead holder's last write). *)
