(** The tree's lock-free protocols as {!Interleave} model programs.

    Default knobs are the shipped protocols and must check clean; each
    mutation knob reproduces a real bug class and must be caught. *)

val ring_publication :
  ?publish_atomic:bool -> ?header_after_publish:bool -> unit -> Interleave.program
(** §4.2 payload-then-header-then-tail publication.
    [~publish_atomic:false] drops the SC tail publication (expect data
    races on [hdr]/[data]); [~header_after_publish:true] publishes before
    the header write (expect an assertion failure). *)

val park_notify : ?recheck:bool -> unit -> Interleave.program
(** §4.4 eventcount park/notify.  [~recheck:false] drops the parked-flag
    era re-check of the readiness condition (expect a lost wakeup). *)

val desc_handoff : ?release_before_read:bool -> unit -> Interleave.program
(** §4.6 page-descriptor ownership handoff (fill, publish, read, release,
    recycle).  [~release_before_read:true] drops the reference before the
    payload read (expect a race on the page / a use-after-release
    assertion). *)

val token_handoff :
  ?fence_atomic:bool -> ?drain_before_grant:bool -> unit -> Interleave.program
(** §4.2 token takeover (request → drain → release-fence → resume).
    [~fence_atomic:false] publishes the grant with a plain store (expect a
    race on the token-guarded state); [~drain_before_grant:false] grants
    with the in-flight operation still open (expect the stale-read
    assertion). *)

val token_crash_recovery : ?seize_fence:bool -> unit -> Interleave.program
(** §4.3 crash takeover: a holder dies between draining and granting with
    a requester posted; the reaper seizes the token for the survivor.
    [~seize_fence:false] commits the seize with a plain store instead of
    the CAS (expect a race between the dead holder's last write and the
    survivor's resume). *)

val all : (string * Interleave.program) list
(** Correct protocols, by name — each must satisfy [Interleave.ok]. *)

val mutations : (string * Interleave.program) list
(** Seeded-bug variants, by name — each must be caught. *)
