(* Sds_check.Lint — repo-specific concurrency/correctness lint over the
   compiler-libs Parsetree.

   The data path of this tree is a set of handwritten lock-free protocols
   (the ring's payload-then-header-then-tail publication, the waiter's
   eventcount park/notify).  Their correctness arguments are *local*: they
   hold only while every [Atomic] access lives in the audited modules and
   the hot paths stay allocation-free.  These rules machine-check those
   locality assumptions:

   - [atomic-confined]   [Atomic.*] (and [open Atomic] / module aliases)
                         may appear only in the allowlisted modules whose
                         protocols the interleaving checker models.
   - [poly-compare]      bare polymorphic [compare] anywhere under [lib/],
                         and [=]/[<>] applied to syntactically structured
                         operands (tuples, records, strings, non-constant
                         constructors) in the data-path libraries.
   - [obj-unsafe]        any [Obj.*] outside the one designated module
                         ([lib/het/hmap.ml], the shared het-map).
   - [mli-parity]        every [.ml] under [lib/] must have a sibling
                         [.mli] (interfaces are where invariants live).
   - [hot-alloc]         inside functions annotated [@sds.hot]: no
                         closures ([fun]/[function]/[lazy]), no
                         [Printf]/[Format], no [List] combinators, no
                         [^]/[@] concatenation.  Subtrees marked
                         [@sds.cold] (rare slow paths) are exempt.
   - [bigarray-unsafe]   [Bigarray.*.unsafe_*] accesses are confined to
                         the allowlisted data-path modules (the page pool
                         and the ring), and there only inside [@sds.hot]
                         functions — i.e. on paths whose bounds checks
                         have been hoisted and audited.
   - [metric-registration] [Metrics.counter/gauge/histogram/probe] calls
                         must sit at module top level (registration takes
                         the registry lock and allocates; doing it inside a
                         function — worst of all an [@sds.hot] one — puts
                         that on a per-call path), and a literal metric
                         name must follow the [layer.noun] convention:
                         lowercase dot-separated segments, e.g.
                         ["ring.enqueues"], ["span.wake"].
   - [fault-confined]    [Sds_fault.inject] call sites may appear only in
                         the allowlisted crash-recovery modules, and inside
                         [@sds.hot] functions only under the zero-cost
                         [if Sds_fault.armed () then ...] gate — chaos
                         hooks must never grow into the general tree or
                         put an unconditional call on a fast path.
   - [fence-discipline]  in the protocol libraries, a plain [<-] write to
                         a field name the model extraction maps treat as
                         synchronizing state ([tail], [state], [seq],
                         [credits]) is flagged: those words carry the
                         fences the interleaving checker verified, and a
                         mutable twin (or a demotion from [Atomic.t])
                         silently voids that proof.  Single-domain
                         structures that use the names privately are
                         file-allowlisted ([lib/ring/alloc_queue.ml]).
   - [parse-error]       a file that does not parse is itself a violation
                         (surfaced, never a crash of the pass).

   Any rule can be locally silenced with [@sds.allow "rule-slug"] on an
   expression; the suppression covers the subtree.  The pass is purely
   syntactic — it parses each file with compiler-libs and walks the
   Parsetree, so it needs no build context and runs in milliseconds over
   the whole tree. *)

type violation = {
  rule : string;
  file : string;  (** path as given (repo-relative when driven by [lint_tree]) *)
  line : int;
  col : int;
  message : string;
}

type config = {
  atomic_allow : string list;  (** files allowed to touch [Atomic] *)
  obj_allow : string list;  (** files allowed to touch [Obj] *)
  bigarray_allow : string list;  (** files allowed unsafe Bigarray access (hot only) *)
  fault_allow : string list;  (** files allowed to call [Sds_fault.inject] *)
  atomic_dirs : string list;  (** scopes of the atomic-confined rule *)
  obj_dirs : string list;
  bigarray_dirs : string list;  (** scopes of the bigarray-unsafe rule *)
  fault_dirs : string list;  (** scopes of the fault-confined rule *)
  compare_dirs : string list;  (** bare [compare] flagged here *)
  data_path_dirs : string list;  (** structural [=]/[<>] flagged here *)
  mli_dirs : string list;  (** [.mli] parity enforced here *)
  metric_dirs : string list;  (** scopes of the metric-registration rule *)
  metric_allow : string list;  (** files exempt from it (the registry itself) *)
  fence_dirs : string list;  (** scopes of the fence-discipline rule *)
  fence_fields : string list;  (** field names owned by the extraction maps *)
  fence_allow : string list;  (** single-domain users of those names *)
  scan_dirs : string list;  (** roots walked by [lint_tree] *)
  exclude_dirs : string list;  (** pruned subtrees (fixtures, _build) *)
}

let default =
  {
    atomic_allow =
      [
        "lib/ring/spsc_ring.ml";
        "lib/notify/waiter.ml";
        "lib/vm/pagepool.ml";
        (* The real-domain backend: the token word, the dispatcher's
           backlog mirrors, the liveness epochs, and the connections'
           poison flags are the audited cross-domain state. *)
        "lib/rt/rt_token.ml";
        "lib/rt/rt_monitor.ml";
        "lib/rt/rt_dom.ml";
        "lib/rt/rt_sock.ml";
        (* The chaos gate: a single relaxed flag read on the armed path. *)
        "lib/fault/sds_fault.ml";
      ];
    obj_allow = [ "lib/het/hmap.ml" ];
    bigarray_allow = [ "lib/vm/pagepool.ml"; "lib/ring/spsc_ring.ml" ];
    fault_allow =
      [
        "lib/fault/sds_fault.ml";
        "lib/rt/rt_token.ml";
        "lib/rt/rt_sock.ml";
        "lib/rt/rt_monitor.ml";
      ];
    atomic_dirs = [ "lib"; "bin"; "bench"; "examples" ];
    obj_dirs = [ "lib"; "bin"; "bench"; "examples"; "test" ];
    bigarray_dirs = [ "lib"; "bin"; "bench"; "examples" ];
    fault_dirs = [ "lib"; "bin"; "bench"; "examples" ];
    compare_dirs = [ "lib" ];
    data_path_dirs =
      [ "lib/ring"; "lib/notify"; "lib/transport"; "lib/core"; "lib/proto"; "lib/rt" ];
    mli_dirs = [ "lib" ];
    metric_dirs = [ "lib"; "bin"; "bench" ];
    metric_allow = [ "lib/obs/obs.ml" ];
    fence_dirs = [ "lib/ring"; "lib/notify"; "lib/rt" ];
    fence_fields = [ "tail"; "state"; "seq"; "credits" ];
    (* The allocator's cursors are domain-private by construction; its
       plain [tail]/[head] are the documented exception. *)
    fence_allow = [ "lib/ring/alloc_queue.ml" ];
    scan_dirs = [ "lib"; "bin"; "bench"; "examples"; "test" ];
    exclude_dirs = [ "_build"; ".git"; "test/fixtures" ];
  }

let rule_atomic = "atomic-confined"
let rule_compare = "poly-compare"
let rule_obj = "obj-unsafe"
let rule_mli = "mli-parity"
let rule_hot = "hot-alloc"
let rule_bigarray = "bigarray-unsafe"
let rule_metric = "metric-registration"
let rule_fault = "fault-confined"
let rule_fence = "fence-discipline"
let rule_parse = "parse-error"

let all_rules =
  [
    rule_atomic;
    rule_compare;
    rule_obj;
    rule_mli;
    rule_hot;
    rule_bigarray;
    rule_metric;
    rule_fault;
    rule_fence;
    rule_parse;
  ]

(* ---- path scoping ---- *)

let in_dir path dir =
  let ld = String.length dir and lp = String.length path in
  lp > ld && String.sub path 0 ld = dir && path.[ld] = '/'

let in_any path dirs = List.exists (in_dir path) dirs
let is_allowed path allow = List.mem path allow

(* ---- AST pass ---- *)

open Parsetree

let attr_is name (a : attribute) = a.attr_name.txt = name

(* Payload of [@sds.allow "slug"]. *)
let allow_payload (a : attribute) =
  if not (attr_is "sds.allow" a) then None
  else
    match a.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
      Some s
    | _ -> None

let lint_source ~config ~path ~source =
  let viols = ref [] in
  let suppressed : string list ref = ref [] in
  let hot = ref 0 in
  let cold = ref 0 in
  let check_atomic = in_any path config.atomic_dirs && not (is_allowed path config.atomic_allow) in
  let check_obj = in_any path config.obj_dirs && not (is_allowed path config.obj_allow) in
  let check_bigarray = in_any path config.bigarray_dirs in
  let bigarray_allowed = is_allowed path config.bigarray_allow in
  let check_compare = in_any path config.compare_dirs in
  let check_struct_eq = in_any path config.data_path_dirs in
  let check_metric = in_any path config.metric_dirs && not (is_allowed path config.metric_allow) in
  let check_fault = in_any path config.fault_dirs in
  let fault_allowed = is_allowed path config.fault_allow in
  let check_fence = in_any path config.fence_dirs && not (is_allowed path config.fence_allow) in
  (* Nesting depth in [fun]/[function] bodies: 0 = module top level. *)
  let fun_depth = ref 0 in
  (* Inside the then-branch of [if Sds_fault.armed () then ...]. *)
  let fault_gate = ref 0 in
  let add ~loc rule message =
    if not (List.mem rule !suppressed) then begin
      let p = loc.Location.loc_start in
      viols :=
        { rule; file = path; line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol; message }
        :: !viols
    end
  in
  (* Module-path head of a longident: [Atomic.get] -> Some "Atomic", also
     seeing through a [Stdlib.] prefix ([Stdlib.Atomic.get] -> Some "Atomic"). *)
  let head_module lid =
    match Longident.flatten lid with
    | "Stdlib" :: m :: _ :: _ -> Some m
    | m :: _ :: _ -> Some m
    | _ -> None
  in
  let is_bare name lid =
    match Longident.flatten lid with
    | [ n ] | [ "Stdlib"; n ] -> n = name
    | _ -> false
  in
  let check_ident lid loc =
    (match head_module lid with
    | Some "Atomic" when check_atomic ->
      add ~loc rule_atomic
        "Atomic.* is confined to the allowlisted lock-free modules (lib/ring/spsc_ring.ml, \
         lib/notify/waiter.ml, lib/vm/pagepool.ml); route new shared state through them"
    | Some "Bigarray" when check_bigarray -> (
      match List.rev (Longident.flatten lid) with
      | last :: _ when String.length last > 7 && String.sub last 0 7 = "unsafe_" ->
        if not bigarray_allowed then
          add ~loc rule_bigarray
            "Bigarray unsafe access outside the audited data-path modules \
             (lib/vm/pagepool.ml, lib/ring/spsc_ring.ml); use the checked accessors"
        else if not (!hot > 0 && !cold = 0) then
          add ~loc rule_bigarray
            "Bigarray unsafe access outside an [@sds.hot] function; unchecked loads/stores \
             are only for hot paths whose bounds checks were hoisted"
      | _ -> ())
    | Some "Obj" when check_obj ->
      add ~loc rule_obj "Obj.* outside the designated safe module (lib/het/hmap.ml)"
    | Some "Sds_fault"
      when check_fault
           && (match List.rev (Longident.flatten lid) with
              | "inject" :: _ -> true
              | _ -> false) ->
      if not fault_allowed then
        add ~loc rule_fault
          "Sds_fault.inject outside the crash-recovery allowlist (lib/fault, lib/rt); chaos \
           hooks live only where the recovery protocol is audited"
      else if !hot > 0 && !cold = 0 && !fault_gate = 0 then
        add ~loc rule_fault
          "ungated Sds_fault.inject inside an [@sds.hot] function; wrap it as \
           [if Sds_fault.armed () then Sds_fault.inject ...] so the disarmed fast path \
           pays one flag read"
    | Some (("Printf" | "Format") as m) when !hot > 0 && !cold = 0 ->
      add ~loc rule_hot (Printf.sprintf "%s.* formats (and allocates) inside an [@sds.hot] function" m)
    | Some "List" when !hot > 0 && !cold = 0 ->
      add ~loc rule_hot "List.* combinators allocate inside an [@sds.hot] function"
    | _ -> ());
    if check_compare && is_bare "compare" lid then
      add ~loc rule_compare
        "polymorphic compare; use a monomorphic comparator (Int.compare, Float.compare, \
         String.compare, ...)";
    if !hot > 0 && !cold = 0 then
      match Longident.flatten lid with
      | [ ("^" | "@") as op ] ->
        add ~loc rule_hot (Printf.sprintf "(%s) concatenation allocates inside an [@sds.hot] function" op)
      | _ -> ()
  in
  (* [Obs.Metrics.counter], [Metrics.histogram], ... — a registration call
     head, whatever the module prefix. *)
  let is_registration lid =
    match List.rev (Longident.flatten lid) with
    | ("counter" | "gauge" | "histogram" | "probe") :: "Metrics" :: _ -> true
    | _ -> false
  in
  (* layer.noun: two or more dot-separated lowercase [a-z][a-z0-9_]* segments. *)
  let metric_name_ok s =
    let seg_ok seg =
      String.length seg > 0
      && (match seg.[0] with 'a' .. 'z' -> true | _ -> false)
      && String.for_all (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false) seg
    in
    match String.split_on_char '.' s with
    | _ :: _ :: _ as segs -> List.for_all seg_ok segs
    | _ -> false
  in
  let check_registration lid args loc =
    if is_registration lid then begin
      if !fun_depth > 0 then
        add ~loc rule_metric
          "metric registration inside a function; Metrics.counter/gauge/histogram/probe take \
           the registry lock and allocate — register once at module top level and close over \
           the handle";
      match
        List.find_opt
          (fun (lbl, a) ->
            lbl = Asttypes.Nolabel
            && match a.pexp_desc with Pexp_constant (Pconst_string _) -> true | _ -> false)
          args
      with
      | Some (_, { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }) ->
        if not (metric_name_ok s) then
          add ~loc rule_metric
            (Printf.sprintf
               "metric name %S breaks the layer.noun convention (lowercase dot-separated \
                segments, e.g. \"ring.enqueues\")"
               s)
      | _ -> ()
    end
  in
  (* Does this guard expression test [Sds_fault.armed ()]?  Sees through
     the common composed forms ([armed () && more], [not (...)],
     parentheses/constraints). *)
  let rec mentions_armed e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | [ "Sds_fault"; "armed" ] -> true
      | _ -> false)
    | Pexp_apply (f, args) ->
      mentions_armed f || List.exists (fun (_, a) -> mentions_armed a) args
    | Pexp_constraint (e', _) -> mentions_armed e'
    | _ -> false
  in
  (* Syntactically structured operand: comparing one with polymorphic =
     walks the structure at runtime. *)
  let is_structural e =
    match e.pexp_desc with
    | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> true
    | Pexp_construct (_, Some _) -> true
    | Pexp_variant (_, Some _) -> true
    | Pexp_constant (Pconst_string _) -> true
    | _ -> false
  in
  let with_attrs attrs k =
    let allows = List.filter_map allow_payload attrs in
    let is_cold = List.exists (attr_is "sds.cold") attrs in
    let saved = !suppressed in
    suppressed := allows @ saved;
    if is_cold then incr cold;
    k ();
    if is_cold then decr cold;
    suppressed := saved
  in
  let default_it = Ast_iterator.default_iterator in
  let expr it e =
    with_attrs e.pexp_attributes (fun () ->
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } -> check_ident txt loc
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident ("=" | "<>"); _ }; _ }, [ (_, a); (_, b) ])
          when check_struct_eq && (is_structural a || is_structural b) ->
          add ~loc:e.pexp_loc rule_compare
            "polymorphic =/<> on a structured value in a data-path library; use a monomorphic \
             equality"
        | Pexp_setfield (_, { txt = fld; _ }, _)
          when check_fence
               && (match List.rev (Longident.flatten fld) with
                  | f :: _ -> List.mem f config.fence_fields
                  | [] -> false) ->
          add ~loc:e.pexp_loc rule_fence
            (Printf.sprintf
               "plain write to %S, a synchronizing field of the checked protocols; the model \
                extraction maps own this name — publish through the Atomic API, or allowlist \
                the file if the structure is provably single-domain"
               (List.hd (List.rev (Longident.flatten fld))))
        | (Pexp_fun _ | Pexp_function _) when !hot > 0 && !cold = 0 ->
          add ~loc:e.pexp_loc rule_hot "closure allocation inside an [@sds.hot] function"
        | Pexp_lazy _ when !hot > 0 && !cold = 0 ->
          add ~loc:e.pexp_loc rule_hot "lazy block allocates inside an [@sds.hot] function"
        | _ -> ());
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) when check_metric ->
          check_registration txt args e.pexp_loc
        | _ -> ());
        match e.pexp_desc with
        | Pexp_fun _ | Pexp_function _ ->
          incr fun_depth;
          default_it.expr it e;
          decr fun_depth
        | Pexp_ifthenelse (cond, then_, else_) when mentions_armed cond ->
          it.Ast_iterator.expr it cond;
          incr fault_gate;
          it.Ast_iterator.expr it then_;
          decr fault_gate;
          Option.iter (it.Ast_iterator.expr it) else_
        | _ -> default_it.expr it e)
  in
  (* [let[@sds.hot] f p1 p2 = body]: the curried parameter chain is the
     function itself, not a nested closure — skip through it, then walk the
     body in hot context. *)
  let value_binding it vb =
    if List.exists (attr_is "sds.hot") vb.pvb_attributes then
      with_attrs vb.pvb_attributes (fun () ->
          it.Ast_iterator.pat it vb.pvb_pat;
          incr hot;
          let rec skip e =
            match e.pexp_desc with
            | Pexp_fun (_, dflt, pat, body) ->
              Option.iter (it.Ast_iterator.expr it) dflt;
              it.Ast_iterator.pat it pat;
              (* The body still sits inside a function for depth-sensitive
                 rules, even though this chain is not a nested closure. *)
              incr fun_depth;
              skip body;
              decr fun_depth
            | Pexp_newtype (_, body) -> skip body
            | Pexp_constraint (body, ty) ->
              it.Ast_iterator.typ it ty;
              skip body
            | _ -> it.Ast_iterator.expr it e
          in
          skip vb.pvb_expr;
          decr hot)
    else default_it.value_binding it vb
  in
  (* [open Atomic] / [module A = Atomic]: escape hatches for the ident rule. *)
  let module_head me =
    match me.pmod_desc with
    | Pmod_ident { txt; loc } -> Some (Longident.flatten txt, loc)
    | _ -> None
  in
  let check_module_path (flat, loc) =
    match flat with
    | "Atomic" :: _ when check_atomic ->
      add ~loc rule_atomic "aliasing/opening Atomic outside the allowlisted lock-free modules"
    | "Obj" :: _ when check_obj ->
      add ~loc rule_obj "aliasing/opening Obj outside the designated safe module"
    | "Sds_fault" :: _ when check_fault && not fault_allowed ->
      add ~loc rule_fault
        "aliasing/opening Sds_fault outside the crash-recovery allowlist"
    | _ -> ()
  in
  let module_expr it me =
    (match module_head me with Some h -> check_module_path h | None -> ());
    default_it.module_expr it me
  in
  let open_description it (od : open_description) =
    check_module_path (Longident.flatten od.popen_expr.txt, od.popen_expr.loc);
    default_it.open_description it od
  in
  let it =
    { default_it with expr; value_binding; module_expr; open_description }
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  (match Parse.implementation lexbuf with
  | str -> it.structure it str
  | exception _ ->
    let p = lexbuf.Lexing.lex_curr_p in
    viols :=
      {
        rule = rule_parse;
        file = path;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        message = "syntax error: file does not parse";
      }
      :: !viols);
  List.rev !viols

(* ---- tree driver ---- *)

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ~config ~root ~path =
  lint_source ~config ~path ~source:(read_file (Filename.concat root path))

(* All .ml files under [config.scan_dirs], repo-relative, sorted. *)
let ml_files ~config ~root =
  let acc = ref [] in
  let rec walk rel =
    if not (List.mem rel config.exclude_dirs) then begin
      let abs = Filename.concat root rel in
      match Sys.is_directory abs with
      | true ->
        Array.iter
          (fun entry -> walk (Filename.concat rel entry))
          (Sys.readdir abs)
      | false -> if Filename.check_suffix rel ".ml" then acc := rel :: !acc
      | exception Sys_error _ -> ()
    end
  in
  List.iter (fun d -> if Sys.file_exists (Filename.concat root d) then walk d) config.scan_dirs;
  List.sort String.compare !acc

let check_mli_parity ~config ~root =
  List.filter_map
    (fun path ->
      if in_any path config.mli_dirs && not (Sys.file_exists (Filename.concat root (path ^ "i")))
      then
        Some
          {
            rule = rule_mli;
            file = path;
            line = 1;
            col = 0;
            message = "missing interface: every module under lib/ needs a sibling .mli";
          }
      else None)
    (ml_files ~config ~root)

let lint_tree ~config ~root =
  let per_file =
    List.concat_map (fun path -> lint_file ~config ~root ~path) (ml_files ~config ~root)
  in
  per_file @ check_mli_parity ~config ~root

let pp_violation ppf v =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

let to_string v = Format.asprintf "%a" pp_violation v

(* GitHub Actions workflow-command annotation.  Property values escape
   [%%], CR, LF, [,] and [:]; the free-text message escapes only the first
   three. *)
let to_github v =
  let escape ~prop s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '%' -> Buffer.add_string b "%25"
        | '\r' -> Buffer.add_string b "%0D"
        | '\n' -> Buffer.add_string b "%0A"
        | ',' when prop -> Buffer.add_string b "%2C"
        | ':' when prop -> Buffer.add_string b "%3A"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  Printf.sprintf "::error file=%s,line=%d,col=%d,title=%s::%s"
    (escape ~prop:true v.file) v.line v.col
    (escape ~prop:true v.rule)
    (escape ~prop:false v.message)
