(* Sds_check.Models — the tree's lock-free protocols re-expressed as
   Interleave model programs, with mutation knobs.

   Each model is deliberately the *protocol skeleton*, not the whole
   implementation: exactly the loads, stores and sync edges the correctness
   comment in the real module appeals to.  The default knobs reproduce the
   shipped protocol and must check clean; each knob flipped to the buggy
   variant must make the checker report the corresponding defect — those
   mutations are pinned by tests, so the detector itself is regression-
   tested against the bug classes it exists to catch. *)

open Interleave

(* ---- §4.2 ring publication (lib/ring/spsc_ring.ml) ----

   Producer: write payload (plain), write header (plain), publish tail
   (atomic store — the release edge).  Consumer: read tail (atomic — the
   acquire edge); if it observed the publication, read header and payload
   and assert both writes are visible.

   [publish_atomic = false] drops the SC publication (models losing the
   release fence): the consumer's reads of [hdr]/[data] race with the
   producer's writes — the checker must report races.

   [header_after_publish = true] publishes the tail before the header
   write: even sequentially consistent executions can then observe
   [tail = 1] with an unwritten header — the checker must report the
   assertion failure. *)

let ring_publication ?(publish_atomic = true) ?(header_after_publish = false) () =
  let publish = if publish_atomic then Store ("tail", Int 1) else Plain_store ("tail", Int 1) in
  let producer =
    if header_after_publish then
      [ Plain_store ("data", Int 1); publish; Plain_store ("hdr", Int 1) ]
    else [ Plain_store ("data", Int 1); Plain_store ("hdr", Int 1); publish ]
  in
  let consumer =
    [
      Load ("tail", "t");
      If
        ( Rel (Eq, Reg "t", Int 1),
          [
            Plain_load ("hdr", "h");
            Plain_load ("data", "d");
            Assert (Rel (Eq, Reg "h", Int 1), "consumer observed tail but header is unwritten");
            Assert (Rel (Eq, Reg "d", Int 1), "consumer observed tail but payload is unwritten");
          ],
          [] );
    ]
  in
  {
    globals = [ ("data", 0); ("hdr", 0); ("tail", 0) ];
    threads = [ { name = "producer"; body = producer }; { name = "consumer"; body = consumer } ];
  }

(* ---- §4.4 eventcount park/notify (lib/notify/waiter.ml) ----

   Waiter: read the ticket ([seq]), publish the parked flag ([state] := 1),
   re-check the readiness condition, and either cancel or park until [seq]
   moves.  Notifier: make the condition true ([cond] := 1), then load the
   parked flag; if parked, CAS 1->2 to elect itself waker and bump [seq].

   The Dekker-style safety argument: the waiter stores [state] *before*
   re-checking [cond]; the notifier stores [cond] *before* loading
   [state].  Under SC one of the two observations must succeed, so either
   the waiter cancels or the notifier wakes.

   [recheck = false] drops the waiter's re-check — the shipped bench once
   had exactly this bug in its private parking layer: the notifier can run
   entirely between the waiter's first readiness check and its park, the
   notify is skipped ([state] was still 0 when loaded), and the waiter
   sleeps forever.  The checker must report a lost wakeup. *)

let park_notify ?(recheck = true) () =
  let park =
    [
      Block_until (Rel (Ne, Var "seq", Reg "ticket"));
      Store ("state", Int 0);
    ]
  in
  let waiter =
    [ Load ("seq", "ticket"); Load ("cond", "c0") ]
    @ [
        If
          ( Rel (Eq, Reg "c0", Int 1),
            [],
            [ Store ("state", Int 1) ]
            @ (if recheck then
                 [
                   Load ("cond", "c1");
                   If (Rel (Eq, Reg "c1", Int 1), [ Store ("state", Int 0) ], park);
                 ]
               else park) );
      ]
  in
  let notifier =
    [
      Store ("cond", Int 1);
      Load ("state", "s");
      If
        ( Rel (Eq, Reg "s", Int 1),
          [
            Cas ("state", Int 1, Int 2, "won");
            If
              ( Rel (Eq, Reg "won", Int 1),
                [ Load ("seq", "n"); Store ("seq", Add (Reg "n", Int 1)) ],
                [] );
          ],
          [] );
    ]
  in
  {
    globals = [ ("cond", 0); ("state", 0); ("seq", 0) ];
    threads = [ { name = "waiter"; body = waiter }; { name = "notifier"; body = notifier } ];
  }

(* ---- §4.6 page-descriptor handoff (lib/vm/pagepool.ml + libsd) ----

   Sender: fill the page (plain store), then publish the descriptor on the
   ring (atomic store — stands in for the tail publication, which is the
   ownership-transfer edge).  Receiver: wait for the descriptor, read the
   payload and check it, then drop the reference ([rc] := 0 — the last
   release).  Recycler: wait for [rc] = 0, then reuse the page (plain
   store of new data) — stands in for a later [alloc] by anyone.

   The safety argument mirrors the pool's ownership rule: the payload read
   happens-before the release, and the release happens-before recycling,
   so the reader and the re-user never touch the page concurrently.

   [release_before_read = true] is the use-after-release bug: the receiver
   drops its reference *before* reading the payload.  The recycler can then
   run between the release and the read — the checker must report the race
   on [page] (and the corrupted-payload assertion can fire). *)

let desc_handoff ?(release_before_read = false) () =
  let read_and_check =
    [
      Plain_load ("page", "v");
      Assert (Rel (Eq, Reg "v", Int 1), "receiver read a recycled page (use after release)");
    ]
  in
  let release = [ Store ("rc", Int 0) ] in
  let receiver =
    [ Block_until (Rel (Eq, Var "desc", Int 1)) ]
    @ (if release_before_read then release @ read_and_check else read_and_check @ release)
  in
  {
    globals = [ ("page", 0); ("desc", 0); ("rc", 1) ];
    threads =
      [
        { name = "sender"; body = [ Plain_store ("page", Int 1); Store ("desc", Int 1) ] };
        { name = "receiver"; body = receiver };
        {
          name = "recycler";
          body = [ Block_until (Rel (Eq, Var "rc", Int 0)); Plain_store ("page", Int 2) ];
        };
      ];
  }

(* ---- §4.2 token handoff (lib/rt/rt_token.ml) ----

   The takeover sequence: the requester CASes its request into the token
   word (request), the holder finishes the operation it has in flight
   (drain), publishes the grant with an atomic transition (the release
   fence), and the requester resumes and touches the socket state the
   previous holder wrote.

   Encoding: [tok] = 1 is "held by domain 1, no request", 9 is "held by
   domain 1, requested by domain 2" (the real word packs holder and
   requester the same way), 2 is "held by domain 2".  [data] stands for
   the token-guarded socket state (plain, unsynchronized — exactly as in
   the implementation, where the token's atomics carry all the ordering).

   [fence_atomic = false] publishes the grant with a plain store — losing
   the release fence.  The requester's resume then has no happens-before
   edge to the holder's plain writes: the checker must report the race on
   [data].

   [drain_before_grant = false] grants while the in-flight operation is
   still open (the §4.2 bug the "finish the current batch first" rule
   exists for): the requester can resume and read socket state the holder
   has not written yet — the checker must report the stale-read assertion
   (and the now-concurrent plain accesses race). *)

let token_handoff ?(fence_atomic = true) ?(drain_before_grant = true) () =
  let grant = if fence_atomic then Store ("tok", Int 2) else Plain_store ("tok", Int 2) in
  let op = [ Plain_store ("data", Int 1) ] in
  let serve = [ Block_until (Rel (Eq, Var "tok", Int 9)); grant ] in
  let holder = if drain_before_grant then op @ serve else serve @ op in
  let requester =
    [
      Cas ("tok", Int 1, Int 9, "posted");
      Assert (Rel (Eq, Reg "posted", Int 1), "takeover request CAS failed against a held token");
      Block_until (Rel (Eq, Var "tok", Int 2));
      Plain_load ("data", "d");
      Assert (Rel (Eq, Reg "d", Int 1), "requester resumed before the holder drained in flight");
      Plain_store ("data", Int 2);
    ]
  in
  {
    globals = [ ("tok", 1); ("data", 0) ];
    threads =
      [ { name = "holder"; body = holder }; { name = "requester"; body = requester } ];
  }

(* ---- §4.3 crash takeover (lib/rt/rt_token.ml seize path) ----

   A holder dies mid-handoff: it wrote token-guarded socket state and then
   crashed *before* publishing the grant, leaving a requester posted.  The
   reaper (the [Rt_dom.on_death] hook / [try_seize]) observes the death
   ([alive] = 0, standing in for the epoch parity check) and commits the
   seize with an atomic transition — the seize fence — handing the token
   to the posted requester, which then reads the dead holder's writes.

   Encoding mirrors [token_handoff]: [tok] = 1 "held by 1", 9 "held by 1,
   requested by 2", 2 "held by 2".  [alive] is holder 1's liveness epoch
   bit; the crash is the atomic [alive] := 0 (exactly what
   [Rt_dom.declare_dead]'s epoch CAS publishes), after which the holder
   executes nothing further — a crash is silence, not cleanup.

   The CAS from the observed word is load-bearing twice over: it orders
   the dead holder's plain writes before the survivor's reads (the
   happens-before edge runs holder-store → alive:=0 → reaper's CAS →
   requester's resume), and it arbitrates racing seizers.
   [seize_fence = false] publishes the seize with a plain store — the
   requester's resume then races with the holder's dying write, and the
   checker must report it. *)

let token_crash_recovery ?(seize_fence = true) () =
  let seize =
    if seize_fence then [ Cas ("tok", Int 9, Int 2, "won") ]
    else [ Plain_store ("tok", Int 2) ]
  in
  let holder =
    [
      Plain_store ("data", Int 1);  (* the dying incarnation's last write *)
      Block_until (Rel (Eq, Var "tok", Int 9));
      Store ("alive", Int 0);  (* declare_dead's epoch retire; then silence *)
    ]
  in
  let reaper = [ Block_until (Rel (Eq, Var "alive", Int 0)) ] @ seize in
  let requester =
    [
      Cas ("tok", Int 1, Int 9, "posted");
      Assert (Rel (Eq, Reg "posted", Int 1), "takeover request CAS failed against a held token");
      Block_until (Rel (Eq, Var "tok", Int 2));
      Plain_load ("data", "d");
      Assert (Rel (Eq, Reg "d", Int 1), "survivor resumed without the dead holder's writes");
      Plain_store ("data", Int 2);
    ]
  in
  {
    globals = [ ("tok", 1); ("data", 0); ("alive", 1) ];
    threads =
      [
        { name = "holder"; body = holder };
        { name = "reaper"; body = reaper };
        { name = "requester"; body = requester };
      ];
  }

(* The checks `dune runtest` gates on, plus their pinned mutations. *)
let all =
  [
    ("ring-publication", ring_publication ());
    ("park-notify", park_notify ());
    ("desc-handoff", desc_handoff ());
    ("token-handoff", token_handoff ());
    ("token-crash-recovery", token_crash_recovery ());
  ]

let mutations =
  [
    ("ring-publication-unfenced", ring_publication ~publish_atomic:false ());
    ("ring-publication-header-late", ring_publication ~header_after_publish:true ());
    ("park-notify-no-recheck", park_notify ~recheck:false ());
    ("desc-handoff-release-early", desc_handoff ~release_before_read:true ());
    ("token-handoff-unfenced", token_handoff ~fence_atomic:false ());
    ("token-handoff-early-grant", token_handoff ~drain_before_grant:false ());
    ("token-crash-unfenced-seize", token_crash_recovery ~seize_fence:false ());
  ]
