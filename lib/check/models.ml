(* Sds_check.Models — the tree's lock-free protocols as Interleave model
   programs, with seeded mutations.

   Since PR 10 the protocol threads are not written here: they are
   *extracted* from the annotated real sources ([@sds.model] regions in
   lib/ring/spsc_ring.ml, lib/notify/waiter.ml, lib/rt/rt_token.ml) by
   {!Extract}, under the per-model specs below.  What remains hand-written
   is exactly what has no single source region:

   - init states and observer/assertion glue (the consumer that checks the
     published record, the requester that checks the drained socket state)
     — these encode the *claims*, not the protocol;
   - the desc-handoff model, whose ownership rule spans pagepool + ring +
     libsd rather than one annotated region;
   - the seeded mutations, now expressed as transforms over the extracted
     statements (plus glue reorderings) instead of knobs on a hand copy.

   The default assembly must check clean; each mutation must make the
   checker report its defect — pinned by tests, so the detector stays
   regression-tested against the bug classes it exists to catch.  The
   extracted programs are additionally pinned to goldens under
   test/golden/ by `sdmodel check` (drift gate; see bin/sdmodel.ml). *)

open Interleave
module E = Extract

(* ---- extraction specs ---- *)

let exp_of = function
  | E.Vexp e -> e
  | _ -> raise (E.Error "rule expected a modelable value argument")

let ring_files = [ "lib/ring/spsc_ring.ml" ]
let notify_files = [ "lib/notify/waiter.ml" ]
let token_files = [ "lib/rt/rt_token.ml" ]

(* §4.2 ring publication: [tail] is the published cursor; payload and
   header bytes collapse to one unit-step plain cell each ([data], [hdr]) —
   what matters is their order against the tail store, not their contents.
   Credits and metrics are producer-local concerns, out of model. *)
let ring_spec =
  {
    E.atomics = [ ("tail", "tail") ];
    atomic_elide = [ "credits" ];
    plains = [];
    plain_elide = [ "span"; "prod"; "enqueued"; "enq_bytes"; "was_full"; "rx_waiter" ];
    ints = [ ("need", 1) ];
    calls =
      [
        ( "blit_in",
          E.Custom
            (fun o _ ->
              o.emit (Plain_store ("data", Int 1));
              E.Vopaque "unit") );
        ( "write_header",
          E.Custom
            (fun o _ ->
              o.emit (Plain_store ("hdr", Int 1));
              E.Vopaque "unit") );
        ("stamp_pub", E.Ignore);
        ("notify", E.Ignore);
      ];
  }

(* §4.4 eventcount: [seq]/[state] are the waiter's own atomics; the
   caller's readiness predicate [ready ()] becomes an atomic load of the
   model variable [cond] (the notifier glue sets it).  Locks, condvar
   waits and the policy/metrics machinery are out of model — the condvar
   edge is what [Block_until] means. *)
let waiter_spec =
  {
    E.atomics = [ ("seq", "seq"); ("state", "state") ];
    atomic_elide = [];
    plains = [];
    plain_elide = [ "m"; "c"; "policy" ];
    ints = [];
    calls =
      [
        ( "ready",
          E.Custom
            (fun o _ ->
              let r = o.fresh "c" in
              o.emit (Load ("cond", r));
              E.Vexp (Reg r)) );
        ("lock", E.Ignore);
        ("unlock", E.Ignore);
        ("broadcast", E.Ignore);
        ("wait", E.Ignore);
        ("incr", E.Ignore);
        ("emit", E.Ignore);
        ("observe", E.Ignore);
        ("observe_wake", E.Ignore);
        ("monotonic_ns", E.Ignore);
        ("on_park", E.Ignore);
        ("on_wake", E.Ignore);
      ];
  }

(* §4.2/§4.3 token: the packed state word is [tok], encoded 1 = held by
   domain 1, 9 = held by 1 with 2's request posted, 2 = held by 2 (the
   real word packs holder/requester/epoch the same way; the unit-step
   abstraction keeps three inhabited points).  [Token_proto]'s pure
   pack/unpack helpers are identities or constants under that encoding;
   [seizable] folds the epoch parity check into an atomic load of the
   holder's liveness bit [alive].  Retry recursion is elided — the checker
   explores each CAS outcome once; the retry re-enters the same region. *)
let token_spec =
  {
    E.atomics = [ ("state", "tok") ];
    atomic_elide = [];
    plains = [];
    plain_elide = [ "fast_owner"; "handoffs" ];
    ints = [ ("dom", 2) ];
    calls =
      [
        ("proto", E.Arg 0);
        ("compose", E.Arg 0);
        ("grant", E.Const 2);
        ("seize", E.Const 2);
        ("requester", E.Const 2);
        ("epoch_of", E.Const 0);
        ( "should_release",
          E.Custom (fun _ vs -> E.Vcond (Rel (Eq, exp_of (List.hd vs), Int 9))) );
        ( "seizable",
          E.Custom
            (fun o vs ->
              let a = o.fresh "a" in
              o.emit (Load ("alive", a));
              E.Vcond (And (Rel (Eq, exp_of (List.hd vs), Int 9), Rel (Eq, Reg a, Int 0)))) );
        ("armed", E.Const 0);
        ("inject", E.Ignore);
        ("incr", E.Ignore);
        ("emit_n", E.Ignore);
        ("wake_waiters", E.Ignore);
        ("grant_now", E.Ignore);
        ("try_seize", E.Ignore);
      ];
  }

(* ---- mutation transforms ----

   Each seeded mutation rewrites the *extracted* statements — the same
   programs the clean models check — rather than flipping a knob on a hand
   copy, so the mutations stay meaningful as the real code evolves. *)

(* Bottom-up rewrite of statement lists (through If/While branches). *)
let rec rewrite f stmts =
  f
    (List.map
       (fun s ->
         match s with
         | If (c, a, b) -> If (c, rewrite f a, rewrite f b)
         | While (c, b) -> While (c, rewrite f b)
         | s -> s)
       stmts)

let map_stmt f = rewrite (List.map f)

(* The field stops being atomic: every access to [var] in the fragment
   turns plain.  (Narrower than-the-store mutations would be masked by the
   guard load — any atomic access to a location merges clocks under the
   OCaml memory model, so a surviving atomic load would still publish the
   writes the lost fence was ordering.) *)
let plainify var =
  rewrite
    (List.concat_map (fun s ->
         match s with
         | Load (v, r) when v = var -> [ Plain_load (v, r) ]
         | Store (v, e) when v = var -> [ Plain_store (v, e) ]
         | Cas (v, _, set, r) when v = var -> [ Plain_store (v, set); Set (r, Int 1) ]
         | Faa (v, d, r) when v = var ->
           [ Plain_load (v, r); Plain_store (v, Add (Reg r, d)) ]
         | s -> [ s ]))

(* Publish the tail with a plain store (drops the release edge only; the
   guard load of [tail] precedes the payload writes, so it publishes
   nothing that matters). *)
let plain_tail_store =
  map_stmt (function Store ("tail", e) -> Plain_store ("tail", e) | s -> s)

(* Move the header write after the tail publication. *)
let header_after_publish stmts =
  let is_hdr = function Plain_store ("hdr", _) -> true | _ -> false in
  let is_pub = function Store ("tail", _) -> true | _ -> false in
  let hdr = List.filter is_hdr stmts in
  rewrite
    (fun l ->
      List.concat_map (fun s ->
          if is_hdr s then [] else if is_pub s then s :: hdr else [ s ])
        l)
    stmts

(* Delete the post-prepare re-check: the [load cond; if ...] pair collapses
   to its park branch. *)
let drop_recheck =
  rewrite (fun l ->
      let rec go = function
        | Load ("cond", r) :: If (Rel (Ne, Reg r', Int 0), _, els) :: rest when r = r' ->
          els @ go rest
        | s :: rest -> s :: go rest
        | [] -> []
      in
      go l)

(* ---- assembly: extracted protocol threads + hand-written glue ---- *)

let keep = fun s -> s

(* §4.2 ring publication.  Producer extracted from [Spsc_ring.try_enqueue]'s
   publication region; the consumer is observer glue: read tail (the
   acquire edge) and, if it observed the publication, assert the header
   and payload writes are visible. *)
let ring_publication ~root ?(mutate = keep) () =
  let producer =
    mutate (E.extract ~root ~files:ring_files ~spec:ring_spec "ring-publication/producer")
  in
  let consumer =
    [
      Load ("tail", "t");
      If
        ( Rel (Eq, Reg "t", Int 1),
          [
            Plain_load ("hdr", "h");
            Plain_load ("data", "d");
            Assert (Rel (Eq, Reg "h", Int 1), "consumer observed tail but header is unwritten");
            Assert (Rel (Eq, Reg "d", Int 1), "consumer observed tail but payload is unwritten");
          ],
          [] );
    ]
  in
  {
    globals = [ ("data", 0); ("hdr", 0); ("tail", 0) ];
    threads = [ { name = "producer"; body = producer }; { name = "consumer"; body = consumer } ];
  }

(* §4.4 park/notify.  The waiter's prepare/re-check/commit episode is
   extracted from [Waiter.park_once] (which inlines the annotated
   prepare_wait/cancel/commit_wait protocol steps); the notifier from
   [Waiter.notify].  Glue: the caller's pre-park poll, and the notifier
   making the condition true before notifying — the Dekker pair the
   lost-wakeup argument rests on. *)
let park_notify ~root ?(mutate = keep) () =
  let park =
    mutate (E.extract ~root ~files:notify_files ~spec:waiter_spec "park-notify/waiter")
  in
  let notifier =
    Store ("cond", Int 1)
    :: E.extract ~root ~files:notify_files ~spec:waiter_spec "park-notify/notifier"
  in
  let waiter = [ Load ("cond", "c0"); If (Rel (Eq, Reg "c0", Int 1), [], park) ] in
  {
    globals = [ ("cond", 0); ("state", 0); ("seq", 0) ];
    threads = [ { name = "waiter"; body = waiter }; { name = "notifier"; body = notifier } ];
  }

(* §4.6 page-descriptor handoff (lib/vm/pagepool.ml + libsd) — still
   hand-written: the ownership rule spans the pool, the ring and libsd
   rather than one annotatable region.

   Sender: fill the page (plain store), then publish the descriptor on the
   ring (atomic store — stands in for the tail publication, which is the
   ownership-transfer edge).  Receiver: wait for the descriptor, read the
   payload and check it, then drop the reference ([rc] := 0 — the last
   release).  Recycler: wait for [rc] = 0, then reuse the page (plain
   store of new data) — stands in for a later [alloc] by anyone.

   [release_before_read = true] is the use-after-release bug: the receiver
   drops its reference *before* reading the payload.  The recycler can then
   run between the release and the read — the checker must report the race
   on [page] (and the corrupted-payload assertion can fire). *)
let desc_handoff ?(release_before_read = false) () =
  let read_and_check =
    [
      Plain_load ("page", "v");
      Assert (Rel (Eq, Reg "v", Int 1), "receiver read a recycled page (use after release)");
    ]
  in
  let release = [ Store ("rc", Int 0) ] in
  let receiver =
    [ Block_until (Rel (Eq, Var "desc", Int 1)) ]
    @ (if release_before_read then release @ read_and_check else read_and_check @ release)
  in
  {
    globals = [ ("page", 0); ("desc", 0); ("rc", 1) ];
    threads =
      [
        { name = "sender"; body = [ Plain_store ("page", Int 1); Store ("desc", Int 1) ] };
        { name = "receiver"; body = receiver };
        {
          name = "recycler";
          body = [ Block_until (Rel (Eq, Var "rc", Int 0)); Plain_store ("page", Int 2) ];
        };
      ];
  }

(* §4.2 token handoff.  The grant is extracted from [Rt_token.grant_now];
   glue supplies the holder's serving loop — a few in-flight operations on
   the token-guarded socket state ([data]), each followed by the
   [Rt_token.boundary] poll (one load; the grant region runs if a request
   is posted), ending in the parked wait — and the requester, which polls
   the fast path once, posts its request, and asserts it resumes only
   after the drain.  The per-op boundary polls are where the real
   interleaving space lives (every op of a busy holder races the
   requester's post), which is exactly what the DPOR reduction is measured
   against.

   [drain_before_grant = false] is the early-grant bug (glue reorder: the
   in-flight op completes only after the grant region runs). *)
let token_handoff ~root ?(mutate = keep) ?(drain_before_grant = true) () =
  let grant =
    mutate (E.extract ~root ~files:token_files ~spec:token_spec "token-handoff/grant")
  in
  let op = [ Plain_store ("data", Int 1) ] in
  let parked = Block_until (Rel (Eq, Var "tok", Int 9)) :: grant in
  (* serve n: n operation/boundary rounds, then park for the request. *)
  let rec serve n =
    if n = 0 then parked
    else
      let b = "b" ^ string_of_int n in
      op @ [ Load ("tok", b); If (Rel (Eq, Reg b, Int 9), grant, serve (n - 1)) ]
  in
  let holder = if drain_before_grant then serve 5 else parked @ op in
  let requester =
    [
      Load ("tok", "fast");  (* the acquire fast path: one load, no post *)
      Cas ("tok", Int 1, Int 9, "posted");
      Assert (Rel (Eq, Reg "posted", Int 1), "takeover request CAS failed against a held token");
      Block_until (Rel (Eq, Var "tok", Int 2));
      Plain_load ("data", "d");
      Assert (Rel (Eq, Reg "d", Int 1), "requester resumed before the holder drained in flight");
      Plain_store ("data", Int 2);
    ]
  in
  {
    globals = [ ("tok", 1); ("data", 0) ];
    threads =
      [ { name = "holder"; body = holder }; { name = "requester"; body = requester } ];
  }

(* §4.3 crash takeover.  The seize is extracted from [Rt_token.try_seize]
   (its [seizable] guard folding the epoch parity check into the [alive]
   load); glue supplies the dying holder — last plain write, then the
   epoch retire, then silence — and the same posted requester. *)
let token_crash_recovery ~root ?(mutate = keep) () =
  let seize =
    mutate (E.extract ~root ~files:token_files ~spec:token_spec "token-crash/seize")
  in
  let holder =
    [
      Plain_store ("data", Int 1);  (* the dying incarnation's last write *)
      Block_until (Rel (Eq, Var "tok", Int 9));
      Store ("alive", Int 0);  (* declare_dead's epoch retire; then silence *)
    ]
  in
  let reaper = Block_until (Rel (Eq, Var "alive", Int 0)) :: seize in
  let requester =
    [
      Cas ("tok", Int 1, Int 9, "posted");
      Assert (Rel (Eq, Reg "posted", Int 1), "takeover request CAS failed against a held token");
      Block_until (Rel (Eq, Var "tok", Int 2));
      Plain_load ("data", "d");
      Assert (Rel (Eq, Reg "d", Int 1), "survivor resumed without the dead holder's writes");
      Plain_store ("data", Int 2);
    ]
  in
  {
    globals = [ ("tok", 1); ("data", 0); ("alive", 1) ];
    threads =
      [
        { name = "holder"; body = holder };
        { name = "reaper"; body = reaper };
        { name = "requester"; body = requester };
      ];
  }

(* Apply a statement transform to one named thread of a finished program —
   for mutations whose blast radius is a whole thread (a field losing its
   atomicity), not just the extracted fragment. *)
let mutate_thread name f p =
  {
    p with
    threads =
      List.map
        (fun t -> if t.name = name then { t with body = f t.body } else t)
        p.threads;
  }

(* ---- the suites ---- *)

let all ~root =
  [
    ("ring-publication", ring_publication ~root ());
    ("park-notify", park_notify ~root ());
    ("desc-handoff", desc_handoff ());
    ("token-handoff", token_handoff ~root ());
    ("token-crash-recovery", token_crash_recovery ~root ());
  ]

(* The golden-gated subset: programs whose protocol threads are extracted
   from annotated sources (desc-handoff stays hand-written). *)
let extracted ~root =
  List.filter (fun (n, _) -> n <> "desc-handoff") (all ~root)

let mutations ~root =
  [
    ("ring-publication-unfenced", ring_publication ~root ~mutate:plain_tail_store ());
    ("ring-publication-header-late", ring_publication ~root ~mutate:header_after_publish ());
    ("park-notify-no-recheck", park_notify ~root ~mutate:drop_recheck ());
    ("desc-handoff-release-early", desc_handoff ~release_before_read:true ());
    (* The whole holder side loses the token word's atomicity — boundary
       polls included.  Mutating the grant fragment alone would be masked:
       the boundary's surviving atomic load would still merge the holder's
       clock into the token word and publish the drained writes. *)
    ( "token-handoff-unfenced",
      mutate_thread "holder" (plainify "tok") (token_handoff ~root ()) );
    ("token-handoff-early-grant", token_handoff ~root ~drain_before_grant:false ());
    ("token-crash-unfenced-seize", token_crash_recovery ~root ~mutate:(plainify "tok") ());
  ]
