(** Repo-specific concurrency/correctness lint over the compiler-libs
    Parsetree.

    Rules (slugs as reported in {!violation.rule}):

    - ["atomic-confined"]: [Atomic.*] only in the allowlisted lock-free
      modules.
    - ["poly-compare"]: bare polymorphic [compare] under [lib/]; structural
      [=]/[<>] in the data-path libraries.
    - ["obj-unsafe"]: [Obj.*] only in the designated safe module.
    - ["mli-parity"]: every [.ml] under [lib/] has a sibling [.mli].
    - ["hot-alloc"]: no closures / [Printf] / [Format] / [List] / [^] / [@]
      inside [@sds.hot] functions; [@sds.cold] subtrees are exempt.
    - ["bigarray-unsafe"]: [Bigarray.*.unsafe_*] only in the allowlisted
      data-path modules, and there only inside [@sds.hot] functions.
    - ["metric-registration"]: [Metrics.counter/gauge/histogram/probe]
      only at module top level (never inside a function, least of all an
      [@sds.hot] one), with literal names following the lowercase
      dot-separated [layer.noun] convention.
    - ["fault-confined"]: [Sds_fault.inject] call sites only in the
      allowlisted crash-recovery modules, and inside [@sds.hot] functions
      only under the [if Sds_fault.armed () then ...] zero-cost gate.
    - ["fence-discipline"]: no plain [<-] writes, in the protocol
      libraries, to field names the model extraction maps treat as
      synchronizing state ([tail], [state], [seq], [credits]); provably
      single-domain structures are file-allowlisted.
    - ["parse-error"]: the file does not parse (always reported).

    Suppress any rule locally with [(e [@sds.allow "rule-slug"])]. *)

type violation = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type config = {
  atomic_allow : string list;
  obj_allow : string list;
  bigarray_allow : string list;
  fault_allow : string list;
  atomic_dirs : string list;
  obj_dirs : string list;
  bigarray_dirs : string list;
  fault_dirs : string list;
  compare_dirs : string list;
  data_path_dirs : string list;
  mli_dirs : string list;
  metric_dirs : string list;
  metric_allow : string list;
  fence_dirs : string list;
  fence_fields : string list;
  fence_allow : string list;
  scan_dirs : string list;
  exclude_dirs : string list;
}

val default : config
(** The tree's policy: see [docs/static-analysis.md]. *)

val all_rules : string list

val lint_source : config:config -> path:string -> source:string -> violation list
(** Lint one compilation unit from a string.  [path] (repo-relative) selects
    which rules apply; it does not need to exist on disk. *)

val lint_file : config:config -> root:string -> path:string -> violation list

val ml_files : config:config -> root:string -> string list
(** Repo-relative [.ml] paths under [config.scan_dirs], sorted. *)

val lint_tree : config:config -> root:string -> violation list
(** Lint every [.ml] under [config.scan_dirs] (pruning [exclude_dirs]) and
    check [.mli] parity. *)

val check_mli_parity : config:config -> root:string -> violation list

val pp_violation : Format.formatter -> violation -> unit
val to_string : violation -> string

val to_github : violation -> string
(** The violation as a GitHub Actions [::error] workflow command, so a CI
    run annotates the offending source line in the diff view. *)
