(** Compile [@sds.model]-annotated regions of the real sources into
    {!Interleave} statement lists.

    Mark a region in place — on a binding or on an expression:

    {[
      let[@sds.model "park-notify/notifier"] notify t = ...
      (begin ... end [@sds.model "ring-publication/producer"])
    ]}

    and {!extract} parses the file with compiler-libs (no build context,
    like {!Lint}) and translates the region's shared-memory skeleton under
    a per-model {!spec}: atomic ops on mapped record fields become the
    DSL's atomic ops, classified plain field accesses become plain ops or
    vanish, calls resolve through {!rule}s or inline other annotated
    bindings, wait loops become [Block_until], and data values abstract to
    unit steps.  Anything unclassified raises {!Error} — the drift
    tripwire `sdmodel check` surfaces in CI.  See
    [docs/static-analysis.md]. *)

exception Error of string

(** Translated value of a source expression. *)
type value =
  | Vexp of Interleave.exp
  | Vcond of Interleave.cond
  | Vopaque of string
      (** outside the model; an error only if its value is needed *)

type ops = { emit : Interleave.stmt -> unit; fresh : string -> string }

(** How a call (keyed by the function name's last component) translates. *)
type rule =
  | Ignore  (** effect outside the model: metrics, locks, retry recursion *)
  | Const of int  (** pure call abstracted to a constant *)
  | Arg of int  (** identity on the nth argument: unpack/pack helpers *)
  | Custom of (ops -> value list -> value)
      (** may emit statements and build a value/condition from the
          translated arguments *)

type spec = {
  atomics : (string * string) list;  (** atomic record field → model var *)
  atomic_elide : string list;  (** atomic fields with no model effect *)
  plains : (string * string) list;  (** mutable field → model var *)
  plain_elide : string list;  (** mutable fields dropped (metrics, caches) *)
  ints : (string * int) list;  (** free identifiers → unit-step constants *)
  calls : (string * rule) list;
}

val extract :
  root:string -> files:string list -> spec:spec -> string -> Interleave.stmt list
(** [extract ~root ~files ~spec name] parses [files] (repo-relative under
    [root]), finds the [@sds.model name] region, and translates it.
    Raises {!Error} on a missing region, a parse failure, or any construct
    the spec does not classify. *)

val region_names : root:string -> files:string list -> string list
(** All [@sds.model] names annotated in [files], in source order. *)
