(* Real shared page pool (§4.6): one Bigarray both endpoints of a channel
   can address, carved into 4 KiB pages, so a "remap" is a descriptor
   handoff instead of a payload blit.

   Ownership is a per-page refcount.  The sender allocates (rc := 1),
   fills the page, and publishes a descriptor on the ring; publication is
   the ownership transfer — the sender never touches the page again, the
   receiver releases it after consuming.  Sharing (e.g. multicast or COW
   views) goes through [incref].

   Refcounts are SC atomics, one cell per page, with keep-alive spacer
   allocations between neighbours so two pages' refcounts never share a
   cache line (same padding idiom as the ring's prod/cons records).

   Allocation is contention-free in steady state: each domain holds a
   [handle] with a private free-list cache and moves pages to/from the
   mutex-protected global stack only in batches of [batch]. *)

module Obs = Sds_obs.Obs

let page_size = 4096
let default_pages = 8192
let batch = 64
let cache_cap = 2 * batch

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* ---- metrics (registered once; cheap sharded cells) -------------------- *)

let m_allocs = Obs.Metrics.counter "pool.allocs"
let m_releases = Obs.Metrics.counter "pool.releases"
let m_refills = Obs.Metrics.counter "pool.refills"
let m_spills = Obs.Metrics.counter "pool.spills"
let m_exhausted = Obs.Metrics.counter "pool.exhausted"
let m_reclaimed = Obs.Metrics.counter "pool.reclaimed_pages"
let g_pages = Obs.Metrics.gauge "pool.pages"
let g_in_use = Obs.Metrics.gauge "pool.pages_in_use"

(* Owner-cell sentinels: [-1] = unowned (free, or allocated without an
   owner id), [-2] = mid-reclamation marker (see [reclaim_owner]). *)
let no_owner = -1
let reclaiming = -2

type handle = {
  pool : t;
  ids : int array;  (* private free-page cache, a stack *)
  mutable top : int;
  mutable owner : int;  (* stamped into pages this handle allocates *)
}

and t = {
  data : buf;
  npages : int;
  rc : int Atomic.t array;
  _rc_pads : int array array;  (* keep-alive: spacers interleaved at build time *)
  owners : int Atomic.t array;  (* per-page owner stamp; crash reclamation *)
  mu : Mutex.t;
  free : int array;  (* global free stack, guarded by [mu] *)
  mutable free_top : int;
  handles : handle option array;  (* slots, guarded by [mu]; read racily by [occupancy] *)
  mutable nhandles : int;
  mutable dls : handle Domain.DLS.key option;  (* set once at [create] *)
}

let max_handles = 64

(* Live-pool registry for the flight recorder (weak, so observability never
   extends a pool's lifetime — same discipline as the ring's registry). *)
let live_mu = Mutex.create ()
let live : t Weak.t ref = ref (Weak.create 8)

let register_live t =
  Mutex.lock live_mu;
  let w = !live in
  let n = Weak.length w in
  let rec free_slot i = if i >= n then -1 else if Weak.check w i then free_slot (i + 1) else i in
  (match free_slot 0 with
  | slot when slot >= 0 -> Weak.set w slot (Some t)
  | _ ->
    let bigger = Weak.create (2 * n) in
    for i = 0 to n - 1 do
      Weak.set bigger i (Weak.get w i)
    done;
    Weak.set bigger n (Some t);
    live := bigger);
  Mutex.unlock live_mu

let create ?(pages = default_pages) () =
  if pages <= 0 then invalid_arg "Pagepool.create: pages must be positive";
  let data = Bigarray.Array1.create Bigarray.char Bigarray.c_layout (pages * page_size) in
  let rc = Array.make pages (Atomic.make 0) in
  let pads = Array.make pages [||] in
  for i = 0 to pages - 1 do
    rc.(i) <- Atomic.make 0;
    (* 7 words of spacer between successive refcount cells *)
    pads.(i) <- Array.make 7 0
  done;
  Obs.Metrics.gauge_add g_pages pages;
  let owners = Array.make pages (Atomic.make no_owner) in
  for i = 0 to pages - 1 do
    owners.(i) <- Atomic.make no_owner
  done;
  let t =
    {
      data;
      npages = pages;
      rc;
      _rc_pads = pads;
      owners;
      mu = Mutex.create ();
      free = Array.init pages (fun i -> pages - 1 - i);
      free_top = pages;
      handles = Array.make max_handles None;
      nhandles = 0;
      dls = None;
    }
  in
  register_live t;
  t

let pages t = t.npages
let buffer t = t.data
let page_base page = page * page_size

let handle t =
  Mutex.lock t.mu;
  if t.nhandles >= max_handles then begin
    Mutex.unlock t.mu;
    invalid_arg "Pagepool.handle: too many handles"
  end;
  let h = { pool = t; ids = Array.make cache_cap 0; top = 0; owner = no_owner } in
  t.handles.(t.nhandles) <- Some h;
  t.nhandles <- t.nhandles + 1;
  Mutex.unlock t.mu;
  h

(* The calling domain's handle, created on first use.  The sim runs many
   processes on one domain — they share one handle, which is exactly the
   single-owner condition (one OS thread). *)
let domain_handle t =
  match t.dls with
  | Some key -> Domain.DLS.get key
  | None ->
    Mutex.lock t.mu;
    (match t.dls with
    | Some _ -> ()
    | None -> t.dls <- Some (Domain.DLS.new_key (fun () -> handle t)));
    Mutex.unlock t.mu;
    (match t.dls with
    | Some key -> Domain.DLS.get key
    | None -> assert false)

(* ---- free-list movement ------------------------------------------------ *)

(* Pull up to [batch] pages from the global stack into [h]; cold path. *)
let refill h =
  let t = h.pool in
  Mutex.lock t.mu;
  let k = if t.free_top < batch then t.free_top else batch in
  for _ = 1 to k do
    t.free_top <- t.free_top - 1;
    h.ids.(h.top) <- t.free.(t.free_top);
    h.top <- h.top + 1
  done;
  Mutex.unlock t.mu;
  if k > 0 then Obs.Metrics.incr m_refills;
  k

(* Push [batch] pages back to the global stack; cold path. *)
let spill h =
  let t = h.pool in
  Mutex.lock t.mu;
  for _ = 1 to batch do
    h.top <- h.top - 1;
    t.free.(t.free_top) <- h.ids.(h.top);
    t.free_top <- t.free_top + 1
  done;
  Mutex.unlock t.mu;
  Obs.Metrics.incr m_spills

(* ---- allocate / release / share ---------------------------------------- *)

let no_page = -1

(* Stamp the handle with a crash-recovery owner id (an [Rt_dom] slot).
   Pages allocated through a stamped handle carry the id in their owner
   cell until the last release, so [reclaim_owner] can find them if the
   owner dies mid-flight. *)
let set_owner h owner =
  if owner < 0 then invalid_arg "Pagepool.set_owner: negative owner";
  if h.owner <> owner then h.owner <- owner

let[@sds.hot] alloc h =
  if h.top = 0 && refill h = 0 then begin
    Obs.Metrics.incr m_exhausted;
    no_page
  end
  else begin
    h.top <- h.top - 1;
    let page = Array.unsafe_get h.ids h.top in
    Atomic.set h.pool.rc.(page) 1;
    (* Owner stamp after rc: the page only matters to a reclaimer once
       rc > 0, and the reclaimer re-checks rc after winning the owner
       cell, so the two plain-ordered stores cannot leak a page. *)
    Atomic.set h.pool.owners.(page) h.owner;
    Obs.Metrics.incr m_allocs;
    Obs.Metrics.gauge_add g_in_use 1;
    page
  end

let check_page t page name =
  if page < 0 || page >= t.npages then invalid_arg name

let incref t page =
  check_page t page "Pagepool.incref: bad page id";
  let old = Atomic.fetch_and_add t.rc.(page) 1 in
  if old <= 0 then begin
    ignore (Atomic.fetch_and_add t.rc.(page) (-1));
    invalid_arg "Pagepool.incref: page is free"
  end

let refcount t page =
  check_page t page "Pagepool.refcount: bad page id";
  Atomic.get t.rc.(page)

(* Drop one reference via a handle; the last release recycles the page into
   the handle's cache (spilling a batch when the cache is full). *)
let[@sds.hot] release h page =
  let t = h.pool in
  check_page t page "Pagepool.release: bad page id";
  let old = Atomic.fetch_and_add t.rc.(page) (-1) in
  if old <= 0 then begin
    ignore (Atomic.fetch_and_add t.rc.(page) 1);
    invalid_arg "Pagepool.release: double release"
  end;
  Obs.Metrics.incr m_releases;
  Obs.Metrics.gauge_add g_in_use (-1);
  if old = 1 then begin
    (* Clear the owner stamp *before* recycling, so a page sitting in a
       cache with rc = 0 can never match a dead owner and be pushed to
       the global free stack a second time by [reclaim_owner]. *)
    Atomic.set t.owners.(page) no_owner;
    if h.top = cache_cap then spill h;
    Array.unsafe_set h.ids h.top page;
    h.top <- h.top + 1
  end

(* Handle-free release for callers without a cache (cleanup paths, foreign
   pools); always goes through the global stack. *)
let release_global t page =
  check_page t page "Pagepool.release: bad page id";
  let old = Atomic.fetch_and_add t.rc.(page) (-1) in
  if old <= 0 then begin
    ignore (Atomic.fetch_and_add t.rc.(page) 1);
    invalid_arg "Pagepool.release: double release"
  end;
  Obs.Metrics.incr m_releases;
  Obs.Metrics.gauge_add g_in_use (-1);
  if old = 1 then begin
    Atomic.set t.owners.(page) no_owner;
    Mutex.lock t.mu;
    t.free.(t.free_top) <- page;
    t.free_top <- t.free_top + 1;
    Mutex.unlock t.mu
  end

(* ---- crash reclamation (§4.3) ------------------------------------------ *)

let owner t page =
  check_page t page "Pagepool.owner: bad page id";
  let o = Atomic.get t.owners.(page) in
  if o < 0 then no_owner else o

(* Transfer ownership of an in-flight page to [owner] — the receiver side
   of a descriptor handoff calls this before touching the payload, so a
   crash of the *sender* after publication can no longer reclaim the page
   out from under the survivor.  Fails (false) iff a reclaimer already
   claimed the page ([reclaiming] marker) or the page is free. *)
let try_adopt t ~page ~owner =
  if owner < 0 then invalid_arg "Pagepool.try_adopt: negative owner";
  check_page t page "Pagepool.try_adopt: bad page id";
  let rec go () =
    let o = Atomic.get t.owners.(page) in
    if o = reclaiming then false
    else if Atomic.get t.rc.(page) <= 0 then false
    else if o = owner then true
    else if Atomic.compare_and_set t.owners.(page) o owner then true
    else go ()
  in
  go ()

(* Every page still stamped with [owner] (racy snapshot, debugging aid). *)
let owned_pages t ~owner =
  if owner < 0 then invalid_arg "Pagepool.owned_pages: negative owner";
  let out = ref [] in
  for page = t.npages - 1 downto 0 do
    if Atomic.get t.owners.(page) = owner && Atomic.get t.rc.(page) > 0 then
      out := page :: !out
  done;
  !out

(* Force-free every page a dead owner still holds.  Races against
   survivors adopting in-flight pages: the owner-cell CAS to the
   [reclaiming] marker is the arbitration — exactly one of adopter and
   reclaimer wins each page.  The rc exchange (not decrement) forgets any
   extra refs the dead incarnation held via [incref]; survivors must have
   adopted before taking their own ref.  Idempotent: a second call finds
   no pages stamped with [owner].  Returns the number of pages freed. *)
let reclaim_owner t ~owner =
  if owner < 0 then invalid_arg "Pagepool.reclaim_owner: negative owner";
  let freed = ref 0 in
  for page = 0 to t.npages - 1 do
    if
      Atomic.get t.owners.(page) = owner
      && Atomic.compare_and_set t.owners.(page) owner reclaiming
    then begin
      let rc = Atomic.exchange t.rc.(page) 0 in
      if rc > 0 then begin
        incr freed;
        Obs.Metrics.incr m_reclaimed;
        Obs.Metrics.gauge_add g_in_use (-1);
        Mutex.lock t.mu;
        t.free.(t.free_top) <- page;
        t.free_top <- t.free_top + 1;
        Mutex.unlock t.mu
      end;
      Atomic.set t.owners.(page) no_owner
    end
  done;
  !freed

(* ---- occupancy --------------------------------------------------------- *)

(* Approximate free-page count: the global stack depth plus every handle's
   cache depth, read without locks.  Each addend is single-writer, so the
   worst case is a slightly stale sum — fine for a pressure signal. *)
let free_pages t =
  let n = ref t.free_top in
  for i = 0 to max_handles - 1 do
    match t.handles.(i) with Some h -> n := !n + h.top | None -> ()
  done;
  if !n < 0 then 0 else if !n > t.npages then t.npages else !n

let occupancy t =
  float_of_int (t.npages - free_pages t) /. float_of_int t.npages

(* Flight-recorder state provider: occupancy of every live pool. *)
let () =
  Sds_obs.Flight.register_state "pagepool" (fun () ->
      let b = Buffer.create 128 in
      Mutex.lock live_mu;
      let w = !live in
      for i = 0 to Weak.length w - 1 do
        match Weak.get w i with
        | Some p ->
          Buffer.add_string b
            (Printf.sprintf "pool=%d pages=%d free=%d handles=%d occupancy=%.3f\n" i p.npages
               (free_pages p) p.nhandles (occupancy p))
        | None -> ()
      done;
      Mutex.unlock live_mu;
      Buffer.contents b)

(* ---- data access ------------------------------------------------------- *)

let check_live t page name =
  check_page t page name;
  if Atomic.get t.rc.(page) <= 0 then
    invalid_arg (name ^ ": use after release")

(* Zero-copy view of [len] bytes at [off] inside [page]; the caller must
   hold a reference for the lifetime of the slice. *)
let slice t ~page ~off ~len =
  check_live t page "Pagepool.slice";
  if off < 0 || len < 0 || off + len > page_size then
    invalid_arg "Pagepool.slice: bad range";
  Bigarray.Array1.sub t.data ((page * page_size) + off) len

(* Staging blits, bytewise: the stdlib has no Bytes<->Bigarray blit, and
   these only run on the copy-in/copy-out edges of the remap path (the hot
   descriptor handoff itself moves no payload bytes). *)

let[@sds.hot] blit_from_bytes t ~src ~src_off ~page ~off ~len =
  check_live t page "Pagepool.blit_from_bytes";
  if off < 0 || len < 0 || off + len > page_size then
    invalid_arg "Pagepool.blit_from_bytes: bad range";
  if src_off < 0 || src_off + len > Bytes.length src then
    invalid_arg "Pagepool.blit_from_bytes: bad source range";
  let base = (page * page_size) + off in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set t.data (base + i) (Bytes.unsafe_get src (src_off + i))
  done

let[@sds.hot] blit_to_bytes t ~page ~off ~dst ~dst_off ~len =
  check_live t page "Pagepool.blit_to_bytes";
  if off < 0 || len < 0 || off + len > page_size then
    invalid_arg "Pagepool.blit_to_bytes: bad range";
  if dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Pagepool.blit_to_bytes: bad destination range";
  let base = (page * page_size) + off in
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_off + i) (Bigarray.Array1.unsafe_get t.data (base + i))
  done

(* 63-bit int load/store at a byte position, little-endian; used by the
   bench to stamp/checksum page payloads without materialising Bytes.
   Bit 63 is dropped on the round trip (OCaml ints are 63-bit anyway). *)

let[@sds.hot] set_int_le t pos v =
  if pos < 0 || pos + 8 > Bigarray.Array1.dim t.data then
    invalid_arg "Pagepool.set_int_le: out of range";
  for i = 0 to 7 do
    Bigarray.Array1.unsafe_set t.data (pos + i)
      (Char.unsafe_chr ((v asr (8 * i)) land 0xFF))
  done

let[@sds.hot] get_int_le t pos =
  if pos < 0 || pos + 8 > Bigarray.Array1.dim t.data then
    invalid_arg "Pagepool.get_int_le: out of range";
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bigarray.Array1.unsafe_get t.data (pos + i))
  done;
  !v land max_int

(* ---- shared default pool ---------------------------------------------- *)

(* Process-wide pool used by [Shm_chan] unless a channel is given its own;
   sized for the sim workloads (32 MiB). *)
let shared_pool = lazy (create ())
let shared () = Lazy.force shared_pool
