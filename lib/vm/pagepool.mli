(** Real shared page pool (§4.6): a Bigarray both endpoints of a channel
    address directly, carved into 4 KiB pages with padded atomic refcounts.
    Large payloads cross the ring as page descriptors (ownership handoff)
    instead of being blitted.

    Ownership rules:
    - [alloc] returns a page with refcount 1 owned by the caller;
    - publishing a descriptor transfers that reference to the receiver —
      the sender must not touch the page afterwards;
    - the receiver [release]s the page after consuming (or [incref]s first
      to keep a longer-lived view);
    - the last release recycles the page into the releasing handle's local
      free-list cache (batched spill to the shared stack).

    Double release and use-after-release raise [Invalid_argument]. *)

type t

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val page_size : int
(** 4096 bytes. *)

val default_pages : int
val batch : int
(** Pages moved per global spill/refill. *)

val create : ?pages:int -> unit -> t
val pages : t -> int

val shared : unit -> t
(** Process-wide default pool (lazily created with [default_pages] pages);
    used by [Shm_chan] unless a channel is given its own. *)

(** {1 Per-domain allocation handles} *)

type handle
(** A private free-list cache; single-owner, one per domain (or per sim
    process).  Allocation and release through a handle touch the shared
    stack only in batches of [batch]. *)

val handle : t -> handle

val domain_handle : t -> handle
(** The calling domain's handle (Domain.DLS), created on first use — the
    normal way the data path gets one. *)

val no_page : int
(** [-1]: returned by [alloc] on pool exhaustion. *)

val alloc : handle -> int
(** Allocate a page (refcount 1); [no_page] when the pool is exhausted —
    the caller falls back to the inline-copy path. *)

val release : handle -> int -> unit
(** Drop one reference; the last release recycles the page via the handle's
    cache.  Raises on double release. *)

val release_global : t -> int -> unit
(** [release] without a handle (cleanup paths); last release goes through
    the shared stack under the pool mutex. *)

val incref : t -> int -> unit
(** Add a reference to a live page (sharing).  Raises if the page is free. *)

val refcount : t -> int -> int

(** {1 Crash reclamation (§4.3)}

    Each page carries an owner cell stamped at allocation time with the
    allocating handle's owner id (an {!Sds_rt.Rt_dom} slot).  When that
    incarnation dies, [reclaim_owner] force-frees every page it still
    holds; survivors protect in-flight pages they received by [try_adopt]ing
    them before use.  The owner cell CAS is the arbitration — exactly one
    of adopter and reclaimer wins each page. *)

val no_owner : int
(** [-1]: the unowned stamp (free pages, or handles never given an id). *)

val set_owner : handle -> int -> unit
(** Stamp [handle] so its future allocations carry this owner id. *)

val owner : t -> int -> int
(** Racy read of a page's owner stamp ([no_owner] if unowned or being
    reclaimed). *)

val try_adopt : t -> page:int -> owner:int -> bool
(** Atomically re-stamp a live page with a new owner.  [false] iff the
    page was already reclaimed (or is free) — the payload must then be
    treated as lost. *)

val owned_pages : t -> owner:int -> int list
(** Racy snapshot of live pages stamped with [owner] (debugging aid). *)

val reclaim_owner : t -> owner:int -> int
(** Force-free every live page still stamped with [owner]; returns the
    count freed (bumping [pool.reclaimed_pages]).  Idempotent; must only
    be called for an owner whose incarnation is dead
    ({!Sds_rt.Rt_dom.alive_at} is false). *)

(** {1 Pressure} *)

val free_pages : t -> int
(** Approximate lock-free count: global stack plus handle caches. *)

val occupancy : t -> float
(** Fraction of pages in use, in [0, 1]; the [Copy_policy] pressure signal. *)

(** {1 Data access} *)

val buffer : t -> buf
val page_base : int -> int
(** Byte offset of a page inside [buffer]. *)

val slice : t -> page:int -> off:int -> len:int -> buf
(** Zero-copy sub-Bigarray view; the caller must hold a reference for the
    slice's lifetime.  Raises on a released page or an out-of-page range. *)

val blit_from_bytes : t -> src:Bytes.t -> src_off:int -> page:int -> off:int -> len:int -> unit
val blit_to_bytes : t -> page:int -> off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit

val set_int_le : t -> int -> int -> unit
(** [set_int_le t pos v]: store [v] little-endian at byte [pos] of the
    pool buffer (63-bit round trip). *)

val get_int_le : t -> int -> int
