(* A libibverbs-flavoured facade over the NIC model.

   The real SocksDirect is written against verbs: protection domains,
   registered memory regions, queue pairs moved through the
   RESET/INIT/RTR/RTS state ladder, work requests posted to send queues and
   completions polled from CQs.  This module exposes that vocabulary so
   code reads like an RDMA application, enforcing the call discipline
   (posting on a non-RTS QP fails, writing through an unregistered or
   read-only MR fails) that the bespoke [Nic] API does not. *)

open Sds_sim
module Obs = Sds_obs.Obs

(* Verbs-facade metrics: the API-call view of the NIC (ops as an RDMA
   application issues them, before NIC batching). *)
let m_mr_regs = Obs.Metrics.counter "verbs.mr_regs"
let m_post_sends = Obs.Metrics.counter "verbs.post_sends"
let m_post_recvs = Obs.Metrics.counter "verbs.post_recvs"
let m_cq_polls = Obs.Metrics.counter "verbs.cq_polls"
let m_cq_completions = Obs.Metrics.counter "verbs.cq_completions"

type access = Local_read | Local_write | Remote_read | Remote_write

type pd = { pd_nic : Nic.nic; pd_id : int; mutable mrs : int }

type mr = {
  mr_pd : pd;
  mr_id : int;
  buf : Bytes.t;
  lkey : int;
  rkey : int;
  mutable access : access list;
  mutable registered : bool;
}

type qp_state = Reset | Init | Rtr | Rts | Error

type qp = {
  vqp_pd : pd;
  mutable raw : Nic.qp option;  (** connected at RTR *)
  mutable state : qp_state;
  send_cq : Nic.cq;
  recv_cq : Nic.cq;
  mutable posted_recvs : mr list;
}

exception Invalid_state of string

let pd_counter = ref 0
let mr_counter = ref 0

(* ibv_alloc_pd *)
let alloc_pd nic =
  incr pd_counter;
  { pd_nic = nic; pd_id = !pd_counter; mrs = 0 }

(* ibv_reg_mr: pins [buf] and hands out local/remote keys.  Registration is
   the slow path (kernel crossing + pinning), as in the real stack. *)
let reg_mr pd buf ~access =
  Proc.sleep_ns (Cost.syscall (Nic.nic_cost pd.pd_nic) + (Bytes.length buf / 4096 * 100));
  Obs.Metrics.incr m_mr_regs;
  incr mr_counter;
  pd.mrs <- pd.mrs + 1;
  { mr_pd = pd; mr_id = !mr_counter; buf; lkey = !mr_counter * 2; rkey = (!mr_counter * 2) + 1;
    access; registered = true }

(* ibv_dereg_mr *)
let dereg_mr mr =
  if not mr.registered then raise (Invalid_state "MR already deregistered");
  mr.registered <- false;
  mr.mr_pd.mrs <- mr.mr_pd.mrs - 1

(* ibv_create_cq *)
let create_cq nic = Nic.create_cq nic

(* ibv_create_qp: starts in RESET. *)
let create_qp pd ~send_cq ~recv_cq =
  { vqp_pd = pd; raw = None; state = Reset; send_cq; recv_cq; posted_recvs = [] }

(* The RESET -> INIT -> RTR -> RTS ladder of ibv_modify_qp.  Connecting to
   the peer happens at RTR, which is when the underlying RC channel is
   wired (the exchange of QPNs/GIDs is the caller's out-of-band job, as
   with real verbs). *)
let modify_qp_init qp =
  if qp.state <> Reset then raise (Invalid_state "modify INIT: not in RESET");
  qp.state <- Init

let modify_qp_rtr qp ~peer =
  if qp.state <> Init then raise (Invalid_state "modify RTR: not in INIT");
  if peer.state <> Init && peer.state <> Rtr then raise (Invalid_state "peer QP not ready");
  (match (qp.raw, peer.raw) with
  | None, None ->
    let a, b =
      Nic.connect_qps ~charge_setup:true qp.vqp_pd.pd_nic peer.vqp_pd.pd_nic ~scq_a:qp.send_cq
        ~rcq_a:qp.recv_cq ~scq_b:peer.send_cq ~rcq_b:peer.recv_cq
    in
    qp.raw <- Some a;
    peer.raw <- Some b
  | _ -> ());
  qp.state <- Rtr

let modify_qp_rts qp =
  if qp.state <> Rtr then raise (Invalid_state "modify RTS: not in RTR");
  qp.state <- Rts

let raw_exn qp =
  match qp.raw with
  | Some r -> r
  | None -> raise (Invalid_state "QP not connected")

let check_mr_read mr =
  if not mr.registered then raise (Invalid_state "MR deregistered");
  if not (List.mem Local_read mr.access) then raise (Invalid_state "MR lacks LOCAL_READ")

(* ibv_post_recv: hand a writable MR to the receive queue (two-sided). *)
let post_recv qp mr =
  if not mr.registered then raise (Invalid_state "MR deregistered");
  if not (List.mem Local_write mr.access) then raise (Invalid_state "recv MR lacks LOCAL_WRITE");
  Obs.Metrics.incr m_post_recvs;
  qp.posted_recvs <- qp.posted_recvs @ [ mr ]

type send_opcode =
  | Rdma_write_with_imm of { imm : int }
  | Send

(* ibv_post_send: one work request over [mr.buf.(off..off+len)].  The remote
   side of an RDMA write must have granted REMOTE_WRITE on some MR — the
   caller attests with [remote_rkey], checked against the registry like a
   real NIC checks rkeys. *)
let rkey_registry : (int, mr) Hashtbl.t = Hashtbl.create 32

let export_rkey mr =
  if not (List.mem Remote_write mr.access) then raise (Invalid_state "MR lacks REMOTE_WRITE");
  Hashtbl.replace rkey_registry mr.rkey mr;
  mr.rkey

let post_send qp ~opcode ~mr ~off ~len ?remote_rkey () =
  if qp.state <> Rts then raise (Invalid_state "post_send: QP not in RTS");
  check_mr_read mr;
  if off < 0 || len < 0 || off + len > Bytes.length mr.buf then
    raise (Invalid_state "post_send: scatter entry out of MR bounds");
  let raw = raw_exn qp in
  Nic.wait_send_capacity raw;
  Obs.Metrics.incr m_post_sends;
  let payload = Msg.data (Bytes.sub mr.buf off len) in
  match opcode with
  | Rdma_write_with_imm { imm } ->
    (match remote_rkey with
    | Some rkey when Hashtbl.mem rkey_registry rkey -> ()
    | _ -> raise (Invalid_state "post_send: invalid rkey for RDMA write"));
    Nic.write_imm raw payload ~imm
  | Send -> Nic.send_2sided raw payload

(* ibv_poll_cq: up to [max] completions. *)
let poll_cq cq ~max =
  Obs.Metrics.incr m_cq_polls;
  let rec take n acc =
    if n = 0 then List.rev acc
    else
      match Nic.cq_poll cq with
      | Some c ->
        Obs.Metrics.incr m_cq_completions;
        take (n - 1) (c :: acc)
      | None -> List.rev acc
  in
  take max []

(* Deliver inbound two-sided messages into posted receive buffers, consuming
   one per message, as the RQ does. *)
let install_recv_handler qp ~on_recv =
  let raw = raw_exn qp in
  Nic.set_remote_sink raw (fun msg ->
      match qp.posted_recvs with
      | [] -> () (* RNR: dropped, a real RC QP would NAK *)
      | mr :: rest ->
        qp.posted_recvs <- rest;
        let b = Msg.to_bytes msg in
        let n = min (Bytes.length b) (Bytes.length mr.buf) in
        Bytes.blit b 0 mr.buf 0 n;
        on_recv mr n)
