(** Messages as carried by the simulated transports.

    A payload is either inline bytes (copied through the ring) or an array
    of zero-copy pages whose addresses ride the ring while the data stays in
    place (§4.3). *)

type payload =
  | Inline of Bytes.t
  | Pages of Sds_vm.Page.t array * int  (** pages, payload length *)
  | Pool of { pool : Sds_vm.Pagepool.t; entries : int array; len : int }
      (** real shared-pool pages: ring-packed descriptors
          ({!Sds_ring.Spsc_ring.desc_entry}) whose references travel with
          the message (§4.6 ownership handoff) *)

type kind =
  | Data
  | Control of string  (** connection management / monitor commands *)

type t = {
  seq : int;
  kind : kind;
  payload : payload;
  mutable sent_at : int;  (** simulated send timestamp, for latency accounting *)
  mutable span_send : int;  (** {!Sds_obs.Span} stamp: API entry (creation) *)
  mutable span_pub : int;  (** span stamp: ring publication *)
  mutable span_vis : int;  (** span stamp: visible to the receiver *)
  mutable span_deq : int;  (** span stamp: receiver dequeue *)
  mutable span_parse : int;  (** span stamp: ring record decoded *)
}

val make : ?kind:kind -> payload -> t
val data : Bytes.t -> t
val data_string : string -> t
val control : string -> t

val payload_len : t -> int
(** Application bytes carried. *)

val ring_len : t -> int
(** Bytes occupied in a ring: inline payload travels in-band, page payloads
    contribute only their 8-byte page addresses. *)

val to_bytes : t -> Bytes.t
(** Materialize the payload (gathers pages for zero-copy messages). *)
