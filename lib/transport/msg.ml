(* Messages as carried by simulated transports.

   The payload is either inline bytes (small messages, copied through the
   ring) or an array of zero-copy pages whose addresses ride the ring while
   the data stays in place (§4.3). *)

type payload =
  | Inline of Bytes.t
  | Pages of Sds_vm.Page.t array * int  (** pages, payload length *)
  | Pool of { pool : Sds_vm.Pagepool.t; entries : int array; len : int }
      (** real shared-pool pages: ring-packed descriptors (§4.6) *)

type kind =
  | Data
  | Control of string  (** connection management / monitor commands *)

type t = {
  seq : int;
  kind : kind;
  payload : payload;
  mutable sent_at : int;  (** simulated send timestamp, for latency accounting *)
  (* Span stamps ([Sds_obs.Span] clock), filled in as the message moves:
     creation (API entry), ring publication, transport visibility, receiver
     dequeue, record decode.  [Libsd.consume] turns them into per-stage
     histogram observations; 0 = never stamped. *)
  mutable span_send : int;
  mutable span_pub : int;
  mutable span_vis : int;
  mutable span_deq : int;
  mutable span_parse : int;
}

let seq_counter = ref 0

let make ?(kind = Data) payload =
  incr seq_counter;
  {
    seq = !seq_counter;
    kind;
    payload;
    sent_at = 0;
    span_send = (if Sds_obs.Span.enabled () then Sds_obs.Span.now () else 0);
    span_pub = 0;
    span_vis = 0;
    span_deq = 0;
    span_parse = 0;
  }

let data bytes = make (Inline bytes)
let data_string s = data (Bytes.of_string s)
let control tag = make ~kind:(Control tag) (Inline Bytes.empty)

let payload_len t =
  match t.payload with
  | Inline b -> Bytes.length b
  | Pages (_, len) -> len
  | Pool { len; _ } -> len

(* Bytes this message occupies in a ring: inline payload travels in-band,
   page payloads contribute only their 8-byte page addresses / descriptors. *)
let ring_len t =
  match t.payload with
  | Inline b -> Bytes.length b
  | Pages (pages, _) -> 8 * Array.length pages
  | Pool { entries; _ } -> 8 * Array.length entries

let to_bytes t =
  match t.payload with
  | Inline b -> b
  | Pages (pages, len) ->
    let b = Bytes.create len in
    let remaining = ref len in
    Array.iteri
      (fun i p ->
        if !remaining > 0 then begin
          let chunk = min Sds_vm.Page.size !remaining in
          Sds_vm.Page.read p ~off:0 ~dst:b ~dst_off:(i * Sds_vm.Page.size) ~len:chunk;
          remaining := !remaining - chunk
        end)
      pages;
    b
  | Pool { pool; entries; len } ->
    (* Copy-out of the shared pool (the receiver's partial-read fallback);
       does not release the pages — the owner does that explicitly. *)
    let b = Bytes.create len in
    let dst_off = ref 0 in
    Array.iter
      (fun e ->
        let n = Sds_ring.Spsc_ring.desc_len e in
        Sds_vm.Pagepool.blit_to_bytes pool
          ~page:(Sds_ring.Spsc_ring.desc_page e)
          ~off:(Sds_ring.Spsc_ring.desc_off e)
          ~dst:b ~dst_off:!dst_off ~len:n;
        dst_off := !dst_off + n)
      entries;
    b
