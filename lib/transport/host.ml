(* A simulated host: CPU cores, one RDMA NIC, a deterministic RNG stream.

   Hosts are the unit of "intra vs inter": two endpoints on the same host
   communicate over SHM, otherwise over the NICs. *)

open Sds_sim

type t = {
  id : int;
  engine : Engine.t;
  cost : Cost.t;
  nic : Nic.nic;
  cores : Cpu.t array;
  rng : Rng.t;
  mutable rdma_capable : bool;
  mutable sds_capable : bool;  (** runs a SocksDirect monitor *)
  (* Per-host state attached by upper layers (kernel instance, monitor
     daemon) without creating dependency cycles. *)
  ext : Sds_het.Hmap.t;
}

let create engine ~cost ~id ?(cores = 16) ?(rdma = true) ~rng () =
  {
    id;
    engine;
    cost;
    nic = Nic.create_nic engine ~cost ~host_id:id;
    cores = Array.init cores (fun i -> Cpu.create engine ~id:i ~cost);
    rng = Rng.split rng;
    rdma_capable = rdma;
    sds_capable = true;
    ext = Sds_het.Hmap.create ();
  }

(* Typed accessors for per-host extension state, backed by the shared
   het-map (typed keys instead of the old string-plus-[Obj] convention). *)
let find_ext t key = Sds_het.Hmap.find t.ext key
let set_ext t key v = Sds_het.Hmap.set t.ext key v
let get_ext_or t key ~create = Sds_het.Hmap.find_or t.ext key ~create:(fun () -> create t)

let id t = t.id
let nic t = t.nic
let core t i = t.cores.(i mod Array.length t.cores)
let num_cores t = Array.length t.cores
let same_host a b = a.id = b.id
