(* The per-socket ring channel (§4.2), in both transport flavours.

   One Spsc_ring carries the receiver's copy of the ring; the sender's copy
   is the same object in simulation (a single memory), with visibility
   delayed by the transport:

   - [Shm]: cache-coherence hardware is the synchronization; a message
     becomes visible one cache-line migration after the enqueue.
   - [Rdma qp]: the sender's enqueue is synchronized to the receiver's copy
     by a one-sided WRITE-with-immediate on [qp]; visibility happens when
     the NIC commits the write (which the NIC model orders strictly, even
     under loss and retransmission), exactly the "completion after data"
     guarantee §4.2 relies on.

   Inline payloads move through the ring for real; zero-copy messages put
   only their page addresses in-band.  Flow control is the ring's credit
   scheme: the sender spends ring credits per enqueue, and the receiver's
   batched half-ring credit return travels back over the same transport
   (one cache migration, or one RDMA write).

   Time accounting: the sender pays the per-message ring bookkeeping plus
   the app-to-ring copy for inline payloads; the receiver pays the
   ring-to-app copy on dequeue. *)

open Sds_sim
module Obs = Sds_obs.Obs

(* Channel-layer metrics: counters are sharded adds, the delivery histogram
   records sim-clock nanoseconds from enqueue to receiver dequeue. *)
let m_sends = Obs.Metrics.counter "shm.sends"
let m_send_bytes = Obs.Metrics.counter "shm.send_bytes"
let m_recvs = Obs.Metrics.counter "shm.recvs"
let m_recv_bytes = Obs.Metrics.counter "shm.recv_bytes"
let m_scratch_grows = Obs.Metrics.counter "shm.scratch_grows"
let h_delivery = Obs.Metrics.histogram "shm.delivery_ns"

(* The receiver's polling↔interrupt mode lives in an [Sds_notify.Policy] —
   the same state machine the real cross-domain waiter runs — created
   non-adaptive so the simulator's fixed polling budget stays exactly the
   paper's (and results stay deterministic). *)
type mode = Sds_notify.Policy.mode = Polling | Interrupt

type via =
  | Shm
  | Rdma of Nic.qp

type t = {
  engine : Engine.t;
  cost : Cost.t;
  via : via;
  ring : Sds_ring.Spsc_ring.t;
  pool : Sds_vm.Pagepool.t option;
      (** shared page pool both endpoints address; [None] disables the
          descriptor (zero-copy) path on this channel *)
  mutable desc_scratch : int array;  (** reused descriptor dequeue target *)
  descs : Msg.t Queue.t;  (** messages visible to the receiver *)
  mutable visible : int;
  rx_waitq : Waitq.t;
  tx_waitq : Waitq.t;  (** signalled when credits return *)
  rx_policy : Sds_notify.Policy.t;  (** receiver mode state machine (§4.4) *)
  mutable on_interrupt_write : (t -> unit) option;
  mutable deliver_hooks : (unit -> unit) list;  (** fired on every delivery (epoll) *)
  mutable sent : int;
  mutable received : int;
  mutable scratch : Bytes.t;  (** reused dequeue target — no per-recv allocation *)
  (* Secret token guarding the queue: only holders may attach (§3). *)
  token : int;
}

let token_counter = ref 0

let make engine ~cost ~via ~ring_size ~pool =
  incr token_counter;
  {
    engine;
    cost;
    via;
    ring = Sds_ring.Spsc_ring.create ~size:ring_size ();
    pool;
    desc_scratch = Array.make 64 0;
    descs = Queue.create ();
    visible = 0;
    rx_waitq = Waitq.create ();
    tx_waitq = Waitq.create ();
    rx_policy = Sds_notify.Policy.create ~adaptive:false ~backoff_rounds:0 ~budget:0 ();
    on_interrupt_write = None;
    deliver_hooks = [];
    sent = 0;
    received = 0;
    scratch = Bytes.create 256;
    token = !token_counter;
  }

(* Commit one message at the receiver: it becomes visible, waiters and
   epoll hooks fire, and interrupt-mode receivers get their monitor relay. *)
let commit t msg =
  (* Span stamp: the message is now visible to the receiver (one cache
     migration or a NIC commit after publication). *)
  msg.Msg.span_vis <- Sds_obs.Span.now ();
  Queue.push msg t.descs;
  t.visible <- t.visible + 1;
  Waitq.signal t.rx_waitq;
  List.iter (fun f -> f ()) t.deliver_hooks;
  match (Sds_notify.Policy.mode t.rx_policy, t.on_interrupt_write) with
  | Interrupt, Some hook -> hook t
  | (Polling | Interrupt), _ -> ()

(* Intra-host channels share the process-wide page pool by default — that
   is what makes the descriptor handoff a remap rather than a copy. *)
let create engine ~cost ?(ring_size = 64 * 1024) ?pool () =
  let pool =
    match pool with Some _ -> pool | None -> Some (Sds_vm.Pagepool.shared ())
  in
  make engine ~cost ~via:Shm ~ring_size ~pool

(* The inter-host flavour: enqueues are synchronized to the peer through
   [qp]; this installs the QP's remote sink.  No shared pool — large
   payloads use the RDMA zero-copy path ([Msg.Pages]). *)
let create_rdma engine ~cost ~qp ?(ring_size = 64 * 1024) () =
  let t = make engine ~cost ~via:(Rdma qp) ~ring_size ~pool:None in
  (* Writes fired on [qp] must commit into THIS channel at the remote end. *)
  Nic.on_commit qp (fun msg -> commit t msg);
  t

let token t = t.token
let via t = t.via
let pool t = t.pool
let rx_waitq t = t.rx_waitq
let tx_waitq t = t.tx_waitq
let set_mode t m = Sds_notify.Policy.set_mode t.rx_policy m
let mode t = Sds_notify.Policy.mode t.rx_policy
let rx_policy t = t.rx_policy
let set_interrupt_hook t f = t.on_interrupt_write <- Some f
let add_deliver_hook t f = t.deliver_hooks <- f :: t.deliver_hooks
let sent t = t.sent
let received t = t.received
let credits t = Sds_ring.Spsc_ring.credits t.ring

let pending t = t.visible

type send_result = Sent | Full

(* The bytes a message contributes in-band: the inline payload itself, or
   the serialized obfuscated page addresses for zero-copy messages. *)
let ring_payload msg =
  match msg.Msg.payload with
  | Msg.Inline b -> b
  | Msg.Pages (pages, _) ->
    let b = Bytes.create (8 * Array.length pages) in
    Array.iteri
      (fun i p -> Bytes.set_int64_le b (i * 8) (Int64.of_int (Sds_vm.Page.obfuscated_address p)))
      pages;
    b
  | Msg.Pool _ ->
    (* Pool payloads never serialize: they enqueue as descriptor records. *)
    assert false

(* Per-message bookkeeping once the enqueue has succeeded: timestamping,
   sender-side CPU time, and synchronization to the receiver's copy. *)
let after_enqueue t msg =
  msg.Msg.sent_at <- Engine.now t.engine;
  msg.Msg.span_pub <- Sds_obs.Span.now ();
  t.sent <- t.sent + 1;
  Obs.Metrics.incr m_sends;
  Obs.Metrics.add m_send_bytes (Msg.payload_len msg);
  Obs.Trace.emit_n Obs.Trace.Send (Msg.payload_len msg);
  (* Sender-side CPU: ring bookkeeping + inline copy into the ring. *)
  let copy =
    match msg.Msg.payload with
    | Msg.Inline b -> Cost.copy_cost t.cost (Bytes.length b)
    | Msg.Pages _ | Msg.Pool _ -> 0
  in
  Proc.sleep_ns (t.cost.Cost.shm_msg_overhead + copy);
  match t.via with
  | Shm ->
    (* Visibility after one cache-line migration. *)
    Engine.schedule t.engine ~delay:t.cost.Cost.cache_migration (fun () -> commit t msg)
  | Rdma qp ->
    (* One-sided write with immediate syncs the ring delta; the NIC sink
       commits it at the receiver in order. *)
    Nic.write_imm qp msg ~imm:t.token

(* Non-blocking send.  Charges sender-side time, spends ring credits, and
   synchronizes the enqueue to the receiver's copy.  Pool payloads enqueue
   their page descriptors out-of-band ([flag_desc]) — the ownership
   handoff; no payload byte is blitted. *)
let try_send t msg =
  match msg.Msg.payload with
  | Msg.Pool { entries; _ } ->
    if
      not
        (Sds_ring.Spsc_ring.try_enqueue_descs t.ring entries ~n:(Array.length entries))
    then Full
    else begin
      after_enqueue t msg;
      Sent
    end
  | Msg.Inline _ | Msg.Pages _ ->
    let inline_len = Msg.ring_len msg in
    let payload = ring_payload msg in
    if not (Sds_ring.Spsc_ring.try_enqueue t.ring payload ~off:0 ~len:inline_len) then Full
    else begin
      after_enqueue t msg;
      Sent
    end

let is_pool_msg m =
  match m.Msg.payload with Msg.Pool _ -> true | Msg.Inline _ | Msg.Pages _ -> false

(* Vectored send: enqueues the longest prefix of [msgs] the ring credits
   accept through a single batched ring operation (one tail publication, one
   credit spend — §4.2 adaptive batching), then performs the per-message
   bookkeeping for the accepted prefix.  Pool (descriptor) messages publish
   individually — their record format differs — so a mixed list degrades to
   runs of batched inline sends.  Returns how many were sent. *)
let rec try_send_batch t msgs =
  match msgs with
  | [] -> 0
  | m :: rest when is_pool_msg m -> begin
    match try_send t m with
    | Full -> 0
    | Sent -> 1 + try_send_batch t rest
  end
  | _ ->
    let rec span acc l =
      match l with
      | m :: rest when not (is_pool_msg m) -> span (m :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let inline, rest = span [] msgs in
    let srcs =
      Array.of_list (List.map (fun m -> (ring_payload m, 0, Msg.ring_len m)) inline)
    in
    let n = Sds_ring.Spsc_ring.enqueue_batch t.ring srcs in
    List.iteri (fun i m -> if i < n then after_enqueue t m) inline;
    match rest with
    | [] -> n
    | _ -> if n = Array.length srcs then n + try_send_batch t rest else n

(* Non-blocking receive.  Charges receiver-side time; posts batched credit
   returns back to the sender over the same transport. *)
let try_recv t =
  if t.visible = 0 then None
  else begin
    let msg = Queue.pop t.descs in
    msg.Msg.span_deq <- Sds_obs.Span.now ();
    t.visible <- t.visible - 1;
    (* Drain the ring record straight into the reusable scratch buffer: one
       ring-to-app copy, no per-recv allocation (the scratch only grows, to
       the largest in-band record seen on this channel). *)
    let peeked = Sds_ring.Spsc_ring.peek_packed t.ring in
    assert (peeked <> Sds_ring.Spsc_ring.no_msg) (* desc and ring move in lock step *);
    let len = Sds_ring.Spsc_ring.packed_len peeked in
    let got =
      if Sds_ring.Spsc_ring.is_desc_packed peeked then begin
        (* Descriptor record: pull the page descriptors out-of-band; the
           payload bytes never touch the ring or the scratch buffer. *)
        if 8 * Array.length t.desc_scratch < len then
          t.desc_scratch <- Array.make ((len + 7) / 8) 0;
        Sds_ring.Spsc_ring.try_dequeue_descs t.ring ~entries:t.desc_scratch
      end
      else begin
        (* Drain the ring record straight into the reusable scratch buffer:
           one ring-to-app copy, no per-recv allocation (the scratch only
           grows, to the largest in-band record seen on this channel). *)
        if Bytes.length t.scratch < len then begin
          t.scratch <- Bytes.create (max len (2 * Bytes.length t.scratch));
          Obs.Metrics.incr m_scratch_grows;
          Obs.Trace.emit_n Obs.Trace.Scratch_grow (Bytes.length t.scratch)
        end;
        Sds_ring.Spsc_ring.try_dequeue_packed t.ring ~dst:t.scratch ~dst_off:0
      end
    in
    assert (Sds_ring.Spsc_ring.packed_len got = Msg.ring_len msg);
    msg.Msg.span_parse <- Sds_obs.Span.now ();
    t.received <- t.received + 1;
    Obs.Metrics.incr m_recvs;
    Obs.Metrics.add m_recv_bytes (Msg.payload_len msg);
    Obs.Metrics.observe h_delivery (Engine.now t.engine - msg.Msg.sent_at);
    Obs.Trace.emit_n Obs.Trace.Recv (Msg.payload_len msg);
    let copy =
      match msg.Msg.payload with
      | Msg.Inline b -> Cost.copy_cost t.cost (Bytes.length b)
      | Msg.Pages _ | Msg.Pool _ -> 0
    in
    Proc.sleep_ns (t.cost.Cost.shm_msg_overhead + copy);
    let credit = Sds_ring.Spsc_ring.take_credit_return t.ring in
    if credit > 0 then begin
      let return_delay =
        match t.via with
        | Shm -> t.cost.Cost.cache_migration
        | Rdma _ -> t.cost.Cost.doorbell_dma_sd + t.cost.Cost.nic_wire
      in
      Engine.schedule t.engine ~delay:return_delay (fun () ->
          Sds_ring.Spsc_ring.return_credits t.ring credit;
          Waitq.broadcast t.tx_waitq)
    end;
    Some msg
  end
