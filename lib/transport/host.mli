(** A simulated host: CPU cores, one RDMA NIC, a deterministic RNG stream.

    Hosts are the unit of "intra vs inter": endpoints on the same host
    communicate over SHM, otherwise over the NICs. *)

open Sds_sim

type t = {
  id : int;
  engine : Engine.t;
  cost : Cost.t;
  nic : Nic.nic;
  cores : Cpu.t array;
  rng : Rng.t;
  mutable rdma_capable : bool;
  mutable sds_capable : bool;  (** runs a SocksDirect monitor *)
  ext : Sds_het.Hmap.t;
      (** per-host state attached by upper layers (kernel, monitor) *)
}

val create :
  Engine.t -> cost:Cost.t -> id:int -> ?cores:int -> ?rdma:bool -> rng:Rng.t -> unit -> t

val id : t -> int
val nic : t -> Nic.nic

val core : t -> int -> Cpu.t
(** [core t i] wraps around when [i >= num_cores t]. *)

val num_cores : t -> int
val same_host : t -> t -> bool

(** Typed accessors for per-host extension state.  Keys are minted with
    [Sds_het.Hmap.create_key] at module-initialization time; the key's type
    parameter makes each binding type-safe (no casts, no conventions). *)

val find_ext : t -> 'a Sds_het.Hmap.key -> 'a option
val set_ext : t -> 'a Sds_het.Hmap.key -> 'a -> unit
val get_ext_or : t -> 'a Sds_het.Hmap.key -> create:(t -> 'a) -> 'a
