(** The per-socket ring channel (§4.2), in both transport flavours: shared
    memory (visibility = one cache-line migration) and RDMA (visibility =
    the one-sided WRITE-with-immediate commit, strictly ordered by the NIC
    model).  Flow control is the ring's credit scheme with batched half-ring
    returns travelling back over the same transport.

    All data-path functions must run inside a simulated proc. *)

open Sds_sim

type mode = Sds_notify.Policy.mode = Polling | Interrupt

type via =
  | Shm
  | Rdma of Nic.qp

type t

val create : Engine.t -> cost:Cost.t -> ?ring_size:int -> ?pool:Sds_vm.Pagepool.t -> unit -> t
(** Intra-host flavour.  Unless [pool] is given, the channel uses the
    process-wide {!Sds_vm.Pagepool.shared} pool for the §4.6 descriptor
    (zero-copy) path. *)

val create_rdma : Engine.t -> cost:Cost.t -> qp:Nic.qp -> ?ring_size:int -> unit -> t
(** Inter-host flavour; installs [qp]'s remote sink to commit into this
    channel. *)

val token : t -> int
(** The secret marking the queue; non-holders cannot attach (§3). *)

val via : t -> via

val pool : t -> Sds_vm.Pagepool.t option
(** The shared page pool backing this channel's descriptor path; [None] on
    RDMA channels (those use the [Msg.Pages] remap protocol instead). *)

val rx_waitq : t -> Waitq.t
(** Signalled on every delivery. *)

val tx_waitq : t -> Waitq.t
(** Signalled when credits return to the sender. *)

val set_mode : t -> mode -> unit
val mode : t -> mode

val rx_policy : t -> Sds_notify.Policy.t
(** The receiver's polling↔interrupt state machine — the same
    implementation the real cross-domain waiter runs. *)

val set_interrupt_hook : t -> (t -> unit) -> unit
(** Called on delivery while the receiver is in interrupt mode — the
    sender-side "notify the monitor" trigger of §4.4. *)

val add_deliver_hook : t -> (unit -> unit) -> unit
(** Called on every delivery (epoll notification). *)

val sent : t -> int
val received : t -> int

val credits : t -> int
(** Sender-side view of free ring bytes. *)

val pending : t -> int
(** Messages committed but not yet received. *)

type send_result = Sent | Full

val try_send : t -> Msg.t -> send_result
(** Non-blocking; [Full] when the sender lacks ring credits.  A
    [Msg.Pool] payload enqueues its page descriptors out-of-band
    ([Spsc_ring.flag_desc]) — ownership handoff, no payload blit. *)

val try_send_batch : t -> Msg.t list -> int
(** Vectored send: enqueues the longest prefix the ring credits accept in
    one batched ring operation (single tail publication / credit spend);
    returns how many messages were sent. *)

val try_recv : t -> Msg.t option
(** Non-blocking; posts batched credit returns to the sender. *)
