(* RDMA NIC model: reliable-connection queue pairs, one-sided WRITE /
   WRITE-with-immediate, two-sided SEND/RECV, completion queues (shareable
   across QPs, §4.2 "amortize polling overhead"), bounded send queues with
   adaptive batching, an on-NIC QP-state cache with miss penalty (§6), and
   egress-link serialization at 100 Gbps.

   Latency decomposition per the paper's Table 4: doorbell+DMA on the send
   side, wire serialization per byte, NIC processing + propagation, and for
   two-sided verbs an extra receive-side DMA. *)

open Sds_sim
module Obs = Sds_obs.Obs

(* NIC-layer metrics; wire bytes are simulated payload bytes per tx op. *)
let m_tx_ops = Obs.Metrics.counter "nic.tx_ops"
let m_tx_msgs = Obs.Metrics.counter "nic.tx_msgs"
let m_tx_bytes = Obs.Metrics.counter "nic.tx_bytes"
let m_cache_misses = Obs.Metrics.counter "nic.cache_misses"
let m_retransmits = Obs.Metrics.counter "nic.retransmits"
let m_completions = Obs.Metrics.counter "nic.completions"
let m_qps_created = Obs.Metrics.counter "nic.qps_created"
let m_hairpins = Obs.Metrics.counter "nic.hairpins"
let m_batched_flushes = Obs.Metrics.counter "nic.batched_flushes"

type completion = {
  qp_id : int;
  wr_id : int;
  imm : int option;
  msg : Msg.t option;  (** delivered message for receive completions *)
}

type recovery = Go_back_n | Selective

type nic = {
  engine : Engine.t;
  cost : Cost.t;
  host_id : int;
  mutable live_qps : int;
  mutable egress_free_at : int;
  mutable tx_ops : int;
  mutable tx_msgs : int;
  mutable tx_bytes : int;
  mutable cache_misses : int;
  (* Lossy-fabric model (§4.2 / §6 transport discussion): wire drops with
     probability loss_ppm/1e6; recovery either replays everything in flight
     (go-back-N) or just the lost WQE (selective retransmission). *)
  mutable loss_ppm : int;
  mutable recovery : recovery;
  mutable rto_ns : int;
  mutable loss_rng : Rng.t option;
  mutable retransmits : int;
}

type cq = {
  cq_nic : nic;
  events : completion Queue.t;
  cq_waitq : Waitq.t;
}

type qp = {
  id : int;
  nic : nic;
  cost : Cost.t;
  scq : cq;
  rcq : cq;
  mutable peer : qp option;
  mutable inflight : int;
  max_inflight : int;
  pending : (Msg.t * int option) Queue.t;  (** batched unsent (msg, imm) *)
  mutable remote_sink : (Msg.t -> unit) option;
      (** what a remote-memory write means at the receiver (e.g. commit into
          the receiver's ring copy) *)
  mutable wr_counter : int;
  mutable batched_flushes : int;
  mutable batch : bool;
      (** merge pending sends into one WQE on completion (the §4.2 adaptive
          batching); plain RDMA users post one WQE per message *)
  mutable tx_free_at : int;  (** per-QP WQE processing spacing *)
  send_wq : Waitq.t;  (** signalled per send completion (send-queue space) *)
  (* RC in-order delivery under retransmission: WQEs commit at the receiver
     strictly in sequence; late arrivals park in the stash. *)
  mutable tx_seq : int;
  mutable commit_expected : int;
  commit_stash : (int, unit -> unit) Hashtbl.t;
  (* Per-QP egress shaping — the "QoS offloaded to the NIC" row of
     Table 3.  None = unshaped. *)
  mutable rate_limit : Resource.token_bucket option;
}

let qp_counter = ref 0

let create_nic engine ~cost ~host_id =
  { engine; cost; host_id; live_qps = 0; egress_free_at = 0; tx_ops = 0; tx_msgs = 0;
    tx_bytes = 0; cache_misses = 0; loss_ppm = 0; recovery = Go_back_n; rto_ns = 16_000;
    loss_rng = None; retransmits = 0 }

(* Configure the lossy-fabric model on this NIC's egress. *)
let set_loss (nic : nic) ~ppm ~recovery ~seed =
  nic.loss_ppm <- ppm;
  nic.recovery <- recovery;
  nic.loss_rng <- Some (Rng.create ~seed)

let retransmits (nic : nic) = nic.retransmits
let nic_cost (nic : nic) = nic.cost

let create_cq nic = { cq_nic = nic; events = Queue.create (); cq_waitq = Waitq.create () }

let cq_waitq cq = cq.cq_waitq
let cq_pending cq = Queue.length cq.events
let cq_poll cq = Queue.take_opt cq.events

let post_completion cq c =
  Obs.Metrics.incr m_completions;
  Queue.push c cq.events;
  Waitq.signal cq.cq_waitq

(* QP-state cache: with more live QPs than on-NIC cache entries, each
   operation pays an expected miss penalty proportional to the overflow. *)
let cache_penalty (nic : nic) =
  let entries = nic.cost.Cost.nic_qp_cache_entries in
  if nic.live_qps <= entries then 0
  else begin
    nic.cache_misses <- nic.cache_misses + 1;
    Obs.Metrics.incr m_cache_misses;
    nic.cost.Cost.nic_qp_cache_miss * (nic.live_qps - entries) / nic.live_qps
  end

(* Serialize [bytes] onto the egress link; returns the added queueing +
   serialization delay.  Two rate limits apply: a per-QP WQE processing gap
   (~13 M WQE/s per QP, Table 2's one-sided write rate) and a NIC-global
   per-op gap (~110 M WQE/s aggregate) plus wire serialization.  Adaptive
   batching amortizes both by merging messages into one WQE. *)
let qp_wqe_gap = 75
let nic_wqe_gap = 9

let egress_delay (nic : nic) ~qp_free_at ~bytes =
  let now = Engine.now nic.engine in
  let ser = max (Cost.wire_cost nic.cost bytes) nic_wqe_gap in
  let start = max (max now nic.egress_free_at) !qp_free_at in
  nic.egress_free_at <- start + ser;
  qp_free_at := max (start + ser) (!qp_free_at + qp_wqe_gap);
  (start - now) + ser

(* Create a connected QP pair between two NICs.  The ~30 us libibverbs setup
   cost is charged to the calling proc (connection setup path only). *)
let connect_qps ?(charge_setup = true) nic_a nic_b ~scq_a ~rcq_a ~scq_b ~rcq_b =
  incr qp_counter;
  let a =
    { id = !qp_counter; nic = nic_a; cost = nic_a.cost; scq = scq_a; rcq = rcq_a; peer = None;
      inflight = 0; max_inflight = nic_a.cost.Cost.nic_max_inflight; pending = Queue.create ();
      remote_sink = None; wr_counter = 0; batched_flushes = 0; batch = false; tx_free_at = 0;
      send_wq = Waitq.create (); tx_seq = 0; commit_expected = 0; commit_stash = Hashtbl.create 8;
      rate_limit = None }
  in
  incr qp_counter;
  let b =
    { id = !qp_counter; nic = nic_b; cost = nic_b.cost; scq = scq_b; rcq = rcq_b; peer = None;
      inflight = 0; max_inflight = nic_b.cost.Cost.nic_max_inflight; pending = Queue.create ();
      remote_sink = None; wr_counter = 0; batched_flushes = 0; batch = false; tx_free_at = 0;
      send_wq = Waitq.create (); tx_seq = 0; commit_expected = 0; commit_stash = Hashtbl.create 8;
      rate_limit = None }
  in
  a.peer <- Some b;
  b.peer <- Some a;
  Obs.Metrics.add m_qps_created 2;
  nic_a.live_qps <- nic_a.live_qps + 1;
  nic_b.live_qps <- nic_b.live_qps + 1;
  if charge_setup then Proc.sleep_ns nic_a.cost.Cost.rdma_qp_create;
  (a, b)

let destroy_qp qp =
  (match qp.peer with
  | Some p ->
    p.peer <- None;
    p.nic.live_qps <- max 0 (p.nic.live_qps - 1)
  | None -> ());
  qp.peer <- None;
  qp.nic.live_qps <- max 0 (qp.nic.live_qps - 1)

let set_remote_sink qp f = qp.remote_sink <- Some f

(* Install the remote-commit handler for writes FIRED ON [qp]: the NIC
   dispatches through the peer QP's sink, so this sets it there. *)
let on_commit qp f =
  match qp.peer with
  | Some p -> p.remote_sink <- Some f
  | None -> invalid_arg "Nic.on_commit: QP not connected"

let set_batching qp b = qp.batch <- b

(* Per-QP hardware rate limiter (QoS, Table 3): egress of this QP is shaped
   to [bytes_per_sec] with a [burst_bytes] allowance. *)
let set_rate_limit qp ~bytes_per_sec ~burst_bytes =
  qp.rate_limit <-
    Some
      (Resource.token_bucket qp.nic.engine ~rate_per_sec:bytes_per_sec
         ~burst:(float_of_int burst_bytes))

(* Shaping delay for [bytes] on this QP (0 when unshaped). *)
let shape_delay qp ~bytes =
  match qp.rate_limit with
  | None -> 0
  | Some tb -> Resource.debit tb bytes

(* Block the calling proc until the send queue has a free WQE slot — what a
   verbs user does when ibv_post_send returns ENOMEM. *)
let wait_send_capacity qp =
  while qp.inflight + Queue.length qp.pending >= qp.max_inflight do
    match Waitq.wait qp.send_wq with _ -> ()
  done
let inflight qp = qp.inflight
let batched_flushes qp = qp.batched_flushes

let peer_exn qp =
  match qp.peer with
  | Some p -> p
  | None -> invalid_arg "Nic: QP not connected"

(* Run stashed commits that have become in-order. *)
let rec drain_stash qp =
  match Hashtbl.find_opt qp.commit_stash qp.commit_expected with
  | Some thunk ->
    Hashtbl.remove qp.commit_stash qp.commit_expected;
    thunk ();
    (* thunk advanced commit_expected *)
    drain_stash qp
  | None -> ()

(* Offer WQE [seq]'s commit; RC semantics commit strictly in order. *)
let offer_commit qp ~seq thunk =
  if seq = qp.commit_expected then begin
    thunk ();
    drain_stash qp
  end
  else Hashtbl.replace qp.commit_stash seq thunk

(* Does the fabric eat this transmission? *)
let fabric_drops (nic : nic) =
  match nic.loss_rng with
  | Some rng when nic.loss_ppm > 0 -> Rng.int rng 1_000_000 < nic.loss_ppm
  | _ -> false

(* Fire one RDMA write on the wire carrying [msgs]; total payload [bytes].
   Write-with-immediate generates a receive completion carrying [imm].
   Lost transmissions are replayed after the RTO — everything in flight for
   go-back-N, just this WQE for selective retransmission — and commits stay
   in sequence either way. *)
let rec fire_write qp ~msgs ~bytes =
  let nic = qp.nic in
  nic.tx_msgs <- nic.tx_msgs + List.length msgs;
  Obs.Metrics.add m_tx_msgs (List.length msgs);
  qp.inflight <- qp.inflight + 1;
  let seq = qp.tx_seq in
  qp.tx_seq <- qp.tx_seq + 1;
  let now_sent = Engine.now nic.engine in
  List.iter (fun (m, _) -> m.Msg.sent_at <- now_sent) msgs;
  transmit qp ~seq ~msgs ~bytes

and transmit qp ~seq ~msgs ~bytes =
  let peer = peer_exn qp in
  let nic = qp.nic in
  nic.tx_ops <- nic.tx_ops + 1;
  nic.tx_bytes <- nic.tx_bytes + bytes;
  Obs.Metrics.incr m_tx_ops;
  Obs.Metrics.add m_tx_bytes bytes;
  let dma = qp.cost.Cost.doorbell_dma_sd + cache_penalty nic in
  let qp_free = ref qp.tx_free_at in
  let ser = egress_delay nic ~qp_free_at:qp_free ~bytes in
  qp.tx_free_at <- !qp_free;
  let one_way = shape_delay qp ~bytes + dma + ser + qp.cost.Cost.nic_wire in
  if fabric_drops nic then begin
    nic.retransmits <- nic.retransmits + 1;
    Obs.Metrics.incr m_retransmits;
    (* Go-back-N stalls the pipeline for the replay of everything after the
       hole; model that as an extra per-in-flight-WQE delay. *)
    let penalty =
      match nic.recovery with
      | Go_back_n -> qp.inflight * qp_wqe_gap
      | Selective -> 0
    in
    Engine.schedule nic.engine ~delay:(nic.rto_ns + penalty) (fun () ->
        transmit qp ~seq ~msgs ~bytes)
  end
  else
    Engine.schedule nic.engine ~delay:one_way (fun () ->
        offer_commit qp ~seq (fun () ->
            qp.commit_expected <- qp.commit_expected + 1;
            (* Remote memory commit, then the completion: the completion is
               delivered only after the data is visible (§4.2). *)
            List.iter
              (fun (m, imm) ->
                (match peer.remote_sink with Some sink -> sink m | None -> ());
                match imm with
                | Some imm ->
                  qp.wr_counter <- qp.wr_counter + 1;
                  post_completion peer.rcq
                    { qp_id = peer.id; wr_id = qp.wr_counter; imm = Some imm; msg = Some m }
                | None -> ())
              msgs;
            (* Sender-side completion (ack) after the return half. *)
            Engine.schedule nic.engine ~delay:qp.cost.Cost.nic_wire (fun () ->
                qp.inflight <- qp.inflight - 1;
                qp.wr_counter <- qp.wr_counter + 1;
                post_completion qp.scq { qp_id = qp.id; wr_id = qp.wr_counter; imm = None; msg = None };
                Waitq.signal qp.send_wq;
                (* Adaptive batching: on completion, flush everything unsent
                   as a single RDMA write (§4.2).  Non-batching QPs drain one
                   message per completion, paying a WQE each. *)
                if not (Queue.is_empty qp.pending) && qp.inflight < qp.max_inflight then
                  if qp.batch then begin
                    let batch = List.of_seq (Queue.to_seq qp.pending) in
                    Queue.clear qp.pending;
                    qp.batched_flushes <- qp.batched_flushes + 1;
                    Obs.Metrics.incr m_batched_flushes;
                    let total = List.fold_left (fun acc (m, _) -> acc + Msg.payload_len m) 0 batch in
                    fire_write qp ~msgs:batch ~bytes:total
                  end
                  else begin
                    let m, imm = Queue.pop qp.pending in
                    fire_write qp ~msgs:[ (m, imm) ] ~bytes:(Msg.payload_len m)
                  end)))

(* One-sided write with immediate: the SocksDirect data path.  If the send
   queue is below the in-flight cap the message goes out alone (minimum
   latency on idle links); otherwise it joins the pending batch (maximum
   throughput on busy links). *)
let write_imm qp msg ~imm =
  if qp.inflight < qp.max_inflight then fire_write qp ~msgs:[ (msg, Some imm) ] ~bytes:(Msg.payload_len msg)
  else Queue.push (msg, Some imm) qp.pending

(* Two-sided send (RSocket's wire primitive): extra receive-side DMA. *)
let send_2sided qp msg =
  let peer = peer_exn qp in
  let nic = qp.nic in
  nic.tx_ops <- nic.tx_ops + 1;
  nic.tx_msgs <- nic.tx_msgs + 1;
  let bytes = Msg.payload_len msg in
  nic.tx_bytes <- nic.tx_bytes + bytes;
  Obs.Metrics.incr m_tx_ops;
  Obs.Metrics.incr m_tx_msgs;
  Obs.Metrics.add m_tx_bytes bytes;
  let dma = qp.cost.Cost.doorbell_dma_2sided + cache_penalty nic + shape_delay qp ~bytes in
  let qp_free = ref qp.tx_free_at in
  let ser = egress_delay nic ~qp_free_at:qp_free ~bytes in
  qp.tx_free_at <- !qp_free;
  let one_way = dma + ser + qp.cost.Cost.nic_wire in
  msg.Msg.sent_at <- Engine.now nic.engine;
  Engine.schedule nic.engine ~delay:one_way (fun () ->
      (match peer.remote_sink with Some sink -> sink msg | None -> ());
      qp.wr_counter <- qp.wr_counter + 1;
      post_completion peer.rcq { qp_id = peer.id; wr_id = qp.wr_counter; imm = None; msg = Some msg })

(* NIC hairpin: LibVMA and RSocket forward intra-host traffic through the
   NIC; this is their PCIe round trip (§2.2 / Table 2). *)
let hairpin (nic : nic) msg ~deliver =
  Obs.Metrics.incr m_hairpins;
  let bytes = Msg.payload_len msg in
  (* Table 2's 0.95 us hairpin figure is a round trip; one way is half. *)
  let delay = (nic.cost.Cost.nic_hairpin / 2) + Cost.wire_cost nic.cost bytes in
  msg.Msg.sent_at <- Engine.now nic.engine;
  Engine.schedule nic.engine ~delay (fun () -> deliver msg)

let stats (nic : nic) = (nic.tx_ops, nic.tx_msgs, nic.tx_bytes, nic.cache_misses)
let live_qps (nic : nic) = nic.live_qps
