(** Prefork server harness on real domains: [workers] accept-loop domains
    behind an {!Rt_monitor} listener plus client domains streaming
    [msgs_per_conn] × [payload]-byte messages per connection.  The §4.5.2
    path end to end: round-robin dispatch, idle-worker stealing, token
    handoff, ring + pagepool transport. *)

type stats = {
  workers : int;
  conns : int;
  served : int array;  (** connections each worker accepted *)
  stolen : int array;  (** of those, how many it stole *)
  bytes : int array;  (** payload bytes each worker received *)
  total_bytes : int;
  elapsed_ns : int;
}

val total_served : stats -> int
val total_stolen : stats -> int

val run :
  ?payload:int ->
  ?msgs_per_conn:int ->
  ?conns:int ->
  ?echo:bool ->
  ?burst:int ->
  ?ring_size:int ->
  ?pool_pages:int ->
  ?capacity:int ->
  ?client_domains:int ->
  workers:int ->
  unit ->
  stats
(** Defaults: 64-byte payloads, 1000 msgs/conn, [conns = workers], one
    client domain per worker (capped at [conns]), bursts of 32 small
    messages per token hold.  [echo] switches to per-message ping-pong.
    Total domains spawned: [workers + min conns workers]. *)
