(* Real-domain sockets: the §4.2 per-connection queue pair on actual OCaml
   domains, wired through the existing ring + notify + pagepool stack.

   One connection = two SPSC rings (one per direction) + one staging
   [Pagepool] per direction for the §4.6 descriptor path + four
   [Rt_token]s (a send and a recv token per endpoint).  Small payloads
   travel inline in ring records; payloads >= [zc_threshold] are staged
   into pool pages and cross the ring as page-descriptor records — an
   ownership handoff, no payload byte through the ring.

   Records are stream chunks.  A zero-length record flagged [flag_fin]
   carries EOF.  The receiver returns the ring's batched credits and, on
   descriptor records, releases the pages after landing the payload.

   Every endpoint pair registers in a process-wide registry: the
   [rt_conn] flight-recorder section shows owners, ring occupancy and byte
   counts per connection — the "ring-pair registry per domain pair".

   Crash compatibility (§4.3): both endpoints of a pair share one poison
   flag.  When an involved domain dies ([Rt_dom.on_death] hook below), the
   connection is poisoned and every parked waiter kicked: blocking
   operations on either end raise [Peer_dead] (EPIPE on send, ECONNRESET
   on recv) instead of hanging, and in-flight staging pages of the dead
   incarnation are reclaimed ([Pagepool.reclaim_owner]).  Receivers adopt
   descriptor pages before touching the payload, so reclamation and
   consumption arbitrate through the page's owner cell — exactly one
   wins.  Every blocking park is bounded, so the exit path does not
   depend on any notify arriving. *)

module R = Sds_ring.Spsc_ring
module Pp = Sds_vm.Pagepool
module Waiter = Sds_notify.Waiter
module Batch_ctl = Sds_proto.Batch_ctl
module Obs = Sds_obs.Obs

exception Peer_dead

let flag_fin = 0x200
let max_inline = 8 * 1024

(* §4.6 copy/zero-copy crossover, same resting point as [Copy_policy]. *)
let zc_threshold = 16 * 1024

(* Pages per descriptor record: bounds one record at 32 KiB of payload, so
   receive buffers stay small; larger sends split into several records. *)
let max_desc_per_record = 8

let m_sends = Obs.Metrics.counter "rt.sends"
let m_recvs = Obs.Metrics.counter "rt.recvs"
let m_desc_sends = Obs.Metrics.counter "rt.desc_sends"
let m_pool_fallbacks = Obs.Metrics.counter "rt.pool_fallbacks"
let m_poisoned = Obs.Metrics.counter "rt.poisoned"

type dir = { ring : R.t; pool : Pp.t }

type t = {
  tx : dir;
  rx : dir;
  send_tok : Rt_token.t;
  recv_tok : Rt_token.t;
  batch : Batch_ctl.t;
  stage : int array;  (** send-side descriptor staging, token-guarded *)
  pages : int array;  (** page ids being staged, token-guarded *)
  descs : int array;  (** recv-side descriptor scratch, token-guarded *)
  mutable bytes_sent : int;  (** guarded by [send_tok] *)
  mutable bytes_received : int;  (** guarded by [recv_tok] *)
  mutable fin_rx : bool;  (** guarded by [recv_tok] *)
  mutable fin_tx : bool;  (** guarded by [send_tok] *)
  cid : int;
  peer_slot : int;
  dead : bool Atomic.t;  (** the poison flag, shared by both endpoints *)
  mutable peer : t option;  (** the other endpoint; set by [pair] *)
  mutable op_slot : int;  (** last slot to operate this end (racy; init owner) *)
}

(* ---- connection registry (flight recorder / tests) ---- *)

let reg_mu = Mutex.create ()
let reg : t Weak.t = Weak.create 1024
let cid_counter = ref 0

let register t =
  Mutex.lock reg_mu;
  (try
     let placed = ref false in
     for i = 0 to Weak.length reg - 1 do
       if (not !placed) && Weak.get reg i = None then begin
         Weak.set reg i (Some t);
         placed := true
       end
     done
   with e ->
     Mutex.unlock reg_mu;
     raise e);
  Mutex.unlock reg_mu

let render_conns () =
  let b = Buffer.create 256 in
  Mutex.lock reg_mu;
  for i = 0 to Weak.length reg - 1 do
    match Weak.get reg i with
    | None -> ()
    | Some t ->
      Buffer.add_string b
        (Printf.sprintf
           "conn#%d peer_slot=%d op_slot=%d tx_used=%d rx_used=%d sent=%d received=%d \
            fin_tx=%b fin_rx=%b poisoned=%b\n"
           t.cid t.peer_slot t.op_slot (R.used t.tx.ring) (R.used t.rx.ring) t.bytes_sent
           t.bytes_received t.fin_tx t.fin_rx (Atomic.get t.dead))
  done;
  Mutex.unlock reg_mu;
  Buffer.contents b

let () = Sds_obs.Flight.register_state "rt_conn" render_conns

(* ---- construction ---- *)

let endpoint ~ring_size ~pool_pages ~owner ~peer_slot ~tx_ring ~tx_pool ~rx_ring ~rx_pool
    ~dead =
  ignore ring_size;
  ignore pool_pages;
  incr cid_counter;
  let t =
    {
      tx = { ring = tx_ring; pool = tx_pool };
      rx = { ring = rx_ring; pool = rx_pool };
      send_tok = Rt_token.create ~name:"send" ~holder:owner ();
      recv_tok = Rt_token.create ~name:"recv" ~holder:owner ();
      batch = Batch_ctl.create ();
      stage = Array.make max_desc_per_record 0;
      pages = Array.make max_desc_per_record 0;
      descs = Array.make max_desc_per_record 0;
      bytes_sent = 0;
      bytes_received = 0;
      fin_rx = false;
      fin_tx = false;
      cid = !cid_counter;
      peer_slot;
      dead;
      peer = None;
      op_slot = owner;
    }
  in
  register t;
  t

(* A connected endpoint pair: [a]'s tx ring is [b]'s rx ring and vice
   versa; each direction's staging pool is shared by its sender (alloc +
   blit) and receiver (blit + release). *)
let pair ?(ring_size = 64 * 1024) ?(pool_pages = 512) ~a_owner ~b_owner () =
  let ab = R.create ~size:ring_size () in
  let ba = R.create ~size:ring_size () in
  let pool_ab = Pp.create ~pages:pool_pages () in
  let pool_ba = Pp.create ~pages:pool_pages () in
  let dead = Atomic.make false in
  let a =
    endpoint ~ring_size ~pool_pages ~owner:a_owner ~peer_slot:b_owner ~tx_ring:ab
      ~tx_pool:pool_ab ~rx_ring:ba ~rx_pool:pool_ba ~dead
  in
  let b =
    endpoint ~ring_size ~pool_pages ~owner:b_owner ~peer_slot:a_owner ~tx_ring:ba
      ~tx_pool:pool_ba ~rx_ring:ab ~rx_pool:pool_ab ~dead
  in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)

let bytes_sent t = t.bytes_sent
let bytes_received t = t.bytes_received

(* ---- poison (peer death) ---- *)

let poisoned t = Atomic.get t.dead

(* Declare the connection dead and kick everyone out of their parks: both
   rings' rx/tx waiters and every slot parked on the four tokens.  The
   kicked waiters re-check their (poison-aware) conditions and raise
   [Peer_dead].  Idempotent; the flag is shared, so poisoning either
   endpoint poisons the pair. *)
let poison t =
  if not (Atomic.exchange t.dead true) then Obs.Metrics.incr m_poisoned;
  Waiter.notify (R.rx_waiter t.tx.ring);
  Waiter.notify (R.tx_waiter t.tx.ring);
  Waiter.notify (R.rx_waiter t.rx.ring);
  Waiter.notify (R.tx_waiter t.rx.ring);
  Rt_token.kick t.send_tok;
  Rt_token.kick t.recv_tok;
  match t.peer with
  | Some p ->
    Rt_token.kick p.send_tok;
    Rt_token.kick p.recv_tok
  | None -> ()

let[@inline] check_poison t = if Atomic.get t.dead then raise Peer_dead

(* Bounded poison-aware parks: the ready conditions are the ring's own
   progress conditions *or* poison, and the deadline bounds the silence
   window even if every notify is lost. *)
let park_window_ns = 10_000_000

let wait_tx_p t ~len =
  check_poison t;
  let ring = t.tx.ring in
  let need = R.record_bytes len in
  ignore
    (Waiter.wait_until (R.tx_waiter ring)
       ~deadline_ns:(Sds_obs.Span.now () + park_window_ns)
       ~ready:(fun () -> Atomic.get t.dead || R.credits ring >= need))

let wait_rx_p t =
  check_poison t;
  let ring = t.rx.ring in
  ignore
    (Waiter.wait_until (R.rx_waiter ring)
       ~deadline_ns:(Sds_obs.Span.now () + park_window_ns)
       ~ready:(fun () -> Atomic.get t.dead || not (R.is_empty ring)))

(* ---- send ---- *)

(* Return the ring's batched credits owed by the consumer side. *)
let[@inline] return_pending ring =
  let c = R.take_credit_return ring in
  if c > 0 then R.return_credits ring c

(* Stage [len] bytes from [buf] into pool pages and enqueue them as one
   descriptor record.  False when the pool is exhausted (caller falls back
   to the inline-copy path — the Libra fallback).  Pages are stamped with
   the sending slot so [reclaim_owner] can find them if we die between
   allocation and the receiver's adoption. *)
let send_desc_record t ~dom buf ~off ~len =
  let h = Pp.domain_handle t.tx.pool in
  Pp.set_owner h dom;
  let npages = (len + Pp.page_size - 1) / Pp.page_size in
  let got = ref 0 in
  let ok = ref true in
  while !ok && !got < npages do
    let p = Pp.alloc h in
    if p = Pp.no_page then ok := false
    else begin
      t.pages.(!got) <- p;
      incr got
    end
  done;
  if not !ok then begin
    for i = 0 to !got - 1 do
      Pp.release h t.pages.(i)
    done;
    Obs.Metrics.incr m_pool_fallbacks;
    false
  end
  else begin
    for i = 0 to npages - 1 do
      let chunk_off = i * Pp.page_size in
      let chunk = min Pp.page_size (len - chunk_off) in
      Pp.blit_from_bytes t.tx.pool ~src:buf ~src_off:(off + chunk_off) ~page:t.pages.(i)
        ~off:0 ~len:chunk;
      t.stage.(i) <- R.desc_entry ~page:t.pages.(i) ~off:0 ~len:chunk
    done;
    (* Chaos site: die holding filled, unpublished pages — only
       [reclaim_owner] can get them back. *)
    if Sds_fault.armed () then Sds_fault.inject "rt_sock.holding_pages";
    while not (R.try_enqueue_descs t.tx.ring t.stage ~n:npages) do
      wait_tx_p t ~len:(8 * npages)
    done;
    Obs.Metrics.incr m_desc_sends;
    true
  end

let send_locked t ~dom buf ~off ~len =
  if t.fin_tx then invalid_arg "Rt_sock.send: after close";
  check_poison t;
  let pos = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let sent =
      if !remaining >= zc_threshold then begin
        let chunk = min !remaining (max_desc_per_record * Pp.page_size) in
        if send_desc_record t ~dom buf ~off:!pos ~len:chunk then chunk else 0
      end
      else 0
    in
    let sent =
      if sent > 0 then sent
      else begin
        (* Inline copy path (small payload, or pool exhausted). *)
        let chunk = min !remaining max_inline in
        while not (R.try_enqueue t.tx.ring buf ~off:!pos ~len:chunk) do
          wait_tx_p t ~len:chunk
        done;
        chunk
      end
    in
    pos := !pos + sent;
    remaining := !remaining - sent;
    (* Chaos site: die between the records of one streamed payload. *)
    if !remaining > 0 && Sds_fault.armed () then Sds_fault.inject "rt_sock.mid_publish"
  done;
  t.bytes_sent <- t.bytes_sent + len;
  Obs.Metrics.incr m_sends

let send t ~dom buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then invalid_arg "Rt_sock.send";
  t.op_slot <- dom;
  Rt_token.with_held t.send_tok ~dom (fun () -> send_locked t ~dom buf ~off ~len)

(* Vectored small-message send under one token hold: each enqueue_batch is
   bounded by the shared §4.5 [Batch_ctl] budget; the in-flight batch is
   drained before the operation boundary, where a posted takeover is
   served. *)
let send_burst t ~dom srcs ~n =
  if n < 0 || n > Array.length srcs then invalid_arg "Rt_sock.send_burst";
  t.op_slot <- dom;
  Rt_token.with_held t.send_tok ~dom (fun () ->
      if t.fin_tx then invalid_arg "Rt_sock.send_burst: after close";
      check_poison t;
      let sent = ref 0 in
      let bytes = ref 0 in
      while !sent < n do
        let want = min (Batch_ctl.budget t.batch) (n - !sent) in
        let attempt =
          if !sent = 0 && want = n && want = Array.length srcs then srcs
          else Array.sub srcs !sent want
        in
        let k = R.enqueue_batch t.tx.ring attempt in
        Batch_ctl.observe t.batch ~sent:k ~attempted:want ~pressure:(!sent + want < n);
        if k = 0 then begin
          let _, _, l = srcs.(!sent) in
          wait_tx_p t ~len:l
        end
        else
          for i = !sent to !sent + k - 1 do
            let _, _, l = srcs.(i) in
            bytes := !bytes + l
          done;
        sent := !sent + k
      done;
      t.bytes_sent <- t.bytes_sent + !bytes;
      Obs.Metrics.incr m_sends)

(* ---- recv ---- *)

(* Receive the next stream chunk into [dst]; 0 on EOF.  [dst] must hold a
   whole record: >= [max_inline] for inline records, >= the payload of one
   descriptor record (<= [max_desc_per_record] pages) on connections
   carrying zero-copy traffic. *)
let recv_locked t ~dom dst ~off =
  if t.fin_rx then 0
  else begin
    check_poison t;
    let ring = t.rx.ring in
    let rec go () =
      let p = R.peek_packed ring in
      if p = R.no_msg then begin
        wait_rx_p t;
        go ()
      end
      else if R.is_desc_packed p then begin
        let q = R.try_dequeue_descs ring ~entries:t.descs in
        if q = R.no_msg then go ()
        else begin
          let cnt = R.desc_count_packed q in
          let h = Pp.domain_handle t.rx.pool in
          Pp.set_owner h dom;
          (* Adopt every page of the record before touching any payload:
             once adopted, a crash of the sender cannot reclaim it out
             from under us.  Adoption failing means the reclaimer already
             won — the payload is gone with its owner. *)
          let adopted = ref 0 in
          while
            !adopted < cnt
            && Pp.try_adopt t.rx.pool ~page:(R.desc_page t.descs.(!adopted)) ~owner:dom
          do
            incr adopted
          done;
          if !adopted < cnt then begin
            for i = 0 to !adopted - 1 do
              Pp.release h (R.desc_page t.descs.(i))
            done;
            return_pending ring;
            poison t;
            raise Peer_dead
          end;
          let pos = ref off in
          for i = 0 to cnt - 1 do
            let e = t.descs.(i) in
            let elen = R.desc_len e in
            Pp.blit_to_bytes t.rx.pool ~page:(R.desc_page e) ~off:(R.desc_off e) ~dst
              ~dst_off:!pos ~len:elen;
            pos := !pos + elen;
            Pp.release h (R.desc_page e)
          done;
          return_pending ring;
          !pos - off
        end
      end
      else if R.packed_flags p land flag_fin <> 0 then begin
        ignore (R.try_dequeue_packed ring ~dst ~dst_off:off);
        t.fin_rx <- true;
        return_pending ring;
        0
      end
      else begin
        let q = R.try_dequeue_packed ring ~dst ~dst_off:off in
        if q = R.no_msg then go ()
        else begin
          return_pending ring;
          R.packed_len q
        end
      end
    in
    let n = go () in
    if n > 0 then begin
      t.bytes_received <- t.bytes_received + n;
      Obs.Metrics.incr m_recvs
    end;
    n
  end

let recv t ~dom dst ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length dst then invalid_arg "Rt_sock.recv";
  t.op_slot <- dom;
  Rt_token.with_held t.recv_tok ~dom (fun () -> recv_locked t ~dom dst ~off)

(* ---- shutdown ---- *)

let fin_scratch = Bytes.create 0

(* On a poisoned pair, close degenerates to releasing the tokens (like
   close(2) on a reset socket: succeeds, nothing to send to). *)
let close t ~dom =
  (if not (Atomic.get t.dead) then
     try
       Rt_token.with_held t.send_tok ~dom (fun () ->
           if not t.fin_tx then begin
             t.fin_tx <- true;
             while not (R.try_enqueue ~flags:flag_fin t.tx.ring fin_scratch ~off:0 ~len:0) do
               wait_tx_p t ~len:0
             done
           end)
     with Peer_dead -> ());
  Rt_token.release t.send_tok ~dom;
  Rt_token.release t.recv_tok ~dom

(* Ownership declaration without an operation: an acceptor that popped
   this endpoint from a backlog is involved in it from that instant —
   if it dies before its first send/recv, recovery must still poison the
   pair. *)
let claim t ~dom = t.op_slot <- dom

(* Cooperative-hold contract: a domain done operating this endpoint hands
   its tokens back so a later owner takes them without arbitration. *)
let release_tokens t ~dom =
  Rt_token.release t.send_tok ~dom;
  Rt_token.release t.recv_tok ~dom

let send_token t = t.send_tok
let recv_token t = t.recv_tok
let at_eof t = t.fin_rx

(* ---- crash recovery hook ----------------------------------------------

   Runs after [Rt_token]'s reap hook (registration order = module
   dependency order), so by the time a connection is poisoned its tokens
   are already live-or-free.  Involvement is judged from the slots that
   actually operated each end (plus the configured peer slot); poisoning
   first, reclaiming second, so a survivor kicked out of a park observes
   poison before it could go look for more descriptors, and pages the
   survivor already adopted are out of the reclaimer's reach. *)

let reap_conns slot =
  let live = ref [] in
  Mutex.lock reg_mu;
  for i = 0 to Weak.length reg - 1 do
    match Weak.get reg i with Some t -> live := t :: !live | None -> ()
  done;
  Mutex.unlock reg_mu;
  List.iter
    (fun t ->
      let involved =
        t.op_slot = slot || t.peer_slot = slot
        || (match t.peer with Some p -> p.op_slot = slot | None -> false)
      in
      if involved then begin
        poison t;
        ignore (Pp.reclaim_owner t.tx.pool ~owner:slot);
        ignore (Pp.reclaim_owner t.rx.pool ~owner:slot)
      end)
    !live

let () = Rt_dom.on_death reap_conns
