(* Prefork server harness on real domains (§4.5.2 end to end).

   [run ~workers] spawns [workers] worker domains that register with an
   [Rt_monitor] listener and sit in accept loops, plus client domains that
   connect, stream [msgs_per_conn] messages of [payload] bytes per
   connection, and close.  Small payloads go through [Rt_sock.send_burst]
   (token-held, [Batch_ctl]-bounded vectored sends); payloads at or above
   the zero-copy crossover go through the descriptor path.  Workers drain
   each connection to EOF (optionally echoing) and release their tokens —
   the cooperative-hold contract.

   Returns per-worker accept/steal/byte distributions plus wall time, so
   callers (bench rows, the sim-equivalence test) can check §4.5.2
   invariants: every byte arrives exactly once, accepts spread round-robin,
   idle workers steal rather than idle. *)

type stats = {
  workers : int;
  conns : int;
  served : int array;  (** connections each worker accepted *)
  stolen : int array;  (** of those, how many it stole *)
  bytes : int array;  (** payload bytes each worker received *)
  total_bytes : int;
  elapsed_ns : int;
}

let total_served s = Array.fold_left ( + ) 0 s.served
let total_stolen s = Array.fold_left ( + ) 0 s.stolen

(* Receive buffer sized for a whole record: an inline record, or one
   descriptor record's payload when the stream uses the zero-copy path. *)
let recv_buf_size payload =
  let desc_max = Rt_sock.max_desc_per_record * Sds_vm.Pagepool.page_size in
  max Rt_sock.max_inline (min (max payload Rt_sock.max_inline) desc_max)

let worker_loop mon ~index ~echo ~payload ~bytes =
  let w = Rt_monitor.register mon ~index in
  let buf = Bytes.create (recv_buf_size payload) in
  let dom = Rt_dom.self () in
  let rec serve () =
    match Rt_monitor.accept mon ~index with
    | None -> ()
    | Some sock ->
      let rec drain () =
        let n = Rt_sock.recv sock ~dom buf ~off:0 ~len:(Bytes.length buf) in
        if n > 0 then begin
          bytes.(index) <- bytes.(index) + n;
          if echo then Rt_sock.send sock ~dom buf ~off:0 ~len:n;
          drain ()
        end
      in
      drain ();
      if echo then Rt_sock.close sock ~dom else Rt_sock.release_tokens sock ~dom;
      serve ()
  in
  serve ();
  w

let client_conn mon ~dom ~payload ~msgs ~burst ~echo buf entries =
  let sock = Rt_monitor.connect mon ~dom in
  if echo then begin
    (* Ping-pong: one message in flight keeps the echo ring bounded. *)
    let rbuf = Bytes.create (recv_buf_size payload) in
    for _ = 1 to msgs do
      Rt_sock.send sock ~dom buf ~off:0 ~len:payload;
      let got = ref 0 in
      while !got < payload do
        let n = Rt_sock.recv sock ~dom rbuf ~off:0 ~len:(Bytes.length rbuf) in
        if n = 0 then failwith "Rt_prefork: echo stream ended early";
        got := !got + n
      done
    done;
    Rt_sock.close sock ~dom;
    (* Drain the server's FIN so its close completes cleanly. *)
    while Rt_sock.recv sock ~dom rbuf ~off:0 ~len:(Bytes.length rbuf) > 0 do
      ()
    done
  end
  else if payload < Rt_sock.zc_threshold && burst > 1 then begin
    let sent = ref 0 in
    while !sent < msgs do
      let n = min burst (msgs - !sent) in
      Rt_sock.send_burst sock ~dom entries ~n;
      sent := !sent + n
    done;
    Rt_sock.close sock ~dom
  end
  else begin
    for _ = 1 to msgs do
      Rt_sock.send sock ~dom buf ~off:0 ~len:payload
    done;
    Rt_sock.close sock ~dom
  end

let run ?(payload = 64) ?(msgs_per_conn = 1000) ?conns ?(echo = false) ?(burst = 32)
    ?ring_size ?pool_pages ?capacity ?client_domains ~workers () =
  if workers < 1 then invalid_arg "Rt_prefork.run";
  let conns = match conns with Some c -> c | None -> workers in
  let client_domains =
    match client_domains with Some c -> max 1 (min c conns) | None -> min conns (max 1 workers)
  in
  let mon = Rt_monitor.create ?ring_size ?pool_pages ?capacity ~workers () in
  let bytes = Array.make workers 0 in
  let worker_handles =
    Array.init workers (fun index ->
        Rt_dom.spawn (fun () -> worker_loop mon ~index ~echo ~payload ~bytes))
  in
  (* Barrier: dispatch needs the full worker array before any connect. *)
  while Rt_monitor.registered mon < workers do
    Domain.cpu_relax ()
  done;
  let t0 = Sds_obs.Span.now () in
  let clients =
    Array.init client_domains (fun c ->
        Rt_dom.spawn (fun () ->
            let dom = Rt_dom.self () in
            let buf = Bytes.make payload (Char.chr (65 + (c mod 26))) in
            let entries = Array.make (max burst 1) (buf, 0, payload) in
            (* Client [c] owns connections c, c+client_domains, ... *)
            let i = ref c in
            while !i < conns do
              client_conn mon ~dom ~payload ~msgs:msgs_per_conn ~burst ~echo buf entries;
              i := !i + client_domains
            done))
  in
  Array.iter Domain.join clients;
  Rt_monitor.close_listener mon;
  let worker_stats = Array.map Domain.join worker_handles in
  let elapsed_ns = Sds_obs.Span.now () - t0 in
  {
    workers;
    conns;
    served = Array.map Rt_monitor.served worker_stats;
    stolen = Array.map Rt_monitor.stolen worker_stats;
    bytes;
    total_bytes = Array.fold_left ( + ) 0 bytes;
    elapsed_ns;
  }
