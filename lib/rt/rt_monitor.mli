(** Real-domain monitor: §4.5.2 prefork accept dispatch on actual domains,
    through the same {!Sds_proto.Dispatch_core} policy as the simulator's
    monitor (round-robin with backlog capacity + idle-worker stealing).

    Lifecycle: [create ~workers], each worker domain calls
    [register ~index], the caller barriers on [registered] = [workers],
    then clients [connect] and workers [accept] until [close_listener]. *)

type t
type worker

val create :
  ?ring_size:int -> ?pool_pages:int -> ?capacity:int -> workers:int -> unit -> t
(** A listener dispatching to [workers] worker domains; [capacity] bounds
    each per-worker accept backlog (default 128). *)

val register : t -> index:int -> worker
(** Called from worker domain [index]'s own domain; binds its {!Rt_dom}
    slot for wakeups. *)

val workers : t -> int
val registered : t -> int
val accepted : t -> int

val pending : t -> int -> int
(** Worker [i]'s current backlog length (lock-free mirror). *)

val served : worker -> int
val stolen : worker -> int
(** Connections this worker accepted, and of those, how many it stole. *)

val connect : t -> dom:int -> Rt_sock.t
(** Create a connection, dispatch the server end to a worker backlog, wake
    that worker, return the client end.  All workers must be registered. *)

val accept : t -> index:int -> Rt_sock.t option
(** Blocking accept for worker [index]: own backlog, else steal from the
    longest sibling, else park.  [None] once closed and fully drained. *)

val close_listener : t -> unit
