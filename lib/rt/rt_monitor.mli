(** Real-domain monitor: §4.5.2 prefork accept dispatch on actual domains,
    through the same {!Sds_proto.Dispatch_core} policy as the simulator's
    monitor (round-robin with backlog capacity + idle-worker stealing).

    Lifecycle: [create ~workers], each worker domain calls
    [register ~index], the caller barriers on [registered] = [workers],
    then clients [connect] and workers [accept] until [close_listener]. *)

type t
type worker

val create :
  ?ring_size:int -> ?pool_pages:int -> ?capacity:int -> workers:int -> unit -> t
(** A listener dispatching to [workers] worker domains; [capacity] bounds
    each per-worker accept backlog (default 128). *)

val register : t -> index:int -> worker
(** Called from worker domain [index]'s own domain; binds its {!Rt_dom}
    slot for wakeups.  Re-registering an index whose previous worker
    incarnation is dead is the restart path: the replacement inherits the
    predecessor's undrained (unpoisoned) backlog.  Re-registering a live
    index raises. *)

val workers : t -> int
val registered : t -> int
val accepted : t -> int

val pending : t -> int -> int
(** Worker [i]'s current backlog length (lock-free mirror). *)

val served : worker -> int
val stolen : worker -> int
(** Connections this worker accepted, and of those, how many it stole. *)

val connect : t -> dom:int -> Rt_sock.t
(** Create a connection, dispatch the server end to a worker backlog, wake
    that worker, return the client end.  All workers must be registered. *)

val accept : t -> index:int -> Rt_sock.t option
(** Blocking accept for worker [index]: own backlog, else steal from the
    longest sibling, else park.  [None] once closed and fully drained. *)

val close_listener : t -> unit

(** {1 Liveness reaper (§4.3)} *)

val start_reaper : ?interval_s:float -> ?stalls:int -> unit -> unit
(** Start the process-wide reaper (idempotent): every [interval_s]
    (default 5 ms) it samples each {!Rt_dom.enroll}ed live slot's
    heartbeat, and after [stalls] (default 8) consecutive unchanged
    samples — while the slot is not parked on its own waiter —
    {!Rt_dom.declare_dead}s it (counted as [fault.reaped]).  The silence
    window is therefore bounded by [interval_s * (stalls + 1)]. *)

val stop_reaper : unit -> unit
(** Stop and join the reaper; no-op when not running. *)
