(** Domain slot registry for the real-domain backend: a small stable slot
    id per domain (the token-holder identity) plus one {!Sds_notify.Waiter}
    parking spot per slot, so peers can wake a specific domain. *)

val max_slots : int

val self : unit -> int
(** The calling domain's slot, allocated on first call (domain-local). *)

val waiter : int -> Sds_notify.Waiter.t
(** Slot [s]'s parking spot.  Only domain [s] waits on it; anyone may
    notify it. *)

val spawn : (unit -> 'a) -> 'a Domain.t
(** [Domain.spawn] with a slot held for the domain's lifetime and released
    on exit. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()] — the parallelism actually
    available, used to scale throughput expectations on time-shared
    machines. *)
