(** Domain slot registry for the real-domain backend: a small stable slot
    id per domain (the token-holder identity) plus one {!Sds_notify.Waiter}
    parking spot per slot, so peers can wake a specific domain.

    Liveness (§4.3): each slot carries an epoch counter — odd while an
    incarnation holds it, even while free or dead — plus a heartbeat word
    bumped on every fast-path operation.  Protocol state stamped with
    (slot, epoch) survives slot reuse: {!alive_at} is false for any retired
    incarnation.  {!declare_dead} retires an incarnation exactly once and
    runs the registered death hooks (token seizure, ring poisoning, page
    reclamation). *)

val max_slots : int

val self : unit -> int
(** The calling domain's slot, allocated on first call (domain-local). *)

val waiter : int -> Sds_notify.Waiter.t
(** Slot [s]'s parking spot.  Only domain [s] waits on it; anyone may
    notify it. *)

val spawn : (unit -> 'a) -> 'a Domain.t
(** [Domain.spawn] with a slot held for the domain's lifetime and released
    on exit.  An exception escaping the body (including
    {!Sds_fault.Crash}) first declares the slot dead — the [died] hook —
    so peers recover before the slot is reused. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()] — the parallelism actually
    available, used to scale throughput expectations on time-shared
    machines. *)

(** {1 Liveness epochs} *)

val epoch : int -> int
(** Slot [s]'s current epoch (odd = live incarnation, even = free/dead). *)

val slot_live : int -> bool

val alive_at : int -> epoch:int -> bool
(** Is the incarnation that recorded [epoch] for this slot still alive?
    False once the slot crashed, exited or was reused. *)

val declare_dead : int -> bool
(** Retire slot [s]'s current incarnation: bump its epoch to even, run
    every registered death hook once, wake all parked slots so they
    re-check liveness.  Idempotent — one CAS decides; [false] if the slot
    was not live.  Called by the [spawn] died hook and by the
    {!Rt_monitor} reaper. *)

val on_death : (int -> unit) -> unit
(** Register a recovery hook, run (in registration order, exceptions
    swallowed) with the dead slot id by the winning {!declare_dead}.
    Hooks observe the slot already dead. *)

(** {1 Heartbeats} *)

val beat : int -> unit
(** Bump slot [s]'s heartbeat word: one plain store into a padded cell —
    the per-operation cost of being watchable by the reaper. *)

val heartbeat : int -> int
(** Racy read of the heartbeat word. *)

val enroll : unit -> int
(** Promise that the calling domain keeps beating while runnable; returns
    its slot.  Enrolled slots are watched by the {!Rt_monitor} reaper and
    fed to {!Sds_obs.Flight.register_heartbeats} (parked slots are exempt
    — parking is legitimate silence).  Cleared on slot release/death. *)

val is_enrolled : int -> bool
