(* Real-domain token handoff (§4.2) over the shared protocol core.

   The packed protocol word from [Sds_proto.Token_proto] lives in one
   [Atomic.t]; every transition the simulator commits with a plain store is
   committed here with a CAS.  On top of that sit the things only a real
   multicore backend needs:

   - The optimistic same-domain fast path: [fast_owner] is a plain (non
     atomic) field caching the holder's slot.  Domain [d] only ever writes
     the value [d] into it (after becoming holder through an atomic
     transition) or -1 (before publishing a grant or seizing), so the one
     relaxed read [fast_owner = dom] can only pass for the domain that
     actually holds the token — a stale read fails towards the slow path,
     never towards a mutual-exclusion violation.  This keeps the held-by-me
     hot path at one plain compare on entry plus one atomic load at the
     operation boundary.

   - Takeover arbitration through [Sds_notify] waiters: the requester CASes
     itself into the request slot (request), the holder finishes its
     in-flight batch (drain), publishes [Token_proto.grant] (the release
     fence), and notifies the requester's per-domain waiter (resume).
     [waitmask] tracks which slots are parked on this token so the grant
     wakes exactly the domains that asked.

   - Crash liveness (§4.3): the state word carries the holder's [Rt_dom]
     epoch in bits above the protocol fields, so "who holds it" and "is
     that incarnation alive" are one atomic read.  A requester that finds
     the stamped epoch retired [try_seize]s the token with a CAS (the
     seize fence) instead of parking forever; as a second line of defence
     every park is bounded ([Waiter.wait_until] with exponential backoff),
     so even a missed wake degenerates into a liveness re-check, never a
     hang.  [Rt_dom.on_death] additionally walks the live-token registry
     and grants or frees anything the dead incarnation held, waking the
     pending requester immediately.

   Holds are cooperative: a grant happens at an operation boundary, so a
   domain that stops operating on a socket must [release] its tokens (the
   socket layer does this at EOF/close).  A holder that parks forever
   without releasing is a protocol violation — the flight-recorder state
   provider below exists to show exactly who it was. *)

module P = Sds_proto.Token_proto
module Waiter = Sds_notify.Waiter
module Obs = Sds_obs.Obs

let m_handoffs = Obs.Metrics.counter "token.handoffs"
let m_direct_takes = Obs.Metrics.counter "token.direct_takes"
let m_seized = Obs.Metrics.counter "token.seized_dead"
let h_takeover = Obs.Metrics.histogram "token.takeover_ns"

(* ---- epoch stamping ----------------------------------------------------

   [Token_proto] uses the low [2 * id_bits] bits (holder + requester); we
   stamp 16 bits of the holder's [Rt_dom] epoch directly above them.  The
   stamp travels with every transition — Take/seize stamp the taker's own
   epoch, a grant stamps the *requester's* current epoch (if the requester
   died between posting and the grant, its even epoch makes the token
   immediately seizable by anyone), free clears the stamp.

   Truncation to 16 bits means liveness comparisons are modulo 2^16: a
   false "still alive" would need the same slot to die and be reallocated
   exactly 2^15 times between stamp and check.  Parity (odd = live)
   survives truncation, so a dead stamp is always detected. *)

let epoch_shift = 2 * P.id_bits
let epoch_bits = 16
let epoch_mask = (1 lsl epoch_bits) - 1
let proto_mask = (1 lsl epoch_shift) - 1

let () = assert (epoch_shift + epoch_bits < Sys.int_size)

let[@inline] proto s = s land proto_mask
let[@inline] stamped_epoch s = (s lsr epoch_shift) land epoch_mask
let[@inline] compose w ~epoch = ((epoch land epoch_mask) lsl epoch_shift) lor (w land proto_mask)

(* Current (truncated) epoch of a slot; out-of-range ids — allowed by
   [Token_proto] but impossible as real domains — read as retired. *)
let[@inline] epoch_of slot =
  if slot >= 0 && slot < Rt_dom.max_slots then Rt_dom.epoch slot land epoch_mask else 0

let[@inline] live_at slot ~e16 =
  e16 land 1 = 1
  && slot >= 0 && slot < Rt_dom.max_slots
  && Rt_dom.epoch slot land epoch_mask = e16

(* Is the full state word [s] held by a retired incarnation? *)
let[@inline] holder_dead_word s =
  let p = proto s in
  (not (P.is_free p)) && not (live_at (P.holder p) ~e16:(stamped_epoch s))

type t = {
  state : int Atomic.t;  (** protocol word + holder-epoch stamp *)
  waitmask : int Atomic.t;  (** slots parked waiting for this token *)
  mutable fast_owner : int;  (** plain holder cache; see header comment *)
  mutable inflight : int;  (** holder-written: operations currently open *)
  mutable handoffs : int;  (** holder-written: grants served *)
  name : string;
  uid : int;
}

(* Bounded-park fallback window: a parked requester re-checks liveness (and
   attempts a seize) at least this often even if every notify is lost. *)
let wait_timeout_ns = ref 50_000_000
let set_wait_timeout_ns ns =
  if ns <= 0 then invalid_arg "Rt_token.set_wait_timeout_ns";
  wait_timeout_ns := ns

(* ---- flight-recorder registry (weak: tokens die with their sockets) ---- *)

let reg_mu = Mutex.create ()
let reg : t Weak.t = Weak.create 512
let uid_counter = ref 0

let register t =
  Mutex.lock reg_mu;
  (try
     let placed = ref false in
     for i = 0 to Weak.length reg - 1 do
       if (not !placed) && Weak.get reg i = None then begin
         Weak.set reg i (Some t);
         placed := true
       end
     done
   with e ->
     Mutex.unlock reg_mu;
     raise e);
  Mutex.unlock reg_mu

let render_state () =
  let b = Buffer.create 256 in
  Mutex.lock reg_mu;
  for i = 0 to Weak.length reg - 1 do
    match Weak.get reg i with
    | None -> ()
    | Some t ->
      let s = Atomic.get t.state in
      let p = proto s in
      Buffer.add_string b
        (Printf.sprintf
           "%s#%d holder=%d epoch=%d dead=%b req=%d inflight=%d handoffs=%d waitmask=%#x\n"
           t.name t.uid
           (if P.is_free p then -1 else P.holder p)
           (stamped_epoch s) (holder_dead_word s)
           (if P.has_request p then P.requester p else -1)
           t.inflight t.handoffs (Atomic.get t.waitmask))
  done;
  Mutex.unlock reg_mu;
  Buffer.contents b

let () = Sds_obs.Flight.register_state "rt_token" render_state

(* [holder = -1] creates the token free: the first operating domain takes
   it with one CAS.  Used for dispatched endpoints whose eventual owner is
   unknown at creation (a stolen connection lands on a different worker
   than the dispatcher picked). *)
let create ?(name = "token") ~holder () =
  if holder < -1 || holder > P.max_id then invalid_arg "Rt_token.create";
  incr uid_counter;
  let state =
    if holder < 0 then compose P.free ~epoch:0
    else compose (P.held ~holder) ~epoch:(epoch_of holder)
  in
  let t =
    { state = Atomic.make state; waitmask = Atomic.make 0; fast_owner = holder;
      inflight = 0; handoffs = 0; name; uid = !uid_counter }
  in
  register t;
  t

let holder t =
  let p = proto (Atomic.get t.state) in
  if P.is_free p then -1 else P.holder p

let holder_dead t = holder_dead_word (Atomic.get t.state)

let handoffs t = t.handoffs

(* ---- waitmask helpers (slow path only) ---- *)

let rec mask_set a bit =
  let m = Atomic.get a in
  if m land bit = 0 && not (Atomic.compare_and_set a m (m lor bit)) then mask_set a bit

let rec mask_clear a bit =
  let m = Atomic.get a in
  if m land bit <> 0 && not (Atomic.compare_and_set a m (m land lnot bit)) then
    mask_clear a bit

(* Wake every slot currently registered on the token.  Bits stay set; each
   waiter clears its own on exit, so a spurious notify is the worst case. *)
let wake_waiters t =
  let m = ref (Atomic.get t.waitmask) in
  while !m <> 0 do
    let bit = !m land (- !m) in
    let rec idx b i = if b land 1 = 1 then i else idx (b lsr 1) (i + 1) in
    Waiter.notify (Rt_dom.waiter (idx bit 0));
    m := !m lxor bit
  done

let kick = wake_waiters

(* ---- crash recovery (seize fence) ---- *)

(* Pure guard: may [dom] seize token word [s]?  Never a free token or one
   [dom] already holds; otherwise only when the stamped holder incarnation
   is provably retired (the epoch parity check). *)
let seizable s ~dom =
  let p = proto s in
  (not (P.is_free p))
  && P.holder p <> dom
  && not (live_at (P.holder p) ~e16:(stamped_epoch s))

(* Take a token whose stamped holder incarnation is retired.  The CAS from
   the observed dead-stamped word is the seize fence: it can only succeed
   against the exact word we proved dead, so a live holder (or a racing
   seizer) always wins the race instead of us.  [fast_owner] is cleared
   first — the dead slot id may be reallocated, and a stale cache hit for
   the new incarnation would bypass acquire entirely.

   The [@sds.model] regions here are extracted into the "token-handoff" and
   "token-crash-recovery" Interleave models (lib/check/extract.ml); edits
   must keep test/golden/ in sync or `sdmodel check` fails CI. *)
let[@sds.model "token-crash/seize"] rec try_seize t ~dom =
  let s = Atomic.get t.state in
  if not (seizable s ~dom) then false
  else begin
    t.fast_owner <- -1;
    let next = compose (P.seize (proto s) ~id:dom) ~epoch:(epoch_of dom) in
    if Atomic.compare_and_set t.state s next then begin
      Obs.Metrics.incr m_seized;
      Obs.Trace.emit_n Obs.Trace.Token_takeover dom;
      wake_waiters t;
      true
    end
    else try_seize t ~dom
  end

(* Death-hook reap: grant anything the dead incarnation held to its pending
   requester (stamping the requester's epoch), or free it.  Runs on
   whichever domain won [Rt_dom.declare_dead]; registered at module
   initialization so it is in place before any real-domain traffic. *)
let rec reap_token t =
  let s = Atomic.get t.state in
  if holder_dead_word s then begin
    t.fast_owner <- -1;
    let p = proto s in
    let next =
      if P.has_request p then compose (P.grant p) ~epoch:(epoch_of (P.requester p))
      else compose P.free ~epoch:0
    in
    if Atomic.compare_and_set t.state s next then begin
      Obs.Metrics.incr m_seized;
      wake_waiters t
    end
    else reap_token t
  end

let reap_dead _slot =
  (* Snapshot the registry, then work unlocked: reaping wakes waiters and
     never blocks, but holding [reg_mu] across CAS loops is pointless. *)
  let live = ref [] in
  Mutex.lock reg_mu;
  for i = 0 to Weak.length reg - 1 do
    match Weak.get reg i with Some t -> live := t :: !live | None -> ()
  done;
  Mutex.unlock reg_mu;
  List.iter reap_token !live

let () = Rt_dom.on_death reap_dead

(* ---- the handoff itself (holder side) ---- *)

(* Drain is over (the operation closed); publish the release fence and wake
   the requester.  CAS loop: the request slot can gain a requester between
   our load and the store, never lose one.  The grant stamps the
   *requester's* epoch — the token's liveness now tracks its new holder. *)
let[@sds.model "token-handoff/grant"] rec grant_now t ~dom =
  let s = Atomic.get t.state in
  let p = proto s in
  if P.should_release p ~id:dom then begin
    if Sds_fault.armed () then Sds_fault.inject "rt_token.grant";
    t.fast_owner <- -1;
    let next = compose (P.grant p) ~epoch:(epoch_of (P.requester p)) in
    if Atomic.compare_and_set t.state s next then begin
      t.handoffs <- t.handoffs + 1;
      Obs.Metrics.incr m_handoffs;
      Obs.Trace.emit_n Obs.Trace.Token_takeover (P.requester p);
      wake_waiters t
    end
    else grant_now t ~dom
  end

(* Operation boundary: one atomic load; the grant path is the cold side. *)
let[@inline] boundary t ~dom =
  if P.should_release (proto (Atomic.get t.state)) ~id:dom then grant_now t ~dom

(* ---- acquire (requester side) ---- *)

(* Bounded park: wait for [ready] (which always includes "the stamped
   holder is dead"), and on timeout attempt the seize directly — progress
   does not depend on any notify arriving. *)
let park_bounded t ~dom ~ready =
  let bit = 1 lsl dom in
  mask_set t.waitmask bit;
  let deadline_ns = Sds_obs.Span.now () + !wait_timeout_ns in
  let woke = Waiter.wait_until (Rt_dom.waiter dom) ~deadline_ns ~ready in
  mask_clear t.waitmask bit;
  if not woke && holder_dead_word (Atomic.get t.state) then
    ignore (try_seize t ~dom)

let rec acquire_slow t ~dom =
  let s = Atomic.get t.state in
  if holder_dead_word s && try_seize t ~dom then ()
  else begin
    let p = proto s in
    match P.acquire p ~id:dom with
    | P.Fast -> ()
    | P.Take p' ->
      if Atomic.compare_and_set t.state s (compose p' ~epoch:(epoch_of dom)) then
        Obs.Metrics.incr m_direct_takes
      else acquire_slow t ~dom
    | P.Post p' ->
      (* Keep the holder's epoch stamp: only the holder field's liveness is
         tracked, and posting a request does not change the holder. *)
      if Atomic.compare_and_set t.state s (compose p' ~epoch:(stamped_epoch s)) then begin
        (* Request posted: park until the holder's release fence (or until
           the token frees entirely, or the holder dies), then re-run. *)
        park_bounded t ~dom ~ready:(fun () ->
            let s = Atomic.get t.state in
            let p = proto s in
            P.is_held_by p ~id:dom || P.is_free p || holder_dead_word s);
        acquire_slow t ~dom
      end
      else acquire_slow t ~dom
    | P.Wait ->
      (* Someone else's request is in flight; wait for the slot to clear. *)
      park_bounded t ~dom ~ready:(fun () ->
          let s = Atomic.get t.state in
          let p = proto s in
          P.is_held_by p ~id:dom || P.is_free p || holder_dead_word s
          || not (P.has_request p));
      acquire_slow t ~dom
  end

(* Cold takeover entry: measures request → resume as [token.takeover_ns]. *)
let[@inline never] acquire_cold t ~dom =
  let t0 = Sds_obs.Span.now () in
  acquire_slow t ~dom;
  t.fast_owner <- dom;
  Obs.Metrics.observe h_takeover (Sds_obs.Span.now () - t0)

let acquire t ~dom = if t.fast_owner <> dom then acquire_cold t ~dom

(* ---- the operation window ---- *)

let with_held t ~dom f =
  if t.fast_owner <> dom then acquire_cold t ~dom;
  (* The liveness heartbeat: one plain store per operation (§4.3), so the
     reaper can tell a crashed worker from a busy one. *)
  Rt_dom.beat dom;
  t.inflight <- t.inflight + 1;
  match f () with
  | r ->
    t.inflight <- t.inflight - 1;
    boundary t ~dom;
    r
  | exception e ->
    t.inflight <- t.inflight - 1;
    boundary t ~dom;
    raise e

(* ---- explicit relinquish (EOF / close / ownership transfer) ---- *)

let rec release t ~dom =
  let s = Atomic.get t.state in
  let p = proto s in
  if P.is_held_by p ~id:dom then begin
    t.fast_owner <- -1;
    let p' = P.release p ~id:dom in
    let next =
      if P.has_request p then compose p' ~epoch:(epoch_of (P.requester p))
      else compose p' ~epoch:0
    in
    if Atomic.compare_and_set t.state s next then begin
      if P.has_request p then begin
        t.handoffs <- t.handoffs + 1;
        Obs.Metrics.incr m_handoffs
      end;
      wake_waiters t
    end
    else release t ~dom
  end
