(* Real-domain token handoff (§4.2) over the shared protocol core.

   The packed protocol word from [Sds_proto.Token_proto] lives in one
   [Atomic.t]; every transition the simulator commits with a plain store is
   committed here with a CAS.  On top of that sit the two things only a real
   multicore backend needs:

   - The optimistic same-domain fast path: [fast_owner] is a plain (non
     atomic) field caching the holder's slot.  Domain [d] only ever writes
     the value [d] into it (after becoming holder through an atomic
     transition) or -1 (before publishing a grant), so the one relaxed read
     [fast_owner = dom] can only pass for the domain that actually holds the
     token — a stale read fails towards the slow path, never towards a
     mutual-exclusion violation.  This keeps the held-by-me hot path at one
     plain compare on entry plus one atomic load at the operation boundary.

   - Takeover arbitration through [Sds_notify] waiters: the requester CASes
     itself into the request slot (request), the holder finishes its
     in-flight batch (drain), publishes [Token_proto.grant] (the release
     fence), and notifies the requester's per-domain waiter (resume).
     [waitmask] tracks which slots are parked on this token so the grant
     wakes exactly the domains that asked.

   Holds are cooperative: a grant happens at an operation boundary, so a
   domain that stops operating on a socket must [release] its tokens (the
   socket layer does this at EOF/close).  A holder that parks forever
   without releasing is a protocol violation — the flight-recorder state
   provider below exists to show exactly who it was. *)

module P = Sds_proto.Token_proto
module Waiter = Sds_notify.Waiter
module Obs = Sds_obs.Obs

let m_handoffs = Obs.Metrics.counter "token.handoffs"
let m_direct_takes = Obs.Metrics.counter "token.direct_takes"
let h_takeover = Obs.Metrics.histogram "token.takeover_ns"

type t = {
  state : int Atomic.t;  (** the shared protocol word *)
  waitmask : int Atomic.t;  (** slots parked waiting for this token *)
  mutable fast_owner : int;  (** plain holder cache; see header comment *)
  mutable inflight : int;  (** holder-written: operations currently open *)
  mutable handoffs : int;  (** holder-written: grants served *)
  name : string;
  uid : int;
}

(* ---- flight-recorder registry (weak: tokens die with their sockets) ---- *)

let reg_mu = Mutex.create ()
let reg : t Weak.t = Weak.create 512
let uid_counter = ref 0

let register t =
  Mutex.lock reg_mu;
  (try
     let placed = ref false in
     for i = 0 to Weak.length reg - 1 do
       if (not !placed) && Weak.get reg i = None then begin
         Weak.set reg i (Some t);
         placed := true
       end
     done
   with e ->
     Mutex.unlock reg_mu;
     raise e);
  Mutex.unlock reg_mu

let render_state () =
  let b = Buffer.create 256 in
  Mutex.lock reg_mu;
  for i = 0 to Weak.length reg - 1 do
    match Weak.get reg i with
    | None -> ()
    | Some t ->
      let s = Atomic.get t.state in
      Buffer.add_string b
        (Printf.sprintf "%s#%d holder=%d req=%d inflight=%d handoffs=%d waitmask=%#x\n"
           t.name t.uid
           (if P.is_free s then -1 else P.holder s)
           (if P.has_request s then P.requester s else -1)
           t.inflight t.handoffs (Atomic.get t.waitmask))
  done;
  Mutex.unlock reg_mu;
  Buffer.contents b

let () = Sds_obs.Flight.register_state "rt_token" render_state

(* [holder = -1] creates the token free: the first operating domain takes
   it with one CAS.  Used for dispatched endpoints whose eventual owner is
   unknown at creation (a stolen connection lands on a different worker
   than the dispatcher picked). *)
let create ?(name = "token") ~holder () =
  if holder < -1 || holder > P.max_id then invalid_arg "Rt_token.create";
  incr uid_counter;
  let state = if holder < 0 then P.free else P.held ~holder in
  let t =
    { state = Atomic.make state; waitmask = Atomic.make 0; fast_owner = holder;
      inflight = 0; handoffs = 0; name; uid = !uid_counter }
  in
  register t;
  t

let holder t =
  let s = Atomic.get t.state in
  if P.is_free s then -1 else P.holder s

let handoffs t = t.handoffs

(* ---- waitmask helpers (slow path only) ---- *)

let rec mask_set a bit =
  let m = Atomic.get a in
  if m land bit = 0 && not (Atomic.compare_and_set a m (m lor bit)) then mask_set a bit

let rec mask_clear a bit =
  let m = Atomic.get a in
  if m land bit <> 0 && not (Atomic.compare_and_set a m (m land lnot bit)) then
    mask_clear a bit

(* Wake every slot currently registered on the token.  Bits stay set; each
   waiter clears its own on exit, so a spurious notify is the worst case. *)
let wake_waiters t =
  let m = ref (Atomic.get t.waitmask) in
  while !m <> 0 do
    let bit = !m land (- !m) in
    let rec idx b i = if b land 1 = 1 then i else idx (b lsr 1) (i + 1) in
    Waiter.notify (Rt_dom.waiter (idx bit 0));
    m := !m lxor bit
  done

(* ---- the handoff itself (holder side) ---- *)

(* Drain is over (the operation closed); publish the release fence and wake
   the requester.  CAS loop: the request slot can gain a requester between
   our load and the store, never lose one. *)
let rec grant_now t ~dom =
  let s = Atomic.get t.state in
  if P.should_release s ~id:dom then begin
    t.fast_owner <- -1;
    if Atomic.compare_and_set t.state s (P.grant s) then begin
      t.handoffs <- t.handoffs + 1;
      Obs.Metrics.incr m_handoffs;
      Obs.Trace.emit_n Obs.Trace.Token_takeover (P.requester s);
      wake_waiters t
    end
    else grant_now t ~dom
  end

(* Operation boundary: one atomic load; the grant path is the cold side. *)
let[@inline] boundary t ~dom =
  if P.should_release (Atomic.get t.state) ~id:dom then grant_now t ~dom

(* ---- acquire (requester side) ---- *)

let rec acquire_slow t ~dom =
  let s = Atomic.get t.state in
  match P.acquire s ~id:dom with
  | P.Fast -> ()
  | P.Take s' ->
    if Atomic.compare_and_set t.state s s' then Obs.Metrics.incr m_direct_takes
    else acquire_slow t ~dom
  | P.Post s' ->
    if Atomic.compare_and_set t.state s s' then begin
      (* Request posted: park until the holder's release fence (or until
         the token frees entirely), then re-run the transition. *)
      let bit = 1 lsl dom in
      mask_set t.waitmask bit;
      Waiter.wait (Rt_dom.waiter dom) ~ready:(fun () ->
          let s = Atomic.get t.state in
          P.is_held_by s ~id:dom || P.is_free s);
      mask_clear t.waitmask bit;
      acquire_slow t ~dom
    end
    else acquire_slow t ~dom
  | P.Wait ->
    (* Someone else's request is in flight; wait for the slot to clear. *)
    let bit = 1 lsl dom in
    mask_set t.waitmask bit;
    Waiter.wait (Rt_dom.waiter dom) ~ready:(fun () ->
        let s = Atomic.get t.state in
        P.is_held_by s ~id:dom || P.is_free s || not (P.has_request s));
    mask_clear t.waitmask bit;
    acquire_slow t ~dom

(* Cold takeover entry: measures request → resume as [token.takeover_ns]. *)
let[@inline never] acquire_cold t ~dom =
  let t0 = Sds_obs.Span.now () in
  acquire_slow t ~dom;
  t.fast_owner <- dom;
  Obs.Metrics.observe h_takeover (Sds_obs.Span.now () - t0)

let acquire t ~dom = if t.fast_owner <> dom then acquire_cold t ~dom

(* ---- the operation window ---- *)

let with_held t ~dom f =
  if t.fast_owner <> dom then acquire_cold t ~dom;
  t.inflight <- t.inflight + 1;
  match f () with
  | r ->
    t.inflight <- t.inflight - 1;
    boundary t ~dom;
    r
  | exception e ->
    t.inflight <- t.inflight - 1;
    boundary t ~dom;
    raise e

(* ---- explicit relinquish (EOF / close / ownership transfer) ---- *)

let rec release t ~dom =
  let s = Atomic.get t.state in
  if P.is_held_by s ~id:dom then begin
    t.fast_owner <- -1;
    if Atomic.compare_and_set t.state s (P.release s ~id:dom) then begin
      if P.has_request s then begin
        t.handoffs <- t.handoffs + 1;
        Obs.Metrics.incr m_handoffs
      end;
      wake_waiters t
    end
    else release t ~dom
  end
