(** Real-domain sockets: one connection = an SPSC ring pair + a staging
    {!Sds_vm.Pagepool} per direction + per-direction {!Rt_token}s.

    Payloads below the §4.6 crossover travel inline in ring records;
    larger ones are staged into pool pages and cross as page-descriptor
    records.  Stream semantics: [send] may split into several records,
    [recv] returns one record's payload per call, a zero-length
    [flag_fin] record carries EOF.  Every pair registers in the [rt_conn]
    flight-recorder section.

    Crash compatibility (§4.3): when a domain involved in a connection
    dies, the pair is poisoned — blocking operations on the surviving end
    raise {!Peer_dead} instead of hanging (EPIPE on send, ECONNRESET on
    recv), and the dead incarnation's in-flight staging pages are
    reclaimed.  Receivers adopt descriptor pages before use, so adoption
    and reclamation arbitrate atomically per page. *)

type t

exception Peer_dead
(** The connection was poisoned by a peer crash.  Send-side it is EPIPE,
    recv-side ECONNRESET; any buffered data is dropped (reset
    semantics). *)

val max_inline : int
(** Largest inline record payload (8 KiB); [recv] buffers must hold it. *)

val zc_threshold : int
(** Payload size at which sends switch to the descriptor path (16 KiB). *)

val max_desc_per_record : int
(** Pages per descriptor record; bounds one record's payload at
    [max_desc_per_record * Pagepool.page_size] bytes. *)

val flag_fin : int
(** Record flag carrying EOF. *)

val pair :
  ?ring_size:int -> ?pool_pages:int -> a_owner:int -> b_owner:int -> unit -> t * t
(** A connected endpoint pair; owners are {!Rt_dom} slots holding each
    endpoint's tokens initially ([-1] = tokens start free, taken by the
    first operator — used for dispatched server ends). *)

val send : t -> dom:int -> Bytes.t -> off:int -> len:int -> unit
(** Stream [len] bytes as one token-held operation (blocking on ring
    credits).  Chunks >= [zc_threshold] take the descriptor path, falling
    back to inline copies when the pool is exhausted. *)

val send_burst : t -> dom:int -> (Bytes.t * int * int) array -> n:int -> unit
(** Vectored small-message send under one token hold; each ring batch is
    bounded by the shared {!Sds_proto.Batch_ctl} budget, and a takeover
    posted meanwhile is served at the operation boundary. *)

val recv : t -> dom:int -> Bytes.t -> off:int -> len:int -> int
(** Next stream chunk into [dst]; 0 at EOF.  The buffer must hold a whole
    record ([max_inline], or one descriptor record's payload on
    connections carrying zero-copy traffic). *)

val close : t -> dom:int -> unit
(** Enqueue EOF, then release both of this endpoint's tokens (the
    cooperative-hold contract). *)

val release_tokens : t -> dom:int -> unit
(** Hand back both tokens without sending EOF — for ownership transfer,
    and for receivers done with a connection. *)

val claim : t -> dom:int -> unit
(** Declare [dom] involved in this endpoint without an operation (an
    acceptor that just popped it): if [dom] dies before its first
    send/recv, crash recovery still poisons the pair. *)

val at_eof : t -> bool
val bytes_sent : t -> int
val bytes_received : t -> int
val send_token : t -> Rt_token.t
val recv_token : t -> Rt_token.t

(** {1 Crash recovery} *)

val poison : t -> unit
(** Declare the pair dead and kick every parked waiter on its rings and
    tokens; blocking operations on either end raise {!Peer_dead} from
    then on.  Idempotent.  Called automatically by the {!Rt_dom.on_death}
    hook for connections the dead slot was involved in. *)

val poisoned : t -> bool
