(* Real-domain monitor: the §4.5.2 prefork accept path on actual domains.

   Connection dispatch goes through the same [Sds_proto.Dispatch_core]
   policy as the simulator's monitor: round-robin over workers with
   per-worker backlog capacity, and idle workers stealing from the longest
   sibling backlog.  The mechanics differ — per-worker backlogs are
   mutex-guarded queues with an atomic length mirror so the dispatcher and
   stealers can size up backlogs without taking every lock, and parked
   workers are woken through their [Rt_dom] waiter.

   Lifecycle: create a listener sized for [n] workers, have each worker
   domain [register] itself (the caller barriers on [registered] before
   connecting), then [connect] from client domains and [accept] from
   workers until [close_listener]. *)

module D = Sds_proto.Dispatch_core
module Waiter = Sds_notify.Waiter
module Obs = Sds_obs.Obs

(* Same counters as the simulator monitor: [Obs.Metrics] dedupes by name,
   so both backends' dispatchers feed one series. *)
let m_dispatch_rr = Obs.Metrics.counter "monitor.dispatch.rr"
let m_dispatch_steals = Obs.Metrics.counter "monitor.dispatch.steals"
let h_dispatch_backlog = Obs.Metrics.histogram "monitor.dispatch.backlog"

type worker = {
  w_slot : int;  (** the worker domain's {!Rt_dom} slot *)
  w_epoch : int;  (** that slot's epoch at registration (liveness stamp) *)
  w_backlog : Rt_sock.t Queue.t;  (** guarded by [w_mu] *)
  w_mu : Mutex.t;
  w_pending : int Atomic.t;  (** lock-free [Queue.length] mirror *)
  mutable w_served : int;  (** worker-written *)
  mutable w_stolen : int;  (** worker-written *)
}

type t = {
  l_workers : worker option array;
  l_registered : int Atomic.t;
  l_capacity : int;  (** per-worker backlog bound *)
  l_mu : Mutex.t;  (** guards [l_rr] and registration *)
  mutable l_rr : int;
  l_closing : bool Atomic.t;
  l_accepted : int Atomic.t;
  l_ring_size : int;
  l_pool_pages : int;
}

let listener ?(ring_size = 64 * 1024) ?(pool_pages = 512) ?(capacity = 128) ~workers () =
  if workers < 1 then invalid_arg "Rt_monitor.listener";
  {
    l_workers = Array.make workers None;
    l_registered = Atomic.make 0;
    l_capacity = capacity;
    l_mu = Mutex.create ();
    l_rr = 0;
    l_closing = Atomic.make false;
    l_accepted = Atomic.make 0;
    l_ring_size = ring_size;
    l_pool_pages = pool_pages;
  }

let workers t = Array.length t.l_workers
let registered t = Atomic.get t.l_registered
let accepted t = Atomic.get t.l_accepted

(* Called from the worker's own domain; worker index [i] is fixed by the
   caller so dispatch order is stable regardless of registration races.

   A replacement worker may re-register the index of a *dead* predecessor
   (the restart path after a crash or a reap): the dead worker's
   undrained backlog transfers to the replacement so no dispatched
   connection is orphaned.  Re-registering a live index still raises. *)
let register t ~index =
  let slot = Rt_dom.self () in
  let w =
    {
      w_slot = slot;
      w_epoch = Rt_dom.epoch slot;
      w_backlog = Queue.create ();
      w_mu = Mutex.create ();
      w_pending = Atomic.make 0;
      w_served = 0;
      w_stolen = 0;
    }
  in
  Mutex.lock t.l_mu;
  (match t.l_workers.(index) with
  | Some old when Rt_dom.alive_at old.w_slot ~epoch:old.w_epoch ->
    Mutex.unlock t.l_mu;
    invalid_arg "Rt_monitor.register: index taken"
  | Some old ->
    (* Inherit the dead predecessor's backlog (poisoned connections are
       dropped on the floor here; live ones get served). *)
    Mutex.lock old.w_mu;
    Queue.iter
      (fun s ->
        if not (Rt_sock.poisoned s) then begin
          Queue.push s w.w_backlog;
          Atomic.incr w.w_pending
        end)
      old.w_backlog;
    Queue.clear old.w_backlog;
    Atomic.set old.w_pending 0;
    Mutex.unlock old.w_mu;
    t.l_workers.(index) <- Some w;
    Mutex.unlock t.l_mu
  | None ->
    t.l_workers.(index) <- Some w;
    Mutex.unlock t.l_mu;
    Atomic.incr t.l_registered);
  w

let worker_exn t i =
  match t.l_workers.(i) with
  | Some w -> w
  | None -> invalid_arg "Rt_monitor: worker not registered"

let pending t i = Atomic.get (worker_exn t i).w_pending
let served w = w.w_served
let stolen w = w.w_stolen

let notify_worker w = Waiter.notify (Rt_dom.waiter w.w_slot)

(* ---- dispatch (client side) ---- *)

(* Round-robin pick with capacity bound, like the sim monitor's
   [dispatch]; when every backlog is at capacity we sleep-retry (no wakeup
   edge exists from worker pops back to connecting clients). *)
let rec pick_worker t =
  Mutex.lock t.l_mu;
  let n = Array.length t.l_workers in
  let r =
    D.pick ~n ~rr:t.l_rr
      ~length:(fun i -> Atomic.get (worker_exn t i).w_pending)
      ~capacity:(fun _ -> t.l_capacity)
  in
  (match r with Some i -> t.l_rr <- (i + 1) mod n | None -> ());
  Mutex.unlock t.l_mu;
  match r with
  | Some i -> worker_exn t i
  | None ->
    Unix.sleepf 0.0002;
    pick_worker t

let connect t ~dom =
  if Atomic.get t.l_closing then invalid_arg "Rt_monitor.connect: closing";
  if Atomic.get t.l_registered < Array.length t.l_workers then
    invalid_arg "Rt_monitor.connect: workers not all registered";
  let w = pick_worker t in
  (* Server-end tokens start free (owner -1): the connection may be stolen
     by a different worker than the one we picked, and the acceptor's
     first operation takes free tokens with one CAS. *)
  let client_end, server_end =
    Rt_sock.pair ~ring_size:t.l_ring_size ~pool_pages:t.l_pool_pages ~a_owner:dom
      ~b_owner:(-1) ()
  in
  (* Chaos site: die after creating the pair, before the backlog push —
     the fork-storm shape: a connection exists that no worker will ever
     see, and the client end must fail with [Peer_dead], not hang. *)
  if Sds_fault.armed () then Sds_fault.inject "rt_monitor.connect";
  Mutex.lock w.w_mu;
  Queue.push server_end w.w_backlog;
  Atomic.incr w.w_pending;
  Mutex.unlock w.w_mu;
  Obs.Metrics.incr m_dispatch_rr;
  Obs.Metrics.observe h_dispatch_backlog (Atomic.get w.w_pending);
  Atomic.incr t.l_accepted;
  Obs.Trace.emit Obs.Trace.Accept;
  notify_worker w;
  (* A parked sibling with an empty backlog may be waiting to steal this
     very connection (its park readiness covers [any_pending]); the
     per-worker notify above never reaches it.  Wake idle siblings too —
     for a running worker this costs one parked-flag load. *)
  Array.iter
    (function
      | Some w' when w' != w && Atomic.get w'.w_pending = 0 -> notify_worker w'
      | _ -> ())
    t.l_workers;
  client_end

(* ---- accept (worker side) ---- *)

let pop_own w =
  Mutex.lock w.w_mu;
  let r = Queue.take_opt w.w_backlog in
  (match r with Some _ -> Atomic.decr w.w_pending | None -> ());
  Mutex.unlock w.w_mu;
  r

(* Idle worker steals from the strictly longest sibling backlog (§4.5.2),
   through the shared policy core. *)
let try_steal t ~self_index =
  let n = Array.length t.l_workers in
  match
    D.steal_victim ~n ~self:self_index ~length:(fun i ->
        match t.l_workers.(i) with
        | Some w -> Atomic.get w.w_pending
        | None -> 0)
  with
  | None -> None
  | Some v -> (
    let victim = worker_exn t v in
    match pop_own victim with
    | None -> None
    | Some s ->
      Obs.Metrics.incr m_dispatch_steals;
      Obs.Trace.emit Obs.Trace.Steal;
      Some s)

let any_pending t =
  let n = Array.length t.l_workers in
  let rec go i =
    i < n
    &&
    match t.l_workers.(i) with
    | Some w -> Atomic.get w.w_pending > 0 || go (i + 1)
    | None -> go (i + 1)
  in
  go 0

(* Blocking accept for worker [index]: own backlog first, then steal, then
   park on the worker's own waiter until the dispatcher (or a closer)
   wakes it.  [None] once the listener is closed and every backlog is
   drained. *)
let accept t ~index =
  let w = worker_exn t index in
  let rec go () =
    match pop_own w with
    | Some s -> Some s
    | None -> (
      match try_steal t ~self_index:index with
      | Some s ->
        w.w_stolen <- w.w_stolen + 1;
        Some s
      | None ->
        if Atomic.get t.l_closing && not (any_pending t) then None
        else begin
          Waiter.wait (Rt_dom.waiter w.w_slot) ~ready:(fun () ->
              Atomic.get w.w_pending > 0 || Atomic.get t.l_closing || any_pending t);
          go ()
        end)
  in
  match go () with
  | Some s ->
    Rt_sock.claim s ~dom:w.w_slot;
    (* Chaos site: die between popping a connection and serving it — the
       monitor-restart shape: the connection is in nobody's backlog and
       recovery must poison it rather than strand the client. *)
    if Sds_fault.armed () then Sds_fault.inject "rt_monitor.accept";
    w.w_served <- w.w_served + 1;
    Some s
  | None -> None

let close_listener t =
  Atomic.set t.l_closing true;
  Array.iter (function Some w -> notify_worker w | None -> ()) t.l_workers

(* ---- flight-recorder section ---- *)

let reg_mu = Mutex.create ()
let listeners : t Weak.t = Weak.create 64

let render_monitor () =
  let b = Buffer.create 128 in
  Mutex.lock reg_mu;
  for i = 0 to Weak.length listeners - 1 do
    match Weak.get listeners i with
    | None -> ()
    | Some t ->
      Buffer.add_string b
        (Printf.sprintf "listener#%d rr=%d accepted=%d closing=%b" i t.l_rr
           (Atomic.get t.l_accepted) (Atomic.get t.l_closing));
      Array.iteri
        (fun j -> function
          | None -> Buffer.add_string b (Printf.sprintf " w%d=unreg" j)
          | Some w ->
            Buffer.add_string b
              (Printf.sprintf " w%d=slot%d/pend%d/served%d/stolen%d" j w.w_slot
                 (Atomic.get w.w_pending) w.w_served w.w_stolen))
        t.l_workers;
      Buffer.add_char b '\n'
  done;
  Mutex.unlock reg_mu;
  Buffer.contents b

let () = Sds_obs.Flight.register_state "rt_monitor" render_monitor

let track t =
  Mutex.lock reg_mu;
  (try
     let placed = ref false in
     for i = 0 to Weak.length listeners - 1 do
       if (not !placed) && Weak.get listeners i = None then begin
         Weak.set listeners i (Some t);
         placed := true
       end
     done
   with e ->
     Mutex.unlock reg_mu;
     raise e);
  Mutex.unlock reg_mu

let create ?ring_size ?pool_pages ?capacity ~workers () =
  let t = listener ?ring_size ?pool_pages ?capacity ~workers () in
  track t;
  t

(* ---- liveness reaper (§4.3) --------------------------------------------

   Out-of-band death detection for crashes the [died] hook cannot catch
   (a wedged domain, a killed thread): a background thread samples every
   [enroll]ed live slot's heartbeat word each round and declares a slot
   dead after [stalls] consecutive unchanged samples.  Slots parked on
   their own waiter are exempt — parking is legitimate silence (a worker
   waiting in [accept] beats nothing); the bound therefore only covers
   slots that promised to be runnable.  Process-wide singleton: one
   reaper serves every listener. *)

let m_reaped = Obs.Metrics.counter "fault.reaped"

let reaper_mu = Mutex.create ()
let reaper : (Thread.t * bool Atomic.t) option ref = ref None

let reaper_round ~stalls ~last ~miss =
  for s = 0 to Rt_dom.max_slots - 1 do
    if
      Rt_dom.slot_live s && Rt_dom.is_enrolled s
      && not (Waiter.parked (Rt_dom.waiter s))
    then begin
      let hb = Rt_dom.heartbeat s in
      if hb = last.(s) then begin
        miss.(s) <- miss.(s) + 1;
        if miss.(s) >= stalls then begin
          if Rt_dom.declare_dead s then Obs.Metrics.incr m_reaped;
          miss.(s) <- 0
        end
      end
      else begin
        last.(s) <- hb;
        miss.(s) <- 0
      end
    end
    else begin
      (* Not watched this round (free, unenrolled or parked): restart the
         silence window from scratch when it next becomes watchable. *)
      last.(s) <- Rt_dom.heartbeat s;
      miss.(s) <- 0
    end
  done

let start_reaper ?(interval_s = 0.005) ?(stalls = 8) () =
  if interval_s <= 0. || stalls < 1 then invalid_arg "Rt_monitor.start_reaper";
  Mutex.lock reaper_mu;
  (match !reaper with
  | Some _ -> ()
  | None ->
    let stop = Atomic.make false in
    let th =
      Thread.create
        (fun () ->
          let last = Array.make Rt_dom.max_slots (-1) in
          let miss = Array.make Rt_dom.max_slots 0 in
          while not (Atomic.get stop) do
            Thread.delay interval_s;
            if not (Atomic.get stop) then reaper_round ~stalls ~last ~miss
          done)
        ()
    in
    reaper := Some (th, stop));
  Mutex.unlock reaper_mu

let stop_reaper () =
  Mutex.lock reaper_mu;
  let r = !reaper in
  reaper := None;
  Mutex.unlock reaper_mu;
  match r with
  | Some (th, stop) ->
    Atomic.set stop true;
    Thread.join th
  | None -> ()
