(** Real-domain token handoff (§4.2) over the shared
    {!Sds_proto.Token_proto} state machine.

    One token per socket-queue direction.  The held-by-me fast path is one
    plain compare on entry plus one atomic load at the operation boundary;
    takeover runs request → drain → release-fence → resume through
    {!Sds_notify.Waiter} parking.  Holds are cooperative: grants happen at
    operation boundaries, so a domain done with a socket must [release]
    (the socket layer does at EOF/close).

    Crash liveness (§4.3): the state word is stamped with the holder's
    {!Rt_dom} epoch, so a requester that finds the stamped incarnation
    retired seizes the token with a CAS ([try_seize]) instead of parking
    forever; every park is additionally bounded
    ({!Sds_notify.Waiter.wait_until} + exponential backoff), and an
    {!Rt_dom.on_death} hook grants or frees everything a dead incarnation
    held.  Every token registers with the flight recorder ([rt_token]
    state section: holder, epoch, pending requester, in-flight count). *)

type t

val create : ?name:string -> holder:int -> unit -> t
(** [holder] is the owning domain's {!Rt_dom} slot; [-1] creates the token
    free (first operator takes it with one CAS) — for dispatched endpoints
    whose eventual owner is unknown at creation. *)

val holder : t -> int
(** Racy snapshot of the holding slot; -1 when free. *)

val handoffs : t -> int
(** Grants served to a pending requester (holder-written; racy read). *)

val acquire : t -> dom:int -> unit
(** Make [dom] the holder: free on the held-by-[dom] fast path, otherwise
    the takeover protocol (observed in the [token.takeover_ns] histogram). *)

val with_held : t -> dom:int -> (unit -> 'a) -> 'a
(** Run [f] as one operation under the token: acquire if needed, run, then
    serve any takeover posted meanwhile at the operation boundary.
    Allocation-free on the held-by-[dom] fast path. *)

val release : t -> dom:int -> unit
(** Relinquish (EOF/close/ownership transfer): grants to a pending
    requester, otherwise frees the token.  No-op when [dom] is not the
    holder. *)

(** {1 Crash recovery} *)

val holder_dead : t -> bool
(** Is the token held by a retired incarnation (crashed/exited holder)?
    Racy snapshot; [false] when free. *)

val try_seize : t -> dom:int -> bool
(** Seize a dead-held token for [dom] (the seize fence: a CAS against the
    exact word proved dead, preserving any other slot's pending request).
    [false] when the token is free, already ours, or the holder is alive.
    Counted as [token.seized_dead]. *)

val kick : t -> unit
(** Wake every slot parked on this token so it re-checks its condition —
    used when poisoning a connection whose waiters must now fail with
    [Peer_dead]. *)

val set_wait_timeout_ns : int -> unit
(** Bound on any single park in the acquire slow path (default 50 ms):
    the fallback liveness window when a notify is lost.  Raises on a
    non-positive value. *)
