(** Real-domain token handoff (§4.2) over the shared
    {!Sds_proto.Token_proto} state machine.

    One token per socket-queue direction.  The held-by-me fast path is one
    plain compare on entry plus one atomic load at the operation boundary;
    takeover runs request → drain → release-fence → resume through
    {!Sds_notify.Waiter} parking.  Holds are cooperative: grants happen at
    operation boundaries, so a domain done with a socket must [release]
    (the socket layer does at EOF/close).  Every token registers with the
    flight recorder ([rt_token] state section: holder, pending requester,
    in-flight count). *)

type t

val create : ?name:string -> holder:int -> unit -> t
(** [holder] is the owning domain's {!Rt_dom} slot; [-1] creates the token
    free (first operator takes it with one CAS) — for dispatched endpoints
    whose eventual owner is unknown at creation. *)

val holder : t -> int
(** Racy snapshot of the holding slot; -1 when free. *)

val handoffs : t -> int
(** Grants served to a pending requester (holder-written; racy read). *)

val acquire : t -> dom:int -> unit
(** Make [dom] the holder: free on the held-by-[dom] fast path, otherwise
    the takeover protocol (observed in the [token.takeover_ns] histogram). *)

val with_held : t -> dom:int -> (unit -> 'a) -> 'a
(** Run [f] as one operation under the token: acquire if needed, run, then
    serve any takeover posted meanwhile at the operation boundary.
    Allocation-free on the held-by-[dom] fast path. *)

val release : t -> dom:int -> unit
(** Relinquish (EOF/close/ownership transfer): grants to a pending
    requester, otherwise frees the token.  No-op when [dom] is not the
    holder. *)
