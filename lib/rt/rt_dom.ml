(* Domain slot registry for the real-domain backend.

   Every participating domain gets a small stable slot id (0 .. max_slots-1)
   used as its token-holder identity ([Sds_proto.Token_proto] packs it into
   the token word) and as the index of its parking spot: one
   [Sds_notify.Waiter] per slot, so any peer that makes a condition true for
   domain [d] can wake exactly [d] ([Waiter] allows one logical waiter and
   many notifiers — the per-domain waiter is that one waiter).

   The waiter array is immutable and fully built at module initialization in
   whichever domain first touches this module; [Domain.spawn]'s
   happens-before edge publishes it to every domain spawned afterwards. *)

module Waiter = Sds_notify.Waiter

let max_slots = 64

let () = assert (max_slots <= Sds_proto.Token_proto.max_id)

let waiters = Array.init max_slots (fun _ -> Waiter.create ())

let mu = Mutex.create ()
let taken = Array.make max_slots false

(* The calling domain's slot; -1 while unassigned. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let alloc_slot () =
  Mutex.lock mu;
  let s = ref (-1) in
  (try
     for i = 0 to max_slots - 1 do
       if !s < 0 && not taken.(i) then begin
         taken.(i) <- true;
         s := i
       end
     done
   with e ->
     Mutex.unlock mu;
     raise e);
  Mutex.unlock mu;
  if !s < 0 then failwith "Rt_dom: out of domain slots";
  !s

let release_slot s =
  Mutex.lock mu;
  taken.(s) <- false;
  Mutex.unlock mu

let self () =
  let s = Domain.DLS.get slot_key in
  if s >= 0 then s
  else begin
    let s = alloc_slot () in
    Domain.DLS.set slot_key s;
    s
  end

let waiter s = waiters.(s)

(* Spawn a domain with a slot held for its lifetime.  The slot is released
   (and becomes reusable) when the body returns, even on exceptions. *)
let spawn f =
  Domain.spawn (fun () ->
      let s = self () in
      Fun.protect
        ~finally:(fun () ->
          Domain.DLS.set slot_key (-1);
          release_slot s)
        f)

let available_cores () = Domain.recommended_domain_count ()
