(* Domain slot registry for the real-domain backend.

   Every participating domain gets a small stable slot id (0 .. max_slots-1)
   used as its token-holder identity ([Sds_proto.Token_proto] packs it into
   the token word) and as the index of its parking spot: one
   [Sds_notify.Waiter] per slot, so any peer that makes a condition true for
   domain [d] can wake exactly [d] ([Waiter] allows one logical waiter and
   many notifiers — the per-domain waiter is that one waiter).

   The waiter array is immutable and fully built at module initialization in
   whichever domain first touches this module; [Domain.spawn]'s
   happens-before edge publishes it to every domain spawned afterwards.

   Liveness (§4.3 crash compatibility): each slot carries an *epoch*
   counter — odd while a domain incarnation holds the slot, even while the
   slot is free or its holder is dead.  Slots are reused, so an epoch value
   names one incarnation: protocol state stamped with (slot, epoch) can be
   checked for liveness with [alive_at] and is immune to a new domain
   landing on the same slot id.  A domain dies in one of two ways:

   - the [died] hook: [spawn] wraps the body so an escaping exception
     declares the slot dead *before* the slot is released — peers recover
     immediately, no silence window;
   - the reaper ([Rt_monitor.start_reaper]): an [enroll]ed slot whose
     heartbeat word stops advancing for a bounded silence window while the
     domain is not legitimately parked is declared dead out-of-band.

   [declare_dead] is idempotent (one CAS decides) and runs the registered
   death hooks exactly once per incarnation; the hooks are how rt_token
   seizes tokens, rt_sock poisons rings and the pagepool reclaims pages. *)

module Waiter = Sds_notify.Waiter

let max_slots = 64

let () = assert (max_slots <= Sds_proto.Token_proto.max_id)

let waiters = Array.init max_slots (fun _ -> Waiter.create ())

let mu = Mutex.create ()
let taken = Array.make max_slots false

(* Per-slot liveness epoch: even = free/dead, odd = live.  Bumped under
   [mu] on allocation and release, and by the lock-free [declare_dead] CAS
   on crash (which is why the cells are atomics, not [mu]-guarded ints). *)
let epochs = Array.init max_slots (fun _ -> Atomic.make 0)

(* Per-slot heartbeat word, bumped by [beat] on every fast-path operation.
   Plain stores into cells padded [hb_stride] words apart: a heartbeat is a
   monotone racy-read signal for the reaper and the flight watchdog, never
   a synchronization point, so one unfenced store is the whole cost. *)
let hb_stride = 8
let heartbeats = Array.make (max_slots * hb_stride) 0

(* Slots that promised to keep beating (workers under a reaper's watch). *)
let enrolled = Array.init max_slots (fun _ -> Atomic.make false)

(* The calling domain's slot; -1 while unassigned. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let alloc_slot () =
  Mutex.lock mu;
  let s = ref (-1) in
  (try
     for i = 0 to max_slots - 1 do
       if !s < 0 && not taken.(i) then begin
         taken.(i) <- true;
         (* even -> odd: this incarnation's epoch *)
         Atomic.set epochs.(i) (Atomic.get epochs.(i) + 1);
         s := i
       end
     done
   with e ->
     Mutex.unlock mu;
     raise e);
  Mutex.unlock mu;
  if !s < 0 then failwith "Rt_dom: out of domain slots";
  !s

let release_slot s =
  Mutex.lock mu;
  taken.(s) <- false;
  Atomic.set enrolled.(s) false;
  (* odd -> even, unless [declare_dead] already retired this incarnation.
     Either way, protocol state stamped with the old odd epoch now fails
     [alive_at] — a domain that exited without releasing its tokens is
     seizable exactly like a crashed one. *)
  let e = Atomic.get epochs.(s) in
  if e land 1 = 1 then Atomic.set epochs.(s) (e + 1);
  Mutex.unlock mu

let self () =
  let s = Domain.DLS.get slot_key in
  if s >= 0 then s
  else begin
    let s = alloc_slot () in
    Domain.DLS.set slot_key s;
    s
  end

let waiter s = waiters.(s)

(* ---- liveness ---------------------------------------------------------- *)

let epoch s = Atomic.get epochs.(s)
let slot_live s = Atomic.get epochs.(s) land 1 = 1

(* Is the incarnation that recorded [epoch] for slot [s] still alive?
   False for a retired epoch (crash, exit, reuse) and for any even stamp. *)
let[@inline] alive_at s ~epoch = epoch land 1 = 1 && Atomic.get epochs.(s) = epoch

let[@inline] [@sds.hot] beat s =
  let i = s * hb_stride in
  Array.unsafe_set heartbeats i (Array.unsafe_get heartbeats i + 1)

let heartbeat s = heartbeats.(s * hb_stride)

let enroll () =
  let s = self () in
  Atomic.set enrolled.(s) true;
  s

let is_enrolled s = Atomic.get enrolled.(s)

(* ---- death hooks ------------------------------------------------------- *)

let hooks_mu = Mutex.create ()
let death_hooks : (int -> unit) list ref = ref []

let on_death f =
  Mutex.lock hooks_mu;
  death_hooks := f :: !death_hooks;
  Mutex.unlock hooks_mu

(* Retire slot [s]'s current incarnation and run the recovery hooks.  The
   odd->even CAS is the arbitration: exactly one caller (the dying domain's
   own unwind, or the reaper) wins and runs the hooks; everyone else sees
   [false].  The epoch is bumped *before* the hooks run, so every liveness
   check a hook performs already sees the slot dead. *)
let declare_dead s =
  let e = Atomic.get epochs.(s) in
  if e land 1 = 1 && Atomic.compare_and_set epochs.(s) e (e + 1) then begin
    Atomic.set enrolled.(s) false;
    let hooks = Mutex.lock hooks_mu; let h = !death_hooks in Mutex.unlock hooks_mu; h in
    List.iter (fun f -> try f s with _ -> ()) (List.rev hooks);
    (* Anything parked on a per-slot waiter re-checks its condition on
       wake; liveness conditions just changed for all of them. *)
    Array.iter Waiter.notify waiters;
    true
  end
  else false

(* Spawn a domain with a slot held for its lifetime.  The slot is released
   (and becomes reusable) when the body returns, even on exceptions — but
   an *escaping exception* first declares the slot dead (the [died] hook),
   so peers recover before the slot can be reused. *)
let spawn f =
  Domain.spawn (fun () ->
      let s = self () in
      Fun.protect
        ~finally:(fun () ->
          Domain.DLS.set slot_key (-1);
          release_slot s)
        (fun () ->
          try f ()
          with e ->
            ignore (declare_dead s);
            raise e))

let available_cores () = Domain.recommended_domain_count ()

(* ---- observability ------------------------------------------------------ *)

(* Slot table for the flight recorder: epochs included so a postmortem can
   match token/page stamps against incarnations. *)
let render_slots () =
  let b = Buffer.create 256 in
  for s = 0 to max_slots - 1 do
    let e = Atomic.get epochs.(s) in
    if e > 0 then
      Buffer.add_string b
        (Printf.sprintf "slot=%d epoch=%d live=%b enrolled=%b heartbeat=%d parked=%b\n" s e
           (e land 1 = 1) (Atomic.get enrolled.(s)) (heartbeat s) (Waiter.parked waiters.(s)))
  done;
  Buffer.contents b

let () = Sds_obs.Flight.register_state "rt_dom" render_slots

(* Heartbeat feed for [Flight.watchdog]: one named sample per enrolled live
   slot, so a stalled (but not parked) worker triggers a dump. *)
let () =
  Sds_obs.Flight.register_heartbeats "rt_dom" (fun () ->
      let out = ref [] in
      for s = max_slots - 1 downto 0 do
        if slot_live s && Atomic.get enrolled.(s) && not (Waiter.parked waiters.(s)) then
          out := (Printf.sprintf "slot%d" s, heartbeat s) :: !out
      done;
      !out)
