(* Eventcount/futex-style waiter: the real-code implementation of the §4.4
   event-notification layer for OCaml domains.

   The protocol is the classic eventcount three-step:

     let ticket = Waiter.prepare_wait w in   (* publish intent to sleep *)
     if ready () then Waiter.cancel w        (* data raced in: don't sleep *)
     else Waiter.commit_wait w ticket        (* park until a notify *)

   and the notifier side, after making the condition true:

     Waiter.notify w

   Correctness hinges on the SC atomics: [prepare_wait] stores the parked
   flag *before* the waiter re-checks the condition, and [notify] loads the
   parked flag *after* the producer published its data.  By the OCaml memory
   model's total order over SC operations, either the notifier observes the
   parked flag (and delivers a wake), or the waiter's re-check observes the
   data (and cancels) — the lost-wakeup window of a bare flag+condvar
   scheme (read flag, decide to skip the broadcast, while the peer is
   mid-commit) cannot occur.

   The parked flag [state] is producer-visible and three-valued:

     0  idle — no waiter committed; [notify] is one atomic load and a branch
     1  a waiter has prepared/committed and needs a wake
     2  a wake has been delivered for this parked episode

   State 2 is what keeps a streaming producer cheap while its consumer is
   still context-switching in: only the *first* notify of an episode pays
   the sequence bump and the mutex/broadcast; every subsequent enqueue is
   back to the one-load fast path.  Only the waiter moves 0→1 and *→0; only
   a notifier moves 1→2 (by CAS, so concurrent notifiers elect one waker —
   which is what lets N producer rings share one waiter in [wait_any]).

   The sequence number [seq] closes the window between the waiter's last
   condition check and the actual sleep: [commit_wait] sleeps only while
   [seq] still equals the ticket read in [prepare_wait], and [notify] bumps
   [seq] before broadcasting, both under the mutex discipline that makes
   condvar wakeups reliable.

   Spin phases come from the shared [Policy] state machine (bounded spin →
   exponential backoff → park), adapting the spin budget to whether
   spinning actually pays on this machine/workload.  All spin-phase
   operations — [prepare_wait], [cancel], [notify] on an unparked waiter —
   allocate nothing; only the park path touches the mutex, the wall clock
   and the wake-latency histogram. *)

module Obs = Sds_obs.Obs

type t = {
  seq : int Atomic.t;  (** bumped once per delivered wake; the eventcount *)
  state : int Atomic.t;  (** producer-visible parked flag: 0 / 1 / 2 above *)
  m : Mutex.t;
  c : Condition.t;
  policy : Policy.t;
  mutable rr : int;  (** [wait_any] rotation cursor (waiter-private) *)
}

(* Spin-success vs park counters, wake-latency histogram, mode-switch trace
   events ([Park] on polling→interrupt, [Wake] on the delivered notify). *)
let c_spin_wins = Obs.Metrics.counter "notify.spin_wins"
let c_parks = Obs.Metrics.counter "notify.parks"
let c_wakes = Obs.Metrics.counter "notify.wakes"
let c_wait_timeouts = Obs.Metrics.counter "notify.wait_timeouts"
let h_wake_latency = Obs.Metrics.histogram "notify.wake_latency_ns"

let create ?min_spin ?max_spin ?backoff_rounds ?adaptive ?(spin = 512) () =
  {
    seq = Atomic.make 0;
    state = Atomic.make 0;
    m = Mutex.create ();
    c = Condition.create ();
    policy = Policy.create ?min_spin ?max_spin ?backoff_rounds ?adaptive ~budget:spin ();
    rr = 0;
  }

let policy t = t.policy

let[@sds.hot] parked t = Atomic.get t.state <> 0

(* Hot-path notification: one SC load when nobody is parked.  The CAS
   elects a single waker per parked episode (and per contending notifier),
   so a producer streaming into a parked consumer pays the broadcast once,
   not once per message.

   [@sds.model]-annotated bindings here are extracted into the
   "park-notify" Interleave model (lib/check/extract.ml); edits must keep
   test/golden/park-notify.golden in sync or `sdmodel check` fails CI. *)
let[@inline] [@sds.hot] [@sds.model "park-notify/notifier"] notify t =
  if Atomic.get t.state = 1 && Atomic.compare_and_set t.state 1 2 then begin
    Atomic.incr t.seq;
    Mutex.lock t.m;
    Condition.broadcast t.c;
    Mutex.unlock t.m;
    Obs.Metrics.incr c_wakes;
    Obs.Trace.emit Obs.Trace.Wake
  end

let[@sds.hot] [@sds.model "waiter/prepare"] prepare_wait t =
  let ticket = Atomic.get t.seq in
  Atomic.set t.state 1;
  ticket

let[@sds.hot] [@sds.model "waiter/cancel"] cancel t = Atomic.set t.state 0

let[@sds.model "waiter/commit"] commit_wait t ticket =
  Obs.Metrics.incr c_parks;
  Obs.Trace.emit Obs.Trace.Park;
  (* Raw monotonic stamps, never the (possibly simulated) span clock:
     parking blocks a real thread, so the park→wake edge is wall time by
     definition.  The same edge feeds [span.wake] and the flight recorder. *)
  let t0 = Sds_obs.Span.monotonic_ns () in
  Mutex.lock t.m;
  while Atomic.get t.seq = ticket do
    Condition.wait t.c t.m
  done;
  Mutex.unlock t.m;
  Atomic.set t.state 0;
  let t1 = Sds_obs.Span.monotonic_ns () in
  Obs.Metrics.observe h_wake_latency (t1 - t0);
  Sds_obs.Span.observe_wake ~parked_ns:t0 ~woke_ns:t1

(* One full prepare/re-check/commit parked episode — the §4.4 lost-wakeup-free
   sleep.  Returns [true] when the re-check canceled the park (data raced
   in between the caller's last poll and the parked-flag store), [false]
   after an actual park+wake.  This is the waiter half of the
   "park-notify" extracted model: the re-check between [prepare_wait] and
   [commit_wait] is exactly what the checker's no-recheck seeded mutation
   deletes. *)
let[@sds.model "park-notify/waiter"] park_once t ~ready =
  let ticket = prepare_wait t in
  if ready () then begin
    cancel t;
    true
  end
  else begin
    Policy.on_park t.policy;
    commit_wait t ticket;
    Policy.on_wake t.policy;
    false
  end

(* Adaptive blocking wait: spin (per the policy), then prepare/re-check/
   commit.  [ready] must be made true only by peers that subsequently call
   [notify]. *)
let wait t ~ready =
  if not (ready ()) then begin
    let pol = t.policy in
    Policy.begin_wait pol;
    let rec loop () =
      if ready () then begin
        Obs.Metrics.incr c_spin_wins;
        Policy.on_success pol
      end
      else begin
        let u = Policy.poll pol in
        if u > 0 then begin
          for _ = 1 to u do
            Domain.cpu_relax ()
          done;
          loop ()
        end
        else if park_once t ~ready then begin
          Obs.Metrics.incr c_spin_wins;
          Policy.on_success pol
        end
        else if not (ready ()) then begin
          (* Spurious or stale wake (e.g. a notify for data a previous
             iteration already consumed): start a fresh wait. *)
          Policy.begin_wait pol;
          loop ()
        end
      end
    in
    loop ()
  end

(* Deadline-bounded wait: the crash-recovery fallback path.  Stdlib
   [Condition] has no timed wait, so past the spin phase this never
   commits an unbounded condvar park — it naps with exponentially growing
   [Thread.delay]s (50 µs doubling to a 2 ms cap) and re-polls [ready] and
   the deadline between naps.  Consequences, both deliberate:

   - no notify edge is required for progress: a peer that dies without
     ever calling [notify] cannot wedge a [wait_until] caller past the
     deadline (exactly the property [Rt_token]'s dead-holder seize needs);
   - determinism: with a non-adaptive policy ([~adaptive:false], the sim
     configuration) the spin budget is fixed, so the observable spin
     sequence is identical run to run — the sim stays deterministic, and
     the nap schedule only engages on the real-time fallback path the sim
     never takes.

   Returns [true] the moment [ready ()] holds, [false] once the deadline
   (a [Span.monotonic_ns] timestamp) passes — counted in
   [notify.wait_timeouts]. *)
let wait_until t ~deadline_ns ~ready =
  if ready () then true
  else begin
    let pol = t.policy in
    Policy.begin_wait pol;
    let rec loop nap =
      if ready () then begin
        Obs.Metrics.incr c_spin_wins;
        Policy.on_success pol;
        true
      end
      else if Sds_obs.Span.monotonic_ns () >= deadline_ns then begin
        Obs.Metrics.incr c_wait_timeouts;
        false
      end
      else begin
        let u = Policy.poll pol in
        if u > 0 then begin
          for _ = 1 to u do
            Domain.cpu_relax ()
          done;
          loop nap
        end
        else begin
          Obs.Metrics.incr c_parks;
          Policy.on_park pol;
          Thread.delay nap;
          Policy.on_wake pol;
          Policy.begin_wait pol;
          loop (Float.min (nap *. 2.) 0.002)
        end
      end
    in
    loop 5e-5
  end

(* Wait until one of [n] sources is ready; returns its index.  The scan
   starts one past the last serviced source and the cursor advances past
   the winner, so N continuously-ready sources are serviced round-robin —
   no source starves (the real-code analogue of the per-process epoll
   thread fanning events out fairly in §4.4).  All producers must share
   this waiter as their notification target. *)
let wait_any t ~n ~ready =
  if n <= 0 then invalid_arg "Waiter.wait_any";
  let scan () =
    let start = t.rr in
    let rec go k =
      if k = n then -1
      else
        let i = (start + k) mod n in
        if ready i then i else go (k + 1)
    in
    go 0
  in
  let finish i =
    t.rr <- (i + 1) mod n;
    i
  in
  match scan () with
  | i when i >= 0 -> finish i
  | _ ->
    let pol = t.policy in
    Policy.begin_wait pol;
    let rec loop () =
      match scan () with
      | i when i >= 0 ->
        Obs.Metrics.incr c_spin_wins;
        Policy.on_success pol;
        finish i
      | _ ->
        let u = Policy.poll pol in
        if u > 0 then begin
          for _ = 1 to u do
            Domain.cpu_relax ()
          done;
          loop ()
        end
        else begin
          let ticket = prepare_wait t in
          match scan () with
          | i when i >= 0 ->
            cancel t;
            Obs.Metrics.incr c_spin_wins;
            Policy.on_success pol;
            finish i
          | _ ->
            Policy.on_park pol;
            commit_wait t ticket;
            Policy.on_wake pol;
            Policy.begin_wait pol;
            loop ()
        end
    in
    loop ()
