(* The §4.4 polling↔interrupt mode switch as a reusable state machine.

   SocksDirect receivers poll their queues for a bounded number of empty
   rounds (polling mode), then publish that they are going to sleep and hand
   the wakeup responsibility to the sender side (interrupt mode).  This
   module is that decision logic, factored out of both consumers so the
   simulator's cost model ([Libsd.next_msg], [Shm_chan]) and the real
   cross-domain waiter ([Waiter]) run the *same* state machine:

   - the simulator drives it with [adaptive:false] and a fixed budget equal
     to its [yield_rounds] config, reproducing the paper's fixed polling
     budget exactly (and keeping sim results bit-identical);
   - the real waiter drives it adaptively: a successful spin doubles the
     budget (spinning is paying off — keep doing it), a park halves it
     (spinning was wasted work — on a time-shared core the peer cannot run
     while we burn the quantum, so get out of the way quickly).

   [poll] returns the number of relax/yield units to burn before the next
   readiness check: [1] during the bounded spin phase, a doubling burst
   during the exponential-backoff phase, and [0] when the budget is
   exhausted — at which point the state machine is in [Interrupt] mode and
   the caller must arm a real wakeup (eventcount park, monitor relay, ...)
   before sleeping. *)

type mode = Polling | Interrupt

type t = {
  min_spin : int;
  max_spin : int;
  adaptive : bool;
  backoff_rounds : int;  (** extra checks between spin exhaustion and park *)
  max_relax : int;  (** cap on the backoff burst size *)
  mutable budget : int;  (** current spin budget (checks before backoff) *)
  mutable left : int;  (** spin checks remaining in the current wait *)
  mutable backoff_left : int;
  mutable relax : int;  (** current backoff burst size (doubles per round) *)
  mutable mode : mode;
}

let create ?(min_spin = 4) ?(max_spin = 4096) ?(backoff_rounds = 3) ?(max_relax = 64)
    ?(adaptive = true) ~budget () =
  if budget < 0 then invalid_arg "Policy.create: negative budget";
  {
    min_spin;
    max_spin;
    adaptive;
    backoff_rounds;
    max_relax;
    budget;
    left = 0;
    backoff_left = 0;
    relax = 1;
    mode = Polling;
  }

let mode t = t.mode
let budget t = t.budget
let set_mode t m = t.mode <- m

(* Start a fresh wait: reload the spin budget, reset the backoff curve. *)
let begin_wait t =
  t.left <- t.budget;
  t.backoff_left <- t.backoff_rounds;
  t.relax <- 1;
  t.mode <- Polling

let poll t =
  if t.left > 0 then begin
    t.left <- t.left - 1;
    1
  end
  else if t.backoff_left > 0 then begin
    t.backoff_left <- t.backoff_left - 1;
    let r = t.relax in
    t.relax <- min (2 * r) t.max_relax;
    r
  end
  else begin
    t.mode <- Interrupt;
    0
  end

(* The condition came true while still polling: spinning is winning, so an
   adaptive policy doubles the budget (saturating at [max_spin]). *)
let on_success t =
  t.mode <- Polling;
  if t.adaptive && t.budget < t.max_spin then t.budget <- min t.max_spin (max 1 (2 * t.budget))

(* The wait ended in a park: the whole spin phase was wasted work, so an
   adaptive policy halves the budget (saturating at [min_spin]).  On a
   single time-shared core this converges to a near-zero spin within a few
   waits, which is exactly what a ping-pong workload needs. *)
let on_park t =
  t.mode <- Interrupt;
  if t.adaptive && t.budget > t.min_spin then t.budget <- max t.min_spin (t.budget / 2)

let on_wake t = t.mode <- Polling
