(** Eventcount/futex-style waiter for OCaml domains: the real-code
    implementation of the paper's §4.4 event-notification layer (polling
    mode with a switch to interrupt mode, sender-mediated wakeup).

    One logical waiter (consumer or blocked producer) per [t]; any number
    of notifiers.  The waiter protocol is race-free against notifiers by
    construction:

    {[
      let ticket = Waiter.prepare_wait w in
      if ready () then Waiter.cancel w
      else Waiter.commit_wait w ticket
    ]}

    and notifiers, after making the condition true, call [notify] — which
    costs one atomic load and a branch while nobody is parked, and pays the
    mutex/broadcast at most once per parked episode.

    [wait]/[wait_any] wrap the protocol in the adaptive spin→backoff→park
    phases of the shared {!Policy} state machine. *)

type t

val create :
  ?min_spin:int ->
  ?max_spin:int ->
  ?backoff_rounds:int ->
  ?adaptive:bool ->
  ?spin:int ->
  unit ->
  t
(** [spin] is the initial spin budget (default 512); the other knobs are
    forwarded to {!Policy.create}. *)

val policy : t -> Policy.t
(** The waiter's mode/spin state machine (exposed for observability and
    tests). *)

val parked : t -> bool
(** Producer-visible parked flag: true while a waiter has prepared or
    committed a wait.  One atomic load. *)

val notify : t -> unit
(** Wake the waiter if one is (about to be) parked.  One atomic load and a
    branch on the fast path; allocation-free always.  Call only {e after}
    the condition the waiter checks has been made true. *)

val prepare_wait : t -> int
(** Publish the intent to sleep and return the wait ticket.  The caller
    must re-check its condition after this, then either [cancel] or
    [commit_wait].  Allocation-free. *)

val cancel : t -> unit
(** Abort a prepared wait (the re-check found the condition true). *)

val commit_wait : t -> int -> unit
(** Park until a notify delivered after the matching [prepare_wait].
    Returns immediately if one already landed between prepare and commit —
    the lost-wakeup window this subsystem exists to close. *)

val wait : t -> ready:(unit -> bool) -> unit
(** Adaptive blocking wait until [ready ()].  Bounded spin, exponential
    backoff, then park; the spin budget adapts to whether spinning pays.
    [ready] must become true only through peers that then call [notify]. *)

val wait_until : t -> deadline_ns:int -> ready:(unit -> bool) -> bool
(** Deadline-bounded [wait]: true the moment [ready ()] holds, false once
    the deadline (a {!Sds_obs.Span.monotonic_ns} timestamp) passes —
    counted in the [notify.wait_timeouts] metric.  Past the spin phase it
    naps with exponential backoff ([Thread.delay], 50 µs doubling to a
    2 ms cap) instead of committing an unbounded condvar park, so progress
    needs {e no} notify edge — a peer that dies without notifying cannot
    wedge the caller past the deadline.  The crash-recovery fallback path
    of {!Sds_rt.Rt_token}.  With a non-adaptive policy ([~adaptive:false],
    the simulator's configuration) the spin budget is fixed and the
    observable spin sequence identical run to run, so the sim stays
    deterministic; the wall-clock nap schedule engages only on this
    real-time fallback path, which the sim never takes. *)

val wait_any : t -> n:int -> ready:(int -> bool) -> int
(** Block until some source [i < n] has [ready i]; returns [i].  Scans
    round-robin from one past the last serviced source, so continuously
    ready sources are serviced fairly.  All [n] producers must notify this
    waiter. *)
