(** The §4.4 polling↔interrupt mode switch as a reusable state machine,
    shared by the simulator's cost model and the real cross-domain waiter.

    A wait is a sequence of [poll] calls: each returns how many relax/yield
    units to burn before re-checking readiness ([1] during the bounded spin
    phase, a doubling burst during exponential backoff), or [0] once the
    budget is exhausted — the policy is then in [Interrupt] mode and the
    caller must arm a real wakeup before sleeping.

    Adaptive policies resize the spin budget from outcomes: [on_success]
    (condition came true while polling) doubles it, [on_park] (had to
    sleep) halves it.  With [adaptive:false] the budget is fixed, which
    reproduces the simulator's historical fixed [yield_rounds] behaviour
    exactly. *)

type mode = Polling | Interrupt

type t

val create :
  ?min_spin:int ->
  ?max_spin:int ->
  ?backoff_rounds:int ->
  ?max_relax:int ->
  ?adaptive:bool ->
  budget:int ->
  unit ->
  t
(** Defaults: [min_spin 4], [max_spin 4096], [backoff_rounds 3],
    [max_relax 64], [adaptive true]. *)

val mode : t -> mode
val set_mode : t -> mode -> unit

val budget : t -> int
(** Current spin budget (checks per wait before backoff). *)

val begin_wait : t -> unit
(** Start a fresh wait: reload the budget, reset the backoff curve, return
    to [Polling] mode. *)

val poll : t -> int
(** Units to burn before the next readiness check; [0] = park now (the
    policy has switched itself to [Interrupt] mode). *)

val on_success : t -> unit
(** The condition came true while polling (no park). *)

val on_park : t -> unit
(** The wait is committing to sleep. *)

val on_wake : t -> unit
(** The sleeper was woken; back to [Polling] mode. *)
