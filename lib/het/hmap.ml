(* Heterogeneous map keyed by typed capability keys.

   This is the one sanctioned home for "attach a value of arbitrary type to
   a host object" in the tree (per-proc slots in the simulator, per-host
   extension state in the transport layer).  Earlier revisions open-coded
   the pattern twice with [(_, Obj.t) Hashtbl.t] plus [Obj.repr]/[Obj.obj]
   casts whose soundness rested on a string-key convention; this module
   gets the same dynamic typing from an extensible variant instead, so a
   key mismatch is a [None], never a segfault.

   Each [create_key] mints a fresh constructor [B : a -> binding] of the
   extensible type [binding]; injection wraps a value, projection pattern-
   matches it back out.  The match can only succeed for the very
   constructor the key owns, which is what makes [find] type-safe without
   any unsafe cast.  (The [sdlint] obj-unsafe rule allowlists exactly this
   module, and it no longer needs the exemption.) *)

type binding = ..

type 'a key = {
  uid : int;
  name : string;
  inj : 'a -> binding;
  proj : binding -> 'a option;
}

(* Key identity is the uid; minting is not thread-safe by design (keys are
   created at module-initialization time, before any domain is spawned). *)
let next_uid = ref 0

let create_key (type a) ?(name = "key") () : a key =
  let module M = struct
    type binding += B of a
  end in
  incr next_uid;
  {
    uid = !next_uid;
    name;
    inj = (fun v -> M.B v);
    proj = (function M.B v -> Some v | _ -> None);
  }

let key_name k = k.name

type t = (int, binding) Hashtbl.t

let create ?(size = 4) () : t = Hashtbl.create size
let set t k v = Hashtbl.replace t k.uid (k.inj v)
let remove t k = Hashtbl.remove t k.uid
let mem t k = Hashtbl.mem t k.uid
let length t = Hashtbl.length t

let find t k =
  match Hashtbl.find_opt t k.uid with
  | None -> None
  | Some b -> k.proj b

let find_or t k ~create:mk =
  match find t k with
  | Some v -> v
  | None ->
    let v = mk () in
    set t k v;
    v
