(** Heterogeneous map keyed by typed capability keys.

    The one sanctioned "attach arbitrarily-typed state to an object" module
    in the tree: per-proc slots ([Sds_sim.Proc]) and per-host extension
    state ([Sds_transport.Host]) are both instances.  Implemented with an
    extensible variant per key — no [Obj], no casts: looking a key up at
    the wrong type is impossible because only the minting key holds the
    constructor. *)

type t
(** A mutable heterogeneous map. *)

type 'a key
(** A capability to store and retrieve one ['a]-typed binding. *)

val create_key : ?name:string -> unit -> 'a key
(** Mint a fresh key.  Not thread-safe: mint keys at module-initialization
    time, before spawning domains.  [name] is for diagnostics only. *)

val key_name : 'a key -> string

val create : ?size:int -> unit -> t
val set : t -> 'a key -> 'a -> unit
val find : t -> 'a key -> 'a option
val find_or : t -> 'a key -> create:(unit -> 'a) -> 'a
(** [find_or t k ~create] returns the existing binding or installs
    [create ()] and returns it. *)

val remove : t -> 'a key -> unit
val mem : t -> 'a key -> bool
val length : t -> int
