(** Deterministic fault injection for the crash-recovery plane (§4.3).

    Named injection sites are compiled into the real-domain stack; a seeded
    {!plan} decides, per crash {!kind}, on which visit of its site the
    {!Crash} exception fires.  With no plan armed a site costs one atomic
    load and a branch — hot paths must write

    {[ if Sds_fault.armed () then Sds_fault.inject "layer.site" ]}

    (enforced by the sdlint [fault-confined] rule). *)

type kind =
  | Crash_before_grant  (** holder dies after the drain, before the grant CAS *)
  | Crash_mid_publish  (** sender dies between records of one stream send *)
  | Crash_holding_pages  (** sender dies with pool pages staged, unpublished *)
  | Monitor_restart  (** worker dies inside accept; a respawn re-registers *)
  | Fork_storm  (** client dies mid-connect, before first operation *)

exception Crash of kind
(** Raised by {!inject} at the armed site.  {!Sds_rt.Rt_dom.spawn} bodies
    that let it escape are declared dead immediately (the [died] hook). *)

val kind_name : kind -> string
val all_kinds : kind list

val site_of_kind : kind -> string
(** The canonical injection site each kind fires at. *)

(** {1 Plans} *)

type plan

val plan : ?max_skip:int -> seed:int -> kind list -> plan
(** A deterministic schedule: each kind's site lets [mix seed i mod
    max_skip] visits pass (default [max_skip] 4), then fires once.  Same
    seed, same schedule. *)

val seed : plan -> int

val arm : plan -> unit
(** Install [plan] as the process-wide schedule (replacing any other) and
    open the gate. *)

val disarm : unit -> unit
(** Close the gate; sites return to the one-load fast path. *)

val fired_sites : unit -> (string * kind) list
(** Sites that have fired under the current/most recent armed plan, in
    firing order. *)

(** {1 Sites} *)

val armed : unit -> bool
(** The zero-cost disabled check: one atomic load. *)

val inject : string -> unit
(** Visit a named site: no-op unless a plan is armed and this site's
    countdown reaches zero, in which case raises {!Crash}.  Cold beyond
    the gate — from [@sds.hot] code, guard with {!armed}. *)
