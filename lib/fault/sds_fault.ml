(* Sds_fault — deterministic fault injection for the crash-recovery plane.

   The data plane's §4.3 compatibility story ("a process can die at any
   instruction and its peers observe EOF/reset, not a wedge") is only
   testable if we can die at *chosen* instructions, repeatably.  This
   module provides named injection sites compiled into the real-domain
   stack (rt_token / rt_sock / rt_monitor) and seeded plans that pick, per
   crash kind, on which visit of its site the crash fires.  The same five
   crash kinds drive the Interleave crash models in [Sds_check.Models], so
   every schedule the chaos soak executes on real domains is also explored
   exhaustively in the model checker.

   Cost discipline: when no plan is armed, a site costs one SC load and a
   branch ([armed ()] — same gate idiom as [Sds_obs.Span]'s sampling
   mask).  Hot-path sites must be written

     if Sds_fault.armed () then Sds_fault.inject "layer.site";

   which the sdlint [fault-confined] rule enforces inside [@sds.hot]
   functions.  Everything behind the gate (the plan lookup, the history
   ring, the metrics) is cold and may lock and allocate. *)

module Obs = Sds_obs.Obs

type kind =
  | Crash_before_grant
  | Crash_mid_publish
  | Crash_holding_pages
  | Monitor_restart
  | Fork_storm

exception Crash of kind

let kind_name = function
  | Crash_before_grant -> "crash-before-grant"
  | Crash_mid_publish -> "crash-mid-publish"
  | Crash_holding_pages -> "crash-holding-pages"
  | Monitor_restart -> "monitor-restart"
  | Fork_storm -> "fork-storm"

let all_kinds =
  [ Crash_before_grant; Crash_mid_publish; Crash_holding_pages; Monitor_restart; Fork_storm ]

(* The canonical site each kind fires at in the real-domain stack. *)
let site_of_kind = function
  | Crash_before_grant -> "rt_token.grant"
  | Crash_mid_publish -> "rt_sock.mid_publish"
  | Crash_holding_pages -> "rt_sock.holding_pages"
  | Monitor_restart -> "rt_monitor.accept"
  | Fork_storm -> "rt_monitor.connect"

let m_site_hits = Obs.Metrics.counter "fault.site_hits"
let m_injected = Obs.Metrics.counter "fault.injected"

(* ---- seeded plans ------------------------------------------------------ *)

type arm = {
  a_site : string;
  a_kind : kind;
  mutable a_countdown : int;  (** site visits to let pass; -1 once fired *)
}

type plan = { p_seed : int; p_arms : arm list }

(* splitmix64-style scramble: a few visits of slack per arm, derived only
   from (seed, arm index) so a plan replays identically. *)
let mix seed i =
  let z = (seed + 1) * 0x9E3779B9 + (i * 0x85EBCA6B) in
  let z = z lxor (z lsr 15) in
  let z = z * 0xC2B2AE35 in
  (z lxor (z lsr 13)) land max_int

let plan ?(max_skip = 4) ~seed kinds =
  if max_skip < 1 then invalid_arg "Sds_fault.plan: max_skip must be >= 1";
  let arms =
    List.mapi
      (fun i k ->
        { a_site = site_of_kind k; a_kind = k; a_countdown = mix seed i mod max_skip })
      kinds
  in
  { p_seed = seed; p_arms = arms }

let seed p = p.p_seed

(* ---- the armed gate ---------------------------------------------------- *)

(* [gate] is the only state a disarmed site ever reads. *)
let gate = Atomic.make 0
let mu = Mutex.create ()
let current : plan option ref = ref None
let fired : (string * kind) list ref = ref []

let[@inline] armed () = Atomic.get gate <> 0

let arm p =
  Mutex.lock mu;
  current := Some p;
  fired := [];
  Mutex.unlock mu;
  Atomic.set gate 1

let disarm () =
  Atomic.set gate 0;
  Mutex.lock mu;
  current := None;
  Mutex.unlock mu

let fired_sites () =
  Mutex.lock mu;
  let f = List.rev !fired in
  Mutex.unlock mu;
  f

(* A site visit while a plan is armed: decrement the matching arm's
   countdown; at zero, record the firing and raise.  The whole body is the
   cold side of the [armed] gate. *)
let inject site =
  if Atomic.get gate <> 0 then begin
    Mutex.lock mu;
    let fire =
      match !current with
      | None -> None
      | Some p -> (
        match
          List.find_opt (fun a -> a.a_site = site && a.a_countdown >= 0) p.p_arms
        with
        | None -> None
        | Some a ->
          Obs.Metrics.incr m_site_hits;
          if a.a_countdown = 0 then begin
            a.a_countdown <- -1;
            fired := (site, a.a_kind) :: !fired;
            Some a.a_kind
          end
          else begin
            a.a_countdown <- a.a_countdown - 1;
            None
          end)
    in
    Mutex.unlock mu;
    match fire with
    | Some k ->
      Obs.Metrics.incr m_injected;
      raise (Crash k)
    | None -> ()
  end

(* ---- flight-recorder section ------------------------------------------- *)

let () =
  Sds_obs.Flight.register_state "fault" (fun () ->
      let b = Buffer.create 128 in
      Mutex.lock mu;
      Buffer.add_string b (Printf.sprintf "armed=%b\n" (Atomic.get gate <> 0));
      (match !current with
      | None -> ()
      | Some p ->
        Buffer.add_string b (Printf.sprintf "seed=%d\n" p.p_seed);
        List.iter
          (fun a ->
            Buffer.add_string b
              (Printf.sprintf "arm site=%s kind=%s countdown=%d\n" a.a_site
                 (kind_name a.a_kind) a.a_countdown))
          p.p_arms);
      List.iter
        (fun (site, k) ->
          Buffer.add_string b (Printf.sprintf "fired site=%s kind=%s\n" site (kind_name k)))
        (List.rev !fired);
      Mutex.unlock mu;
      Buffer.contents b)
