(* The simulated per-host Linux kernel.

   Owns the process table, the kernel FD namespace (one table per process,
   copy-on-write across fork), the TCP port namespace with listener backlogs,
   pipes/Unix-domain sockets, and epoll instances.  This is the baseline
   stack the paper measures against, and also the substrate libsd falls back
   to for non-socket FDs and non-SocksDirect peers.

   The TCP state machine is the standard one (RFC 793 subset): LISTEN /
   SYN_SENT / SYN_RCVD / ESTABLISHED / FIN_WAIT_1 / FIN_WAIT_2 / CLOSE_WAIT /
   LAST_ACK / CLOSING / TIME_WAIT / CLOSED, driven by connect, accept,
   shutdown and close. *)

open Sds_sim
open Sds_transport

type tcp_state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

let string_of_state = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Closing -> "CLOSING"
  | Time_wait -> "TIME_WAIT"

exception Connection_refused
exception Not_a_socket
exception Bad_fd of int
exception Address_in_use of int

type t = {
  host : Host.t;
  engine : Engine.t;
  cost : Cost.t;
  mutable next_pid : int;
  listeners : (int, listener) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable conn_setups : int;
  mutable fd_allocs : int;
}

and process = {
  pid : int;
  kernel : t;
  mutable fds : kobj Fd_table.t;
  mutable parent : process option;
  mutable forked_children : int;
}

and kobj =
  | Tcp of tcp_ep
  | Tcp_listener of listener
  | Pipe_r of pipe_end
  | Pipe_w of pipe_end
  | Epoll of epoll
  | Plain_file of string  (** stand-in for regular files/devices *)

and pipe_end = {
  pstream : Kstream.t;
  mutable p_refs : int;  (** FD references across fork *)
}

and tcp_ep = {
  ep_id : int;
  ep_kernel : t;
  mutable state : tcp_state;
  mutable rx : Kstream.t option;
  mutable tx : Kstream.t option;
  mutable local_port : int;
  mutable remote : (int * int) option;  (** peer host id, peer port *)
  mutable peer : tcp_ep option;
  mutable refs : int;  (** FD-table references (fork sharing) *)
}

and listener = {
  l_kernel : t;
  l_port : int;
  backlog : tcp_ep Queue.t;
  accept_wq : Waitq.t;
  max_backlog : int;
  mutable l_refs : int;
}

and epoll = {
  e_kernel : t;
  watched : (int, process * int) Hashtbl.t;  (** key: watch id = pid shifted + fd *)
  e_wq : Waitq.t;
}

let ext_key : t Sds_het.Hmap.key = Sds_het.Hmap.create_key ~name:"sds_kernel" ()

let create host =
  {
    host;
    engine = host.Host.engine;
    cost = host.Host.cost;
    next_pid = 1;
    listeners = Hashtbl.create 16;
    next_ephemeral = 32768;
    conn_setups = 0;
    fd_allocs = 0;
  }

(* The kernel instance for a host, created on first use. *)
let for_host host = Host.get_ext_or host ext_key ~create

let host t = t.host
let conn_setups t = t.conn_setups

let spawn_process t ?parent () =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  { pid; kernel = t; fds = Fd_table.create (); parent; forked_children = 0 }

(* Fork: the FD table is copied (copy-on-write semantics: entries shared,
   table private) and every shared object gains a reference. *)
let fork proc =
  let child = spawn_process proc.kernel ~parent:proc () in
  proc.forked_children <- proc.forked_children + 1;
  child.fds <- Fd_table.copy proc.fds;
  Fd_table.iter child.fds (fun _ obj ->
      match obj with
      | Tcp ep -> ep.refs <- ep.refs + 1
      | Tcp_listener l -> l.l_refs <- l.l_refs + 1
      | Pipe_r pe | Pipe_w pe -> pe.p_refs <- pe.p_refs + 1
      | Epoll _ | Plain_file _ -> ());
  child

let lookup proc fd =
  match Fd_table.find proc.fds fd with
  | Some obj -> obj
  | None -> raise (Bad_fd fd)

let alloc_fd proc obj =
  proc.kernel.fd_allocs <- proc.kernel.fd_allocs + 1;
  Fd_table.alloc proc.fds obj

(* ---- TCP ---- *)

let ep_counter = ref 0

let make_ep t =
  incr ep_counter;
  { ep_id = !ep_counter; ep_kernel = t; state = Closed; rx = None; tx = None;
    local_port = 0; remote = None; peer = None; refs = 1 }

(* socket(): allocate FD + inode (Table 2: 1.6 us). *)
let socket proc =
  Proc.sleep_ns proc.kernel.cost.Cost.open_socket_fd;
  alloc_fd proc (Tcp (make_ep proc.kernel))

let listen proc fd ~port ?(backlog = 128) () =
  let t = proc.kernel in
  Proc.sleep_ns (Cost.syscall t.cost);
  match lookup proc fd with
  | Tcp ep ->
    if Hashtbl.mem t.listeners port then raise (Address_in_use port);
    if ep.state <> Closed then invalid_arg "Kernel.listen: bad state";
    ep.state <- Listen;
    ep.local_port <- port;
    let l = { l_kernel = t; l_port = port; backlog = Queue.create (); accept_wq = Waitq.create (); max_backlog = backlog; l_refs = 1 } in
    Hashtbl.replace t.listeners port l;
    Fd_table.bind proc.fds fd (Tcp_listener l)
  | _ -> raise Not_a_socket

let ephemeral_port t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- (if p >= 60999 then 32768 else p + 1);
  p

(* Establish the two unidirectional streams of a connection. *)
let wire_up client server ~intra =
  let t = client.ep_kernel in
  let profile = if intra then Kstream.tcp_intra_profile t.cost else Kstream.tcp_inter_profile t.cost in
  let c2s = Kstream.create t.engine ~profile in
  let s2c = Kstream.create t.engine ~profile in
  client.tx <- Some c2s;
  client.rx <- Some s2c;
  server.tx <- Some s2c;
  server.rx <- Some c2s;
  client.peer <- Some server;
  server.peer <- Some client

(* connect(): three-way handshake against a listener on [dst].  Blocks the
   caller for the handshake RTT; refused immediately when no listener or the
   backlog is full. *)
let connect proc fd ~dst ~port =
  let t = proc.kernel in
  match lookup proc fd with
  | Tcp ep ->
    if ep.state <> Closed then invalid_arg "Kernel.connect: bad state";
    let dst_kernel = for_host dst in
    let intra = Host.same_host t.host dst in
    ep.state <- Syn_sent;
    ep.local_port <- ephemeral_port t;
    Proc.sleep_ns (if intra then t.cost.Cost.linux_conn_setup else t.cost.Cost.tcp_handshake);
    (match Hashtbl.find_opt dst_kernel.listeners port with
    | None ->
      ep.state <- Closed;
      raise Connection_refused
    | Some l ->
      if Queue.length l.backlog >= l.max_backlog then begin
        ep.state <- Closed;
        raise Connection_refused
      end;
      t.conn_setups <- t.conn_setups + 1;
      let server_ep = make_ep dst_kernel in
      server_ep.state <- Syn_rcvd;
      server_ep.local_port <- port;
      server_ep.remote <- Some (Host.id t.host, ep.local_port);
      ep.remote <- Some (Host.id dst, port);
      wire_up ep server_ep ~intra;
      ep.state <- Established;
      server_ep.state <- Established;
      Queue.push server_ep l.backlog;
      Waitq.signal l.accept_wq)
  | _ -> raise Not_a_socket

(* accept(): blocking dequeue from the backlog; allocates the new FD. *)
let accept proc fd =
  let t = proc.kernel in
  Proc.sleep_ns (Cost.syscall t.cost + t.cost.Cost.spinlock);
  match lookup proc fd with
  | Tcp_listener l ->
    let rec next () =
      match Queue.take_opt l.backlog with
      | Some ep -> alloc_fd proc (Tcp ep)
      | None ->
        (match Waitq.wait l.accept_wq with _ -> ());
        next ()
    in
    next ()
  | _ -> raise Not_a_socket

let established ep = ep.state = Established

let tx_exn ep =
  match ep.tx with Some s -> s | None -> invalid_arg "Kernel: not connected"

let rx_exn ep =
  match ep.rx with Some s -> s | None -> invalid_arg "Kernel: not connected"

(* send(): blocking stream write. *)
let send proc fd src ~off ~len =
  match lookup proc fd with
  | Tcp ep ->
    (match ep.state with
    | Established | Close_wait -> Kstream.write (tx_exn ep) src ~off ~len
    | _ -> raise Kstream.Broken_pipe)
  | Pipe_w pe -> Kstream.write pe.pstream src ~off ~len
  | _ -> raise Not_a_socket

(* recv(): blocking stream read; 0 = orderly EOF. *)
let recv proc fd dst ~off ~len =
  match lookup proc fd with
  | Tcp ep ->
    (match ep.state with
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait -> Kstream.read (rx_exn ep) dst ~off ~len
    | _ -> 0)
  | Pipe_r pe -> Kstream.read pe.pstream dst ~off ~len
  | _ -> raise Not_a_socket

let shutdown_send ep =
  (match ep.tx with Some s -> Kstream.close_write s | None -> ());
  (match ep.state with
  | Established -> ep.state <- Fin_wait_1
  | Close_wait -> ep.state <- Last_ack
  | _ -> ());
  (* Peer transitions on receiving our FIN. *)
  match ep.peer with
  | Some peer ->
    (match peer.state with
    | Established -> peer.state <- Close_wait
    | Fin_wait_1 -> peer.state <- Closing
    | Fin_wait_2 -> peer.state <- Time_wait
    | _ -> ());
    (* Our own FIN-ACK progress. *)
    (match ep.state with
    | Fin_wait_1 when peer.state = Close_wait -> ep.state <- Fin_wait_2
    | Last_ack -> ep.state <- Closed
    | Closing -> ep.state <- Time_wait
    | _ -> ())
  | None -> ()

let close_ep ep =
  ep.refs <- ep.refs - 1;
  if ep.refs <= 0 then begin
    shutdown_send ep;
    (match ep.rx with Some s -> Kstream.close_read s | None -> ());
    match ep.state with
    | Time_wait | Closed | Fin_wait_1 | Fin_wait_2 | Closing -> ()
    | _ -> ep.state <- if ep.state = Close_wait then Last_ack else Closed
  end

let close proc fd =
  let t = proc.kernel in
  Proc.sleep_ns (Cost.syscall t.cost);
  match Fd_table.find proc.fds fd with
  | None -> raise (Bad_fd fd)
  | Some obj ->
    ignore (Fd_table.close proc.fds fd);
    (match obj with
    | Tcp ep -> close_ep ep
    | Tcp_listener l ->
      l.l_refs <- l.l_refs - 1;
      if l.l_refs <= 0 then Hashtbl.remove t.listeners l.l_port
    | Pipe_r pe ->
      pe.p_refs <- pe.p_refs - 1;
      if pe.p_refs <= 0 then Kstream.close_read pe.pstream
    | Pipe_w pe ->
      pe.p_refs <- pe.p_refs - 1;
      if pe.p_refs <= 0 then Kstream.close_write pe.pstream
    | Epoll _ | Plain_file _ -> ())

let tcp_state proc fd =
  match lookup proc fd with
  | Tcp ep -> ep.state
  | Tcp_listener _ -> Listen
  | _ -> raise Not_a_socket

(* ---- plain files ---- *)

(* open(2) on a regular file: a kernel FD with no socket semantics; libsd
   forwards operations on it straight to the kernel. *)
let open_file proc path =
  Proc.sleep_ns (Cost.syscall proc.kernel.cost);
  alloc_fd proc (Plain_file path)

(* ---- pipes ---- *)

let pipe proc =
  let t = proc.kernel in
  Proc.sleep_ns (Cost.syscall t.cost);
  let s = Kstream.create t.engine ~profile:(Kstream.pipe_profile t.cost) in
  let r = alloc_fd proc (Pipe_r { pstream = s; p_refs = 1 }) in
  let w = alloc_fd proc (Pipe_w { pstream = s; p_refs = 1 }) in
  (r, w)

let unix_socketpair ?profile proc =
  let t = proc.kernel in
  let profile = match profile with Some p -> p | None -> Kstream.unix_profile t.cost in
  Proc.sleep_ns (Cost.syscall t.cost);
  let a2b = Kstream.create t.engine ~profile in
  let b2a = Kstream.create t.engine ~profile in
  let mk ep_rx ep_tx =
    let ep = make_ep t in
    ep.state <- Established;
    ep.rx <- Some ep_rx;
    ep.tx <- Some ep_tx;
    ep
  in
  let a = mk b2a a2b and b = mk a2b b2a in
  a.peer <- Some b;
  b.peer <- Some a;
  (alloc_fd proc (Tcp a), alloc_fd proc (Tcp b))

(* ---- epoll ---- *)

let epoll_create proc =
  let t = proc.kernel in
  Proc.sleep_ns (Cost.syscall t.cost);
  alloc_fd proc (Epoll { e_kernel = t; watched = Hashtbl.create 16; e_wq = Waitq.create () })

let as_epoll proc fd =
  match lookup proc fd with
  | Epoll e -> e
  | _ -> invalid_arg "Kernel: not an epoll fd"

let obj_readable = function
  | Tcp ep ->
    (match ep.rx with
    | Some s -> Kstream.readable_now s
    | None -> ep.state <> Established && ep.state <> Closed && ep.state <> Syn_sent)
  | Tcp_listener l -> not (Queue.is_empty l.backlog)
  | Pipe_r pe -> Kstream.readable_now pe.pstream
  | Pipe_w _ | Epoll _ | Plain_file _ -> false

let epoll_add proc epfd ~watch_pid ~fd =
  let e = as_epoll proc epfd in
  Proc.sleep_ns (Cost.syscall e.e_kernel.cost);
  let owner = if watch_pid = proc.pid then proc else proc (* same-process watches only *) in
  Hashtbl.replace e.watched ((owner.pid * 1_000_000) + fd) (owner, fd);
  (* Edge notification: readable events poke the epoll waitq. *)
  (match lookup owner fd with
  | Tcp ep -> (match ep.rx with Some s -> Kstream.on_readable s (fun () -> Waitq.signal e.e_wq) | None -> ())
  | Tcp_listener l ->
    (* accept readiness: piggyback on the backlog waitq by polling *)
    ignore l
  | Pipe_r pe -> Kstream.on_readable pe.pstream (fun () -> Waitq.signal e.e_wq)
  | _ -> ())

let epoll_del proc epfd ~fd =
  let e = as_epoll proc epfd in
  Hashtbl.remove e.watched ((proc.pid * 1_000_000) + fd)

(* Level-triggered wait: returns ready (pid, fd) pairs. *)
let epoll_wait proc epfd ?timeout_ns () =
  let e = as_epoll proc epfd in
  Proc.sleep_ns (Cost.syscall e.e_kernel.cost);
  let ready () =
    Hashtbl.fold
      (fun _ (owner, fd) acc ->
        match Fd_table.find owner.fds fd with
        | Some obj when obj_readable obj -> fd :: acc
        | _ -> acc)
      e.watched []
  in
  let rec loop deadline =
    match ready () with
    | _ :: _ as fds -> List.sort Int.compare fds
    | [] ->
      let now = Engine.now e.e_kernel.engine in
      (match deadline with
      | Some d when now >= d -> []
      | _ ->
        let timeout_ns = Option.map (fun d -> max 1 (d - now)) deadline in
        (match Waitq.wait ?timeout_ns e.e_wq with
        | Waitq.Timeout -> []
        | Waitq.Signaled ->
          Proc.sleep_ns e.e_kernel.cost.Cost.process_wakeup;
          loop deadline))
  in
  let deadline = Option.map (fun d -> Engine.now e.e_kernel.engine + d) timeout_ns in
  loop deadline
