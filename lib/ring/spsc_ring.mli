(** The per-socket allocation-free ring buffer of §4.2.

    Single-producer / single-consumer; messages stored back-to-back with an
    8-byte header; credit-based flow control with batched credit return.

    Safe for one producer domain and one consumer domain concurrently: the
    tail is an atomic whose store publishes the payload-then-header writes
    (release/acquire through the OCaml memory model's SC atomics), and the
    credit counter is an atomic that only the producer decrements and only
    the consumer increments.  The non-wrapping fast path performs no
    allocation in either direction ([try_enqueue] / [try_dequeue_into]).

    Invariant: [credits + pending-return + used = capacity] (counting any
    credit return currently in flight between [take_credit_return] and
    [return_credits] as pending), and a message occupies at most half the
    ring, so a blocked sender always becomes unblocked once the consumer
    drains the ring (no credit deadlock). *)

type t

val header_bytes : int

val create : ?size:int -> unit -> t
(** [size] must be a power of two [>= 64]; default 64 KiB. *)

val capacity : t -> int
val credits : t -> int
(** Producer-side view of free bytes. *)

val used : t -> int
val is_empty : t -> bool
val enqueued : t -> int
val dequeued : t -> int

val pending_return : t -> int
(** Consumer-side bytes consumed but not yet returned as credits. *)

val record_bytes : int -> int
(** Ring bytes occupied by a message of the given payload length. *)

val stamp_send : t -> unit
(** [Sds_obs.Span] API-entry stamp for the message about to be enqueued;
    attributes caller-side staging between here and the publish stamp to
    [span.app].  Sampled and allocation-free (one branch when unsampled). *)

val header_checksum : int -> int -> int
(** [header_checksum len flags] — the 16-bit header guard.  Folds all 32
    bits of [len]; an all-zero header never validates.  Exposed for
    corruption-detection tests. *)

val try_enqueue : ?flags:int -> t -> Bytes.t -> off:int -> len:int -> bool
(** [false] when the sender lacks credits.  Raises [Invalid_argument] when
    the message alone exceeds half the ring (the zero-copy path must be used
    for those).  Allocation-free. *)

val enqueue_batch : ?flags:int -> t -> (Bytes.t * int * int) array -> int
(** Vectored enqueue of [(src, off, len)] messages: writes the longest
    prefix that fits in the available credits, publishing the tail and
    spending credits once for the whole batch (§4.2 adaptive batching).
    Returns the number of messages enqueued. *)

type dequeued = { data : Bytes.t; flags : int }

val try_dequeue : ?auto_credit:bool -> t -> dequeued option
(** [auto_credit] returns credits synchronously (bare in-process queue); the
    default leaves them pending for the transport to deliver.  Allocates the
    returned payload; the hot path should prefer [try_dequeue_into]. *)

val try_dequeue_into : ?auto_credit:bool -> t -> dst:Bytes.t -> dst_off:int -> (int * int) option
(** Dequeue straight into the caller's buffer; returns [Some (len, flags)].
    Raises [Invalid_argument] when [dst] cannot hold the next message (use
    [peek_len] to size it).  The [Some] box is the only allocation; the
    fully allocation-free primitive underneath is [try_dequeue_packed]. *)

val no_msg : int
(** The [-1] sentinel returned by the packed dequeue/peek primitives. *)

val try_dequeue_packed : ?auto_credit:bool -> t -> dst:Bytes.t -> dst_off:int -> int
(** Zero-allocation dequeue primitive: copies the next payload into [dst]
    and returns the packed immediate [len lor (flags lsl 32)], or [no_msg]
    when the ring is empty / the header fails its checksum.  Decompose with
    [packed_len] / [packed_flags]. *)

val packed_len : int -> int
val packed_flags : int -> int

val peek_packed : t -> int
(** Packed peek of the next message without consuming it; [no_msg] when
    empty or invalid. *)

val dequeue_batch : ?auto_credit:bool -> t -> max:int -> dequeued list
(** Up to [max] messages in arrival order. *)

val take_credit_return : t -> int
(** Credits the consumer owes; non-zero only once half the ring has been
    consumed (batched credit-return flag). *)

val return_credits : t -> int -> unit
(** Deliver a credit return to the producer side. *)

val peek_len : t -> int option

(** {1 Page-descriptor records (§4.6 zero-copy handoff)}

    A record flagged [flag_desc] carries a vector of 8-byte page
    descriptors — {page id, offset, length} into a shared
    {!Sds_vm.Pagepool} — instead of payload bytes.  Enqueuing such a
    record transfers the pages' references to the consumer; the payload
    never crosses the ring.  The ring itself is pool-agnostic: descriptors
    are opaque packed ints, paired with a pool by the transport layer. *)

val flag_desc : int
(** Header flag bit marking a descriptor record. *)

val desc_entry : page:int -> off:int -> len:int -> int
(** Pack one descriptor: [len <= 4096], [off < 4096], [page < 2^36]. *)

val desc_page : int -> int
val desc_off : int -> int
val desc_len : int -> int

val is_desc_packed : int -> bool
(** Whether a packed immediate (from peek/dequeue) is descriptor-flagged. *)

val desc_count_packed : int -> int
(** Number of descriptors in a descriptor record's packed immediate. *)

val try_enqueue_descs : ?flags:int -> t -> int array -> n:int -> bool
(** Enqueue the first [n] entries as one descriptor record.  [false] when
    credits are lacking; publication hands the page references off to the
    consumer.  Allocation-free. *)

val try_dequeue_descs : ?auto_credit:bool -> t -> entries:int array -> int
(** Dequeue the next descriptor record's entries into [entries]; returns
    the packed immediate ([no_msg] when empty/invalid).  The caller now
    owns one reference per page and must release each.  Raises if the next
    record is not descriptor-flagged ([peek_packed] first) or [entries] is
    too small.  Allocation-free. *)

(** {1 Event notification (§4.4)}

    Every ring embeds two {!Sds_notify.Waiter} endpoints: consumers park on
    the rx waiter when the ring is empty (the producer's tail publication
    notifies it — one parked-flag load on the enqueue hot path), and
    credit-starved producers park on the tx waiter (the consumer's credit
    return notifies it).  Readiness closures are preallocated at [create],
    so the blocking paths allocate nothing. *)

val wait_rx : t -> unit
(** Consumer side: adaptive spin→backoff→park until the ring is non-empty. *)

val wait_tx : t -> len:int -> unit
(** Producer side: block until the credits cover a [len]-byte message. *)

val rx_waiter : t -> Sds_notify.Waiter.t
val tx_waiter : t -> Sds_notify.Waiter.t

val set_rx_waiter : t -> Sds_notify.Waiter.t -> unit
(** Point N rings at one shared waiter to build a
    {!Sds_notify.Waiter.wait_any} consumer (the per-process epoll-thread
    shape). *)

val enqueue_blocking : ?flags:int -> t -> Bytes.t -> off:int -> len:int -> unit
(** [try_enqueue] that parks on the tx waiter instead of returning [false]. *)

val dequeue_packed_blocking : ?auto_credit:bool -> t -> dst:Bytes.t -> dst_off:int -> int
(** [try_dequeue_packed] that parks on the rx waiter while the ring is
    empty (or the next header fails its checksum). *)

(**/**)

module For_testing : sig
  val buf : t -> Bytes.t
  (** The raw ring storage — for corruption-injection tests only. *)

  val head_offset : t -> int
  (** Byte offset of the next header within [buf]. *)
end
