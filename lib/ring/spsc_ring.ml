(* The per-socket allocation-free ring buffer of §4.2 — the real thing.

   Messages are stored back-to-back in one contiguous byte ring: an 8-byte
   header (4-byte length, 2-byte flags, 2-byte checksum of the header) is
   followed immediately by the payload, padded to 8-byte alignment so header
   reads are aligned.  There is no per-packet buffer allocation and no
   metadata ring: enqueue is a bounds check plus two stores and a blit.

   Cross-core operation (OCaml 5 domains).  The ring is safe for one
   producer domain and one consumer domain running concurrently:

   - [tail] is an [Atomic.t].  The producer writes payload bytes first, then
     the header, then publishes with [Atomic.set tail] — an SC store, so by
     the OCaml memory model every plain [Bytes] write the producer made
     happens-before any consumer read that observes the new tail.  The
     consumer polls [Atomic.get tail]; it can never see a half-written
     payload (§4.2's payload-then-header publication argument, with the
     atomic tail store standing in for x86 total store order).
   - [credits] is an [Atomic.t] counter of free bytes.  Only the producer
     subtracts (spend on enqueue) and only the consumer adds (credit
     return), so a check-then-fetch_and_add on the producer side is safe:
     credits can only grow between the check and the subtraction.  The
     credit return also carries the happens-before edge that makes it safe
     for the producer to overwrite the freed region.
   - [head] and the consumer-side counters are consumer-private; the
     producer never reads them (flow control is purely credit-based).
     Producer-private and consumer-private mutable state live in separate
     heap blocks padded to a cache line so the two domains do not false-share.

   The header checksum guards against torn or corrupt headers (e.g. a
   misbehaving peer scribbling on shared memory): it folds all 32 bits of
   the length, the flags, and a non-zero constant — so an all-zero header
   never validates — and a failed check makes the message invisible rather
   than decoding garbage.

   Flow control is credit-based exactly as in the paper: the sender spends
   [credits] bytes per enqueue; the receiver counts consumed bytes and posts
   a credit return once it crosses half the ring, which the transport layer
   delivers back to the sender (in shared memory this is a single flag write;
   under RDMA it rides an RDMA write).  [dequeue ~auto_credit:true] performs
   the return synchronously, which is what a bare in-process queue does.

   Single-producer / single-consumer by design — SocksDirect guarantees one
   active sender and one active receiver per direction via tokens, which is
   precisely what removes the per-operation lock. *)

let header_bytes = 8
let align = 8

(* Unaligned fixed-width access into [Bytes.t] without bounds checks; every
   use is behind an explicit in-range test. *)
external unsafe_get_int32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external unsafe_set_int32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external unsafe_get_int64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_int64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Producer-private mutable state, padded with dummy fields so the block
   spans a cache line of its own.  The stats fields double as this ring's
   observability cells: they are single-writer plain ints, so recording
   costs one add with no sharing — the process-global registry reads them
   through probes (see the Obs integration at the bottom of this file). *)
type prod = {
  mutable enqueued : int;
  mutable enq_bytes : int;  (** payload bytes accepted *)
  mutable batches : int;  (** enqueue_batch calls that published *)
  mutable full_events : int;  (** enqueue attempts rejected for credits *)
  mutable was_full : int;  (** 1 after a rejected attempt, for edge-triggered tracing *)
  mutable tx_need : int;  (** ring bytes the blocked producer is waiting for *)
  mutable p0 : int;
  mutable p1 : int;
}

(* Consumer-private mutable state, same padding trick. *)
type cons = {
  mutable head : int;  (** consumer position (absolute, monotonically grows) *)
  mutable pending_return : int;  (** consumed bytes not yet returned *)
  mutable dequeued : int;
  mutable deq_bytes : int;  (** payload bytes copied out *)
  mutable credit_returns : int;  (** batched credit-return flags posted *)
  mutable c0 : int;
  mutable c1 : int;
  mutable c2 : int;
}

type t = {
  buf : Bytes.t;
  size : int;  (** power of two *)
  mask : int;
  tail : int Atomic.t;  (** producer position (absolute); the publication point *)
  credits : int Atomic.t;  (** free bytes: producer subtracts, consumer adds *)
  prod : prod;
  cons : cons;
  (* §4.4 event notification, stored alongside the ring atomics: the
     producer checks the consumer's parked flag ([rx_waiter]'s state cell)
     with one load after every publication, and the consumer symmetrically
     wakes a credit-starved producer through [tx_waiter] on credit return.
     [rx_waiter] is mutable so N rings can share one waiter ([wait_any],
     the per-process epoll-thread shape). *)
  mutable rx_waiter : Sds_notify.Waiter.t;
  tx_waiter : Sds_notify.Waiter.t;
  rx_ready : unit -> bool;  (** preallocated: ring non-empty *)
  tx_ready : unit -> bool;  (** preallocated: credits cover [prod.tx_need] *)
  (* Span track: preallocated stamp slots correlating publish and dequeue
     times by sequence number ([Sds_obs.Span]).  The producer stamps
     before the tail release, so the stamp rides the same happens-before
     edge as the payload. *)
  span : Sds_obs.Span.track;
  (* Spacer blocks allocated between the two atomics at [create] time, kept
     live here so the atomics stay on distinct cache lines. *)
  _pad0 : int array;
  _pad1 : int array;
}

(* ---- observability integration ----

   The enqueue/dequeue fast paths are too hot for even a sharded registry
   add (the whole budget is a few nanoseconds), so rings keep their stats in
   their own single-writer padded fields and the registry reads them through
   probes at snapshot time.  Live rings are tracked through a weak array (so
   observability never extends a ring's lifetime); a finalizer folds a dying
   ring's totals into the [retired] accumulator, keeping every probe value
   monotone across GC. *)

module Obs = Sds_obs.Obs
module Span = Sds_obs.Span

type retired_totals = {
  mutable r_created : int;
  mutable r_enqueued : int;
  mutable r_enq_bytes : int;
  mutable r_batches : int;
  mutable r_full : int;
  mutable r_dequeued : int;
  mutable r_deq_bytes : int;
  mutable r_credit_returns : int;
}

let retired =
  { r_created = 0; r_enqueued = 0; r_enq_bytes = 0; r_batches = 0; r_full = 0; r_dequeued = 0;
    r_deq_bytes = 0; r_credit_returns = 0 }

let live_mu = Mutex.create ()
let live : t Weak.t ref = ref (Weak.create 64)

let obs_retire t =
  Mutex.lock live_mu;
  retired.r_enqueued <- retired.r_enqueued + t.prod.enqueued;
  retired.r_enq_bytes <- retired.r_enq_bytes + t.prod.enq_bytes;
  retired.r_batches <- retired.r_batches + t.prod.batches;
  retired.r_full <- retired.r_full + t.prod.full_events;
  retired.r_dequeued <- retired.r_dequeued + t.cons.dequeued;
  retired.r_deq_bytes <- retired.r_deq_bytes + t.cons.deq_bytes;
  retired.r_credit_returns <- retired.r_credit_returns + t.cons.credit_returns;
  Mutex.unlock live_mu

let obs_register t =
  Mutex.lock live_mu;
  retired.r_created <- retired.r_created + 1;
  let w = !live in
  let n = Weak.length w in
  let rec free_slot i = if i >= n then -1 else if Weak.check w i then free_slot (i + 1) else i in
  (match free_slot 0 with
  | slot when slot >= 0 -> Weak.set w slot (Some t)
  | _ ->
    let bigger = Weak.create (2 * n) in
    for i = 0 to n - 1 do
      Weak.set bigger i (Weak.get w i)
    done;
    Weak.set bigger n (Some t);
    live := bigger);
  Mutex.unlock live_mu;
  Gc.finalise obs_retire t

let fold_live f base =
  Mutex.lock live_mu;
  let acc = ref base in
  let w = !live in
  for i = 0 to Weak.length w - 1 do
    match Weak.get w i with
    | Some t -> acc := !acc + f t
    | None -> ()
  done;
  Mutex.unlock live_mu;
  !acc

(* Global histogram of vectored-enqueue batch sizes: one observe per
   [enqueue_batch] call, amortized over the whole batch. *)
let h_batch_size = Obs.Metrics.histogram "ring.batch_size"

let () =
  Obs.Metrics.probe "ring.created" (fun () -> retired.r_created);
  Obs.Metrics.probe "ring.enqueues" (fun () -> fold_live (fun t -> t.prod.enqueued) retired.r_enqueued);
  Obs.Metrics.probe "ring.enqueue_bytes" (fun () -> fold_live (fun t -> t.prod.enq_bytes) retired.r_enq_bytes);
  Obs.Metrics.probe "ring.batches" (fun () -> fold_live (fun t -> t.prod.batches) retired.r_batches);
  Obs.Metrics.probe "ring.full_events" (fun () -> fold_live (fun t -> t.prod.full_events) retired.r_full);
  Obs.Metrics.probe "ring.dequeues" (fun () -> fold_live (fun t -> t.cons.dequeued) retired.r_dequeued);
  Obs.Metrics.probe "ring.dequeue_bytes" (fun () -> fold_live (fun t -> t.cons.deq_bytes) retired.r_deq_bytes);
  Obs.Metrics.probe "ring.credit_returns" (fun () ->
      fold_live (fun t -> t.cons.credit_returns) retired.r_credit_returns);
  (* Flight-recorder state provider: cursors, credits and waiter park flags
     of every live ring — the first thing to read in a deadlock dump. *)
  Sds_obs.Flight.register_state "ring" (fun () ->
      let b = Buffer.create 256 in
      Mutex.lock live_mu;
      let w = !live in
      for i = 0 to Weak.length w - 1 do
        match Weak.get w i with
        | Some t ->
          Buffer.add_string b
            (Printf.sprintf
               "ring=%d size=%d tail=%d head=%d credits=%d enqueued=%d dequeued=%d pending_return=%d rx_parked=%b tx_parked=%b\n"
               i t.size (Atomic.get t.tail) t.cons.head (Atomic.get t.credits) t.prod.enqueued
               t.cons.dequeued t.cons.pending_return
               (Sds_notify.Waiter.parked t.rx_waiter)
               (Sds_notify.Waiter.parked t.tx_waiter))
        | None -> ()
      done;
      Mutex.unlock live_mu;
      Buffer.contents b)

(* Edge-triggered full/stall bookkeeping: counts every rejected attempt but
   emits one trace event per full episode, so a spinning producer cannot
   flood the trace ring. *)
let[@inline] [@sds.hot] note_reject (t : t) tag =
  t.prod.full_events <- t.prod.full_events + 1;
  if t.prod.was_full = 0 then begin
    t.prod.was_full <- 1;
    Obs.Trace.emit tag
  end

let default_size = 64 * 1024

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create_unregistered ?(size = default_size) () =
  if not (is_power_of_two size) then invalid_arg "Spsc_ring.create: size must be a power of two";
  if size < 64 then invalid_arg "Spsc_ring.create: size too small";
  let tail = Atomic.make 0 in
  let pad0 = Array.make 8 0 in
  let credits = Atomic.make size in
  let pad1 = Array.make 8 0 in
  (* [let rec]: the readiness closures are preallocated here, once, so the
     blocking wait paths never build a closure per call. *)
  let rec t =
    {
      buf = Bytes.create size;
      size;
      mask = size - 1;
      tail;
      credits;
      prod =
        { enqueued = 0; enq_bytes = 0; batches = 0; full_events = 0; was_full = 0; tx_need = 0;
          p0 = 0; p1 = 0 };
      cons = { head = 0; pending_return = 0; dequeued = 0; deq_bytes = 0; credit_returns = 0; c0 = 0; c1 = 0; c2 = 0 };
      rx_waiter = Sds_notify.Waiter.create ();
      tx_waiter = Sds_notify.Waiter.create ();
      rx_ready = (fun () -> t.cons.head <> Atomic.get t.tail);
      tx_ready = (fun () -> Atomic.get t.credits >= t.prod.tx_need);
      span = Sds_obs.Span.make_track ();
      _pad0 = pad0;
      _pad1 = pad1;
    }
  in
  t

let create ?size () =
  let t = create_unregistered ?size () in
  obs_register t;
  t

let capacity t = t.size
let credits t = Atomic.get t.credits
let used t = Atomic.get t.tail - t.cons.head
let is_empty t = t.cons.head = Atomic.get t.tail
let enqueued t = t.prod.enqueued
let dequeued t = t.cons.dequeued
let pending_return t = t.cons.pending_return

let record_bytes len = (header_bytes + len + align - 1) land lnot (align - 1)

(* Producer-side API-entry stamp for the message about to be enqueued (its
   sequence number is [prod.enqueued]); lets callers attribute their own
   staging work to [span.app] ahead of the publish stamp. *)
let[@inline] [@sds.hot] stamp_send t = Span.stamp_send t.span ~seq:t.prod.enqueued

(* Wrap-around blit of [len] bytes from [src] into the ring at absolute
   position [pos]. *)
let[@sds.hot] blit_in t src src_off pos len =
  let off = pos land t.mask in
  let first = min len (t.size - off) in
  Bytes.blit src src_off t.buf off first;
  if first < len then Bytes.blit src (src_off + first) t.buf 0 (len - first)

let[@sds.hot] blit_out t pos dst dst_off len =
  let off = pos land t.mask in
  let first = min len (t.size - off) in
  Bytes.blit t.buf off dst dst_off first;
  if first < len then Bytes.blit t.buf 0 dst (dst_off + first) (len - first)

(* Fold all 32 bits of [len] and all 16 of [flags] into 16 bits.  The
   non-zero constant keeps an all-zero header (fresh or zeroed shared
   memory) from validating as an empty message. *)
let[@sds.hot] header_checksum len flags =
  let x = len lxor (len lsr 16) in
  let x = x lxor (x lsl 5) lxor flags lxor 0x9E37 in
  x land 0xFFFF

(* Positions only ever advance by [record_bytes] (a multiple of 8) from 0,
   so the 8-byte header is always contiguous and the fast path below always
   hits; the byte-wise slow path is kept for generality should alignment
   rules ever change. *)
let[@sds.hot] write_header t pos len flags =
  let off = pos land t.mask in
  if off + header_bytes <= t.size then begin
    unsafe_set_int32 t.buf off (Int32.of_int len);
    unsafe_set_int32 t.buf (off + 4)
      (Int32.of_int (flags lor (header_checksum len flags lsl 16)))
  end
  else
    ((* Unreachable while positions stay 8-byte aligned; kept for
        generality and exempt from the hot-alloc rule. *)
     let sum = header_checksum len flags in
     let byte i =
       if i < 4 then (len lsr (8 * i)) land 0xFF
       else if i < 6 then (flags lsr (8 * (i - 4))) land 0xFF
       else (sum lsr (8 * (i - 6))) land 0xFF
     in
     for i = 0 to header_bytes - 1 do
       Bytes.unsafe_set t.buf ((pos + i) land t.mask) (Char.unsafe_chr (byte i))
     done)
    [@sds.cold]

(* Headers decode to a packed immediate — [len lor (flags lsl 32)], or
   [-1] when the checksum rejects — so the hot path allocates nothing. *)
let no_msg = -1

let[@sds.hot] decode_header t pos =
  let off = pos land t.mask in
  if off + header_bytes <= t.size then begin
    let len = Int32.to_int (unsafe_get_int32 t.buf off) in
    let hi = Int32.to_int (unsafe_get_int32 t.buf (off + 4)) land 0xFFFFFFFF in
    let flags = hi land 0xFFFF in
    let sum = (hi lsr 16) land 0xFFFF in
    if sum <> header_checksum len flags || len < 0 || record_bytes len > t.size / 2 then no_msg
    else len lor (flags lsl 32)
  end
  else
    ((* Unreachable while positions stay 8-byte aligned, like the
        [write_header] slow path. *)
     let byte i = Char.code (Bytes.unsafe_get t.buf ((pos + i) land t.mask)) in
     let word i n =
       let rec go k acc = if k = n then acc else go (k + 1) (acc lor (byte (i + k) lsl (8 * k))) in
       go 0 0
     in
     let len = word 0 4 and flags = word 4 2 and sum = word 6 2 in
     if sum <> header_checksum len flags || len < 0 || record_bytes len > t.size / 2 then no_msg
     else len lor (flags lsl 32))
    [@sds.cold]

let[@inline] packed_len p = p land 0xFFFFFFFF
let[@inline] packed_flags p = (p lsr 32) land 0xFFFF

(* ---- page-descriptor records (§4.6 zero-copy handoff) ----

   A record whose header carries [flag_desc] holds no payload bytes: its
   body is a vector of 8-byte page descriptors, each packing
   {page id, offset, length} of a 4 KiB page in a shared [Sds_vm.Pagepool].
   Enqueuing a descriptor vector transfers the pages' references to the
   consumer (ownership handoff); the payload itself never crosses the ring.
   The ring stays pool-agnostic — descriptors are opaque ints here; the
   transport layer pairs them with the pool that gives them meaning. *)

let flag_desc = 0x100

(* Descriptor layout (fits a 63-bit int): bits 0-12 length (<= 4096),
   13-25 offset (< 4096), 26+ page id. *)
let desc_len_mask = 0x1FFF
let desc_max_page = (1 lsl 36) - 1

let desc_entry ~page ~off ~len =
  if len < 0 || len > 4096 then invalid_arg "Spsc_ring.desc_entry: bad length";
  if off < 0 || off >= 4096 then invalid_arg "Spsc_ring.desc_entry: bad offset";
  if page < 0 || page > desc_max_page then invalid_arg "Spsc_ring.desc_entry: bad page id";
  len lor (off lsl 13) lor (page lsl 26)

let[@inline] desc_len e = e land desc_len_mask
let[@inline] desc_off e = (e lsr 13) land desc_len_mask
let[@inline] desc_page e = e lsr 26

let[@inline] is_desc_packed p = packed_flags p land flag_desc <> 0
let[@inline] desc_count_packed p = packed_len p lsr 3

let read_header t pos =
  let p = decode_header t pos in
  if p = no_msg then None else Some (packed_len p, packed_flags p)

(* Attempt to enqueue [len] bytes of [src] (with [flags] in the header).
   Returns [false] when the sender lacks credits — never overwrites. *)
let[@sds.hot] try_enqueue ?(flags = 0) t src ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length src then invalid_arg "Spsc_ring.try_enqueue";
  let need = record_bytes len in
  if need > t.size / 2 then invalid_arg "Spsc_ring.try_enqueue: message larger than half ring";
  if need > Atomic.get t.credits then begin
    note_reject t Obs.Trace.Ring_full;
    false
  end
  else begin
    (* Payload first, then the header, then the atomic tail store: the
       consumer acquires through [tail], so it never reads a half-written
       record (§4.2 consistency argument).  The [@sds.model] region below is
       extracted verbatim into the "ring-publication" Interleave model
       (see lib/check/extract.ml) — edits here must keep the golden model in
       test/golden/ in sync, or `sdmodel check` fails CI. *)
    begin
      let tail = Atomic.get t.tail in
      blit_in t src off (tail + header_bytes) len;
      write_header t tail len flags;
      Span.stamp_pub t.span ~seq:t.prod.enqueued;
      (* Spend credits BEFORE publishing the tail.  The consumer can dequeue
         the instant the tail store lands; if its batched credit return fired
         in the publish->spend window, [return_credits] would see
         credits + returned > capacity and reject a correct return.  Spending
         first keeps spends-landed >= published >= consumed at every
         interleaving, so the capacity invariant holds unconditionally. *)
      ignore (Atomic.fetch_and_add t.credits (-need));
      Atomic.set t.tail (tail + need);
      t.prod.enqueued <- t.prod.enqueued + 1;
      t.prod.enq_bytes <- t.prod.enq_bytes + len;
      t.prod.was_full <- 0;
      (* §4.4 sender-mediated wakeup: one load of the consumer's parked flag;
         the mutex path runs at most once per parked episode. *)
      Sds_notify.Waiter.notify t.rx_waiter;
      true
    end [@sds.model "ring-publication/producer"]
  end

(* Vectored enqueue: writes as many of [srcs] as credits allow, publishing
   the tail once and spending credits once for the whole batch — the
   amortization behind the paper's adaptive batching (§4.2).  Returns how
   many messages of the prefix were enqueued. *)
let[@sds.hot] enqueue_batch ?(flags = 0) t srcs =
  let budget = ref (Atomic.get t.credits) in
  let tail0 = Atomic.get t.tail in
  let tail = ref tail0 in
  let n = Array.length srcs in
  let i = ref 0 in
  let bytes = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < n do
    let src, off, len = srcs.(!i) in
    if len < 0 || off < 0 || off + len > Bytes.length src then
      invalid_arg "Spsc_ring.enqueue_batch";
    let need = record_bytes len in
    if need > t.size / 2 then invalid_arg "Spsc_ring.enqueue_batch: message larger than half ring";
    if need > !budget then stop := true
    else begin
      blit_in t src off (!tail + header_bytes) len;
      write_header t !tail len flags;
      tail := !tail + need;
      budget := !budget - need;
      bytes := !bytes + len;
      incr i
    end
  done;
  if !i > 0 then begin
    (* Stamp every sampled sequence of the batch (the consumer derives the
       sampled set from the sequence number alone, so producer and consumer
       must agree even mid-batch); unsampled iterations are one branch. *)
    for j = 0 to !i - 1 do
      Span.stamp_pub t.span ~seq:(t.prod.enqueued + j)
    done;
    (* Spend before publish, as in [try_enqueue]: the consumer must never
       observe a published record whose credit spend hasn't landed. *)
    ignore (Atomic.fetch_and_add t.credits (tail0 - !tail));
    Atomic.set t.tail !tail;
    t.prod.enqueued <- t.prod.enqueued + !i;
    t.prod.enq_bytes <- t.prod.enq_bytes + !bytes;
    t.prod.batches <- t.prod.batches + 1;
    t.prod.was_full <- 0;
    Obs.Metrics.observe h_batch_size !i;
    Obs.Trace.emit_n Obs.Trace.Batch !i;
    (* One wakeup check per published batch (amortized like the tail store). *)
    Sds_notify.Waiter.notify t.rx_waiter
  end;
  if !stop then note_reject t Obs.Trace.Credit_stall;
  !i

(* Enqueue the first [n] descriptors of [entries] as one [flag_desc]
   record.  Same credit/publication discipline as [try_enqueue]; the body
   is written with aligned 8-byte stores (positions advance by multiples of
   8 from 0, so an entry never straddles the wrap).  Publishing transfers
   the page references to the consumer. *)
let[@sds.hot] try_enqueue_descs ?(flags = 0) t entries ~n =
  if n <= 0 || n > Array.length entries then invalid_arg "Spsc_ring.try_enqueue_descs";
  let len = 8 * n in
  let need = record_bytes len in
  if need > t.size / 2 then
    invalid_arg "Spsc_ring.try_enqueue_descs: descriptor vector larger than half ring";
  if need > Atomic.get t.credits then begin
    note_reject t Obs.Trace.Ring_full;
    false
  end
  else begin
    let tail = Atomic.get t.tail in
    for i = 0 to n - 1 do
      unsafe_set_int64 t.buf
        ((tail + header_bytes + (8 * i)) land t.mask)
        (Int64.of_int (Array.unsafe_get entries i))
    done;
    write_header t tail len (flags lor flag_desc);
    Span.stamp_pub t.span ~seq:t.prod.enqueued;
    (* Spend before publish (see [try_enqueue]). *)
    ignore (Atomic.fetch_and_add t.credits (-need));
    Atomic.set t.tail (tail + need);
    t.prod.enqueued <- t.prod.enqueued + 1;
    t.prod.enq_bytes <- t.prod.enq_bytes + len;
    t.prod.was_full <- 0;
    Sds_notify.Waiter.notify t.rx_waiter;
    true
  end

type dequeued = { data : Bytes.t; flags : int }

(* Credit return the consumer owes the producer; the transport delivers it by
   calling [return_credits].  Returns 0 until half the ring has been
   consumed, matching the paper's batched credit-return flag. *)
let[@sds.hot] take_credit_return t =
  if t.cons.pending_return >= t.size / 2 then begin
    let r = t.cons.pending_return in
    t.cons.pending_return <- 0;
    t.cons.credit_returns <- t.cons.credit_returns + 1;
    r
  end
  else 0

let[@sds.hot] return_credits t n =
  if n < 0 || Atomic.get t.credits + n > t.size then invalid_arg "Spsc_ring.return_credits";
  ignore (Atomic.fetch_and_add t.credits n);
  Sds_notify.Waiter.notify t.tx_waiter

(* Consumer-side bookkeeping after a message of ring footprint [consumed]
   (payload [len]) has been copied out. *)
let[@inline] [@sds.hot] consume t consumed len auto_credit =
  Span.note_deq t.span ~seq:t.cons.dequeued;
  t.cons.head <- t.cons.head + consumed;
  t.cons.pending_return <- t.cons.pending_return + consumed;
  t.cons.dequeued <- t.cons.dequeued + 1;
  t.cons.deq_bytes <- t.cons.deq_bytes + len;
  if auto_credit then begin
    let r = t.cons.pending_return in
    t.cons.pending_return <- 0;
    t.cons.credit_returns <- t.cons.credit_returns + 1;
    ignore (Atomic.fetch_and_add t.credits r);
    Sds_notify.Waiter.notify t.tx_waiter
  end

let try_dequeue ?(auto_credit = false) t =
  if is_empty t then None
  else
    match read_header t t.cons.head with
    | None -> None
    | Some (len, flags) ->
      let data = Bytes.create len in
      blit_out t (t.cons.head + header_bytes) data 0 len;
      consume t (record_bytes len) len auto_credit;
      Some { data; flags }

(* The zero-allocation dequeue primitive: copies the next payload straight
   into [dst] and returns the packed [len lor (flags lsl 32)] immediate, or
   [no_msg] (-1) when the ring is empty or the header invalid.  Raises when
   [dst] cannot hold the message (use [peek_packed] to size it). *)
let[@sds.hot] try_dequeue_packed ?(auto_credit = false) t ~dst ~dst_off =
  if is_empty t then no_msg
  else begin
    let p = decode_header t t.cons.head in
    if p = no_msg then no_msg
    else begin
      let len = packed_len p in
      if dst_off < 0 || dst_off + len > Bytes.length dst then
        invalid_arg "Spsc_ring.try_dequeue_into: buffer too small";
      blit_out t (t.cons.head + header_bytes) dst dst_off len;
      consume t (record_bytes len) len auto_credit;
      p
    end
  end

(* Dequeue the next record's descriptor vector into [entries] and return
   the packed immediate ([desc_count_packed] gives the entry count), or
   [no_msg] when the ring is empty/invalid.  The pages' references now
   belong to the caller, which must release (or further hand off) each one.
   Raises if the next record is not descriptor-flagged — callers peek the
   flags first ([peek_packed]). *)
let[@sds.hot] try_dequeue_descs ?(auto_credit = false) t ~entries =
  if is_empty t then no_msg
  else begin
    let p = decode_header t t.cons.head in
    if p = no_msg then no_msg
    else begin
      let len = packed_len p in
      if packed_flags p land flag_desc = 0 then
        invalid_arg "Spsc_ring.try_dequeue_descs: next record is not a descriptor (peek first)";
      let n = len lsr 3 in
      if n > Array.length entries then
        invalid_arg "Spsc_ring.try_dequeue_descs: entries buffer too small";
      for i = 0 to n - 1 do
        Array.unsafe_set entries i
          (Int64.to_int
             (unsafe_get_int64 t.buf ((t.cons.head + header_bytes + (8 * i)) land t.mask)))
      done;
      consume t (record_bytes len) len auto_credit;
      p
    end
  end

(* Option-typed convenience over [try_dequeue_packed] (the [Some] box is
   the only allocation). *)
let try_dequeue_into ?auto_credit t ~dst ~dst_off =
  let p = try_dequeue_packed ?auto_credit t ~dst ~dst_off in
  if p = no_msg then None else Some (packed_len p, packed_flags p)

(* Batched dequeue: up to [max] messages in arrival order.  Stops early on
   an empty ring or an invalid header. *)
let dequeue_batch ?(auto_credit = false) t ~max =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match try_dequeue ~auto_credit t with
      | None -> List.rev acc
      | Some d -> go (d :: acc) (k - 1)
  in
  go [] max

(* Peek the next message without consuming it: packed immediate, [no_msg]
   when empty or invalid. *)
let[@sds.hot] peek_packed t = if is_empty t then no_msg else decode_header t t.cons.head

let peek_len t =
  let p = peek_packed t in
  if p = no_msg then None else Some (packed_len p)

(* ---- blocking operation, via the §4.4 event-notification subsystem ----

   The consumer parks on [rx_waiter] when the ring is empty; the producer's
   tail publication notifies it (one parked-flag load on the hot path).  A
   credit-starved producer parks on [tx_waiter]; the consumer's credit
   return notifies it.  The readiness closures were preallocated at
   [create], so waiting allocates nothing. *)

let wait_rx t = Sds_notify.Waiter.wait t.rx_waiter ~ready:t.rx_ready

let wait_tx t ~len =
  t.prod.tx_need <- record_bytes len;
  Sds_notify.Waiter.wait t.tx_waiter ~ready:t.tx_ready

let rx_waiter t = t.rx_waiter
let tx_waiter t = t.tx_waiter

(* Share one waiter across N rings for [Waiter.wait_any]; all producers of
   those rings then notify the shared waiter. *)
let set_rx_waiter t w = t.rx_waiter <- w

let rec enqueue_blocking ?(flags = 0) t src ~off ~len =
  if not (try_enqueue ~flags t src ~off ~len) then begin
    wait_tx t ~len;
    enqueue_blocking ~flags t src ~off ~len
  end

(* Blocks while the ring is empty.  A header that fails its checksum (a
   corrupt peer) also reads as "empty", so this parks rather than decoding
   garbage — the non-blocking [try_dequeue_packed] is the probing flavour. *)
let rec dequeue_packed_blocking ?(auto_credit = false) t ~dst ~dst_off =
  let p = try_dequeue_packed ~auto_credit t ~dst ~dst_off in
  if p <> no_msg then p
  else begin
    wait_rx t;
    dequeue_packed_blocking ~auto_credit t ~dst ~dst_off
  end

(* Test-only access to the underlying storage, for corruption-injection
   tests of the header checksum. *)
module For_testing = struct
  let buf t = t.buf
  let head_offset t = t.cons.head land t.mask
end

