(** Observability substrate: process-global zero-allocation metrics and
    per-domain bounded event tracing.

    Hot-path recording never allocates and never locks: counters, gauges and
    histograms are flat [int] arrays sharded per domain (padded against
    false sharing), trace events are two stores into a per-domain ring.
    Aggregation, percentile extraction and rendering happen only on read. *)

val shards : int
(** Number of per-domain shards behind every metric and trace ring. *)

val log2_floor : int -> int
(** [log2_floor v] for [v > 0]; constant time, no allocation. *)

module Metrics : sig
  val set_enabled : bool -> unit
  (** Master switch; disabled recording is a single load-and-branch. *)

  val enabled : unit -> bool

  (** {1 Counters} — monotonically increasing, sharded per domain. *)

  type counter

  val counter : string -> counter
  (** Register (or look up) the counter named [name]; idempotent. *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int
  (** Aggregated over shards. *)

  (** {1 Gauges} — sharded cells aggregated by sum on read. *)

  type gauge

  val gauge : string -> gauge
  val gauge_add : gauge -> int -> unit
  val gauge_set : gauge -> int -> unit
  (** Writes this domain's shard only; meaningful for single-writer gauges. *)

  val gauge_value : gauge -> int

  (** {1 Histograms} — fixed 64-bucket log2 (HDR-style) arrays. [observe]
      performs no allocation; values [<= 0] land in bucket 0, and bucket
      [b >= 1] covers [[2^(b-1), 2^b)]. *)

  type histogram

  val histogram : string -> histogram
  val observe : histogram -> int -> unit
  val bucket_of : int -> int

  type hist_summary = {
    hs_count : int;
    hs_sum : int;
    hs_min : int;
    hs_max : int;
    hs_p50 : int;
    hs_p99 : int;
    hs_p999 : int;
    hs_buckets : int array;
  }

  val summarize_hist : histogram -> hist_summary

  (** {1 Probes} — counters whose cells live inside a data structure too hot
      for even a sharded add (e.g. the SPSC ring's single-writer fields).
      The closure is evaluated at snapshot time and must be monotone. *)

  val probe : string -> (unit -> int) -> unit

  (** {1 Snapshot and rendering} *)

  type snapshot = {
    counters : (string * int) list;  (** includes probes; sorted by name *)
    gauges : (string * int) list;
    histograms : (string * hist_summary) list;
  }

  val snapshot : unit -> snapshot

  val counter_value : string -> int
  (** Current value of a counter or probe by name; 0 when unregistered. *)

  val reset : unit -> unit
  (** Zero every registered cell.  Probe-backed counters keep their monotone
      underlying totals and are re-based to read as zero. *)

  val to_json : unit -> string
  val to_text : unit -> string
end

module Trace : sig
  (** Typed events recorded on the data path. *)
  type tag =
    | Send
    | Recv
    | Batch
    | Token_takeover
    | Zerocopy_remap
    | Ring_full
    | Fallback
    | Credit_stall
    | Scratch_grow
    | Accept
    | Steal
    | Wake
    | Fork
    | Park
    | Policy_adapt  (** [Copy_policy] re-derived its threshold; arg = new threshold *)
    | Flight_dump  (** the flight recorder wrote a dump; arg = records dumped *)

  val tag_name : tag -> string
  val tag_of_name : string -> tag option

  val set_enabled : bool -> unit
  val enabled : unit -> bool

  val set_clock : (unit -> int) -> unit
  (** Install a monotonic timestamp source (e.g. the sim engine's clock).
      Default: a global tick counter. *)

  val reset_clock : unit -> unit

  val set_capacity : int -> unit
  (** Resize every per-domain ring to [cap] events, clearing them. *)

  val clear : unit -> unit

  val emit : tag -> unit
  (** Record an event: two stores and a cursor bump, no allocation. *)

  val emit_n : tag -> int -> unit
  (** Record an event with an integer argument (batch size, byte count). *)

  val dropped : unit -> int
  (** Events overwritten by ring wraparound since the last drain. *)

  type event = { ts : int; domain : int; tag : tag; arg : int }

  val drain : unit -> event list
  (** All retained events, oldest first, merged across domains; clears the
      rings. *)

  val to_csv : event list -> string

  val to_chrome_json : event list -> string
  (** Chrome trace-event JSON (chrome://tracing, Perfetto); [ts] is in
      microseconds with nanosecond resolution in the decimals. *)

  val parse_chrome_json : string -> event list
  (** Parse the exact shape [to_chrome_json] emits (round-trip). *)
end
