/* Monotonic nanosecond clock for Sds_obs.Span.
 *
 * Declared [@@noalloc] on the OCaml side: the result is an immediate
 * (Val_long), no OCaml heap interaction, so the stamp compiles to a plain
 * C call with no caml_enter/leave overhead.  63-bit ns wraps after ~146
 * years of uptime, which is fine for interval arithmetic. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value sds_span_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
