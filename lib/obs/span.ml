(* Per-message causal latency attribution (the Sds_span tentpole).

   A span is not an allocated object: it is a set of timestamps stamped at
   fixed points of the data path and correlated by the message's ring
   sequence number.  The sender stamps at [Libsd.send] entry (sim path:
   [Msg] creation), the ring stamps publication, [Sds_notify] records the
   park→wake edge, and the receiver stamps dequeue and consume
   completion.  The differences feed fixed per-stage log2 histograms:

     span.app    send  -> publish   (sender-side staging / API overhead)
     span.queue  publish -> visible (ring residency + transport)
     span.wake   visible -> dequeue (receiver reaction: poll or park/wake)
     span.parse  dequeue -> decoded (ring record / descriptor decode)
     span.copy   decoded -> done    (payload landed by memcpy)
     span.remap  decoded -> done    (payload landed by page remap, §4.6)
     span.e2e    send -> done       (everything; stage sums reconcile)

   Two clock regimes share this module.  The default clock is a noalloc
   monotonic-ns C stub, used by the real-domain ring path and the waiter;
   the simulator installs its virtual clock ([Engine.install_span_clock])
   so sim spans are exact in simulated nanoseconds.

   Hot-path discipline: stamping is a sampled store into a preallocated
   track (default 1-in-128 messages, [set_sample_shift]); the unsampled
   fast path is one load, one mask and a branch.  Nothing allocates. *)

external monotonic_ns : unit -> int = "sds_span_monotonic_ns" [@@noalloc]

(* Swappable clock, [Obs.Trace.set_clock] style.  Every stamp in one
   process must come from the same source or stage sums stop meaning
   anything, which is why the sim installs its clock globally. *)
let clock = ref monotonic_ns
let now () = !clock ()
let set_clock f = clock := f
let reset_clock () = clock := monotonic_ns

let on = ref true

(* Sample 1 message in 2^shift.  A sampled message pays three
   clock_gettime calls plus the histogram observes and the flight-recorder
   stores (~150 ns end to end); the default shift 7 amortises that to
   ~1 ns/msg, inside the 2 ns budget.  Tests drop to shift 0 for
   every-message coverage. *)
let shift = ref 7

(* The enabled flag and the sampling mask are fused into one guard,
   [seq land gate_m = 0], so the unsampled fast path is one load, one mask
   and one compare-branch.  Disabled sets the mask to all-ones, which
   still passes the guard at seq = 0 (once per ring lifetime); the cold
   slow paths re-check [on] where it matters, so the single spurious stamp
   is a harmless pair of array stores. *)
let gate_m = ref ((1 lsl 7) - 1)
let update_gate () = gate_m := if !on then (1 lsl !shift) - 1 else -1

let set_enabled b =
  on := b;
  update_gate ()

let enabled () = !on

let set_sample_shift s =
  if s < 0 || s > 20 then invalid_arg "Obs.Span.set_sample_shift";
  shift := s;
  update_gate ()

let sample_shift () = !shift

(* ---- stage histograms -------------------------------------------------- *)

let h_app = Obs.Metrics.histogram "span.app"
let h_queue = Obs.Metrics.histogram "span.queue"
let h_wake = Obs.Metrics.histogram "span.wake"
let h_parse = Obs.Metrics.histogram "span.parse"
let h_copy = Obs.Metrics.histogram "span.copy"
let h_remap = Obs.Metrics.histogram "span.remap"
let h_e2e = Obs.Metrics.histogram "span.e2e"

(* ---- ring-path span track ----------------------------------------------

   The real-domain SPSC ring cannot carry stamps in its payload (records
   are opaque ints), so each ring owns a [track]: two preallocated int
   arrays indexed by [(seq >> shift) & (slots-1)].  The producer writes
   send/publish stamps before the tail release, the consumer reads them at
   dequeue — FIFO order plus the release/acquire on the ring tail makes
   the correlation exact, with no allocation and no ID table.  Each stamp
   slot carries a [seq + 1] tag checked at resolution, so a stale slot
   (slot reuse, or sampling toggled mid-traffic) reads as "no stamp"
   instead of fabricating a latency. *)

let track_slots = 256

type track = {
  send_ts : int array;
  send_tag : int array;
  pub_ts : int array;
  pub_tag : int array;
  tmask : int;
}

let make_track () =
  {
    send_ts = Array.make track_slots 0;
    send_tag = Array.make track_slots 0;
    pub_ts = Array.make track_slots 0;
    pub_tag = Array.make track_slots 0;
    tmask = track_slots - 1;
  }

let[@inline] sampled seq = seq land !gate_m = 0

(* Producer side: optional send stamp (API entry), then the publish stamp.
   The slow writers are [@inline never] so the callers' inlined residue is
   just the sampling guard and a cold call. *)
let[@inline never] stamp_send_slow tr seq =
  let i = (seq lsr !shift) land tr.tmask in
  Array.unsafe_set tr.send_ts i (now ());
  Array.unsafe_set tr.send_tag i (seq + 1)

let[@inline] stamp_send tr ~seq = if sampled seq then stamp_send_slow tr seq

let[@inline never] stamp_pub_slow tr seq =
  let i = (seq lsr !shift) land tr.tmask in
  Array.unsafe_set tr.pub_ts i (now ());
  Array.unsafe_set tr.pub_tag i (seq + 1)

let[@inline] stamp_pub tr ~seq = if sampled seq then stamp_pub_slow tr seq

(* Consumer side: resolve the span at dequeue.  Observes span.app (when a
   send stamp preceded the publish stamp), span.queue and span.e2e, and
   records the resolved span into the flight recorder. *)
let[@inline never] resolve_deq tr seq =
  let i = (seq lsr !shift) land tr.tmask in
  let t = now () in
  let pub = Array.unsafe_get tr.pub_ts i in
  if !on && Array.unsafe_get tr.pub_tag i = seq + 1 && pub > 0 && t >= pub then begin
    Obs.Metrics.observe h_queue (t - pub);
    let send = Array.unsafe_get tr.send_ts i in
    let send =
      if Array.unsafe_get tr.send_tag i = seq + 1 && send > 0 && send <= pub then send else pub
    in
    if send < pub then Obs.Metrics.observe h_app (pub - send);
    Obs.Metrics.observe h_e2e (t - send);
    Flight.span ~seq ~send ~pub ~deq:t
  end

let[@inline] note_deq tr ~seq = if sampled seq then resolve_deq tr seq

(* ---- sim-path stage observation ----------------------------------------

   The simulator carries stamps on [Msg.t] fields instead of a track (the
   message object already exists there) and calls this once per consumed
   data message, at consume completion.  Stages are disjoint by
   construction, so their sums reconcile exactly with span.e2e. *)

let observe_stages ~seq ~send ~pub ~vis ~deq ~parsed ~done_ ~remapped =
  (* [pub > 0] is the "actually travelled the instrumented transport"
     marker: messages that never crossed a channel (or predate the clock
     install) carry no publish stamp and are skipped whole, so every stage
     histogram counts exactly the same message population. *)
  if !on && pub > 0 && send >= 0 && done_ >= send then begin
    let pub = if pub >= send then pub else send in
    let vis = if vis >= pub then vis else pub in
    let deq = if deq >= vis then deq else vis in
    let parsed = if parsed >= deq then parsed else deq in
    let done_ = if done_ >= parsed then done_ else parsed in
    Obs.Metrics.observe h_app (pub - send);
    Obs.Metrics.observe h_queue (vis - pub);
    Obs.Metrics.observe h_wake (deq - vis);
    Obs.Metrics.observe h_parse (parsed - deq);
    Obs.Metrics.observe (if remapped then h_remap else h_copy) (done_ - parsed);
    Obs.Metrics.observe h_e2e (done_ - send);
    Flight.span ~seq ~send ~pub ~deq
  end

(* ---- wake edges -------------------------------------------------------- *)

(* Called by the waiter with raw monotonic stamps (never the sim clock:
   parking blocks a real thread regardless of what the sim clock says). *)
let observe_wake ~parked_ns ~woke_ns =
  if !on && woke_ns >= parked_ns then begin
    Obs.Metrics.observe h_wake (woke_ns - parked_ns);
    Flight.wake ~parked_ns ~woke_ns
  end
