(** Flight recorder: per-domain bounded rings of recent span records plus
    registered state providers, rendered into a postmortem dump on crash,
    deadlock (zero-progress watchdog) or SIGQUIT.

    Recording ([span], [wake], [mark]) is hot-path safe — five int stores
    and a cursor bump, no allocation, no locks.  Everything else is cold. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_capacity : int -> unit
(** Resize every per-domain record ring (default 512 records), clearing. *)

val clear : unit -> unit

(** {1 Recording} *)

val span : seq:int -> send:int -> pub:int -> deq:int -> unit
(** One message's resolved stamps: ring sequence number, send / publish /
    dequeue timestamps (ns). *)

val wake : parked_ns:int -> woke_ns:int -> unit
(** A park→wake edge from [Sds_notify]. *)

val mark : code:int -> arg:int -> unit
(** Free-form point annotation. *)

(** {1 Inspection} *)

val kind_span : int

val kind_wake : int

val kind_mark : int

type rec_ = { domain : int; kind : int; a : int; b : int; c : int; d : int }

val records : unit -> rec_ list
(** Non-destructive snapshot of every domain's retained records,
    oldest-first per domain. *)

(** {1 State providers} *)

val register_state : string -> (unit -> string) -> unit
(** Register (or replace) a named cold-path renderer of live structural
    state (ring cursors, waiter park flags, pool occupancy); evaluated
    only at dump time. *)

val register_heartbeats : string -> (unit -> (string * int) list) -> unit
(** Register (or replace) a named heartbeat provider: monotone (name,
    value) samples, one per watched entity (e.g. one per enrolled
    {!Sds_rt.Rt_dom} slot).  The watchdog samples every provider each
    round and fires on any entity whose value stalls while still being
    reported; providers should omit entities whose silence is legitimate
    (parked, exited). *)

val heartbeat_samples : unit -> (string * int) list
(** One flattened ["provider/entity"] sample round (providers that raise
    are skipped for the round). *)

(** {1 Dumping} *)

val dump_schema : string
(** First line of every dump ("sds-flight/1"). *)

val render : reason:string -> unit -> string

val dump_to_file : ?path:string -> reason:string -> unit -> string
(** Write a dump and return its path (default
    [$TMPDIR/sds-flight-<pid>.dump]); emits a [Flight_dump] trace event. *)

type dump = {
  d_reason : string;
  d_spans : rec_ list;
  d_states : (string * string) list;
  d_metrics : string;
}

val parse_dump : string -> dump
(** Parse the exact shape [render] emits; raises [Invalid_argument] on a
    foreign header. *)

val install : ?path:string -> unit -> unit
(** Install the SIGQUIT handler and the uncaught-exception hook (both dump
    before delegating to the default behaviour).  Idempotent; meant for
    drivers, not tests. *)

(** {1 Zero-progress watchdog} *)

type watchdog

val watchdog :
  ?path:string ->
  ?reason:string ->
  ?watch_heartbeats:bool ->
  interval_s:float ->
  stalls:int ->
  progress:(unit -> int) ->
  unit ->
  watchdog
(** Sample [progress] every [interval_s] seconds; after [stalls]
    consecutive unchanged samples, dump and stop watching.  Unless
    [watch_heartbeats:false], every registered heartbeat entity is watched
    the same way — a stalled-but-still-reported entity dumps with
    ["heartbeat-stall: <name>"] as the reason (slot epochs reach the dump
    via the [rt_dom] state section). *)

val watchdog_fired : watchdog -> string option
(** Path of the dump if the watchdog has fired. *)

val watchdog_stop : watchdog -> unit
(** Stop and join the watchdog thread. *)
