(* Observability substrate: process-global metrics and per-domain tracing.

   Everything here is built around one constraint: the data path must be
   able to record without allocating and without contending.  Two designs
   fall out of it:

   - [Metrics] keeps every counter / gauge / histogram as plain [int] cells
     in flat arrays, sharded per domain with a cache line of padding between
     shards (the same false-sharing discipline as [Spsc_ring]'s producer and
     consumer blocks).  The hot-path write is: load the enabled flag, index
     the shard, add.  Aggregation (summing shards, extracting percentiles)
     happens only on read.

   - [Trace] keeps one bounded ring of (timestamp, packed tag+arg) int pairs
     per domain.  Recording is two stores and a cursor bump; the ring wraps,
     dropping the oldest events, so a runaway emitter can never grow memory.
     Draining merges the per-domain rings into one time-ordered list and
     renders it as CSV or Chrome-trace JSON.

   Hot paths that truly cannot afford even a sharded add (the SPSC ring at
   tens of millions of ops/s) instead register a [probe]: a closure the
   registry evaluates at snapshot time, letting the data structure keep its
   stats in its own single-writer fields at zero marginal cost. *)

(* Number of counter shards.  Domain ids are mapped onto shards by masking,
   so two domains can share a shard under heavy oversubscription — the adds
   stay correct (plain int add, single word, no tearing on any supported
   platform), only the padding guarantee degrades. *)
let shards = 8
let shard_mask = shards - 1

let[@inline] shard_index () = (Domain.self () :> int) land shard_mask

(* Branchless floor(log2 v) for v > 0; constant time, no allocation. *)
let[@inline] log2_floor v =
  let r = ref 0 and v = ref v in
  if !v >= 1 lsl 32 then begin r := !r + 32; v := !v lsr 32 end;
  if !v >= 1 lsl 16 then begin r := !r + 16; v := !v lsr 16 end;
  if !v >= 1 lsl 8 then begin r := !r + 8; v := !v lsr 8 end;
  if !v >= 1 lsl 4 then begin r := !r + 4; v := !v lsr 4 end;
  if !v >= 1 lsl 2 then begin r := !r + 2; v := !v lsr 2 end;
  if !v >= 2 then incr r;
  !r

module Metrics = struct
  (* One padded slot (a cache line of ints) per shard. *)
  let stride = 8

  let on = ref true
  let set_enabled b = on := b
  let enabled () = !on

  type counter = { c_name : string; c_cells : int array }
  type gauge = { g_name : string; g_cells : int array }

  (* Histogram shard layout: 64 log2 buckets, then count / sum / min / max,
     padded to a multiple of [stride] so shards stay on distinct lines. *)
  let buckets = 64
  let hslot = buckets + stride
  let off_count = buckets
  let off_sum = buckets + 1
  let off_min = buckets + 2
  let off_max = buckets + 3

  type histogram = { h_name : string; h_cells : int array }
  type probe = { p_name : string; p_fn : unit -> int; mutable p_offset : int }

  type metric = C of counter | G of gauge | H of histogram | P of probe

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
  let registry_mu = Mutex.create ()

  let with_registry f =
    Mutex.lock registry_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

  let intern name make describe =
    with_registry (fun () ->
        match Hashtbl.find_opt registry name with
        | Some m -> m
        | None ->
          let m = make () in
          Hashtbl.replace registry name m;
          ignore describe;
          m)

  let fresh_hist_cells () =
    let cells = Array.make (shards * hslot) 0 in
    for s = 0 to shards - 1 do
      cells.((s * hslot) + off_min) <- max_int;
      cells.((s * hslot) + off_max) <- min_int
    done;
    cells

  let counter name =
    match intern name (fun () -> C { c_name = name; c_cells = Array.make (shards * stride) 0 }) "counter" with
    | C c -> c
    | _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " registered with another type")

  let gauge name =
    match intern name (fun () -> G { g_name = name; g_cells = Array.make (shards * stride) 0 }) "gauge" with
    | G g -> g
    | _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " registered with another type")

  let histogram name =
    match intern name (fun () -> H { h_name = name; h_cells = fresh_hist_cells () }) "histogram" with
    | H h -> h
    | _ -> invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " registered with another type")

  let probe name fn =
    match intern name (fun () -> P { p_name = name; p_fn = fn; p_offset = 0 }) "probe" with
    | P _ -> ()
    | _ -> invalid_arg ("Obs.Metrics.probe: " ^ name ^ " registered with another type")

  (* ---- hot-path writes: no allocation, no locks ---- *)

  let[@inline] add c n =
    if !on then begin
      let i = shard_index () * stride in
      Array.unsafe_set c.c_cells i (Array.unsafe_get c.c_cells i + n)
    end

  let[@inline] incr c = add c 1

  let[@inline] gauge_add g n =
    if !on then begin
      let i = shard_index () * stride in
      Array.unsafe_set g.g_cells i (Array.unsafe_get g.g_cells i + n)
    end

  (* Gauge [set] writes this domain's shard and is meaningful for
     single-writer gauges; multi-writer gauges should stick to
     [gauge_add]. *)
  let[@inline] gauge_set g v =
    if !on then Array.unsafe_set g.g_cells (shard_index () * stride) v

  (* Values <= 0 land in bucket 0; otherwise bucket b >= 1 covers
     [2^(b-1), 2^b), so a power of two sits on a bucket's lower edge. *)
  let[@inline] bucket_of v = if v <= 0 then 0 else min (buckets - 1) (log2_floor v + 1)

  let[@inline] observe h v =
    if !on then begin
      let cells = h.h_cells in
      let base = shard_index () * hslot in
      let b = base + bucket_of v in
      Array.unsafe_set cells b (Array.unsafe_get cells b + 1);
      Array.unsafe_set cells (base + off_count) (Array.unsafe_get cells (base + off_count) + 1);
      Array.unsafe_set cells (base + off_sum) (Array.unsafe_get cells (base + off_sum) + v);
      if v < Array.unsafe_get cells (base + off_min) then Array.unsafe_set cells (base + off_min) v;
      if v > Array.unsafe_get cells (base + off_max) then Array.unsafe_set cells (base + off_max) v
    end

  (* ---- aggregation (read side) ---- *)

  let sum_shards cells =
    let acc = ref 0 in
    for s = 0 to shards - 1 do
      acc := !acc + cells.(s * stride)
    done;
    !acc

  let value c = sum_shards c.c_cells
  let gauge_value g = sum_shards g.g_cells

  type hist_summary = {
    hs_count : int;
    hs_sum : int;
    hs_min : int;
    hs_max : int;
    hs_p50 : int;
    hs_p99 : int;
    hs_p999 : int;
    hs_buckets : int array;  (** aggregated over shards; length 64 *)
  }

  (* Percentile estimation with log-linear interpolation inside the bucket
     holding the target rank.  Bucket [b >= 1] covers [2^(b-1), 2^b): a
     fraction [f] of the way through its population maps to
     [2^(b-1) * 2^f], so the estimate tracks the geometric spread of the
     bucket instead of clamping to its upper edge (which over-reported by
     up to 2x on wide µs-range buckets).  The exact [min, max] seen still
     clamps the result, so degenerate one-bucket distributions stay
     faithful. *)
  let percentile_of ~buckets:bk ~count ~min_v ~max_v p =
    if count = 0 then 0
    else begin
      let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int count))) in
      let rec go b cum =
        if b >= Array.length bk then max_v
        else begin
          let here = bk.(b) in
          let cum' = cum + here in
          if cum' >= rank then begin
            if b = 0 then 0
            else begin
              let f = float_of_int (rank - cum) /. float_of_int here in
              let lower = float_of_int (1 lsl (b - 1)) in
              int_of_float (Float.round (lower *. Float.pow 2. f))
            end
          end
          else go (b + 1) cum'
        end
      in
      let v = go 0 0 in
      min max_v (max min_v v)
    end

  let summarize_hist h =
    let bk = Array.make buckets 0 in
    let count = ref 0 and sum = ref 0 and mn = ref max_int and mx = ref min_int in
    for s = 0 to shards - 1 do
      let base = s * hslot in
      for b = 0 to buckets - 1 do
        bk.(b) <- bk.(b) + h.h_cells.(base + b)
      done;
      let c = h.h_cells.(base + off_count) in
      if c > 0 then begin
        count := !count + c;
        sum := !sum + h.h_cells.(base + off_sum);
        mn := min !mn h.h_cells.(base + off_min);
        mx := max !mx h.h_cells.(base + off_max)
      end
    done;
    let count = !count in
    let mn = if count = 0 then 0 else !mn and mx = if count = 0 then 0 else !mx in
    let pct p = percentile_of ~buckets:bk ~count ~min_v:mn ~max_v:mx p in
    {
      hs_count = count;
      hs_sum = !sum;
      hs_min = mn;
      hs_max = mx;
      hs_p50 = pct 50.;
      hs_p99 = pct 99.;
      hs_p999 = pct 99.9;
      hs_buckets = bk;
    }

  (* ---- snapshot / rendering ---- *)

  type snapshot = {
    counters : (string * int) list;  (** includes probes; sorted by name *)
    gauges : (string * int) list;
    histograms : (string * hist_summary) list;
  }

  let snapshot () =
    let cs = ref [] and gs = ref [] and hs = ref [] in
    (* Evaluate probes outside the registry lock: a probe may take its own
       lock (e.g. the ring registry), and creation under that lock would
       invert the order. *)
    let probes =
      with_registry (fun () ->
          Hashtbl.fold
            (fun _ m acc ->
              match m with
              | C c -> cs := (c.c_name, value c) :: !cs; acc
              | G g -> gs := (g.g_name, gauge_value g) :: !gs; acc
              | H h -> hs := (h.h_name, summarize_hist h) :: !hs; acc
              | P p -> p :: acc)
            registry [])
    in
    List.iter (fun p -> cs := (p.p_name, p.p_fn () - p.p_offset) :: !cs) probes;
    let by_name (a, _) (b, _) = String.compare a b in
    {
      counters = List.sort by_name !cs;
      gauges = List.sort by_name !gs;
      histograms = List.sort by_name !hs;
    }

  (* Convenience for tests and assertions: current value of a counter or
     probe by name, 0 when unregistered. *)
  let counter_value name =
    let probe_fn =
      with_registry (fun () ->
          match Hashtbl.find_opt registry name with
          | Some (C c) -> Some (fun () -> value c)
          | Some (P p) -> Some (fun () -> p.p_fn () - p.p_offset)
          | _ -> None)
    in
    match probe_fn with Some f -> f () | None -> 0

  (* Zero every registered cell.  Probe-backed counters are cumulative
     process totals owned by their data structures; reset records an offset
     so they read as zero afterwards while staying monotone underneath. *)
  let reset () =
    let probes =
      with_registry (fun () ->
          Hashtbl.fold
            (fun _ m acc ->
              match m with
              | C c -> Array.fill c.c_cells 0 (Array.length c.c_cells) 0; acc
              | G g -> Array.fill g.g_cells 0 (Array.length g.g_cells) 0; acc
              | H h ->
                Array.fill h.h_cells 0 (Array.length h.h_cells) 0;
                for s = 0 to shards - 1 do
                  h.h_cells.((s * hslot) + off_min) <- max_int;
                  h.h_cells.((s * hslot) + off_max) <- min_int
                done;
                acc
              | P p -> p :: acc)
            registry [])
    in
    List.iter (fun p -> p.p_offset <- p.p_fn ()) probes

  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_json () =
    let s = snapshot () in
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\n  \"schema\": \"socksdirect-obs/1\",\n  \"counters\": {";
    List.iteri
      (fun i (n, v) ->
        Buffer.add_string b (Printf.sprintf "%s\n    \"%s\": %d" (if i = 0 then "" else ",") (json_escape n) v))
      s.counters;
    Buffer.add_string b "\n  },\n  \"gauges\": {";
    List.iteri
      (fun i (n, v) ->
        Buffer.add_string b (Printf.sprintf "%s\n    \"%s\": %d" (if i = 0 then "" else ",") (json_escape n) v))
      s.gauges;
    Buffer.add_string b "\n  },\n  \"histograms\": {";
    List.iteri
      (fun i (n, h) ->
        Buffer.add_string b
          (Printf.sprintf
             "%s\n    \"%s\": {\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"p50\": %d, \"p99\": %d, \"p999\": %d, \"buckets\": [%s]}"
             (if i = 0 then "" else ",")
             (json_escape n) h.hs_count h.hs_sum h.hs_min h.hs_max h.hs_p50 h.hs_p99 h.hs_p999
             (String.concat ", " (Array.to_list (Array.map string_of_int h.hs_buckets)))))
      s.histograms;
    Buffer.add_string b "\n  }\n}\n";
    Buffer.contents b

  let to_text () =
    let s = snapshot () in
    let b = Buffer.create 4096 in
    Buffer.add_string b "== counters ==\n";
    List.iter (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%-32s %12d\n" n v)) s.counters;
    if s.gauges <> [] then begin
      Buffer.add_string b "== gauges ==\n";
      List.iter (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%-32s %12d\n" n v)) s.gauges
    end;
    Buffer.add_string b "== histograms ==\n";
    List.iter
      (fun (n, h) ->
        Buffer.add_string b
          (Printf.sprintf "%-32s n=%d sum=%d min=%d p50=%d p99=%d p999=%d max=%d\n" n h.hs_count
             h.hs_sum h.hs_min h.hs_p50 h.hs_p99 h.hs_p999 h.hs_max))
      s.histograms;
    Buffer.contents b
end

module Trace = struct
  type tag =
    | Send
    | Recv
    | Batch
    | Token_takeover
    | Zerocopy_remap
    | Ring_full
    | Fallback
    | Credit_stall
    | Scratch_grow
    | Accept
    | Steal
    | Wake
    | Fork
    | Park
    | Policy_adapt
    | Flight_dump

  let tag_count = 16

  let tag_to_int = function
    | Send -> 0
    | Recv -> 1
    | Batch -> 2
    | Token_takeover -> 3
    | Zerocopy_remap -> 4
    | Ring_full -> 5
    | Fallback -> 6
    | Credit_stall -> 7
    | Scratch_grow -> 8
    | Accept -> 9
    | Steal -> 10
    | Wake -> 11
    | Fork -> 12
    | Park -> 13
    | Policy_adapt -> 14
    | Flight_dump -> 15

  let tag_of_int = function
    | 0 -> Send
    | 1 -> Recv
    | 2 -> Batch
    | 3 -> Token_takeover
    | 4 -> Zerocopy_remap
    | 5 -> Ring_full
    | 6 -> Fallback
    | 7 -> Credit_stall
    | 8 -> Scratch_grow
    | 9 -> Accept
    | 10 -> Steal
    | 11 -> Wake
    | 12 -> Fork
    | 13 -> Park
    | 14 -> Policy_adapt
    | 15 -> Flight_dump
    | n -> invalid_arg ("Obs.Trace.tag_of_int: " ^ string_of_int n)

  let tag_name = function
    | Send -> "Send"
    | Recv -> "Recv"
    | Batch -> "Batch"
    | Token_takeover -> "TokenTakeover"
    | Zerocopy_remap -> "ZerocopyRemap"
    | Ring_full -> "RingFull"
    | Fallback -> "Fallback"
    | Credit_stall -> "CreditStall"
    | Scratch_grow -> "ScratchGrow"
    | Accept -> "Accept"
    | Steal -> "Steal"
    | Wake -> "Wake"
    | Fork -> "Fork"
    | Park -> "Park"
    | Policy_adapt -> "PolicyAdapt"
    | Flight_dump -> "FlightDump"

  let tag_of_name n =
    let rec go i = if i >= tag_count then None else begin
        let t = tag_of_int i in
        if tag_name t = n then Some t else go (i + 1)
      end
    in
    go 0

  let on = ref true
  let set_enabled b = on := b
  let enabled () = !on

  (* The trace clock.  Default: a global tick counter, so timestamps order
     events even with no simulator attached.  The sim engine installs its
     nanosecond clock via [set_clock] (see [Engine.install_trace_clock]). *)
  let ticks = ref 0
  let default_clock () = Stdlib.incr ticks; !ticks
  let clock = ref default_clock
  let set_clock f = clock := f
  let reset_clock () = clock := default_clock

  (* Per-domain bounded ring: 2 ints per slot (timestamp, tag|arg<<5).
     Single writer per ring (the domain itself); [pos] counts all events
     ever written, so [pos - capacity] of them have been overwritten. *)
  type ring = { mutable pos : int; mutable store : int array; mutable cap : int }

  let default_capacity = 4096

  let make_ring cap = { pos = 0; store = Array.make (2 * cap) 0; cap }
  let rings = Array.init shards (fun _ -> make_ring default_capacity)

  let set_capacity cap =
    if cap < 1 then invalid_arg "Obs.Trace.set_capacity";
    Array.iter
      (fun r ->
        r.pos <- 0;
        r.cap <- cap;
        r.store <- Array.make (2 * cap) 0)
      rings

  let clear () =
    Array.iter
      (fun r ->
        r.pos <- 0;
        Array.fill r.store 0 (Array.length r.store) 0)
      rings

  (* Record [tag] with an integer argument; two stores and a cursor bump,
     no allocation.  The argument survives packing for |arg| < 2^57. *)
  let[@inline] emit_n tag arg =
    if !on then begin
      let r = Array.unsafe_get rings (shard_index ()) in
      let slot = 2 * (r.pos mod r.cap) in
      Array.unsafe_set r.store slot (!clock ());
      Array.unsafe_set r.store (slot + 1) (tag_to_int tag lor (arg lsl 5));
      r.pos <- r.pos + 1
    end

  let[@inline] emit tag = emit_n tag 0

  let dropped () =
    Array.fold_left (fun acc r -> acc + max 0 (r.pos - r.cap)) 0 rings

  type event = { ts : int; domain : int; tag : tag; arg : int }

  (* Snapshot every ring oldest-first, merge by timestamp (stable on ties),
     and clear.  Allocation is fine here: draining is the cold path. *)
  let drain () =
    let evs = ref [] in
    Array.iteri
      (fun d r ->
        let n = min r.pos r.cap in
        let first = r.pos - n in
        for i = first to r.pos - 1 do
          let slot = 2 * (i mod r.cap) in
          let packed = r.store.(slot + 1) in
          evs :=
            { ts = r.store.(slot); domain = d; tag = tag_of_int (packed land 0x1F); arg = packed asr 5 }
            :: !evs
        done;
        r.pos <- 0)
      rings;
    List.stable_sort
      (fun a b ->
        let c = Int.compare a.ts b.ts in
        if c <> 0 then c else Int.compare a.domain b.domain)
      (List.rev !evs)

  (* ---- rendering ---- *)

  let to_csv events =
    let b = Buffer.create 1024 in
    Buffer.add_string b "ts_ns,domain,event,arg\n";
    List.iter
      (fun e -> Buffer.add_string b (Printf.sprintf "%d,%d,%s,%d\n" e.ts e.domain (tag_name e.tag) e.arg))
      events;
    Buffer.contents b

  (* Chrome trace-event format (chrome://tracing, Perfetto): instant events,
     ts in microseconds with nanosecond resolution kept in the decimals. *)
  let to_chrome_json events =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b
          (Printf.sprintf
             "\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"args\":{\"v\":%d}}"
             (tag_name e.tag) e.domain (float_of_int e.ts /. 1e3) e.arg))
      events;
    Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
    Buffer.contents b

  (* ---- Chrome JSON parsing (round-trip support for tooling and tests) ----

     Parses exactly the shape [to_chrome_json] emits: a [traceEvents] array
     of flat objects with one level of [args] nesting. *)

  let parse_field_raw obj key =
    let pat = "\"" ^ key ^ "\":" in
    match
      let plen = String.length pat in
      let rec find i =
        if i + plen > String.length obj then None
        else if String.sub obj i plen = pat then Some (i + plen)
        else find (i + 1)
      in
      find 0
    with
    | None -> None
    | Some start ->
      let stop = ref start in
      let depth = ref 0 in
      let n = String.length obj in
      while
        !stop < n
        &&
        match obj.[!stop] with
        | '{' | '[' -> Stdlib.incr depth; true
        | '}' | ']' -> if !depth = 0 then false else (Stdlib.decr depth; true)
        | ',' -> !depth > 0
        | _ -> true
      do
        Stdlib.incr stop
      done;
      Some (String.trim (String.sub obj start (!stop - start)))

  let parse_string_field obj key =
    match parse_field_raw obj key with
    | Some s when String.length s >= 2 && s.[0] = '"' -> Some (String.sub s 1 (String.length s - 2))
    | _ -> None

  let parse_num_field obj key =
    match parse_field_raw obj key with
    | Some s -> float_of_string_opt s
    | None -> None

  (* Split the top-level array into balanced {...} chunks. *)
  let object_chunks s =
    let n = String.length s in
    let chunks = ref [] in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '{' then begin
        let depth = ref 0 and start = !i and stop = ref (-1) in
        let j = ref !i in
        while !stop < 0 && !j < n do
          (match s.[!j] with
          | '{' -> Stdlib.incr depth
          | '}' ->
            Stdlib.decr depth;
            if !depth = 0 then stop := !j
          | _ -> ());
          Stdlib.incr j
        done;
        if !stop >= 0 then begin
          chunks := String.sub s start (!stop - start + 1) :: !chunks;
          i := !stop + 1
        end
        else i := n
      end
      else Stdlib.incr i
    done;
    List.rev !chunks

  let parse_chrome_json s =
    let body =
      match parse_field_raw s "traceEvents" with
      | Some b -> b
      | None -> s
    in
    List.filter_map
      (fun obj ->
        match parse_string_field obj "name" with
        | None -> None
        | Some name -> (
          match tag_of_name name with
          | None -> None
          | Some tag ->
            let ts =
              match parse_num_field obj "ts" with
              | Some us -> int_of_float (Float.round (us *. 1e3))
              | None -> 0
            in
            let domain =
              match parse_num_field obj "tid" with Some d -> int_of_float d | None -> 0
            in
            let arg = match parse_num_field obj "v" with Some v -> int_of_float v | None -> 0 in
            Some { ts; domain; tag; arg }))
      (object_chunks body)
end
