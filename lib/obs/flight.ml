(* Flight recorder: the last thing the process remembers.

   A per-domain bounded ring of fixed-size span records (no allocation to
   record: five plain int stores and a cursor bump, same discipline as
   [Obs.Trace]), plus a registry of cold-path state providers — closures
   that render a data structure's current state as text (live rings,
   waiter park flags, pagepool occupancy).  On crash, deadlock or SIGQUIT
   the recorder renders everything — recent spans, every provider, and the
   full metrics snapshot — into one postmortem file.

   Recording must stay hot-path safe; everything else here (dumping,
   parsing, the watchdog) is deliberately cold and allocates freely. *)

let smask = Obs.shards - 1
let[@inline] shard_index () = (Domain.self () :> int) land smask

(* ---- record rings ------------------------------------------------------ *)

(* Record kinds.  A span record carries (seq, send_ns, pub_ns, deq_ns); a
   wake record carries (park_ns, wake_ns); a mark is a free-form point
   annotation (code, arg). *)
let kind_span = 1
let kind_wake = 2
let kind_mark = 3

let kind_name = function
  | 1 -> "span"
  | 2 -> "wake"
  | 3 -> "mark"
  | _ -> "?"

(* 5 ints per record: kind, a, b, c, d. *)
let words = 5
let default_capacity = 512

type ring = { mutable pos : int; mutable store : int array; mutable cap : int }

let make_ring cap = { pos = 0; store = Array.make (words * cap) 0; cap }
let rings = Array.init Obs.shards (fun _ -> make_ring default_capacity)

let on = ref true
let set_enabled b = on := b
let enabled () = !on

let set_capacity cap =
  if cap < 1 then invalid_arg "Obs.Flight.set_capacity";
  Array.iter
    (fun r ->
      r.pos <- 0;
      r.cap <- cap;
      r.store <- Array.make (words * cap) 0)
    rings

let clear () =
  Array.iter
    (fun r ->
      r.pos <- 0;
      Array.fill r.store 0 (Array.length r.store) 0)
    rings

let[@inline] record kind a b c d =
  if !on then begin
    let r = Array.unsafe_get rings (shard_index ()) in
    let slot = words * (r.pos mod r.cap) in
    Array.unsafe_set r.store slot kind;
    Array.unsafe_set r.store (slot + 1) a;
    Array.unsafe_set r.store (slot + 2) b;
    Array.unsafe_set r.store (slot + 3) c;
    Array.unsafe_set r.store (slot + 4) d;
    r.pos <- r.pos + 1
  end

let[@inline] span ~seq ~send ~pub ~deq = record kind_span seq send pub deq
let[@inline] wake ~parked_ns ~woke_ns = record kind_wake parked_ns woke_ns 0 0
let[@inline] mark ~code ~arg = record kind_mark code arg 0 0

type rec_ = { domain : int; kind : int; a : int; b : int; c : int; d : int }

(* Non-destructive snapshot, oldest-first per domain.  Reading a ring
   another domain is still writing is racy by design — the recorder is a
   best-effort postmortem, and a torn record is one bad line, not UB. *)
let records () =
  let out = ref [] in
  Array.iteri
    (fun d r ->
      let n = min r.pos r.cap in
      let first = r.pos - n in
      for i = r.pos - 1 downto first do
        let slot = words * (i mod r.cap) in
        out :=
          {
            domain = d;
            kind = r.store.(slot);
            a = r.store.(slot + 1);
            b = r.store.(slot + 2);
            c = r.store.(slot + 3);
            d = r.store.(slot + 4);
          }
          :: !out
      done)
    rings;
  !out

(* ---- state providers --------------------------------------------------- *)

let providers : (string * (unit -> string)) list ref = ref []
let providers_mu = Mutex.create ()

let register_state name fn =
  Mutex.lock providers_mu;
  providers := (name, fn) :: List.filter (fun (n, _) -> n <> name) !providers;
  Mutex.unlock providers_mu

(* ---- heartbeat providers ----------------------------------------------- *)

(* Named monotone counters the watchdog samples alongside its [progress]
   closure: a provider returns one (name, value) sample per watched entity
   (e.g. one per enrolled Rt_dom slot).  An entity that disappears from
   the provider's output is simply dropped — providers are expected to
   stop reporting entities whose silence is legitimate (parked, exited). *)
let hb_providers : (string * (unit -> (string * int) list)) list ref = ref []

let register_heartbeats name fn =
  Mutex.lock providers_mu;
  hb_providers := (name, fn) :: List.filter (fun (n, _) -> n <> name) !hb_providers;
  Mutex.unlock providers_mu

(* Flattened "provider/entity" samples; provider exceptions drop the
   provider for that sample round only. *)
let heartbeat_samples () =
  let ps = Mutex.lock providers_mu; let p = !hb_providers in Mutex.unlock providers_mu; p in
  List.concat_map
    (fun (pname, fn) ->
      match fn () with
      | samples -> List.map (fun (n, v) -> (pname ^ "/" ^ n, v)) samples
      | exception _ -> [])
    ps

(* ---- rendering / dumping ----------------------------------------------- *)

let dump_schema = "sds-flight/1"

let render ~reason () =
  let b = Buffer.create 8192 in
  Buffer.add_string b (dump_schema ^ "\n");
  Buffer.add_string b ("reason: " ^ reason ^ "\n");
  Buffer.add_string b "== spans ==\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "domain=%d kind=%s a=%d b=%d c=%d d=%d\n" r.domain (kind_name r.kind)
           r.a r.b r.c r.d))
    (records ());
  let ps = Mutex.lock providers_mu; let p = !providers in Mutex.unlock providers_mu; p in
  List.iter
    (fun (name, fn) ->
      Buffer.add_string b ("== state:" ^ name ^ " ==\n");
      (match fn () with
      | s -> Buffer.add_string b s
      | exception e -> Buffer.add_string b ("<provider raised: " ^ Printexc.to_string e ^ ">\n"));
      if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '\n' then
        Buffer.add_char b '\n')
    (List.rev ps);
  Buffer.add_string b "== metrics ==\n";
  Buffer.add_string b (Obs.Metrics.to_text ());
  Buffer.add_string b "== end ==\n";
  Buffer.contents b

let default_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "sds-flight-%d.dump" (Unix.getpid ()))

let dump_to_file ?path ~reason () =
  let path = match path with Some p -> p | None -> default_path () in
  let body = render ~reason () in
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  let n = List.length (records ()) in
  Obs.Trace.emit_n Obs.Trace.Flight_dump n;
  path

(* ---- dump parsing (tooling and tests) ---------------------------------- *)

type dump = {
  d_reason : string;
  d_spans : rec_ list;
  d_states : (string * string) list;
  d_metrics : string;
}

let parse_dump body =
  let lines = String.split_on_char '\n' body in
  (match lines with
  | first :: _ when first = dump_schema -> ()
  | _ -> invalid_arg "Obs.Flight.parse_dump: bad header");
  let reason = ref "" and spans = ref [] and states = ref [] in
  let metrics = Buffer.create 256 in
  let section = ref `Head in
  let cur_state = ref "" and cur_buf = Buffer.create 256 in
  let flush_state () =
    if !section = `State then states := (!cur_state, Buffer.contents cur_buf) :: !states;
    Buffer.clear cur_buf
  in
  let int_field line key =
    let pat = key ^ "=" in
    let plen = String.length pat and n = String.length line in
    let rec find i =
      if i + plen > n then None
      else if String.sub line i plen = pat then begin
        let stop = ref (i + plen) in
        while !stop < n && line.[!stop] <> ' ' do Stdlib.incr stop done;
        int_of_string_opt (String.sub line (i + plen) (!stop - i - plen))
      end
      else find (i + 1)
    in
    find 0
  in
  let str_field line key =
    let pat = key ^ "=" in
    let plen = String.length pat and n = String.length line in
    let rec find i =
      if i + plen > n then None
      else if String.sub line i plen = pat then begin
        let stop = ref (i + plen) in
        while !stop < n && line.[!stop] <> ' ' do Stdlib.incr stop done;
        Some (String.sub line (i + plen) (!stop - i - plen))
      end
      else find (i + 1)
    in
    find 0
  in
  List.iter
    (fun line ->
      if line = "== spans ==" then (flush_state (); section := `Spans)
      else if line = "== metrics ==" then (flush_state (); section := `Metrics)
      else if line = "== end ==" then (flush_state (); section := `End)
      else if String.length line > 9 && String.sub line 0 9 = "== state:" then begin
        flush_state ();
        section := `State;
        let stop = String.length line - 3 in
        cur_state := String.sub line 9 (stop - 9)
      end
      else
        match !section with
        | `Head ->
          if String.length line > 8 && String.sub line 0 8 = "reason: " then
            reason := String.sub line 8 (String.length line - 8)
        | `Spans -> (
          match (int_field line "domain", str_field line "kind") with
          | Some domain, Some kname ->
            let kind =
              match kname with "span" -> kind_span | "wake" -> kind_wake | "mark" -> kind_mark | _ -> 0
            in
            let g k = Option.value ~default:0 (int_field line k) in
            spans := { domain; kind; a = g "a"; b = g "b"; c = g "c"; d = g "d" } :: !spans
          | _ -> ())
        | `State -> Buffer.add_string cur_buf (line ^ "\n")
        | `Metrics -> Buffer.add_string metrics (line ^ "\n")
        | `End -> ())
    lines;
  {
    d_reason = !reason;
    d_spans = List.rev !spans;
    d_states = List.rev !states;
    d_metrics = Buffer.contents metrics;
  }

(* ---- crash / signal hooks ---------------------------------------------- *)

let installed = ref false

(* Wire SIGQUIT (^\) and uncaught exceptions to a dump.  Meant for the
   long-running drivers (sdsim, bench); tests trigger dumps explicitly so
   alcotest keeps its own exception reporting. *)
let install ?path () =
  if not !installed then begin
    installed := true;
    (try
       Sys.set_signal Sys.sigquit
         (Sys.Signal_handle (fun _ -> ignore (dump_to_file ?path ~reason:"sigquit" ())))
     with Invalid_argument _ | Sys_error _ -> ());
    Printexc.set_uncaught_exception_handler (fun e bt ->
        (try ignore (dump_to_file ?path ~reason:("crash: " ^ Printexc.to_string e) ())
         with _ -> ());
        Printexc.default_uncaught_exception_handler e bt)
  end

(* ---- zero-progress watchdog -------------------------------------------- *)

type watchdog = {
  mutable w_stop : bool;
  mutable w_fired : string option;
  w_mu : Mutex.t;
  mutable w_thread : Thread.t option;
}

(* Sample [progress] every [interval_s]; after [stalls] consecutive
   unchanged samples, dump with the given reason and stop watching.  The
   progress closure should be a cheap monotone observation (messages
   consumed, engine events executed).

   With [watch_heartbeats] (the default), every registered heartbeat
   sample is watched the same way: a named entity whose value stays
   unchanged for [stalls] consecutive rounds — while the entity keeps
   being reported, i.e. its silence is not legitimate — fires a dump with
   the stalled name in the reason.  Entities that stop being reported are
   forgotten (a parked or exited domain is not a stall).  Slot epochs
   reach the dump through the [rt_dom] state provider. *)
let watchdog ?path ?(reason = "deadlock") ?(watch_heartbeats = true) ~interval_s ~stalls
    ~progress () =
  let w = { w_stop = false; w_fired = None; w_mu = Mutex.create (); w_thread = None } in
  let fire r =
    let p = dump_to_file ?path ~reason:r () in
    Mutex.lock w.w_mu;
    w.w_fired <- Some p;
    Mutex.unlock w.w_mu
  in
  let body () =
    let last = ref (progress ()) in
    let stalled = ref 0 in
    (* name -> (last value, consecutive unchanged rounds) *)
    let hb : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
    let running = ref true in
    while !running do
      Thread.delay interval_s;
      if w.w_stop then running := false
      else begin
        let v = progress () in
        if v <> !last then begin
          last := v;
          stalled := 0
        end
        else begin
          Stdlib.incr stalled;
          if !stalled >= stalls then begin
            fire reason;
            running := false
          end
        end;
        if !running && watch_heartbeats then begin
          let samples = heartbeat_samples () in
          let seen = Hashtbl.create 16 in
          List.iter
            (fun (name, v) ->
              Hashtbl.replace seen name ();
              let stale =
                match Hashtbl.find_opt hb name with
                | Some (prev, n) when prev = v -> n + 1
                | _ -> 0
              in
              Hashtbl.replace hb name (v, stale);
              if stale >= stalls && !running then begin
                fire (Printf.sprintf "heartbeat-stall: %s" name);
                running := false
              end)
            samples;
          (* forget entities no longer reported (parked / exited) *)
          Hashtbl.iter
            (fun name _ -> if not (Hashtbl.mem seen name) then Hashtbl.remove hb name)
            (Hashtbl.copy hb)
        end
      end
    done
  in
  w.w_thread <- Some (Thread.create body ());
  w

let watchdog_fired w =
  Mutex.lock w.w_mu;
  let f = w.w_fired in
  Mutex.unlock w.w_mu;
  f

let watchdog_stop w =
  w.w_stop <- true;
  match w.w_thread with Some t -> Thread.join t | None -> ()
