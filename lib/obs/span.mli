(** Per-message causal latency attribution.

    Spans are never allocated: fixed stamp points (send entry, ring
    publish, visibility, dequeue, consume completion) are correlated by
    ring sequence number and fed into per-stage log2 histograms
    ([span.app], [span.queue], [span.wake], [span.parse], [span.copy],
    [span.remap], [span.e2e]).  Stamping is sampled (default 1 in 128) and
    allocation-free; the unsampled fast path is one mask and a branch. *)

val monotonic_ns : unit -> int
(** Raw CLOCK_MONOTONIC nanoseconds (noalloc C stub). *)

val now : unit -> int
(** The span clock: [monotonic_ns] unless a simulator clock is installed. *)

val set_clock : (unit -> int) -> unit
val reset_clock : unit -> unit

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_sample_shift : int -> unit
(** Sample 1 message in [2^shift] (0 ≤ shift ≤ 20; default 7). *)

val sample_shift : unit -> int

(** {1 Stage histograms} (registered at module initialisation) *)

val h_app : Obs.Metrics.histogram
val h_queue : Obs.Metrics.histogram
val h_wake : Obs.Metrics.histogram
val h_parse : Obs.Metrics.histogram
val h_copy : Obs.Metrics.histogram
val h_remap : Obs.Metrics.histogram
val h_e2e : Obs.Metrics.histogram

(** {1 Ring-path span track}

    Preallocated per-ring stamp slots indexed by [(seq >> shift)];
    producer stamps before the tail release, consumer resolves at
    dequeue.  FIFO order makes the sequence-number correlation exact. *)

type track

val make_track : unit -> track
val sampled : int -> bool

val stamp_send : track -> seq:int -> unit
(** Producer: API-entry stamp for the message about to take [seq]. *)

val stamp_pub : track -> seq:int -> unit
(** Producer: publication stamp for [seq]; call before the tail release. *)

val note_deq : track -> seq:int -> unit
(** Consumer: resolve the span for [seq] — observes [span.app],
    [span.queue], [span.e2e] and records into the flight recorder. *)

(** {1 Sim-path stage observation} *)

val observe_stages :
  seq:int ->
  send:int ->
  pub:int ->
  vis:int ->
  deq:int ->
  parsed:int ->
  done_:int ->
  remapped:bool ->
  unit
(** Observe one consumed data message's disjoint stages from its carried
    stamps (all from the same clock); negative gaps clamp to zero so the
    stage sums still reconcile with [span.e2e] exactly. *)

(** {1 Wake edges} *)

val observe_wake : parked_ns:int -> woke_ns:int -> unit
(** Park→wake edge (raw monotonic stamps): observes [span.wake] and
    records a flight-recorder wake record. *)
