(* Libra-style programmable selective data copying, layered over the §4.6
   remap path: per-socket, online, driven by the observed payload-size
   distribution and by pool pressure.

   State machine (per socket):

     threshold ∈ [page_size, max_threshold], starts at the paper's 16 KiB
     copy/remap crossover.

     observe(len) every decision; every [adapt_period] observations the
     threshold is re-derived from the recent size histogram: when at least
     half the recent payload *bytes* sit in sizes ≥ threshold/2, the
     threshold halves (pulling mid-size traffic onto the remap path);
     otherwise it doubles back toward the 16 KiB base.

     pressure: when pool occupancy crosses [high_water] at decision time,
     the threshold doubles immediately (decaying the remap path toward
     copying — under memory pressure copying is the correct behaviour);
     the periodic re-derivation relaxes it once pressure subsides.

   [Always_copy] and [Never_copy] pin the decision for the bench knob
   (--copy-policy) and for kernel-path sockets. *)

module Obs = Sds_obs.Obs
module Pagepool = Sds_vm.Pagepool

type mode = Always_copy | Never_copy | Adaptive

let mode_to_string = function
  | Always_copy -> "always"
  | Never_copy -> "never"
  | Adaptive -> "adaptive"

let mode_of_string = function
  | "always" -> Some Always_copy
  | "never" -> Some Never_copy
  | "adaptive" -> Some Adaptive
  | _ -> None

let min_threshold = Pagepool.page_size
let base_threshold = 16 * 1024
let max_threshold = 256 * 1024
let adapt_period = 256
let high_water = 0.75

(* Copy-vs-remap decision counters; the remap-size histogram is what the
   BENCH large-payload rows read back. *)
let m_remaps = Obs.Metrics.counter "pool.remaps"
let m_copies = Obs.Metrics.counter "pool.copies"
let m_pressure_backoffs = Obs.Metrics.counter "pool.pressure_backoffs"
let h_remap_bytes = Obs.Metrics.histogram "pool.remap_bytes"

(* Policy visibility: the current crossover threshold as a gauge, a counter
   of actual threshold moves, and a [Policy_adapt] trace event per move —
   so span copy/remap histograms can be correlated with policy activity. *)
let g_threshold = Obs.Metrics.gauge "copy_policy.threshold"
let m_switches = Obs.Metrics.counter "copy_policy.switches"

let note_threshold_move old_t new_t =
  if new_t <> old_t then begin
    Obs.Metrics.incr m_switches;
    Obs.Metrics.gauge_set g_threshold new_t;
    Obs.Trace.emit_n Obs.Trace.Policy_adapt new_t
  end

let buckets = 32

type t = {
  mode : mode;
  mutable threshold : int;
  recent : int array;  (* log2 payload-size histogram since the last adapt *)
  mutable observed : int;
}

let create ?(mode = Adaptive) () =
  Obs.Metrics.gauge_set g_threshold base_threshold;
  { mode; threshold = base_threshold; recent = Array.make buckets 0; observed = 0 }

let mode t = t.mode
let threshold t = t.threshold

(* Re-derive the threshold from the recent distribution (see header). *)
let adapt t =
  let cut = t.threshold / 2 in
  let total = ref 0 in
  let large = ref 0 in
  for b = 0 to buckets - 1 do
    let n = t.recent.(b) in
    if n > 0 then begin
      (* bucket b holds sizes in [2^(b-1), 2^b); approximate by 2^b bytes *)
      let bytes = n * (1 lsl b) in
      total := !total + bytes;
      if 1 lsl b >= cut then large := !large + bytes
    end
  done;
  let old_t = t.threshold in
  if !total > 0 then begin
    if 2 * !large >= !total then begin
      if t.threshold > min_threshold then t.threshold <- t.threshold / 2
    end
    else if t.threshold < base_threshold then t.threshold <- t.threshold * 2
  end;
  note_threshold_move old_t t.threshold;
  Array.fill t.recent 0 buckets 0;
  t.observed <- 0

let observe t len =
  let b = Obs.log2_floor (if len <= 0 then 1 else len) + 1 in
  let b = if b >= buckets then buckets - 1 else b in
  t.recent.(b) <- t.recent.(b) + 1;
  t.observed <- t.observed + 1;
  if t.observed >= adapt_period then adapt t

(* Decide copy (false) vs remap (true) for a [len]-byte send on a socket
   whose channel uses [pool]. *)
let decide t ~pool ~len =
  let remap =
    match t.mode with
    | Always_copy -> false
    | Never_copy -> len > 0
    | Adaptive ->
      observe t len;
      (match pool with
      | Some p when Pagepool.occupancy p > high_water ->
        if t.threshold < max_threshold then begin
          let old_t = t.threshold in
          t.threshold <- t.threshold * 2;
          Obs.Metrics.incr m_pressure_backoffs;
          note_threshold_move old_t t.threshold
        end
      | _ -> ());
      len >= t.threshold
  in
  if remap then begin
    Obs.Metrics.incr m_remaps;
    Obs.Metrics.observe h_remap_bytes len
  end
  else Obs.Metrics.incr m_copies;
  remap
