(* Token-based socket sharing (§4.1) — simulator backend.

   Each socket queue direction has one token; only the holder may operate on
   the queue, so the common case runs without any lock.  A non-holder
   requests a take-over through the monitor: it posts itself as the pending
   requester, the monitor asks the active holder to release, and the grant
   makes the requester the holder.  Deadlock-free (token is always held by a
   thread or the monitor) and starvation-free (one posted requester at a
   time; further contenders queue FIFO on the waiting list).

   The protocol state and its transitions live in [Sds_proto.Token_proto],
   shared verbatim with the real-domain backend ([Sds_rt.Rt_token]): the sim
   commits transitions with plain stores under the cooperative scheduler and
   models the monitor round-trip as a sleep; the real backend commits the
   same transitions with CAS. *)

open Sds_sim
module Obs = Sds_obs.Obs
module P = Sds_proto.Token_proto

let m_takeovers = Obs.Metrics.counter "token.takeovers"

type t = {
  mutable state : int;  (** packed holder/requester, see {!Sds_proto.Token_proto} *)
  mutable busy : bool;  (** holder is mid-operation *)
  waiters : Waitq.t;
  mutable takeovers : int;
  takeover_cost : int;
}

let create ~cost ~holder =
  { state = P.held ~holder; busy = false; waiters = Waitq.create (); takeovers = 0;
    takeover_cost = cost.Cost.takeover }

let holder t = if P.is_free t.state then None else Some (P.holder t.state)
let takeovers t = t.takeovers

(* Fast path: the calling thread already holds the token — zero cost, this
   is the case the whole design optimizes for. *)
let rec acquire t ~tid =
  match P.acquire t.state ~id:tid with
  | P.Fast -> ()
  | step ->
    (* Take-over through the monitor: one message to the monitor, monitor
       notifies the holder, holder returns the token, monitor grants. *)
    t.takeovers <- t.takeovers + 1;
    Obs.Metrics.incr m_takeovers;
    Obs.Trace.emit_n Obs.Trace.Token_takeover tid;
    Proc.sleep_ns t.takeover_cost;
    (match step with
    | P.Fast -> ()
    | P.Take s' -> t.state <- s'
    | P.Post s' ->
      t.state <- s';
      if t.busy then begin
        (* Holder mid-operation: the release path publishes the grant and
           signals the waiting list. *)
        (match Waitq.wait t.waiters with _ -> ());
        acquire t ~tid
      end
      else
        (* Holder idle: the monitor grants immediately. *)
        t.state <- P.grant t.state
    | P.Wait ->
      (* Another thread's request is already posted. *)
      if t.busy then begin
        (match Waitq.wait t.waiters with _ -> ());
        acquire t ~tid
      end
      else
        (* Idle holder, occupied request slot: the monitor reassigns,
           keeping the other request pending for the next release. *)
        t.state <- P.seize t.state ~id:tid)

(* Mark the operation window so a take-over never interleaves mid-message. *)
let with_held t ~tid f =
  acquire t ~tid;
  t.busy <- true;
  Fun.protect ~finally:(fun () ->
      t.busy <- false;
      (* Operation boundary: serve a takeover posted while we were busy —
         the same [should_release]/[grant] pair the real backend runs. *)
      if P.should_release t.state ~id:tid then t.state <- P.grant t.state;
      Waitq.signal t.waiters)
    f

(* Fork: the parent inherits the token; the child starts inactive (§4.1.2). *)
let on_fork t ~parent_tid = t.state <- P.seize t.state ~id:parent_tid
