(* Token-based socket sharing (§4.1).

   Each socket queue direction has one token; only the holder may operate on
   the queue, so the common case runs without any lock.  A non-holder
   requests a take-over through the monitor: it joins a FIFO waiting list,
   the monitor asks the active holder to release, and grants the token to
   the list head.  Deadlock-free (token is always held by a thread or the
   monitor) and starvation-free (FIFO, each thread queued at most once). *)

open Sds_sim
module Obs = Sds_obs.Obs

let m_takeovers = Obs.Metrics.counter "token.takeovers"

type t = {
  mutable holder : int option;  (** thread uid *)
  mutable busy : bool;  (** holder is mid-operation *)
  waiters : Waitq.t;
  mutable takeovers : int;
  takeover_cost : int;
}

let create ~cost ~holder =
  { holder = Some holder; busy = false; waiters = Waitq.create (); takeovers = 0; takeover_cost = cost.Cost.takeover }

let holder t = t.holder
let takeovers t = t.takeovers

(* Fast path: the calling thread already holds the token — zero cost, this
   is the case the whole design optimizes for. *)
let rec acquire t ~tid =
  match t.holder with
  | Some h when h = tid -> ()
  | _ ->
    (* Take-over through the monitor: one message to the monitor, monitor
       notifies the holder, holder returns the token, monitor grants. *)
    t.takeovers <- t.takeovers + 1;
    Obs.Metrics.incr m_takeovers;
    Obs.Trace.emit_n Obs.Trace.Token_takeover tid;
    Proc.sleep_ns t.takeover_cost;
    if t.busy then begin
      (* Holder mid-operation: queue on the waiting list; the release path
         signals the list head. *)
      (match Waitq.wait t.waiters with _ -> ());
      acquire t ~tid
    end
    else t.holder <- Some tid

(* Mark the operation window so a take-over never interleaves mid-message. *)
let with_held t ~tid f =
  acquire t ~tid;
  t.busy <- true;
  Fun.protect ~finally:(fun () ->
      t.busy <- false;
      Waitq.signal t.waiters)
    f

(* Fork: the parent inherits the token; the child starts inactive (§4.1.2). *)
let on_fork t ~parent_tid = t.holder <- Some parent_tid
