(** libsd: the user-space socket library (§3, §4).

    One {!process_ctx} per simulated process (FD remapping table, page pool,
    SHM control queue to the local monitor), one {!thread} per application
    thread (pinned to a core; threads share sockets via tokens).

    The API mirrors POSIX sockets — socket / bind / listen / accept /
    connect / send / recv / shutdown / close / epoll / poll / select — plus
    fork, exec, and container live migration.  All calls except {!init} must
    run inside a simulated proc. *)

open Sds_transport
module Kernel = Sds_kernel.Kernel
module Fd_table = Sds_kernel.Fd_table

exception Connection_refused
exception Broken_pipe

exception Connection_reset
(** The peer died abnormally (ECONNRESET): raised by [recv] — dropping any
    buffered data, reset semantics — on a socket whose peer [simulate_abort]ed;
    [send] raises [Broken_pipe] (EPIPE) instead. *)

exception Bad_fd of int
exception Would_block

type config = {
  batching : bool;  (** adaptive RDMA batching (§4.2); off in "SD (unopt)" *)
  zerocopy : bool;  (** page-remap path for >= 16 KiB (§4.3) *)
  copy_policy : Copy_policy.mode;
      (** §4.6 + Libra selective copying for the intra-host shared-pool
          path; forced to [Always_copy] when [zerocopy] is off *)
  yield_rounds : int;  (** empty polls before switching to interrupt mode *)
  ring_size : int;
}

val default_config : config

type epoll

(** An entry of the FD remapping table (§4.5.1): a user-space socket, a
    kernel FD, or an epoll instance. *)
type entry =
  | U of Sock.t
  | K of Kernel.process * int
  | Ep of epoll

type process_ctx
type thread

(* ---- process / thread lifecycle ---- *)

val init : ?config:config -> Host.t -> process_ctx
(** Load libsd into a fresh process on [Host.t]: registers with the local
    monitor and the zero-copy page-pool registry. *)

val create_thread : process_ctx -> ?core:int -> unit -> thread
val destroy_thread : thread -> unit

val fork : thread -> process_ctx
(** fork(2): socket metadata/buffers shared (in SHM), FD remapping table
    copied, tokens stay with the parent, the child re-establishes RDMA
    resources on first use, and the child pairs with the monitor via a
    secret (§4.1.2). *)

val exec : process_ctx -> unit
(** exec(2): the address space is wiped; the FD remapping table is copied to
    SHM just before and re-attached; RDMA is re-initialized on use. *)

val migrate : process_ctx -> to_host:Host.t -> unit
(** Container live migration (§4.1.3): in-flight data drains into the socket
    queues (part of the memory image), then every established connection's
    channels are re-built for the new locality (SHM <-> RDMA).  Threads are
    re-created by the caller after migration. *)

val simulate_crash : process_ctx -> unit
(** Abnormal death: peers observe hangup-then-EOF after draining what was
    already sent (§4.5.4). *)

val simulate_abort : process_ctx -> unit
(** The hard flavour of [simulate_crash] (§4.3): no drain — peers observe a
    reset ([Connection_reset] on recv, [Broken_pipe] on send), and the
    monitor releases the dead pid's port binds so a restarted server can
    bind the same port. *)

(* ---- sockets ---- *)

val socket : thread -> int
(** Pure user-space: no kernel FD, no inode; lowest-free-FD semantics. *)

val bind : thread -> int -> port:int -> unit
(** [port = 0] requests an ephemeral port from the monitor. *)

val listen : thread -> int -> unit
val accept : thread -> int -> int
val connect : thread -> int -> dst:Host.t -> port:int -> unit

val send : thread -> int -> Bytes.t -> off:int -> len:int -> int
val recv : thread -> int -> Bytes.t -> off:int -> len:int -> int

val try_recv : thread -> int -> Bytes.t -> off:int -> len:int -> int
(** Raises {!Would_block} on an O_NONBLOCK socket with nothing buffered. *)

val set_nonblocking : thread -> int -> bool -> unit
val dup : thread -> int -> int
val shutdown : thread -> int -> [ `Send | `Recv | `Both ] -> unit
val close : thread -> int -> unit

(* ---- event notification (§4.4) ---- *)

val epoll_create : thread -> int
val epoll_add : thread -> int -> int -> unit
val epoll_del : thread -> int -> int -> unit

val epoll_wait : thread -> int -> ?timeout_ns:int -> unit -> int list
(** Level-triggered readability over mixed user/kernel FDs; polls, then
    yields the core, then blocks on delivery hooks. *)

val poll : thread -> int list -> ?timeout_ns:int -> unit -> int list
val select : thread -> read:int list -> ?timeout_ns:int -> unit -> int list

(* ---- introspection ---- *)

val lookup : thread -> int -> entry
val fd_readable : thread -> int -> bool

val sock_stats : thread -> int -> int * int * int * int * int
(** [(bytes_sent, bytes_received, zerocopy_sends, zerocopy_recvs,
    token_takeovers)]. *)

val space_of : process_ctx -> Sds_vm.Space.t
val kernel_process : process_ctx -> Kernel.process
val monitor_of : thread -> Monitor.t
val thread_kernel_process : thread -> Kernel.process

val register_kernel_fd : thread -> int -> int
(** Expose a kernel FD (file, pipe end) through the remapping table. *)
