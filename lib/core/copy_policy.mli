(** Libra-style selective data copying over the §4.6 remap path.

    Each socket carries one policy instance.  In [Adaptive] mode the
    copy/remap threshold starts at the paper's 16 KiB crossover and is
    re-derived online from the recent payload-size distribution (sizes
    dominating the byte volume pull the threshold down to remap them),
    while pool-occupancy spikes double it immediately (under memory
    pressure, copying is correct).  [Always_copy]/[Never_copy] pin the
    decision — the bench's [--copy-policy] knob and the kernel path. *)

type mode = Always_copy | Never_copy | Adaptive

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

type t

val create : ?mode:mode -> unit -> t
val mode : t -> mode

val threshold : t -> int
(** Current copy/remap crossover in bytes (adaptive state). *)

val min_threshold : int
val base_threshold : int
(** 16 KiB — the paper's measured crossover; the adaptive start point. *)

val max_threshold : int
val high_water : float
(** Pool-occupancy fraction above which the threshold backs off. *)

val decide : t -> pool:Sds_vm.Pagepool.t option -> len:int -> bool
(** [true] = remap (zero-copy descriptor handoff), [false] = inline copy.
    Records the decision in the [pool.remaps]/[pool.copies] counters and
    the [pool.remap_bytes] histogram. *)
