(* User-space socket objects and their transports.

   A socket is two FIFO directions; each direction is backed by an intra-host
   SHM channel, an inter-host RDMA ring, or a kernel TCP fd (fallback to
   regular peers, §4.5.3).  Socket metadata and buffers live logically in
   shared memory so they survive fork; the [refs] count models that sharing.

   The connection state machine is Figure 6 of the paper. *)

open Sds_sim
open Sds_transport

type state =
  | Closed
  | Bound
  | Listening
  | Wait_dispatch  (** SYN sent to monitor, waiting for queue setup *)
  | Wait_server  (** queue ready, waiting for server ACK *)
  | Wait_client  (** server side: dispatched, ACK not yet sent *)
  | Established
  | Shut

let string_of_state = function
  | Closed -> "Closed"
  | Bound -> "Bound"
  | Listening -> "Listening"
  | Wait_dispatch -> "Wait-Dispatch"
  | Wait_server -> "Wait-Server"
  | Wait_client -> "Wait-Client"
  | Established -> "Established"
  | Shut -> "Shut"

(* ---- transports ----

   Both intra-host (SHM) and inter-host (RDMA) directions are the same ring
   channel in different flavours (§4.2); the tx side additionally remembers
   whether RDMA resources must be re-initialized after fork/exec. *)

(* §4.5 adaptive batch sizing: the per-direction budget bounding how many
   messages one vectored enqueue may carry.  The controller is shared with
   the real-domain backend ([Sds_proto.Batch_ctl]): it rests at
   [initial_batch], halves only on an observed ring-full, and grows past
   the resting point only under caller backlog pressure. *)
let min_batch = 4
let initial_batch = 32
let max_batch = 256

type chan_tx = {
  chan : Shm_chan.t;
  mutable needs_reinit : bool;  (** set in a forked child / after exec *)
  batch : Sds_proto.Batch_ctl.t;  (** §4.5 adaptive vectored-send bound *)
}

let chan_tx chan =
  { chan; needs_reinit = false;
    batch = Sds_proto.Batch_ctl.create ~min_b:min_batch ~initial:initial_batch ~max_b:max_batch () }

type tx_transport =
  | Tx_chan of chan_tx
  | Tx_kernel of Sds_kernel.Kernel.process * int

type rx_transport =
  | Rx_chan of Shm_chan.t
  | Rx_kernel of Sds_kernel.Kernel.process * int

(* ---- sockets ---- *)

type t = {
  sid : int;
  mutable host : Host.t;  (** mutable: container live migration (§4.1.3) *)
  cost : Cost.t;
  mutable state : state;
  mutable tx : tx_transport option;
  mutable rx : rx_transport option;
  send_token : Token.t;
  recv_token : Token.t;
  incoming : Msg.t Queue.t;  (** completed messages ready for recv *)
  rx_wq : Waitq.t;
  mutable deliver_hooks : (unit -> unit) list;  (** epoll notification *)
  mutable partial : (Bytes.t * int) option;  (** stream-reassembly remainder *)
  mutable rx_interrupt : bool;  (** receiver sleeping in interrupt mode *)
  mutable nonblocking : bool;  (** O_NONBLOCK *)
  mutable local_port : int;
  mutable peer_host : int;
  mutable peer_port : int;
  mutable refs : int;  (** shared across fork *)
  mutable peer_sock : t option;  (** simulator-side pairing, for migration *)
  mutable fin_sent : bool;
  mutable fin_seen : bool;
  mutable reset : bool;  (** peer died abnormally: ECONNRESET semantics *)
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable zerocopy_sends : int;
  mutable zerocopy_recvs : int;
  mutable requested_bufsize : int option;  (** SO_SNDBUF/SO_RCVBUF request *)
  policy : Copy_policy.t;  (** per-socket selective-copy state (§4.6 + Libra) *)
}

let counter = ref 0

let create host ~cost ~tid ?copy_mode () =
  incr counter;
  {
    sid = !counter;
    host;
    cost;
    state = Closed;
    tx = None;
    rx = None;
    send_token = Token.create ~cost ~holder:tid;
    recv_token = Token.create ~cost ~holder:tid;
    incoming = Queue.create ();
    rx_wq = Waitq.create ();
    deliver_hooks = [];
    partial = None;
    rx_interrupt = false;
    nonblocking = false;
    local_port = 0;
    peer_host = -1;
    peer_port = 0;
    refs = 1;
    peer_sock = None;
    fin_sent = false;
    fin_seen = false;
    reset = false;
    bytes_sent = 0;
    bytes_received = 0;
    zerocopy_sends = 0;
    zerocopy_recvs = 0;
    requested_bufsize = None;
    policy = Copy_policy.create ?mode:copy_mode ();
  }

let tx_exn t =
  match t.tx with Some tr -> tr | None -> invalid_arg "Sock: no tx transport"

let rx_exn t =
  match t.rx with Some tr -> tr | None -> invalid_arg "Sock: no rx transport"

(* Deliver a completed inbound message (called by the NIC sink or the SHM
   poll path). *)
let deliver t msg =
  Queue.push msg t.incoming;
  Waitq.signal t.rx_wq;
  List.iter (fun f -> f ()) t.deliver_hooks

let add_deliver_hook t f = t.deliver_hooks <- f :: t.deliver_hooks

(* Abnormal peer death (§4.5.4 hard flavour): unlike FIN, a reset drops
   buffered data and surfaces as ECONNRESET/EPIPE.  Wakes sleepers and
   epoll watchers like a delivery would, so nobody stays parked. *)
let mark_reset t =
  if not t.reset then begin
    t.reset <- true;
    t.fin_seen <- true;
    Waitq.broadcast t.rx_wq;
    List.iter (fun f -> f ()) t.deliver_hooks
  end

(* Data ready for recv without touching the transport? *)
let has_buffered t = t.partial <> None || not (Queue.is_empty t.incoming)

(* Poll the rx transport once, moving anything available into [incoming].
   Returns true if progress was made. *)
let poll_rx t =
  match t.rx with
  | Some (Rx_chan chan) ->
    (match Shm_chan.try_recv chan with
    | Some msg ->
      deliver t msg;
      true
    | None -> false)
  | Some (Rx_kernel _) | None -> not (Queue.is_empty t.incoming)

let readable t =
  t.reset || has_buffered t
  ||
  match t.rx with
  | Some (Rx_chan chan) -> Shm_chan.pending chan > 0
  | Some (Rx_kernel (proc, fd)) -> (
    match Sds_kernel.Kernel.lookup proc fd with
    | Sds_kernel.Kernel.Tcp ep ->
      (match ep.Sds_kernel.Kernel.rx with
      | Some s -> Sds_kernel.Kstream.readable_now s
      | None -> false)
    | _ -> false)
  | None -> t.fin_seen

let is_eof t = t.fin_seen && not (has_buffered t)
