(* The per-host trusted monitor daemon (§3, §4.5).

   A single simulated thread that polls control messages from every local
   libsd instance (SHM queues) and from remote monitors (an RDMA queue per
   peer host, lazily established with the raw-socket capability handshake).
   It allocates addresses and ports, enforces access control, dispatches new
   connections to per-listener-thread backlogs round-robin, serves work
   stealing, and helps set up peer-to-peer data queues.  The data plane never
   touches it. *)

open Sds_sim
open Sds_transport
module Obs = Sds_obs.Obs

(* Control-plane metrics: the monitor is off the data path, so plain sharded
   counters are free here. *)
let m_requests = Obs.Metrics.counter "monitor.requests"
let m_binds = Obs.Metrics.counter "monitor.binds"
let m_listens = Obs.Metrics.counter "monitor.listens"
let m_accepts = Obs.Metrics.counter "monitor.accepts"
let m_steals = Obs.Metrics.counter "monitor.steals"
let m_wakes = Obs.Metrics.counter "monitor.wakes"

(* Dispatch-policy metrics, shared by name with the real-domain dispatcher
   ([Sds_rt.Rt_monitor]): both backends run the same [Dispatch_core]
   decisions, so their deliveries land in the same counters. *)
let m_dispatch_rr = Obs.Metrics.counter "monitor.dispatch.rr"
let m_dispatch_steals = Obs.Metrics.counter "monitor.dispatch.steals"
let h_dispatch_backlog = Obs.Metrics.histogram "monitor.dispatch.backlog"

(* Both endpoint sockets of a connection, filled in as each side attaches;
   used to pair peers for container live migration. *)
type pairing = { mutable c_sock : Sock.t option; mutable s_sock : Sock.t option }

type syn_entry = {
  s_tx : Sock.tx_transport;  (** server's sending side *)
  s_rx : Sock.rx_transport;
  syn_client_host : int;
  syn_client_port : int;
  syn_deliver : (Msg.t -> unit) option ref;
      (** where the RDMA sink routes inbound messages once the server socket
          exists; SHM needs no routing *)
  syn_pairing : pairing;
}

type listener_thread = {
  lt_uid : int;  (** unique per accepting thread *)
  lt_backlog : syn_entry Queue.t;
  lt_wq : Waitq.t;
  lt_max : int;
}

type listener_group = {
  port : int;
  mutable threads : listener_thread list;
  mutable rr : int;
  (* Kernel-side listener kept in lock step so that regular TCP peers can
     still connect (fallback path, §4.5.3). *)
  kernel_fd : int;
  kernel_proc : Sds_kernel.Kernel.process;
}

type connect_reply =
  | Sds_queues of Sock.tx_transport * Sock.rx_transport * (Msg.t -> unit) option ref * pairing
  | Fallback of Sds_kernel.Kernel.process * int  (** kernel endpoint fd *)
  | Refused of string

type request =
  | Bind of { b_port : int; b_pid : int; b_reply : (int, string) result -> unit }
  | Listen of { l_port : int; l_thread : listener_thread; l_reply : (unit, string) result -> unit }
  | Syn of { syn_dst : Host.t; syn_port : int; syn_src_pid : int; syn_reply : connect_reply -> unit }
  | Steal of { st_port : int; st_for : int; st_reply : syn_entry option -> unit }
  | Fork_pair of { fp_secret : int; fp_reply : bool -> unit }
  | Wake of { w_fn : unit -> unit }  (** interrupt-mode wakeup relay (§4.4) *)
  | Died of { d_pid : int }
      (** abnormal process death: release every port the pid still owned so
          a restarted server can bind again (§4.3 crash cleanup) *)

type t = {
  host : Host.t;
  engine : Engine.t;
  cost : Cost.t;
  ctl : request Queue.t;
  ctl_wq : Waitq.t;
  listeners : (int, listener_group) Hashtbl.t;
  bound_ports : (int, int) Hashtbl.t;  (** port -> owning pid *)
  mutable next_ephemeral : int;
  peers : (int, peer_link) Hashtbl.t;
  mutable acl : src_host:int -> port:int -> bool;
  fork_secrets : (int, unit) Hashtbl.t;
  kernel_proc : Sds_kernel.Kernel.process;  (** owns fallback listeners *)
  mutable handled : int;
  mutable dispatched : int;
  mutable stolen : int;
  mutable proc : Proc.t option;
}

and peer_link = { mutable link_rdma : bool; mutable link_setup_done : bool }

let ext_key : t Sds_het.Hmap.key = Sds_het.Hmap.create_key ~name:"sds_monitor" ()

let log = Logs.Src.create "sds.monitor" ~doc:"SocksDirect monitor daemon"

module Log = (val Logs.src_log log : Logs.LOG)

let rec main_loop t () =
  match Queue.take_opt t.ctl with
  | None ->
    (* The monitor queue is always in polling mode (§4.2); in simulation we
       block on the waitq, which costs nothing extra. *)
    (match Waitq.wait t.ctl_wq with _ -> ());
    main_loop t ()
  | Some req ->
    Proc.sleep_ns t.cost.Cost.monitor_processing;
    Obs.Metrics.incr m_requests;
    handle t req;
    t.handled <- t.handled + 1;
    main_loop t ()

and handle t req =
  match req with
  | Bind { b_port; b_pid; b_reply } ->
    let port = if b_port = 0 then ephemeral t else b_port in
    if Hashtbl.mem t.bound_ports port then b_reply (Error "address in use")
    else begin
      Hashtbl.replace t.bound_ports port b_pid;
      Obs.Metrics.incr m_binds;
      b_reply (Ok port)
    end
  | Listen { l_port; l_thread; l_reply } ->
    let group =
      match Hashtbl.find_opt t.listeners l_port with
      | Some g -> g
      | None ->
        (* Mirror the listener in the kernel so regular TCP peers reach us. *)
        let kfd = Sds_kernel.Kernel.socket t.kernel_proc in
        (try Sds_kernel.Kernel.listen t.kernel_proc kfd ~port:l_port ()
         with Sds_kernel.Kernel.Address_in_use _ -> ());
        let g = { port = l_port; threads = []; rr = 0; kernel_fd = kfd; kernel_proc = t.kernel_proc } in
        Hashtbl.replace t.listeners l_port g;
        g
    in
    if not (List.exists (fun lt -> lt.lt_uid = l_thread.lt_uid) group.threads) then begin
      group.threads <- group.threads @ [ l_thread ];
      Log.info (fun m ->
          m "h%d: listener thread %d on port %d (%d listeners)" (Host.id t.host) l_thread.lt_uid
            l_port (List.length group.threads))
    end;
    Obs.Metrics.incr m_listens;
    l_reply (Ok ())
  | Syn { syn_dst; syn_port; syn_src_pid; syn_reply } ->
    Log.debug (fun m ->
        m "h%d: SYN from pid %d to host %d port %d" (Host.id t.host) syn_src_pid
          (Host.id syn_dst) syn_port);
    handle_syn t ~dst:syn_dst ~port:syn_port ~src_pid:syn_src_pid ~reply:syn_reply
  | Steal { st_port; st_for; st_reply } -> (
    match Hashtbl.find_opt t.listeners st_port with
    | None -> st_reply None
    | Some g ->
      (* Steal from the longest backlog of a sibling listener (§4.5.2);
         victim selection is the shared [Dispatch_core] policy. *)
      let threads = Array.of_list g.threads in
      let self =
        let found = ref (-1) in
        Array.iteri (fun i lt -> if lt.lt_uid = st_for then found := i) threads;
        !found
      in
      let victim =
        Sds_proto.Dispatch_core.steal_victim ~n:(Array.length threads)
          ~self ~length:(fun i -> Queue.length threads.(i).lt_backlog)
      in
      (match victim with
      | None -> st_reply None
      | Some i ->
        let lt = threads.(i) in
        t.stolen <- t.stolen + 1;
        Obs.Metrics.incr m_steals;
        Obs.Metrics.incr m_dispatch_steals;
        Obs.Trace.emit_n Obs.Trace.Steal st_for;
        Log.debug (fun m -> m "h%d: thread %d steals from thread %d" (Host.id t.host) st_for lt.lt_uid);
        st_reply (Queue.take_opt lt.lt_backlog)))
  | Fork_pair { fp_secret; fp_reply } ->
    if Hashtbl.mem t.fork_secrets fp_secret then begin
      Hashtbl.remove t.fork_secrets fp_secret;
      fp_reply true
    end
    else fp_reply false
  | Wake { w_fn } ->
    Obs.Metrics.incr m_wakes;
    Obs.Trace.emit Obs.Trace.Wake;
    w_fn ()
  | Died { d_pid } ->
    (* Crash cleanup (§4.3): the dead process can never Close its binds,
       so the monitor releases them — a restarted server binds the same
       port without EADDRINUSE. *)
    let stale =
      Hashtbl.fold (fun port pid acc -> if pid = d_pid then port :: acc else acc)
        t.bound_ports []
    in
    List.iter (Hashtbl.remove t.bound_ports) stale;
    Log.info (fun m ->
        m "h%d: pid %d died, released %d port(s)" (Host.id t.host) d_pid (List.length stale))

(* Dispatch a SYN to a listener thread round-robin, skipping full
   backlogs (§4.5.2); the pick is the shared [Dispatch_core] policy. *)
and dispatch t group entry =
  match group.threads with
  | [] -> Error "no listener"
  | threads ->
    let arr = Array.of_list threads in
    let n = Array.length arr in
    (match
       Sds_proto.Dispatch_core.pick ~n ~rr:group.rr
         ~length:(fun i -> Queue.length arr.(i).lt_backlog)
         ~capacity:(fun i -> arr.(i).lt_max)
     with
    | None -> Error "backlog full"
    | Some i ->
      let lt = arr.(i) in
      group.rr <- (i + 1) mod n;
      Obs.Metrics.observe h_dispatch_backlog (Queue.length lt.lt_backlog);
      Queue.push entry lt.lt_backlog;
      t.dispatched <- t.dispatched + 1;
      Obs.Metrics.incr m_accepts;
      Obs.Metrics.incr m_dispatch_rr;
      Obs.Trace.emit_n Obs.Trace.Accept group.port;
      Waitq.signal lt.lt_wq;
      Ok ())

and ephemeral t =
  let rec next () =
    let p = t.next_ephemeral in
    t.next_ephemeral <- (if p >= 60999 then 32768 else p + 1);
    if Hashtbl.mem t.bound_ports p then next () else p
  in
  next ()

(* Intra-host: one SHM ring channel per direction, shared by both
   endpoints. *)
and intra_host_queues t =
  let c2s = Shm_chan.create t.engine ~cost:t.cost () in
  let s2c = Shm_chan.create t.engine ~cost:t.cost () in
  let pairing = { c_sock = None; s_sock = None } in
  let entry =
    { s_tx = Sock.Tx_chan (Sock.chan_tx s2c); s_rx = Sock.Rx_chan c2s;
      syn_client_host = Host.id t.host; syn_client_port = 0; syn_deliver = ref None;
      syn_pairing = pairing }
  in
  let client =
    Sds_queues (Sock.Tx_chan (Sock.chan_tx c2s), Sock.Rx_chan s2c, ref None, pairing)
  in
  (entry, client)

(* Inter-host: an RDMA QP pair carries one ring channel per direction — the
   §4.2 "two copies of the ring buffer" synchronized by one-sided writes.
   Writes fired on qp_c commit into the server-side channel and vice
   versa. *)
and inter_host_queues t (remote : t) =
  let nic_c = Host.nic t.host and nic_s = Host.nic remote.host in
  let cq_c = Nic.create_cq nic_c and cq_s = Nic.create_cq nic_s in
  let qp_c, qp_s = Nic.connect_qps nic_c nic_s ~scq_a:cq_c ~rcq_a:cq_c ~scq_b:cq_s ~rcq_b:cq_s in
  Nic.set_batching qp_c true;
  Nic.set_batching qp_s true;
  (* Channel c2s: client enqueues, synced through qp_c; the RDMA sink of
     qp_c's peer side commits at the server.  create_rdma installs it. *)
  let c2s = Shm_chan.create_rdma t.engine ~cost:t.cost ~qp:qp_c () in
  let s2c = Shm_chan.create_rdma remote.engine ~cost:remote.cost ~qp:qp_s () in
  let pairing = { c_sock = None; s_sock = None } in
  let entry =
    { s_tx = Sock.Tx_chan (Sock.chan_tx s2c); s_rx = Sock.Rx_chan c2s;
      syn_client_host = Host.id t.host; syn_client_port = 0; syn_deliver = ref None;
      syn_pairing = pairing }
  in
  let client =
    Sds_queues (Sock.Tx_chan (Sock.chan_tx c2s), Sock.Rx_chan s2c, ref None, pairing)
  in
  (entry, client)

and handle_syn t ~dst ~port ~src_pid ~reply =
  ignore src_pid;
  if Host.same_host t.host dst then begin
    match Hashtbl.find_opt t.listeners port with
    | None -> reply (Refused "connection refused")
    | Some group ->
      if not (t.acl ~src_host:(Host.id t.host) ~port) then reply (Refused "access denied")
      else begin
        let entry, client = intra_host_queues t in
        match dispatch t group entry with
        | Ok () -> reply client
        | Error e -> reply (Refused e)
      end
  end
  else begin
    (* Remote host: capability detection, then monitor-to-monitor SYN. *)
    match find_ext_monitor dst with
    | Some remote when dst.Host.sds_capable && dst.Host.rdma_capable && t.host.Host.rdma_capable ->
      ensure_link t remote;
      let one_way = t.cost.Cost.doorbell_dma_sd + t.cost.Cost.nic_wire in
      Engine.schedule t.engine ~delay:one_way (fun () ->
          post remote
            (Wake
               {
                 w_fn =
                   (fun () ->
                     match Hashtbl.find_opt remote.listeners port with
                     | None -> Engine.schedule remote.engine ~delay:one_way (fun () -> reply (Refused "connection refused"))
                     | Some group ->
                       if not (remote.acl ~src_host:(Host.id t.host) ~port) then
                         Engine.schedule remote.engine ~delay:one_way (fun () -> reply (Refused "access denied"))
                       else begin
                         let entry, client = inter_host_queues t remote in
                         match dispatch remote group entry with
                         | Ok () -> Engine.schedule remote.engine ~delay:one_way (fun () -> reply client)
                         | Error e ->
                           Engine.schedule remote.engine ~delay:one_way (fun () -> reply (Refused e))
                       end);
               }))
    | _ ->
      (* Peer runs no SocksDirect monitor (or no RDMA): fall back to a
         kernel TCP connection, handed to libsd as a kernel FD. *)
      let kproc = t.kernel_proc in
      let kfd = Sds_kernel.Kernel.socket kproc in
      (try
         Sds_kernel.Kernel.connect kproc kfd ~dst ~port;
         reply (Fallback (kproc, kfd))
       with Sds_kernel.Kernel.Connection_refused -> reply (Refused "connection refused"))
  end

(* The first contact with a peer host costs the raw-socket handshake with
   the special TCP option plus the monitor-to-monitor QP (§4.5.3). *)
and ensure_link t remote =
  let link =
    match Hashtbl.find_opt t.peers (Host.id remote.host) with
    | Some l -> l
    | None ->
      let l = { link_rdma = true; link_setup_done = false } in
      Hashtbl.replace t.peers (Host.id remote.host) l;
      l
  in
  if not (l_done link) then begin
    link.link_setup_done <- true;
    Log.info (fun m ->
        m "h%d: first contact with h%d - raw-socket capability handshake + monitor QP"
          (Host.id t.host) (Host.id remote.host));
    Proc.sleep_ns (t.cost.Cost.tcp_handshake + t.cost.Cost.rdma_qp_create)
  end

and l_done l = l.link_setup_done

and post t req =
  Queue.push req t.ctl;
  Waitq.signal t.ctl_wq

and find_ext_monitor host : t option = Host.find_ext host ext_key

let request t req = post t req

(* Synchronous request helper for calling procs: posts and blocks until the
   reply closure fires.  The one-way control message costs one SHM hop. *)
let rpc t make_req =
  let box = ref None in
  let wq = Waitq.create () in
  Proc.sleep_ns t.cost.Cost.shm_msg_overhead;
  post t
    (make_req (fun v ->
         box := Some v;
         Waitq.signal wq));
  let rec await () =
    match !box with
    | Some v -> v
    | None ->
      (match Waitq.wait wq with _ -> ());
      await ()
  in
  await ()

let create host =
  let kernel = Sds_kernel.Kernel.for_host host in
  let t =
    {
      host;
      engine = host.Host.engine;
      cost = host.Host.cost;
      ctl = Queue.create ();
      ctl_wq = Waitq.create ();
      listeners = Hashtbl.create 16;
      bound_ports = Hashtbl.create 16;
      next_ephemeral = 32768;
      peers = Hashtbl.create 4;
      acl = (fun ~src_host:_ ~port:_ -> true);
      fork_secrets = Hashtbl.create 4;
      kernel_proc = Sds_kernel.Kernel.spawn_process kernel ();
      handled = 0;
      dispatched = 0;
      stolen = 0;
      proc = None;
    }
  in
  let p = Proc.spawn host.Host.engine ~name:(Fmt.str "monitor-h%d" (Host.id host)) (main_loop t) in
  t.proc <- Some p;
  t

(* The monitor for a host, started on first use. *)
let for_host host = Host.get_ext_or host ext_key ~create

let set_acl t f = t.acl <- f
let handled t = t.handled
let dispatched t = t.dispatched
let stolen t = t.stolen
let register_fork_secret t secret = Hashtbl.replace t.fork_secrets secret ()
let host t = t.host
let cost t = t.cost
