(** The per-host trusted monitor daemon (§3, §4.5).

    A single simulated thread polling control messages from every local
    libsd instance and from remote monitors.  It allocates ports, enforces
    access control, dispatches new connections round-robin to per-listener-
    thread backlogs, serves work stealing, pairs forked children by secret,
    and sets up peer-to-peer data queues.  The data plane never touches it. *)

open Sds_sim
open Sds_transport

(** Both endpoint sockets of a connection, filled in as each side attaches;
    pairs peers for container live migration. *)
type pairing = { mutable c_sock : Sock.t option; mutable s_sock : Sock.t option }

type syn_entry = {
  s_tx : Sock.tx_transport;  (** server's sending side *)
  s_rx : Sock.rx_transport;
  syn_client_host : int;
  syn_client_port : int;
  syn_deliver : (Msg.t -> unit) option ref;
      (** where the RDMA sink routes once the server socket exists *)
  syn_pairing : pairing;
}

type listener_thread = {
  lt_uid : int;  (** unique per accepting thread *)
  lt_backlog : syn_entry Queue.t;
  lt_wq : Waitq.t;
  lt_max : int;
}

type connect_reply =
  | Sds_queues of Sock.tx_transport * Sock.rx_transport * (Msg.t -> unit) option ref * pairing
  | Fallback of Sds_kernel.Kernel.process * int  (** kernel endpoint fd *)
  | Refused of string

type request =
  | Bind of { b_port : int; b_pid : int; b_reply : (int, string) result -> unit }
  | Listen of { l_port : int; l_thread : listener_thread; l_reply : (unit, string) result -> unit }
  | Syn of { syn_dst : Host.t; syn_port : int; syn_src_pid : int; syn_reply : connect_reply -> unit }
  | Steal of { st_port : int; st_for : int; st_reply : syn_entry option -> unit }
  | Fork_pair of { fp_secret : int; fp_reply : bool -> unit }
  | Wake of { w_fn : unit -> unit }  (** interrupt-mode wakeup relay (§4.4) *)
  | Died of { d_pid : int }
      (** abnormal process death: release every port the pid still owned so
          a restarted server can bind again (§4.3 crash cleanup) *)

type t

val for_host : Host.t -> t
(** The monitor for a host, started (with its polling proc) on first use. *)

val request : t -> request -> unit
(** Post a control message (asynchronous). *)

val rpc : t -> (('a -> unit) -> request) -> 'a
(** Post and block the calling proc until the reply closure fires; charges
    one SHM control-message hop. *)

val set_acl : t -> (src_host:int -> port:int -> bool) -> unit
(** Access-control policy consulted on every SYN. *)

val register_fork_secret : t -> int -> unit

val handled : t -> int
val dispatched : t -> int
val stolen : t -> int
val host : t -> Host.t
val cost : t -> Cost.t
