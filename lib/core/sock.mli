(** User-space socket objects and their transports.

    A socket is two FIFO directions, each backed by an intra-host SHM
    channel, an inter-host RDMA ring, or a kernel TCP fd (fallback to
    regular peers).  Metadata and buffers live logically in shared memory so
    they survive fork ([refs]).  The connection state machine is the
    paper's Figure 6.

    The record types are concrete: the monitor builds transports, libsd
    drives the data path, and tests inspect state. *)

open Sds_sim
open Sds_transport

type state =
  | Closed
  | Bound
  | Listening
  | Wait_dispatch  (** SYN sent to monitor, waiting for queue setup *)
  | Wait_server  (** queue ready, waiting for server ACK *)
  | Wait_client  (** server side: dispatched, ACK not yet sent *)
  | Established
  | Shut

val string_of_state : state -> string

(** §4.5 adaptive batch sizing bounds for [chan_tx.batch]. *)

val min_batch : int
val initial_batch : int
val max_batch : int

(** Both directions are the same ring channel in its SHM or RDMA flavour
    (§4.2); the tx side also tracks fork/exec RDMA re-initialization and
    the adaptive vectored-send budget. *)
type chan_tx = {
  chan : Shm_chan.t;
  mutable needs_reinit : bool;  (** set in a forked child / after exec *)
  batch : Sds_proto.Batch_ctl.t;
      (** §4.5 shared controller: rests at [initial_batch], halves only on
          observed ring-full, grows past the resting point only under
          backlog pressure *)
}

val chan_tx : Shm_chan.t -> chan_tx

type tx_transport =
  | Tx_chan of chan_tx
  | Tx_kernel of Sds_kernel.Kernel.process * int

type rx_transport =
  | Rx_chan of Shm_chan.t
  | Rx_kernel of Sds_kernel.Kernel.process * int

type t = {
  sid : int;
  mutable host : Host.t;  (** mutable: container live migration (§4.1.3) *)
  cost : Cost.t;
  mutable state : state;
  mutable tx : tx_transport option;
  mutable rx : rx_transport option;
  send_token : Token.t;
  recv_token : Token.t;
  incoming : Msg.t Queue.t;  (** completed messages ready for recv *)
  rx_wq : Waitq.t;
  mutable deliver_hooks : (unit -> unit) list;
  mutable partial : (Bytes.t * int) option;  (** stream-reassembly remainder *)
  mutable rx_interrupt : bool;
  mutable nonblocking : bool;  (** O_NONBLOCK *)
  mutable local_port : int;
  mutable peer_host : int;
  mutable peer_port : int;
  mutable refs : int;  (** shared across fork *)
  mutable peer_sock : t option;  (** simulator-side pairing, for migration *)
  mutable fin_sent : bool;
  mutable fin_seen : bool;
  mutable reset : bool;  (** peer died abnormally: ECONNRESET semantics *)
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable zerocopy_sends : int;
  mutable zerocopy_recvs : int;
  mutable requested_bufsize : int option;  (** SO_SNDBUF/SO_RCVBUF request *)
  policy : Copy_policy.t;  (** per-socket selective-copy state (§4.6 + Libra) *)
}

val create : Host.t -> cost:Cost.t -> tid:int -> ?copy_mode:Copy_policy.mode -> unit -> t

val tx_exn : t -> tx_transport
val rx_exn : t -> rx_transport

val deliver : t -> Msg.t -> unit
(** Commit a completed inbound message (NIC sink / SHM poll path). *)

val add_deliver_hook : t -> (unit -> unit) -> unit

val mark_reset : t -> unit
(** Abnormal peer death: sets [reset] (ECONNRESET semantics — buffered
    data is dropped by the libsd layer), wakes [rx_wq] sleepers and epoll
    watchers.  Idempotent. *)

val has_buffered : t -> bool

val poll_rx : t -> bool
(** Poll the rx transport once, moving anything available into [incoming];
    true if progress was made. *)

val readable : t -> bool
val is_eof : t -> bool
