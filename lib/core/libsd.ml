(* libsd: the user-space socket library (§3, §4).

   One [process_ctx] per simulated process, holding the FD remapping table
   (user-space sockets vs kernel FDs), the page pool for zero copy, and the
   SHM control queue to the local monitor.  One [thread] per simulated
   application thread, pinned to a core; threads share sockets through the
   token mechanism.

   The API mirrors POSIX sockets: socket / bind / listen / accept / connect
   / send / recv / shutdown / close / epoll, plus fork and exec. *)

open Sds_sim
open Sds_transport
module Kernel = Sds_kernel.Kernel
module Fd_table = Sds_kernel.Fd_table

let log = Logs.Src.create "sds.libsd" ~doc:"SocksDirect user-space library"

module Log = (val Logs.src_log log : Logs.LOG)
module Obs = Sds_obs.Obs

(* Socket-API metrics: the application's view of the stack. *)
let m_sockets = Obs.Metrics.counter "libsd.sockets"
let m_connects = Obs.Metrics.counter "libsd.connects"
let m_fallbacks = Obs.Metrics.counter "libsd.fallbacks"
let m_accepts = Obs.Metrics.counter "libsd.accepts"
let m_sends = Obs.Metrics.counter "libsd.sends"
let m_send_bytes = Obs.Metrics.counter "libsd.send_bytes"
let m_recvs = Obs.Metrics.counter "libsd.recvs"
let m_recv_bytes = Obs.Metrics.counter "libsd.recv_bytes"
let m_zerocopy_sends = Obs.Metrics.counter "libsd.zerocopy_sends"
let m_zerocopy_recvs = Obs.Metrics.counter "libsd.zerocopy_recvs"
let m_pool_fallbacks = Obs.Metrics.counter "libsd.pool_fallbacks"
let m_forks = Obs.Metrics.counter "libsd.forks"
let m_epoll_waits = Obs.Metrics.counter "libsd.epoll_waits"
let h_send_size = Obs.Metrics.histogram "libsd.send_size"

exception Connection_refused
exception Broken_pipe
exception Connection_reset
exception Bad_fd of int

type config = {
  batching : bool;  (** adaptive RDMA batching (§4.2); off in "SD (unopt)" *)
  zerocopy : bool;  (** page-remap path for >= 16 KiB (§4.3) *)
  copy_policy : Copy_policy.mode;
      (** Libra-style selective copying on the intra-host descriptor path
          (§4.6); forced to [Always_copy] when [zerocopy] is off *)
  yield_rounds : int;  (** empty polls before switching to interrupt mode *)
  ring_size : int;
}

let default_config =
  { batching = true; zerocopy = true; copy_policy = Copy_policy.Adaptive;
    yield_rounds = 256; ring_size = 64 * 1024 }

type entry =
  | U of Sock.t  (** user-space socket *)
  | K of Kernel.process * int  (** kernel FD (fallback socket, file, ...) *)
  | Ep of epoll

and epoll = {
  ep_watched : (int, unit) Hashtbl.t;  (** app fds *)
  ep_wq : Waitq.t;
  mutable ep_hooked : (int, unit) Hashtbl.t;  (** fds whose hooks are installed *)
}

type process_ctx = {
  uid : int;  (** globally unique process id *)
  mutable host : Host.t;  (** mutable: container live migration *)
  engine : Engine.t;
  cost : Cost.t;
  kproc : Kernel.process;
  mutable monitor : Monitor.t;
  config : config;
  mutable fds : entry Fd_table.t;
  space : Sds_vm.Space.t;
  mutable threads : int;  (** live thread count *)
  mutable listener_regs : (int * int) list;  (** (port, lt_uid) pairs registered *)
  (* The per-process epoll thread (§4.4 challenge 1): one fiber owns a
     kernel epoll over every watched kernel FD and fans events out to the
     user-space epoll instances. *)
  mutable epoll_thread : epoll_thread option;
}

and epoll_thread = {
  et_kepfd : int;  (** the kernel epoll instance the thread polls *)
  et_watchers : (int, Waitq.t list ref) Hashtbl.t;  (** kernel fd -> user epoll wqs *)
  et_rearm : Waitq.t;  (** poked by new kernel arrivals *)
}

type thread = {
  tid : int;  (** globally unique thread id, used as token holder identity *)
  ctx : process_ctx;
  cpu : Cpu.t;
  listeners : (int, Monitor.listener_thread) Hashtbl.t;  (** port -> my backlog *)
}

let uid_counter = ref 0
let tid_counter = ref 0

let init ?(config = default_config) host =
  incr uid_counter;
  let kernel = Kernel.for_host host in
  let monitor = Monitor.for_host host in
  let ctx =
    {
      uid = !uid_counter;
      host;
      engine = host.Host.engine;
      cost = host.Host.cost;
      kproc = Kernel.spawn_process kernel ();
      monitor;
      config;
      fds = Fd_table.create ();
      space = Sds_vm.Space.create ~pid:!uid_counter ~pool_capacity:4096;
      threads = 0;
      listener_regs = [];
      epoll_thread = None;
    }
  in
  Zerocopy.register_pool ~uid:ctx.uid (Sds_vm.Space.pool ctx.space);
  Log.info (fun m -> m "libsd loaded into process %d on host %d" ctx.uid (Host.id host));
  ctx

let create_thread ctx ?(core = 0) () =
  incr tid_counter;
  ctx.threads <- ctx.threads + 1;
  let cpu = Host.core ctx.host core in
  Cpu.enter cpu;
  (* If the calling proc exits while holding the core baton, pass it on so
     co-resident pollers keep rotating. *)
  (try
     let p = Proc.self () in
     Proc.on_exit p (fun () -> Cpu.release_for cpu ~pid:(Proc.id p))
   with Effect.Unhandled _ -> ());
  { tid = !tid_counter; ctx; cpu; listeners = Hashtbl.create 4 }

let destroy_thread th =
  th.ctx.threads <- th.ctx.threads - 1;
  Cpu.leave th.cpu

let lookup th fd =
  match Fd_table.find th.ctx.fds fd with
  | Some e -> e
  | None -> raise (Bad_fd fd)

let sock_exn th fd =
  match lookup th fd with
  | U s -> s
  | K _ | Ep _ -> invalid_arg "libsd: not a user-space socket"

(* The per-socket selective-copy mode a new socket starts with. *)
let effective_copy_mode ctx =
  if ctx.config.zerocopy then ctx.config.copy_policy else Copy_policy.Always_copy

(* ---- socket / bind / listen ---- *)

(* socket(): pure user-space — no kernel FD, no inode (§4.5.1). *)
let socket th =
  Proc.sleep_ns th.ctx.cost.Cost.c_shim;
  Obs.Metrics.incr m_sockets;
  Fd_table.alloc th.ctx.fds (U (Sock.create th.ctx.host ~cost:th.ctx.cost ~tid:th.tid ~copy_mode:(effective_copy_mode th.ctx) ()))

let bind th fd ~port =
  let s = sock_exn th fd in
  if s.Sock.state <> Sock.Closed then invalid_arg "libsd.bind: bad state";
  match Monitor.rpc th.ctx.monitor (fun reply -> Monitor.Bind { b_port = port; b_pid = th.ctx.uid; b_reply = reply }) with
  | Ok port ->
    s.Sock.local_port <- port;
    s.Sock.state <- Sock.Bound
  | Error e -> invalid_arg ("libsd.bind: " ^ e)

(* Register this thread as a listener for [port] with its own backlog. *)
let register_listener th ~port =
  match Hashtbl.find_opt th.listeners port with
  | Some lt -> lt
  | None ->
    let lt =
      { Monitor.lt_uid = th.tid; lt_backlog = Queue.create (); lt_wq = Waitq.create (); lt_max = 128 }
    in
    (match Monitor.rpc th.ctx.monitor (fun reply -> Monitor.Listen { l_port = port; l_thread = lt; l_reply = reply }) with
    | Ok () -> ()
    | Error e -> invalid_arg ("libsd.listen: " ^ e));
    Hashtbl.replace th.listeners port lt;
    th.ctx.listener_regs <- (port, th.tid) :: th.ctx.listener_regs;
    lt

let listen th fd =
  let s = sock_exn th fd in
  (match s.Sock.state with
  | Sock.Bound -> ()
  | _ -> invalid_arg "libsd.listen: socket not bound");
  ignore (register_listener th ~port:s.Sock.local_port);
  s.Sock.state <- Sock.Listening

(* ---- data path helpers ---- *)

(* Per-via preamble before touching a channel transport: forked children
   re-establish QPs before first use (§4.1.2), and unbatched configurations
   pay one doorbell MMIO per message. *)
let tx_prework th (tx : Sock.chan_tx) =
  match Shm_chan.via tx.Sock.chan with
  | Shm_chan.Shm -> ()
  | Shm_chan.Rdma qp ->
    if tx.Sock.needs_reinit then begin
      Proc.sleep_ns th.ctx.cost.Cost.rdma_qp_create;
      tx.Sock.needs_reinit <- false
    end;
    if not th.ctx.config.batching then begin
      (* Unbatched: one doorbell MMIO per message on the CPU, one WQE per
         message on the NIC. *)
      Nic.set_batching qp false;
      Proc.sleep_ns 100
    end

(* Send one message over the socket's tx transport, blocking on the ring's
   credit flow control.  The per-message CPU cost lives in the channel. *)
let rec send_msg th (s : Sock.t) msg =
  match Sock.tx_exn s with
  | Sock.Tx_chan tx -> (
    tx_prework th tx;
    match Shm_chan.try_send tx.Sock.chan msg with
    | Shm_chan.Sent -> ()
    | Shm_chan.Full ->
      (match Waitq.wait (Shm_chan.tx_waitq tx.Sock.chan) with _ -> ());
      send_msg th s msg)
  | Sock.Tx_kernel (kproc, kfd) ->
    let b = Msg.to_bytes msg in
    ignore (Kernel.send kproc kfd b ~off:0 ~len:(Bytes.length b))

(* First [n] elements of [l] (all of [l] when shorter), plus the rest. *)
let split_budget n l =
  let rec go acc k rest =
    match rest with
    | [] -> (List.rev acc, [])
    | _ when k = 0 -> (List.rev acc, rest)
    | x :: tl -> go (x :: acc) (k - 1) tl
  in
  go [] n l

(* Send a run of messages, using the channel's vectored enqueue so a
   multi-chunk send publishes the ring tail once per batch instead of once
   per message; blocks on credit flow control between batches.

   §4.5 adaptive batch sizing: each vectored enqueue is bounded by the tx
   direction's [Sds_proto.Batch_ctl] budget, shared with the real-domain
   backend.  The budget rests at [Sock.initial_batch], halves only on an
   observed ring-full (zero acceptance), and grows toward [Sock.max_batch]
   only while an overflow backlog signals pressure. *)
let rec send_msgs th (s : Sock.t) msgs =
  match msgs with
  | [] -> ()
  | _ -> (
    match Sock.tx_exn s with
    | Sock.Tx_chan tx ->
      tx_prework th tx;
      let batch, overflow = split_budget (Sds_proto.Batch_ctl.budget tx.Sock.batch) msgs in
      let n = Shm_chan.try_send_batch tx.Sock.chan batch in
      let attempted = List.length batch in
      Sds_proto.Batch_ctl.observe tx.Sock.batch ~sent:n ~attempted
        ~pressure:(match overflow with [] -> false | _ :: _ -> true);
      if n = attempted then begin
        match overflow with
        | [] -> ()
        | _ -> send_msgs th s overflow
      end
      else begin
        let rest = List.filteri (fun i _ -> i >= n) msgs in
        (* Park only when an attempt made no progress at all.  A partial
           acceptance yields sim time (per-message bookkeeping), so the
           receiver's credit-return broadcast may already have fired —
           parking then would lose the wakeup.  Retrying is the credit
           re-check; a zero-progress attempt has no yield point between
           the check and the wait, so the broadcast cannot be missed. *)
        if n = 0 then ignore (Waitq.wait (Shm_chan.tx_waitq tx.Sock.chan));
        send_msgs th s rest
      end
    | Sock.Tx_kernel _ -> List.iter (fun m -> send_msg th s m) msgs)

(* Blocking wait for the next inbound message: poll, yield-rotate on the
   core, then drop to interrupt mode (§4.4).  On exit the core baton is
   released: a thread that stops polling (to run application code) must not
   stall the rotation for co-located pollers. *)
let rec next_msg th (s : Sock.t) =
  let r = next_msg_inner th s in
  Cpu.release th.cpu;
  r

and next_msg_inner th (s : Sock.t) =
  if not (Queue.is_empty s.Sock.incoming) then Some (Queue.pop s.Sock.incoming)
  else if s.Sock.fin_seen then
    (* Drain anything still sitting in the transport before reporting EOF:
       the ring has a copy on both sides (§4.5.4). *)
    if Sock.poll_rx s && not (Queue.is_empty s.Sock.incoming) then
      Some (Queue.pop s.Sock.incoming)
    else None
  else begin
    (* The polling budget runs through the shared §4.4 state machine
       ([Sds_notify.Policy]) — non-adaptive here, so the budget is exactly
       [yield_rounds] empty polls, as the paper's cost model fixes it. *)
    let pol =
      Sds_notify.Policy.create ~adaptive:false ~backoff_rounds:0
        ~budget:th.ctx.config.yield_rounds ()
    in
    Sds_notify.Policy.begin_wait pol;
    let rec poll_phase () =
      if Sock.poll_rx s && not (Queue.is_empty s.Sock.incoming) then begin
        Sds_notify.Policy.on_success pol;
        Some (Queue.pop s.Sock.incoming)
      end
      else if not (Queue.is_empty s.Sock.incoming) then begin
        Sds_notify.Policy.on_success pol;
        Some (Queue.pop s.Sock.incoming)
      end
      else if s.Sock.fin_seen then None
      else begin
        let u = Sds_notify.Policy.poll pol in
        if u > 0 then begin
          for _ = 1 to u do
            Cpu.yield_turn th.cpu
          done;
          poll_phase ()
        end
        else begin
          (* Interrupt mode: tell the sender side to wake us via the
             monitor.  [Policy.poll] has already flipped [pol] to
             [Interrupt]; [enter_interrupt] publishes the same switch on
             the channel's own policy, which the sender reads. *)
          Sds_notify.Policy.on_park pol;
          enter_interrupt th s;
          (match Waitq.wait s.Sock.rx_wq with _ -> ());
          Sds_notify.Policy.on_wake pol;
          leave_interrupt th s;
          (* The wakeup itself costs a process wakeup (Table 2). *)
          Proc.sleep_ns th.ctx.cost.Cost.process_wakeup;
          next_msg th s
        end
      end
    in
    poll_phase ()
  end

and enter_interrupt th (s : Sock.t) =
  s.Sock.rx_interrupt <- true;
  Cpu.release th.cpu;
  match s.Sock.rx with
  | Some (Sock.Rx_chan chan) ->
    Shm_chan.set_mode chan Shm_chan.Interrupt;
    let monitor = th.ctx.monitor in
    Shm_chan.set_interrupt_hook chan (fun c ->
        (* Sender noticed interrupt mode: it pings the monitor, which wakes
           the receiver. *)
        Monitor.request monitor
          (Monitor.Wake
             {
               w_fn =
                 (fun () ->
                   Shm_chan.set_mode c Shm_chan.Polling;
                   Waitq.signal s.Sock.rx_wq);
             }))
  | _ -> ()

and leave_interrupt _th (s : Sock.t) =
  s.Sock.rx_interrupt <- false;
  match s.Sock.rx with
  | Some (Sock.Rx_chan chan) -> Shm_chan.set_mode chan Shm_chan.Polling
  | _ -> ()

(* Consume control messages; returns true if [msg] was control. *)
let handle_control (s : Sock.t) msg =
  match msg.Msg.kind with
  | Msg.Control "FIN" ->
    s.Sock.fin_seen <- true;
    Waitq.signal s.Sock.rx_wq;
    true
  | Msg.Control _ -> true
  | Msg.Data -> false

(* ---- connect / accept (Figure 6) ---- *)

let link_pairing (pairing : Monitor.pairing) =
  match (pairing.Monitor.c_sock, pairing.Monitor.s_sock) with
  | Some c, Some srv ->
    c.Sock.peer_sock <- Some srv;
    srv.Sock.peer_sock <- Some c
  | _ -> ()

let attach_client th fd (s : Sock.t) reply =
  match reply with
  | Monitor.Sds_queues (tx, rx, deliver_ref, pairing) ->
    s.Sock.tx <- Some tx;
    s.Sock.rx <- Some rx;
    deliver_ref := Some (Sock.deliver s);
    pairing.Monitor.c_sock <- Some s;
    link_pairing pairing;
    s.Sock.state <- Sock.Wait_server;
    (* Wait for the server's ACK on the new queue. *)
    let rec await () =
      match next_msg th s with
      | None -> raise Connection_refused
      | Some msg -> (
        match msg.Msg.kind with
        | Msg.Control "ACK" -> ()
        | Msg.Control "FIN" ->
          s.Sock.fin_seen <- true;
          raise Connection_refused
        | _ ->
          (* Data can never precede the ACK: the server sends ACK first. *)
          ignore (handle_control s msg);
          await ())
    in
    await ();
    Obs.Metrics.incr m_connects;
    s.Sock.state <- Sock.Established
  | Monitor.Fallback (kproc, kfd) ->
    (* Regular TCP peer: the kernel connection replaces the user socket. *)
    Obs.Metrics.incr m_fallbacks;
    Obs.Trace.emit Obs.Trace.Fallback;
    Fd_table.bind th.ctx.fds fd (K (kproc, kfd));
    s.Sock.state <- Sock.Established
  | Monitor.Refused _ -> raise Connection_refused

let connect th fd ~dst ~port =
  let s = sock_exn th fd in
  (match s.Sock.state with
  | Sock.Closed | Sock.Bound -> ()
  | _ -> invalid_arg "libsd.connect: bad state");
  s.Sock.state <- Sock.Wait_dispatch;
  s.Sock.peer_host <- Host.id dst;
  s.Sock.peer_port <- port;
  let reply =
    Monitor.rpc th.ctx.monitor (fun reply ->
        Monitor.Syn { syn_dst = dst; syn_port = port; syn_src_pid = th.ctx.uid; syn_reply = reply })
  in
  attach_client th fd s reply

(* Build the server-side socket from a dispatched SYN entry. *)
let accept_entry th (entry : Monitor.syn_entry) ~port =
  let s = Sock.create th.ctx.host ~cost:th.ctx.cost ~tid:th.tid ~copy_mode:(effective_copy_mode th.ctx) () in
  s.Sock.tx <- Some entry.Monitor.s_tx;
  s.Sock.rx <- Some entry.Monitor.s_rx;
  s.Sock.local_port <- port;
  s.Sock.peer_host <- entry.Monitor.syn_client_host;
  s.Sock.peer_port <- entry.Monitor.syn_client_port;
  entry.Monitor.syn_deliver := Some (Sock.deliver s);
  entry.Monitor.syn_pairing.Monitor.s_sock <- Some s;
  link_pairing entry.Monitor.syn_pairing;
  s.Sock.state <- Sock.Wait_client;
  (* ACK completes the handshake; data may follow immediately (§4.5.2). *)
  send_msg th s (Msg.control "ACK");
  s.Sock.state <- Sock.Established;
  Obs.Metrics.incr m_accepts;
  Fd_table.alloc th.ctx.fds (U s)

let accept th fd =
  let s = sock_exn th fd in
  (match s.Sock.state with
  | Sock.Listening -> ()
  | _ -> invalid_arg "libsd.accept: not listening");
  let port = s.Sock.local_port in
  let lt = register_listener th ~port in
  let rec next () =
    match Queue.take_opt lt.Monitor.lt_backlog with
    | Some entry -> accept_entry th entry ~port
    | None -> (
      (* Work stealing: an idle listener pulls from a sibling's backlog
         through the monitor (§4.5.2). *)
      match
        Monitor.rpc th.ctx.monitor (fun reply ->
            Monitor.Steal { st_port = port; st_for = th.tid; st_reply = reply })
      with
      | Some entry -> accept_entry th entry ~port
      | None ->
        (* Wake on a dispatch to our backlog, or retry the steal
           periodically: round-robin may park connections on a listener
           that never accepts (e.g. a master that only forks). *)
        (match Waitq.wait ~timeout_ns:100_000 lt.Monitor.lt_wq with _ -> ());
        next ())
  in
  next ()

(* ---- send / recv ---- *)

let max_inline_chunk = 8 * 1024

(* Cap on descriptors per ring record, so a huge send splits into several
   descriptor records instead of one record that could outgrow the ring. *)
let max_desc_per_msg = 256

let send_chunks th s buf ~off ~len =
  if len = 0 then ()
  else if len <= max_inline_chunk then send_msg th s (Msg.data (Bytes.sub buf off len))
  else begin
    (* Large sends split into inline chunks travel as one vectored batch
       through the ring (§4.2 adaptive batching). *)
    let rec chunks off len =
      if len = 0 then []
      else begin
        let chunk = min len max_inline_chunk in
        Msg.data (Bytes.sub buf off chunk) :: chunks (off + chunk) (len - chunk)
      end
    in
    send_msgs th s (chunks off len)
  end

(* The §4.6 descriptor path: stage the payload into freshly allocated
   shared-pool pages and send {page, off, len} descriptor records — an
   ownership handoff; no payload byte crosses the ring.  Returns [false]
   (having released any pages it took) when the pool is exhausted, in
   which case the caller falls back to the inline-copy path. *)
let send_pool th s pool buf ~off ~len =
  let module Pp = Sds_vm.Pagepool in
  let h = Pp.domain_handle pool in
  let npages = (len + Pp.page_size - 1) / Pp.page_size in
  let pages = Array.make npages 0 in
  let got = ref 0 in
  let ok = ref true in
  while !ok && !got < npages do
    let p = Pp.alloc h in
    if p = Pp.no_page then ok := false
    else begin
      pages.(!got) <- p;
      incr got
    end
  done;
  if not !ok then begin
    for i = 0 to !got - 1 do
      Pp.release h pages.(i)
    done;
    false
  end
  else begin
    (* Stage and pack.  The app buffer is free for reuse the moment send
       returns — the pages travel, not the buffer (§4.6 steady state). *)
    let entries = Array.make npages 0 in
    for i = 0 to npages - 1 do
      let chunk_off = i * Pp.page_size in
      let chunk = min Pp.page_size (len - chunk_off) in
      Pp.blit_from_bytes pool ~src:buf ~src_off:(off + chunk_off) ~page:pages.(i) ~off:0
        ~len:chunk;
      entries.(i) <- Sds_ring.Spsc_ring.desc_entry ~page:pages.(i) ~off:0 ~len:chunk
    done;
    (* Sim cost: one driver call plus per-page grant bookkeeping, instead
       of the memcpy (same shape as the RDMA-flavour [Zerocopy.send_pages]). *)
    Proc.sleep_ns (Cost.syscall th.ctx.cost + (npages * 20));
    (* Split into bounded descriptor records and hand off. *)
    let rec records i =
      if i >= npages then []
      else begin
        let n = min max_desc_per_msg (npages - i) in
        let sub = Array.sub entries i n in
        let sub_len =
          if i + n >= npages then len - (i * Pp.page_size) else n * Pp.page_size
        in
        Msg.make (Msg.Pool { pool; entries = sub; len = sub_len }) :: records (i + n)
      end
    in
    send_msgs th s (records 0);
    true
  end

(* The shared pool of this socket's tx channel, when the §4.6 descriptor
   path applies (intra-host SHM channel backed by a pool). *)
let tx_pool (s : Sock.t) =
  match s.Sock.tx with
  | Some (Sock.Tx_chan tx) -> (
    match Shm_chan.via tx.Sock.chan with
    | Shm_chan.Shm -> Shm_chan.pool tx.Sock.chan
    | Shm_chan.Rdma _ -> None)
  | Some (Sock.Tx_kernel _) | None -> None

let send th fd buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then invalid_arg "libsd.send";
  match lookup th fd with
  | K (kproc, kfd) -> Kernel.send kproc kfd buf ~off ~len
  | Ep _ -> invalid_arg "libsd.send: epoll fd"
  | U s ->
    if s.Sock.reset then raise Broken_pipe;
    if s.Sock.fin_sent then raise Broken_pipe;
    (match s.Sock.state with
    | Sock.Established -> ()
    | _ -> invalid_arg "libsd.send: not connected");
    Obs.Metrics.incr m_sends;
    Obs.Metrics.add m_send_bytes len;
    Obs.Metrics.observe h_send_size len;
    Token.with_held s.Sock.send_token ~tid:th.tid (fun () ->
        let kernel_tx = match s.Sock.tx with Some (Sock.Tx_kernel _) -> true | _ -> false in
        let zc_sent =
          if kernel_tx || len = 0 then false
          else
            match tx_pool s with
            | Some pool ->
              (* Intra-host: Libra-style per-socket selective copying over
                 the real shared pool. *)
              Copy_policy.decide s.Sock.policy ~pool:(Some pool) ~len
              && (send_pool th s pool buf ~off ~len
                 ||
                 ((* Pool exhausted: Libra fallback to the copy path. *)
                  Obs.Metrics.incr m_pool_fallbacks;
                  Obs.Trace.emit Obs.Trace.Fallback;
                  false))
            | None ->
              (* Inter-host: the §4.3 RDMA page-remap protocol. *)
              if th.ctx.config.zerocopy && len >= Zerocopy.threshold then begin
                let msg =
                  Zerocopy.send_pages ~cost:th.ctx.cost ~space:th.ctx.space ~src:buf ~off ~len
                in
                send_msg th s msg;
                true
              end
              else false
        in
        if zc_sent then begin
          s.Sock.zerocopy_sends <- s.Sock.zerocopy_sends + 1;
          Obs.Metrics.incr m_zerocopy_sends
        end
        else send_chunks th s buf ~off ~len;
        s.Sock.bytes_sent <- s.Sock.bytes_sent + len);
    len

(* Copy message payload into the app buffer; stores any remainder for the
   next recv (stream semantics). *)
let consume_payload th (s : Sock.t) msg ~dst ~off ~len =
  match msg.Msg.payload with
  | Msg.Pages (pages, plen) when len >= plen ->
    (* Whole zero-copy message fits: remap instead of copying. *)
    s.Sock.zerocopy_recvs <- s.Sock.zerocopy_recvs + 1;
    Obs.Metrics.incr m_zerocopy_recvs;
    Obs.Trace.emit_n Obs.Trace.Zerocopy_remap plen;
    Zerocopy.recv_pages ~cost:th.ctx.cost ~space:th.ctx.space ~engine:th.ctx.engine pages ~len:plen
      ~dst ~dst_off:off;
    plen
  | Msg.Pool { pool; entries; len = plen } when len >= plen ->
    (* Whole descriptor message fits: the ownership handoff is the §4.6
       remap — charge remap cost, land the payload, drop our reference. *)
    let module Pp = Sds_vm.Pagepool in
    let module R = Sds_ring.Spsc_ring in
    s.Sock.zerocopy_recvs <- s.Sock.zerocopy_recvs + 1;
    Obs.Metrics.incr m_zerocopy_recvs;
    Obs.Trace.emit_n Obs.Trace.Zerocopy_remap plen;
    Proc.sleep_ns (Cost.remap_cost th.ctx.cost plen);
    let h = Pp.domain_handle pool in
    let pos = ref off in
    Array.iter
      (fun e ->
        let elen = R.desc_len e in
        Pp.blit_to_bytes pool ~page:(R.desc_page e) ~off:(R.desc_off e) ~dst ~dst_off:!pos
          ~len:elen;
        pos := !pos + elen;
        Pp.release h (R.desc_page e))
      entries;
    plen
  | _ ->
    let b = Msg.to_bytes msg in
    let plen = Bytes.length b in
    let take = min len plen in
    Bytes.blit b 0 dst off take;
    (match msg.Msg.payload with
    | Msg.Pages _ ->
      (* Partial read of a zero-copy message degrades to a copy. *)
      Proc.sleep_ns (Cost.copy_cost th.ctx.cost take)
    | Msg.Pool { pool; entries; _ } ->
      (* Partial read degrades to a copy ([to_bytes] above materialised the
         payload); the pages are done travelling — release our reference. *)
      Proc.sleep_ns (Cost.copy_cost th.ctx.cost take);
      let module Pp = Sds_vm.Pagepool in
      let h = Pp.domain_handle pool in
      Array.iter (fun e -> Pp.release h (Sds_ring.Spsc_ring.desc_page e)) entries
    | Msg.Inline _ -> ());
    if take < plen then s.Sock.partial <- Some (b, take);
    take

(* [consume_payload] plus span-stage attribution: the consume-completion
   stamp closes the message's span, and the stamps it carried (creation,
   publish, visibility, dequeue, decode) become the per-stage histogram
   observations.  Control messages never reach here ([handle_control]
   filters first), so span.* histograms describe data traffic only. *)
let consume th (s : Sock.t) msg ~dst ~off ~len =
  let remapped =
    match msg.Msg.payload with
    | Msg.Pages (_, plen) | Msg.Pool { len = plen; _ } -> len >= plen
    | Msg.Inline _ -> false
  in
  let n = consume_payload th s msg ~dst ~off ~len in
  (match msg.Msg.kind with
  | Msg.Data ->
    Sds_obs.Span.observe_stages ~seq:msg.Msg.seq ~send:msg.Msg.span_send ~pub:msg.Msg.span_pub
      ~vis:msg.Msg.span_vis ~deq:msg.Msg.span_deq ~parsed:msg.Msg.span_parse
      ~done_:(Sds_obs.Span.now ()) ~remapped
  | Msg.Control _ -> ());
  n

let rec recv th fd buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then invalid_arg "libsd.recv";
  match lookup th fd with
  | K (kproc, kfd) -> Kernel.recv kproc kfd buf ~off ~len
  | Ep _ -> invalid_arg "libsd.recv: epoll fd"
  | U s ->
    Token.with_held s.Sock.recv_token ~tid:th.tid (fun () ->
        (* Reset beats everything, including buffered data: ECONNRESET
           semantics, the same drop Linux performs. *)
        if s.Sock.reset then begin
          s.Sock.partial <- None;
          Queue.clear s.Sock.incoming;
          raise Connection_reset
        end;
        match s.Sock.partial with
        | Some (b, consumed) ->
          let avail = Bytes.length b - consumed in
          let take = min len avail in
          Bytes.blit b consumed buf off take;
          s.Sock.partial <- (if take = avail then None else Some (b, consumed + take));
          s.Sock.bytes_received <- s.Sock.bytes_received + take;
          Obs.Metrics.incr m_recvs;
          Obs.Metrics.add m_recv_bytes take;
          take
        | None -> (
          match next_msg th s with
          | None -> if s.Sock.reset then raise Connection_reset else 0 (* EOF *)
          | Some msg ->
            if handle_control s msg then recv_again th fd buf ~off ~len s
            else begin
              let n = consume th s msg ~dst:buf ~off ~len in
              s.Sock.bytes_received <- s.Sock.bytes_received + n;
              Obs.Metrics.incr m_recvs;
              Obs.Metrics.add m_recv_bytes n;
              n
            end))

and recv_again th fd buf ~off ~len (s : Sock.t) =
  if s.Sock.reset then raise Connection_reset
  else if Sock.is_eof s then 0
  else
    (* Control message consumed; keep waiting for data without recursion
       through the token (we already hold it). *)
    match next_msg th s with
    | None -> if s.Sock.reset then raise Connection_reset else 0
    | Some msg ->
      if handle_control s msg then recv_again th fd buf ~off ~len s
      else begin
        let n = consume th s msg ~dst:buf ~off ~len in
        s.Sock.bytes_received <- s.Sock.bytes_received + n;
        Obs.Metrics.incr m_recvs;
        Obs.Metrics.add m_recv_bytes n;
        n
      end

(* ---- shutdown / close ---- *)

let shutdown_send th (s : Sock.t) =
  if not s.Sock.fin_sent then begin
    s.Sock.fin_sent <- true;
    match s.Sock.tx with
    | Some (Sock.Tx_kernel (kproc, kfd)) -> (
      match Kernel.lookup kproc kfd with
      | Kernel.Tcp ep -> Kernel.shutdown_send ep
      | _ -> ())
    | Some _ -> ( try send_msg th s (Msg.control "FIN") with _ -> ())
    | None -> ()
  end

let shutdown th fd how =
  match lookup th fd with
  | K (kproc, kfd) -> (
    match Kernel.lookup kproc kfd with
    | Kernel.Tcp ep -> if how <> `Recv then Kernel.shutdown_send ep
    | _ -> ())
  | Ep _ -> invalid_arg "libsd.shutdown: epoll fd"
  | U s -> (
    match how with
    | `Send | `Both -> shutdown_send th s
    | `Recv -> s.Sock.fin_seen <- true)

let close th fd =
  match lookup th fd with
  | K (kproc, kfd) ->
    ignore (Fd_table.close th.ctx.fds fd);
    Kernel.close kproc kfd
  | Ep _ -> ignore (Fd_table.close th.ctx.fds fd)
  | U s ->
    ignore (Fd_table.close th.ctx.fds fd);
    s.Sock.refs <- s.Sock.refs - 1;
    if s.Sock.refs <= 0 then begin
      (match s.Sock.state with
      | Sock.Established -> shutdown_send th s
      | _ -> ());
      s.Sock.state <- Sock.Shut
    end

(* ---- fork / exec (§4.1.2) ---- *)

let fork th =
  let ctx = th.ctx in
  (* Pairing secret so a malicious process cannot impersonate our child. *)
  let secret = Sds_sim.Rng.int ctx.host.Host.rng 1_000_000_000 in
  Monitor.register_fork_secret ctx.monitor secret;
  (* fork(2) itself: page-table copy etc. *)
  Proc.sleep_ns (Cost.syscall ctx.cost + 10_000);
  incr uid_counter;
  let child =
    {
      uid = !uid_counter;
      host = ctx.host;
      engine = ctx.engine;
      cost = ctx.cost;
      kproc = Kernel.fork ctx.kproc;
      monitor = ctx.monitor;
      config = ctx.config;
      (* The FD remapping table is heap memory: copy-on-write across fork.
         Socket metadata and buffers live in SHM: shared. *)
      fds = Fd_table.copy ctx.fds;
      space = Sds_vm.Space.create ~pid:!uid_counter ~pool_capacity:4096;
      threads = 0;
      listener_regs = ctx.listener_regs;
      epoll_thread = None;
    }
  in
  Zerocopy.register_pool ~uid:child.uid (Sds_vm.Space.pool child.space);
  (* Shared sockets gain a reference; the parent keeps the tokens, and RDMA
     resources must be re-initialized on first use by the child. *)
  Fd_table.iter child.fds (fun _ e ->
      match e with
      | U s ->
        s.Sock.refs <- s.Sock.refs + 1;
        Token.on_fork s.Sock.send_token ~parent_tid:th.tid;
        Token.on_fork s.Sock.recv_token ~parent_tid:th.tid;
        (match s.Sock.tx with
        | Some (Sock.Tx_chan ({ chan; _ } as tx)) -> (
          match Shm_chan.via chan with
          | Shm_chan.Rdma _ -> tx.Sock.needs_reinit <- true
          | Shm_chan.Shm -> ())
        | _ -> ())
      | K _ | Ep _ -> ());
  (* Child announces itself to the monitor with the secret. *)
  let paired = Monitor.rpc ctx.monitor (fun reply -> Monitor.Fork_pair { fp_secret = secret; fp_reply = reply }) in
  assert paired;
  Obs.Metrics.incr m_forks;
  Obs.Trace.emit_n Obs.Trace.Fork child.uid;
  Log.info (fun m -> m "process %d forked child %d" ctx.uid child.uid);
  child

(* exec(): the address space is wiped, but the FD remapping table is copied
   into SHM just before and re-attached by the fresh libsd (§4.1.2). *)
let exec ctx =
  Proc.sleep_ns (Cost.syscall ctx.cost + 50_000);
  ctx.fds <- Fd_table.copy ctx.fds;
  Fd_table.iter ctx.fds (fun _ e ->
      match e with
      | U s -> (
        match s.Sock.tx with
        | Some (Sock.Tx_chan ({ chan; _ } as tx)) -> (
          match Shm_chan.via chan with
          | Shm_chan.Rdma _ -> tx.Sock.needs_reinit <- true
          | Shm_chan.Shm -> ())
        | _ -> ())
      | K _ | Ep _ -> ())

(* ---- epoll ---- *)

let epoll_create th =
  Proc.sleep_ns th.ctx.cost.Cost.c_shim;
  Fd_table.alloc th.ctx.fds
    (Ep { ep_watched = Hashtbl.create 8; ep_wq = Waitq.create (); ep_hooked = Hashtbl.create 8 })

let epoll_exn th fd =
  match lookup th fd with
  | Ep e -> e
  | _ -> invalid_arg "libsd: not an epoll fd"

(* The per-process epoll thread (§4.4): a single fiber invokes the kernel's
   epoll_wait for ALL watched kernel FDs of this process and relays events
   to the user-space epoll instances, so application threads never make
   kernel event syscalls on the data path. *)
let ensure_epoll_thread ctx =
  match ctx.epoll_thread with
  | Some et -> et
  | None ->
    let kepfd = Kernel.epoll_create ctx.kproc in
    let et = { et_kepfd = kepfd; et_watchers = Hashtbl.create 8; et_rearm = Waitq.create () } in
    ctx.epoll_thread <- Some et;
    ignore
      (Proc.spawn ctx.engine ~name:(Fmt.str "epoll-thread-p%d" ctx.uid) (fun () ->
           let rec loop last =
             (* Blocks in the kernel while nothing is readable, so an idle
                process schedules no events at all. *)
             let ready = Kernel.epoll_wait ctx.kproc kepfd () in
             List.iter
               (fun kfd ->
                 match Hashtbl.find_opt et.et_watchers kfd with
                 | Some wqs -> List.iter Waitq.signal !wqs
                 | None -> ())
               ready;
             if ready = last then begin
               (* Level-triggered readiness the application has not drained
                  yet: wait for a genuinely new arrival before rescanning,
                  so an ignored FD cannot spin the thread. *)
               (match Waitq.wait et.et_rearm with _ -> ());
               loop []
             end
             else begin
               Proc.sleep_ns 2_000;
               loop ready
             end
           in
           loop []));
    et

let watch_kernel_fd ctx ~kfd ~wq =
  let et = ensure_epoll_thread ctx in
  match Hashtbl.find_opt et.et_watchers kfd with
  | Some wqs -> wqs := wq :: !wqs
  | None ->
    Hashtbl.replace et.et_watchers kfd (ref [ wq ]);
    Kernel.epoll_add ctx.kproc et.et_kepfd ~watch_pid:ctx.kproc.Kernel.pid ~fd:kfd;
    (* New arrivals re-arm the relay loop. *)
    (match Kernel.lookup ctx.kproc kfd with
    | Kernel.Tcp ep -> (
      match ep.Kernel.rx with
      | Some st -> Sds_kernel.Kstream.on_readable st (fun () -> Waitq.signal et.et_rearm)
      | None -> ())
    | Kernel.Pipe_r pe ->
      Sds_kernel.Kstream.on_readable pe.Kernel.pstream (fun () -> Waitq.signal et.et_rearm)
    | _ -> ())

let epoll_add th epfd fd =
  let e = epoll_exn th epfd in
  Hashtbl.replace e.ep_watched fd ();
  if not (Hashtbl.mem e.ep_hooked fd) then begin
    Hashtbl.replace e.ep_hooked fd ();
    match lookup th fd with
    | U s ->
      Sock.add_deliver_hook s (fun () -> Waitq.signal e.ep_wq);
      (match s.Sock.rx with
      | Some (Sock.Rx_chan chan) -> Shm_chan.add_deliver_hook chan (fun () -> Waitq.signal e.ep_wq)
      | _ -> ())
    | K (_, kfd) ->
      (* Kernel FDs are delegated to the per-process epoll thread. *)
      watch_kernel_fd th.ctx ~kfd ~wq:e.ep_wq
    | Ep _ -> invalid_arg "libsd.epoll_add: cannot watch an epoll fd"
  end

let epoll_del th epfd fd =
  let e = epoll_exn th epfd in
  Hashtbl.remove e.ep_watched fd

let fd_readable th fd =
  match Fd_table.find th.ctx.fds fd with
  | Some (U s) -> (
    Sock.readable s
    ||
    (* Listening sockets: readiness = pending SYN in my backlog. *)
    match (s.Sock.state, Hashtbl.find_opt th.listeners s.Sock.local_port) with
    | Sock.Listening, Some lt -> not (Queue.is_empty lt.Monitor.lt_backlog)
    | _ -> false)
  | Some (K (kproc, kfd)) -> (
    match Kernel.lookup kproc kfd with
    | obj -> Kernel.obj_readable obj
    | exception _ -> false)
  | Some (Ep _) | None -> false

(* Level-triggered epoll_wait over mixed user/kernel FDs. *)
let epoll_wait th epfd ?timeout_ns () =
  let e = epoll_exn th epfd in
  Obs.Metrics.incr m_epoll_waits;
  Proc.sleep_ns th.ctx.cost.Cost.c_shim;
  let scan () =
    Hashtbl.fold
      (fun fd () acc ->
        (* Poll user sockets' transports so SHM arrivals become visible. *)
        (match Fd_table.find th.ctx.fds fd with
        | Some (U s) -> ignore (Sock.poll_rx s)
        | _ -> ());
        if fd_readable th fd then fd :: acc else acc)
      e.ep_watched []
  in
  let deadline = Option.map (fun d -> Engine.now th.ctx.engine + d) timeout_ns in
  (* Same shared §4.4 polling↔interrupt state machine as [next_msg]: poll
     the watched set for [yield_rounds] empty rounds, then park on the
     epoll waitqueue (the sim-side analogue of [Waiter.wait_any]). *)
  let pol =
    Sds_notify.Policy.create ~adaptive:false ~backoff_rounds:0
      ~budget:th.ctx.config.yield_rounds ()
  in
  Sds_notify.Policy.begin_wait pol;
  let rec loop () =
    match scan () with
    | _ :: _ as fds ->
      Sds_notify.Policy.on_success pol;
      List.sort Int.compare fds
    | [] -> (
      let now = Engine.now th.ctx.engine in
      match deadline with
      | Some d when now >= d -> []
      | _ ->
        let u = Sds_notify.Policy.poll pol in
        if u > 0 then begin
          for _ = 1 to u do
            Proc.sleep_ns th.ctx.cost.Cost.poll_empty_32;
            Cpu.yield_turn th.cpu
          done;
          loop ()
        end
        else begin
          Sds_notify.Policy.on_park pol;
          Cpu.release th.cpu;
          let timeout_ns = Option.map (fun d -> max 1 (d - now)) deadline in
          match Waitq.wait ?timeout_ns e.ep_wq with
          | Waitq.Timeout -> []
          | Waitq.Signaled ->
            Sds_notify.Policy.on_wake pol;
            Sds_notify.Policy.begin_wait pol;
            loop ()
        end)
  in
  let r = loop () in
  Cpu.release th.cpu;
  r

(* ---- stats ---- *)

let sock_stats th fd =
  let s = sock_exn th fd in
  ( s.Sock.bytes_sent,
    s.Sock.bytes_received,
    s.Sock.zerocopy_sends,
    s.Sock.zerocopy_recvs,
    Token.takeovers s.Sock.send_token + Token.takeovers s.Sock.recv_token )

(* ---- container live migration (§4.1.3) ---- *)

(* Rebuild one established connection's transports for the socket's new
   locality: SHM queues when the endpoints now share a host, a fresh RDMA QP
   pair otherwise.  In-flight data survives because the socket queues are
   part of the migrated memory image, and old NIC deliveries still land in
   the same socket objects. *)
let rebuild_transports (s : Sock.t) (peer : Sock.t) =
  let cost = s.Sock.cost in
  let engine = s.Sock.host.Host.engine in
  if Host.same_host s.Sock.host peer.Sock.host then begin
    let a2b = Shm_chan.create engine ~cost () in
    let b2a = Shm_chan.create engine ~cost () in
    s.Sock.tx <- Some (Sock.Tx_chan (Sock.chan_tx a2b));
    peer.Sock.rx <- Some (Sock.Rx_chan a2b);
    peer.Sock.tx <- Some (Sock.Tx_chan (Sock.chan_tx b2a));
    s.Sock.rx <- Some (Sock.Rx_chan b2a);
    Proc.sleep_ns (2 * cost.Cost.monitor_processing)
  end
  else begin
    (* New QP pair between the two hosts' NICs, one ring channel per
       direction. *)
    let nic_s = Host.nic s.Sock.host and nic_p = Host.nic peer.Sock.host in
    let cq_s = Nic.create_cq nic_s and cq_p = Nic.create_cq nic_p in
    let qp_s, qp_p = Nic.connect_qps nic_s nic_p ~scq_a:cq_s ~rcq_a:cq_s ~scq_b:cq_p ~rcq_b:cq_p in
    Nic.set_batching qp_s true;
    Nic.set_batching qp_p true;
    let s2p = Shm_chan.create_rdma engine ~cost ~qp:qp_s () in
    let p2s = Shm_chan.create_rdma engine ~cost ~qp:qp_p () in
    s.Sock.tx <- Some (Sock.Tx_chan (Sock.chan_tx s2p));
    peer.Sock.rx <- Some (Sock.Rx_chan s2p);
    peer.Sock.tx <- Some (Sock.Tx_chan (Sock.chan_tx p2s));
    s.Sock.rx <- Some (Sock.Rx_chan p2s)
  end

(* Live-migrate this process's container to [to_host] (§4.1.3): quiesce and
   drain in-flight data into the socket queues (part of the memory image),
   re-register with the destination monitor, and re-establish every
   established connection's channels for the new locality.  Threads are
   restarted by the caller after migration, as with CRIU restore. *)
let migrate ctx ~to_host =
  (* Checkpoint/transfer/restore envelope. *)
  Proc.sleep_ns 100_000;
  (* Let the wire drain, then pull everything into the socket queues. *)
  Proc.sleep_ns (2 * ctx.cost.Cost.rdma_write_rtt);
  Fd_table.iter ctx.fds (fun _ e ->
      match e with
      | U s ->
        let rec drain () = if Sock.poll_rx s && not (Queue.is_empty s.Sock.incoming) then drain () in
        (try drain () with _ -> ());
        (match s.Sock.peer_sock with
        | Some peer ->
          let rec drain_peer () = if Sock.poll_rx peer then drain_peer () in
          (try drain_peer () with _ -> ())
        | None -> ())
      | K _ | Ep _ -> ());
  Log.info (fun m -> m "migrating process %d to host %d" ctx.uid (Host.id to_host));
  ctx.host <- to_host;
  ctx.monitor <- Monitor.for_host to_host;
  (* Re-establish channels per new locality. *)
  Fd_table.iter ctx.fds (fun _ e ->
      match e with
      | U s when s.Sock.state = Sock.Established -> (
        s.Sock.host <- to_host;
        match (s.Sock.peer_sock, s.Sock.tx) with
        | Some peer, Some (Sock.Tx_chan _) ->
          rebuild_transports s peer;
          (* Receivers parked in interrupt mode on the old channels must
             re-poll the new ones. *)
          Waitq.broadcast s.Sock.rx_wq;
          Waitq.broadcast peer.Sock.rx_wq
        | _ -> () (* kernel-fallback connections cannot be live-migrated *))
      | _ -> ())

(* ---- accessors used by tools, tests and the epoll thread ---- *)

let space_of ctx = ctx.space
let kernel_process ctx = ctx.kproc
let monitor_of th = th.ctx.monitor
let thread_kernel_process th = th.ctx.kproc

(* Expose a kernel FD (file, pipe end, ...) through the remapping table so
   epoll and close treat it uniformly with sockets. *)
let register_kernel_fd th kfd = Fd_table.alloc th.ctx.fds (K (th.ctx.kproc, kfd))

(* ---- non-blocking mode, dup, poll/select (compatibility surface) ---- *)

exception Would_block

(* fcntl(F_SETFL, O_NONBLOCK) equivalent. *)
let set_nonblocking th fd flag =
  Proc.sleep_ns th.ctx.cost.Cost.c_shim;
  match lookup th fd with
  | U s -> s.Sock.nonblocking <- flag
  | K _ | Ep _ -> invalid_arg "libsd.set_nonblocking: not a user socket"

(* Non-blocking receive: raises [Would_block] instead of sleeping. *)
let try_recv th fd buf ~off ~len =
  match lookup th fd with
  | U s when s.Sock.nonblocking ->
    Token.with_held s.Sock.recv_token ~tid:th.tid (fun () ->
        ignore (Sock.poll_rx s);
        if Sock.has_buffered s || Sock.is_eof s then recv th fd buf ~off ~len
        else raise Would_block)
  | _ -> recv th fd buf ~off ~len

(* dup(2): a second descriptor for the same open object. *)
let dup th fd =
  Proc.sleep_ns th.ctx.cost.Cost.c_shim;
  let e = lookup th fd in
  (match e with
  | U s -> s.Sock.refs <- s.Sock.refs + 1
  | K _ | Ep _ -> ());
  Fd_table.alloc th.ctx.fds e

(* poll(2) over readability, without installing epoll hooks: scan the
   descriptors, yielding between rounds, until one is ready or the timeout
   passes.  Returns ready fds in ascending order. *)
let poll th fds ?timeout_ns () =
  Proc.sleep_ns th.ctx.cost.Cost.c_shim;
  let scan () =
    List.filter
      (fun fd ->
        (match Fd_table.find th.ctx.fds fd with
        | Some (U s) -> ignore (Sock.poll_rx s)
        | _ -> ());
        fd_readable th fd)
      (List.sort_uniq Int.compare fds)
  in
  let deadline = Option.map (fun d -> Engine.now th.ctx.engine + d) timeout_ns in
  let rec loop () =
    match scan () with
    | _ :: _ as ready -> ready
    | [] -> (
      match deadline with
      | Some d when Engine.now th.ctx.engine >= d -> []
      | _ ->
        Proc.sleep_ns th.ctx.cost.Cost.poll_empty_32;
        Cpu.yield_turn th.cpu;
        loop ())
  in
  let r = loop () in
  Cpu.release th.cpu;
  r

(* select(2), readability only, expressed over [poll]. *)
let select th ~read ?timeout_ns () = poll th read ?timeout_ns ()

(* ---- failure semantics (§4.5.4) ---- *)

(* Abnormal process death: peers of every shared socket observe a hangup.
   RDMA has no clear failure semantics, but the ring buffer has a copy on
   both sides, so already-sent data stays readable; after the drain the
   peer sees EOF (and real libsd raises SIGHUP). *)
let simulate_crash ctx =
  Fd_table.iter ctx.fds (fun _ e ->
      match e with
      | U s -> (
        s.Sock.refs <- 0;
        s.Sock.state <- Sock.Shut;
        match s.Sock.peer_sock with
        | Some peer ->
          peer.Sock.fin_seen <- true;
          Waitq.broadcast peer.Sock.rx_wq;
          List.iter (fun f -> f ()) peer.Sock.deliver_hooks
        | None -> ())
      | K _ | Ep _ -> ());
  Zerocopy.unregister_pool ~uid:ctx.uid

(* The hard flavour (§4.3): no drain, no graceful EOF.  Peers observe a
   reset — blocked receivers wake with [Connection_reset], senders get
   [Broken_pipe] — and the monitor releases the dead pid's port binds so
   a restarted server can bind again. *)
let simulate_abort ctx =
  Fd_table.iter ctx.fds (fun _ e ->
      match e with
      | U s -> (
        s.Sock.refs <- 0;
        s.Sock.state <- Sock.Shut;
        match s.Sock.peer_sock with
        | Some peer -> Sock.mark_reset peer
        | None -> ())
      | K _ | Ep _ -> ());
  Monitor.request ctx.monitor (Monitor.Died { d_pid = ctx.uid });
  Zerocopy.unregister_pool ~uid:ctx.uid
