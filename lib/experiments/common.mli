(** Shared machinery for the evaluation harness: worlds, ping-pong latency,
    closed-loop streaming throughput — all generic over the socket stack so
    every figure sweeps the same workload across SocksDirect, Linux, LibVMA,
    RSocket and raw transports. *)

type world = {
  engine : Sds_sim.Engine.t;
  cost : Sds_sim.Cost.t;
  rng : Sds_sim.Rng.t;
  mutable hosts : Sds_transport.Host.t list;
}

val make_world : ?cost:Sds_sim.Cost.t -> ?seed:int -> unit -> world
(** Fresh engine + cost model; also resets the baseline stacks' per-run
    registries. *)

val add_host : ?cores:int -> ?rdma:bool -> world -> Sds_transport.Host.t

val ns_to_us : float -> float

val pingpong :
  (module Sds_apps.Sock_api.S) ->
  world ->
  client_host:Sds_transport.Host.t ->
  server_host:Sds_transport.Host.t ->
  size:int ->
  rounds:int ->
  warmup:int ->
  Sds_sim.Stats.summary
(** Round-trip latency (ns) of [size]-byte messages between two endpoints,
    summarized over [rounds] measured round trips after [warmup]. *)

val stream_tput :
  (module Sds_apps.Sock_api.S) ->
  world ->
  client_host:Sds_transport.Host.t ->
  server_host:Sds_transport.Host.t ->
  size:int ->
  pairs:int ->
  warmup_ns:int ->
  window_ns:int ->
  float
(** Closed-loop unidirectional stream across [pairs] thread pairs; returns
    aggregate messages/second measured inside the window (auto-extended for
    stacks too slow to complete ten messages). *)

val mops : float -> float
val gbps : size:int -> msg_per_s:float -> float

(* Output helpers shared by the figure drivers. *)

val header : string -> unit
val tsv_row : string list -> unit
val f2 : float -> string
val f3 : float -> string
