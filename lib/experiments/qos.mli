(** Performance isolation (Table 3's QoS row): two inter-host flows share a
    NIC; shaping one on its QP must cap that flow and leave the other's
    bandwidth share intact. *)

val two_flows : shape_a:bool -> float * float
(** Gbps of flows A and B after the measurement window, with flow A
    optionally rate-shaped on its QP. *)

val run : unit -> (float * float) * (float * float)
(** [((a_free, b_free), (a_shaped, b_shaped))]. *)
