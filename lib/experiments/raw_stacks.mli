(** "Raw" reference stacks for the figures' dashed lines: bare RDMA write
    verbs and a bare SHM queue, with no socket semantics on top.  These
    bound what any socket system could achieve (Figure 8's RDMA line,
    Table 2's lockless-queue row). *)

module Raw_rdma : sig
  include Sds_apps.Sock_api.S with type endpoint = Sds_transport.Host.t

  val reset : unit -> unit
end

module Raw_shm : sig
  include Sds_apps.Sock_api.S with type endpoint = Sds_transport.Host.t

  val reset : unit -> unit
end
