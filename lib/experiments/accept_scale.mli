(** Extension experiment: accept throughput of the pre-fork server as worker
    count grows — stresses the monitor's round-robin dispatch and work
    stealing (§4.5.2) under a connection storm. *)

val worker_counts : int list
val conns_per_worker : int

val point : workers:int -> float * int array
(** Connection-storm completion rate (conns/s) and the per-worker served
    counts for one worker-count configuration. *)

val run : unit -> (int * float * int array) list
