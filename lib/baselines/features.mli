(** Table 3: the compatibility / isolation / removed-overhead matrix for
    the ten socket systems the paper compares, encoded as data so the bench
    harness can regenerate the table and tests can assert the executable
    stacks exhibit the claimed behaviours. *)

type support = Yes | No | Partial of string

type system = {
  name : string;
  category : string;
  (* compatibility *)
  transparent : support;
  epoll : support;
  tcp_peers : support;  (** compatible with regular TCP peers *)
  intra_host : support;
  multi_listen : support;  (** multiple applications listen on a port *)
  full_fork : support;
  live_migration : support;
  (* isolation *)
  access_control : string;  (** "Kernel" | "Daemon" | "-" *)
  container_isolation : support;
  qos : string;
  (* removed overheads *)
  kernel_crossing : support;
  fd_locks : support;
  transport_removed : support;
  buffer_mgmt : support;
  io_multiplexing : support;
  process_wakeup : support;
  zero_copy : support;
  fd_alloc : support;
  conn_dispatch : support;
}

val base : system
(** All-[No] template for [{ base with ... }] rows. *)

val systems : system list
val find : string -> system option
val string_of_support : support -> string
val pp_row : Format.formatter -> system -> unit
