(* sdsim: command-line driver for the SocksDirect reproduction experiments.

     sdsim list                 show available experiments
     sdsim run fig7 fig8 ...    run selected experiments
     sdsim run --all            run everything *)

open Cmdliner

let experiments : (string * string * (unit -> unit)) list =
  [
    ("table1", "overhead inventory and solutions", fun () -> Sds_experiments.Tables.run_table1 ());
    ("table2", "micro-operation latency/throughput", fun () -> Sds_experiments.Tables.run_table2 ());
    ("table3", "socket system feature matrix", fun () -> Sds_experiments.Tables.run_table3 ());
    ("table4", "latency breakdown per stack", fun () -> Sds_experiments.Tables.run_table4 ());
    ("fig7", "intra-host tput/latency vs message size", fun () -> ignore (Sds_experiments.Fig78.run_fig7 ()));
    ("fig8", "inter-host tput/latency vs message size", fun () -> ignore (Sds_experiments.Fig78.run_fig8 ()));
    ("fig9", "8-byte throughput vs cores", fun () -> ignore (Sds_experiments.Fig9.run ()));
    ("fig10", "latency vs processes per core", fun () -> ignore (Sds_experiments.Fig10.run ()));
    ("fig11", "Nginx HTTP latency vs response size", fun () -> ignore (Sds_experiments.Fig11.run ()));
    ("fig12", "NF pipeline throughput vs #NFs", fun () -> ignore (Sds_experiments.Fig12.run ()));
    ("redis", "Redis GET latency", fun () -> ignore (Sds_experiments.Apps_exp.run_redis ()));
    ("rpc", "RPClib 1 KiB RPC latency", fun () -> ignore (Sds_experiments.Apps_exp.run_rpc ()));
    ("connscale", "connection setup scalability", fun () -> ignore (Sds_experiments.Connscale.run ()));
    ("qpscale", "latency vs live QPs (NIC cache)", fun () -> ignore (Sds_experiments.Qpscale.run ()));
    ("loss", "lossy fabric: go-back-N vs selective", fun () -> ignore (Sds_experiments.Loss.run ()));
    ("mix", "goodput on the wide-area size mix", fun () -> ignore (Sds_experiments.Mix.run_mix ()));
    ("loadlat", "latency vs offered load", fun () -> ignore (Sds_experiments.Mix.run_loadlat ()));
    ("acceptscale", "pre-fork accept scaling", fun () -> ignore (Sds_experiments.Accept_scale.run ()));
    ("qos", "NIC-offloaded per-flow rate limiting", fun () -> ignore (Sds_experiments.Qos.run ()));
    ("ablation", "design-choice ablations", fun () -> ignore (Sds_experiments.Ablation.run ()));
  ]

let list_cmd =
  let doc = "List available experiments." in
  let run () = List.iter (fun (name, doc, _) -> Fmt.pr "%-10s %s@." name doc) experiments in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run selected experiments (or --all)." in
  let names = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT") in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.") in
  let run all names =
    let selected = if all || names = [] then List.map (fun (n, _, _) -> n) experiments else names in
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, _, f) -> f ()
        | None -> Fmt.epr "unknown experiment %S (try: sdsim list)@." name)
      selected
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ all $ names)

let () =
  let doc = "SocksDirect (SIGCOMM'19) reproduction experiment driver" in
  let info = Cmd.info "sdsim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
