bench/main.mli:
