bench/ring_bench.ml: Array Atomic Bytes Condition Domain Fmt Int32 Int64 List Mutex Printf Sds_ring String Unix
