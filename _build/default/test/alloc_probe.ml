(* Standalone allocation probe: counts minor words per ring op directly via
   [Gc.minor_words], independent of Bechamel's OLS fit. *)
let () =
  let module R = Sds_ring.Spsc_ring in
  let r = R.create ~size:(1 lsl 16) () in
  let payload = Bytes.make 64 'x' in
  let dst = Bytes.create 8192 in
  let iters = 100_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (R.try_enqueue r payload ~off:0 ~len:64);
    ignore (R.try_dequeue_packed ~auto_credit:true r ~dst ~dst_off:0)
  done;
  let w1 = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (R.try_enqueue r payload ~off:0 ~len:64);
    ignore (R.try_dequeue ~auto_credit:true r)
  done;
  let w2 = Gc.minor_words () in
  Printf.printf "try_dequeue_into: %.4f minor words/op\ntry_dequeue (alloc): %.4f minor words/op\n"
    ((w1 -. w0) /. float_of_int iters)
    ((w2 -. w1) /. float_of_int iters)
