(* Tests for the simulation substrate: heap, engine, procs, waitq, cpu,
   rng, stats, cost model. *)

open Sds_sim
open Helpers

(* ---- heap ---- *)

let test_heap_ordering () =
  let h = Heap.create ~less:(fun a b -> a < b) ~dummy:0 () in
  List.iter (Heap.push h) [ 5; 3; 9; 1; 7; 1; 8; 2 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 5; 7; 8; 9 ] (drain []);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_heap_peek () =
  let h = Heap.create ~less:(fun a b -> a < b) ~dummy:0 () in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "length" 2 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any int list in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~less:(fun a b -> a < b) ~dummy:0 () in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

(* ---- engine ---- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:10 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:5 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:10 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order, FIFO at ties" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 10 (Engine.now e)

let test_engine_horizon () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:100 (fun () -> fired := true);
  Engine.run ~until:50 e;
  Alcotest.(check bool) "beyond horizon not fired" false !fired;
  Alcotest.(check int) "clock advanced to horizon" 50 (Engine.now e);
  Engine.run ~until:200 e;
  Alcotest.(check bool) "fired on resume" true !fired

let test_engine_error_propagates () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1 (fun () -> failwith "boom");
  Alcotest.check_raises "event exception re-raised" (Failure "boom") (fun () -> Engine.run e)

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1) ignore)

(* ---- procs ---- *)

let test_proc_sleep_advances_time () =
  let w = make_world () in
  let t_end = ref 0 in
  run w (fun () ->
      Proc.sleep_ns 123;
      Proc.sleep_ns 456;
      t_end := Engine.now w.engine);
  Alcotest.(check int) "slept total" 579 !t_end

let test_proc_suspend_resume () =
  let w = make_world () in
  let wake_fn = ref (fun () -> ()) in
  let resumed_at = ref 0 in
  ignore
    (spawn w "sleeper" (fun () ->
         Proc.suspend (fun _p wake -> wake_fn := wake);
         resumed_at := Engine.now w.engine));
  run w (fun () ->
      Proc.sleep_ns 1000;
      !wake_fn ());
  Alcotest.(check int) "resumed at waker's time" 1000 !resumed_at

let test_proc_wake_idempotent () =
  let w = make_world () in
  let wake_fn = ref (fun () -> ()) in
  let resumes = ref 0 in
  ignore
    (spawn w "sleeper" (fun () ->
         Proc.suspend (fun _p wake -> wake_fn := wake);
         incr resumes));
  run w (fun () ->
      Proc.sleep_ns 10;
      !wake_fn ();
      !wake_fn ();
      !wake_fn ());
  Alcotest.(check int) "woken exactly once" 1 !resumes

let test_proc_exception_aborts_run () =
  let w = make_world () in
  ignore (spawn w "bad" (fun () -> failwith "proc-boom"));
  Alcotest.check_raises "proc failure surfaces" (Failure "proc-boom") (fun () ->
      Engine.run w.engine)

let test_proc_on_exit () =
  let w = make_world () in
  let order = ref [] in
  let p = spawn w "worker" (fun () -> Proc.sleep_ns 5) in
  Proc.on_exit p (fun () -> order := "exit" :: !order);
  run w (fun () -> Proc.sleep_ns 1);
  Alcotest.(check (list string)) "exit hook ran" [ "exit" ] !order;
  Alcotest.(check bool) "dead" false (Proc.is_alive p)

(* ---- waitq ---- *)

let test_waitq_fifo () =
  let w = make_world () in
  let q = Waitq.create () in
  let order = ref [] in
  for i = 1 to 3 do
    ignore
      (spawn w (Fmt.str "w%d" i) (fun () ->
           (match Waitq.wait q with _ -> ());
           order := i :: !order))
  done;
  run w (fun () ->
      Proc.sleep_ns 10;
      Waitq.signal q;
      Waitq.signal q;
      Waitq.signal q);
  Alcotest.(check (list int)) "FIFO wakeups" [ 1; 2; 3 ] (List.rev !order)

let test_waitq_banked_signal () =
  let w = make_world () in
  let q = Waitq.create () in
  let got = ref false in
  run w (fun () ->
      Waitq.signal q;
      (* The signal preceded the wait: it must not be lost. *)
      (match Waitq.wait q with
      | Waitq.Signaled -> got := true
      | Waitq.Timeout -> ()));
  Alcotest.(check bool) "no lost wakeup" true !got

let test_waitq_timeout () =
  let w = make_world () in
  let q = Waitq.create () in
  let outcome = ref Waitq.Signaled in
  let t = ref 0 in
  run w (fun () ->
      outcome := Waitq.wait ~timeout_ns:500 q;
      t := Engine.now w.engine);
  Alcotest.(check bool) "timed out" true (!outcome = Waitq.Timeout);
  Alcotest.(check int) "after timeout duration" 500 !t

let test_waitq_broadcast () =
  let w = make_world () in
  let q = Waitq.create () in
  let woken = ref 0 in
  for _ = 1 to 4 do
    ignore
      (spawn w "b" (fun () ->
           (match Waitq.wait q with _ -> ());
           incr woken))
  done;
  run w (fun () ->
      Proc.sleep_ns 1;
      Waitq.broadcast q);
  Alcotest.(check int) "all woken" 4 !woken

(* ---- cpu rotation ---- *)

let test_cpu_rotation_latency () =
  (* K pollers on a core: a full rotation costs (K-1) switches + 1 spin. *)
  let w = make_world () in
  let h = add_host w in
  let cpu = Sds_transport.Host.core h 0 in
  let rotations = 10 in
  let times = Array.make 3 0 in
  for i = 0 to 2 do
    ignore
      (spawn w (Fmt.str "poller%d" i) (fun () ->
           let t0 = Engine.now w.engine in
           for _ = 1 to rotations do
             Sds_sim.Cpu.yield_turn cpu
           done;
           times.(i) <- Engine.now w.engine - t0))
  done;
  run w (fun () -> Proc.sleep_ns 1);
  Engine.run w.engine;
  (* With 3 pollers each rotation hop is one switch (520ns). *)
  Alcotest.(check bool) "rotation costs grow with members"
    true
    (times.(0) >= rotations * Cost.default.Cost.yield_switch)

let test_cpu_alone_is_cheap () =
  let w = make_world () in
  let h = add_host w in
  let cpu = Sds_transport.Host.core h 1 in
  let elapsed = ref 0 in
  run w (fun () ->
      let t0 = Engine.now w.engine in
      for _ = 1 to 100 do
        Sds_sim.Cpu.yield_turn cpu
      done;
      elapsed := Engine.now w.engine - t0);
  Alcotest.(check bool) "alone: spins, not switches" true (!elapsed < 100 * Cost.default.Cost.yield_switch)

(* ---- rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let before = Rng.int b 1_000_000 in
  (* Advancing [a] must not perturb [b]'s already-derived state. *)
  let b2 = Rng.split (Rng.create ~seed:7) in
  ignore (Rng.int b2 1_000_000);
  Alcotest.(check bool) "split streams reproducible" true (before >= 0)

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

(* ---- stats ---- *)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 0.001)) "mean" 50.5 (Stats.mean s);
  Alcotest.(check (float 0.001)) "p1" 1.0 (Stats.percentile s 1.);
  Alcotest.(check (float 0.001)) "p50" 50.0 (Stats.percentile s 50.);
  Alcotest.(check (float 0.001)) "p99" 99.0 (Stats.percentile s 99.);
  Alcotest.(check (float 0.001)) "max" 100.0 (Stats.max_v s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "nan mean on empty" true (Float.is_nan (Stats.mean s))

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let m = Stats.mean s in
      m >= Stats.min_v s -. 1e-9 && m <= Stats.max_v s +. 1e-9)

(* ---- resources ---- *)

let test_fifo_resource_queueing () =
  let w = make_world () in
  let r = Sds_sim.Resource.fifo w.engine in
  run w (fun () ->
      (* Two back-to-back acquisitions: the second queues behind the first. *)
      Alcotest.(check int) "first served immediately" 100
        (Sds_sim.Resource.fifo_acquire r ~service_ns:100);
      Alcotest.(check int) "second queues" 250 (Sds_sim.Resource.fifo_acquire r ~service_ns:150);
      Proc.sleep_ns 1_000;
      Alcotest.(check bool) "idle after drain" false (Sds_sim.Resource.fifo_busy r);
      Alcotest.(check int) "fresh service after idle" 50
        (Sds_sim.Resource.fifo_acquire r ~service_ns:50))

let test_token_bucket_rate () =
  let w = make_world () in
  let tb = Sds_sim.Resource.token_bucket w.engine ~rate_per_sec:1e9 ~burst:1000.0 in
  run w (fun () ->
      (* Within the burst: free. *)
      Alcotest.(check int) "burst is free" 0 (Sds_sim.Resource.debit tb 1000);
      (* Beyond it: 1000 tokens at 1e9/s = 1000 ns wait. *)
      let wait = Sds_sim.Resource.debit tb 1000 in
      Alcotest.(check int) "debit waits at the configured rate" 1000 wait;
      (* After waiting, the balance recovers. *)
      Proc.sleep_ns 2_000;
      Alcotest.(check bool) "refilled" true (Sds_sim.Resource.balance tb >= 0.0))

(* ---- cost model ---- *)

let test_cost_remap_crossover () =
  let c = Cost.default in
  (* The §4.3 crossover: remapping one page is dearer than copying it, but
     at 16 KiB and beyond remapping wins. *)
  Alcotest.(check bool) "1 page: copy cheaper" true (Cost.copy_cost c 4096 < Cost.remap_cost c 4096);
  Alcotest.(check bool) "16 KiB: remap cheaper" true
    (Cost.remap_cost c (16 * 4096) < Cost.copy_cost c (16 * 4096))

let test_cost_syscall_kpti () =
  let c = Cost.default in
  Alcotest.(check int) "kpti syscall" c.Cost.syscall_post_kpti (Cost.syscall c);
  Alcotest.(check int) "pre-kpti syscall" c.Cost.syscall_pre_kpti
    (Cost.syscall { c with Cost.kpti = false })

let suite =
  [
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap peek/length" `Quick test_heap_peek;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "engine event order" `Quick test_engine_order;
    Alcotest.test_case "engine horizon" `Quick test_engine_horizon;
    Alcotest.test_case "engine error propagation" `Quick test_engine_error_propagates;
    Alcotest.test_case "engine rejects negative delay" `Quick test_engine_negative_delay;
    Alcotest.test_case "proc sleep advances time" `Quick test_proc_sleep_advances_time;
    Alcotest.test_case "proc suspend/resume" `Quick test_proc_suspend_resume;
    Alcotest.test_case "proc wake idempotent" `Quick test_proc_wake_idempotent;
    Alcotest.test_case "proc exception aborts run" `Quick test_proc_exception_aborts_run;
    Alcotest.test_case "proc on_exit" `Quick test_proc_on_exit;
    Alcotest.test_case "waitq FIFO" `Quick test_waitq_fifo;
    Alcotest.test_case "waitq banks early signal" `Quick test_waitq_banked_signal;
    Alcotest.test_case "waitq timeout" `Quick test_waitq_timeout;
    Alcotest.test_case "waitq broadcast" `Quick test_waitq_broadcast;
    Alcotest.test_case "cpu rotation costs switches" `Quick test_cpu_rotation_latency;
    Alcotest.test_case "cpu alone spins cheaply" `Quick test_cpu_alone_is_cheap;
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    QCheck_alcotest.to_alcotest prop_rng_bounds;
    Alcotest.test_case "stats percentiles" `Quick test_stats_percentiles;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    QCheck_alcotest.to_alcotest prop_stats_mean_bounded;
    Alcotest.test_case "fifo resource queueing" `Quick test_fifo_resource_queueing;
    Alcotest.test_case "token bucket rate" `Quick test_token_bucket_rate;
    Alcotest.test_case "cost remap crossover at 16KiB" `Quick test_cost_remap_crossover;
    Alcotest.test_case "cost syscall KPTI switch" `Quick test_cost_syscall_kpti;
  ]
