(* Tests for the libibverbs-style facade: PD/MR/QP lifecycles, the state
   ladder, rkey checking, one- and two-sided paths. *)

open Sds_transport
module V = Verbs
open Helpers

let setup w =
  let h1 = add_host w and h2 = add_host w in
  let n1 = Host.nic h1 and n2 = Host.nic h2 in
  let pd1 = V.alloc_pd n1 and pd2 = V.alloc_pd n2 in
  let cq1 = V.create_cq n1 and cq2 = V.create_cq n2 in
  let qp1 = V.create_qp pd1 ~send_cq:cq1 ~recv_cq:cq1 in
  let qp2 = V.create_qp pd2 ~send_cq:cq2 ~recv_cq:cq2 in
  (pd1, pd2, cq1, cq2, qp1, qp2)

let connect qp1 qp2 =
  V.modify_qp_init qp1;
  V.modify_qp_init qp2;
  V.modify_qp_rtr qp1 ~peer:qp2;
  V.modify_qp_rtr qp2 ~peer:qp1;
  V.modify_qp_rts qp1;
  V.modify_qp_rts qp2

let test_state_ladder () =
  let w = make_world () in
  run w (fun () ->
      let _, _, _, _, qp1, qp2 = setup w in
      (* Posting before RTS must fail. *)
      let pd = qp1.V.vqp_pd in
      let mr = V.reg_mr pd (Bytes.make 64 'x') ~access:[ V.Local_read ] in
      Alcotest.check_raises "post before RTS" (V.Invalid_state "post_send: QP not in RTS")
        (fun () -> V.post_send qp1 ~opcode:V.Send ~mr ~off:0 ~len:8 ());
      (* Skipping INIT must fail. *)
      Alcotest.check_raises "RTR before INIT" (V.Invalid_state "modify RTR: not in INIT")
        (fun () -> V.modify_qp_rtr qp1 ~peer:qp2);
      connect qp1 qp2;
      Alcotest.(check bool) "both RTS" true (qp1.V.state = V.Rts && qp2.V.state = V.Rts))

let test_two_sided_send_recv () =
  let w = make_world () in
  let got = ref [] in
  run w (fun () ->
      let _, pd2, _, _, qp1, qp2 = setup w in
      connect qp1 qp2;
      (* Receiver posts two buffers, sender sends two messages. *)
      let r1 = V.reg_mr pd2 (Bytes.create 64) ~access:[ V.Local_write ] in
      let r2 = V.reg_mr pd2 (Bytes.create 64) ~access:[ V.Local_write ] in
      V.post_recv qp2 r1;
      V.post_recv qp2 r2;
      V.install_recv_handler qp2 ~on_recv:(fun mr n ->
          got := Bytes.sub_string mr.V.buf 0 n :: !got);
      let smr = V.reg_mr qp1.V.vqp_pd (Bytes.of_string "verbs-hello") ~access:[ V.Local_read ] in
      V.post_send qp1 ~opcode:V.Send ~mr:smr ~off:0 ~len:11 ();
      V.post_send qp1 ~opcode:V.Send ~mr:smr ~off:0 ~len:5 ();
      Sds_sim.Proc.sleep_ns 100_000;
      Alcotest.(check (list string)) "both received in order" [ "verbs-hello"; "verbs" ]
        (List.rev !got))

let test_rdma_write_needs_rkey () =
  let w = make_world () in
  run w (fun () ->
      let _, pd2, _, cq2, qp1, qp2 = setup w in
      connect qp1 qp2;
      let smr = V.reg_mr qp1.V.vqp_pd (Bytes.make 128 'w') ~access:[ V.Local_read ] in
      (* Without a valid rkey the NIC refuses the write. *)
      Alcotest.check_raises "missing rkey"
        (V.Invalid_state "post_send: invalid rkey for RDMA write") (fun () ->
          V.post_send qp1 ~opcode:(V.Rdma_write_with_imm { imm = 7 }) ~mr:smr ~off:0 ~len:128 ());
      (* A remote MR without REMOTE_WRITE cannot be exported. *)
      let ro = V.reg_mr pd2 (Bytes.create 128) ~access:[ V.Local_write ] in
      Alcotest.check_raises "no REMOTE_WRITE" (V.Invalid_state "MR lacks REMOTE_WRITE") (fun () ->
          ignore (V.export_rkey ro));
      (* With a proper remote MR the write lands and completes. *)
      let rw = V.reg_mr pd2 (Bytes.create 128) ~access:[ V.Local_write; V.Remote_write ] in
      let rkey = V.export_rkey rw in
      V.post_send qp1 ~opcode:(V.Rdma_write_with_imm { imm = 7 }) ~mr:smr ~off:0 ~len:128
        ~remote_rkey:rkey ();
      Sds_sim.Proc.sleep_ns 100_000;
      let completions = V.poll_cq cq2 ~max:8 in
      Alcotest.(check int) "one receive completion" 1 (List.length completions);
      match completions with
      | [ c ] -> Alcotest.(check (option int)) "immediate carried" (Some 7) c.Nic.imm
      | _ -> Alcotest.fail "unexpected completions")

let test_mr_bounds_and_dereg () =
  let w = make_world () in
  run w (fun () ->
      let _, _, _, _, qp1, qp2 = setup w in
      connect qp1 qp2;
      let mr = V.reg_mr qp1.V.vqp_pd (Bytes.make 64 'm') ~access:[ V.Local_read ] in
      Alcotest.check_raises "out of MR bounds"
        (V.Invalid_state "post_send: scatter entry out of MR bounds") (fun () ->
          V.post_send qp1 ~opcode:V.Send ~mr ~off:32 ~len:64 ());
      V.dereg_mr mr;
      Alcotest.check_raises "use after dereg" (V.Invalid_state "MR deregistered") (fun () ->
          V.post_send qp1 ~opcode:V.Send ~mr ~off:0 ~len:8 ());
      Alcotest.check_raises "double dereg" (V.Invalid_state "MR already deregistered") (fun () ->
          V.dereg_mr mr))

let suite =
  [
    Alcotest.test_case "qp state ladder" `Quick test_state_ladder;
    Alcotest.test_case "two-sided send/recv" `Quick test_two_sided_send_recv;
    Alcotest.test_case "rdma write requires rkey" `Quick test_rdma_write_needs_rkey;
    Alcotest.test_case "mr bounds and dereg" `Quick test_mr_bounds_and_dereg;
  ]
