(* Tests for the glibc-shim surface: unified read/write across FD kinds,
   fcntl, socket options, name resolution. *)

module L = Socksdirect.Libsd
module Shim = Socksdirect.Shim
open Helpers

let echo_server w host ~port =
  let ready = ref false in
  ignore
    (spawn w "shim-server" (fun () ->
         let ctx = L.init host in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let b = Bytes.create 16 in
         let n = L.recv th fd b ~off:0 ~len:16 in
         ignore (L.send th fd b ~off:0 ~len:n)));
  ready

let test_unified_read_write () =
  let w = make_world () in
  let h = add_host w in
  let ready = echo_server w h ~port:130 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      (* The same read/write calls drive a socket... *)
      let sfd = L.socket th in
      L.connect th sfd ~dst:h ~port:130;
      ignore (Shim.write th sfd (Bytes.of_string "via-shim") ~off:0 ~len:8);
      let b = Bytes.create 8 in
      let got = ref 0 in
      while !got < 8 do
        got := !got + Shim.read th sfd b ~off:!got ~len:(8 - !got)
      done;
      check_bytes "socket echo through shim" (Bytes.of_string "via-shim") b;
      (* ...and a kernel pipe exposed through the same FD space. *)
      let kproc = L.kernel_process ctx in
      let r, wr = Sds_kernel.Kernel.pipe kproc in
      let rfd = L.register_kernel_fd th r in
      let wfd = L.register_kernel_fd th wr in
      ignore (Shim.write th wfd (Bytes.of_string "pipe") ~off:0 ~len:4);
      let d = Bytes.create 4 in
      let got = ref 0 in
      while !got < 4 do
        got := !got + Shim.read th rfd d ~off:!got ~len:(4 - !got)
      done;
      check_bytes "pipe through same API" (Bytes.of_string "pipe") d;
      Shim.close th rfd;
      Shim.close th wfd)

let test_fcntl () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      Alcotest.(check int) "initially blocking" 0 (Shim.fcntl th fd Shim.F_GETFL);
      ignore (Shim.fcntl th fd (Shim.F_SETFL { nonblock = true }));
      Alcotest.(check int) "nonblocking set" 1 (Shim.fcntl th fd Shim.F_GETFL);
      let fd2 = Shim.fcntl th fd Shim.F_DUPFD in
      Alcotest.(check bool) "dupfd allocates" true (fd2 > fd))

let test_sockopts () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      Alcotest.(check int) "default sndbuf = ring size" (64 * 1024)
        (Shim.getsockopt th fd Shim.SO_SNDBUF);
      Shim.setsockopt th fd Shim.SO_SNDBUF 262144;
      Alcotest.(check int) "request round-trips" 262144 (Shim.getsockopt th fd Shim.SO_SNDBUF);
      (* Compatibility no-ops must not raise. *)
      Shim.setsockopt th fd Shim.TCP_NODELAY 1;
      Shim.setsockopt th fd Shim.SO_REUSEADDR 1;
      Shim.setsockopt th fd Shim.SO_KEEPALIVE 1;
      Alcotest.(check int) "no error" 0 (Shim.getsockopt th fd Shim.SO_ERROR);
      Alcotest.check_raises "SO_ERROR read-only"
        (Invalid_argument "setsockopt: SO_ERROR is read-only") (fun () ->
          Shim.setsockopt th fd Shim.SO_ERROR 0))

let test_names () =
  let w = make_world () in
  let h = add_host w in
  let ready = echo_server w h ~port:131 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      Alcotest.check_raises "getpeername before connect"
        (Invalid_argument "getpeername: not connected") (fun () ->
          ignore (Shim.getpeername th fd));
      L.connect th fd ~dst:h ~port:131;
      let peer_host, peer_port = Shim.getpeername th fd in
      Alcotest.(check int) "peer host" (Sds_transport.Host.id h) peer_host;
      Alcotest.(check int) "peer port" 131 peer_port;
      ignore (L.send th fd (Bytes.of_string "x") ~off:0 ~len:1))

let test_open_file () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let ffd = Shim.open_file th "/etc/config" in
      (match L.lookup th ffd with
      | L.K _ -> ()
      | _ -> Alcotest.fail "expected kernel-backed fd");
      (* Socket FDs and file FDs share the namespace with lowest-first
         allocation (§4.5.1). *)
      let sfd = L.socket th in
      Alcotest.(check int) "contiguous FD space" (ffd + 1) sfd;
      Shim.close th ffd;
      let sfd2 = L.socket th in
      Alcotest.(check int) "file fd recycled for a socket" ffd sfd2)

let suite =
  [
    Alcotest.test_case "unified read/write across fd kinds" `Quick test_unified_read_write;
    Alcotest.test_case "fcntl" `Quick test_fcntl;
    Alcotest.test_case "socket options" `Quick test_sockopts;
    Alcotest.test_case "getsockname/getpeername" `Quick test_names;
    Alcotest.test_case "open_file shares the fd namespace" `Quick test_open_file;
  ]
