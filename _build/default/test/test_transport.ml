(* Tests for the transport layer: messages, SHM channels (timing, credits,
   interrupt hooks), the RDMA NIC model (ordering, batching, QP cache,
   hairpin), hosts. *)

open Sds_sim
open Sds_transport
open Helpers

(* ---- Msg ---- *)

let test_msg_inline () =
  let m = Msg.data_string "abcdef" in
  Alcotest.(check int) "payload len" 6 (Msg.payload_len m);
  Alcotest.(check int) "ring len = payload for inline" 6 (Msg.ring_len m);
  Alcotest.(check string) "bytes" "abcdef" (Bytes.to_string (Msg.to_bytes m))

let test_msg_pages () =
  let pages = Array.init 2 (fun _ -> Sds_vm.Page.create ~owner:1) in
  Bytes.fill pages.(0).Sds_vm.Page.data 0 4096 'A';
  Bytes.fill pages.(1).Sds_vm.Page.data 0 4096 'B';
  let m = Msg.make (Msg.Pages (pages, 5000)) in
  Alcotest.(check int) "payload len" 5000 (Msg.payload_len m);
  Alcotest.(check int) "ring len = 8B per page address" 16 (Msg.ring_len m);
  let b = Msg.to_bytes m in
  Alcotest.(check char) "first page" 'A' (Bytes.get b 0);
  Alcotest.(check char) "second page" 'B' (Bytes.get b 4500)

(* ---- Shm_chan ---- *)

let test_shm_delivery_latency () =
  let w = make_world () in
  let chan = Shm_chan.create w.engine ~cost:w.cost () in
  let got_at = ref (-1) in
  run w (fun () ->
      (match Shm_chan.try_send chan (Msg.data_string "x") with
      | Shm_chan.Sent -> ()
      | Shm_chan.Full -> Alcotest.fail "unexpected Full");
      let sent_done = Engine.now w.engine in
      (* Not visible synchronously: one cache migration of delay. *)
      Alcotest.(check bool) "not yet visible" true (Shm_chan.try_recv chan = None);
      Proc.sleep_ns w.cost.Cost.cache_migration;
      (match Shm_chan.try_recv chan with
      | Some m -> Alcotest.(check string) "content" "x" (Bytes.to_string (Msg.to_bytes m))
      | None -> Alcotest.fail "message not delivered");
      got_at := Engine.now w.engine - sent_done);
  Alcotest.(check bool) "visible after cache migration" true (!got_at >= w.cost.Cost.cache_migration)

let test_shm_flow_control () =
  let w = make_world () in
  let chan = Shm_chan.create w.engine ~cost:w.cost ~ring_size:256 () in
  run w (fun () ->
      let sent = ref 0 in
      let full = ref false in
      while not !full do
        match Shm_chan.try_send chan (Msg.data (Bytes.make 56 'f')) with
        | Shm_chan.Sent -> incr sent
        | Shm_chan.Full -> full := true
      done;
      Alcotest.(check int) "ring capacity respected" 4 !sent;
      (* Drain; credit returns restore send capacity. *)
      Proc.sleep_ns 1_000;
      for _ = 1 to !sent do
        match Shm_chan.try_recv chan with
        | Some _ -> ()
        | None -> Alcotest.fail "expected message"
      done;
      Proc.sleep_ns 1_000;
      (match Shm_chan.try_send chan (Msg.data (Bytes.make 56 'g')) with
      | Shm_chan.Sent -> ()
      | Shm_chan.Full -> Alcotest.fail "credits not returned"))

let test_shm_fifo_content () =
  let w = make_world () in
  let chan = Shm_chan.create w.engine ~cost:w.cost () in
  run w (fun () ->
      for i = 1 to 50 do
        match Shm_chan.try_send chan (Msg.data_string (Printf.sprintf "m%03d" i)) with
        | Shm_chan.Sent -> ()
        | Shm_chan.Full -> Alcotest.fail "full"
      done;
      Proc.sleep_ns 1_000;
      for i = 1 to 50 do
        match Shm_chan.try_recv chan with
        | Some m ->
          Alcotest.(check string) "order" (Printf.sprintf "m%03d" i) (Bytes.to_string (Msg.to_bytes m))
        | None -> Alcotest.fail "missing message"
      done)

let test_shm_interrupt_hook () =
  let w = make_world () in
  let chan = Shm_chan.create w.engine ~cost:w.cost () in
  let hook_fired = ref 0 in
  Shm_chan.set_interrupt_hook chan (fun _ -> incr hook_fired);
  run w (fun () ->
      ignore (Shm_chan.try_send chan (Msg.data_string "a"));
      Proc.sleep_ns 1_000;
      Alcotest.(check int) "no hook in polling mode" 0 !hook_fired;
      Shm_chan.set_mode chan Shm_chan.Interrupt;
      ignore (Shm_chan.try_send chan (Msg.data_string "b"));
      Proc.sleep_ns 1_000;
      Alcotest.(check int) "hook fired in interrupt mode" 1 !hook_fired)

(* Property: the SHM channel delivers any message sequence FIFO and intact,
   under arbitrary interleavings of sends and receives. *)
let prop_shm_fifo_model =
  QCheck.Test.make ~name:"shm channel matches a model queue" ~count:60
    QCheck.(list (pair bool (string_of_size (Gen.int_range 0 120))))
    (fun ops ->
      let w = make_world () in
      let chan = Shm_chan.create w.engine ~cost:w.cost ~ring_size:4096 () in
      let model = Queue.create () in
      let ok = ref true in
      run w (fun () ->
          List.iter
            (fun (is_send, payload) ->
              if is_send then begin
                match Shm_chan.try_send chan (Msg.data_string payload) with
                | Shm_chan.Sent -> Queue.push payload model
                | Shm_chan.Full -> ()
              end
              else begin
                (* Let in-flight deliveries land before receiving. *)
                Proc.sleep_ns (w.cost.Cost.cache_migration + 1);
                match (Shm_chan.try_recv chan, Queue.take_opt model) with
                | Some m, Some expected ->
                  if Bytes.to_string (Msg.to_bytes m) <> expected then ok := false
                | None, None -> ()
                | None, Some _ ->
                  (* Model has it but the wire hasn't delivered yet is
                     impossible after the sleep; flag it. *)
                  ok := false
                | Some _, None -> ok := false
              end)
            ops;
          (* Drain the rest in order. *)
          Proc.sleep_ns 1_000;
          let rec drain () =
            match (Shm_chan.try_recv chan, Queue.take_opt model) with
            | Some m, Some expected ->
              if Bytes.to_string (Msg.to_bytes m) <> expected then ok := false;
              drain ()
            | None, None -> ()
            | _ -> ok := false
          in
          drain ());
      !ok)

(* ---- NIC ---- *)

let nic_pair w =
  let h1 = add_host w and h2 = add_host w in
  let n1 = Host.nic h1 and n2 = Host.nic h2 in
  let cq1 = Nic.create_cq n1 and cq2 = Nic.create_cq n2 in
  (n1, n2, cq1, cq2)

let test_rdma_write_ordering_and_completion () =
  let w = make_world () in
  let n1, n2, cq1, cq2 = nic_pair w in
  let delivered = ref [] in
  run w (fun () ->
      let qa, qb = Nic.connect_qps n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
      Nic.set_remote_sink qb (fun m -> delivered := Bytes.to_string (Msg.to_bytes m) :: !delivered);
      Nic.set_remote_sink qa (fun _ -> ());
      for i = 1 to 5 do
        Nic.write_imm qa (Msg.data_string (Printf.sprintf "w%d" i)) ~imm:i
      done;
      Proc.sleep_ns 100_000;
      Alcotest.(check (list string)) "in order" [ "w1"; "w2"; "w3"; "w4"; "w5" ] (List.rev !delivered);
      (* Write-with-immediate posts receive completions; data committed
         before its completion is observable. *)
      Alcotest.(check int) "receive completions" 5 (Nic.cq_pending cq2))

let test_rdma_batching_amortizes_wqes () =
  let w = make_world () in
  let n1, n2, cq1, cq2 = nic_pair w in
  run w (fun () ->
      let qa, qb = Nic.connect_qps n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
      Nic.set_batching qa true;
      let received = ref 0 in
      Nic.set_remote_sink qb (fun _ -> incr received);
      (* Overrun the in-flight window: the excess must flush as batches. *)
      for i = 1 to 1000 do
        Nic.write_imm qa (Msg.data_string "m") ~imm:i
      done;
      Proc.sleep_ns 10_000_000;
      Alcotest.(check int) "all messages arrived" 1000 !received;
      Alcotest.(check bool) "batched flushes happened" true (Nic.batched_flushes qa > 0);
      let tx_ops, tx_msgs, _, _ = Nic.stats n1 in
      Alcotest.(check int) "message count" 1000 tx_msgs;
      Alcotest.(check bool) "fewer WQEs than messages" true (tx_ops < 1000))

let test_rdma_unbatched_one_wqe_per_msg () =
  let w = make_world () in
  let n1, n2, cq1, cq2 = nic_pair w in
  run w (fun () ->
      let qa, qb = Nic.connect_qps n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
      Nic.set_remote_sink qb (fun _ -> ());
      for i = 1 to 200 do
        Nic.write_imm qa (Msg.data_string "m") ~imm:i
      done;
      Proc.sleep_ns 10_000_000;
      let tx_ops, tx_msgs, _, _ = Nic.stats n1 in
      Alcotest.(check int) "messages" 200 tx_msgs;
      Alcotest.(check int) "one WQE per message" 200 tx_ops)

let test_rdma_qp_cache_pressure () =
  let cost = { Cost.default with Cost.nic_qp_cache_entries = 4 } in
  let w = make_world ~cost () in
  let n1, n2, cq1, cq2 = nic_pair w in
  run w (fun () ->
      (* More QPs than cache entries -> misses on the data path. *)
      let qps =
        List.init 8 (fun _ -> Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2)
      in
      List.iter (fun (_, qb) -> Nic.set_remote_sink qb (fun _ -> ())) qps;
      List.iter (fun (qa, _) -> Nic.write_imm qa (Msg.data_string "x") ~imm:1) qps;
      Proc.sleep_ns 1_000_000;
      let _, _, _, misses = Nic.stats n1 in
      Alcotest.(check bool) "cache misses recorded" true (misses > 0))

let test_rdma_destroy_qp_counts () =
  let w = make_world () in
  let n1, n2, cq1, cq2 = nic_pair w in
  run w (fun () ->
      let qa, _qb = Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
      Alcotest.(check int) "one qp live on n1" 1 (Nic.live_qps n1);
      Nic.destroy_qp qa;
      Alcotest.(check int) "n1 freed" 0 (Nic.live_qps n1);
      Alcotest.(check int) "n2 freed" 0 (Nic.live_qps n2))

let test_hairpin_latency () =
  let w = make_world () in
  let h = add_host w in
  let arrived_at = ref 0 in
  run w (fun () ->
      let t0 = Engine.now w.engine in
      Nic.hairpin (Host.nic h) (Msg.data_string "hp") ~deliver:(fun _ -> arrived_at := Engine.now w.engine - t0);
      Proc.sleep_ns 10_000);
  Alcotest.(check int) "one-way = half the Table-2 round trip"
    (Cost.default.Cost.nic_hairpin / 2) !arrived_at

let loss_delivery_test ~recovery () =
  let w = make_world () in
  let n1, n2, cq1, cq2 = nic_pair w in
  Nic.set_loss n1 ~ppm:50_000 ~recovery ~seed:11;
  let got = ref [] in
  run w (fun () ->
      let qa, qb = Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
      Nic.set_remote_sink qb (fun m -> got := Bytes.to_string (Msg.to_bytes m) :: !got);
      for i = 1 to 400 do
        Nic.wait_send_capacity qa;
        Nic.write_imm qa (Msg.data_string (Printf.sprintf "%04d" i)) ~imm:i
      done;
      Proc.sleep_ns 50_000_000);
  let received = List.rev !got in
  (* Exactly-once, in-order delivery despite 5% loss. *)
  Alcotest.(check int) "all messages delivered" 400 (List.length received);
  Alcotest.(check (list string)) "strictly in order"
    (List.init 400 (fun i -> Printf.sprintf "%04d" (i + 1)))
    received;
  Alcotest.(check bool) "losses actually happened" true (Nic.retransmits n1 > 0)

let test_loss_latency_cost () =
  (* A lossy fabric must cost latency; go-back-N more than selective. *)
  let mean_rtt recovery ppm =
    let w = make_world () in
    let h1 = add_host w in
    let h2 = add_host w in
    Nic.set_loss (Host.nic h1) ~ppm ~recovery ~seed:13;
    Nic.set_loss (Host.nic h2) ~ppm ~recovery ~seed:14;
    let s =
      Sds_experiments.Common.pingpong
        (module Sds_experiments.Raw_stacks.Raw_rdma)
        { Sds_experiments.Common.engine = w.engine; cost = w.cost; rng = w.rng; hosts = [ h1; h2 ] }
        ~client_host:h1 ~server_host:h2 ~size:8 ~rounds:300 ~warmup:10
    in
    s.Stats.mean_v
  in
  let clean = mean_rtt Nic.Selective 0 in
  let sel = mean_rtt Nic.Selective 30_000 in
  let gbn = mean_rtt Nic.Go_back_n 30_000 in
  Alcotest.(check bool) "loss costs latency" true (sel > clean);
  Alcotest.(check bool) "go-back-N costs at least selective" true (gbn >= sel)

let test_qp_rate_limit_isolation () =
  (* Two QPs on one NIC; shaping one must cap its goodput without touching
     the other (performance isolation, Table 3). *)
  let w = make_world () in
  let n1, n2, cq1, cq2 = nic_pair w in
  let recv_a = ref 0 and recv_b = ref 0 in
  run w (fun () ->
      let qa, pa = Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
      let qb, pb = Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
      Nic.set_remote_sink pa (fun m -> recv_a := !recv_a + Sds_transport.Msg.payload_len m);
      Nic.set_remote_sink pb (fun m -> recv_b := !recv_b + Sds_transport.Msg.payload_len m);
      (* Shape flow A to ~1 GB/s; leave B unshaped. *)
      Nic.set_rate_limit qa ~bytes_per_sec:1e9 ~burst_bytes:8192;
      let payload = Bytes.make 4096 'q' in
      for i = 1 to 400 do
        Nic.wait_send_capacity qa;
        Nic.write_imm qa (Msg.data (Bytes.copy payload)) ~imm:i;
        Nic.wait_send_capacity qb;
        Nic.write_imm qb (Msg.data (Bytes.copy payload)) ~imm:i
      done;
      Proc.sleep_ns 3_000_000);
  (* Both delivered everything... *)
  Alcotest.(check int) "A complete" (400 * 4096) !recv_a;
  Alcotest.(check int) "B complete" (400 * 4096) !recv_b

let test_qp_rate_limit_caps_throughput () =
  let w = make_world () in
  let n1, n2, cq1, cq2 = nic_pair w in
  let done_at_a = ref 0 and done_at_b = ref 0 in
  run w (fun () ->
      let qa, pa = Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
      let qb, pb = Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
      let total = 200 * 4096 in
      let seen_a = ref 0 and seen_b = ref 0 in
      Nic.set_remote_sink pa (fun m ->
          seen_a := !seen_a + Sds_transport.Msg.payload_len m;
          if !seen_a = total then done_at_a := Sds_sim.Engine.now w.engine);
      Nic.set_remote_sink pb (fun m ->
          seen_b := !seen_b + Sds_transport.Msg.payload_len m;
          if !seen_b = total then done_at_b := Sds_sim.Engine.now w.engine);
      (* A shaped to 1 GB/s: 200 x 4 KiB should take >= ~800 us. *)
      Nic.set_rate_limit qa ~bytes_per_sec:1e9 ~burst_bytes:4096;
      let payload = Bytes.make 4096 'r' in
      for i = 1 to 200 do
        Nic.wait_send_capacity qa;
        Nic.write_imm qa (Msg.data (Bytes.copy payload)) ~imm:i
      done;
      for i = 1 to 200 do
        Nic.wait_send_capacity qb;
        Nic.write_imm qb (Msg.data (Bytes.copy payload)) ~imm:i
      done;
      Proc.sleep_ns 5_000_000);
  Alcotest.(check bool) "shaped flow ran at ~1 GB/s" true (!done_at_a > 700_000);
  Alcotest.(check bool) "unshaped flow much faster" true (!done_at_b < !done_at_a)

let test_host_identity () =
  let w = make_world () in
  let h1 = add_host w and h2 = add_host w in
  Alcotest.(check bool) "same host" true (Host.same_host h1 h1);
  Alcotest.(check bool) "different hosts" false (Host.same_host h1 h2);
  Alcotest.(check bool) "cores wrap" true (Host.core h1 100 == Host.core h1 (100 mod Host.num_cores h1))

let suite =
  [
    Alcotest.test_case "msg inline" `Quick test_msg_inline;
    Alcotest.test_case "msg pages" `Quick test_msg_pages;
    Alcotest.test_case "shm delivery latency" `Quick test_shm_delivery_latency;
    Alcotest.test_case "shm flow control + credit return" `Quick test_shm_flow_control;
    Alcotest.test_case "shm fifo content" `Quick test_shm_fifo_content;
    Alcotest.test_case "shm interrupt hook" `Quick test_shm_interrupt_hook;
    QCheck_alcotest.to_alcotest prop_shm_fifo_model;
    Alcotest.test_case "rdma ordering + completions" `Quick test_rdma_write_ordering_and_completion;
    Alcotest.test_case "rdma adaptive batching" `Quick test_rdma_batching_amortizes_wqes;
    Alcotest.test_case "rdma unbatched WQE per message" `Quick test_rdma_unbatched_one_wqe_per_msg;
    Alcotest.test_case "rdma qp cache pressure" `Quick test_rdma_qp_cache_pressure;
    Alcotest.test_case "rdma destroy qp" `Quick test_rdma_destroy_qp_counts;
    Alcotest.test_case "nic hairpin latency" `Quick test_hairpin_latency;
    Alcotest.test_case "lossy fabric: selective retransmission" `Quick (loss_delivery_test ~recovery:Nic.Selective);
    Alcotest.test_case "lossy fabric: go-back-N" `Quick (loss_delivery_test ~recovery:Nic.Go_back_n);
    Alcotest.test_case "loss recovery latency ordering" `Quick test_loss_latency_cost;
    Alcotest.test_case "qos: shaped flow still delivers" `Quick test_qp_rate_limit_isolation;
    Alcotest.test_case "qos: rate cap and isolation" `Quick test_qp_rate_limit_caps_throughput;
    Alcotest.test_case "host identity & cores" `Quick test_host_identity;
  ]
