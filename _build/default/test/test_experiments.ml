(* Smoke tests over the experiment harness: each checked relation is one of
   the paper's headline claims, asserted on small configurations so the
   whole suite stays fast. *)

module C = Sds_experiments.Common
module Sapi = Sds_apps.Sock_api

let pingpong_us (module Api : Sapi.S) ~intra =
  let w = C.make_world () in
  let h1 = C.add_host w in
  let h2 = if intra then h1 else C.add_host w in
  let s = C.pingpong (module Api) w ~client_host:h1 ~server_host:h2 ~size:8 ~rounds:60 ~warmup:10 in
  s.Sds_sim.Stats.mean_v /. 1e3

let tput (module Api : Sapi.S) ~intra ~pairs =
  let w = C.make_world () in
  let h1 = C.add_host w in
  let h2 = if intra then h1 else C.add_host w in
  C.stream_tput (module Api) w ~client_host:h1 ~server_host:h2 ~size:8 ~pairs
    ~warmup_ns:500_000 ~window_ns:2_000_000

let test_headline_latency () =
  let sd = pingpong_us (module Sapi.Sds) ~intra:true in
  let lx = pingpong_us (module Sapi.Linux) ~intra:true in
  (* "17~35x better latency than Linux socket" (intra-host). *)
  Alcotest.(check bool) "SD intra RTT well under 1 us" true (sd < 1.0);
  Alcotest.(check bool) "at least 17x better than Linux" true (lx /. sd >= 17.0)

let test_inter_close_to_rdma () =
  let sd = pingpong_us (module Sapi.Sds) ~intra:false in
  let rdma = pingpong_us (module Sds_experiments.Raw_stacks.Raw_rdma) ~intra:false in
  (* "almost the same as raw RDMA write": within 15%. *)
  Alcotest.(check bool) "SD inter RTT close to raw RDMA" true (sd < rdma *. 1.15)

let test_headline_throughput () =
  let sd = tput (module Sapi.Sds) ~intra:true ~pairs:1 in
  let lx = tput (module Sapi.Linux) ~intra:true ~pairs:1 in
  (* "7~20x better message throughput". *)
  Alcotest.(check bool) "SD >= 15 M msg/s intra" true (sd >= 15e6);
  Alcotest.(check bool) "at least 7x Linux" true (sd /. lx >= 7.0)

let test_multicore_scaling () =
  let one = tput (module Sapi.Sds) ~intra:true ~pairs:1 in
  let four = tput (module Sapi.Sds) ~intra:true ~pairs:4 in
  (* "throughput is scalable with number of CPU cores". *)
  Alcotest.(check bool) "4 pairs ~ 4x one pair" true (four >= 3.5 *. one)

let test_libvma_collapse () =
  let one = tput (module Sapi.Libvma) ~intra:false ~pairs:1 in
  let w = C.make_world () in
  let h1 = C.add_host w in
  let h2 = C.add_host w in
  Sds_baselines.Libvma.set_threads (Sds_baselines.Libvma.stack_for h1) 3;
  let three =
    C.stream_tput (module Sapi.Libvma) w ~client_host:h1 ~server_host:h2 ~size:8 ~pairs:3
      ~warmup_ns:500_000 ~window_ns:2_000_000
  in
  (* Figure 9: 1/10 of single-thread throughput with three or more threads. *)
  Alcotest.(check bool) "aggregate collapses below single-thread" true (three < one)

let test_zero_copy_crossover () =
  (* Figure 7a at >= 16 KiB: zero copy beats the copying configuration. *)
  let big (module Api : Sapi.S) =
    let w = C.make_world () in
    let h = C.add_host w in
    C.stream_tput (module Api) w ~client_host:h ~server_host:h ~size:65536 ~pairs:1
      ~warmup_ns:1_000_000 ~window_ns:5_000_000
  in
  let zc = big (module Sapi.Sds) in
  let nozc = big (module Sapi.Sds_unopt) in
  Alcotest.(check bool) "zero copy wins at 64 KiB" true (zc > 2.0 *. nozc)

let test_batching_gain () =
  let b = tput (module Sapi.Sds) ~intra:false ~pairs:1 in
  let ub = tput (module Sapi.Sds_unopt) ~intra:false ~pairs:1 in
  (* Figure 8a: batched inter-host small messages beat unbatched. *)
  Alcotest.(check bool) "batching gains on 8 B messages" true (b > 1.5 *. ub)

let test_qp_cache_degradation () =
  let few = Sds_experiments.Qpscale.point ~qps:16 in
  let many = Sds_experiments.Qpscale.point ~qps:8192 in
  Alcotest.(check bool) "latency grows past the QP cache" true (many > few *. 1.2)

let suite =
  [
    Alcotest.test_case "headline: 17-35x latency vs Linux" `Slow test_headline_latency;
    Alcotest.test_case "headline: inter-host ~ raw RDMA" `Slow test_inter_close_to_rdma;
    Alcotest.test_case "headline: 7-20x throughput vs Linux" `Slow test_headline_throughput;
    Alcotest.test_case "multicore scaling" `Slow test_multicore_scaling;
    Alcotest.test_case "libvma multi-thread collapse" `Slow test_libvma_collapse;
    Alcotest.test_case "zero-copy crossover at 16KiB+" `Slow test_zero_copy_crossover;
    Alcotest.test_case "adaptive batching gain" `Slow test_batching_gain;
    Alcotest.test_case "qp cache degradation" `Slow test_qp_cache_degradation;
  ]
