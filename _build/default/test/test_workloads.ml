(* Tests for the workload-distribution library. *)

module Dist = Sds_workloads.Dist
module Rng = Sds_sim.Rng

let prop_sizes_in_range =
  QCheck.Test.make ~name:"uniform sizes stay in range" ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 0 1000))
    (fun (a, extra) ->
      let rng = Rng.create ~seed:(a + extra) in
      let v = Dist.sample_size rng (Dist.Uniform (a, a + extra)) in
      v >= a && v <= a + extra)

let test_internet_mix_shape () =
  let rng = Rng.create ~seed:5 in
  let n = 20_000 in
  let tiny = ref 0 and bulk = ref 0 in
  let total = ref 0 and bulk_bytes = ref 0 in
  for _ = 1 to n do
    let s = Dist.sample_size rng Dist.Internet_mix in
    total := !total + s;
    if s <= 64 then incr tiny;
    if s >= 4096 then begin
      incr bulk;
      bulk_bytes := !bulk_bytes + s
    end
  done;
  (* ~40% tiny by count, bulk ~10% by count but most of the bytes. *)
  Alcotest.(check bool) "tiny fraction ~40%" true
    (!tiny > n * 35 / 100 && !tiny < n * 45 / 100);
  Alcotest.(check bool) "bulk fraction ~10%" true
    (!bulk > n * 7 / 100 && !bulk < n * 13 / 100);
  Alcotest.(check bool) "bulk dominates bytes" true
    (float_of_int !bulk_bytes > 0.5 *. float_of_int !total)

let test_bimodal () =
  let rng = Rng.create ~seed:6 in
  let large = ref 0 in
  for _ = 1 to 10_000 do
    if Dist.sample_size rng (Dist.Bimodal { small = 64; large = 65536; large_percent = 25 }) = 65536
    then incr large
  done;
  Alcotest.(check bool) "large ~25%" true (!large > 2200 && !large < 2800)

let test_zipf_skew () =
  let z = Dist.zipf ~n:1000 ~s:1.0 in
  let rng = Rng.create ~seed:7 in
  let hits = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let k = Dist.sample_zipf rng z in
    hits.(k) <- hits.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 hottest" true (hits.(0) > hits.(10));
  Alcotest.(check bool) "rank 10 hotter than 500" true (hits.(10) > hits.(500));
  (* Zipf(1.0): rank 0 should carry roughly 1/H(1000) ~ 13% of hits. *)
  Alcotest.(check bool) "head mass plausible" true (hits.(0) > 4_000 && hits.(0) < 9_000)

let prop_zipf_in_bounds =
  QCheck.Test.make ~name:"zipf rank in bounds" ~count:200
    QCheck.(pair (int_range 1 50) small_int)
    (fun (n, seed) ->
      let z = Dist.zipf ~n ~s:1.2 in
      let rng = Rng.create ~seed in
      let k = Dist.sample_zipf rng z in
      k >= 0 && k < n)

let test_poisson_mean () =
  let rng = Rng.create ~seed:8 in
  let n = 50_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Dist.poisson_gap_ns rng ~rate_per_sec:1_000_000.
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* Target gap 1000 ns; allow 5%. *)
  Alcotest.(check bool) "mean gap ~1us" true (mean > 950. && mean < 1050.)

let test_invalid_args () =
  let rng = Rng.create ~seed:9 in
  Alcotest.check_raises "empty uniform" (Invalid_argument "Dist.sample_size: empty range")
    (fun () -> ignore (Dist.sample_size rng (Dist.Uniform (10, 5))));
  Alcotest.check_raises "bad rate" (Invalid_argument "Dist.poisson_gap_ns: rate must be positive")
    (fun () -> ignore (Dist.poisson_gap_ns rng ~rate_per_sec:0.));
  Alcotest.check_raises "bad zipf" (Invalid_argument "Dist.zipf: n must be positive") (fun () ->
      ignore (Dist.zipf ~n:0 ~s:1.0))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_sizes_in_range;
    Alcotest.test_case "internet mix shape" `Quick test_internet_mix_shape;
    Alcotest.test_case "bimodal split" `Quick test_bimodal;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    QCheck_alcotest.to_alcotest prop_zipf_in_bounds;
    Alcotest.test_case "poisson mean gap" `Quick test_poisson_mean;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
  ]
