(* Tests for the baseline stacks (RSocket / LibVMA models) and the Table 3
   feature matrix. *)

module R = Sds_baselines.Rsocket
module V = Sds_baselines.Libvma
module F = Sds_baselines.Features
open Helpers

let test_rsocket_echo_inter () =
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let ready = ref false in
  ignore
    (spawn w "rs-server" (fun () ->
         let l = R.listen h2 ~port:100 in
         ready := true;
         let c = R.accept l in
         let b = Bytes.create 8 in
         let n = R.recv c b ~off:0 ~len:8 in
         ignore (R.send c b ~off:0 ~len:n)));
  run w (fun () ->
      wait_for ready;
      let c = R.connect h1 ~dst:h2 ~port:100 in
      ignore (R.send c (Bytes.of_string "rsocket!") ~off:0 ~len:8);
      let b = Bytes.create 8 in
      let got = ref 0 in
      while !got < 8 do
        got := !got + R.recv c b ~off:!got ~len:(8 - !got)
      done;
      Alcotest.(check string) "echo" "rsocket!" (Bytes.to_string b))

let test_rsocket_intra_uses_hairpin () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  let rtt = ref 0 in
  ignore
    (spawn w "rs-hp-server" (fun () ->
         let l = R.listen h ~port:101 in
         ready := true;
         let c = R.accept l in
         let b = Bytes.create 4 in
         let n = R.recv c b ~off:0 ~len:4 in
         ignore (R.send c b ~off:0 ~len:n)));
  run w (fun () ->
      wait_for ready;
      let c = R.connect h ~dst:h ~port:101 in
      let t0 = Sds_sim.Engine.now w.engine in
      ignore (R.send c (Bytes.of_string "ping") ~off:0 ~len:4);
      let b = Bytes.create 4 in
      let got = ref 0 in
      while !got < 4 do
        got := !got + R.recv c b ~off:!got ~len:(4 - !got)
      done;
      rtt := Sds_sim.Engine.now w.engine - t0);
  (* Intra-host traffic goes through the NIC: RTT must include at least one
     full hairpin (the whole point of SocksDirect's SHM path). *)
  Alcotest.(check bool) "hairpin latency paid" true (!rtt >= Sds_sim.Cost.default.Sds_sim.Cost.nic_hairpin)

let test_rsocket_no_epoll_no_fork () =
  Alcotest.check_raises "epoll unsupported" (R.Not_supported "rsocket: epoll not supported")
    (fun () -> R.epoll ());
  Alcotest.check_raises "fork unsupported" (R.Not_supported "rsocket: fork not supported")
    (fun () -> R.fork ())

let test_libvma_echo_inter () =
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let ready = ref false in
  ignore
    (spawn w "vma-server" (fun () ->
         let l = V.listen h2 ~port:102 in
         ready := true;
         let c = V.accept l in
         let b = Bytes.create 6 in
         let got = ref 0 in
         while !got < 6 do
           got := !got + V.recv c b ~off:!got ~len:(6 - !got)
         done;
         ignore (V.send c b ~off:0 ~len:6)));
  run w (fun () ->
      wait_for ready;
      let c = V.connect h1 ~dst:h2 ~port:102 in
      ignore (V.send c (Bytes.of_string "libvma") ~off:0 ~len:6);
      let b = Bytes.create 6 in
      let got = ref 0 in
      while !got < 6 do
        got := !got + V.recv c b ~off:!got ~len:(6 - !got)
      done;
      Alcotest.(check string) "echo" "libvma" (Bytes.to_string b))

let test_libvma_intra_kernel_fallback () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  ignore
    (spawn w "vma-intra-server" (fun () ->
         let l = V.listen h ~port:103 in
         ready := true;
         let c = V.accept l in
         let b = Bytes.create 2 in
         let got = ref 0 in
         while !got < 2 do
           got := !got + V.recv c b ~off:!got ~len:(2 - !got)
         done;
         ignore (V.send c b ~off:0 ~len:2)));
  run w (fun () ->
      wait_for ready;
      let c = V.connect h ~dst:h ~port:103 in
      ignore (V.send c (Bytes.of_string "ok") ~off:0 ~len:2);
      let b = Bytes.create 2 in
      let got = ref 0 in
      while !got < 2 do
        got := !got + V.recv c b ~off:!got ~len:(2 - !got)
      done;
      Alcotest.(check string) "intra fallback works" "ok" (Bytes.to_string b))

let test_libvma_contention_model () =
  let w = make_world () in
  let h = add_host w in
  let stack = V.stack_for h in
  Alcotest.(check int) "one thread: no penalty" 1
    (V.sender_cost stack 8 / V.sender_cost stack 8);
  let single = V.sender_cost stack 8 in
  V.set_threads stack 2;
  let two = V.sender_cost stack 8 in
  V.set_threads stack 4;
  let four = V.sender_cost stack 8 in
  Alcotest.(check bool) "two threads much slower per op" true (two > 4 * single);
  Alcotest.(check bool) "four threads worse still" true (four > two)

let test_features_matrix () =
  (* Spot-check the claims the executable models must agree with. *)
  let get name = match F.find name with Some s -> s | None -> Alcotest.fail ("missing " ^ name) in
  let sd = get "SocksDirect" in
  Alcotest.(check string) "SD epoll" "yes" (F.string_of_support sd.F.epoll);
  Alcotest.(check string) "SD fork" "yes" (F.string_of_support sd.F.full_fork);
  Alcotest.(check string) "SD acl by daemon" "Daemon" sd.F.access_control;
  let rs = get "RSocket/SDP" in
  Alcotest.(check string) "RSocket no epoll" "-" (F.string_of_support rs.F.epoll);
  Alcotest.(check string) "RSocket no fork" "-" (F.string_of_support rs.F.full_fork);
  let vma = get "LibVMA" in
  Alcotest.(check string) "LibVMA no fork" "-" (F.string_of_support vma.F.full_fork);
  Alcotest.(check int) "ten systems" 10 (List.length F.systems)

let suite =
  [
    Alcotest.test_case "rsocket inter-host echo" `Quick test_rsocket_echo_inter;
    Alcotest.test_case "rsocket intra-host pays hairpin" `Quick test_rsocket_intra_uses_hairpin;
    Alcotest.test_case "rsocket lacks epoll and fork" `Quick test_rsocket_no_epoll_no_fork;
    Alcotest.test_case "libvma inter-host echo" `Quick test_libvma_echo_inter;
    Alcotest.test_case "libvma intra-host kernel fallback" `Quick test_libvma_intra_kernel_fallback;
    Alcotest.test_case "libvma lock contention model" `Quick test_libvma_contention_model;
    Alcotest.test_case "table 3 feature matrix" `Quick test_features_matrix;
  ]
