(* Tests for the application layer: HTTP parsing and proxying, the KV store
   protocol, the RPC library, the NF pipeline — each run over both the
   SocksDirect stack and the Linux kernel stack to demonstrate the
   drop-in-replacement property. *)

open Helpers
module Http = Sds_apps.Http
module Sapi = Sds_apps.Sock_api

(* ---- protocol codecs (pure) ---- *)

let test_http_parse_header () =
  Alcotest.(check (option (pair string string)))
    "header" (Some ("content-length", "42"))
    (Http.parse_header_line "Content-Length: 42");
  Alcotest.(check (option (pair string string))) "no colon" None (Http.parse_header_line "garbage")

let test_http_content_length () =
  Alcotest.(check int) "present" 17 (Http.content_length [ ("content-length", "17") ]);
  Alcotest.(check int) "absent" 0 (Http.content_length []);
  Alcotest.(check int) "malformed" 0 (Http.content_length [ ("content-length", "x") ])

let test_rpc_frame_roundtrip () =
  let payload = Bytes.of_string "payload-bytes" in
  let b = Sds_apps.Rpc.frame ~call_id:77 ~meth:"concat" ~payload in
  let id, meth, p = Sds_apps.Rpc.parse b in
  Alcotest.(check int) "call id" 77 id;
  Alcotest.(check string) "method" "concat" meth;
  Alcotest.(check string) "payload" "payload-bytes" (Bytes.to_string p)

let prop_rpc_roundtrip =
  QCheck.Test.make ~name:"rpc frame/parse roundtrip" ~count:100
    QCheck.(triple (int_range 0 1000000) (string_of_size (Gen.int_range 0 30)) (string_of_size (Gen.int_range 0 500)))
    (fun (id, meth, payload) ->
      let b = Sds_apps.Rpc.frame ~call_id:id ~meth ~payload:(Bytes.of_string payload) in
      let id', meth', p' = Sds_apps.Rpc.parse b in
      id' = id && meth' = meth && Bytes.to_string p' = payload)

let test_nf_packet_format () =
  let p = Sds_apps.Nf.make_packet ~seq:123456789 in
  Alcotest.(check int) "packet size" Sds_apps.Nf.packet_bytes (Bytes.length p);
  Alcotest.(check int) "incl_len field" Sds_apps.Nf.packet_payload
    (Int32.to_int (Bytes.get_int32_le p 8))

(* ---- generic end-to-end scenarios, stack-parameterized ---- *)

let http_proxy_scenario (module Api : Sapi.S) () =
  let module H = Http.Make (Api) in
  let w = make_world () in
  let gen_host = add_host w in
  let web_host = add_host w in
  let requests = 5 in
  let upstream_ready = ref false and proxy_ready = ref false in
  ignore
    (spawn w "responder" (fun () ->
         let ep = Api.make_endpoint web_host ~core:2 in
         let l = Api.listen ep ~port:8080 in
         upstream_ready := true;
         H.run_responder ep l ~requests));
  ignore
    (spawn w "proxy" (fun () ->
         wait_for upstream_ready;
         let ep = Api.make_endpoint web_host ~core:1 in
         let l = Api.listen ep ~port:80 in
         proxy_ready := true;
         H.run_proxy ep ~listener:l ~upstream:web_host ~upstream_port:8080 ~requests));
  run w (fun () ->
      wait_for proxy_ready;
      let ep = Api.make_endpoint gen_host ~core:0 in
      let latencies = ref [] in
      H.run_generator ep ~proxy:web_host ~port:80 ~requests ~size:1000
        ~on_latency:(fun ns -> latencies := ns :: !latencies);
      Alcotest.(check int) "all requests answered" requests (List.length !latencies);
      List.iter (fun l -> Alcotest.(check bool) "positive latency" true (l > 0)) !latencies)

let kv_scenario (module Api : Sapi.S) () =
  let module Kv = Sds_apps.Kvstore.Make (Api) in
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let gets = 10 in
  let ready = ref false in
  ignore
    (spawn w "kv-server" (fun () ->
         let ep = Api.make_endpoint h2 ~core:1 in
         let l = Api.listen ep ~port:6379 in
         ready := true;
         Kv.run_server ep l ~requests:(gets + 1)));
  run w (fun () ->
      wait_for ready;
      let ep = Api.make_endpoint h1 ~core:0 in
      let count = ref 0 in
      Kv.run_client ep ~server:h2 ~port:6379 ~gets ~value_size:8 ~on_latency:(fun _ -> incr count);
      Alcotest.(check int) "all GETs served" gets !count)

let kv_set_get_del () =
  (* Protocol-level behaviours beyond the happy path: SET/GET/DEL/miss. *)
  let module Api = Sapi.Sds in
  let module Kv = Sds_apps.Kvstore.Make (Api) in
  let module Io = Sapi.Io (Api) in
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  ignore
    (spawn w "kv2-server" (fun () ->
         let ep = Api.make_endpoint h ~core:1 in
         let l = Api.listen ep ~port:6380 in
         ready := true;
         Kv.run_server ep l ~requests:5));
  run w (fun () ->
      wait_for ready;
      let ep = Api.make_endpoint h ~core:0 in
      let io = Io.make ep (Api.connect ep ~dst:h ~port:6380) in
      Kv.write_command io [ "SET"; "k1"; "v1" ];
      (match Kv.read_bulk io with
      | Some (Some "OK") -> ()
      | _ -> Alcotest.fail "SET failed");
      Kv.write_command io [ "GET"; "k1" ];
      (match Kv.read_bulk io with
      | Some (Some v) -> Alcotest.(check string) "GET value" "v1" v
      | _ -> Alcotest.fail "GET failed");
      Kv.write_command io [ "DEL"; "k1" ];
      (match Kv.read_bulk io with Some (Some "OK") -> () | _ -> Alcotest.fail "DEL failed");
      Kv.write_command io [ "GET"; "k1" ];
      (match Kv.read_bulk io with
      | Some None -> () (* nil: key deleted *)
      | _ -> Alcotest.fail "expected miss");
      Kv.write_command io [ "BOGUS" ];
      match Kv.read_bulk io with
      | Some None -> ()
      | _ -> Alcotest.fail "expected error nil")

let rpc_scenario (module Api : Sapi.S) () =
  let module R = Sds_apps.Rpc.Make (Api) in
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let ready = ref false in
  ignore
    (spawn w "rpc-server" (fun () ->
         let ep = Api.make_endpoint h2 ~core:1 in
         let l = Api.listen ep ~port:8081 in
         ready := true;
         let srv = R.create_server () in
         R.register srv "rev" (fun p ->
             let s = Bytes.to_string p in
             Bytes.of_string (String.init (String.length s) (fun i -> s.[String.length s - 1 - i])));
         R.serve ep l srv ~calls:3));
  run w (fun () ->
      wait_for ready;
      let ep = Api.make_endpoint h1 ~core:0 in
      let client = R.connect ep ~dst:h2 ~port:8081 in
      let r1 = R.call client ~meth:"rev" ~payload:(Bytes.of_string "abcdef") in
      Alcotest.(check string) "reversed" "fedcba" (Bytes.to_string r1);
      let r2 = R.call client ~meth:"rev" ~payload:(Bytes.of_string "xyz") in
      Alcotest.(check string) "second call" "zyx" (Bytes.to_string r2);
      let r3 = R.call client ~meth:"nope" ~payload:Bytes.empty in
      Alcotest.(check string) "unknown method error" "ERR:no-such-method" (Bytes.to_string r3))

let nf_pipeline_scenario () =
  (* Three NF stages over SocksDirect; every packet must reach the sink. *)
  let module Api = Sapi.Sds in
  let module C = Sds_apps.Nf.Sock_channel (Api) in
  let module R = Sds_apps.Nf.Run (C) in
  let module Io = Sapi.Io (Api) in
  let w = make_world () in
  let h = add_host w in
  let packets = 200 in
  let stages = 3 in
  let ready = Array.make (stages + 1) false in
  let sunk = ref 0 in
  for i = 0 to stages do
    let port = 7700 + i in
    ignore
      (spawn w (Fmt.str "nf%d" i) (fun () ->
           let ep = Api.make_endpoint h ~core:(1 + i) in
           let l = Api.listen ep ~port in
           ready.(i) <- true;
           let input = Io.make ep (Api.accept ep l) in
           if i = stages then sunk := R.sink ~input
           else begin
             let out = Io.make ep (Api.connect ep ~dst:h ~port:(port + 1)) in
             ignore (R.nf_stage ~input ~output:out)
           end))
  done;
  run w (fun () ->
      while not (Array.for_all (fun r -> r) ready) do
        Sds_sim.Proc.sleep_ns 1_000
      done;
      let ep = Api.make_endpoint h ~core:0 in
      let out = Io.make ep (Api.connect ep ~dst:h ~port:7700) in
      R.source ~output:out ~packets;
      (* Let the pipeline drain. *)
      Sds_sim.Proc.sleep_ns 50_000_000);
  Alcotest.(check int) "every packet reached the sink" packets !sunk

let test_netbricks_reference () =
  let w = make_world () in
  ignore (add_host w);
  run w (fun () ->
      let n = Sds_apps.Nf.netbricks_pipeline ~stages:4 ~packets:100 in
      Alcotest.(check int) "all stages processed all packets" 400 n)

let memcached_scenario (module Api : Sapi.S) () =
  let module M = Sds_apps.Memcached.Make (Api) in
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let ready = ref false in
  ignore
    (spawn w "mc-server" (fun () ->
         let ep = Api.make_endpoint h2 ~core:1 in
         let l = Api.listen ep ~port:11211 in
         ready := true;
         M.run_server ep l ~requests:6));
  run w (fun () ->
      wait_for ready;
      let ep = Api.make_endpoint h1 ~core:0 in
      let c = M.connect ep ~dst:h2 ~port:11211 in
      Alcotest.(check int) "SET ok" 0 (M.set c ~key:"alpha" ~value:(Bytes.of_string "one"));
      (match M.get c ~key:"alpha" with
      | Some v -> Alcotest.(check string) "GET hit" "one" (Bytes.to_string v)
      | None -> Alcotest.fail "expected hit");
      Alcotest.(check (option string)) "GET miss" None
        (Option.map Bytes.to_string (M.get c ~key:"beta"));
      Alcotest.(check int) "DELETE existing" 0 (M.delete c ~key:"alpha");
      Alcotest.(check int) "DELETE missing" 1 (M.delete c ~key:"alpha");
      Alcotest.(check (option string)) "gone" None (Option.map Bytes.to_string (M.get c ~key:"alpha")))

let test_memcached_codec () =
  let p =
    { Sds_apps.Memcached.magic = Sds_apps.Memcached.req_magic; op = Sds_apps.Memcached.Set;
      status = 0; opaque = 77; key = "the-key"; value = Bytes.of_string "the-value" }
  in
  let b = Sds_apps.Memcached.encode p in
  let magic, op, klen, status, total, opaque = Sds_apps.Memcached.decode_header b in
  Alcotest.(check int) "magic" Sds_apps.Memcached.req_magic magic;
  Alcotest.(check bool) "opcode" true (op = Some Sds_apps.Memcached.Set);
  Alcotest.(check int) "key len" 7 klen;
  Alcotest.(check int) "status" 0 status;
  Alcotest.(check int) "total body" 16 total;
  Alcotest.(check int) "opaque" 77 opaque

let test_prefork_server () =
  let w = make_world () in
  let h = add_host w in
  let workers = 3 and conns_per_worker = 5 in
  let server = Sds_apps.Prefork_server.create h ~port:9400 ~workers in
  let ready = ref false in
  Sds_apps.Prefork_server.start server ~engine:w.engine ~conns_per_worker
    ~handler:Sds_apps.Prefork_server.echo_handler ~on_ready:(fun () -> ready := true);
  run w (fun () ->
      wait_for ready;
      let module L = Socksdirect.Libsd in
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:10 () in
      let buf = Bytes.create 16 in
      for i = 1 to workers * conns_per_worker do
        let fd = L.socket th in
        L.connect th fd ~dst:h ~port:9400;
        let msg = Printf.sprintf "req-%03d" i in
        ignore (L.send th fd (Bytes.of_string msg) ~off:0 ~len:(String.length msg));
        let got = ref 0 in
        while !got < String.length msg do
          let n = L.recv th fd buf ~off:!got ~len:(String.length msg - !got) in
          if n = 0 then failwith "prefork: eof";
          got := !got + n
        done;
        Alcotest.(check string) "echo" msg (Bytes.sub_string buf 0 !got);
        L.close th fd
      done;
      Sds_sim.Proc.sleep_ns 1_000_000);
  Alcotest.(check int) "all served" (workers * conns_per_worker)
    (Sds_apps.Prefork_server.total_served server);
  Array.iter
    (fun n -> Alcotest.(check int) "every worker saw its share" conns_per_worker n)
    (Sds_apps.Prefork_server.served server)

let suite =
  [
    Alcotest.test_case "http header parsing" `Quick test_http_parse_header;
    Alcotest.test_case "http content-length" `Quick test_http_content_length;
    Alcotest.test_case "rpc frame roundtrip" `Quick test_rpc_frame_roundtrip;
    QCheck_alcotest.to_alcotest prop_rpc_roundtrip;
    Alcotest.test_case "nf packet format" `Quick test_nf_packet_format;
    Alcotest.test_case "http proxy over SocksDirect" `Quick (http_proxy_scenario (module Sapi.Sds));
    Alcotest.test_case "http proxy over Linux" `Quick (http_proxy_scenario (module Sapi.Linux));
    Alcotest.test_case "kv store over SocksDirect" `Quick (kv_scenario (module Sapi.Sds));
    Alcotest.test_case "kv store over Linux" `Quick (kv_scenario (module Sapi.Linux));
    Alcotest.test_case "kv SET/GET/DEL semantics" `Quick kv_set_get_del;
    Alcotest.test_case "rpc over SocksDirect" `Quick (rpc_scenario (module Sapi.Sds));
    Alcotest.test_case "rpc over Linux" `Quick (rpc_scenario (module Sapi.Linux));
    Alcotest.test_case "nf pipeline over SocksDirect" `Quick nf_pipeline_scenario;
    Alcotest.test_case "netbricks reference pipeline" `Quick test_netbricks_reference;
    Alcotest.test_case "prefork master/worker server" `Quick test_prefork_server;
    Alcotest.test_case "memcached binary codec" `Quick test_memcached_codec;
    Alcotest.test_case "memcached over SocksDirect" `Quick (memcached_scenario (module Sapi.Sds));
    Alcotest.test_case "memcached over Linux" `Quick (memcached_scenario (module Sapi.Linux));
  ]
