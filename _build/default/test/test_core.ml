(* Tests for the SocksDirect core: tokens, connection setup over SHM and
   RDMA, stream semantics, fork, exec, zero copy, TCP fallback, work
   stealing, epoll, shutdown/close, access control, connection states. *)

module L = Socksdirect.Libsd
module Sock = Socksdirect.Sock
module Monitor = Socksdirect.Monitor
module Token = Socksdirect.Token
module Zerocopy = Socksdirect.Zerocopy
open Helpers

let recv_exact th fd n =
  let b = Bytes.create n in
  let rec fill off =
    if off = n then b
    else
      let got = L.recv th fd b ~off ~len:(n - off) in
      if got = 0 then failwith "unexpected EOF" else fill (off + got)
  in
  fill 0

let send_all th fd b = ignore (L.send th fd b ~off:0 ~len:(Bytes.length b))

(* Server that echoes [rounds] messages of [size] bytes on one accepted
   connection. *)
let echo_server w host ~port ~rounds ~size =
  let ready = ref false in
  ignore
    (spawn w "echo-server" (fun () ->
         let ctx = L.init host in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port;
         L.listen th lfd;
         ready := true;
         let cfd = L.accept th lfd in
         for _ = 1 to rounds do
           let m = recv_exact th cfd size in
           send_all th cfd m
         done));
  ready

let test_intra_pingpong () =
  let w = make_world () in
  let h = add_host w in
  let ready = echo_server w h ~port:80 ~rounds:10 ~size:8 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:80;
      for i = 1 to 10 do
        let msg = Bytes.of_string (Printf.sprintf "ping%04d" i) in
        send_all th fd msg;
        let back = recv_exact th fd 8 in
        check_bytes "echo" msg back
      done;
      L.close th fd)

let test_inter_pingpong () =
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let ready = echo_server w h2 ~port:80 ~rounds:10 ~size:8 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h1 in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h2 ~port:80;
      for i = 1 to 10 do
        let msg = Bytes.of_string (Printf.sprintf "PING%04d" i) in
        send_all th fd msg;
        let back = recv_exact th fd 8 in
        check_bytes "echo" msg back
      done)

(* ---- stream semantics ---- *)

let test_stream_reassembly () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  ignore
    (spawn w "stream-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:81;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         send_all th fd (Bytes.of_string "abcdefghijklmnop")));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:81;
      (* One large send consumed by several small recvs. *)
      let b3 = recv_exact th fd 3 in
      check_bytes "part 1" (Bytes.of_string "abc") b3;
      let b5 = recv_exact th fd 5 in
      check_bytes "part 2" (Bytes.of_string "defgh") b5;
      let b8 = recv_exact th fd 8 in
      check_bytes "part 3" (Bytes.of_string "ijklmnop") b8)

let test_large_message_chunking () =
  (* Below the zero-copy threshold but above one inline chunk: data must
     arrive intact through the chunked path. *)
  let w = make_world () in
  let h = add_host w in
  let size = 15_000 in
  let payload = Bytes.init size (fun i -> Char.chr (i * 31 mod 256)) in
  let ready = ref false in
  ignore
    (spawn w "chunk-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:82;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let m = recv_exact th fd size in
         send_all th fd m));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:82;
      send_all th fd payload;
      let back = recv_exact th fd size in
      check_bytes "chunked payload intact" payload back)

(* ---- zero copy ---- *)

let zerocopy_roundtrip ~intra () =
  let w = make_world () in
  let h1 = add_host w in
  let h2 = if intra then h1 else add_host w in
  let size = 256 * 1024 in
  let payload = Bytes.init size (fun i -> Char.chr (i * 7 mod 256)) in
  let server_stats = ref (0, 0, 0, 0, 0) in
  let ready = ref false in
  ignore
    (spawn w "zc-server" (fun () ->
         let ctx = L.init h2 in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:83;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let m = recv_exact th fd size in
         send_all th fd m;
         server_stats := L.sock_stats th fd));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h1 in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h2 ~port:83;
      send_all th fd payload;
      let back = recv_exact th fd size in
      check_bytes "zero-copy payload intact" payload back;
      let _, _, zc_sends, zc_recvs, _ = L.sock_stats th fd in
      Alcotest.(check bool) "client used zero-copy send" true (zc_sends > 0);
      Alcotest.(check bool) "client used zero-copy recv" true (zc_recvs > 0));
  let _, _, s_sends, s_recvs, _ = !server_stats in
  Alcotest.(check bool) "server used zero copy" true (s_sends > 0 && s_recvs > 0)

let test_zerocopy_page_return () =
  (* After a zero-copy exchange drains, pages must flow back to the sender's
     pool: the pool may not leak. *)
  let w = make_world () in
  let h = add_host w in
  let size = 64 * 1024 in
  let rounds = 50 in
  let sender_pool_available = ref (-1) in
  let ready = ref false in
  ignore
    (spawn w "pr-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:84;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         for _ = 1 to rounds do
           ignore (recv_exact th fd size)
         done));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:84;
      let payload = Bytes.make size 'z' in
      for _ = 1 to rounds do
        send_all th fd payload
      done;
      Sds_sim.Proc.sleep_ns 5_000_000;
      sender_pool_available := Sds_vm.Pool.available (Sds_vm.Space.pool (L.space_of ctx)));
  (* 50 rounds x 16 pages from a 4096-page pool: without the return
     protocol, 800 pages would be gone. *)
  Alcotest.(check bool) "pages returned to sender pool" true
    (!sender_pool_available > 4096 - 100)

(* ---- fork ---- *)

let test_fork_socket_handoff () =
  (* The master-worker pattern §2.2 says breaks on LibVMA/RSocket: parent
     accepts, forks, the CHILD serves the connection, while the parent keeps
     accepting on the listener. *)
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  ignore
    (spawn w "master" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:85;
         L.listen th lfd;
         ready := true;
         let conn = L.accept th lfd in
         let child_ctx = L.fork th in
         ignore
           (spawn w "worker-child" (fun () ->
                let cth = L.create_thread child_ctx ~core:2 () in
                let m = recv_exact cth conn 5 in
                check_bytes "child sees request" (Bytes.of_string "hello") m;
                send_all cth conn (Bytes.of_string "child")));
         (* The parent keeps accepting on the listener. *)
         let conn2 = L.accept th lfd in
         let m = recv_exact th conn2 5 in
         check_bytes "parent serves second conn" (Bytes.of_string "again") m;
         send_all th conn2 (Bytes.of_string "paren")));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:85;
      send_all th fd (Bytes.of_string "hello");
      check_bytes "served by child" (Bytes.of_string "child") (recv_exact th fd 5);
      let fd2 = L.socket th in
      L.connect th fd2 ~dst:h ~port:85;
      send_all th fd2 (Bytes.of_string "again");
      check_bytes "served by parent" (Bytes.of_string "paren") (recv_exact th fd2 5))

let test_fork_fd_table_cow () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd_shared = L.socket th in
      let child_ctx = L.fork th in
      let cth = L.create_thread child_ctx ~core:1 () in
      (* New FDs after fork are private: both processes reuse the same
         number independently (copy-on-write FD table). *)
      let fd_parent = L.socket th in
      let fd_child = L.socket cth in
      Alcotest.(check int) "same fd number allocated in both" fd_parent fd_child;
      (* Closing the inherited fd in the child must not kill the parent's. *)
      L.close cth fd_shared;
      match L.lookup th fd_shared with
      | L.U s -> Alcotest.(check bool) "socket alive for parent" true (s.Sock.refs >= 1)
      | _ -> Alcotest.fail "expected user socket")

let test_fork_inter_host_reinit () =
  (* A child using an inherited inter-host socket must pay QP
     re-establishment once, then work normally (§4.1.2). *)
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let ready = echo_server w h2 ~port:86 ~rounds:2 ~size:4 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h1 in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h2 ~port:86;
      send_all th fd (Bytes.of_string "one!");
      ignore (recv_exact th fd 4);
      let child_ctx = L.fork th in
      let cth = L.create_thread child_ctx ~core:2 () in
      let t0 = Sds_sim.Engine.now w.engine in
      send_all cth fd (Bytes.of_string "two!");
      check_bytes "child echo" (Bytes.of_string "two!") (recv_exact cth fd 4);
      let elapsed = Sds_sim.Engine.now w.engine - t0 in
      Alcotest.(check bool) "child paid QP re-init" true
        (elapsed >= Sds_sim.Cost.default.Sds_sim.Cost.rdma_qp_create))

let test_exec_preserves_sockets () =
  let w = make_world () in
  let h = add_host w in
  let ready = echo_server w h ~port:87 ~rounds:1 ~size:4 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:87;
      (* exec(): memory wiped, FD remapping table recovered from SHM. *)
      L.exec ctx;
      send_all th fd (Bytes.of_string "exec");
      check_bytes "socket survives exec" (Bytes.of_string "exec") (recv_exact th fd 4))

(* ---- tokens ---- *)

let test_token_fast_path_and_takeover () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  ignore
    (spawn w "tk-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:2 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:88;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         for _ = 1 to 20 do
           ignore (recv_exact th fd 4)
         done));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th1 = L.create_thread ctx ~core:0 () in
      let th2 = L.create_thread ctx ~core:1 () in
      let fd = L.socket th1 in
      L.connect th1 fd ~dst:h ~port:88;
      (* Same-thread sends: no take-overs (the common case). *)
      for _ = 1 to 10 do
        send_all th1 fd (Bytes.of_string "aaaa")
      done;
      let _, _, _, _, takeovers = L.sock_stats th1 fd in
      Alcotest.(check int) "fast path: no takeovers" 0 takeovers;
      (* Alternating threads: each switch is one take-over. *)
      for i = 1 to 10 do
        let th = if i land 1 = 0 then th1 else th2 in
        send_all th fd (Bytes.of_string "bbbb")
      done;
      let _, _, _, _, takeovers = L.sock_stats th1 fd in
      Alcotest.(check bool) "alternating threads pay takeovers" true (takeovers >= 9))

let test_token_mutual_exclusion () =
  let w = make_world () in
  ignore (add_host w);
  let cost = Sds_sim.Cost.default in
  let tok = Token.create ~cost ~holder:1 in
  let order = ref [] in
  for i = 2 to 4 do
    ignore
      (spawn w (Fmt.str "tok%d" i) (fun () ->
           Token.with_held tok ~tid:i (fun () ->
               order := i :: !order;
               Sds_sim.Proc.sleep_ns 100)))
  done;
  run w (fun () -> Sds_sim.Proc.sleep_ns 100_000);
  Alcotest.(check int) "all three held the token" 3 (List.length !order);
  Alcotest.(check bool) "takeovers counted" true (Token.takeovers tok >= 3)

(* ---- connection management ---- *)

let test_connect_refused () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      Alcotest.check_raises "no listener" L.Connection_refused (fun () ->
          L.connect th fd ~dst:h ~port:4444))

let test_access_control () =
  let w = make_world () in
  let h = add_host w in
  let ready = echo_server w h ~port:89 ~rounds:1 ~size:1 in
  run w (fun () ->
      wait_for ready;
      Monitor.set_acl (Monitor.for_host h) (fun ~src_host:_ ~port -> port <> 89);
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      Alcotest.check_raises "ACL denies" L.Connection_refused (fun () ->
          L.connect th fd ~dst:h ~port:89))

let test_bind_port_conflict () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let a = L.socket th in
      L.bind th a ~port:90;
      let b = L.socket th in
      Alcotest.check_raises "EADDRINUSE" (Invalid_argument "libsd.bind: address in use")
        (fun () -> L.bind th b ~port:90))

let test_state_machine_fig6 () =
  let w = make_world () in
  let h = add_host w in
  let ready = echo_server w h ~port:91 ~rounds:1 ~size:1 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      (match L.lookup th fd with
      | L.U s ->
        Alcotest.(check string) "fresh socket closed" "Closed" (Sock.string_of_state s.Sock.state)
      | _ -> Alcotest.fail "expected socket");
      L.bind th fd ~port:0;
      (match L.lookup th fd with
      | L.U s -> Alcotest.(check string) "bound" "Bound" (Sock.string_of_state s.Sock.state)
      | _ -> ());
      L.connect th fd ~dst:h ~port:91;
      match L.lookup th fd with
      | L.U s ->
        Alcotest.(check string) "established" "Established" (Sock.string_of_state s.Sock.state)
      | _ -> ())

let test_shutdown_eof () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  let server_saw_eof = ref false in
  ignore
    (spawn w "eof-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:92;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let m = recv_exact th fd 4 in
         check_bytes "data before FIN" (Bytes.of_string "data") m;
         let b = Bytes.create 1 in
         server_saw_eof := L.recv th fd b ~off:0 ~len:1 = 0));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:92;
      send_all th fd (Bytes.of_string "data");
      L.shutdown th fd `Send;
      Alcotest.check_raises "send after shutdown" L.Broken_pipe (fun () ->
          ignore (L.send th fd (Bytes.of_string "x") ~off:0 ~len:1));
      Sds_sim.Proc.sleep_ns 1_000_000);
  Alcotest.(check bool) "server got clean EOF after data" true !server_saw_eof

(* ---- dispatch & work stealing ---- *)

let test_round_robin_dispatch_and_stealing () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref 0 in
  let served = Array.make 2 0 in
  (* Two listener threads in one process accepting on the same port —
     Table 3's "multiple applications listen on a port". *)
  ignore
    (spawn w "ws-server" (fun () ->
         let ctx = L.init h in
         for t = 0 to 1 do
           ignore
             (spawn w (Fmt.str "listener%d" t) (fun () ->
                  let th = L.create_thread ctx ~core:(1 + t) () in
                  let lfd = L.socket th in
                  (try L.bind th lfd ~port:93 with _ -> ());
                  (match L.lookup th lfd with
                  | L.U s ->
                    if s.Sock.state = Sock.Closed then s.Sock.local_port <- 93;
                    s.Sock.state <- Sock.Bound
                  | _ -> ());
                  L.listen th lfd;
                  incr ready;
                  for _ = 1 to 3 do
                    let fd = L.accept th lfd in
                    served.(t) <- served.(t) + 1;
                    send_all th fd (Bytes.of_string "!")
                  done))
         done));
  run w (fun () ->
      while !ready < 2 do
        Sds_sim.Proc.sleep_ns 1_000
      done;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      for _ = 1 to 6 do
        let fd = L.socket th in
        L.connect th fd ~dst:h ~port:93;
        ignore (recv_exact th fd 1);
        L.close th fd
      done);
  Alcotest.(check int) "all six served" 6 (served.(0) + served.(1));
  Alcotest.(check bool) "both listeners served some (round-robin or stealing)" true
    (served.(0) > 0 && served.(1) > 0)

(* ---- TCP fallback ---- *)

let test_fallback_to_kernel_tcp () =
  let w = make_world () in
  let h1 = add_host w in
  (* Peer host runs no SocksDirect monitor. *)
  let h2 = add_host w in
  h2.Sds_transport.Host.sds_capable <- false;
  let ready = ref false in
  ignore
    (spawn w "legacy-server" (fun () ->
         let kernel = Sds_kernel.Kernel.for_host h2 in
         let kproc = Sds_kernel.Kernel.spawn_process kernel () in
         let lfd = Sds_kernel.Kernel.socket kproc in
         Sds_kernel.Kernel.listen kproc lfd ~port:94 ();
         ready := true;
         let fd = Sds_kernel.Kernel.accept kproc lfd in
         let b = Bytes.create 6 in
         let rec fill off =
           if off < 6 then fill (off + Sds_kernel.Kernel.recv kproc fd b ~off ~len:(6 - off))
         in
         fill 0;
         ignore (Sds_kernel.Kernel.send kproc fd b ~off:0 ~len:6)));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h1 in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      (* libsd detects the peer is not SocksDirect-capable and falls back. *)
      L.connect th fd ~dst:h2 ~port:94;
      (match L.lookup th fd with
      | L.K _ -> ()
      | _ -> Alcotest.fail "expected kernel fallback fd");
      send_all th fd (Bytes.of_string "legacy");
      check_bytes "works over kernel TCP" (Bytes.of_string "legacy") (recv_exact th fd 6))

(* ---- epoll ---- *)

let test_epoll_user_sockets () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  ignore
    (spawn w "ep-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:95;
         L.listen th lfd;
         ready := true;
         let a = L.accept th lfd in
         let b = L.accept th lfd in
         Sds_sim.Proc.sleep_ns 10_000;
         send_all th b (Bytes.of_string "B");
         Sds_sim.Proc.sleep_ns 10_000;
         send_all th a (Bytes.of_string "A")));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fa = L.socket th in
      L.connect th fa ~dst:h ~port:95;
      let fb = L.socket th in
      L.connect th fb ~dst:h ~port:95;
      let ep = L.epoll_create th in
      L.epoll_add th ep fa;
      L.epoll_add th ep fb;
      let ready1 = L.epoll_wait th ep () in
      Alcotest.(check (list int)) "B readable first" [ fb ] ready1;
      check_bytes "read B" (Bytes.of_string "B") (recv_exact th fb 1);
      let ready2 = L.epoll_wait th ep () in
      Alcotest.(check (list int)) "then A" [ fa ] ready2;
      check_bytes "read A" (Bytes.of_string "A") (recv_exact th fa 1);
      let ready3 = L.epoll_wait th ep ~timeout_ns:5_000 () in
      Alcotest.(check (list int)) "timeout empty" [] ready3)

let test_epoll_mixed_kernel_and_user () =
  let w = make_world () in
  let h = add_host w in
  let ready = echo_server w h ~port:96 ~rounds:1 ~size:1 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let ufd = L.socket th in
      L.connect th ufd ~dst:h ~port:96;
      (* ...plus a kernel pipe registered in the same epoll (the dual
         namespace §4.4 multiplexes). *)
      let kproc = L.kernel_process ctx in
      let r, wr = Sds_kernel.Kernel.pipe kproc in
      let rfd = L.register_kernel_fd th r in
      let ep = L.epoll_create th in
      L.epoll_add th ep ufd;
      L.epoll_add th ep rfd;
      ignore (Sds_kernel.Kernel.send kproc wr (Bytes.of_string "k") ~off:0 ~len:1);
      Sds_sim.Proc.sleep_ns 1_000;
      let ready1 = L.epoll_wait th ep () in
      Alcotest.(check (list int)) "kernel fd ready" [ rfd ] ready1;
      (* Consume the pipe byte: epoll is level-triggered. *)
      let d = Bytes.create 1 in
      ignore (L.recv th rfd d ~off:0 ~len:1);
      send_all th ufd (Bytes.of_string "u");
      let ready2 = L.epoll_wait th ep () in
      Alcotest.(check bool) "user socket surfaces too" true (List.mem ufd ready2))

(* ---- interrupt mode (§4.4) ---- *)

let test_interrupt_mode_sleep_and_wake () =
  (* A receiver with no traffic exhausts its polling budget, switches the
     queue to interrupt mode and sleeps; a late sender must wake it through
     the monitor relay, costing a process wakeup. *)
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  let server_got = ref false in
  let waited = ref 0 in
  ignore
    (spawn w "int-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:97;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let b = Bytes.create 4 in
         let t0 = Sds_sim.Engine.now w.engine in
         (* Nothing arrives for a long time: the server must sleep, not
            burn the horizon polling. *)
         let n = L.recv th fd b ~off:0 ~len:4 in
         waited := Sds_sim.Engine.now w.engine - t0;
         server_got := n = 4));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:97;
      (* Quiet period far beyond the polling budget. *)
      Sds_sim.Proc.sleep_ns 5_000_000;
      send_all th fd (Bytes.of_string "wake"));
  Alcotest.(check bool) "message received after sleep" true !server_got;
  Alcotest.(check bool) "receiver really waited" true (!waited >= 5_000_000);
  (* The wakeup path costs at least a process wakeup beyond the wait. *)
  Alcotest.(check bool) "wakeup cost paid" true
    (!waited >= 5_000_000 + Sds_sim.Cost.default.Sds_sim.Cost.process_wakeup)

(* ---- container live migration (§4.1.3) ---- *)

let test_live_migration_no_data_loss () =
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let ready = ref false in
  ignore
    (spawn w "mig-server" (fun () ->
         let ctx = L.init h1 in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:98;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let b = Bytes.create 8 in
         for _ = 1 to 20 do
           let got = ref 0 in
           while !got < 8 do
             got := !got + L.recv th fd b ~off:!got ~len:(8 - !got)
           done;
           ignore (L.send th fd b ~off:0 ~len:8)
         done));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h1 in
      let th = L.create_thread ctx ~core:2 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h1 ~port:98;
      let roundtrip th i =
        let msg = Bytes.of_string (Printf.sprintf "mig%05d" i) in
        send_all th fd msg;
        check_bytes "echo across migration" msg (recv_exact th fd 8)
      in
      for i = 1 to 10 do
        roundtrip th i
      done;
      (* Migrate the client container to the other host mid-connection. *)
      L.migrate ctx ~to_host:h2;
      let th2 = L.create_thread ctx ~core:2 () in
      let t0 = Sds_sim.Engine.now w.engine in
      roundtrip th2 11;
      let rtt_remote = Sds_sim.Engine.now w.engine - t0 in
      for i = 12 to 20 do
        roundtrip th2 i
      done;
      (* The connection is now inter-host: latency reflects RDMA. *)
      Alcotest.(check bool) "post-migration RTT is inter-host" true (rtt_remote > 1_000))

(* ---- FD semantics through libsd ---- *)

let test_libsd_fd_lowest () =
  let w = make_world () in
  let h = add_host w in
  run w (fun () ->
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let a = L.socket th in
      let b = L.socket th in
      let c = L.socket th in
      Alcotest.(check (list int)) "sequential" [ a; a + 1; a + 2 ] [ a; b; c ];
      L.close th b;
      let d = L.socket th in
      Alcotest.(check int) "lowest free reused" b d)

(* ---- nonblocking / dup / poll / select ---- *)

let test_nonblocking_recv () =
  let w = make_world () in
  let h = add_host w in
  let ready = echo_server w h ~port:110 ~rounds:1 ~size:4 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:110;
      L.set_nonblocking th fd true;
      let b = Bytes.create 4 in
      (* Nothing sent yet: EAGAIN. *)
      Alcotest.check_raises "would block" L.Would_block (fun () ->
          ignore (L.try_recv th fd b ~off:0 ~len:4));
      send_all th fd (Bytes.of_string "ping");
      Sds_sim.Proc.sleep_ns 10_000;
      let n = L.try_recv th fd b ~off:0 ~len:4 in
      Alcotest.(check int) "echo available" 4 n;
      check_bytes "content" (Bytes.of_string "ping") b)

let test_dup_shares_socket () =
  let w = make_world () in
  let h = add_host w in
  let ready = echo_server w h ~port:111 ~rounds:2 ~size:4 in
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:111;
      let fd2 = L.dup th fd in
      Alcotest.(check bool) "new descriptor" true (fd2 <> fd);
      (* Both descriptors reach the same connection. *)
      send_all th fd (Bytes.of_string "one!");
      check_bytes "via original" (Bytes.of_string "one!") (recv_exact th fd 4);
      send_all th fd2 (Bytes.of_string "two!");
      check_bytes "via dup" (Bytes.of_string "two!") (recv_exact th fd2 4);
      (* Closing one leaves the other usable. *)
      L.close th fd;
      match L.lookup th fd2 with
      | L.U s -> Alcotest.(check bool) "socket alive" true (s.Sock.refs >= 1)
      | _ -> Alcotest.fail "expected socket")

let test_poll_and_select () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  ignore
    (spawn w "poll-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:112;
         L.listen th lfd;
         ready := true;
         let a = L.accept th lfd in
         let b = L.accept th lfd in
         Sds_sim.Proc.sleep_ns 20_000;
         send_all th a (Bytes.of_string "A");
         ignore b));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fa = L.socket th in
      L.connect th fa ~dst:h ~port:112;
      let fb = L.socket th in
      L.connect th fb ~dst:h ~port:112;
      (* Timeout with nothing ready... *)
      let r0 = L.poll th [ fa; fb ] ~timeout_ns:1_000 () in
      Alcotest.(check (list int)) "poll timeout" [] r0;
      (* ...then only A becomes readable. *)
      let r1 = L.select th ~read:[ fa; fb ] () in
      Alcotest.(check (list int)) "select finds A" [ fa ] r1)

let test_crash_gives_peer_eof () =
  let w = make_world () in
  let h = add_host w in
  let ready = ref false in
  let peer_result = ref (-1) in
  let peer_last = ref Bytes.empty in
  ignore
    (spawn w "crash-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:113;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         (* First the data sent before the crash must arrive... *)
         peer_last := recv_exact th fd 5;
         (* ...then EOF (SIGHUP-equivalent). *)
         let b = Bytes.create 1 in
         peer_result := L.recv th fd b ~off:0 ~len:1));
  run w (fun () ->
      wait_for ready;
      let ctx = L.init h in
      let th = L.create_thread ctx ~core:0 () in
      let fd = L.socket th in
      L.connect th fd ~dst:h ~port:113;
      send_all th fd (Bytes.of_string "final");
      Sds_sim.Proc.sleep_ns 1_000;
      L.simulate_crash ctx;
      Sds_sim.Proc.sleep_ns 1_000_000);
  check_bytes "pre-crash data preserved" (Bytes.of_string "final") !peer_last;
  Alcotest.(check int) "peer sees EOF after crash" 0 !peer_result

let suite =
  [
    Alcotest.test_case "intra-host ping-pong over SHM" `Quick test_intra_pingpong;
    Alcotest.test_case "inter-host ping-pong over RDMA" `Quick test_inter_pingpong;
    Alcotest.test_case "byte-stream reassembly" `Quick test_stream_reassembly;
    Alcotest.test_case "large message chunking" `Quick test_large_message_chunking;
    Alcotest.test_case "zero copy intra-host" `Quick (zerocopy_roundtrip ~intra:true);
    Alcotest.test_case "zero copy inter-host" `Quick (zerocopy_roundtrip ~intra:false);
    Alcotest.test_case "zero copy returns pages" `Quick test_zerocopy_page_return;
    Alcotest.test_case "fork: socket handoff to child" `Quick test_fork_socket_handoff;
    Alcotest.test_case "fork: FD table copy-on-write" `Quick test_fork_fd_table_cow;
    Alcotest.test_case "fork: inter-host QP re-init" `Quick test_fork_inter_host_reinit;
    Alcotest.test_case "exec preserves sockets" `Quick test_exec_preserves_sockets;
    Alcotest.test_case "token fast path vs takeover" `Quick test_token_fast_path_and_takeover;
    Alcotest.test_case "token mutual exclusion" `Quick test_token_mutual_exclusion;
    Alcotest.test_case "connect refused" `Quick test_connect_refused;
    Alcotest.test_case "monitor access control" `Quick test_access_control;
    Alcotest.test_case "bind port conflict" `Quick test_bind_port_conflict;
    Alcotest.test_case "figure 6 connection states" `Quick test_state_machine_fig6;
    Alcotest.test_case "shutdown delivers EOF after data" `Quick test_shutdown_eof;
    Alcotest.test_case "multi-listener dispatch + stealing" `Quick
      test_round_robin_dispatch_and_stealing;
    Alcotest.test_case "fallback to kernel TCP peer" `Quick test_fallback_to_kernel_tcp;
    Alcotest.test_case "epoll over user sockets" `Quick test_epoll_user_sockets;
    Alcotest.test_case "epoll mixes kernel and user fds" `Quick test_epoll_mixed_kernel_and_user;
    Alcotest.test_case "libsd lowest-fd semantics" `Quick test_libsd_fd_lowest;
    Alcotest.test_case "interrupt mode sleep + wakeup" `Quick test_interrupt_mode_sleep_and_wake;
    Alcotest.test_case "live migration, no data loss" `Quick test_live_migration_no_data_loss;
    Alcotest.test_case "nonblocking recv (EAGAIN)" `Quick test_nonblocking_recv;
    Alcotest.test_case "dup shares the connection" `Quick test_dup_shares_socket;
    Alcotest.test_case "poll and select" `Quick test_poll_and_select;
    Alcotest.test_case "crash gives peer EOF after drain" `Quick test_crash_gives_peer_eof;
  ]
