(* Shared scaffolding for the simulation test-suites. *)

open Sds_sim
open Sds_transport

type world = { engine : Engine.t; cost : Cost.t; rng : Rng.t; mutable hosts : Host.t list }

let make_world ?(cost = Cost.default) ?(seed = 42) () =
  { engine = Engine.create (); cost; rng = Rng.create ~seed; hosts = [] }

let add_host ?(cores = 16) ?(rdma = true) w =
  let id = List.length w.hosts in
  let h = Host.create w.engine ~cost:w.cost ~id ~cores ~rdma ~rng:w.rng () in
  w.hosts <- w.hosts @ [ h ];
  h

(* Run [main] as a simulated proc and drive the engine until it completes
   (or [horizon] simulated nanoseconds pass).  Raises if the proc raised. *)
let run ?(horizon = 10_000_000_000) w main =
  let finished = ref false in
  let _p =
    Proc.spawn w.engine ~name:"test-main" (fun () ->
        main ();
        finished := true)
  in
  Engine.run ~until:horizon w.engine;
  if not !finished then failwith "simulation horizon reached before test main finished"

(* Spawn a background participant (server etc.). *)
let spawn w name fn = Proc.spawn w.engine ~name fn

(* Busy-wait (in simulated time) until a condition set by another proc. *)
let wait_for flag =
  while not !flag do
    Proc.sleep_ns 1_000
  done

let check_bytes msg expected actual =
  Alcotest.(check string) msg (Bytes.to_string expected) (Bytes.to_string actual)
