test/test_verbs.ml: Alcotest Bytes Helpers Host List Nic Sds_sim Sds_transport Verbs
