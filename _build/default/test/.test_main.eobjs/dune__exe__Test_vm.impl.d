test/test_vm.ml: Alcotest Array Bytes Char Gen List Page Pool QCheck QCheck_alcotest Sds_vm Space String
