test/test_core.ml: Alcotest Array Bytes Char Fmt Helpers List Printf Sds_kernel Sds_sim Sds_transport Sds_vm Socksdirect
