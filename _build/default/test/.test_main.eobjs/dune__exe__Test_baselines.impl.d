test/test_baselines.ml: Alcotest Bytes Helpers List Sds_baselines Sds_sim
