test/test_ring.ml: Alcotest Array Bytes Char Gen List Printf QCheck QCheck_alcotest Queue Random Sds_ring String
