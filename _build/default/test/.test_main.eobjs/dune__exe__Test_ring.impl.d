test/test_ring.ml: Alcotest Bytes Gen List Printf QCheck QCheck_alcotest Queue Sds_ring String
