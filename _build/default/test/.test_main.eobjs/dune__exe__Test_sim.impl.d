test/test_sim.ml: Alcotest Array Cost Engine Float Fmt Gen Heap Helpers List Proc QCheck QCheck_alcotest Rng Sds_sim Sds_transport Stats Waitq
