test/test_ring_domains.ml: Alcotest Array Bytes Char Domain Sds_ring Unix
