test/test_kernel.ml: Alcotest Buffer Bytes Cost Engine Gen Hashtbl Helpers List Proc QCheck QCheck_alcotest Sds_kernel Sds_sim String
