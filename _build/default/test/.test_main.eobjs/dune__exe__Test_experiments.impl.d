test/test_experiments.ml: Alcotest Sds_apps Sds_baselines Sds_experiments Sds_sim
