test/test_apps.ml: Alcotest Array Bytes Fmt Gen Helpers Int32 List Option Printf QCheck QCheck_alcotest Sds_apps Sds_sim Socksdirect String
