test/test_core2.ml: Alcotest Array Buffer Bytes Char Digest Gen Helpers List Printf QCheck QCheck_alcotest Sds_sim Sds_transport Socksdirect
