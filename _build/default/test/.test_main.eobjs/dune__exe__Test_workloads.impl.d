test/test_workloads.ml: Alcotest Array QCheck QCheck_alcotest Sds_sim Sds_workloads
