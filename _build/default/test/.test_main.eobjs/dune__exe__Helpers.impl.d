test/helpers.ml: Alcotest Bytes Cost Engine Host List Proc Rng Sds_sim Sds_transport
