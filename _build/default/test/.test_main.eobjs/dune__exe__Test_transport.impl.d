test/test_transport.ml: Alcotest Array Bytes Cost Engine Gen Helpers Host List Msg Nic Printf Proc QCheck QCheck_alcotest Queue Sds_experiments Sds_sim Sds_transport Sds_vm Shm_chan Stats
