test/test_shim.ml: Alcotest Bytes Helpers Sds_kernel Sds_transport Socksdirect
