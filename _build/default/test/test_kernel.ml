(* Tests for the simulated kernel: FD table semantics, byte streams, the TCP
   state machine, pipes, Unix socketpairs, epoll, fork. *)

open Sds_sim
module K = Sds_kernel.Kernel
module Fd = Sds_kernel.Fd_table
module Ks = Sds_kernel.Kstream
open Helpers

(* ---- fd table ---- *)

let test_fd_lowest_first () =
  let t = Fd.create () in
  Alcotest.(check int) "first fd is 3" 3 (Fd.alloc t "a");
  Alcotest.(check int) "then 4" 4 (Fd.alloc t "b");
  Alcotest.(check int) "then 5" 5 (Fd.alloc t "c");
  ignore (Fd.close t 4);
  ignore (Fd.close t 3);
  (* Linux semantics: the LOWEST free descriptor is reused first. *)
  Alcotest.(check int) "reuse 3 first" 3 (Fd.alloc t "d");
  Alcotest.(check int) "then 4" 4 (Fd.alloc t "e")

let test_fd_find_close () =
  let t = Fd.create () in
  let fd = Fd.alloc t 42 in
  Alcotest.(check (option int)) "find" (Some 42) (Fd.find t fd);
  Alcotest.(check bool) "close" true (Fd.close t fd);
  Alcotest.(check bool) "double close" false (Fd.close t fd);
  Alcotest.(check (option int)) "gone" None (Fd.find t fd)

let test_fd_bind_specific () =
  let t = Fd.create () in
  Fd.bind t 10 "ten";
  Alcotest.(check (option string)) "bound" (Some "ten") (Fd.find t 10);
  (* Holes below a bound descriptor are allocated before fresh ones. *)
  let fd = Fd.alloc t "low" in
  Alcotest.(check bool) "fills hole below 10" true (fd < 10)

let test_fd_copy_independent () =
  let t = Fd.create () in
  let a = Fd.alloc t "x" in
  let c = Fd.copy t in
  ignore (Fd.close c a);
  Alcotest.(check (option string)) "parent unaffected" (Some "x") (Fd.find t a);
  Alcotest.(check (option string)) "child closed" None (Fd.find c a)

(* Property: allocation always returns the smallest non-live descriptor —
   checked against a naive model. *)
let prop_fd_lowest =
  QCheck.Test.make ~name:"fd table always allocates lowest free fd" ~count:200
    QCheck.(list (option (int_range 0 30)))
    (fun ops ->
      let t = Fd.create () in
      let live = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | None ->
            let fd = Fd.alloc t () in
            (* model: smallest fd >= 3 not live *)
            let rec smallest i = if Hashtbl.mem live i then smallest (i + 1) else i in
            if fd <> smallest 3 then ok := false;
            Hashtbl.replace live fd ()
          | Some i ->
            let fd = 3 + i in
            if Hashtbl.mem live fd then begin
              ignore (Fd.close t fd);
              Hashtbl.remove live fd
            end)
        ops;
      !ok)

(* ---- kstream ---- *)

let test_kstream_roundtrip () =
  let w = make_world () in
  ignore (add_host w);
  let s = Ks.create w.engine ~profile:(Ks.pipe_profile w.cost) in
  run w (fun () ->
      let msg = Bytes.of_string "through-the-pipe" in
      ignore (Ks.write s msg ~off:0 ~len:16);
      let dst = Bytes.create 16 in
      let n = Ks.read s dst ~off:0 ~len:16 in
      Alcotest.(check int) "full read" 16 n;
      Alcotest.(check string) "content" "through-the-pipe" (Bytes.to_string dst))

let test_kstream_partial_reads () =
  let w = make_world () in
  ignore (add_host w);
  let s = Ks.create w.engine ~profile:(Ks.pipe_profile w.cost) in
  run w (fun () ->
      ignore (Ks.write s (Bytes.of_string "abcdefgh") ~off:0 ~len:8);
      let d = Bytes.create 3 in
      ignore (Ks.read s d ~off:0 ~len:3);
      Alcotest.(check string) "first part" "abc" (Bytes.to_string d);
      ignore (Ks.read s d ~off:0 ~len:3);
      Alcotest.(check string) "second part" "def" (Bytes.to_string d);
      let n = Ks.read s d ~off:0 ~len:3 in
      Alcotest.(check int) "remainder" 2 n;
      Alcotest.(check string) "tail" "gh" (Bytes.sub_string d 0 2))

let test_kstream_interleaved_order () =
  (* Regression: partially consumed chunks must not reorder bytes. *)
  let w = make_world () in
  ignore (add_host w);
  let s = Ks.create w.engine ~profile:(Ks.pipe_profile w.cost) in
  run w (fun () ->
      ignore (Ks.write s (Bytes.of_string "11111") ~off:0 ~len:5);
      ignore (Ks.write s (Bytes.of_string "22222") ~off:0 ~len:5);
      let d = Bytes.create 3 in
      ignore (Ks.read s d ~off:0 ~len:3);
      Alcotest.(check string) "a" "111" (Bytes.to_string d);
      let big = Bytes.create 7 in
      let n = Ks.read s big ~off:0 ~len:7 in
      Alcotest.(check int) "rest" 7 n;
      Alcotest.(check string) "ordered across chunks" "1122222" (Bytes.to_string big))

let test_kstream_eof_after_drain () =
  let w = make_world () in
  ignore (add_host w);
  let s = Ks.create w.engine ~profile:(Ks.pipe_profile w.cost) in
  run w (fun () ->
      ignore (Ks.write s (Bytes.of_string "last") ~off:0 ~len:4);
      Ks.close_write s;
      let d = Bytes.create 8 in
      (* Data written before close must be readable; EOF only after. *)
      let n = Ks.read s d ~off:0 ~len:8 in
      Alcotest.(check int) "drains data first" 4 n;
      Alcotest.(check int) "then EOF" 0 (Ks.read s d ~off:0 ~len:8))

let test_kstream_broken_pipe () =
  let w = make_world () in
  ignore (add_host w);
  let s = Ks.create w.engine ~profile:(Ks.pipe_profile w.cost) in
  run w (fun () ->
      Ks.close_read s;
      Alcotest.check_raises "EPIPE" Ks.Broken_pipe (fun () ->
          ignore (Ks.write s (Bytes.of_string "x") ~off:0 ~len:1)))

let test_kstream_blocking_write_backpressure () =
  let w = make_world () in
  ignore (add_host w);
  let s = Ks.create w.engine ~profile:(Ks.pipe_profile w.cost) in
  let write_done = ref false in
  ignore
    (spawn w "writer" (fun () ->
         (* 3x capacity: must block until the reader drains. *)
         let big = Bytes.make (192 * 1024) 'w' in
         ignore (Ks.write s big ~off:0 ~len:(Bytes.length big));
         write_done := true));
  run w (fun () ->
      Proc.sleep_ns 100_000;
      Alcotest.(check bool) "writer blocked on full buffer" false !write_done;
      let d = Bytes.create 65536 in
      let total = ref 0 in
      while !total < 192 * 1024 do
        total := !total + Ks.read s d ~off:0 ~len:65536
      done;
      Alcotest.(check int) "all bytes through" (192 * 1024) !total);
  Alcotest.(check bool) "writer completed" true !write_done

let test_kstream_wakeup_accounting () =
  let w = make_world () in
  ignore (add_host w);
  let s = Ks.create w.engine ~profile:(Ks.pipe_profile w.cost) in
  ignore
    (spawn w "late-writer" (fun () ->
         Proc.sleep_ns 50_000;
         ignore (Ks.write s (Bytes.of_string "z") ~off:0 ~len:1)));
  run w (fun () ->
      let d = Bytes.create 1 in
      let t0 = Engine.now w.engine in
      ignore (Ks.read s d ~off:0 ~len:1);
      let waited = Engine.now w.engine - t0 in
      Alcotest.(check bool) "reader paid the wakeup" true
        (waited >= 50_000 + w.cost.Cost.process_wakeup));
  Alcotest.(check int) "one wakeup recorded" 1 (Ks.wakeups s)

(* Property: any interleaving of writes and partial reads preserves the
   byte stream exactly (checked against a growing reference buffer). *)
let prop_kstream_stream_semantics =
  QCheck.Test.make ~name:"kstream preserves the byte stream under any segmentation" ~count:60
    QCheck.(list (pair (string_of_size (Gen.int_range 1 200)) (int_range 1 256)))
    (fun ops ->
      let w = make_world () in
      ignore (add_host w);
      let s = Ks.create w.engine ~profile:(Ks.pipe_profile w.cost) in
      let expected = Buffer.create 256 in
      let received = Buffer.create 256 in
      let ok = ref true in
      run w (fun () ->
          (* Write everything (with reads interleaved so the buffer never
             overflows its capacity). *)
          List.iter
            (fun (payload, read_len) ->
              Buffer.add_string expected payload;
              ignore (Ks.write s (Bytes.of_string payload) ~off:0 ~len:(String.length payload));
              Sds_sim.Proc.sleep_ns 1_000;
              let d = Bytes.create read_len in
              match Ks.try_read s d ~off:0 ~len:read_len with
              | `Read n -> Buffer.add_subbytes received d 0 n
              | `Eof -> ok := false
              | `Would_block -> ())
            ops;
          (* Drain the remainder. *)
          Ks.close_write s;
          let d = Bytes.create 4096 in
          let rec drain () =
            let n = Ks.read s d ~off:0 ~len:4096 in
            if n > 0 then begin
              Buffer.add_subbytes received d 0 n;
              drain ()
            end
          in
          drain ());
      !ok && Buffer.contents received = Buffer.contents expected)

(* ---- TCP ---- *)

let test_tcp_connect_accept_echo () =
  let w = make_world () in
  let h = add_host w in
  let kernel = K.for_host h in
  let server = K.spawn_process kernel () in
  let client = K.spawn_process kernel () in
  let ready = ref false in
  ignore
    (spawn w "k-server" (fun () ->
         let lfd = K.socket server in
         K.listen server lfd ~port:80 ();
         ready := true;
         let fd = K.accept server lfd in
         Alcotest.(check string) "established" "ESTABLISHED" (K.string_of_state (K.tcp_state server fd));
         let b = Bytes.create 16 in
         let n = K.recv server fd b ~off:0 ~len:16 in
         ignore (K.send server fd b ~off:0 ~len:n)));
  run w (fun () ->
      wait_for ready;
      let fd = K.socket client in
      K.connect client fd ~dst:h ~port:80;
      Alcotest.(check string) "client established" "ESTABLISHED"
        (K.string_of_state (K.tcp_state client fd));
      ignore (K.send client fd (Bytes.of_string "kernel-echo") ~off:0 ~len:11);
      let b = Bytes.create 11 in
      let got = ref 0 in
      while !got < 11 do
        got := !got + K.recv client fd b ~off:!got ~len:(11 - !got)
      done;
      Alcotest.(check string) "echoed" "kernel-echo" (Bytes.to_string b))

let test_tcp_refused_no_listener () =
  let w = make_world () in
  let h = add_host w in
  let client = K.spawn_process (K.for_host h) () in
  run w (fun () ->
      let fd = K.socket client in
      Alcotest.check_raises "refused" K.Connection_refused (fun () ->
          K.connect client fd ~dst:h ~port:9999))

let test_tcp_backlog_full () =
  let w = make_world () in
  let h = add_host w in
  let kernel = K.for_host h in
  let server = K.spawn_process kernel () in
  let client = K.spawn_process kernel () in
  run w (fun () ->
      let lfd = K.socket server in
      K.listen server lfd ~port:81 ~backlog:2 ();
      let c1 = K.socket client in
      K.connect client c1 ~dst:h ~port:81;
      let c2 = K.socket client in
      K.connect client c2 ~dst:h ~port:81;
      let c3 = K.socket client in
      Alcotest.check_raises "backlog overflow refused" K.Connection_refused (fun () ->
          K.connect client c3 ~dst:h ~port:81))

let test_tcp_states_on_shutdown () =
  let w = make_world () in
  let h = add_host w in
  let kernel = K.for_host h in
  let server = K.spawn_process kernel () in
  let client = K.spawn_process kernel () in
  let ready = ref false in
  let server_fd = ref (-1) in
  ignore
    (spawn w "fsm-server" (fun () ->
         let lfd = K.socket server in
         K.listen server lfd ~port:82 ();
         ready := true;
         server_fd := K.accept server lfd));
  run w (fun () ->
      wait_for ready;
      let fd = K.socket client in
      K.connect client fd ~dst:h ~port:82;
      Proc.sleep_ns 1_000;
      (* Client initiates close: FIN_WAIT on client, CLOSE_WAIT on server. *)
      (match K.lookup client fd with
      | K.Tcp ep ->
        K.shutdown_send ep;
        Alcotest.(check string) "client FIN_WAIT" "FIN_WAIT_2"
          (K.string_of_state (K.tcp_state client fd))
      | _ -> Alcotest.fail "not tcp");
      Alcotest.(check string) "server CLOSE_WAIT" "CLOSE_WAIT"
        (K.string_of_state (K.tcp_state server !server_fd));
      (* Server closes its side: both ends reach a terminal state. *)
      (match K.lookup server !server_fd with
      | K.Tcp ep -> K.shutdown_send ep
      | _ -> Alcotest.fail "not tcp");
      Alcotest.(check string) "client TIME_WAIT" "TIME_WAIT"
        (K.string_of_state (K.tcp_state client fd));
      Alcotest.(check string) "server CLOSED" "CLOSED"
        (K.string_of_state (K.tcp_state server !server_fd)))

let test_tcp_port_in_use () =
  let w = make_world () in
  let h = add_host w in
  let p = K.spawn_process (K.for_host h) () in
  run w (fun () ->
      let a = K.socket p in
      K.listen p a ~port:83 ();
      let b = K.socket p in
      Alcotest.check_raises "EADDRINUSE" (K.Address_in_use 83) (fun () -> K.listen p b ~port:83 ()))

(* ---- pipes / fork / epoll ---- *)

let test_pipe_through_fork () =
  let w = make_world () in
  let h = add_host w in
  let parent = K.spawn_process (K.for_host h) () in
  run w (fun () ->
      let r, wr = K.pipe parent in
      let child = K.fork parent in
      (* The child inherits both descriptors and can use them. *)
      ignore (K.send child wr (Bytes.of_string "from-child") ~off:0 ~len:10);
      let b = Bytes.create 10 in
      let n = K.recv parent r b ~off:0 ~len:10 in
      Alcotest.(check int) "len" 10 n;
      Alcotest.(check string) "content" "from-child" (Bytes.to_string b);
      (* Closing in the child must not close the parent's descriptor. *)
      K.close child wr;
      ignore (K.send parent wr (Bytes.of_string "x") ~off:0 ~len:1))

let test_unix_socketpair () =
  let w = make_world () in
  let h = add_host w in
  let p = K.spawn_process (K.for_host h) () in
  run w (fun () ->
      let a, b = K.unix_socketpair p in
      ignore (K.send p a (Bytes.of_string "ping") ~off:0 ~len:4);
      let d = Bytes.create 4 in
      ignore (K.recv p b d ~off:0 ~len:4);
      Alcotest.(check string) "a->b" "ping" (Bytes.to_string d);
      ignore (K.send p b (Bytes.of_string "pong") ~off:0 ~len:4);
      ignore (K.recv p a d ~off:0 ~len:4);
      Alcotest.(check string) "b->a" "pong" (Bytes.to_string d))

let test_epoll_readiness () =
  let w = make_world () in
  let h = add_host w in
  let p = K.spawn_process (K.for_host h) () in
  run w (fun () ->
      let r, wr = K.pipe p in
      let ep = K.epoll_create p in
      K.epoll_add p ep ~watch_pid:p.K.pid ~fd:r;
      let ready = K.epoll_wait p ep ~timeout_ns:1_000 () in
      Alcotest.(check (list int)) "nothing ready" [] ready;
      ignore (K.send p wr (Bytes.of_string "!") ~off:0 ~len:1);
      Proc.sleep_ns 1_000;
      let ready = K.epoll_wait p ep () in
      Alcotest.(check (list int)) "pipe readable" [ r ] ready;
      K.epoll_del p ep ~fd:r;
      let ready = K.epoll_wait p ep ~timeout_ns:1_000 () in
      Alcotest.(check (list int)) "deregistered" [] ready)

let test_epoll_wakes_blocked_waiter () =
  let w = make_world () in
  let h = add_host w in
  let p = K.spawn_process (K.for_host h) () in
  let woke = ref false in
  run w (fun () ->
      let r, wr = K.pipe p in
      let ep = K.epoll_create p in
      K.epoll_add p ep ~watch_pid:p.K.pid ~fd:r;
      ignore
        (spawn w "writer" (fun () ->
             Proc.sleep_ns 20_000;
             ignore (K.send p wr (Bytes.of_string "@") ~off:0 ~len:1)));
      let ready = K.epoll_wait p ep () in
      Alcotest.(check (list int)) "woken with fd" [ r ] ready;
      woke := true);
  Alcotest.(check bool) "returned" true !woke

let suite =
  [
    Alcotest.test_case "fd lowest-first allocation" `Quick test_fd_lowest_first;
    Alcotest.test_case "fd find/close" `Quick test_fd_find_close;
    Alcotest.test_case "fd bind specific" `Quick test_fd_bind_specific;
    Alcotest.test_case "fd copy independence" `Quick test_fd_copy_independent;
    QCheck_alcotest.to_alcotest prop_fd_lowest;
    Alcotest.test_case "kstream roundtrip" `Quick test_kstream_roundtrip;
    Alcotest.test_case "kstream partial reads" `Quick test_kstream_partial_reads;
    Alcotest.test_case "kstream chunk order" `Quick test_kstream_interleaved_order;
    Alcotest.test_case "kstream EOF after drain" `Quick test_kstream_eof_after_drain;
    Alcotest.test_case "kstream broken pipe" `Quick test_kstream_broken_pipe;
    Alcotest.test_case "kstream write backpressure" `Quick test_kstream_blocking_write_backpressure;
    Alcotest.test_case "kstream wakeup accounting" `Quick test_kstream_wakeup_accounting;
    QCheck_alcotest.to_alcotest prop_kstream_stream_semantics;
    Alcotest.test_case "tcp connect/accept/echo" `Quick test_tcp_connect_accept_echo;
    Alcotest.test_case "tcp connection refused" `Quick test_tcp_refused_no_listener;
    Alcotest.test_case "tcp backlog overflow" `Quick test_tcp_backlog_full;
    Alcotest.test_case "tcp shutdown state machine" `Quick test_tcp_states_on_shutdown;
    Alcotest.test_case "tcp port in use" `Quick test_tcp_port_in_use;
    Alcotest.test_case "pipe shared across fork" `Quick test_pipe_through_fork;
    Alcotest.test_case "unix socketpair" `Quick test_unix_socketpair;
    Alcotest.test_case "epoll readiness" `Quick test_epoll_readiness;
    Alcotest.test_case "epoll wakes blocked waiter" `Quick test_epoll_wakes_blocked_waiter;
  ]
