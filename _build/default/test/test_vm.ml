(* Tests for the simulated virtual-memory subsystem: pages, copy-on-write,
   pools and the page-return protocol, buffer spaces. *)

open Sds_vm

let test_page_write_read () =
  let p = Page.create ~owner:1 in
  let src = Bytes.of_string "hello-page" in
  let p', copied = Page.write p ~off:100 ~src ~src_off:0 ~len:10 in
  Alcotest.(check bool) "no COW on private page" false copied;
  Alcotest.(check bool) "same page" true (p == p');
  let dst = Bytes.create 10 in
  Page.read p ~off:100 ~dst ~dst_off:0 ~len:10;
  Alcotest.(check string) "content" "hello-page" (Bytes.to_string dst)

let test_page_cow () =
  let p = Page.create ~owner:1 in
  let original = Bytes.of_string "original" in
  ignore (Page.write p ~off:0 ~src:original ~src_off:0 ~len:8);
  (* Share it (sender marks COW before handing to the receiver). *)
  Page.share p;
  Alcotest.(check int) "refcount 2" 2 p.Page.refcount;
  (* Writing now must copy, leaving the shared original intact. *)
  let fresh, copied = Page.write p ~off:0 ~src:(Bytes.of_string "modified") ~src_off:0 ~len:8 in
  Alcotest.(check bool) "COW triggered" true copied;
  Alcotest.(check bool) "new page" true (fresh != p);
  let dst = Bytes.create 8 in
  Page.read p ~off:0 ~dst ~dst_off:0 ~len:8;
  Alcotest.(check string) "original preserved" "original" (Bytes.to_string dst);
  Page.read fresh ~off:0 ~dst ~dst_off:0 ~len:8;
  Alcotest.(check string) "copy modified" "modified" (Bytes.to_string dst);
  Alcotest.(check int) "old page deref'd" 1 p.Page.refcount

let test_page_write_after_last_unref () =
  let p = Page.create ~owner:1 in
  Page.share p;
  Page.unref p;
  (* Back to exclusive: write in place, no copy. *)
  let p', copied = Page.write p ~off:0 ~src:(Bytes.of_string "x") ~src_off:0 ~len:1 in
  Alcotest.(check bool) "no copy when exclusive again" false copied;
  Alcotest.(check bool) "same page" true (p == p')

let test_pool_alloc_free () =
  let pool = Pool.create ~owner:7 ~capacity:4 in
  Alcotest.(check int) "initial" 4 (Pool.available pool);
  let p = Pool.alloc pool in
  Alcotest.(check int) "allocated" 3 (Pool.available pool);
  (match Pool.free pool p with
  | Pool.Local -> ()
  | Pool.Foreign _ -> Alcotest.fail "own page reported foreign");
  Alcotest.(check int) "returned" 4 (Pool.available pool)

let test_pool_refill_on_empty () =
  let pool = Pool.create ~owner:7 ~capacity:1 in
  let _ = Pool.alloc pool in
  let _ = Pool.alloc pool in
  Alcotest.(check int) "refilled from kernel" 1 (Pool.refills pool)

let test_pool_foreign_return () =
  let pool_a = Pool.create ~owner:1 ~capacity:2 in
  let pool_b = Pool.create ~owner:2 ~capacity:2 in
  let page = Pool.alloc pool_a in
  (* B frees A's page: must be routed back to owner 1, not pooled by B. *)
  (match Pool.free pool_b page with
  | Pool.Foreign owner -> Alcotest.(check int) "owner id" 1 owner
  | Pool.Local -> Alcotest.fail "foreign page pooled locally");
  Alcotest.(check int) "B's pool untouched" 2 (Pool.available pool_b);
  Pool.take_back pool_a page;
  Alcotest.(check int) "A recovered its page" 2 (Pool.available pool_a)

let test_pool_take_back_rejects_foreign () =
  let pool_a = Pool.create ~owner:1 ~capacity:1 in
  let pool_b = Pool.create ~owner:2 ~capacity:1 in
  let page_b = Pool.alloc pool_b in
  Alcotest.check_raises "wrong owner" (Invalid_argument "Pool.take_back: not our page")
    (fun () -> Pool.take_back pool_a page_b)

let test_pool_shared_page_not_freed_early () =
  let pool = Pool.create ~owner:1 ~capacity:2 in
  let p = Pool.alloc pool in
  Page.share p;
  (match Pool.free pool p with
  | Pool.Local -> ()
  | Pool.Foreign _ -> Alcotest.fail "unexpected foreign");
  (* Still one reference out: the page must NOT be back in the free list. *)
  Alcotest.(check int) "not pooled while shared" 1 (Pool.available pool);
  (match Pool.free pool p with Pool.Local -> () | Pool.Foreign _ -> Alcotest.fail "foreign");
  Alcotest.(check int) "pooled after last unref" 2 (Pool.available pool)

let test_space_roundtrip () =
  let sp = Space.create ~pid:11 ~pool_capacity:64 in
  let payload = Bytes.init 10_000 (fun i -> Char.chr (i mod 256)) in
  let buf = Space.buffer_of_bytes sp payload ~off:0 ~len:10_000 in
  Alcotest.(check int) "page count" 3 (Array.length buf.Space.pages);
  let back = Space.to_bytes buf in
  Alcotest.(check string) "content intact" (Bytes.to_string payload) (Bytes.to_string back)

let test_space_cow_on_write () =
  let sp = Space.create ~pid:12 ~pool_capacity:64 in
  let payload = Bytes.make 8192 'a' in
  let buf = Space.buffer_of_bytes sp payload ~off:0 ~len:8192 in
  Space.share_for_send buf;
  (* Overwrite crossing a page boundary: both touched pages must COW. *)
  let copies = Space.write sp buf ~at:4000 ~src:(Bytes.make 200 'b') ~src_off:0 ~len:200 in
  Alcotest.(check int) "two pages copied" 2 copies;
  Alcotest.(check int) "space counted them" 2 (Space.cow_copies sp);
  let back = Space.to_bytes buf in
  Alcotest.(check char) "before region" 'a' (Bytes.get back 3999);
  Alcotest.(check char) "in region" 'b' (Bytes.get back 4100);
  Alcotest.(check char) "after region" 'a' (Bytes.get back 4200)

let test_space_unmap_returns_foreign () =
  let sender = Space.create ~pid:21 ~pool_capacity:16 in
  let receiver = Space.create ~pid:22 ~pool_capacity:16 in
  let payload = Bytes.make 4096 'q' in
  let buf = Space.buffer_of_bytes sender payload ~off:0 ~len:4096 in
  (* Receiver maps the sender's page, then unmaps it: the page must be
     reported for return to pid 21. *)
  let rbuf = Space.map_received receiver buf.Space.pages ~len:4096 in
  let foreign = Space.unmap receiver rbuf in
  Alcotest.(check int) "one page to return" 1 (List.length foreign);
  (match foreign with
  | [ (owner, _) ] -> Alcotest.(check int) "owner is the sender" 21 owner
  | _ -> Alcotest.fail "expected one foreign page")

let prop_space_roundtrip =
  QCheck.Test.make ~name:"space buffer_of_bytes/to_bytes roundtrip" ~count:100
    QCheck.(string_of_size (Gen.int_range 1 20000))
    (fun s ->
      let sp = Space.create ~pid:31 ~pool_capacity:64 in
      let buf = Space.buffer_of_bytes sp (Bytes.of_string s) ~off:0 ~len:(String.length s) in
      Bytes.to_string (Space.to_bytes buf) = s)

let prop_cow_preserves_sharers =
  QCheck.Test.make ~name:"COW writes never alter the shared original" ~count:100
    QCheck.(pair (int_range 0 4000) (int_range 1 96))
    (fun (at, len) ->
      let sp = Space.create ~pid:32 ~pool_capacity:64 in
      let original = Bytes.make 4096 'o' in
      let buf = Space.buffer_of_bytes sp original ~off:0 ~len:4096 in
      (* Keep a handle on the original pages, as a receiver would. *)
      let shared_pages = Array.copy buf.Space.pages in
      Space.share_for_send buf;
      ignore (Space.write sp buf ~at ~src:(Bytes.make len 'w') ~src_off:0 ~len);
      (* The shared originals must still read all-'o'. *)
      Array.for_all
        (fun p ->
          let d = Bytes.create 4096 in
          Page.read p ~off:0 ~dst:d ~dst_off:0 ~len:4096;
          Bytes.for_all (fun c -> c = 'o') d)
        shared_pages)

let suite =
  [
    Alcotest.test_case "page write/read" `Quick test_page_write_read;
    Alcotest.test_case "page copy-on-write" `Quick test_page_cow;
    Alcotest.test_case "page write after last unref" `Quick test_page_write_after_last_unref;
    Alcotest.test_case "pool alloc/free" `Quick test_pool_alloc_free;
    Alcotest.test_case "pool kernel refill" `Quick test_pool_refill_on_empty;
    Alcotest.test_case "pool foreign return" `Quick test_pool_foreign_return;
    Alcotest.test_case "pool take_back owner check" `Quick test_pool_take_back_rejects_foreign;
    Alcotest.test_case "pool holds shared pages" `Quick test_pool_shared_page_not_freed_early;
    Alcotest.test_case "space roundtrip" `Quick test_space_roundtrip;
    Alcotest.test_case "space COW on write" `Quick test_space_cow_on_write;
    Alcotest.test_case "space unmap returns foreign pages" `Quick test_space_unmap_returns_foreign;
    QCheck_alcotest.to_alcotest prop_space_roundtrip;
    QCheck_alcotest.to_alcotest prop_cow_preserves_sharers;
  ]
