(* Container live migration (§4.1.3): a ping-pong client container starts on
   the same host as its server (SHM path), migrates to a second host mid
   conversation (channels re-established as RDMA), then migrates back — the
   connection survives with no data loss and its latency tracks locality.

     dune exec examples/migration.exe *)

open Sds_sim
module L = Socksdirect.Libsd

let () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:8 in
  let host_a = Sds_transport.Host.create engine ~cost:Cost.default ~id:0 ~rng () in
  let host_b = Sds_transport.Host.create engine ~cost:Cost.default ~id:1 ~rng () in
  let rounds_per_phase = 50 in
  let ready = ref false in

  ignore
    (Proc.spawn engine ~name:"server" (fun () ->
         let ctx = L.init host_a in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:7100;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let buf = Bytes.create 8 in
         for _ = 1 to 3 * rounds_per_phase do
           let got = ref 0 in
           while !got < 8 do
             got := !got + L.recv th fd buf ~off:!got ~len:(8 - !got)
           done;
           ignore (L.send th fd buf ~off:0 ~len:8)
         done));

  ignore
    (Proc.spawn engine ~name:"container" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ctx = L.init host_a in
         let phase ctx fd label =
           (* After a migration the container's threads are restarted. *)
           let th = L.create_thread ctx ~core:2 () in
           let stats = Stats.create () in
           let buf = Bytes.create 8 in
           for i = 1 to rounds_per_phase do
             let t0 = Engine.now engine in
             Bytes.set_int64_le buf 0 (Int64.of_int i);
             ignore (L.send th fd buf ~off:0 ~len:8);
             let got = ref 0 in
             while !got < 8 do
               got := !got + L.recv th fd buf ~off:!got ~len:(8 - !got)
             done;
             Stats.add stats (float_of_int (Engine.now engine - t0))
           done;
           Fmt.pr "%-28s mean RTT %.2f us@." label (Stats.mean stats /. 1e3)
         in
         let th0 = L.create_thread ctx ~core:2 () in
         let fd = L.socket th0 in
         L.connect th0 fd ~dst:host_a ~port:7100;
         phase ctx fd "phase 1 (intra-host, SHM):";
         L.migrate ctx ~to_host:host_b;
         phase ctx fd "phase 2 (migrated, RDMA):";
         L.migrate ctx ~to_host:host_a;
         phase ctx fd "phase 3 (back home, SHM):"));

  Engine.run engine;
  Fmt.pr "connection survived two live migrations (%d round trips)@." (3 * rounds_per_phase)
