(* redis-benchmark in miniature: a RESP-speaking KV server on one host, a
   closed-loop GET client on another, compared across stacks (§5.3.2).

     dune exec examples/kv_bench.exe *)

open Sds_sim
module Sapi = Sds_apps.Sock_api

let run_stack (module Api : Sapi.S) =
  let module Kv = Sds_apps.Kvstore.Make (Api) in
  let engine = Engine.create () in
  let rng = Rng.create ~seed:4 in
  let client_host = Sds_transport.Host.create engine ~cost:Cost.default ~id:0 ~rng () in
  let server_host = Sds_transport.Host.create engine ~cost:Cost.default ~id:1 ~rng () in
  let gets = 200 in
  let ready = ref false in
  ignore
    (Proc.spawn engine ~name:"kv-server" (fun () ->
         let ep = Api.make_endpoint server_host ~core:1 in
         let l = Api.listen ep ~port:6379 in
         ready := true;
         Kv.run_server ep l ~requests:(gets + 1)));
  let stats = Stats.create () in
  ignore
    (Proc.spawn engine ~name:"kv-client" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint client_host ~core:0 in
         Kv.run_client ep ~server:server_host ~port:6379 ~gets ~value_size:8
           ~on_latency:(fun ns -> Stats.add stats (float_of_int ns))));
  Engine.run engine;
  let s = Stats.summarize stats in
  Fmt.pr "%-12s GET x%d: mean %.1f us  [p1 %.1f, p99 %.1f]@." Api.name gets
    (s.Stats.mean_v /. 1e3) (s.Stats.p1 /. 1e3) (s.Stats.p99 /. 1e3)

let () =
  Fmt.pr "8-byte GET latency (client and server on different hosts):@.";
  run_stack (module Sapi.Linux);
  run_stack (module Sapi.Sds)
