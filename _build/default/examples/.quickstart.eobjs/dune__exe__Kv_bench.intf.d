examples/kv_bench.mli:
