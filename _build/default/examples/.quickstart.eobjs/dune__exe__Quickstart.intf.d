examples/quickstart.mli:
