examples/kv_bench.ml: Cost Engine Fmt Proc Rng Sds_apps Sds_sim Sds_transport Stats
