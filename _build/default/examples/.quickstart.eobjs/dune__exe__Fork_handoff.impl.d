examples/fork_handoff.ml: Bytes Cost Engine Fmt Printf Proc Rng Sds_sim Sds_transport Socksdirect String
