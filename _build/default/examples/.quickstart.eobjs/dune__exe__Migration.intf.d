examples/migration.mli:
