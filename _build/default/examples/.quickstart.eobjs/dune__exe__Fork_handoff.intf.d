examples/fork_handoff.mli:
