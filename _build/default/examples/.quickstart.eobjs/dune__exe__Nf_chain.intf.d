examples/nf_chain.mli:
