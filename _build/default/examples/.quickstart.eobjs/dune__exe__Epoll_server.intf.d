examples/epoll_server.mli:
