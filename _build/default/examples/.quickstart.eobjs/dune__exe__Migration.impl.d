examples/migration.ml: Bytes Cost Engine Fmt Int64 Proc Rng Sds_sim Sds_transport Socksdirect Stats
