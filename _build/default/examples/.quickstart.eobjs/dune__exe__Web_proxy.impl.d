examples/web_proxy.ml: Cost Engine Fmt Proc Rng Sds_apps Sds_sim Sds_transport Stats
