examples/web_proxy.mli:
