examples/nf_chain.ml: Array Cost Engine Fmt Proc Rng Sds_apps Sds_sim Sds_transport
