examples/epoll_server.ml: Bytes Cost Engine Fmt List Printf Proc Rng Sds_kernel Sds_sim Sds_transport Socksdirect String
