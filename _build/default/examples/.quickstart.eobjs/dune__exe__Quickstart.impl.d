examples/quickstart.ml: Bytes Cost Engine Fmt Host Proc Rng Sds_sim Sds_transport Socksdirect
