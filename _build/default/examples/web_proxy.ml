(* The Figure-11 scenario as a runnable example: a request generator on one
   host, an Nginx-style reverse proxy plus an upstream responder on another,
   the same application code running over SocksDirect and over the Linux
   kernel model.

     dune exec examples/web_proxy.exe *)

open Sds_sim
module Sapi = Sds_apps.Sock_api

let run_stack (module Api : Sapi.S) =
  let module H = Sds_apps.Http.Make (Api) in
  let engine = Engine.create () in
  let rng = Rng.create ~seed:3 in
  let gen_host = Sds_transport.Host.create engine ~cost:Cost.default ~id:0 ~rng () in
  let web_host = Sds_transport.Host.create engine ~cost:Cost.default ~id:1 ~rng () in
  let requests = 20 in
  let upstream_ready = ref false and proxy_ready = ref false in
  ignore
    (Proc.spawn engine ~name:"responder" (fun () ->
         let ep = Api.make_endpoint web_host ~core:2 in
         let l = Api.listen ep ~port:8080 in
         upstream_ready := true;
         H.run_responder ep l ~requests));
  ignore
    (Proc.spawn engine ~name:"proxy" (fun () ->
         while not !upstream_ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint web_host ~core:1 in
         let l = Api.listen ep ~port:80 in
         proxy_ready := true;
         H.run_proxy ep ~listener:l ~upstream:web_host ~upstream_port:8080 ~requests));
  let stats = Stats.create () in
  ignore
    (Proc.spawn engine ~name:"generator" (fun () ->
         while not !proxy_ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint gen_host ~core:0 in
         H.run_generator ep ~proxy:web_host ~port:80 ~requests ~size:4096
           ~on_latency:(fun ns -> Stats.add stats (float_of_int ns))));
  Engine.run engine;
  Fmt.pr "%-12s %d requests of 4 KiB: mean %.1f us, p99 %.1f us@." Api.name requests
    (Stats.mean stats /. 1e3)
    (Stats.percentile stats 99. /. 1e3)

let () =
  Fmt.pr "HTTP request latency through a reverse proxy (generator on a remote host):@.";
  run_stack (module Sapi.Sds);
  run_stack (module Sapi.Linux)
