(* An epoll-driven event-loop server — the Nginx/Memcached/Redis pattern
   whose absence makes RSocket incompatible with those applications
   (Table 3).  One thread multiplexes a listening socket, several client
   connections, AND a regular kernel pipe through a single epoll instance:
   the §4.4 "events from both user-space sockets and kernel FDs" case.

     dune exec examples/epoll_server.exe *)

open Sds_sim
module L = Socksdirect.Libsd
module K = Sds_kernel.Kernel

let clients = 4
let requests_per_client = 3

let () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:9 in
  let host = Sds_transport.Host.create engine ~cost:Cost.default ~id:0 ~rng () in
  let ready = ref false in
  let served = ref 0 in

  ignore
    (Proc.spawn engine ~name:"event-loop" (fun () ->
         let ctx = L.init host in
         let th = L.create_thread ctx ~core:0 () in
         (* A kernel pipe delivers "control" messages into the same loop. *)
         let kproc = L.kernel_process ctx in
         let pipe_r, pipe_w = K.pipe kproc in
         let pipe_fd = L.register_kernel_fd th pipe_r in
         ignore
           (Proc.spawn engine ~name:"ticker" (fun () ->
                Proc.sleep_ns 50_000;
                ignore (K.send kproc pipe_w (Bytes.of_string "T") ~off:0 ~len:1)));
         let listener = L.socket th in
         L.bind th listener ~port:8000;
         L.listen th listener;
         ready := true;
         let ep = L.epoll_create th in
         L.epoll_add th ep listener;
         L.epoll_add th ep pipe_fd;
         let live = ref 0 in
         let accepted = ref 0 in
         let buf = Bytes.create 4096 in
         let finished = ref false in
         while not !finished do
           let events = L.epoll_wait th ep () in
           List.iter
             (fun fd ->
               if fd = listener && !accepted < clients then begin
                 let conn = L.accept th listener in
                 incr accepted;
                 incr live;
                 L.epoll_add th ep conn
               end
               else if fd = pipe_fd then begin
                 let n = L.recv th pipe_fd buf ~off:0 ~len:1 in
                 Fmt.pr "[loop] kernel pipe event (%d byte)@." n
               end
               else begin
                 let n = L.recv th fd buf ~off:0 ~len:4096 in
                 if n = 0 then begin
                   L.epoll_del th ep fd;
                   L.close th fd;
                   decr live;
                   if !accepted = clients && !live = 0 then finished := true
                 end
                 else begin
                   incr served;
                   ignore (L.send th fd buf ~off:0 ~len:n)
                 end
               end)
             events
         done;
         Fmt.pr "[loop] served %d requests over %d connections in one thread@." !served clients));

  for c = 1 to clients do
    ignore
      (Proc.spawn engine ~name:(Fmt.str "client%d" c) (fun () ->
           while not !ready do
             Proc.sleep_ns 1_000
           done;
           (* Stagger the clients so the event loop really multiplexes. *)
           Proc.sleep_ns (c * 7_000);
           let ctx = L.init host in
           let th = L.create_thread ctx ~core:c () in
           let fd = L.socket th in
           L.connect th fd ~dst:host ~port:8000;
           let buf = Bytes.create 64 in
           for r = 1 to requests_per_client do
             let msg = Printf.sprintf "c%d-r%d" c r in
             ignore (L.send th fd (Bytes.of_string msg) ~off:0 ~len:(String.length msg));
             let n = L.recv th fd buf ~off:0 ~len:64 in
             assert (Bytes.sub_string buf 0 n = msg);
             Proc.sleep_ns 5_000
           done;
           L.close th fd))
  done;

  Engine.run engine;
  assert (!served = clients * requests_per_client);
  Fmt.pr "all %d echoes correct (%.1f us simulated)@." !served
    (float_of_int (Engine.now engine) /. 1e3)
