(* The fork compatibility scenario that breaks LibVMA and RSocket (§2.2):
   a master process accepts a connection, forks, and hands the accepted
   socket to the child worker while continuing to accept on the listener —
   the process model of Apache, PHP-FPM, gunicorn and friends.

     dune exec examples/fork_handoff.exe *)

open Sds_sim
module L = Socksdirect.Libsd

let () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let host = Sds_transport.Host.create engine ~cost:Cost.default ~id:0 ~rng () in
  let workers = 3 in
  let ready = ref false in

  ignore
    (Proc.spawn engine ~name:"master" (fun () ->
         let ctx = L.init host in
         let th = L.create_thread ctx ~core:0 () in
         let listener = L.socket th in
         L.bind th listener ~port:9090;
         L.listen th listener;
         ready := true;
         for i = 1 to workers do
           (* Master accepts... *)
           let conn = L.accept th listener in
           (* ...then forks; the child owns the accepted socket (the
              master keeps the listener). *)
           let child = L.fork th in
           ignore
             (Proc.spawn engine ~name:(Fmt.str "worker%d" i) (fun () ->
                  let wth = L.create_thread child ~core:i () in
                  let buf = Bytes.create 64 in
                  let n = L.recv wth conn buf ~off:0 ~len:64 in
                  let reply = Printf.sprintf "worker-%d handled %S" i (Bytes.sub_string buf 0 n) in
                  ignore (L.send wth conn (Bytes.of_string reply) ~off:0 ~len:(String.length reply));
                  L.close wth conn));
           (* The master also closes its reference; the socket stays alive
              through the child's reference count. *)
           L.close th conn
         done));

  ignore
    (Proc.spawn engine ~name:"clients" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ctx = L.init host in
         let th = L.create_thread ctx ~core:(workers + 1) () in
         for i = 1 to workers do
           let c = L.socket th in
           L.connect th c ~dst:host ~port:9090;
           let req = Printf.sprintf "request-%d" i in
           ignore (L.send th c (Bytes.of_string req) ~off:0 ~len:(String.length req));
           let buf = Bytes.create 128 in
           let n = L.recv th c buf ~off:0 ~len:128 in
           Fmt.pr "[client] %s@." (Bytes.sub_string buf 0 n);
           L.close th c
         done));

  Engine.run engine;
  Fmt.pr "all %d connections served by forked workers (%.1f us simulated)@." workers
    (float_of_int (Engine.now engine) /. 1e3)
