(* A network-function chain (§5.3.4): pcap-format packets flow through
   counter NFs connected by SocksDirect sockets, one process per NF.

     dune exec examples/nf_chain.exe *)

open Sds_sim
module Api = Sds_apps.Sock_api.Sds
module C = Sds_apps.Nf.Sock_channel (Api)
module R = Sds_apps.Nf.Run (C)
module Io = Sds_apps.Sock_api.Io (Api)

let () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:6 in
  let host = Sds_transport.Host.create engine ~cost:Cost.default ~id:0 ~rng () in
  let stages = 4 in
  let packets = 5_000 in
  let ready = Array.make (stages + 1) false in
  let t_start = ref 0 and t_end = ref 0 in

  for i = 0 to stages do
    let port = 7500 + i in
    ignore
      (Proc.spawn engine ~name:(Fmt.str "nf%d" i) (fun () ->
           let ep = Api.make_endpoint host ~core:(1 + i) in
           let l = Api.listen ep ~port in
           ready.(i) <- true;
           let input = Io.make ep (Api.accept ep l) in
           if i = stages then begin
             let n = R.sink ~input in
             t_end := Engine.now engine;
             Fmt.pr "[sink] received %d packets@." n
           end
           else begin
             let output = Io.make ep (Api.connect ep ~dst:host ~port:(port + 1)) in
             let count = R.nf_stage ~input ~output in
             Fmt.pr "[nf%d] processed %d packets@." i count
           end))
  done;

  ignore
    (Proc.spawn engine ~name:"source" (fun () ->
         while not (Array.for_all (fun r -> r) ready) do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint host ~core:0 in
         let output = Io.make ep (Api.connect ep ~dst:host ~port:7500) in
         t_start := Engine.now engine;
         R.source ~output ~packets));

  Engine.run engine;
  let elapsed = !t_end - !t_start in
  Fmt.pr "%d packets through %d NFs in %.2f ms simulated -> %.2f M packet/s@." packets stages
    (float_of_int elapsed /. 1e6)
    (float_of_int packets /. (float_of_int elapsed /. 1e9) /. 1e6)
