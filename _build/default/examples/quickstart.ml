(* Quickstart: bring up two hosts, run a SocksDirect echo server on one and
   a client on the other, then do the same intra-host — the minimal use of
   the public API.

     dune exec examples/quickstart.exe *)

open Sds_sim
open Sds_transport
module L = Socksdirect.Libsd

let () =
  (* A simulated world: an engine (time), two RDMA-capable hosts. *)
  let engine = Engine.create () in
  let cost = Cost.default in
  let rng = Rng.create ~seed:1 in
  let host_a = Host.create engine ~cost ~id:0 ~rng () in
  let host_b = Host.create engine ~cost ~id:1 ~rng () in

  (* Server process on host B. *)
  let server_ready = ref false in
  ignore
    (Proc.spawn engine ~name:"server" (fun () ->
         let ctx = L.init host_b in
         let th = L.create_thread ctx ~core:0 () in
         let listener = L.socket th in
         L.bind th listener ~port:7000;
         L.listen th listener;
         server_ready := true;
         (* Serve two connections: one remote, one local. *)
         for _ = 1 to 2 do
           let conn = L.accept th listener in
           let buf = Bytes.create 64 in
           let n = L.recv th conn buf ~off:0 ~len:64 in
           Fmt.pr "[server] got %S@." (Bytes.sub_string buf 0 n);
           ignore (L.send th conn buf ~off:0 ~len:n);
           L.close th conn
         done));

  (* Inter-host client on host A: the connection runs over the simulated
     RDMA NICs. *)
  ignore
    (Proc.spawn engine ~name:"client-remote" (fun () ->
         while not !server_ready do
           Proc.sleep_ns 1_000
         done;
         let ctx = L.init host_a in
         let th = L.create_thread ctx ~core:0 () in
         let conn = L.socket th in
         let t0 = Engine.now engine in
         L.connect th conn ~dst:host_b ~port:7000;
         let msg = Bytes.of_string "hello over RDMA" in
         ignore (L.send th conn msg ~off:0 ~len:(Bytes.length msg));
         let buf = Bytes.create 64 in
         let n = L.recv th conn buf ~off:0 ~len:64 in
         Fmt.pr "[client-remote] echo %S, %d ns round trip incl. connect@."
           (Bytes.sub_string buf 0 n)
           (Engine.now engine - t0);
         L.close th conn;

         (* Intra-host client on host B itself: same API, SHM underneath. *)
         let ctx_local = L.init host_b in
         let th_local = L.create_thread ctx_local ~core:1 () in
         let conn2 = L.socket th_local in
         L.connect th_local conn2 ~dst:host_b ~port:7000;
         let msg2 = Bytes.of_string "hello over SHM" in
         ignore (L.send th_local conn2 msg2 ~off:0 ~len:(Bytes.length msg2));
         let n2 = L.recv th_local conn2 buf ~off:0 ~len:64 in
         Fmt.pr "[client-local] echo %S@." (Bytes.sub_string buf 0 n2);
         L.close th_local conn2));

  Engine.run engine;
  Fmt.pr "simulated time elapsed: %d ns@." (Engine.now engine)
