(** A libibverbs-flavoured facade over the NIC model: protection domains,
    registered memory regions, the RESET/INIT/RTR/RTS queue-pair ladder,
    work requests and completion polling — with the call discipline a real
    verbs provider enforces.

    All functions that move a QP or post work must run inside a simulated
    proc (they charge time or block). *)

exception Invalid_state of string

type access = Local_read | Local_write | Remote_read | Remote_write

type pd
type qp_state = Reset | Init | Rtr | Rts | Error

type mr = {
  mr_pd : pd;
  mr_id : int;
  buf : Bytes.t;
  lkey : int;
  rkey : int;
  mutable access : access list;
  mutable registered : bool;
}

type qp = {
  vqp_pd : pd;
  mutable raw : Nic.qp option;
  mutable state : qp_state;
  send_cq : Nic.cq;
  recv_cq : Nic.cq;
  mutable posted_recvs : mr list;
}

val alloc_pd : Nic.nic -> pd

val reg_mr : pd -> Bytes.t -> access:access list -> mr
(** Pins the buffer; charges the kernel crossing plus per-page pin cost. *)

val dereg_mr : mr -> unit
val create_cq : Nic.nic -> Nic.cq
val create_qp : pd -> send_cq:Nic.cq -> recv_cq:Nic.cq -> qp

val modify_qp_init : qp -> unit
val modify_qp_rtr : qp -> peer:qp -> unit
(** Wires the RC channel to [peer] (both sides must be at least INIT). *)

val modify_qp_rts : qp -> unit

val post_recv : qp -> mr -> unit
(** Queue a LOCAL_WRITE MR on the receive queue (two-sided). *)

type send_opcode =
  | Rdma_write_with_imm of { imm : int }
  | Send

val export_rkey : mr -> int
(** Grant remote-write access; returns the rkey to hand to the peer. *)

val post_send : qp -> opcode:send_opcode -> mr:mr -> off:int -> len:int -> ?remote_rkey:int -> unit -> unit
(** Raises {!Invalid_state} on a non-RTS QP, a deregistered or read-denied
    MR, an out-of-bounds scatter entry, or an RDMA write without a valid
    rkey.  Blocks while the send queue is full. *)

val poll_cq : Nic.cq -> max:int -> Nic.completion list

val install_recv_handler : qp -> on_recv:(mr -> int -> unit) -> unit
(** Route inbound two-sided messages into posted receive MRs. *)
