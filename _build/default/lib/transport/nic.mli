(** RDMA NIC model: reliable-connection queue pairs, one-sided WRITE with
    immediate, two-sided SEND, completion queues, adaptive batching, an
    on-NIC QP-state cache with miss penalty, and 100 Gbps egress-link
    serialization with per-QP and NIC-global WQE-rate limits.

    Latency decomposition follows the paper's Table 4: doorbell + DMA on the
    send side, wire serialization per byte, NIC processing + propagation,
    and an extra receive-side DMA for two-sided verbs. *)

open Sds_sim

type nic
type cq
type qp

type recovery = Go_back_n | Selective

type completion = {
  qp_id : int;
  wr_id : int;
  imm : int option;
  msg : Msg.t option;  (** delivered message for receive completions *)
}

val create_nic : Engine.t -> cost:Cost.t -> host_id:int -> nic
val nic_cost : nic -> Cost.t
val create_cq : nic -> cq

val cq_waitq : cq -> Waitq.t
val cq_pending : cq -> int
val cq_poll : cq -> completion option

val connect_qps :
  ?charge_setup:bool ->
  nic ->
  nic ->
  scq_a:cq ->
  rcq_a:cq ->
  scq_b:cq ->
  rcq_b:cq ->
  qp * qp
(** Create a connected QP pair.  [charge_setup] (default true) bills the
    ~30 us libibverbs creation latency to the calling proc. *)

val destroy_qp : qp -> unit

val set_remote_sink : qp -> (Msg.t -> unit) -> unit
(** What a remote-memory write means at THIS side: messages fired on the
    peer QP are committed through this sink before their completion. *)

val on_commit : qp -> (Msg.t -> unit) -> unit
(** The dual: install the commit handler for writes fired ON [qp]
    (equivalent to [set_remote_sink] on its peer). *)

val set_batching : qp -> bool -> unit
(** Enable §4.2 adaptive batching: pending sends merge into one WQE on
    completion.  Off by default (plain RDMA posts one WQE per message). *)

val inflight : qp -> int
val batched_flushes : qp -> int

val wait_send_capacity : qp -> unit
(** Block the calling proc until the send queue has a free WQE slot. *)

val write_imm : qp -> Msg.t -> imm:int -> unit
(** One-sided write with immediate — the SocksDirect data path.  Below the
    in-flight cap the message goes out alone (minimum latency); above it,
    it joins the pending batch (maximum throughput). *)

val send_2sided : qp -> Msg.t -> unit
(** Two-sided send (RSocket's primitive): extra receive-side DMA. *)

val hairpin : nic -> Msg.t -> deliver:(Msg.t -> unit) -> unit
(** Intra-host forwarding through the NIC (LibVMA / RSocket / Arrakis
    style): one PCIe traversal each way. *)

val stats : nic -> int * int * int * int
(** [(tx_wqes, tx_msgs, tx_bytes, qp_cache_misses)]. *)

val live_qps : nic -> int

val set_loss : nic -> ppm:int -> recovery:recovery -> seed:int -> unit
(** Configure the lossy-fabric model on this NIC's egress: drop probability
    in parts per million and the recovery scheme.  Commits at the receiver
    stay strictly in WQE order either way (RC semantics); go-back-N
    additionally stalls the pipeline behind the hole. *)

val retransmits : nic -> int

val set_rate_limit : qp -> bytes_per_sec:float -> burst_bytes:int -> unit
(** Per-QP hardware rate limiter — the "QoS offloaded to the NIC" row of
    Table 3.  Egress of this QP is shaped; other QPs are unaffected. *)
