lib/transport/verbs.ml: Bytes Cost Hashtbl List Msg Nic Proc Sds_sim
