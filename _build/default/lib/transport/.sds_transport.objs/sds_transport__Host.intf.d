lib/transport/host.mli: Cost Cpu Engine Hashtbl Nic Obj Rng Sds_sim
