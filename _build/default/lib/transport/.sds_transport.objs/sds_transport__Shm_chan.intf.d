lib/transport/shm_chan.mli: Cost Engine Msg Nic Sds_sim Waitq
