lib/transport/shm_chan.ml: Array Bytes Cost Engine Int64 List Msg Nic Proc Queue Sds_ring Sds_sim Sds_vm Waitq
