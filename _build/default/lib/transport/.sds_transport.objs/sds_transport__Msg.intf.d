lib/transport/msg.mli: Bytes Sds_vm
