lib/transport/nic.mli: Cost Engine Msg Sds_sim Waitq
