lib/transport/host.ml: Array Cost Cpu Engine Hashtbl Nic Obj Rng Sds_sim
