lib/transport/msg.ml: Array Bytes Sds_vm
