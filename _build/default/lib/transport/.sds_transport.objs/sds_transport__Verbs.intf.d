lib/transport/verbs.mli: Bytes Nic
