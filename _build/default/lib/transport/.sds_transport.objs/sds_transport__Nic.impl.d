lib/transport/nic.ml: Cost Engine Hashtbl List Msg Proc Queue Resource Rng Sds_sim Waitq
