(* Baseline: a multi-producer/multi-consumer message queue protected by a
   mutex — the "socket FD lock" design every operation of Linux, LibVMA and
   RSocket pays (§2.1.1).  Used by the Bechamel suite to measure the real
   cost gap against the lock-free SPSC ring on identical workloads. *)

type t = {
  lock : Mutex.t;
  q : Bytes.t Queue.t;
  capacity_bytes : int;
  mutable used : int;
  mutable enqueued : int;
  mutable dequeued : int;
}

let create ?(capacity_bytes = 64 * 1024) () =
  { lock = Mutex.create (); q = Queue.create (); capacity_bytes; used = 0; enqueued = 0; dequeued = 0 }

let try_enqueue t src ~off ~len =
  Mutex.lock t.lock;
  let ok = t.used + len <= t.capacity_bytes in
  if ok then begin
    t.q |> Queue.push (Bytes.sub src off len);
    t.used <- t.used + len;
    t.enqueued <- t.enqueued + 1
  end;
  Mutex.unlock t.lock;
  ok

let try_dequeue t =
  Mutex.lock t.lock;
  let r = Queue.take_opt t.q in
  (match r with
  | Some b ->
    t.used <- t.used - Bytes.length b;
    t.dequeued <- t.dequeued + 1
  | None -> ());
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  Mutex.unlock t.lock;
  n
