(** The per-socket allocation-free ring buffer of §4.2.

    Single-producer / single-consumer; messages stored back-to-back with an
    8-byte header; credit-based flow control with batched credit return.

    Invariant: [credits + pending-return + used = capacity], and a message
    occupies at most half the ring, so a blocked sender always becomes
    unblocked once the consumer drains the ring (no credit deadlock). *)

type t

val header_bytes : int

val create : ?size:int -> unit -> t
(** [size] must be a power of two [>= 64]; default 64 KiB. *)

val capacity : t -> int
val credits : t -> int
(** Producer-side view of free bytes. *)

val used : t -> int
val is_empty : t -> bool
val enqueued : t -> int
val dequeued : t -> int

val record_bytes : int -> int
(** Ring bytes occupied by a message of the given payload length. *)

val try_enqueue : ?flags:int -> t -> Bytes.t -> off:int -> len:int -> bool
(** [false] when the sender lacks credits.  Raises [Invalid_argument] when
    the message alone exceeds half the ring (the zero-copy path must be used
    for those). *)

type dequeued = { data : Bytes.t; flags : int }

val try_dequeue : ?auto_credit:bool -> t -> dequeued option
(** [auto_credit] returns credits synchronously (bare in-process queue); the
    default leaves them pending for the transport to deliver. *)

val take_credit_return : t -> int
(** Credits the consumer owes; non-zero only once half the ring has been
    consumed (batched credit-return flag). *)

val return_credits : t -> int -> unit
(** Deliver a credit return to the producer side. *)

val peek_len : t -> int option
