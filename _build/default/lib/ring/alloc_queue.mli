(** Baseline NIC-style ring (Figure 4a): fixed metadata slots, one freshly
    allocated MTU-sized buffer per packet, internal fragmentation for
    sub-MTU payloads (§2.1.2). *)

type t

val create : ?slots:int -> ?buffer_size:int -> unit -> t
val slots : t -> int
val length : t -> int

val try_enqueue : t -> Bytes.t -> off:int -> len:int -> bool
(** [false] when all slots are occupied.  Raises [Invalid_argument] when the
    payload exceeds the per-packet buffer size. *)

val try_dequeue : t -> Bytes.t option

val bytes_wasted : t -> int
(** Accumulated internal fragmentation. *)
