(** Baseline message queue protected by a mutex on every operation — the
    per-FD-lock design of §2.1.1, measured against the lock-free SPSC ring
    by the Bechamel suite. *)

type t

val create : ?capacity_bytes:int -> unit -> t

val try_enqueue : t -> Bytes.t -> off:int -> len:int -> bool
(** [false] when the byte capacity would be exceeded. *)

val try_dequeue : t -> Bytes.t option
val length : t -> int
