(* The per-socket allocation-free ring buffer of §4.2.

   Messages are stored back-to-back in one contiguous byte ring: an 8-byte
   header (4-byte length, 2-byte flags, 2-byte checksum of the header) is
   followed immediately by the payload, padded to 8-byte alignment so header
   reads are aligned.  There is no per-packet buffer allocation and no
   metadata ring: enqueue is a bounds check plus two blits.

   Flow control is credit-based exactly as in the paper: the sender spends
   [credits] bytes per enqueue; the receiver counts consumed bytes and posts
   a credit return once it crosses half the ring, which the transport layer
   delivers back to the sender (in shared memory this is a single flag write;
   under RDMA it rides an RDMA write).  [dequeue ~auto_credit:true] performs
   the return synchronously, which is what a bare in-process queue does.

   Single-producer / single-consumer by design — SocksDirect guarantees one
   active sender and one active receiver per direction via tokens, which is
   precisely what removes the per-operation lock. *)

let header_bytes = 8
let align = 8

type t = {
  buf : Bytes.t;
  size : int;  (** power of two *)
  mask : int;
  mutable head : int;  (** consumer position (absolute, monotonically grows) *)
  mutable tail : int;  (** producer position (absolute) *)
  mutable credits : int;  (** producer-side view of free bytes *)
  mutable pending_return : int;  (** consumer-side bytes not yet returned *)
  mutable enqueued : int;
  mutable dequeued : int;
}

let default_size = 64 * 1024

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(size = default_size) () =
  if not (is_power_of_two size) then invalid_arg "Spsc_ring.create: size must be a power of two";
  if size < 64 then invalid_arg "Spsc_ring.create: size too small";
  {
    buf = Bytes.create size;
    size;
    mask = size - 1;
    head = 0;
    tail = 0;
    credits = size;
    pending_return = 0;
    enqueued = 0;
    dequeued = 0;
  }

let capacity t = t.size
let credits t = t.credits
let used t = t.tail - t.head
let is_empty t = t.head = t.tail
let enqueued t = t.enqueued
let dequeued t = t.dequeued

let record_bytes len = (header_bytes + len + align - 1) land lnot (align - 1)

(* Wrap-around blit of [len] bytes from [src] into the ring at absolute
   position [pos]. *)
let blit_in t src src_off pos len =
  let off = pos land t.mask in
  let first = min len (t.size - off) in
  Bytes.blit src src_off t.buf off first;
  if first < len then Bytes.blit src (src_off + first) t.buf 0 (len - first)

let blit_out t pos dst dst_off len =
  let off = pos land t.mask in
  let first = min len (t.size - off) in
  Bytes.blit t.buf off dst dst_off first;
  if first < len then Bytes.blit t.buf 0 dst (dst_off + first) (len - first)

let header_checksum len flags = (len lxor (len lsr 13) lxor flags) land 0xFFFF

let write_header t pos len flags =
  let hdr = Bytes.create header_bytes in
  Bytes.set_int32_le hdr 0 (Int32.of_int len);
  Bytes.set_uint16_le hdr 4 flags;
  Bytes.set_uint16_le hdr 6 (header_checksum len flags);
  blit_in t hdr 0 pos header_bytes

let read_header t pos =
  let hdr = Bytes.create header_bytes in
  blit_out t pos hdr 0 header_bytes;
  let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
  let flags = Bytes.get_uint16_le hdr 4 in
  let sum = Bytes.get_uint16_le hdr 6 in
  if sum <> header_checksum len flags then None else Some (len, flags)

(* Attempt to enqueue [len] bytes of [src] (with [flags] in the header).
   Returns [false] when the sender lacks credits — never overwrites. *)
let try_enqueue ?(flags = 0) t src ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length src then invalid_arg "Spsc_ring.try_enqueue";
  let need = record_bytes len in
  if need > t.size / 2 then invalid_arg "Spsc_ring.try_enqueue: message larger than half ring";
  if need > t.credits then false
  else begin
    (* Payload first, then the header: the consumer polls the header, so
       total-store-order (or the RDMA completion) guarantees it never reads
       a half-written payload (§4.2 consistency argument). *)
    blit_in t src (off + 0) (t.tail + header_bytes) len;
    write_header t t.tail len flags;
    t.tail <- t.tail + need;
    t.credits <- t.credits - need;
    t.enqueued <- t.enqueued + 1;
    true
  end

type dequeued = { data : Bytes.t; flags : int }

(* Credit return the consumer owes the producer; the transport delivers it by
   calling [return_credits].  Returns 0 until half the ring has been
   consumed, matching the paper's batched credit-return flag. *)
let take_credit_return t =
  if t.pending_return >= t.size / 2 then begin
    let r = t.pending_return in
    t.pending_return <- 0;
    r
  end
  else 0

let return_credits t n =
  if n < 0 || t.credits + n > t.size then invalid_arg "Spsc_ring.return_credits";
  t.credits <- t.credits + n

let try_dequeue ?(auto_credit = false) t =
  if t.head = t.tail then None
  else
    match read_header t t.head with
    | None -> None
    | Some (len, flags) ->
      let data = Bytes.create len in
      blit_out t (t.head + header_bytes) data 0 len;
      let consumed = record_bytes len in
      t.head <- t.head + consumed;
      t.pending_return <- t.pending_return + consumed;
      t.dequeued <- t.dequeued + 1;
      if auto_credit then begin
        let r = t.pending_return in
        t.pending_return <- 0;
        t.credits <- t.credits + r
      end;
      Some { data; flags }

(* Peek the length of the next message without consuming it. *)
let peek_len t =
  if t.head = t.tail then None
  else
    match read_header t t.head with
    | None -> None
    | Some (len, _) -> Some len
