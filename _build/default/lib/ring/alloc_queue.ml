(* Baseline: the traditional NIC-style ring of Figure 4a — a fixed-size ring
   of metadata entries, each pointing at a freshly allocated MTU-sized packet
   buffer.  Every message pays a buffer allocate + free and suffers internal
   fragmentation for sub-MTU payloads (§2.1.2).  Used by the Bechamel suite
   to measure buffer-management overhead against the back-to-back ring. *)

type entry = { buf : Bytes.t; mutable len : int }

type t = {
  entries : entry option array;
  mutable head : int;
  mutable tail : int;
  buffer_size : int;
  mutable enqueued : int;
  mutable dequeued : int;
  mutable bytes_wasted : int;  (** internal fragmentation accumulator *)
}

let create ?(slots = 1024) ?(buffer_size = 4096) () =
  { entries = Array.make slots None; head = 0; tail = 0; buffer_size; enqueued = 0; dequeued = 0; bytes_wasted = 0 }

let slots t = Array.length t.entries
let length t = t.tail - t.head

let try_enqueue t src ~off ~len =
  if len > t.buffer_size then invalid_arg "Alloc_queue.try_enqueue: larger than MTU buffer";
  if t.tail - t.head >= Array.length t.entries then false
  else begin
    (* The allocation below is the point of this baseline: one fresh
       MTU-sized buffer per packet. *)
    let buf = Bytes.create t.buffer_size in
    Bytes.blit src off buf 0 len;
    t.entries.(t.tail mod Array.length t.entries) <- Some { buf; len };
    t.tail <- t.tail + 1;
    t.enqueued <- t.enqueued + 1;
    t.bytes_wasted <- t.bytes_wasted + (t.buffer_size - len);
    true
  end

let try_dequeue t =
  if t.head = t.tail then None
  else begin
    let idx = t.head mod Array.length t.entries in
    match t.entries.(idx) with
    | None -> None
    | Some e ->
      t.entries.(idx) <- None;
      t.head <- t.head + 1;
      t.dequeued <- t.dequeued + 1;
      (* Copy out, then drop the buffer (the "free" half of alloc/free). *)
      Some (Bytes.sub e.buf 0 e.len)
  end

let bytes_wasted t = t.bytes_wasted
