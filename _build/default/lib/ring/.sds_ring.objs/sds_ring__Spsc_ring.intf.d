lib/ring/spsc_ring.mli: Bytes
