lib/ring/alloc_queue.ml: Array Bytes
