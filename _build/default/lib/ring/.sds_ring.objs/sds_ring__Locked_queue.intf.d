lib/ring/locked_queue.mli: Bytes
