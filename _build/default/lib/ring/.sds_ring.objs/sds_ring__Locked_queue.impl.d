lib/ring/locked_queue.ml: Bytes Mutex Queue
