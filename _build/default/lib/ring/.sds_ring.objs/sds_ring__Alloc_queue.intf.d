lib/ring/alloc_queue.mli: Bytes
