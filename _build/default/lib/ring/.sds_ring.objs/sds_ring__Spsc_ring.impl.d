lib/ring/spsc_ring.ml: Array Atomic Bytes Char Int32 List
