lib/ring/spsc_ring.ml: Bytes Int32
