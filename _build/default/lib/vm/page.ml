(* Simulated physical pages.

   A page carries real payload bytes so that content integrity through the
   zero-copy remap paths is testable, plus the state the §4.3 mechanism
   manipulates: reference count (sharing after remap), copy-on-write flag,
   and RDMA pin state. *)

let size = 4096

type t = {
  id : int;
  mutable data : Bytes.t;
  mutable refcount : int;
  mutable cow : bool;
  mutable pinned : bool;
  mutable owner : int;  (** process id of the pool that must receive it back *)
}

let counter = ref 0

let create ~owner =
  incr counter;
  { id = !counter; data = Bytes.create size; refcount = 1; cow = false; pinned = false; owner }

let pages_for_bytes len = (len + size - 1) / size

(* Write [src] into the page at [off], honouring copy-on-write: a shared COW
   page is first replaced by a private copy (the caller charges the copy
   cost). Returns the page that now holds the data (either [t] or the new
   private copy) and whether a copy happened. *)
let write t ~off ~src ~src_off ~len =
  if t.cow && t.refcount > 1 then begin
    let fresh = create ~owner:t.owner in
    Bytes.blit t.data 0 fresh.data 0 size;
    t.refcount <- t.refcount - 1;
    Bytes.blit src src_off fresh.data off len;
    (fresh, true)
  end
  else begin
    t.cow <- false;
    Bytes.blit src src_off t.data off len;
    (t, false)
  end

let read t ~off ~dst ~dst_off ~len = Bytes.blit t.data off dst dst_off len

let share t =
  t.refcount <- t.refcount + 1;
  t.cow <- true

let unref t =
  if t.refcount <= 0 then invalid_arg "Page.unref: refcount already zero";
  t.refcount <- t.refcount - 1

let pin t = t.pinned <- true
let unpin t = t.pinned <- false

(* Obfuscated physical address as passed over the SHM control channel: the
   monitor-blessed NIC driver hands these out so a process cannot forge a
   mapping to arbitrary memory (§4.3). *)
let obfuscated_address t = t.id lxor 0x5DEECE66D
