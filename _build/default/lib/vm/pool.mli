(** Per-process free-page pool (§4.3).

    Kernel page allocation takes a global lock, so libsd keeps a local pool;
    pages freed by a foreign process are surfaced for the return protocol
    rather than pooled locally. *)

type t

val create : owner:int -> capacity:int -> t
val owner : t -> int
val available : t -> int
val allocated : t -> int

val refills : t -> int
(** Times the pool went empty and fell back to (simulated) kernel
    allocation; the caller charges the kernel-crossing cost. *)

val foreign_returns : t -> int

val alloc : t -> Page.t

type freed = Local | Foreign of int  (** owner process to return the page to *)

val free : t -> Page.t -> freed
(** Drop one reference; the page re-enters a free list only when the last
    reference dies, and only in its owner's pool. *)

val take_back : t -> Page.t -> unit
(** Receive a page returned by a remote peer (step 6 of Figure 5b).  Raises
    [Invalid_argument] if the page belongs to another pool. *)
