(** A process's view of zero-copy buffers: arrays of mapped pages with COW
    bookkeeping.  Buffer-granular rather than a full page table — the §4.3
    mechanism only remaps whole page-aligned buffers. *)

type buffer = { mutable pages : Page.t array; mutable len : int }

type t

val create : pid:int -> pool_capacity:int -> t
val pid : t -> int
val pool : t -> Pool.t
val mapped_pages : t -> int
val cow_copies : t -> int

val buffer_of_bytes : t -> Bytes.t -> off:int -> len:int -> buffer
(** Materialize application bytes as pages from the local pool.  In the real
    system the application buffer already lives in these pages, so this
    models no simulated-time cost. *)

val share_for_send : buffer -> unit
(** Mark every page shared copy-on-write (sender side before handing page
    addresses to the peer). *)

val map_received : t -> Page.t array -> len:int -> buffer
(** Map pages received from a peer into this space. *)

val read : buffer -> dst:Bytes.t -> dst_off:int -> unit
val to_bytes : buffer -> Bytes.t

val write : t -> buffer -> at:int -> src:Bytes.t -> src_off:int -> len:int -> int
(** Overwrite part of a buffer, exercising copy-on-write; returns the number
    of page copies performed (the caller charges copy costs). *)

val unmap : t -> buffer -> (int * Page.t) list
(** Unmap and free; returns [(owner, page)] pairs that must be returned to
    foreign pools (the page-return protocol). *)
