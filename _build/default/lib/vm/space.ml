(* A process's view of zero-copy buffers: arrays of mapped pages.

   This is deliberately a buffer-granular model rather than a full page
   table: the §4.3 mechanism only ever remaps whole page-aligned buffers, so
   a buffer is an array of page references plus the COW bookkeeping. *)

type buffer = {
  mutable pages : Page.t array;
  mutable len : int;  (** payload bytes, <= Array.length pages * Page.size *)
}

type t = {
  pid : int;
  pool : Pool.t;
  mutable mapped_pages : int;
  mutable cow_copies : int;
}

let create ~pid ~pool_capacity = { pid; pool = Pool.create ~owner:pid ~capacity:pool_capacity; mapped_pages = 0; cow_copies = 0 }

let pid t = t.pid
let pool t = t.pool
let mapped_pages t = t.mapped_pages
let cow_copies t = t.cow_copies

(* Materialize application bytes as pinned-able pages.  In the real system
   the application buffer already lives in these pages, so the blit below
   models no simulated-time cost. *)
let buffer_of_bytes t src ~off ~len =
  let n = Page.pages_for_bytes len in
  let pages =
    Array.init n (fun i ->
        let p = Pool.alloc t.pool in
        let chunk_off = i * Page.size in
        let chunk_len = min Page.size (len - chunk_off) in
        Bytes.blit src (off + chunk_off) p.Page.data 0 chunk_len;
        p)
  in
  t.mapped_pages <- t.mapped_pages + n;
  { pages; len }

(* Mark every page shared copy-on-write, as the sender does before handing
   page addresses to the peer. *)
let share_for_send buf = Array.iter Page.share buf.pages

(* Map pages received from a peer into this space (receive side of Fig 5). *)
let map_received t pages ~len =
  t.mapped_pages <- t.mapped_pages + Array.length pages;
  { pages; len }

let read buf ~dst ~dst_off =
  let remaining = ref buf.len in
  Array.iteri
    (fun i p ->
      if !remaining > 0 then begin
        let chunk = min Page.size !remaining in
        Page.read p ~off:0 ~dst ~dst_off:(dst_off + (i * Page.size)) ~len:chunk;
        remaining := !remaining - chunk
      end)
    buf.pages

let to_bytes buf =
  let b = Bytes.create buf.len in
  read buf ~dst:b ~dst_off:0;
  b

(* Overwrite part of a buffer, exercising the COW path; returns the number
   of page copies that occurred (the caller charges copy costs). *)
let write t buf ~at ~src ~src_off ~len =
  if at + len > Array.length buf.pages * Page.size then invalid_arg "Space.write: out of range";
  let copies = ref 0 in
  let pos = ref 0 in
  while !pos < len do
    let abs = at + !pos in
    let page_idx = abs / Page.size in
    let page_off = abs mod Page.size in
    let chunk = min (Page.size - page_off) (len - !pos) in
    let page, copied =
      Page.write buf.pages.(page_idx) ~off:page_off ~src ~src_off:(src_off + !pos) ~len:chunk
    in
    if copied then begin
      incr copies;
      buf.pages.(page_idx) <- page
    end;
    pos := !pos + chunk
  done;
  t.cow_copies <- t.cow_copies + !copies;
  buf.len <- max buf.len (at + len);
  !copies

(* Unmap and free a buffer; foreign pages are reported for the page-return
   protocol. *)
let unmap t buf =
  t.mapped_pages <- t.mapped_pages - Array.length buf.pages;
  Array.fold_left
    (fun acc p ->
      match Pool.free t.pool p with
      | Pool.Local -> acc
      | Pool.Foreign owner -> (owner, p) :: acc)
    [] buf.pages
