lib/vm/pool.mli: Page
