lib/vm/space.ml: Array Bytes Page Pool
