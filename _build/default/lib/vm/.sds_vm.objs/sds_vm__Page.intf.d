lib/vm/page.mli: Bytes
