lib/vm/pool.ml: Page Stack
