lib/vm/space.mli: Bytes Page Pool
