lib/vm/page.ml: Bytes
