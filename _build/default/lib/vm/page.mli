(** Simulated physical pages carrying real payload bytes, with the state the
    §4.3 zero-copy mechanism manipulates: reference count, copy-on-write
    flag, RDMA pin state, owning process. *)

val size : int
(** 4096. *)

type t = {
  id : int;
  mutable data : Bytes.t;
  mutable refcount : int;
  mutable cow : bool;
  mutable pinned : bool;
  mutable owner : int;  (** process uid whose pool must receive it back *)
}

val create : owner:int -> t
val pages_for_bytes : int -> int

val write : t -> off:int -> src:Bytes.t -> src_off:int -> len:int -> t * bool
(** Write honouring copy-on-write: a shared COW page is first replaced by a
    private copy.  Returns the page now holding the data and whether a copy
    happened (the caller charges the copy cost). *)

val read : t -> off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit

val share : t -> unit
(** Add a reference and mark copy-on-write (sender side of a zero-copy
    hand-off). *)

val unref : t -> unit
(** Raises [Invalid_argument] if the refcount is already zero. *)

val pin : t -> unit
val unpin : t -> unit

val obfuscated_address : t -> int
(** The address form passed over control channels, so a process cannot forge
    a mapping to arbitrary memory (§4.3). *)
