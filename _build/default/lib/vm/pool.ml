(* Per-process free-page pool (§4.3).

   Kernel page allocation takes a global lock, so libsd keeps a local pool
   and returns foreign pages to their owner through a message.  The pool
   tracks exactly that: frees of local pages are O(1) pushes, frees of
   foreign pages are surfaced to the caller for the return protocol. *)

type t = {
  owner : int;
  free : Page.t Stack.t;
  mutable allocated : int;
  mutable refilled : int;
  mutable foreign_returns : int;
  capacity : int;
}

let create ~owner ~capacity =
  let t = { owner; free = Stack.create (); allocated = 0; refilled = 0; foreign_returns = 0; capacity } in
  for _ = 1 to capacity do
    Stack.push (Page.create ~owner) t.free
  done;
  t

let owner t = t.owner
let available t = Stack.length t.free
let allocated t = t.allocated
let refills t = t.refilled
let foreign_returns t = t.foreign_returns

(* Allocate one page, refilling from the (simulated) kernel when empty; the
   caller charges the kernel-crossing cost if [refilled] grew. *)
let alloc t =
  t.allocated <- t.allocated + 1;
  match Stack.pop_opt t.free with
  | Some p ->
    p.Page.refcount <- 1;
    p.Page.cow <- false;
    p
  | None ->
    t.refilled <- t.refilled + 1;
    Page.create ~owner:t.owner

type freed = Local | Foreign of int  (** owner process to return the page to *)

(* Drop one reference; the page re-enters a free list only when the last
   reference dies. *)
let free t (p : Page.t) =
  Page.unref p;
  if p.Page.refcount > 0 then Local
  else if p.Page.owner = t.owner then begin
    Stack.push p t.free;
    Local
  end
  else begin
    t.foreign_returns <- t.foreign_returns + 1;
    Foreign p.Page.owner
  end

(* Receive a page returned by a remote peer (step 6 of Figure 5b). *)
let take_back t (p : Page.t) =
  if p.Page.owner <> t.owner then invalid_arg "Pool.take_back: not our page";
  p.Page.refcount <- 1;
  p.Page.cow <- false;
  Stack.push p t.free
