(* Deterministic splittable PRNG (splitmix64).

   The whole reproduction must be deterministic: every source of randomness
   (workload generators, work stealing choices, timing jitter) draws from a
   seeded stream so experiments are replayable bit-for-bit. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  { state = next_int64 t }

(* Uniform int in [0, bound).  Keep 62 bits so the value fits OCaml's
   63-bit native int non-negatively. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Exponentially distributed inter-arrival, mean [mean]. *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b
