(** Simulated processes / threads as effect-handler coroutines.

    All functions except [spawn], [on_exit], [kill] and the accessors must be
    called from inside a running proc (they perform effects). *)

type t

exception Killed
(** Raised inside a proc whose [kill] was requested, at its next resumption. *)

val spawn : Engine.t -> ?name:string -> (unit -> unit) -> t
(** [spawn engine body] creates a proc that starts running [body] at the
    current simulated instant.  Uncaught exceptions from [body] abort the
    engine run. *)

val sleep_ns : int -> unit
(** Advance this proc's simulated time. *)

val pause : unit -> unit
(** Yield to other events scheduled at the current instant. *)

val suspend : (t -> (unit -> unit) -> unit) -> unit
(** [suspend register] blocks the proc; [register p wake] stores [wake]
    wherever appropriate.  Calling [wake] (idempotent) resumes the proc at the
    caller's simulated time. *)

val self : unit -> t
val on_exit : t -> (unit -> unit) -> unit
val kill : t -> unit
val is_alive : t -> bool
val name : t -> string
val id : t -> int
val engine : t -> Engine.t

(** Typed per-proc slots, used by upper layers to attach context (current
    CPU, libsd state) to a proc. *)

type 'a key

val new_key : unit -> 'a key
val set_slot : t -> 'a key -> 'a -> unit
val get_slot : t -> 'a key -> 'a option
