(** A simulated CPU core shared by cooperatively-scheduled polling threads
    (the §4.4 [sched_yield] time-sharing mechanism). *)

type t

val create : Engine.t -> id:int -> cost:Cost.t -> t
val id : t -> int

val members : t -> int
(** Number of threads currently bound to this core. *)

val enter : t -> unit
val leave : t -> unit

val yield_turn : t -> unit
(** Give up the core until the rotation returns; one cooperative context
    switch per hop, or a cheap spin when alone.  Must run inside a proc. *)

val release : t -> unit
(** Pass the baton onward without re-entering the rotation (used before
    blocking in interrupt mode).  Must run inside a proc; no-op when the
    caller is not the holder. *)

val release_for : t -> pid:int -> unit
(** Like [release] but with an explicit proc id; safe outside a proc
    context (thread-exit hooks). *)

val work : t -> int -> unit
(** [work t ns] occupies the core for [ns] nanoseconds of CPU work. *)
