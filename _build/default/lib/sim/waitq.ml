(* Condition-variable-like wait queue for simulated procs.

   Wakers are delivered in FIFO order.  [wait] optionally times out, which is
   how poll loops with deadlines are built. *)

type waiter = {
  wake : unit -> unit;
  mutable done_ : bool;
  mutable timed_out : bool;
}

type t = { q : waiter Queue.t; mutable signals_pending : int }

let create () = { q = Queue.create (); signals_pending = 0 }

let waiting t =
  Queue.fold (fun acc w -> if w.done_ then acc else acc + 1) 0 t.q

type outcome = Signaled | Timeout

let wait ?timeout_ns t =
  (* A signal that raced ahead of the wait is consumed immediately: this
     keeps the classic produce-then-wake pattern free of lost wakeups. *)
  if t.signals_pending > 0 then begin
    t.signals_pending <- t.signals_pending - 1;
    Signaled
  end
  else begin
    let cell = ref Signaled in
    Proc.suspend (fun p wake ->
        let w = { wake; done_ = false; timed_out = false } in
        Queue.push w t.q;
        match timeout_ns with
        | None -> ()
        | Some d ->
          Engine.schedule (Proc.engine p) ~delay:d (fun () ->
              if not w.done_ then begin
                w.done_ <- true;
                w.timed_out <- true;
                cell := Timeout;
                wake ()
              end));
    !cell
  end

let rec signal t =
  match Queue.take_opt t.q with
  | None -> t.signals_pending <- t.signals_pending + 1
  | Some w ->
    if w.done_ then signal t
    else begin
      w.done_ <- true;
      w.wake ()
    end

(* Wake every waiter currently queued; does not bank pending signals. *)
let broadcast t =
  let rec drain () =
    match Queue.take_opt t.q with
    | None -> ()
    | Some w ->
      if not w.done_ then begin
        w.done_ <- true;
        w.wake ()
      end;
      drain ()
  in
  drain ()

let clear_pending t = t.signals_pending <- 0
