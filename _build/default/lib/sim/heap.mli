(** Array-backed binary min-heap.

    The ordering is supplied at creation time via [less]; [dummy] is a value
    used to fill unused slots (it is never returned). *)

type 'a t

val create : ?capacity:int -> less:('a -> 'a -> bool) -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek t] returns the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop t] removes and returns the minimum element. *)

val clear : 'a t -> unit
