lib/sim/heap.mli:
