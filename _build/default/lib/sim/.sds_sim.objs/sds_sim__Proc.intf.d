lib/sim/proc.mli: Engine
