lib/sim/cpu.ml: Cost Engine Proc Queue
