lib/sim/waitq.ml: Engine Proc Queue
