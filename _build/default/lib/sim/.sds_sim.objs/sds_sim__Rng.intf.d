lib/sim/rng.mli: Bytes
