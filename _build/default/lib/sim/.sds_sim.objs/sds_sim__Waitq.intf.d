lib/sim/waitq.mli:
