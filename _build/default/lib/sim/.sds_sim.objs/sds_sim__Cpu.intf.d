lib/sim/cpu.mli: Cost Engine
