lib/sim/proc.ml: Effect Engine Hashtbl List Obj
