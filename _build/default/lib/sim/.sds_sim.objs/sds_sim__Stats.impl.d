lib/sim/stats.ml: Array Fmt
