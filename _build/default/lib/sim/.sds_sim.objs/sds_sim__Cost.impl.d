lib/sim/cost.ml:
