lib/sim/engine.mli:
