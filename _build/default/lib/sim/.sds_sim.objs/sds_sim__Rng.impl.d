lib/sim/rng.ml: Bytes Char Int64
