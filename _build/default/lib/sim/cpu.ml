(* A simulated CPU core shared by cooperatively-scheduled polling threads.

   A single baton circulates: only its holder is considered to be on the
   core.  [yield_turn] re-queues the caller and hands the baton to the
   oldest waiter, charging the cooperative context-switch cost from Table 2
   per hop (or only a cheap poll-gap spin when the thread is alone).  This
   is exactly the §4.4 time-sharing mechanism, and it produces Figure 10's
   linear latency growth with processes per core.

   A holder about to block on an external event must call [release] so the
   rotation continues without it (interrupt mode, §4.4); dead procs are
   skipped when the baton reaches them. *)

type state =
  | Idle  (** no baton in flight *)
  | Scheduled  (** baton handed over, switch in progress *)
  | Held of int  (** proc id of the current holder *)

type t = {
  engine : Engine.t;
  id : int;
  switch_cost : int;
  spin_cost : int;
  turn_q : (Proc.t * (unit -> unit)) Queue.t;
  mutable state : state;
  mutable last_holder : int;  (** who ran last; switching back to them is free *)
  mutable members : int;
}

let create engine ~id ~cost =
  {
    engine;
    id;
    switch_cost = cost.Cost.yield_switch;
    spin_cost = 10 (* polling one's own queues between turns *);
    turn_q = Queue.create ();
    state = Idle;
    last_holder = -1;
    members = 0;
  }

let id t = t.id
let members t = t.members
let enter t = t.members <- t.members + 1
let leave t = t.members <- max 0 (t.members - 1)

(* Hand the baton to the oldest live waiter. *)
let rec dispatch t ~prev =
  match Queue.take_opt t.turn_q with
  | None -> t.state <- Idle
  | Some (p, wake) ->
    if not (Proc.is_alive p) then dispatch t ~prev
    else begin
      let pid = Proc.id p in
      t.state <- Scheduled;
      let delay = if prev = Some pid then t.spin_cost else t.switch_cost in
      Engine.schedule t.engine ~delay (fun () ->
          if Proc.is_alive p then begin
            t.state <- Held pid;
            t.last_holder <- pid;
            wake ()
          end
          else dispatch t ~prev:None)
    end

(* Give up the core until the rotation returns to us. *)
let yield_turn t =
  Proc.suspend (fun p wake ->
      let pid = Proc.id p in
      Queue.push (p, wake) t.turn_q;
      match t.state with
      | Held h when h = pid -> dispatch t ~prev:(Some pid)
      | Idle ->
        (* An idle core still warm from this proc costs no switch. *)
        dispatch t ~prev:(if t.last_holder = pid then Some pid else None)
      | Held _ | Scheduled -> ())

(* Pass the baton onward without re-entering the rotation; only the holder
   identified by [pid] may do so. *)
let release_for t ~pid =
  match t.state with
  | Held h when h = pid ->
    (* If the released baton comes back to the same proc there is no real
       context switch — releasing to run a little application code and then
       polling again costs only the spin gap. *)
    dispatch t ~prev:(Some pid)
  | Held _ | Idle | Scheduled -> ()

(* [release] from inside the running proc. *)
let release t =
  let p = Proc.self () in
  release_for t ~pid:(Proc.id p)

(* Busy-occupy the core for [ns] of work. *)
let work _t ns = if ns > 0 then Proc.sleep_ns ns
