(* Shared-resource service models.

   [Fifo] is a single-server queue expressed as a "free-at" timeline: a user
   starts service at [max now free_at] and advances the timeline by its
   service time — correct FCFS queueing delays without extra processes.
   The NIC egress link and RSocket's buffer manager are instances.

   [Token_bucket] is the standard rate limiter (QoS): capacity [burst]
   tokens refilled at [rate] per second; a debit that exceeds the balance
   returns the wait until enough tokens accumulate. *)

type fifo = { engine : Engine.t; mutable free_at : int }

let fifo engine = { engine; free_at = 0 }

(* Occupy the server for [service_ns]; returns the total delay (queueing +
   service) from now until this user's service completes. *)
let fifo_acquire t ~service_ns =
  if service_ns < 0 then invalid_arg "Resource.fifo_acquire: negative service";
  let now = Engine.now t.engine in
  let start = max now t.free_at in
  t.free_at <- start + service_ns;
  start + service_ns - now

let fifo_busy t = t.free_at > Engine.now t.engine

type token_bucket = {
  tb_engine : Engine.t;
  rate_per_sec : float;  (** tokens per second *)
  burst : float;
  mutable tokens : float;
  mutable last_refill : int;
}

let token_bucket engine ~rate_per_sec ~burst =
  if rate_per_sec <= 0.0 || burst <= 0.0 then
    invalid_arg "Resource.token_bucket: rate and burst must be positive";
  { tb_engine = engine; rate_per_sec; burst; tokens = burst; last_refill = Engine.now engine }

let refill t =
  let now = Engine.now t.tb_engine in
  let dt = float_of_int (now - t.last_refill) /. 1e9 in
  t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate_per_sec));
  t.last_refill <- now

(* Debit [amount] tokens; returns the nanoseconds to wait before the debit
   is covered (0 when within the burst allowance).  The debit is recorded
   immediately, so concurrent users queue behind each other. *)
let debit t amount =
  refill t;
  let a = float_of_int amount in
  t.tokens <- t.tokens -. a;
  if t.tokens >= 0.0 then 0
  else int_of_float (Float.ceil (-.t.tokens /. t.rate_per_sec *. 1e9))

let balance t =
  refill t;
  t.tokens
