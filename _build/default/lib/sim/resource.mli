(** Shared-resource service models: a FIFO single-server queue as a
    "free-at" timeline, and a token-bucket rate limiter (QoS). *)

type fifo

val fifo : Engine.t -> fifo

val fifo_acquire : fifo -> service_ns:int -> int
(** Occupy the server for [service_ns]; returns the queueing + service delay
    from now. *)

val fifo_busy : fifo -> bool

type token_bucket

val token_bucket : Engine.t -> rate_per_sec:float -> burst:float -> token_bucket

val debit : token_bucket -> int -> int
(** Debit tokens; returns the nanoseconds to wait before the debit is
    covered (0 within the burst allowance). *)

val balance : token_bucket -> float
