(* Array-backed binary min-heap, specialized by a client-supplied ordering.

   Used as the event queue of the discrete-event engine; also reused by the
   NIC model for retransmission timers.  Not thread-safe: the whole simulator
   is single-domain by construction. *)

type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  less : 'a -> 'a -> bool;
  dummy : 'a;
}

let create ?(capacity = 256) ~less ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; size = 0; less; dummy }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let data = Array.make (2 * Array.length t.data) t.dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && t.less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- t.dummy;
    if t.size > 0 then sift_down t 0;
    Some top
  end

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0
