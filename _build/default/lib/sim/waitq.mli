(** FIFO wait queue (condition variable) for simulated procs. *)

type t

type outcome = Signaled | Timeout

val create : unit -> t

val waiting : t -> int
(** Number of procs currently blocked on the queue. *)

val wait : ?timeout_ns:int -> t -> outcome
(** Block the calling proc until [signal]/[broadcast] or the timeout.  A
    signal issued while nobody waits is banked and consumed by the next
    [wait] (no lost wakeups). *)

val signal : t -> unit
(** Wake the oldest waiter, or bank the signal when the queue is empty. *)

val broadcast : t -> unit
(** Wake every current waiter; banks nothing. *)

val clear_pending : t -> unit
(** Drop banked signals. *)
