(** Deterministic splittable PRNG (splitmix64). *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent stream; advancing one never perturbs
    the other, which keeps experiments deterministic under reordering. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val bytes : t -> int -> Bytes.t
(** [bytes t n] is [n] uniformly random bytes (test payloads). *)
