(* A costed, unidirectional kernel byte stream.

   Pipes, FIFOs, Unix domain sockets and (post-handshake) TCP connections
   all reduce to this: a bounded byte buffer crossed via system calls, with
   per-operation, per-packet and per-byte CPU charges on each side, an
   out-of-CPU "wire" latency (loopback softirq, or NIC DMA + interrupt for
   inter-host TCP), and a process-wakeup charge when the consumer sleeps
   (§2.1, Table 4 Linux column).

   Data is real: writers blit bytes in, readers blit bytes out, partial
   reads and EOF behave as POSIX streams do. *)

open Sds_sim

type profile = {
  label : string;
  syscall : int;  (** kernel crossing per operation *)
  fd_lock : int;  (** per-socket lock per operation *)
  sender_pkt : int;  (** sender-side CPU per packet (buffer mgmt, transport) *)
  receiver_pkt : int;  (** receiver-side CPU per packet (incl. softirq/interrupt) *)
  wire : int;  (** one-way latency outside the CPUs *)
  wire_per_kb : int;  (** serialization per KiB on the wire path *)
  copy_per_kb : int;  (** copy cost per KiB, charged on each side *)
  mtu : int;  (** segmentation unit *)
  wakeup : int;  (** waking a blocked peer *)
  capacity : int;  (** buffer bytes *)
}

(* Profiles calibrated to reproduce Table 2's pipe / UDS / intra-TCP /
   inter-TCP round trips and single-core throughputs. *)

let pipe_profile cost =
  {
    label = "pipe";
    syscall = Cost.syscall cost;
    fd_lock = cost.Cost.fd_lock_linux;
    sender_pkt = 100;
    receiver_pkt = 100;
    wire = 0;
    wire_per_kb = 0;
    copy_per_kb = cost.Cost.copy_per_kb;
    mtu = 65536;
    wakeup = cost.Cost.process_wakeup;
    capacity = 64 * 1024;
  }

let unix_profile cost =
  { (pipe_profile cost) with label = "unix"; sender_pkt = 180; receiver_pkt = 260 }

let tcp_intra_profile cost =
  {
    label = "tcp-intra";
    syscall = Cost.syscall cost;
    fd_lock = cost.Cost.fd_lock_linux;
    sender_pkt = (cost.Cost.linux_buffer_mgmt / 2) + (cost.Cost.linux_transport / 2);
    receiver_pkt =
      (cost.Cost.linux_buffer_mgmt / 2) + (cost.Cost.linux_transport / 2) + cost.Cost.linux_packet_proc;
    wire = 400 (* loopback softirq dispatch *);
    wire_per_kb = 0;
    copy_per_kb = cost.Cost.copy_per_kb;
    mtu = 65536 (* loopback GSO: segmentation is virtual *);
    wakeup = cost.Cost.process_wakeup;
    capacity = 256 * 1024;
  }

let tcp_inter_profile cost =
  {
    (tcp_intra_profile cost) with
    label = "tcp-inter";
    mtu = 1448;
    receiver_pkt =
      (cost.Cost.linux_buffer_mgmt / 2) + (cost.Cost.linux_transport / 2) + cost.Cost.linux_packet_proc
      + cost.Cost.linux_interrupt;
    wire = cost.Cost.doorbell_dma_linux + cost.Cost.nic_wire;
    wire_per_kb = cost.Cost.wire_per_kb;
  }

type chunk = { data : Bytes.t; mutable pkts : int }

type t = {
  engine : Engine.t;
  profile : profile;
  chunks : chunk Queue.t;  (** bytes visible to the reader *)
  mutable head_off : int;  (** consumed prefix of the front chunk *)
  mutable visible : int;
  mutable in_flight : int;  (** written, not yet visible (on the wire) *)
  mutable write_closed : bool;
  mutable read_closed : bool;
  readable : Waitq.t;
  writable : Waitq.t;
  mutable reader_blocked : bool;
  mutable on_readable : (unit -> unit) list;  (** epoll edge callbacks *)
  mutable wakeups : int;
  mutable bytes_moved : int;
}

let create engine ~profile =
  {
    engine;
    profile;
    chunks = Queue.create ();
    head_off = 0;
    visible = 0;
    in_flight = 0;
    write_closed = false;
    read_closed = false;
    readable = Waitq.create ();
    writable = Waitq.create ();
    reader_blocked = false;
    on_readable = [];
    wakeups = 0;
    bytes_moved = 0;
  }

let profile t = t.profile
let readable_now t = t.visible > 0 || (t.write_closed && t.in_flight = 0)
let writable_now t = (not t.write_closed) && t.visible + t.in_flight < t.profile.capacity
let readable_waitq t = t.readable
let wakeups t = t.wakeups
let bytes_moved t = t.bytes_moved
let on_readable t f = t.on_readable <- f :: t.on_readable

let notify_readable t =
  Waitq.signal t.readable;
  List.iter (fun f -> f ()) t.on_readable;
  if t.reader_blocked then begin
    (* The consumer was asleep; the wakeup latency itself is charged on the
       read path when it resumes. *)
    t.wakeups <- t.wakeups + 1;
    t.reader_blocked <- false
  end

let packets_for t len = max 1 ((len + t.profile.mtu - 1) / t.profile.mtu)

exception Broken_pipe

(* Blocking write of the whole buffer; returns bytes written (= len).
   Charges: one syscall + FD lock per call, per-packet sender CPU, and the
   outbound copy.  Raises [Broken_pipe] when the read side is closed. *)
let rec write t src ~off ~len =
  if t.write_closed then invalid_arg "Kstream.write: stream closed";
  if t.read_closed then raise Broken_pipe;
  let p = t.profile in
  Proc.sleep_ns (p.syscall + p.fd_lock);
  write_flow t src ~off ~len

and write_flow t src ~off ~len =
  if len = 0 then 0
  else begin
    let p = t.profile in
    let room = p.capacity - (t.visible + t.in_flight) in
    if room <= 0 then begin
      (* Buffer full: block until the reader drains. *)
      (match Waitq.wait t.writable with _ -> ());
      if t.read_closed then raise Broken_pipe;
      write_flow t src ~off ~len
    end
    else begin
      let chunk = min len room in
      let pkts = packets_for t chunk in
      Proc.sleep_ns ((pkts * p.sender_pkt) + (p.copy_per_kb * chunk / 1024));
      let data = Bytes.sub src off chunk in
      t.in_flight <- t.in_flight + chunk;
      let delay = p.wire + (p.wire_per_kb * chunk / 1024) in
      Engine.schedule t.engine ~delay (fun () ->
          t.in_flight <- t.in_flight - chunk;
          Queue.push { data; pkts } t.chunks;
          t.visible <- t.visible + chunk;
          t.bytes_moved <- t.bytes_moved + chunk;
          notify_readable t);
      let rest = if chunk < len then write_flow t src ~off:(off + chunk) ~len:(len - chunk) else 0 in
      chunk + rest
    end
  end

(* Blocking read of up to [len] bytes; 0 means EOF.  Charges one syscall +
   FD lock, per-packet receiver CPU and the inbound copy; a read that had to
   sleep pays the process-wakeup latency. *)
let rec read t dst ~off ~len =
  let p = t.profile in
  Proc.sleep_ns (p.syscall + p.fd_lock);
  read_flow t dst ~off ~len

and read_flow t dst ~off ~len =
  if len = 0 then 0
  else if t.visible = 0 then begin
    if t.write_closed && t.in_flight = 0 then 0
    else begin
      t.reader_blocked <- true;
      (match Waitq.wait t.readable with _ -> ());
      t.reader_blocked <- false;
      (* We were woken from sleep: pay the wakeup path. *)
      Proc.sleep_ns t.profile.wakeup;
      read_flow t dst ~off ~len
    end
  end
  else begin
    let p = t.profile in
    let copied = ref 0 in
    (* Receiver-side per-packet work follows the packets the SENDER framed,
       not the read granularity. *)
    let pkts_consumed = ref 0 in
    while !copied < len && not (Queue.is_empty t.chunks) do
      let chunk = Queue.peek t.chunks in
      let avail = Bytes.length chunk.data - t.head_off in
      let take = min avail (len - !copied) in
      Bytes.blit chunk.data t.head_off dst (off + !copied) take;
      if take = avail then begin
        pkts_consumed := !pkts_consumed + chunk.pkts;
        ignore (Queue.pop t.chunks);
        t.head_off <- 0
      end
      else begin
        (* Partial consumption of a multi-packet chunk: charge a share. *)
        let share = max 1 (chunk.pkts * take / max 1 (Bytes.length chunk.data)) in
        pkts_consumed := !pkts_consumed + share;
        chunk.pkts <- max 0 (chunk.pkts - share);
        t.head_off <- t.head_off + take
      end;
      copied := !copied + take
    done;
    t.visible <- t.visible - !copied;
    Proc.sleep_ns ((!pkts_consumed * p.receiver_pkt) + (p.copy_per_kb * !copied / 1024));
    Waitq.broadcast t.writable;
    !copied
  end

(* Non-blocking variants used by epoll-driven applications. *)
let try_read t dst ~off ~len =
  if t.visible = 0 then (if t.write_closed then `Eof else `Would_block)
  else begin
    let p = t.profile in
    Proc.sleep_ns (p.syscall + p.fd_lock);
    `Read (read_flow t dst ~off ~len)
  end

let close_write t =
  if not t.write_closed then begin
    t.write_closed <- true;
    Engine.schedule t.engine ~delay:t.profile.wire (fun () -> notify_readable t)
  end

let close_read t =
  t.read_closed <- true;
  Waitq.broadcast t.writable
