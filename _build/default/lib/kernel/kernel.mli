(** The simulated per-host Linux kernel: process table, per-process FD
    namespaces (copy-on-write across fork), the TCP port namespace with
    listener backlogs, pipes/Unix-domain sockets, and epoll.

    This is the baseline stack the paper measures against, and the substrate
    libsd falls back to for non-socket FDs and non-SocksDirect peers.  The
    TCP state machine is the RFC 793 subset driven by connect / accept /
    shutdown / close.

    All blocking calls must run inside a simulated proc. *)

open Sds_sim
open Sds_transport

type tcp_state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

val string_of_state : tcp_state -> string

exception Connection_refused
exception Not_a_socket
exception Bad_fd of int
exception Address_in_use of int

type t

type process = {
  pid : int;
  kernel : t;
  mutable fds : kobj Fd_table.t;
  mutable parent : process option;
  mutable forked_children : int;
}

and kobj =
  | Tcp of tcp_ep
  | Tcp_listener of listener
  | Pipe_r of pipe_end
  | Pipe_w of pipe_end
  | Epoll of epoll
  | Plain_file of string

and pipe_end = { pstream : Kstream.t; mutable p_refs : int }

and tcp_ep = {
  ep_id : int;
  ep_kernel : t;
  mutable state : tcp_state;
  mutable rx : Kstream.t option;
  mutable tx : Kstream.t option;
  mutable local_port : int;
  mutable remote : (int * int) option;
  mutable peer : tcp_ep option;
  mutable refs : int;
}

and listener = {
  l_kernel : t;
  l_port : int;
  backlog : tcp_ep Queue.t;
  accept_wq : Waitq.t;
  max_backlog : int;
  mutable l_refs : int;
}

and epoll

val for_host : Host.t -> t
(** The kernel instance for a host, created on first use. *)

val host : t -> Host.t
val conn_setups : t -> int

val spawn_process : t -> ?parent:process -> unit -> process

val fork : process -> process
(** FD table copied; shared objects gain a reference. *)

val lookup : process -> int -> kobj
(** Raises {!Bad_fd}. *)

(* ---- TCP ---- *)

val socket : process -> int
(** Allocates the FD + inode (Table 2: 1.6 us). *)

val listen : process -> int -> port:int -> ?backlog:int -> unit -> unit
val connect : process -> int -> dst:Host.t -> port:int -> unit
val accept : process -> int -> int
val established : tcp_ep -> bool

val send : process -> int -> Bytes.t -> off:int -> len:int -> int
val recv : process -> int -> Bytes.t -> off:int -> len:int -> int
(** 0 = orderly EOF. *)

val shutdown_send : tcp_ep -> unit
val close : process -> int -> unit
val tcp_state : process -> int -> tcp_state

val open_file : process -> string -> int
(** open(2) on a regular file (a [Plain_file] kobj). *)

(* ---- pipes / socketpairs ---- *)

val pipe : process -> int * int
(** [(read_fd, write_fd)]. *)

val unix_socketpair : ?profile:Kstream.profile -> process -> int * int

(* ---- epoll ---- *)

val epoll_create : process -> int
val epoll_add : process -> int -> watch_pid:int -> fd:int -> unit
val epoll_del : process -> int -> fd:int -> unit

val epoll_wait : process -> int -> ?timeout_ns:int -> unit -> int list
(** Level-triggered readability. *)

val obj_readable : kobj -> bool
