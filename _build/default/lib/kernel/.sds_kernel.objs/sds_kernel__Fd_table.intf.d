lib/kernel/fd_table.mli:
