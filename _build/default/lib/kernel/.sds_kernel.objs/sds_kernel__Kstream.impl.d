lib/kernel/kstream.ml: Bytes Cost Engine List Proc Queue Sds_sim Waitq
