lib/kernel/kernel.mli: Bytes Fd_table Host Kstream Queue Sds_sim Sds_transport Waitq
