lib/kernel/fd_table.ml: Array Sds_sim
