lib/kernel/kstream.mli: Bytes Cost Engine Sds_sim Waitq
