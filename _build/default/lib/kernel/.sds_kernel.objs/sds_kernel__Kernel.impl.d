lib/kernel/kernel.ml: Cost Engine Fd_table Hashtbl Host Kstream List Option Proc Queue Sds_sim Sds_transport Waitq
