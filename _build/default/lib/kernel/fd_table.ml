(* Kernel-style file-descriptor table.

   Linux always allocates the lowest available FD — applications such as
   Redis and Memcached rely on this (§2.1.4), so both the kernel model and
   libsd's remapping table preserve it.  Lookup is O(1); allocation pops the
   lowest recycled descriptor first. *)

module Heap = Sds_sim.Heap

type 'a t = {
  mutable entries : 'a option array;
  (* Min-heap of recycled descriptors below [next_fresh]. *)
  recycled : int Heap.t;
  mutable next_fresh : int;
  first_fd : int;
}

let create ?(first_fd = 3) () =
  {
    entries = Array.make 64 None;
    recycled = Heap.create ~less:(fun a b -> a < b) ~dummy:(-1) ();
    next_fresh = first_fd;
    first_fd;
  }

let ensure_capacity t fd =
  if fd >= Array.length t.entries then begin
    let bigger = Array.make (max (2 * Array.length t.entries) (fd + 1)) None in
    Array.blit t.entries 0 bigger 0 (Array.length t.entries);
    t.entries <- bigger
  end

(* Allocate the lowest available descriptor and bind it to [v]. *)
let alloc t v =
  let fd =
    match Heap.pop t.recycled with
    | Some fd -> fd
    | None ->
      let fd = t.next_fresh in
      t.next_fresh <- t.next_fresh + 1;
      fd
  in
  ensure_capacity t fd;
  t.entries.(fd) <- Some v;
  fd

(* Bind a specific descriptor (dup2-style); replaces any existing binding. *)
let bind t fd v =
  if fd < 0 then invalid_arg "Fd_table.bind: negative fd";
  ensure_capacity t fd;
  (* Keep allocation invariants: descriptors at or above next_fresh must be
     marked used, holes below it recycled. *)
  if fd >= t.next_fresh then begin
    for d = t.next_fresh to fd - 1 do
      Heap.push t.recycled d
    done;
    t.next_fresh <- fd + 1
  end;
  t.entries.(fd) <- Some v

let find t fd =
  if fd < 0 || fd >= Array.length t.entries then None else t.entries.(fd)

let mem t fd = find t fd <> None

let close t fd =
  match find t fd with
  | None -> false
  | Some _ ->
    t.entries.(fd) <- None;
    Heap.push t.recycled fd;
    true

let iter t f =
  Array.iteri (fun fd -> function Some v -> f fd v | None -> ()) t.entries

let fold t f acc =
  let acc = ref acc in
  iter t (fun fd v -> acc := f fd v !acc);
  !acc

let count t = fold t (fun _ _ n -> n + 1) 0

(* Snapshot for fork: the child gets a copy-on-write image of the table. *)
let copy t =
  let recycled = Heap.create ~less:(fun a b -> a < b) ~dummy:(-1) () in
  let fresh = { entries = Array.copy t.entries; recycled; next_fresh = t.next_fresh; first_fd = t.first_fd } in
  (* Rebuild the recycle heap from holes. *)
  Array.iteri (fun fd v -> if v = None && fd >= t.first_fd && fd < t.next_fresh then Heap.push recycled fd) t.entries;
  fresh
