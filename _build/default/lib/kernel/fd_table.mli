(** Kernel-style file-descriptor table with Linux's lowest-free-FD
    allocation semantics, which applications like Redis rely on (§2.1.4). *)

type 'a t

val create : ?first_fd:int -> unit -> 'a t
(** [first_fd] defaults to 3 (0-2 are stdio). *)

val alloc : 'a t -> 'a -> int
(** Bind [v] to the lowest available descriptor. *)

val bind : 'a t -> int -> 'a -> unit
(** Bind a specific descriptor (dup2-style); replaces any existing binding
    and keeps the lowest-free invariant for later allocations. *)

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val close : 'a t -> int -> bool
(** [false] if the descriptor was not open. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
val fold : 'a t -> (int -> 'a -> 'b -> 'b) -> 'b -> 'b
val count : 'a t -> int

val copy : 'a t -> 'a t
(** Snapshot for fork: entries shared, table private. *)
