(** A costed, unidirectional kernel byte stream: the common substrate of
    pipes, FIFOs, Unix domain sockets and post-handshake TCP connections.

    Writers and readers pay per-operation (syscall + FD lock), per-packet
    (as framed by the sender) and per-byte CPU charges; the wire adds
    latency; a reader that slept pays the process wakeup.  Data is real
    bytes with POSIX stream semantics (partial reads, EOF, EPIPE).

    All data-path functions must run inside a simulated proc. *)

open Sds_sim

type profile = {
  label : string;
  syscall : int;
  fd_lock : int;
  sender_pkt : int;
  receiver_pkt : int;  (** incl. softirq / NIC interrupt *)
  wire : int;  (** one-way latency outside the CPUs *)
  wire_per_kb : int;
  copy_per_kb : int;
  mtu : int;
  wakeup : int;
  capacity : int;
}

val pipe_profile : Cost.t -> profile
val unix_profile : Cost.t -> profile
val tcp_intra_profile : Cost.t -> profile
(** Loopback: GSO-sized segments, softirq dispatch, no NIC. *)

val tcp_inter_profile : Cost.t -> profile
(** Wire MTU segments, NIC DMA + interrupt per packet. *)

type t

exception Broken_pipe

val create : Engine.t -> profile:profile -> t
val profile : t -> profile

val readable_now : t -> bool
(** Data visible, or clean EOF with nothing in flight. *)

val writable_now : t -> bool
val readable_waitq : t -> Waitq.t

val wakeups : t -> int
(** Times the reader was found asleep on arrival. *)

val bytes_moved : t -> int

val on_readable : t -> (unit -> unit) -> unit
(** Edge callbacks for epoll. *)

val write : t -> Bytes.t -> off:int -> len:int -> int
(** Blocking full write; raises {!Broken_pipe} when the read side closed. *)

val read : t -> Bytes.t -> off:int -> len:int -> int
(** Blocking read of up to [len] bytes; 0 = EOF. *)

val try_read : t -> Bytes.t -> off:int -> len:int -> [ `Read of int | `Eof | `Would_block ]

val close_write : t -> unit
val close_read : t -> unit
