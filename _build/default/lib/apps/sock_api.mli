(** The common socket interface every stack implements — the repository's
    stand-in for the paper's LD_PRELOAD transparency claim: application code
    written once against {!S} runs unmodified over SocksDirect, the Linux
    kernel model, RSocket and LibVMA. *)

open Sds_transport

module type S = sig
  val name : string

  type endpoint
  (** One application thread's handle onto the stack. *)

  type listener
  type conn

  val make_endpoint : Host.t -> core:int -> endpoint
  val listen : endpoint -> port:int -> listener
  val accept : endpoint -> listener -> conn
  val connect : endpoint -> dst:Host.t -> port:int -> conn
  val send : endpoint -> conn -> Bytes.t -> off:int -> len:int -> int
  val recv : endpoint -> conn -> Bytes.t -> off:int -> len:int -> int
  val close : endpoint -> conn -> unit
end

module Sds : S with type endpoint = Socksdirect.Libsd.thread
(** SocksDirect with default configuration. *)

module Sds_unopt : S with type endpoint = Socksdirect.Libsd.thread
(** SocksDirect with batching and zero copy disabled — "SD (unopt)". *)

module Linux : S with type endpoint = Sds_kernel.Kernel.process
module Rsocket : S with type endpoint = Host.t
module Libvma : S with type endpoint = Sds_baselines.Libvma.stack

(** Buffered IO helpers shared by the applications: full writes, exact
    reads, CRLF line reads — over any stack. *)
module Io (Api : S) : sig
  type t

  val make : Api.endpoint -> Api.conn -> t
  val buffered : t -> int

  val write_all : t -> Bytes.t -> off:int -> len:int -> unit
  val write_string : t -> string -> unit

  val read_exact : t -> int -> Bytes.t option
  (** [None] on EOF before the requested length is available. *)

  val read_line : t -> string option
  (** Reads through the first CRLF; the line excludes it. *)

  val close : t -> unit
end
