(* The common socket interface every stack implements.

   This is the repo's stand-in for the paper's LD_PRELOAD transparency
   claim: the application code in this library (HTTP proxy, KV store, RPC,
   NF pipeline) is written once against [S] and runs unmodified over
   SocksDirect, the Linux kernel model, RSocket and LibVMA. *)

open Sds_transport

module type S = sig
  val name : string

  type endpoint
  (** One application thread's handle onto the stack. *)

  type listener
  type conn

  val make_endpoint : Host.t -> core:int -> endpoint
  val listen : endpoint -> port:int -> listener
  val accept : endpoint -> listener -> conn
  val connect : endpoint -> dst:Host.t -> port:int -> conn
  val send : endpoint -> conn -> Bytes.t -> off:int -> len:int -> int
  val recv : endpoint -> conn -> Bytes.t -> off:int -> len:int -> int
  val close : endpoint -> conn -> unit
end

(* ---- SocksDirect ---- *)

module Sds : S with type endpoint = Socksdirect.Libsd.thread = struct
  module L = Socksdirect.Libsd

  let name = "SocksDirect"

  type endpoint = L.thread
  type listener = int
  type conn = int

  let make_endpoint host ~core =
    let ctx = L.init host in
    L.create_thread ctx ~core ()

  let listen th ~port =
    let fd = L.socket th in
    L.bind th fd ~port;
    L.listen th fd;
    fd

  let accept th lfd = L.accept th lfd
  let connect th ~dst ~port =
    let fd = L.socket th in
    L.connect th fd ~dst ~port;
    fd

  let send th fd buf ~off ~len = L.send th fd buf ~off ~len
  let recv th fd buf ~off ~len = L.recv th fd buf ~off ~len
  let close th fd = L.close th fd
end

(* SocksDirect with batching and zero copy disabled — the "SD (unopt)"
   series of Figures 7-9. *)
module Sds_unopt : S with type endpoint = Socksdirect.Libsd.thread = struct
  include Sds

  let name = "SD (unopt)"

  let make_endpoint host ~core =
    let config = { Socksdirect.Libsd.default_config with batching = false; zerocopy = false } in
    let ctx = Socksdirect.Libsd.init ~config host in
    Socksdirect.Libsd.create_thread ctx ~core ()
end

(* ---- Linux kernel TCP ---- *)

module Linux : S with type endpoint = Sds_kernel.Kernel.process = struct
  module K = Sds_kernel.Kernel

  let name = "Linux"

  type endpoint = K.process
  type listener = int
  type conn = int

  let make_endpoint host ~core:_ = K.spawn_process (K.for_host host) ()

  let listen proc ~port =
    let fd = K.socket proc in
    K.listen proc fd ~port ();
    fd

  let accept proc lfd = K.accept proc lfd
  let connect proc ~dst ~port =
    let fd = K.socket proc in
    K.connect proc fd ~dst ~port;
    fd

  let send proc fd buf ~off ~len = K.send proc fd buf ~off ~len
  let recv proc fd buf ~off ~len = K.recv proc fd buf ~off ~len
  let close proc fd = K.close proc fd
end

(* ---- RSocket ---- *)

module Rsocket : S with type endpoint = Host.t = struct
  module R = Sds_baselines.Rsocket

  let name = "RSocket"

  type endpoint = Host.t
  type listener = R.listener
  type conn = R.conn

  let make_endpoint host ~core:_ = host
  let listen host ~port = R.listen host ~port
  let accept _ l = R.accept l
  let connect host ~dst ~port = R.connect host ~dst ~port
  let send _ c buf ~off ~len = R.send c buf ~off ~len
  let recv _ c buf ~off ~len = R.recv c buf ~off ~len
  let close _ c = R.close c
end

(* ---- LibVMA ---- *)

module Libvma : S with type endpoint = Sds_baselines.Libvma.stack = struct
  module V = Sds_baselines.Libvma

  let name = "LibVMA"

  type endpoint = V.stack
  type listener = V.listener
  type conn = V.conn

  let make_endpoint host ~core:_ = V.stack_for host
  let listen stack ~port = V.listen stack.V.host ~port
  let accept _ l = V.accept l
  let connect stack ~dst ~port = V.connect stack.V.host ~dst ~port
  let send _ c buf ~off ~len = V.send c buf ~off ~len
  let recv _ c buf ~off ~len = V.recv c buf ~off ~len
  let close _ c = V.close c
end

(* ---- buffered helpers shared by the applications ---- *)

module Io (Api : S) = struct
  type t = {
    ep : Api.endpoint;
    conn : Api.conn;
    mutable buf : Bytes.t;  (** window of read-but-unconsumed bytes *)
    mutable start : int;
    mutable stop : int;
  }

  let make ep conn = { ep; conn; buf = Bytes.create 65536; start = 0; stop = 0 }

  let buffered t = t.stop - t.start

  (* Send everything. *)
  let write_all t buf ~off ~len =
    let sent = ref 0 in
    while !sent < len do
      let n = Api.send t.ep t.conn buf ~off:(off + !sent) ~len:(len - !sent) in
      if n = 0 then failwith "write_all: peer closed";
      sent := !sent + n
    done

  let write_string t s = write_all t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

  (* Make room for [extra] incoming bytes, compacting or growing. *)
  let reserve t extra =
    let live = buffered t in
    if t.stop + extra > Bytes.length t.buf then
      if live + extra <= Bytes.length t.buf then begin
        Bytes.blit t.buf t.start t.buf 0 live;
        t.start <- 0;
        t.stop <- live
      end
      else begin
        let bigger = Bytes.create (max (2 * Bytes.length t.buf) (live + extra)) in
        Bytes.blit t.buf t.start bigger 0 live;
        t.buf <- bigger;
        t.start <- 0;
        t.stop <- live
      end

  (* Refill from the connection; false on EOF. *)
  let refill t =
    let want = 65536 in
    reserve t want;
    let n = Api.recv t.ep t.conn t.buf ~off:t.stop ~len:want in
    if n = 0 then false
    else begin
      t.stop <- t.stop + n;
      true
    end

  (* Read exactly [n] bytes; None on EOF before [n] bytes are available. *)
  let read_exact t n =
    let rec fill () =
      if buffered t >= n then begin
        let out = Bytes.sub t.buf t.start n in
        t.start <- t.start + n;
        if t.start = t.stop then begin
          t.start <- 0;
          t.stop <- 0
        end;
        Some out
      end
      else if refill t then fill ()
      else None
    in
    fill ()

  (* Read through the first CRLF; returns the line without it. *)
  let read_line t =
    let find_crlf from =
      let rec scan i =
        if i + 1 >= t.stop then None
        else if Bytes.get t.buf i = '\r' && Bytes.get t.buf (i + 1) = '\n' then Some i
        else scan (i + 1)
      in
      scan (max from t.start)
    in
    let rec fill from =
      match find_crlf from with
      | Some i ->
        let line = Bytes.sub_string t.buf t.start (i - t.start) in
        t.start <- i + 2;
        if t.start >= t.stop then begin
          t.start <- 0;
          t.stop <- 0
        end;
        Some line
      | None ->
        (* Resume the scan where it stopped (minus one byte for a split
           CRLF); note positions shift if refill compacts. *)
        let live_scanned = t.stop - t.start in
        if refill t then fill (t.start + max 0 (live_scanned - 1)) else None
    in
    fill t.start

  let close t = Api.close t.ep t.conn
end
