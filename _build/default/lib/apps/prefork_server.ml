(* A pre-fork master/worker server over libsd — the Apache / PHP-FPM /
   gunicorn process model (§2.2): the master binds and listens, forks N
   workers, and every worker accepts from the SAME listening socket on its
   own per-thread backlog; the monitor dispatches new connections
   round-robin and idle workers steal from busy siblings (§4.5.2).

   This is the application pattern that cannot run on LibVMA or RSocket
   (fork takes all sockets or none), so it only offers the SocksDirect
   API. *)

open Sds_sim
module L = Socksdirect.Libsd

type t = {
  host : Sds_transport.Host.t;
  port : int;
  workers : int;
  mutable served : int array;  (** per-worker request counts *)
}

let create host ~port ~workers = { host; port; workers; served = Array.make workers 0 }

(* Start the master: binds, listens, forks [workers] children that all
   accept in parallel.  [handler] serves one accepted connection and
   returns; each worker loops [conns_per_worker] times.  [on_ready] fires
   once every worker is accepting. *)
let start t ~engine ~conns_per_worker ~handler ~on_ready =
  let ready = ref 0 in
  ignore
    (Proc.spawn engine ~name:"prefork-master" (fun () ->
         let ctx = L.init t.host in
         let th = L.create_thread ctx ~core:0 () in
         let listener = L.socket th in
         L.bind th listener ~port:t.port;
         L.listen th listener;
         for w = 0 to t.workers - 1 do
           (* fork(2): the child inherits the listening socket. *)
           let child_ctx = L.fork th in
           ignore
             (Proc.spawn engine ~name:(Fmt.str "prefork-worker%d" w) (fun () ->
                  let wth = L.create_thread child_ctx ~core:(1 + w) () in
                  (* Every worker accepts on the SAME inherited listener fd;
                     each gets its own monitor backlog. *)
                  incr ready;
                  if !ready = t.workers then on_ready ();
                  for _ = 1 to conns_per_worker do
                    let conn = L.accept wth listener in
                    handler wth conn;
                    L.close wth conn;
                    t.served.(w) <- t.served.(w) + 1
                  done))
         done))

let served t = Array.copy t.served
let total_served t = Array.fold_left ( + ) 0 t.served

(* A ready-made echo handler: one request in, one reply out. *)
let echo_handler th conn =
  let buf = Bytes.create 4096 in
  let n = L.recv th conn buf ~off:0 ~len:4096 in
  if n > 0 then ignore (L.send th conn buf ~off:0 ~len:n)
