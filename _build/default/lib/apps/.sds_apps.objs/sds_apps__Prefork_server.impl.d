lib/apps/prefork_server.ml: Array Bytes Fmt Proc Sds_sim Sds_transport Socksdirect
