lib/apps/sock_api.mli: Bytes Host Sds_baselines Sds_kernel Sds_transport Socksdirect
