lib/apps/memcached.ml: Bytes Hashtbl Int32 Sock_api String
