lib/apps/rpc.ml: Bytes Hashtbl Int32 Sds_sim Sock_api String
