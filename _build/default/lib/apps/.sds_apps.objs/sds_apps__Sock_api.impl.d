lib/apps/sock_api.ml: Bytes Host Sds_baselines Sds_kernel Sds_transport Socksdirect String
