lib/apps/nf.ml: Array Bytes Char Int32 Sds_kernel Sds_sim Sock_api
