lib/apps/http.ml: Buffer Bytes List Printf Sds_sim Sock_api String
