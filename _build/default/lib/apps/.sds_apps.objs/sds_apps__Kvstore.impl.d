lib/apps/kvstore.ml: Bytes Hashtbl List Printf Sds_sim Sock_api String
